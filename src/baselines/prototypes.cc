#include "baselines/prototypes.hh"

#include "common/logging.hh"

namespace hydra {

PrototypeSpec
hydraPrototype(const std::string& name, size_t servers,
               size_t cards_per_server)
{
    PrototypeSpec s;
    s.name = name;
    s.cluster = ClusterConfig{servers, cards_per_server};
    s.fpga = FpgaParams{}; // U280 defaults, MAD-style caching
    s.netKind = PrototypeSpec::NetKind::Switched;
    return s;
}

PrototypeSpec
hydraSSpec()
{
    return hydraPrototype("Hydra-S", 1, 1);
}

PrototypeSpec
hydraMSpec()
{
    return hydraPrototype("Hydra-M", 1, 8);
}

PrototypeSpec
hydraLSpec()
{
    return hydraPrototype("Hydra-L", 8, 8);
}

PrototypeSpec
fabPrototype(const std::string& name, size_t servers,
             size_t cards_per_server)
{
    PrototypeSpec s;
    s.name = name;
    s.cluster = ClusterConfig{servers, cards_per_server};
    s.fpga = FpgaParams{};
    // FAB schedules operand fetches without MAD's reuse planning and
    // sustains a lower effective pipeline rate; Table II has FAB-S
    // ~2.9x slower than Hydra-S across the four benchmarks.
    s.fpga.hbmTrafficFactor = 2.4;
    s.fpga.computeDerate = 3.0;
    s.netKind = PrototypeSpec::NetKind::HostMediated;
    return s;
}

PrototypeSpec
fabSSpec()
{
    return fabPrototype("FAB-S", 1, 1);
}

PrototypeSpec
fabMSpec()
{
    return fabPrototype("FAB-M", 1, 8);
}

PrototypeSpec
fabLSpec()
{
    return fabPrototype("FAB-L", 8, 8);
}

PrototypeSpec
poseidonSpec()
{
    PrototypeSpec s;
    s.name = "Poseidon";
    s.cluster = ClusterConfig{1, 1};
    s.fpga = FpgaParams{};
    // Strong radix-based CUs, but no efficient caching strategy:
    // frequent HBM access dominates (paper Section IV-B), leaving it
    // ~1.3x behind Hydra-S.
    s.fpga.hbmTrafficFactor = 2.0;
    s.fpga.computeDerate = 1.0;
    s.netKind = PrototypeSpec::NetKind::Switched;
    return s;
}

namespace {

struct MachineEntry
{
    const char* name;
    PrototypeSpec (*make)();
};

const MachineEntry kMachineRegistry[] = {
    {"hydra-s", hydraSSpec}, {"hydra-m", hydraMSpec},
    {"hydra-l", hydraLSpec}, {"fab-s", fabSSpec},
    {"fab-m", fabMSpec},     {"fab-l", fabLSpec},
    {"poseidon", poseidonSpec},
};

} // namespace

std::vector<std::string>
machineNames()
{
    std::vector<std::string> names;
    for (const auto& e : kMachineRegistry)
        names.emplace_back(e.name);
    return names;
}

bool
machineExists(const std::string& name)
{
    for (const auto& e : kMachineRegistry)
        if (name == e.name)
            return true;
    return false;
}

PrototypeSpec
machineByName(const std::string& name)
{
    for (const auto& e : kMachineRegistry)
        if (name == e.name)
            return e.make();
    std::string valid;
    for (const auto& e : kMachineRegistry)
        valid += std::string(valid.empty() ? "" : "|") + e.name;
    fatal("unknown machine '%s' (want %s)", name.c_str(),
          valid.c_str());
}

const std::vector<PublishedRow>&
asicPerformanceTable()
{
    static const std::vector<PublishedRow> rows = {
        {"CraterLake", 5.51, 89.76, 76.34, 2615.11},
        {"BTS", 32.81, 534.06, 454.23, 15560.30},
        {"ARK", 2.15, 34.95, 29.73, 1018.34},
        {"SHARP", 1.70, 27.68, 23.54, 806.53},
    };
    return rows;
}

const std::vector<PublishedRow>&
paperFpgaTable()
{
    static const std::vector<PublishedRow> rows = {
        {"FAB-S", 131.94, 2255.46, 1302.68, 51813.24},
        {"Poseidon", 55.05, 915.51, 616.59, 24006.44},
        {"FAB-M", 18.89, 287.27, 208.54, 6841.11},
    };
    return rows;
}

const std::vector<PublishedRow>&
paperHydraTable()
{
    static const std::vector<PublishedRow> rows = {
        {"Hydra-S", 41.29, 686.63, 462.44, 18004.83},
        {"Hydra-M", 5.60, 86.79, 72.31, 2382.18},
        {"Hydra-L", 1.49, 12.94, 13.81, 321.58},
    };
    return rows;
}

const std::vector<PublishedRow>&
asicEdapTable()
{
    static const std::vector<PublishedRow> rows = {
        {"CraterLake", 1.40, 371.4, 268.7, 315260},
        {"BTS", 53.81, 14257.4, 10313.9, 12103166},
        {"ARK", 0.54, 143.7, 104.0, 122024},
        {"SHARP", 0.09, 22.8, 16.5, 19330},
    };
    return rows;
}

const std::vector<PublishedRow>&
paperHydraEdapTable()
{
    static const std::vector<PublishedRow> rows = {
        {"Hydra-S", 0.12, 32.8, 8.8, 12703},
        {"Hydra-M", 0.15, 33.8, 12.5, 13541},
        {"Hydra-L", 0.59, 48.1, 38.1, 16208},
    };
    return rows;
}

} // namespace hydra
