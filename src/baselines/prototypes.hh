/**
 * @file
 * Machine configurations evaluated in the paper (Section V-A):
 * Hydra-S/M/L, the FPGA baselines rebuilt from their papers' published
 * parameters (FAB-S/M/L, Poseidon), and the published ASIC reference
 * numbers (CraterLake, BTS, ARK, SHARP).
 */

#ifndef HYDRA_BASELINES_PROTOTYPES_HH
#define HYDRA_BASELINES_PROTOTYPES_HH

#include <string>
#include <vector>

#include "sched/runner.hh"

namespace hydra {

/// @name Hydra prototypes
/// @{
/** Hydra with `servers` x `cards_per_server` U280 cards. */
PrototypeSpec hydraPrototype(const std::string& name, size_t servers,
                             size_t cards_per_server);

PrototypeSpec hydraSSpec(); ///< 1 server, 1 card
PrototypeSpec hydraMSpec(); ///< 1 server, 8 cards
PrototypeSpec hydraLSpec(); ///< 8 servers, 64 cards
/// @}

/// @name FPGA baselines
/// @{
/**
 * FAB: same U280 platform, lower sustained throughput (no MAD-style
 * cache planning) and host-mediated communication.  FAB-S = 1 card,
 * FAB-M = 8 cards, FAB-L = 64 cards (Section V-D scalability study).
 */
PrototypeSpec fabPrototype(const std::string& name, size_t servers,
                           size_t cards_per_server);
PrototypeSpec fabSSpec();
PrototypeSpec fabMSpec();
PrototypeSpec fabLSpec();

/** Poseidon: single card, strong CUs but no efficient HBM caching. */
PrototypeSpec poseidonSpec();
/// @}

/// @name Machine registry (CLI name resolution and discoverability).
/// @{
/** CLI names of every registered machine configuration. */
std::vector<std::string> machineNames();

/** True when `name` resolves via machineByName(). */
bool machineExists(const std::string& name);

/** Resolve a machine by CLI name ("hydra-m", "fab-l", ...); calls
 *  fatal() with the list of valid names on an unknown one. */
PrototypeSpec machineByName(const std::string& name);
/// @}

/** Published end-to-end times, seconds (paper Table II rows). */
struct PublishedRow
{
    const char* name;
    double resnet18;
    double resnet50;
    double bert;
    double opt;
};

/** ASIC rows of Table II (CraterLake, BTS, ARK, SHARP). */
const std::vector<PublishedRow>& asicPerformanceTable();

/** FPGA rows of Table II as published (for reference columns). */
const std::vector<PublishedRow>& paperFpgaTable();

/** Hydra rows of Table II as published (accuracy tracking). */
const std::vector<PublishedRow>& paperHydraTable();

/** EDAP rows of Table III as published. */
const std::vector<PublishedRow>& asicEdapTable();

/** Paper Table III Hydra rows. */
const std::vector<PublishedRow>& paperHydraEdapTable();

} // namespace hydra

#endif // HYDRA_BASELINES_PROTOTYPES_HH
