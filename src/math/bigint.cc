#include "math/bigint.hh"

#include <cmath>

#include "common/logging.hh"

namespace hydra {

void
BigUInt::mulAdd(u64 m, u64 a)
{
    u64 carry = a;
    for (auto& limb : limbs_) {
        u128 t = static_cast<u128>(limb) * m + carry;
        limb = static_cast<u64>(t);
        carry = static_cast<u64>(t >> 64);
    }
    if (carry)
        limbs_.push_back(carry);
}

void
BigUInt::addU64(u64 a)
{
    u64 carry = a;
    for (auto& limb : limbs_) {
        u128 t = static_cast<u128>(limb) + carry;
        limb = static_cast<u64>(t);
        carry = static_cast<u64>(t >> 64);
        if (!carry)
            return;
    }
    if (carry)
        limbs_.push_back(carry);
}

void
BigUInt::sub(const BigUInt& other)
{
    HYDRA_ASSERT(compare(other) >= 0, "BigUInt underflow");
    u64 borrow = 0;
    for (size_t i = 0; i < limbs_.size(); ++i) {
        u64 rhs = i < other.limbs_.size() ? other.limbs_[i] : 0;
        u128 lhs = static_cast<u128>(limbs_[i]);
        u128 need = static_cast<u128>(rhs) + borrow;
        if (lhs >= need) {
            limbs_[i] = static_cast<u64>(lhs - need);
            borrow = 0;
        } else {
            limbs_[i] = static_cast<u64>((lhs + (static_cast<u128>(1) << 64))
                                         - need);
            borrow = 1;
        }
    }
    while (!limbs_.empty() && limbs_.back() == 0)
        limbs_.pop_back();
}

int
BigUInt::compare(const BigUInt& other) const
{
    if (limbs_.size() != other.limbs_.size())
        return limbs_.size() < other.limbs_.size() ? -1 : 1;
    for (size_t i = limbs_.size(); i-- > 0;) {
        if (limbs_[i] != other.limbs_[i])
            return limbs_[i] < other.limbs_[i] ? -1 : 1;
    }
    return 0;
}

u64
BigUInt::modU64(u64 m) const
{
    u128 r = 0;
    for (size_t i = limbs_.size(); i-- > 0;)
        r = ((r << 64) | limbs_[i]) % m;
    return static_cast<u64>(r);
}

long double
BigUInt::toLongDouble() const
{
    long double v = 0.0L;
    for (size_t i = limbs_.size(); i-- > 0;)
        v = v * 18446744073709551616.0L + static_cast<long double>(limbs_[i]);
    return v;
}

} // namespace hydra
