#include "math/rns.hh"

#include "common/logging.hh"

namespace hydra {

RnsBasis::RnsBasis(size_t n, std::vector<u64> q_primes, u64 special_prime)
    : n_(n)
{
    HYDRA_ASSERT(!q_primes.empty(), "empty modulus chain");
    for (u64 q : q_primes)
        mods_.emplace_back(q);
    mods_.emplace_back(special_prime);

    for (const auto& m : mods_)
        ntts_.push_back(std::make_unique<NttTable>(n_, m));

    size_t total = mods_.size();
    inv_.assign(total, std::vector<u64>(total, 0));
    for (size_t l = 0; l < total; ++l) {
        for (size_t j = 0; j < total; ++j) {
            if (l == j)
                continue;
            u64 ql = mods_[l].value() % mods_[j].value();
            inv_[l][j] = mods_[j].invMod(ql);
        }
    }

    garnerInv_.assign(total, 0);
    for (size_t i = 1; i < total; ++i) {
        u64 prod = 1;
        const Modulus& qi = mods_[i];
        for (size_t j = 0; j < i; ++j)
            prod = qi.mulMod(prod, qi.reduceU64(mods_[j].value()));
        garnerInv_[i] = qi.invMod(prod);
    }
}

BigUInt
RnsBasis::productQ(size_t count) const
{
    HYDRA_ASSERT(count >= 1 && count <= totalCount(), "bad limb count");
    BigUInt prod(1);
    for (size_t i = 0; i < count; ++i)
        prod.mulU64(mods_[i].value());
    return prod;
}

long double
RnsBasis::composeCentered(const std::vector<u64>& residues,
                          size_t count) const
{
    HYDRA_ASSERT(residues.size() >= count && count >= 1, "bad residues");
    // Garner mixed-radix digits: x = d_0 + d_1 q_0 + d_2 q_0 q_1 + ...
    std::vector<u64> digits(count);
    digits[0] = residues[0];
    for (size_t i = 1; i < count; ++i) {
        const Modulus& qi = mods_[i];
        // t = (x_i - (d_0 + d_1 q_0 + ...)) * garnerInv_i mod q_i
        u64 acc = qi.reduceU64(digits[i - 1]);
        for (size_t j = i - 1; j-- > 0;) {
            acc = qi.mulMod(acc, qi.reduceU64(mods_[j].value()));
            acc = qi.addMod(acc, qi.reduceU64(digits[j]));
        }
        u64 t = qi.subMod(residues[i] % qi.value(), acc);
        digits[i] = qi.mulMod(t, garnerInv_[i]);
    }

    // Compose big integer via Horner over the mixed radix.
    BigUInt x(digits[count - 1]);
    for (size_t i = count - 1; i-- > 0;)
        x.mulAdd(mods_[i].value(), digits[i]);

    // Center against Q.
    BigUInt q_prod = productQ(count);
    BigUInt twice = x;
    twice.mulU64(2);
    if (twice.compare(q_prod) > 0) {
        BigUInt neg = q_prod;
        neg.sub(x);
        return -neg.toLongDouble();
    }
    return x.toLongDouble();
}

} // namespace hydra
