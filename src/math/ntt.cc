#include "math/ntt.hh"

#include <bit>

#include "common/logging.hh"
#include "math/primes.hh"

namespace hydra {

NttTable::NttTable(size_t n, Modulus q)
    : n_(n), q_(q)
{
    HYDRA_ASSERT(std::has_single_bit(n), "NTT length must be a power of 2");
    logN_ = std::countr_zero(n);
    HYDRA_ASSERT((q.value() - 1) % (2 * n) == 0, "q != 1 mod 2n");

    u64 psi = primitiveRoot2N(q, n);
    u64 psi_inv = q.invMod(psi);

    rootPow_.resize(n);
    rootPowInv_.resize(n);
    u64 fwd = 1;
    u64 inv = 1;
    for (size_t i = 0; i < n; ++i) {
        size_t r = bitReverse(i, logN_);
        rootPow_[r] = ShoupMul(fwd, q);
        rootPowInv_[r] = ShoupMul(inv, q);
        fwd = q.mulMod(fwd, psi);
        inv = q.mulMod(inv, psi_inv);
    }
    nInv_ = ShoupMul(q.invMod(static_cast<u64>(n)), q);
}

void
NttTable::forward(u64* a) const
{
    // Harvey lazy butterflies: array values live in [0, 4q) between
    // stages.  Each butterfly conditionally pulls its top input into
    // [0, 2q), takes the twiddle product lazily in [0, 2q), and emits
    // sums/differences in [0, 4q) with no per-element reduction.  One
    // normalization pass at the end restores canonical [0, q) values,
    // so outputs are bit-identical to the fully-reduced form.
    const u64 q = q_.value();
    const u64 two_q = 2 * q;
    size_t t = n_;
    for (size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t;
            const ShoupMul& s = rootPow_[m + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                if (u >= two_q)
                    u -= two_q;
                u64 v = s.mulModLazy(a[j + t], q);
                a[j] = u + v;
                a[j + t] = u - v + two_q;
            }
        }
    }
    for (size_t j = 0; j < n_; ++j) {
        u64 x = a[j];
        if (x >= two_q)
            x -= two_q;
        if (x >= q)
            x -= q;
        a[j] = x;
    }
}

void
NttTable::forwardRadix4(u64* a) const
{
    // Same lazy [0, 4q) discipline as forward(), applied to the fused
    // two-stage pass: the stage-1 outputs feed stage 2 through the same
    // conditional 2q pull-down a fresh butterfly load would get.
    const u64 q = q_.value();
    const u64 two_q = 2 * q;
    size_t m = 1;
    while (m * 2 < n_) {
        // Fuse stages m and 2m: one pass applies both butterflies.
        size_t t1 = n_ / (2 * m); // stage-1 offset
        size_t t2 = t1 >> 1;      // stage-2 offset
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t1;
            const ShoupMul& s1 = rootPow_[m + i];
            const ShoupMul& s2a = rootPow_[2 * m + 2 * i];
            const ShoupMul& s2b = rootPow_[2 * m + 2 * i + 1];
            for (size_t j = j1; j < j1 + t2; ++j) {
                u64 x0 = a[j];
                if (x0 >= two_q)
                    x0 -= two_q;
                u64 x1 = a[j + t2];
                if (x1 >= two_q)
                    x1 -= two_q;
                // Stage 1: pairs (x0,x2) and (x1,x3), twiddle S1.
                u64 v0 = s1.mulModLazy(a[j + t1], q);
                u64 v1 = s1.mulModLazy(a[j + t1 + t2], q);
                u64 u0 = x0 + v0;
                u64 u2 = x0 - v0 + two_q;
                u64 u1 = x1 + v1;
                u64 u3 = x1 - v1 + two_q;
                if (u0 >= two_q)
                    u0 -= two_q;
                if (u2 >= two_q)
                    u2 -= two_q;
                // Stage 2: (u0,u1) with S2a, (u2,u3) with S2b.
                u64 w0 = s2a.mulModLazy(u1, q);
                u64 w1 = s2b.mulModLazy(u3, q);
                a[j] = u0 + w0;
                a[j + t2] = u0 - w0 + two_q;
                a[j + t1] = u2 + w1;
                a[j + t1 + t2] = u2 - w1 + two_q;
            }
        }
        m <<= 2;
    }
    if (m < n_) {
        // Odd log2(n): one radix-2 stage remains (t == 1).
        size_t t = n_ / (2 * m);
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t;
            const ShoupMul& s = rootPow_[m + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                if (u >= two_q)
                    u -= two_q;
                u64 v = s.mulModLazy(a[j + t], q);
                a[j] = u + v;
                a[j + t] = u - v + two_q;
            }
        }
    }
    for (size_t j = 0; j < n_; ++j) {
        u64 x = a[j];
        if (x >= two_q)
            x -= two_q;
        if (x >= q)
            x -= q;
        a[j] = x;
    }
}

void
NttTable::inverse(u64* a) const
{
    // Lazy Gentleman-Sande: values stay in [0, 2q) across stages (the
    // sum gets one conditional 2q pull-down, the difference is absorbed
    // by the lazy twiddle product).  The final n^-1 scaling reduces to
    // canonical [0, q).
    const u64 q = q_.value();
    const u64 two_q = 2 * q;
    size_t t = 1;
    for (size_t m = n_; m > 1; m >>= 1) {
        size_t j1 = 0;
        size_t h = m >> 1;
        for (size_t i = 0; i < h; ++i) {
            const ShoupMul& s = rootPowInv_[h + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = a[j + t];
                u64 sum = u + v;
                if (sum >= two_q)
                    sum -= two_q;
                a[j] = sum;
                a[j + t] = s.mulModLazy(u - v + two_q, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (size_t j = 0; j < n_; ++j) {
        u64 x = nInv_.mulModLazy(a[j], q);
        a[j] = x >= q ? x - q : x;
    }
}

} // namespace hydra
