#include "math/ntt.hh"

#include <bit>

#include "common/logging.hh"
#include "math/primes.hh"

namespace hydra {

NttTable::NttTable(size_t n, Modulus q)
    : n_(n), q_(q)
{
    HYDRA_ASSERT(std::has_single_bit(n), "NTT length must be a power of 2");
    logN_ = std::countr_zero(n);
    HYDRA_ASSERT((q.value() - 1) % (2 * n) == 0, "q != 1 mod 2n");

    u64 psi = primitiveRoot2N(q, n);
    u64 psi_inv = q.invMod(psi);

    rootPow_.resize(n);
    rootPowInv_.resize(n);
    u64 fwd = 1;
    u64 inv = 1;
    for (size_t i = 0; i < n; ++i) {
        size_t r = bitReverse(i, logN_);
        rootPow_[r] = ShoupMul(fwd, q);
        rootPowInv_[r] = ShoupMul(inv, q);
        fwd = q.mulMod(fwd, psi);
        inv = q.mulMod(inv, psi_inv);
    }
    nInv_ = ShoupMul(q.invMod(static_cast<u64>(n)), q);
}

void
NttTable::forward(u64* a) const
{
    size_t t = n_;
    for (size_t m = 1; m < n_; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t;
            const ShoupMul& s = rootPow_[m + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = s.mulMod(a[j + t], q_);
                a[j] = q_.addMod(u, v);
                a[j + t] = q_.subMod(u, v);
            }
        }
    }
}

void
NttTable::forwardRadix4(u64* a) const
{
    size_t m = 1;
    while (m * 2 < n_) {
        // Fuse stages m and 2m: one pass applies both butterflies.
        size_t t1 = n_ / (2 * m); // stage-1 offset
        size_t t2 = t1 >> 1;      // stage-2 offset
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t1;
            const ShoupMul& s1 = rootPow_[m + i];
            const ShoupMul& s2a = rootPow_[2 * m + 2 * i];
            const ShoupMul& s2b = rootPow_[2 * m + 2 * i + 1];
            for (size_t j = j1; j < j1 + t2; ++j) {
                u64 x0 = a[j];
                u64 x1 = a[j + t2];
                u64 x2 = a[j + t1];
                u64 x3 = a[j + t1 + t2];
                // Stage 1: pairs (x0,x2) and (x1,x3), twiddle S1.
                u64 v0 = s1.mulMod(x2, q_);
                u64 v1 = s1.mulMod(x3, q_);
                u64 u0 = q_.addMod(x0, v0);
                u64 u2 = q_.subMod(x0, v0);
                u64 u1 = q_.addMod(x1, v1);
                u64 u3 = q_.subMod(x1, v1);
                // Stage 2: (u0,u1) with S2a, (u2,u3) with S2b.
                u64 w0 = s2a.mulMod(u1, q_);
                u64 w1 = s2b.mulMod(u3, q_);
                a[j] = q_.addMod(u0, w0);
                a[j + t2] = q_.subMod(u0, w0);
                a[j + t1] = q_.addMod(u2, w1);
                a[j + t1 + t2] = q_.subMod(u2, w1);
            }
        }
        m <<= 2;
    }
    if (m < n_) {
        // Odd log2(n): one radix-2 stage remains (t == 1).
        size_t t = n_ / (2 * m);
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t;
            const ShoupMul& s = rootPow_[m + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = s.mulMod(a[j + t], q_);
                a[j] = q_.addMod(u, v);
                a[j + t] = q_.subMod(u, v);
            }
        }
    }
}

void
NttTable::inverse(u64* a) const
{
    size_t t = 1;
    for (size_t m = n_; m > 1; m >>= 1) {
        size_t j1 = 0;
        size_t h = m >> 1;
        for (size_t i = 0; i < h; ++i) {
            const ShoupMul& s = rootPowInv_[h + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = a[j + t];
                a[j] = q_.addMod(u, v);
                a[j + t] = s.mulMod(q_.subMod(u, v), q_);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    for (size_t j = 0; j < n_; ++j)
        a[j] = nInv_.mulMod(a[j], q_);
}

} // namespace hydra
