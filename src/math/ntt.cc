#include "math/ntt.hh"

#include <bit>

#include "common/logging.hh"
#include "math/primes.hh"
#include "math/simd/simd.hh"

namespace hydra {

NttTable::NttTable(size_t n, Modulus q)
    : n_(n), q_(q)
{
    HYDRA_ASSERT(std::has_single_bit(n), "NTT length must be a power of 2");
    logN_ = std::countr_zero(n);
    HYDRA_ASSERT((q.value() - 1) % (2 * n) == 0, "q != 1 mod 2n");

    u64 psi = primitiveRoot2N(q, n);
    u64 psi_inv = q.invMod(psi);

    fwdW_.resize(n);
    fwdWShoup_.resize(n);
    invW_.resize(n);
    invWShoup_.resize(n);
    u64 fwd = 1;
    u64 inv = 1;
    for (size_t i = 0; i < n; ++i) {
        size_t r = bitReverse(i, logN_);
        ShoupMul sf(fwd, q);
        ShoupMul si(inv, q);
        fwdW_[r] = sf.value();
        fwdWShoup_[r] = sf.shoup();
        invW_[r] = si.value();
        invWShoup_[r] = si.shoup();
        fwd = q.mulMod(fwd, psi);
        inv = q.mulMod(inv, psi_inv);
    }
    ShoupMul ni(q.invMod(static_cast<u64>(n)), q);
    nInvW_ = ni.value();
    nInvWShoup_ = ni.shoup();
}

void
NttTable::forward(u64* a) const
{
    simd::kernels().nttForward(*this, a);
}

void
NttTable::forwardRadix4(u64* a) const
{
    simd::kernels().nttForwardRadix4(*this, a);
}

void
NttTable::inverse(u64* a) const
{
    simd::kernels().nttInverse(*this, a);
}

} // namespace hydra
