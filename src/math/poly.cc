#include "math/poly.hh"

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "math/ntt.hh"
#include "math/simd/simd.hh"

namespace hydra {

RnsPoly::RnsPoly(std::shared_ptr<const RnsBasis> basis, size_t n_limbs,
                 bool has_special, bool ntt_form, Uninit)
    : basis_(std::move(basis)),
      nLimbs_(n_limbs),
      hasSpecial_(has_special),
      nttForm_(ntt_form),
      n_(basis_->n()),
      limbCount_(n_limbs + (has_special ? 1 : 0))
{
    HYDRA_ASSERT(nLimbs_ >= 1 && nLimbs_ <= basis_->qCount(),
                 "limb count out of range");
    buf_ = BufferPool::global().acquire(limbCount_ * n_);
}

RnsPoly::RnsPoly(std::shared_ptr<const RnsBasis> basis, size_t n_limbs,
                 bool has_special, bool ntt_form)
    : RnsPoly(std::move(basis), n_limbs, has_special, ntt_form, Uninit{})
{
    setZero();
}

RnsPoly::RnsPoly(const RnsPoly& other)
    : basis_(other.basis_),
      nLimbs_(other.nLimbs_),
      hasSpecial_(other.hasSpecial_),
      nttForm_(other.nttForm_),
      n_(other.n_),
      limbCount_(other.limbCount_)
{
    if (!basis_)
        return;
    buf_ = BufferPool::global().acquire(limbCount_ * n_);
    std::memcpy(buf_.data(), other.buf_.data(),
                limbCount_ * n_ * sizeof(u64));
}

RnsPoly&
RnsPoly::operator=(const RnsPoly& other)
{
    if (this == &other)
        return *this;
    if (other.basis_) {
        // Reuse our buffer when it is exactly the right size; otherwise
        // recycle it through the pool.
        size_t words = other.limbCount_ * other.n_;
        if (!buf_.valid() || buf_.words() != words)
            buf_ = BufferPool::global().acquire(words);
        std::memcpy(buf_.data(), other.buf_.data(), words * sizeof(u64));
    } else {
        buf_.reset();
    }
    basis_ = other.basis_;
    nLimbs_ = other.nLimbs_;
    hasSpecial_ = other.hasSpecial_;
    nttForm_ = other.nttForm_;
    n_ = other.n_;
    limbCount_ = other.limbCount_;
    return *this;
}

RnsPoly
RnsPoly::fromSigned(std::shared_ptr<const RnsBasis> basis, size_t n_limbs,
                    bool has_special, const i64* coeffs)
{
    RnsPoly p(std::move(basis), n_limbs, has_special, false, Uninit{});
    for (size_t k = 0; k < p.limbCount(); ++k)
        simd::kernels().reduceCenteredSpan(p.limbData(k), coeffs, p.n_,
                                           p.mod(k));
    return p;
}

RnsPoly
RnsPoly::fromSigned(std::shared_ptr<const RnsBasis> basis, size_t n_limbs,
                    bool has_special, const std::vector<i64>& coeffs)
{
    HYDRA_ASSERT(coeffs.size() == basis->n(), "coefficient count mismatch");
    return fromSigned(std::move(basis), n_limbs, has_special,
                      coeffs.data());
}

void
RnsPoly::copyLimbFrom(size_t k, const RnsPoly& src, size_t src_k)
{
    HYDRA_ASSERT(k < limbCount_ && src_k < src.limbCount_ && n_ == src.n_,
                 "limb copy out of range");
    std::memcpy(limbData(k), src.limbData(src_k), n_ * sizeof(u64));
}

void
RnsPoly::setZero()
{
    std::fill(buf_.data(), buf_.data() + limbCount_ * n_, u64{0});
}

bool
RnsPoly::sameShape(const RnsPoly& other) const
{
    return basis_ == other.basis_ && nLimbs_ == other.nLimbs_ &&
           hasSpecial_ == other.hasSpecial_ && nttForm_ == other.nttForm_;
}

void
RnsPoly::add(const RnsPoly& other)
{
    HYDRA_ASSERT(sameShape(other), "shape mismatch in add");
    parallelFor(0, limbCount_, [&](size_t k) {
        simd::kernels().addSpan(limbData(k), other.limbData(k), n_,
                                mod(k).value());
    });
}

void
RnsPoly::sub(const RnsPoly& other)
{
    HYDRA_ASSERT(sameShape(other), "shape mismatch in sub");
    parallelFor(0, limbCount_, [&](size_t k) {
        simd::kernels().subSpan(limbData(k), other.limbData(k), n_,
                                mod(k).value());
    });
}

void
RnsPoly::negate()
{
    parallelFor(0, limbCount_, [&](size_t k) {
        simd::kernels().negSpan(limbData(k), n_, mod(k).value());
    });
}

void
RnsPoly::mulPointwise(const RnsPoly& other)
{
    HYDRA_ASSERT(sameShape(other) && nttForm_,
                 "mulPointwise requires matching NTT-form operands");
    parallelFor(0, limbCount_, [&](size_t k) {
        simd::kernels().mulSpan(limbData(k), other.limbData(k), n_,
                                mod(k));
    });
}

void
RnsPoly::addMulPointwise(const RnsPoly& a, const RnsPoly& b)
{
    HYDRA_ASSERT(sameShape(a) && sameShape(b) && nttForm_,
                 "addMulPointwise requires matching NTT-form operands");
    parallelFor(0, limbCount_, [&](size_t k) {
        simd::kernels().macSpan(limbData(k), a.limbData(k),
                                b.limbData(k), n_, mod(k));
    });
}

void
RnsPoly::mulScalar(u64 a)
{
    parallelFor(0, limbCount_, [&](size_t k) {
        const Modulus& m = mod(k);
        ShoupMul w(m.reduceU64(a), m);
        simd::kernels().mulScalarSpan(limbData(k), n_, w.value(),
                                      w.shoup(), m.value());
    });
}

void
RnsPoly::mulScalarPerLimb(const std::vector<u64>& a)
{
    HYDRA_ASSERT(a.size() == limbCount_, "per-limb scalar count");
    parallelFor(0, limbCount_, [&](size_t k) {
        const Modulus& m = mod(k);
        ShoupMul w(m.reduceU64(a[k]), m);
        simd::kernels().mulScalarSpan(limbData(k), n_, w.value(),
                                      w.shoup(), m.value());
    });
}

void
RnsPoly::toNtt()
{
    if (nttForm_)
        return;
    parallelFor(0, limbCount_, [&](size_t k) {
        basis_->ntt(basisIndex(k)).forward(limbData(k));
    });
    nttForm_ = true;
}

void
RnsPoly::fromNtt()
{
    if (!nttForm_)
        return;
    parallelFor(0, limbCount_, [&](size_t k) {
        basis_->ntt(basisIndex(k)).inverse(limbData(k));
    });
    nttForm_ = false;
}

RnsPoly
RnsPoly::automorphism(u64 galois) const
{
    HYDRA_ASSERT(!nttForm_, "automorphism requires coefficient domain");
    size_t nn = n_;
    u64 two_n = 2 * nn;
    HYDRA_ASSERT((galois & 1) == 1 && galois < two_n, "bad Galois element");

    RnsPoly out(basis_, nLimbs_, hasSpecial_, false, Uninit{});
    parallelFor(0, limbCount_, [&](size_t k) {
        const Modulus& m = mod(k);
        const u64* src = limbData(k);
        u64* dst = out.limbData(k);
        for (size_t i = 0; i < nn; ++i) {
            u64 j = (static_cast<u64>(i) * galois) % two_n;
            if (j < nn)
                dst[j] = src[i];
            else
                dst[j - nn] = m.negMod(src[i]);
        }
    });
    return out;
}

std::vector<size_t>
RnsPoly::nttAutomorphismMap(size_t n, u64 galois)
{
    // The forward NTT emits evaluations at psi^(2*brv(j)+1).  Composing
    // with X -> X^g moves slot j to the evaluation at exponent
    // g*(2*brv(j)+1) mod 2n, whose home slot is recovered by the
    // inverse bit-reversal.
    int log_n = std::countr_zero(n);
    u64 two_n = 2 * static_cast<u64>(n);
    std::vector<size_t> map(n);
    for (size_t j = 0; j < n; ++j) {
        u64 e = 2 * bitReverse(static_cast<u64>(j), log_n) + 1;
        u64 e_g = (e * galois) % two_n;
        map[j] = static_cast<size_t>(bitReverse((e_g - 1) / 2, log_n));
    }
    return map;
}

const std::vector<size_t>&
RnsPoly::nttAutomorphismMapCached(size_t n, u64 galois)
{
    static std::mutex memo_mutex;
    static std::map<std::pair<size_t, u64>, std::vector<size_t>> memo;
    std::lock_guard<std::mutex> lock(memo_mutex);
    auto [it, inserted] = memo.try_emplace({n, galois});
    if (inserted)
        it->second = nttAutomorphismMap(n, galois);
    return it->second;
}

RnsPoly
RnsPoly::automorphismNtt(u64 galois) const
{
    HYDRA_ASSERT(nttForm_, "automorphismNtt requires NTT domain");
    const std::vector<size_t>& map = nttAutomorphismMapCached(n_, galois);
    RnsPoly out(basis_, nLimbs_, hasSpecial_, true, Uninit{});
    parallelFor(0, limbCount_, [&](size_t k) {
        const u64* src = limbData(k);
        u64* dst = out.limbData(k);
        for (size_t j = 0; j < n_; ++j)
            dst[j] = src[map[j]];
    });
    return out;
}

void
RnsPoly::addAutomorphismNtt(const RnsPoly& src, u64 galois)
{
    HYDRA_ASSERT(sameShape(src) && nttForm_,
                 "addAutomorphismNtt requires matching NTT-form operands");
    const std::vector<size_t>& map = nttAutomorphismMapCached(n_, galois);
    parallelFor(0, limbCount_, [&](size_t k) {
        const Modulus& m = mod(k);
        const u64* s = src.limbData(k);
        u64* dst = limbData(k);
        for (size_t j = 0; j < n_; ++j)
            dst[j] = m.addMod(dst[j], s[map[j]]);
    });
}

void
RnsPoly::divideRoundByLast()
{
    HYDRA_ASSERT(limbCount_ >= 2, "cannot drop the only limb");
    size_t last = limbCount_ - 1;
    size_t last_basis = basisIndex(last);
    const Modulus& ql = basis_->mod(last_basis);
    const NttTable& ntt_l = basis_->ntt(last_basis);
    size_t nn = n_;

    // Bring the last limb into coefficient domain to take its centered
    // representative.  Scratch comes from the pool; the i64 view is the
    // signed alias of the same words.
    PoolBuffer scratch = BufferPool::global().acquire(2 * nn);
    u64* corr = scratch.data();
    i64* centered = reinterpret_cast<i64*>(scratch.data() + nn);
    std::memcpy(corr, limbData(last), nn * sizeof(u64));
    if (nttForm_)
        ntt_l.inverse(corr);
    simd::kernels().toCenteredSpan(centered, corr, nn, ql.value());

    parallelFor(0, last, [&](size_t k) {
        size_t kb = basisIndex(k);
        const Modulus& m = basis_->mod(kb);
        ShoupMul inv(basis_->invQlModQj(last_basis, kb), m);
        u64* limb = limbData(k);
        // Reduce the centered correction into this limb's modulus, NTT
        // it when needed, then fold in (limb - c) * qL^-1 fused.
        PoolBuffer cb = BufferPool::global().acquire(nn);
        u64* c = cb.data();
        simd::kernels().reduceCenteredSpan(c, centered, nn, m);
        if (nttForm_)
            basis_->ntt(kb).forward(c);
        simd::kernels().subMulScalarSpan(limb, c, nn, inv.value(),
                                         inv.shoup(), m.value());
    });

    dropLast();
}

void
RnsPoly::dropLast()
{
    HYDRA_ASSERT(limbCount_ >= 2, "cannot drop the only limb");
    // The flat buffer keeps its original capacity (it returns to its
    // size bucket when released); only the live-limb count shrinks.
    --limbCount_;
    if (hasSpecial_)
        hasSpecial_ = false;
    else
        --nLimbs_;
}

} // namespace hydra
