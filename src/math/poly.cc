#include "math/poly.hh"

#include <bit>
#include <map>
#include <mutex>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "math/ntt.hh"

namespace hydra {

RnsPoly::RnsPoly(std::shared_ptr<const RnsBasis> basis, size_t n_limbs,
                 bool has_special, bool ntt_form)
    : basis_(std::move(basis)),
      nLimbs_(n_limbs),
      hasSpecial_(has_special),
      nttForm_(ntt_form)
{
    HYDRA_ASSERT(nLimbs_ >= 1 && nLimbs_ <= basis_->qCount(),
                 "limb count out of range");
    size_t total = nLimbs_ + (hasSpecial_ ? 1 : 0);
    limbs_.assign(total, std::vector<u64>(basis_->n(), 0));
}

RnsPoly
RnsPoly::fromSigned(std::shared_ptr<const RnsBasis> basis, size_t n_limbs,
                    bool has_special, const std::vector<i64>& coeffs)
{
    RnsPoly p(std::move(basis), n_limbs, has_special, false);
    HYDRA_ASSERT(coeffs.size() == p.n(), "coefficient count mismatch");
    for (size_t k = 0; k < p.limbCount(); ++k) {
        const Modulus& m = p.mod(k);
        auto& limb = p.limbs_[k];
        for (size_t i = 0; i < coeffs.size(); ++i)
            limb[i] = m.reduceI64(coeffs[i]);
    }
    return p;
}

void
RnsPoly::setZero()
{
    for (auto& limb : limbs_)
        std::fill(limb.begin(), limb.end(), 0);
}

bool
RnsPoly::sameShape(const RnsPoly& other) const
{
    return basis_ == other.basis_ && nLimbs_ == other.nLimbs_ &&
           hasSpecial_ == other.hasSpecial_ && nttForm_ == other.nttForm_;
}

void
RnsPoly::add(const RnsPoly& other)
{
    HYDRA_ASSERT(sameShape(other), "shape mismatch in add");
    parallelFor(0, limbs_.size(), [&](size_t k) {
        const Modulus& m = mod(k);
        auto& a = limbs_[k];
        const auto& b = other.limbs_[k];
        for (size_t i = 0; i < a.size(); ++i)
            a[i] = m.addMod(a[i], b[i]);
    });
}

void
RnsPoly::sub(const RnsPoly& other)
{
    HYDRA_ASSERT(sameShape(other), "shape mismatch in sub");
    parallelFor(0, limbs_.size(), [&](size_t k) {
        const Modulus& m = mod(k);
        auto& a = limbs_[k];
        const auto& b = other.limbs_[k];
        for (size_t i = 0; i < a.size(); ++i)
            a[i] = m.subMod(a[i], b[i]);
    });
}

void
RnsPoly::negate()
{
    parallelFor(0, limbs_.size(), [&](size_t k) {
        const Modulus& m = mod(k);
        for (auto& x : limbs_[k])
            x = m.negMod(x);
    });
}

void
RnsPoly::mulPointwise(const RnsPoly& other)
{
    HYDRA_ASSERT(sameShape(other) && nttForm_,
                 "mulPointwise requires matching NTT-form operands");
    parallelFor(0, limbs_.size(), [&](size_t k) {
        const Modulus& m = mod(k);
        auto& a = limbs_[k];
        const auto& b = other.limbs_[k];
        for (size_t i = 0; i < a.size(); ++i)
            a[i] = m.mulMod(a[i], b[i]);
    });
}

void
RnsPoly::addMulPointwise(const RnsPoly& a, const RnsPoly& b)
{
    HYDRA_ASSERT(sameShape(a) && sameShape(b) && nttForm_,
                 "addMulPointwise requires matching NTT-form operands");
    parallelFor(0, limbs_.size(), [&](size_t k) {
        const Modulus& m = mod(k);
        auto& dst = limbs_[k];
        const auto& x = a.limbs_[k];
        const auto& y = b.limbs_[k];
        for (size_t i = 0; i < dst.size(); ++i)
            dst[i] = m.addMod(dst[i], m.mulMod(x[i], y[i]));
    });
}

void
RnsPoly::mulScalar(u64 a)
{
    parallelFor(0, limbs_.size(), [&](size_t k) {
        const Modulus& m = mod(k);
        u64 ak = m.reduceU64(a);
        for (auto& x : limbs_[k])
            x = m.mulMod(x, ak);
    });
}

void
RnsPoly::mulScalarPerLimb(const std::vector<u64>& a)
{
    HYDRA_ASSERT(a.size() == limbs_.size(), "per-limb scalar count");
    parallelFor(0, limbs_.size(), [&](size_t k) {
        const Modulus& m = mod(k);
        for (auto& x : limbs_[k])
            x = m.mulMod(x, a[k]);
    });
}

void
RnsPoly::toNtt()
{
    if (nttForm_)
        return;
    parallelFor(0, limbs_.size(), [&](size_t k) {
        basis_->ntt(basisIndex(k)).forward(limbs_[k]);
    });
    nttForm_ = true;
}

void
RnsPoly::fromNtt()
{
    if (!nttForm_)
        return;
    parallelFor(0, limbs_.size(), [&](size_t k) {
        basis_->ntt(basisIndex(k)).inverse(limbs_[k]);
    });
    nttForm_ = false;
}

RnsPoly
RnsPoly::automorphism(u64 galois) const
{
    HYDRA_ASSERT(!nttForm_, "automorphism requires coefficient domain");
    size_t nn = n();
    u64 two_n = 2 * nn;
    HYDRA_ASSERT((galois & 1) == 1 && galois < two_n, "bad Galois element");

    RnsPoly out(basis_, nLimbs_, hasSpecial_, false);
    parallelFor(0, limbs_.size(), [&](size_t k) {
        const Modulus& m = mod(k);
        const auto& src = limbs_[k];
        auto& dst = out.limbs_[k];
        for (size_t i = 0; i < nn; ++i) {
            u64 j = (static_cast<u64>(i) * galois) % two_n;
            if (j < nn)
                dst[j] = src[i];
            else
                dst[j - nn] = m.negMod(src[i]);
        }
    });
    return out;
}

std::vector<size_t>
RnsPoly::nttAutomorphismMap(size_t n, u64 galois)
{
    // The forward NTT emits evaluations at psi^(2*brv(j)+1).  Composing
    // with X -> X^g moves slot j to the evaluation at exponent
    // g*(2*brv(j)+1) mod 2n, whose home slot is recovered by the
    // inverse bit-reversal.
    int log_n = std::countr_zero(n);
    u64 two_n = 2 * static_cast<u64>(n);
    std::vector<size_t> map(n);
    for (size_t j = 0; j < n; ++j) {
        u64 e = 2 * bitReverse(static_cast<u64>(j), log_n) + 1;
        u64 e_g = (e * galois) % two_n;
        map[j] = static_cast<size_t>(bitReverse((e_g - 1) / 2, log_n));
    }
    return map;
}

const std::vector<size_t>&
RnsPoly::nttAutomorphismMapCached(size_t n, u64 galois)
{
    static std::mutex memo_mutex;
    static std::map<std::pair<size_t, u64>, std::vector<size_t>> memo;
    std::lock_guard<std::mutex> lock(memo_mutex);
    auto [it, inserted] = memo.try_emplace({n, galois});
    if (inserted)
        it->second = nttAutomorphismMap(n, galois);
    return it->second;
}

RnsPoly
RnsPoly::automorphismNtt(u64 galois) const
{
    HYDRA_ASSERT(nttForm_, "automorphismNtt requires NTT domain");
    const std::vector<size_t>& map = nttAutomorphismMapCached(n(), galois);
    RnsPoly out(basis_, nLimbs_, hasSpecial_, true);
    parallelFor(0, limbs_.size(), [&](size_t k) {
        const auto& src = limbs_[k];
        auto& dst = out.limbs_[k];
        for (size_t j = 0; j < src.size(); ++j)
            dst[j] = src[map[j]];
    });
    return out;
}

void
RnsPoly::divideRoundByLast()
{
    HYDRA_ASSERT(limbs_.size() >= 2, "cannot drop the only limb");
    size_t last = limbs_.size() - 1;
    size_t last_basis = basisIndex(last);
    const Modulus& ql = basis_->mod(last_basis);
    const NttTable& ntt_l = basis_->ntt(last_basis);
    size_t nn = n();

    // Bring the last limb into coefficient domain to take its centered
    // representative.
    std::vector<u64> corr = limbs_[last];
    if (nttForm_)
        ntt_l.inverse(corr);
    std::vector<i64> centered(nn);
    for (size_t i = 0; i < nn; ++i)
        centered[i] = ql.toCentered(corr[i]);

    parallelFor(0, last, [&](size_t k) {
        size_t kb = basisIndex(k);
        const Modulus& m = basis_->mod(kb);
        u64 inv = basis_->invQlModQj(last_basis, kb);
        auto& limb = limbs_[k];
        if (nttForm_) {
            // NTT the reduced correction, then combine pointwise.
            std::vector<u64> c(nn);
            for (size_t i = 0; i < nn; ++i)
                c[i] = m.reduceI64(centered[i]);
            basis_->ntt(kb).forward(c);
            for (size_t i = 0; i < nn; ++i)
                limb[i] = m.mulMod(m.subMod(limb[i], c[i]), inv);
        } else {
            for (size_t i = 0; i < nn; ++i) {
                u64 c = m.reduceI64(centered[i]);
                limb[i] = m.mulMod(m.subMod(limb[i], c), inv);
            }
        }
    });

    limbs_.pop_back();
    if (hasSpecial_)
        hasSpecial_ = false;
    else
        --nLimbs_;
}

void
RnsPoly::dropLast()
{
    HYDRA_ASSERT(limbs_.size() >= 2, "cannot drop the only limb");
    limbs_.pop_back();
    if (hasSpecial_)
        hasSpecial_ = false;
    else
        --nLimbs_;
}

} // namespace hydra
