/**
 * @file
 * Negacyclic number-theoretic transform over Z_q[X]/(X^n + 1).
 *
 * Iterative Cooley-Tukey (forward) / Gentleman-Sande (inverse) with
 * bit-reversed twiddle tables and Shoup multiplication, following the
 * Longa-Naehrig formulation with Harvey lazy reduction: intermediate
 * butterfly values live in [0, 2q) / [0, 4q) and are normalized to the
 * canonical [0, q) representative only once per transform, so outputs
 * match the fully-reduced form bit for bit.  This is the functional
 * counterpart of the paper's radix-based NTT compute unit.
 *
 * The transform bodies live in src/math/simd/ as runtime-dispatched
 * kernels (scalar / AVX2 / AVX-512); this class owns the twiddle
 * tables, stored struct-of-arrays (separate w and Shoup-quotient
 * vectors) so vector lanes can load twiddles contiguously.
 */

#ifndef HYDRA_MATH_NTT_HH
#define HYDRA_MATH_NTT_HH

#include <cstddef>
#include <vector>

#include "math/modarith.hh"

namespace hydra {

/** Precomputed twiddle tables for one (n, q) pair. */
class NttTable
{
  public:
    /**
     * Build tables for transform length n (a power of two) and prime
     * modulus q with q = 1 (mod 2n).
     */
    NttTable(size_t n, Modulus q);

    size_t n() const { return n_; }
    int logN() const { return logN_; }
    const Modulus& modulus() const { return q_; }

    /** In-place forward negacyclic NTT (coefficients -> evaluations). */
    void forward(u64* a) const;

    /** In-place inverse negacyclic NTT (evaluations -> coefficients). */
    void inverse(u64* a) const;

    /**
     * Forward transform with two Cooley-Tukey stages fused per memory
     * pass (the paper's radix-4 dataflow: "we use Radix-4 ... as it is
     * a better match to the application parameters").  Bit-identical
     * to forward(); halves the number of passes over the coefficient
     * array.  Under a vector dispatch level this maps to the SIMD
     * radix-2 kernel, whose lane-parallel passes subsume the memory
     * win.
     */
    void forwardRadix4(u64* a) const;

    void
    forwardRadix4(std::vector<u64>& a) const
    {
        forwardRadix4(a.data());
    }

    void forward(std::vector<u64>& a) const { forward(a.data()); }
    void inverse(std::vector<u64>& a) const { inverse(a.data()); }

    /// @name Twiddle access for the dispatched kernels
    /// @{
    /** psi^brv(i) for the forward transform (bit-reversed order). */
    const u64* fwdW() const { return fwdW_.data(); }
    /** Shoup quotients matching fwdW(). */
    const u64* fwdWShoup() const { return fwdWShoup_.data(); }
    /** psi^-brv(i) for the inverse transform. */
    const u64* invW() const { return invW_.data(); }
    /** Shoup quotients matching invW(). */
    const u64* invWShoup() const { return invWShoup_.data(); }
    /** n^-1 mod q and its Shoup quotient (inverse normalization). */
    u64 nInvW() const { return nInvW_; }
    u64 nInvWShoup() const { return nInvWShoup_; }
    /// @}

  private:
    size_t n_;
    int logN_;
    Modulus q_;
    std::vector<u64> fwdW_;
    std::vector<u64> fwdWShoup_;
    std::vector<u64> invW_;
    std::vector<u64> invWShoup_;
    u64 nInvW_ = 0;
    u64 nInvWShoup_ = 0;
};

/** Reverse the low `bits` bits of v. */
inline u64
bitReverse(u64 v, int bits)
{
    u64 r = 0;
    for (int i = 0; i < bits; ++i) {
        r = (r << 1) | (v & 1);
        v >>= 1;
    }
    return r;
}

} // namespace hydra

#endif // HYDRA_MATH_NTT_HH
