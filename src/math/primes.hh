/**
 * @file
 * NTT-friendly prime generation and roots of unity.
 */

#ifndef HYDRA_MATH_PRIMES_HH
#define HYDRA_MATH_PRIMES_HH

#include <cstddef>
#include <vector>

#include "math/modarith.hh"

namespace hydra {

/** Deterministic Miller-Rabin primality test for 64-bit integers. */
bool isPrime(u64 n);

/**
 * Generate `count` distinct primes of roughly `bits` bits with
 * p = 1 (mod 2n), suitable for negacyclic NTT of length n.
 * Primes are returned largest-first starting just below 2^bits,
 * skipping any listed in `exclude`.
 */
std::vector<u64> nttPrimes(size_t n, int bits, size_t count,
                           const std::vector<u64>& exclude = {});

/** Find a primitive 2n-th root of unity modulo prime q (q = 1 mod 2n). */
u64 primitiveRoot2N(const Modulus& q, size_t n);

} // namespace hydra

#endif // HYDRA_MATH_PRIMES_HH
