/**
 * @file
 * RNS (residue number system) basis shared by all polynomials of a CKKS
 * context: the chain of ciphertext primes q_0..q_{L-1} plus one special
 * prime p used by hybrid keyswitching, with NTT tables and the cross-prime
 * constants needed for rescaling, ModDown and CRT composition.
 */

#ifndef HYDRA_MATH_RNS_HH
#define HYDRA_MATH_RNS_HH

#include <cstddef>
#include <memory>
#include <vector>

#include "math/bigint.hh"
#include "math/modarith.hh"
#include "math/ntt.hh"

namespace hydra {

/**
 * An RNS basis over ring dimension n.  Limb index k < qCount() refers to
 * ciphertext prime q_k; limb index qCount() refers to the special prime.
 */
class RnsBasis
{
  public:
    /**
     * @param n ring dimension (power of two)
     * @param q_primes ciphertext modulus chain, q_0 first
     * @param special_prime the keyswitching special prime p
     */
    RnsBasis(size_t n, std::vector<u64> q_primes, u64 special_prime);

    size_t n() const { return n_; }

    /** Number of ciphertext primes (excludes the special prime). */
    size_t qCount() const { return mods_.size() - 1; }

    /** Total limb count including the special prime. */
    size_t totalCount() const { return mods_.size(); }

    /** Index of the special prime limb. */
    size_t specialIndex() const { return mods_.size() - 1; }

    const Modulus& mod(size_t k) const { return mods_[k]; }
    const NttTable& ntt(size_t k) const { return *ntts_[k]; }

    /** q_l^{-1} mod q_j (also defined for l or j = special index). */
    u64
    invQlModQj(size_t l, size_t j) const
    {
        return inv_[l][j];
    }

    /**
     * Garner constant for CRT composition over the first `count` limbs:
     * inverse of (q_0 * ... * q_{i-1}) mod q_i.
     */
    u64 garnerInv(size_t i) const { return garnerInv_[i]; }

    /** Product q_0..q_{count-1} as a big integer. */
    BigUInt productQ(size_t count) const;

    /**
     * Exact CRT composition of the residues x_k (k < count) into the
     * centered signed value, returned as long double.
     */
    long double composeCentered(const std::vector<u64>& residues,
                                size_t count) const;

  private:
    size_t n_;
    std::vector<Modulus> mods_;
    std::vector<std::unique_ptr<NttTable>> ntts_;
    /** inv_[l][j] = q_l^{-1} mod q_j. */
    std::vector<std::vector<u64>> inv_;
    std::vector<u64> garnerInv_;
};

} // namespace hydra

#endif // HYDRA_MATH_RNS_HH
