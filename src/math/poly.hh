/**
 * @file
 * Polynomial in R_Q = Z_Q[X]/(X^n + 1) stored in RNS (double-CRT) form.
 *
 * A polynomial owns one residue vector ("limb") per active ciphertext
 * prime, plus optionally one limb for the special keyswitching prime.
 * Limbs can collectively be in coefficient or NTT (evaluation) domain.
 */

#ifndef HYDRA_MATH_POLY_HH
#define HYDRA_MATH_POLY_HH

#include <memory>
#include <vector>

#include "math/rns.hh"

namespace hydra {

/** RNS polynomial with explicit domain tracking. */
class RnsPoly
{
  public:
    RnsPoly() = default;

    /**
     * Zero polynomial.
     * @param basis shared RNS basis
     * @param n_limbs number of active ciphertext primes (q_0..q_{l-1})
     * @param has_special whether the special prime limb is attached
     * @param ntt_form initial domain
     */
    RnsPoly(std::shared_ptr<const RnsBasis> basis, size_t n_limbs,
            bool has_special = false, bool ntt_form = false);

    /**
     * Build from signed coefficients (applied identically to every limb),
     * e.g.\ ternary secrets, error samples or encoded plaintexts.
     */
    static RnsPoly fromSigned(std::shared_ptr<const RnsBasis> basis,
                              size_t n_limbs, bool has_special,
                              const std::vector<i64>& coeffs);

    bool valid() const { return basis_ != nullptr; }
    size_t n() const { return basis_->n(); }
    size_t limbCount() const { return limbs_.size(); }
    size_t nLimbs() const { return nLimbs_; }
    bool hasSpecial() const { return hasSpecial_; }
    bool nttForm() const { return nttForm_; }
    const std::shared_ptr<const RnsBasis>& basis() const { return basis_; }

    /** Basis prime index backing local limb k. */
    size_t
    basisIndex(size_t k) const
    {
        return k < nLimbs_ ? k : basis_->specialIndex();
    }

    const Modulus&
    mod(size_t k) const
    {
        return basis_->mod(basisIndex(k));
    }

    std::vector<u64>& limb(size_t k) { return limbs_[k]; }
    const std::vector<u64>& limb(size_t k) const { return limbs_[k]; }

    /** Set every limb to zero (keeps shape and domain). */
    void setZero();

    /** this += other (matching shape and domain). */
    void add(const RnsPoly& other);

    /** this -= other (matching shape and domain). */
    void sub(const RnsPoly& other);

    /** this = -this. */
    void negate();

    /** Pointwise product; both operands must be in NTT form. */
    void mulPointwise(const RnsPoly& other);

    /** this += a * b pointwise; all three in NTT form. */
    void addMulPointwise(const RnsPoly& a, const RnsPoly& b);

    /** Multiply every limb by a (reduced per prime). */
    void mulScalar(u64 a);

    /** Multiply limb k by its prime-specific scalar a_k. */
    void mulScalarPerLimb(const std::vector<u64>& a);

    /** Convert all limbs to NTT domain. */
    void toNtt();

    /** Convert all limbs to coefficient domain. */
    void fromNtt();

    /**
     * Apply the Galois automorphism X -> X^g (coefficient domain only).
     * @param galois odd exponent g in [1, 2n)
     */
    RnsPoly automorphism(u64 galois) const;

    /**
     * The same automorphism applied in the NTT domain: evaluations at
     * the 2n-th roots permute (f(X^g) at omega equals f at omega^g),
     * so this is a pure index shuffle -- the trick behind rotation
     * hoisting.  Requires NTT form.
     */
    RnsPoly automorphismNtt(u64 galois) const;

    /**
     * Index permutation sigma with NTT(f(X^g))[j] = NTT(f)[sigma(j)]
     * for the bit-reversed negacyclic NTT ordering of length n.
     */
    static std::vector<size_t> nttAutomorphismMap(size_t n, u64 galois);

    /**
     * Memoized variant of nttAutomorphismMap: entries are computed once
     * per (n, galois) pair in a mutex-guarded cache and returned by
     * reference.  BSGS linear transforms and bootstrapping issue
     * hundreds of rotations over a handful of Galois elements, so the
     * n-entry modular-index computation amortizes to a lookup.
     */
    static const std::vector<size_t>& nttAutomorphismMapCached(size_t n,
                                                               u64 galois);

    /**
     * Exact divide-and-round by the modulus of the last limb, dropping
     * that limb: implements both Rescale (last limb = q_l) and ModDown
     * (last limb = special prime).  Works in either domain and preserves
     * the domain of the remaining limbs.
     */
    void divideRoundByLast();

    /** Drop the last limb without rescaling (modulus switching down). */
    void dropLast();

    /** Checks shape/domain compatibility with another polynomial. */
    bool sameShape(const RnsPoly& other) const;

  private:
    std::shared_ptr<const RnsBasis> basis_;
    size_t nLimbs_ = 0;
    bool hasSpecial_ = false;
    bool nttForm_ = false;
    std::vector<std::vector<u64>> limbs_;
};

} // namespace hydra

#endif // HYDRA_MATH_POLY_HH
