/**
 * @file
 * Polynomial in R_Q = Z_Q[X]/(X^n + 1) stored in RNS (double-CRT) form.
 *
 * A polynomial owns one residue vector ("limb") per active ciphertext
 * prime, plus optionally one limb for the special keyswitching prime.
 * All limbs live in a single contiguous, cache-aligned buffer with
 * stride n (limb k occupies words [k*n, (k+1)*n)), acquired from the
 * global BufferPool so steady-state evaluator temporaries recycle
 * storage instead of allocating.  Limbs can collectively be in
 * coefficient or NTT (evaluation) domain.
 */

#ifndef HYDRA_MATH_POLY_HH
#define HYDRA_MATH_POLY_HH

#include <memory>
#include <vector>

#include "common/pool.hh"
#include "math/rns.hh"

namespace hydra {

/**
 * Read-only view of one limb: n consecutive residues inside the flat
 * buffer.  Cheap to copy; never owns memory.
 */
class ConstLimbView
{
  public:
    ConstLimbView(const u64* p, size_t n) : p_(p), n_(n) {}

    const u64* data() const { return p_; }
    size_t size() const { return n_; }
    const u64& operator[](size_t i) const { return p_[i]; }
    const u64* begin() const { return p_; }
    const u64* end() const { return p_ + n_; }

    friend bool
    operator==(ConstLimbView a, ConstLimbView b)
    {
        if (a.n_ != b.n_)
            return false;
        for (size_t i = 0; i < a.n_; ++i)
            if (a.p_[i] != b.p_[i])
                return false;
        return true;
    }

  private:
    const u64* p_;
    size_t n_;
};

/** Mutable view of one limb.  Assignment is deliberately deleted:
 *  copying limb contents goes through RnsPoly::copyLimbFrom. */
class LimbView
{
  public:
    LimbView(u64* p, size_t n) : p_(p), n_(n) {}

    LimbView(const LimbView&) = default;
    LimbView& operator=(const LimbView&) = delete;

    u64* data() const { return p_; }
    size_t size() const { return n_; }
    u64& operator[](size_t i) const { return p_[i]; }
    u64* begin() const { return p_; }
    u64* end() const { return p_ + n_; }

    operator ConstLimbView() const { return {p_, n_}; }

    friend bool
    operator==(LimbView a, ConstLimbView b)
    {
        return ConstLimbView(a) == b;
    }

  private:
    u64* p_;
    size_t n_;
};

/** RNS polynomial with explicit domain tracking. */
class RnsPoly
{
  public:
    RnsPoly() = default;

    /**
     * Zero polynomial.
     * @param basis shared RNS basis
     * @param n_limbs number of active ciphertext primes (q_0..q_{l-1})
     * @param has_special whether the special prime limb is attached
     * @param ntt_form initial domain
     */
    RnsPoly(std::shared_ptr<const RnsBasis> basis, size_t n_limbs,
            bool has_special = false, bool ntt_form = false);

    RnsPoly(const RnsPoly& other);
    RnsPoly& operator=(const RnsPoly& other);
    RnsPoly(RnsPoly&&) noexcept = default;
    RnsPoly& operator=(RnsPoly&&) noexcept = default;
    ~RnsPoly() = default;

    /**
     * Build from signed coefficients (applied identically to every limb),
     * e.g.\ ternary secrets, error samples or encoded plaintexts.
     */
    static RnsPoly fromSigned(std::shared_ptr<const RnsBasis> basis,
                              size_t n_limbs, bool has_special,
                              const std::vector<i64>& coeffs);

    /** Same, from a raw pointer to n coefficients (pooled scratch). */
    static RnsPoly fromSigned(std::shared_ptr<const RnsBasis> basis,
                              size_t n_limbs, bool has_special,
                              const i64* coeffs);

    bool valid() const { return basis_ != nullptr; }
    size_t n() const { return n_; }
    size_t limbCount() const { return limbCount_; }
    size_t nLimbs() const { return nLimbs_; }
    bool hasSpecial() const { return hasSpecial_; }
    bool nttForm() const { return nttForm_; }
    const std::shared_ptr<const RnsBasis>& basis() const { return basis_; }

    /** Basis prime index backing local limb k. */
    size_t
    basisIndex(size_t k) const
    {
        return k < nLimbs_ ? k : basis_->specialIndex();
    }

    const Modulus&
    mod(size_t k) const
    {
        return basis_->mod(basisIndex(k));
    }

    /** Raw pointer to limb k (n consecutive words, stride n). */
    u64* limbData(size_t k) { return buf_.data() + k * n_; }
    const u64* limbData(size_t k) const { return buf_.data() + k * n_; }

    LimbView limb(size_t k) { return {limbData(k), n_}; }
    ConstLimbView limb(size_t k) const { return {limbData(k), n_}; }

    /** this.limb(k) = src.limb(src_k) (contents, not a rebind). */
    void copyLimbFrom(size_t k, const RnsPoly& src, size_t src_k);

    /** Set every limb to zero (keeps shape and domain). */
    void setZero();

    /** this += other (matching shape and domain). */
    void add(const RnsPoly& other);

    /** this -= other (matching shape and domain). */
    void sub(const RnsPoly& other);

    /** this = -this. */
    void negate();

    /** Pointwise product; both operands must be in NTT form. */
    void mulPointwise(const RnsPoly& other);

    /** this += a * b pointwise; all three in NTT form. */
    void addMulPointwise(const RnsPoly& a, const RnsPoly& b);

    /** Multiply every limb by a (reduced per prime). */
    void mulScalar(u64 a);

    /** Multiply limb k by its prime-specific scalar a_k. */
    void mulScalarPerLimb(const std::vector<u64>& a);

    /** Convert all limbs to NTT domain. */
    void toNtt();

    /** Convert all limbs to coefficient domain. */
    void fromNtt();

    /**
     * Apply the Galois automorphism X -> X^g (coefficient domain only).
     * @param galois odd exponent g in [1, 2n)
     */
    RnsPoly automorphism(u64 galois) const;

    /**
     * The same automorphism applied in the NTT domain: evaluations at
     * the 2n-th roots permute (f(X^g) at omega equals f at omega^g),
     * so this is a pure index shuffle -- the trick behind rotation
     * hoisting.  Requires NTT form.
     */
    RnsPoly automorphismNtt(u64 galois) const;

    /**
     * Fused gather-accumulate: this += automorphismNtt of src, without
     * materializing the permuted polynomial.  Both in NTT form with
     * matching shape.  Used by the hoisted-rotation accumulators.
     */
    void addAutomorphismNtt(const RnsPoly& src, u64 galois);

    /**
     * Index permutation sigma with NTT(f(X^g))[j] = NTT(f)[sigma(j)]
     * for the bit-reversed negacyclic NTT ordering of length n.
     */
    static std::vector<size_t> nttAutomorphismMap(size_t n, u64 galois);

    /**
     * Memoized variant of nttAutomorphismMap: entries are computed once
     * per (n, galois) pair in a mutex-guarded cache and returned by
     * reference.  BSGS linear transforms and bootstrapping issue
     * hundreds of rotations over a handful of Galois elements, so the
     * n-entry modular-index computation amortizes to a lookup.
     */
    static const std::vector<size_t>& nttAutomorphismMapCached(size_t n,
                                                               u64 galois);

    /**
     * Exact divide-and-round by the modulus of the last limb, dropping
     * that limb: implements both Rescale (last limb = q_l) and ModDown
     * (last limb = special prime).  Works in either domain and preserves
     * the domain of the remaining limbs.
     */
    void divideRoundByLast();

    /** Drop the last limb without rescaling (modulus switching down). */
    void dropLast();

    /** Checks shape/domain compatibility with another polynomial. */
    bool sameShape(const RnsPoly& other) const;

  private:
    /** Tag: allocate the buffer but skip zero-filling it. */
    struct Uninit
    {
    };

    RnsPoly(std::shared_ptr<const RnsBasis> basis, size_t n_limbs,
            bool has_special, bool ntt_form, Uninit);

    std::shared_ptr<const RnsBasis> basis_;
    size_t nLimbs_ = 0;
    bool hasSpecial_ = false;
    bool nttForm_ = false;
    size_t n_ = 0;         ///< ring dimension = limb stride
    size_t limbCount_ = 0; ///< live limbs (nLimbs_ + special if attached)
    PoolBuffer buf_;       ///< flat limb storage, limbCount_ * n_ words
};

} // namespace hydra

#endif // HYDRA_MATH_POLY_HH
