/**
 * @file
 * Minimal arbitrary-precision unsigned integer.
 *
 * Only the handful of operations needed for exact CRT (Garner)
 * composition during CKKS decoding are provided: multiply/add by a 64-bit
 * word, comparison, subtraction, residue extraction, and conversion to
 * long double.
 */

#ifndef HYDRA_MATH_BIGINT_HH
#define HYDRA_MATH_BIGINT_HH

#include <cstdint>
#include <vector>

#include "math/modarith.hh"

namespace hydra {

/** Unsigned big integer stored little-endian in 64-bit limbs. */
class BigUInt
{
  public:
    BigUInt() = default;

    explicit BigUInt(u64 v)
    {
        if (v)
            limbs_.push_back(v);
    }

    bool isZero() const { return limbs_.empty(); }

    /** this = this * m + a (fused Horner step for Garner composition). */
    void mulAdd(u64 m, u64 a);

    /** this *= m. */
    void mulU64(u64 m) { mulAdd(m, 0); }

    /** this += a. */
    void addU64(u64 a);

    /** this -= other; other must be <= this. */
    void sub(const BigUInt& other);

    /** -1 / 0 / +1 three-way comparison. */
    int compare(const BigUInt& other) const;

    /** this mod m. */
    u64 modU64(u64 m) const;

    /** Approximate conversion (exact for values < 2^64). */
    long double toLongDouble() const;

    size_t limbCount() const { return limbs_.size(); }

  private:
    std::vector<u64> limbs_;
};

} // namespace hydra

#endif // HYDRA_MATH_BIGINT_HH
