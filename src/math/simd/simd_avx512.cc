/**
 * @file
 * AVX-512 kernel set: 8 x u64 lanes (requires F+DQ+BW+VL).
 *
 * Every kernel evaluates the exact integer expressions of the scalar
 * oracle per element -- the same Barrett quotient estimate with the
 * same two corrections, the same Harvey lazy bounds in the NTT -- so
 * outputs are bit-identical to the scalar path.
 *
 * 64-bit modular multiplication has no single-instruction high half on
 * x86 SIMD; mulhi64() builds it from four vpmuludq partial products.
 * vpmullq (DQ) covers the low half, and vpminuq implements the
 * conditional correction ("subtract q if >= q") branchlessly:
 * min(x, x - q) picks x - q exactly when x >= q because the subtraction
 * wraps otherwise.
 *
 * NTT stages with butterfly offset t >= 8 vectorize directly (all
 * lanes share one broadcast twiddle).  The short-stride stages
 * (t = 4, 2, 1) process 16-element tiles instead: two zmm loads are
 * transposed into u/v lane vectors with vpermi2q, the twiddles -- which
 * are contiguous in the bit-reversed tables -- are splat per block, and
 * the results transposed back.  This keeps every stage of the
 * transform vectorized.
 */

#include "math/simd/simd.hh"

#include <immintrin.h>

#include "math/ntt.hh"

namespace hydra::simd {

namespace {

inline __m512i
loadu(const void* p)
{
    return _mm512_loadu_si512(p);
}

inline void
storeu(void* p, __m512i v)
{
    _mm512_storeu_si512(p, v);
}

/** x - q if x >= q else x (unsigned); the Barrett/lazy correction. */
inline __m512i
csub(__m512i x, __m512i q)
{
    return _mm512_min_epu64(x, _mm512_sub_epi64(x, q));
}

/**
 * High 64 bits of x * y per lane from four 32x32 partial products.
 * xh/yh are the operands shifted right 32 (hoisted by callers that
 * reuse them).
 */
inline __m512i
mulhi64(__m512i x, __m512i xh, __m512i y, __m512i yh)
{
    const __m512i lomask = _mm512_set1_epi64(0xffffffff);
    __m512i w0 = _mm512_mul_epu32(x, y);
    __m512i w1 = _mm512_mul_epu32(x, yh);
    __m512i w2 = _mm512_mul_epu32(xh, y);
    __m512i w3 = _mm512_mul_epu32(xh, yh);
    __m512i s1 = _mm512_add_epi64(w1, _mm512_srli_epi64(w0, 32));
    __m512i s2 = _mm512_add_epi64(w2, _mm512_and_si512(s1, lomask));
    return _mm512_add_epi64(
        _mm512_add_epi64(w3, _mm512_srli_epi64(s1, 32)),
        _mm512_srli_epi64(s2, 32));
}

/** Harvey lazy product a * w mod q in [0, 2q); w/ws/q pre-broadcast. */
inline __m512i
mulModLazyVec(__m512i x, __m512i wv, __m512i wsv, __m512i wsvh,
              __m512i qv)
{
    __m512i xh = _mm512_srli_epi64(x, 32);
    __m512i hi = mulhi64(x, xh, wsv, wsvh);
    return _mm512_sub_epi64(_mm512_mullo_epi64(x, wv),
                            _mm512_mullo_epi64(hi, qv));
}

/** Per-modulus constants for the vector Barrett reduction. */
struct BarrettVec
{
    __m512i qv;
    __m512i muv;
    __m512i muvh;
    __m128i shr_k1;  ///< >> (k-1)
    __m128i shl_65k; ///< << (65-k)
    __m128i shr_k1p; ///< >> (k+1)
    __m128i shl_63k; ///< << (63-k)

    explicit BarrettVec(const Modulus& m)
        : qv(_mm512_set1_epi64(static_cast<i64>(m.value()))),
          muv(_mm512_set1_epi64(static_cast<i64>(m.barrettMu()))),
          muvh(_mm512_srli_epi64(muv, 32)),
          shr_k1(_mm_cvtsi32_si128(m.bits() - 1)),
          shl_65k(_mm_cvtsi32_si128(65 - m.bits())),
          shr_k1p(_mm_cvtsi32_si128(m.bits() + 1)),
          shl_63k(_mm_cvtsi32_si128(63 - m.bits()))
    {
    }

    /**
     * Canonical (x * y) mod q from the 128-bit product (hi, lo):
     * the scalar Modulus::reduce expression, two corrections included.
     */
    __m512i
    reduce(__m512i hi, __m512i lo) const
    {
        // x_shift = x >> (k-1), x < q^2 so x_shift < 2^63.
        __m512i xs = _mm512_or_si512(_mm512_sll_epi64(hi, shl_65k),
                                     _mm512_srl_epi64(lo, shr_k1));
        __m512i xsh = _mm512_srli_epi64(xs, 32);
        __m512i thi = mulhi64(xs, xsh, muv, muvh);
        __m512i tlo = _mm512_mullo_epi64(xs, muv);
        // q_est = (x_shift * mu) >> (k+1)
        __m512i qest = _mm512_or_si512(_mm512_sll_epi64(thi, shl_63k),
                                       _mm512_srl_epi64(tlo, shr_k1p));
        __m512i r =
            _mm512_sub_epi64(lo, _mm512_mullo_epi64(qest, qv));
        return csub(csub(r, qv), qv);
    }

    /** Canonical x[i]*y[i] mod q; xh hoisted by the caller. */
    __m512i
    mulMod(__m512i x, __m512i xh, __m512i y) const
    {
        __m512i yh = _mm512_srli_epi64(y, 32);
        __m512i hi = mulhi64(x, xh, y, yh);
        __m512i lo = _mm512_mullo_epi64(x, y);
        return reduce(hi, lo);
    }
};

void
addSpanAvx512(u64* a, const u64* b, size_t n, u64 q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i s = _mm512_add_epi64(loadu(a + i), loadu(b + i));
        storeu(a + i, csub(s, qv));
    }
    for (; i < n; ++i) {
        u64 s = a[i] + b[i];
        a[i] = s >= q ? s - q : s;
    }
}

void
subSpanAvx512(u64* a, const u64* b, size_t n, u64 q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // a + q - b lands in (0, 2q); one correction recanonicalizes.
        __m512i s = _mm512_sub_epi64(
            _mm512_add_epi64(loadu(a + i), qv), loadu(b + i));
        storeu(a + i, csub(s, qv));
    }
    for (; i < n; ++i)
        a[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + q - b[i];
}

void
negSpanAvx512(u64* a, size_t n, u64 q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q));
    const __m512i zero = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i x = loadu(a + i);
        __mmask8 nz = _mm512_cmpneq_epu64_mask(x, zero);
        storeu(a + i,
               _mm512_maskz_sub_epi64(nz, qv, x));
    }
    for (; i < n; ++i)
        a[i] = a[i] == 0 ? 0 : q - a[i];
}

void
mulSpanAvx512(u64* a, const u64* b, size_t n, const Modulus& m)
{
    const BarrettVec bv(m);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i x = loadu(a + i);
        __m512i xh = _mm512_srli_epi64(x, 32);
        storeu(a + i, bv.mulMod(x, xh, loadu(b + i)));
    }
    for (; i < n; ++i)
        a[i] = m.mulMod(a[i], b[i]);
}

void
macSpanAvx512(u64* acc, const u64* x, const u64* y, size_t n,
              const Modulus& m)
{
    const BarrettVec bv(m);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i xv = loadu(x + i);
        __m512i xvh = _mm512_srli_epi64(xv, 32);
        __m512i p = bv.mulMod(xv, xvh, loadu(y + i));
        __m512i s = _mm512_add_epi64(loadu(acc + i), p);
        storeu(acc + i, csub(s, bv.qv));
    }
    for (; i < n; ++i)
        acc[i] = m.addMod(acc[i], m.mulMod(x[i], y[i]));
}

void
macPairSpanAvx512(u64* acc0, u64* acc1, const u64* x, const u64* y0,
                  const u64* y1, size_t n, const Modulus& m)
{
    const BarrettVec bv(m);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i xv = loadu(x + i);
        __m512i xvh = _mm512_srli_epi64(xv, 32);
        __m512i p0 = bv.mulMod(xv, xvh, loadu(y0 + i));
        __m512i p1 = bv.mulMod(xv, xvh, loadu(y1 + i));
        __m512i s0 = _mm512_add_epi64(loadu(acc0 + i), p0);
        __m512i s1 = _mm512_add_epi64(loadu(acc1 + i), p1);
        storeu(acc0 + i, csub(s0, bv.qv));
        storeu(acc1 + i, csub(s1, bv.qv));
    }
    for (; i < n; ++i) {
        u64 xi = x[i];
        acc0[i] = m.addMod(acc0[i], m.mulMod(xi, y0[i]));
        acc1[i] = m.addMod(acc1[i], m.mulMod(xi, y1[i]));
    }
}

void
mulScalarSpanAvx512(u64* a, size_t n, u64 w, u64 w_shoup, u64 q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q));
    const __m512i wv = _mm512_set1_epi64(static_cast<i64>(w));
    const __m512i wsv = _mm512_set1_epi64(static_cast<i64>(w_shoup));
    const __m512i wsvh = _mm512_srli_epi64(wsv, 32);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i r = mulModLazyVec(loadu(a + i), wv, wsv, wsvh, qv);
        storeu(a + i, csub(r, qv));
    }
    for (; i < n; ++i) {
        u64 hi = static_cast<u64>(
            (static_cast<u128>(a[i]) * w_shoup) >> 64);
        u64 r = a[i] * w - hi * q;
        a[i] = r >= q ? r - q : r;
    }
}

void
subMulScalarSpanAvx512(u64* a, const u64* c, size_t n, u64 w,
                       u64 w_shoup, u64 q)
{
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q));
    const __m512i wv = _mm512_set1_epi64(static_cast<i64>(w));
    const __m512i wsv = _mm512_set1_epi64(static_cast<i64>(w_shoup));
    const __m512i wsvh = _mm512_srli_epi64(wsv, 32);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i d = _mm512_sub_epi64(
            _mm512_add_epi64(loadu(a + i), qv), loadu(c + i));
        d = csub(d, qv);
        __m512i r = mulModLazyVec(d, wv, wsv, wsvh, qv);
        storeu(a + i, csub(r, qv));
    }
    for (; i < n; ++i) {
        u64 d = a[i] >= c[i] ? a[i] - c[i] : a[i] + q - c[i];
        u64 hi =
            static_cast<u64>((static_cast<u128>(d) * w_shoup) >> 64);
        u64 r = d * w - hi * q;
        a[i] = r >= q ? r - q : r;
    }
}

void
toCenteredSpanAvx512(i64* dst, const u64* src, size_t n, u64 q)
{
    const u64 half = q / 2;
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q));
    const __m512i hv = _mm512_set1_epi64(static_cast<i64>(half));
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        // q < 2^62, so unsigned and signed compares agree here.
        __m512i x = loadu(src + i);
        __mmask8 gt = _mm512_cmpgt_epu64_mask(x, hv);
        storeu(dst + i, _mm512_mask_sub_epi64(x, gt, x, qv));
    }
    for (; i < n; ++i) {
        u64 x = src[i];
        dst[i] = x > half ? static_cast<i64>(x) - static_cast<i64>(q)
                          : static_cast<i64>(x);
    }
}

void
reduceCenteredSpanAvx512(u64* dst, const i64* src, size_t n,
                         const Modulus& m)
{
    // The Barrett estimate needs |x| < q^2; with |x| < 2^63 that holds
    // once q >= 2^32.  Smaller moduli (tests only) stay scalar.
    if (m.bits() < 33) {
        for (size_t i = 0; i < n; ++i)
            dst[i] = m.reduceI64(src[i]);
        return;
    }
    const BarrettVec bv(m);
    const __m512i zero = _mm512_setzero_si512();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m512i x = loadu(src + i);
        __mmask8 neg = _mm512_cmplt_epi64_mask(x, zero);
        __m512i ax = _mm512_abs_epi64(x);
        // Single-word Barrett: the product hi half is zero.
        __m512i r = bv.reduce(zero, ax);
        // (-a) mod q = q - (a mod q), fixing up the a mod q == 0 case.
        __mmask8 nz = _mm512_cmpneq_epu64_mask(r, zero);
        __m512i rneg = _mm512_maskz_sub_epi64(nz, bv.qv, r);
        storeu(dst + i, _mm512_mask_blend_epi64(neg, r, rneg));
    }
    for (; i < n; ++i)
        dst[i] = m.reduceI64(src[i]);
}

/**
 * Index patterns for the short-stride NTT stages: a 16-element tile
 * (two zmm registers z0/z1) is transposed into the butterfly-top (u)
 * and butterfly-bottom (v) operand vectors and back.  Patterns index
 * the 16-lane concatenation accepted by vpermi2q.
 */
struct TilePerm
{
    __m512i load_u, load_v;   ///< tile -> u/v operand vectors
    __m512i store_z0, store_z1; ///< (u', v') -> tile halves
    __m512i tw_splat;         ///< contiguous twiddles -> per-lane
    bool splat;               ///< whether tw_splat is needed (t > 1)
};

inline __m512i
setrIdx(long long a, long long b, long long c, long long d,
        long long e, long long f, long long g, long long h)
{
    return _mm512_setr_epi64(a, b, c, d, e, f, g, h);
}

/** Patterns for butterfly offset t in {4, 2, 1}. */
inline TilePerm
tilePerm(size_t t)
{
    TilePerm p;
    if (t == 4) {
        p.load_u = setrIdx(0, 1, 2, 3, 8, 9, 10, 11);
        p.load_v = setrIdx(4, 5, 6, 7, 12, 13, 14, 15);
        p.store_z0 = setrIdx(0, 1, 2, 3, 8, 9, 10, 11);
        p.store_z1 = setrIdx(4, 5, 6, 7, 12, 13, 14, 15);
        p.tw_splat = setrIdx(0, 0, 0, 0, 1, 1, 1, 1);
        p.splat = true;
    } else if (t == 2) {
        p.load_u = setrIdx(0, 1, 4, 5, 8, 9, 12, 13);
        p.load_v = setrIdx(2, 3, 6, 7, 10, 11, 14, 15);
        p.store_z0 = setrIdx(0, 1, 8, 9, 2, 3, 10, 11);
        p.store_z1 = setrIdx(4, 5, 12, 13, 6, 7, 14, 15);
        p.tw_splat = setrIdx(0, 0, 1, 1, 2, 2, 3, 3);
        p.splat = true;
    } else {
        p.load_u = setrIdx(0, 2, 4, 6, 8, 10, 12, 14);
        p.load_v = setrIdx(1, 3, 5, 7, 9, 11, 13, 15);
        p.store_z0 = setrIdx(0, 8, 1, 9, 2, 10, 3, 11);
        p.store_z1 = setrIdx(4, 12, 5, 13, 6, 14, 7, 15);
        p.tw_splat = _mm512_setzero_si512();
        p.splat = false;
    }
    return p;
}

void
nttForwardAvx512(const NttTable& tb, u64* a)
{
    const size_t nn = tb.n();
    const u64 q = tb.modulus().value();
    if (nn < 16) {
        scalarKernels().nttForward(tb, a);
        return;
    }
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q));
    const __m512i tqv = _mm512_set1_epi64(static_cast<i64>(2 * q));
    const u64* W = tb.fwdW();
    const u64* WS = tb.fwdWShoup();

    size_t t = nn;
    size_t m = 1;
    // Long strides: every lane of a block shares one twiddle.
    for (; m < nn; m <<= 1) {
        t >>= 1;
        if (t < 8)
            break;
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t;
            const __m512i wv =
                _mm512_set1_epi64(static_cast<i64>(W[m + i]));
            const __m512i wsv =
                _mm512_set1_epi64(static_cast<i64>(WS[m + i]));
            const __m512i wsvh = _mm512_srli_epi64(wsv, 32);
            for (size_t j = j1; j < j1 + t; j += 8) {
                __m512i u = csub(loadu(a + j), tqv);
                __m512i v = mulModLazyVec(loadu(a + j + t), wv, wsv,
                                          wsvh, qv);
                storeu(a + j, _mm512_add_epi64(u, v));
                storeu(a + j + t,
                       _mm512_add_epi64(_mm512_sub_epi64(u, v), tqv));
            }
        }
    }
    // Short strides (t = 4, 2, 1): 16-element tile transpose.
    for (; m < nn; m <<= 1, t >>= 1) {
        const TilePerm p = tilePerm(t);
        const size_t blocks_per_tile = 8 / t;
        for (size_t base = 0, blk = 0; base < nn;
             base += 16, blk += blocks_per_tile) {
            __m512i z0 = loadu(a + base);
            __m512i z1 = loadu(a + base + 8);
            __m512i u = _mm512_permutex2var_epi64(z0, p.load_u, z1);
            __m512i v = _mm512_permutex2var_epi64(z0, p.load_v, z1);
            // Twiddles for the tile's blocks are contiguous at
            // W[m + blk]; splat each one across its block's lanes.
            __m512i wv = loadu(W + m + blk);
            __m512i wsv = loadu(WS + m + blk);
            if (p.splat) {
                wv = _mm512_permutexvar_epi64(p.tw_splat, wv);
                wsv = _mm512_permutexvar_epi64(p.tw_splat, wsv);
            }
            __m512i wsvh = _mm512_srli_epi64(wsv, 32);
            u = csub(u, tqv);
            v = mulModLazyVec(v, wv, wsv, wsvh, qv);
            __m512i nu = _mm512_add_epi64(u, v);
            __m512i nv =
                _mm512_add_epi64(_mm512_sub_epi64(u, v), tqv);
            storeu(a + base,
                   _mm512_permutex2var_epi64(nu, p.store_z0, nv));
            storeu(a + base + 8,
                   _mm512_permutex2var_epi64(nu, p.store_z1, nv));
        }
    }
    for (size_t j = 0; j < nn; j += 8) {
        __m512i x = csub(loadu(a + j), tqv);
        storeu(a + j, csub(x, qv));
    }
}

void
nttInverseAvx512(const NttTable& tb, u64* a)
{
    const size_t nn = tb.n();
    const u64 q = tb.modulus().value();
    if (nn < 16) {
        scalarKernels().nttInverse(tb, a);
        return;
    }
    const __m512i qv = _mm512_set1_epi64(static_cast<i64>(q));
    const __m512i tqv = _mm512_set1_epi64(static_cast<i64>(2 * q));
    const u64* W = tb.invW();
    const u64* WS = tb.invWShoup();

    size_t t = 1;
    size_t m = nn;
    // Short strides first (t = 1, 2, 4): tile transpose.
    for (; m > 1 && t < 8; m >>= 1, t <<= 1) {
        const size_t h = m >> 1;
        const TilePerm p = tilePerm(t);
        const size_t blocks_per_tile = 8 / t;
        for (size_t base = 0, blk = 0; base < nn;
             base += 16, blk += blocks_per_tile) {
            __m512i z0 = loadu(a + base);
            __m512i z1 = loadu(a + base + 8);
            __m512i u = _mm512_permutex2var_epi64(z0, p.load_u, z1);
            __m512i v = _mm512_permutex2var_epi64(z0, p.load_v, z1);
            __m512i wv = loadu(W + h + blk);
            __m512i wsv = loadu(WS + h + blk);
            if (p.splat) {
                wv = _mm512_permutexvar_epi64(p.tw_splat, wv);
                wsv = _mm512_permutexvar_epi64(p.tw_splat, wsv);
            }
            __m512i wsvh = _mm512_srli_epi64(wsv, 32);
            __m512i sum = csub(_mm512_add_epi64(u, v), tqv);
            __m512i diff =
                _mm512_add_epi64(_mm512_sub_epi64(u, v), tqv);
            __m512i nv = mulModLazyVec(diff, wv, wsv, wsvh, qv);
            storeu(a + base,
                   _mm512_permutex2var_epi64(sum, p.store_z0, nv));
            storeu(a + base + 8,
                   _mm512_permutex2var_epi64(sum, p.store_z1, nv));
        }
    }
    // Long strides: broadcast twiddle per block.
    for (; m > 1; m >>= 1, t <<= 1) {
        const size_t h = m >> 1;
        size_t j1 = 0;
        for (size_t i = 0; i < h; ++i) {
            const __m512i wv =
                _mm512_set1_epi64(static_cast<i64>(W[h + i]));
            const __m512i wsv =
                _mm512_set1_epi64(static_cast<i64>(WS[h + i]));
            const __m512i wsvh = _mm512_srli_epi64(wsv, 32);
            for (size_t j = j1; j < j1 + t; j += 8) {
                __m512i u = loadu(a + j);
                __m512i v = loadu(a + j + t);
                __m512i sum = csub(_mm512_add_epi64(u, v), tqv);
                __m512i diff =
                    _mm512_add_epi64(_mm512_sub_epi64(u, v), tqv);
                storeu(a + j, sum);
                storeu(a + j + t,
                       mulModLazyVec(diff, wv, wsv, wsvh, qv));
            }
            j1 += 2 * t;
        }
    }
    const __m512i niv =
        _mm512_set1_epi64(static_cast<i64>(tb.nInvW()));
    const __m512i nisv =
        _mm512_set1_epi64(static_cast<i64>(tb.nInvWShoup()));
    const __m512i nisvh = _mm512_srli_epi64(nisv, 32);
    for (size_t j = 0; j < nn; j += 8) {
        __m512i x = mulModLazyVec(loadu(a + j), niv, nisv, nisvh, qv);
        storeu(a + j, csub(x, qv));
    }
}

const Kernels avx512_kernels = {
    SimdLevel::Avx512,
    addSpanAvx512,
    subSpanAvx512,
    negSpanAvx512,
    mulSpanAvx512,
    macSpanAvx512,
    macPairSpanAvx512,
    mulScalarSpanAvx512,
    subMulScalarSpanAvx512,
    toCenteredSpanAvx512,
    reduceCenteredSpanAvx512,
    nttForwardAvx512,
    // The lane-parallel radix-2 kernel already subsumes the memory win
    // radix-4 exists for; outputs are bit-identical either way.
    nttForwardAvx512,
    nttInverseAvx512,
};

} // namespace

const Kernels&
avx512Kernels()
{
    return avx512_kernels;
}

} // namespace hydra::simd
