/**
 * @file
 * Scalar kernel set and the dispatch table for the SIMD math backend.
 *
 * The scalar kernels are the bit-exactness oracle: they are the exact
 * loops the math layer ran before vectorization, so a build with
 * HYDRA_SIMD=OFF (or HYDRA_SIMD_LEVEL=scalar) executes the identical
 * instruction stream the pre-SIMD library did.
 */

#include "math/simd/simd.hh"

#include <algorithm>
#include <atomic>
#include <mutex>

#include "common/logging.hh"
#include "math/ntt.hh"

namespace hydra::simd {

// Vector tables, provided by the -mavx* translation units when the
// build compiles them in (HYDRA_SIMD plus compiler support).
#ifdef HYDRA_SIMD_AVX2
const Kernels& avx2Kernels();
#endif
#ifdef HYDRA_SIMD_AVX512
const Kernels& avx512Kernels();
#endif

namespace {

/** Harvey lazy product: a * w mod q reduced only into [0, 2q). */
inline u64
mulModLazy(u64 a, u64 w, u64 w_shoup, u64 q)
{
    u64 hi = static_cast<u64>((static_cast<u128>(a) * w_shoup) >> 64);
    return a * w - hi * q;
}

void
addSpanScalar(u64* a, const u64* b, size_t n, u64 q)
{
    for (size_t i = 0; i < n; ++i) {
        u64 s = a[i] + b[i];
        a[i] = s >= q ? s - q : s;
    }
}

void
subSpanScalar(u64* a, const u64* b, size_t n, u64 q)
{
    for (size_t i = 0; i < n; ++i)
        a[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + q - b[i];
}

void
negSpanScalar(u64* a, size_t n, u64 q)
{
    for (size_t i = 0; i < n; ++i)
        a[i] = a[i] == 0 ? 0 : q - a[i];
}

void
mulSpanScalar(u64* a, const u64* b, size_t n, const Modulus& m)
{
    for (size_t i = 0; i < n; ++i)
        a[i] = m.mulMod(a[i], b[i]);
}

void
macSpanScalar(u64* acc, const u64* x, const u64* y, size_t n,
              const Modulus& m)
{
    for (size_t i = 0; i < n; ++i)
        acc[i] = m.addMod(acc[i], m.mulMod(x[i], y[i]));
}

void
macPairSpanScalar(u64* acc0, u64* acc1, const u64* x, const u64* y0,
                  const u64* y1, size_t n, const Modulus& m)
{
    for (size_t i = 0; i < n; ++i) {
        u64 xi = x[i];
        acc0[i] = m.addMod(acc0[i], m.mulMod(xi, y0[i]));
        acc1[i] = m.addMod(acc1[i], m.mulMod(xi, y1[i]));
    }
}

void
mulScalarSpanScalar(u64* a, size_t n, u64 w, u64 w_shoup, u64 q)
{
    for (size_t i = 0; i < n; ++i) {
        u64 r = mulModLazy(a[i], w, w_shoup, q);
        a[i] = r >= q ? r - q : r;
    }
}

void
subMulScalarSpanScalar(u64* a, const u64* c, size_t n, u64 w,
                       u64 w_shoup, u64 q)
{
    for (size_t i = 0; i < n; ++i) {
        u64 d = a[i] >= c[i] ? a[i] - c[i] : a[i] + q - c[i];
        u64 r = mulModLazy(d, w, w_shoup, q);
        a[i] = r >= q ? r - q : r;
    }
}

void
toCenteredSpanScalar(i64* dst, const u64* src, size_t n, u64 q)
{
    u64 half = q / 2;
    for (size_t i = 0; i < n; ++i) {
        u64 x = src[i];
        dst[i] = x > half ? static_cast<i64>(x) - static_cast<i64>(q)
                          : static_cast<i64>(x);
    }
}

void
reduceCenteredSpanScalar(u64* dst, const i64* src, size_t n,
                         const Modulus& m)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = m.reduceI64(src[i]);
}

void
nttForwardScalar(const NttTable& tb, u64* a)
{
    // Harvey lazy butterflies: array values live in [0, 4q) between
    // stages.  Each butterfly conditionally pulls its top input into
    // [0, 2q), takes the twiddle product lazily in [0, 2q), and emits
    // sums/differences in [0, 4q) with no per-element reduction.  One
    // normalization pass at the end restores canonical [0, q) values,
    // so outputs are bit-identical to the fully-reduced form.
    const size_t nn = tb.n();
    const u64 q = tb.modulus().value();
    const u64 two_q = 2 * q;
    const u64* W = tb.fwdW();
    const u64* WS = tb.fwdWShoup();
    size_t t = nn;
    for (size_t m = 1; m < nn; m <<= 1) {
        t >>= 1;
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t;
            u64 w = W[m + i];
            u64 ws = WS[m + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                if (u >= two_q)
                    u -= two_q;
                u64 v = mulModLazy(a[j + t], w, ws, q);
                a[j] = u + v;
                a[j + t] = u - v + two_q;
            }
        }
    }
    for (size_t j = 0; j < nn; ++j) {
        u64 x = a[j];
        if (x >= two_q)
            x -= two_q;
        if (x >= q)
            x -= q;
        a[j] = x;
    }
}

void
nttForwardRadix4Scalar(const NttTable& tb, u64* a)
{
    // Same lazy [0, 4q) discipline as nttForwardScalar, applied to the
    // fused two-stage pass: the stage-1 outputs feed stage 2 through
    // the same conditional 2q pull-down a fresh butterfly load would
    // get.
    const size_t nn = tb.n();
    const u64 q = tb.modulus().value();
    const u64 two_q = 2 * q;
    const u64* W = tb.fwdW();
    const u64* WS = tb.fwdWShoup();
    size_t m = 1;
    while (m * 2 < nn) {
        // Fuse stages m and 2m: one pass applies both butterflies.
        size_t t1 = nn / (2 * m); // stage-1 offset
        size_t t2 = t1 >> 1;      // stage-2 offset
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t1;
            u64 w1 = W[m + i], ws1 = WS[m + i];
            u64 w2a = W[2 * m + 2 * i], ws2a = WS[2 * m + 2 * i];
            u64 w2b = W[2 * m + 2 * i + 1], ws2b = WS[2 * m + 2 * i + 1];
            for (size_t j = j1; j < j1 + t2; ++j) {
                u64 x0 = a[j];
                if (x0 >= two_q)
                    x0 -= two_q;
                u64 x1 = a[j + t2];
                if (x1 >= two_q)
                    x1 -= two_q;
                // Stage 1: pairs (x0,x2) and (x1,x3), twiddle S1.
                u64 v0 = mulModLazy(a[j + t1], w1, ws1, q);
                u64 v1 = mulModLazy(a[j + t1 + t2], w1, ws1, q);
                u64 u0 = x0 + v0;
                u64 u2 = x0 - v0 + two_q;
                u64 u1 = x1 + v1;
                u64 u3 = x1 - v1 + two_q;
                if (u0 >= two_q)
                    u0 -= two_q;
                if (u2 >= two_q)
                    u2 -= two_q;
                // Stage 2: (u0,u1) with S2a, (u2,u3) with S2b.
                u64 y0 = mulModLazy(u1, w2a, ws2a, q);
                u64 y1 = mulModLazy(u3, w2b, ws2b, q);
                a[j] = u0 + y0;
                a[j + t2] = u0 - y0 + two_q;
                a[j + t1] = u2 + y1;
                a[j + t1 + t2] = u2 - y1 + two_q;
            }
        }
        m <<= 2;
    }
    if (m < nn) {
        // Odd log2(n): one radix-2 stage remains (t == 1).
        size_t t = nn / (2 * m);
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t;
            u64 w = W[m + i], ws = WS[m + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                if (u >= two_q)
                    u -= two_q;
                u64 v = mulModLazy(a[j + t], w, ws, q);
                a[j] = u + v;
                a[j + t] = u - v + two_q;
            }
        }
    }
    for (size_t j = 0; j < nn; ++j) {
        u64 x = a[j];
        if (x >= two_q)
            x -= two_q;
        if (x >= q)
            x -= q;
        a[j] = x;
    }
}

void
nttInverseScalar(const NttTable& tb, u64* a)
{
    // Lazy Gentleman-Sande: values stay in [0, 2q) across stages (the
    // sum gets one conditional 2q pull-down, the difference is absorbed
    // by the lazy twiddle product).  The final n^-1 scaling reduces to
    // canonical [0, q).
    const size_t nn = tb.n();
    const u64 q = tb.modulus().value();
    const u64 two_q = 2 * q;
    const u64* W = tb.invW();
    const u64* WS = tb.invWShoup();
    size_t t = 1;
    for (size_t m = nn; m > 1; m >>= 1) {
        size_t j1 = 0;
        size_t h = m >> 1;
        for (size_t i = 0; i < h; ++i) {
            u64 w = W[h + i];
            u64 ws = WS[h + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = a[j + t];
                u64 sum = u + v;
                if (sum >= two_q)
                    sum -= two_q;
                a[j] = sum;
                a[j + t] = mulModLazy(u - v + two_q, w, ws, q);
            }
            j1 += 2 * t;
        }
        t <<= 1;
    }
    u64 ni = tb.nInvW();
    u64 nis = tb.nInvWShoup();
    for (size_t j = 0; j < nn; ++j) {
        u64 x = mulModLazy(a[j], ni, nis, q);
        a[j] = x >= q ? x - q : x;
    }
}

const Kernels scalar_kernels = {
    SimdLevel::Scalar,
    addSpanScalar,
    subSpanScalar,
    negSpanScalar,
    mulSpanScalar,
    macSpanScalar,
    macPairSpanScalar,
    mulScalarSpanScalar,
    subMulScalarSpanScalar,
    toCenteredSpanScalar,
    reduceCenteredSpanScalar,
    nttForwardScalar,
    nttForwardRadix4Scalar,
    nttInverseScalar,
};

/** Table for `level`, or nullptr when not compiled in. */
const Kernels*
tableFor(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return &scalar_kernels;
      case SimdLevel::Avx2:
#ifdef HYDRA_SIMD_AVX2
        return &avx2Kernels();
#else
        return nullptr;
#endif
      case SimdLevel::Avx512:
#ifdef HYDRA_SIMD_AVX512
        return &avx512Kernels();
#else
        return nullptr;
#endif
    }
    return nullptr;
}

std::atomic<const Kernels*> g_active{nullptr};
std::once_flag g_init_flag;

/** Strongest compiled+detected level at or below `cap`. */
const Kernels*
strongestTable(SimdLevel cap)
{
    SimdLevel detected = detectedSimdLevel();
    int best = std::min(static_cast<int>(cap),
                        static_cast<int>(detected));
    for (int l = best; l > 0; --l) {
        const Kernels* table = tableFor(static_cast<SimdLevel>(l));
        if (table != nullptr)
            return table;
    }
    return &scalar_kernels;
}

void
ensureInit()
{
    std::call_once(g_init_flag, [] {
        // Pick the strongest runnable level, then apply the optional
        // HYDRA_SIMD_LEVEL cap.  Asking for a level the process cannot
        // run clamps down (never up) with a warning.
        const Kernels* best = strongestTable(SimdLevel::Avx512);
        SimdLevel want = simdLevelFromEnv(best->level);
        const Kernels* chosen = strongestTable(want);
        if (chosen->level != want) {
            warn("HYDRA_SIMD_LEVEL=%s not available "
                 "(best this process can run: %s)",
                 simdLevelName(want), simdLevelName(chosen->level));
        }
        g_active.store(chosen, std::memory_order_release);
    });
}

} // namespace

const Kernels&
kernels()
{
    const Kernels* k = g_active.load(std::memory_order_acquire);
    if (k == nullptr) {
        ensureInit();
        k = g_active.load(std::memory_order_acquire);
    }
    return *k;
}

const Kernels&
scalarKernels()
{
    return scalar_kernels;
}

SimdLevel
activeLevel()
{
    return kernels().level;
}

SimdLevel
bestAvailableLevel()
{
    return strongestTable(SimdLevel::Avx512)->level;
}

SimdLevel
setLevel(SimdLevel want)
{
    ensureInit();
    const Kernels* chosen = strongestTable(want);
    g_active.store(chosen, std::memory_order_release);
    return chosen->level;
}

} // namespace hydra::simd
