/**
 * @file
 * AVX2 kernel set: 4 x u64 lanes.
 *
 * Same per-element arithmetic as the scalar oracle (bit-identical
 * outputs); see simd_avx512.cc for the kernel-by-kernel commentary.
 * AVX2 lacks unsigned 64-bit compares, 64-bit mullo and lane-crossing
 * 64-bit permutes, so:
 *
 *   - unsigned compares bias both operands by 2^63 and compare signed,
 *   - mullo/mulhi both come from vpmuludq partial products,
 *   - the short-stride NTT stages (t < 4) stay scalar -- two stages
 *     out of log2(n), a modest tax on the mid-tier level (the AVX-512
 *     set vectorizes them with tile transposes).
 */

#include "math/simd/simd.hh"

#include <immintrin.h>

#include "math/ntt.hh"

namespace hydra::simd {

namespace {

inline __m256i
loadu(const void* p)
{
    return _mm256_loadu_si256(static_cast<const __m256i*>(p));
}

inline void
storeu(void* p, __m256i v)
{
    _mm256_storeu_si256(static_cast<__m256i*>(p), v);
}

inline __m256i
signBias()
{
    return _mm256_set1_epi64x(static_cast<i64>(0x8000000000000000ULL));
}

/** a > b unsigned, per 64-bit lane. */
inline __m256i
cmpgtU64(__m256i a, __m256i b)
{
    const __m256i bias = signBias();
    return _mm256_cmpgt_epi64(_mm256_xor_si256(a, bias),
                              _mm256_xor_si256(b, bias));
}

/** x - q if x >= q else x (unsigned). */
inline __m256i
csub(__m256i x, __m256i q)
{
    __m256i sub = _mm256_sub_epi64(x, q);
    __m256i keep = cmpgtU64(q, x); // q > x: keep x
    return _mm256_blendv_epi8(sub, x, keep);
}

/** High 64 bits of x * y per lane (vpmuludq partial products). */
inline __m256i
mulhi64(__m256i x, __m256i xh, __m256i y, __m256i yh)
{
    const __m256i lomask = _mm256_set1_epi64x(0xffffffff);
    __m256i w0 = _mm256_mul_epu32(x, y);
    __m256i w1 = _mm256_mul_epu32(x, yh);
    __m256i w2 = _mm256_mul_epu32(xh, y);
    __m256i w3 = _mm256_mul_epu32(xh, yh);
    __m256i s1 = _mm256_add_epi64(w1, _mm256_srli_epi64(w0, 32));
    __m256i s2 = _mm256_add_epi64(w2, _mm256_and_si256(s1, lomask));
    return _mm256_add_epi64(
        _mm256_add_epi64(w3, _mm256_srli_epi64(s1, 32)),
        _mm256_srli_epi64(s2, 32));
}

/** Low 64 bits of x * y per lane. */
inline __m256i
mullo64(__m256i x, __m256i xh, __m256i y, __m256i yh)
{
    __m256i w0 = _mm256_mul_epu32(x, y);
    __m256i mid = _mm256_add_epi64(_mm256_mul_epu32(x, yh),
                                   _mm256_mul_epu32(xh, y));
    return _mm256_add_epi64(w0, _mm256_slli_epi64(mid, 32));
}

/** Harvey lazy product a * w mod q in [0, 2q); constants hoisted. */
inline __m256i
mulModLazyVec(__m256i x, __m256i wv, __m256i wvh, __m256i wsv,
              __m256i wsvh, __m256i qv, __m256i qvh)
{
    __m256i xh = _mm256_srli_epi64(x, 32);
    __m256i hi = mulhi64(x, xh, wsv, wsvh);
    __m256i hih = _mm256_srli_epi64(hi, 32);
    return _mm256_sub_epi64(mullo64(x, xh, wv, wvh),
                            mullo64(hi, hih, qv, qvh));
}

/** Per-modulus constants for the vector Barrett reduction. */
struct BarrettVec
{
    __m256i qv;
    __m256i qvh;
    __m256i muv;
    __m256i muvh;
    __m128i shr_k1;
    __m128i shl_65k;
    __m128i shr_k1p;
    __m128i shl_63k;

    explicit BarrettVec(const Modulus& m)
        : qv(_mm256_set1_epi64x(static_cast<i64>(m.value()))),
          qvh(_mm256_srli_epi64(qv, 32)),
          muv(_mm256_set1_epi64x(static_cast<i64>(m.barrettMu()))),
          muvh(_mm256_srli_epi64(muv, 32)),
          shr_k1(_mm_cvtsi32_si128(m.bits() - 1)),
          shl_65k(_mm_cvtsi32_si128(65 - m.bits())),
          shr_k1p(_mm_cvtsi32_si128(m.bits() + 1)),
          shl_63k(_mm_cvtsi32_si128(63 - m.bits()))
    {
    }

    __m256i
    reduce(__m256i hi, __m256i lo) const
    {
        __m256i xs = _mm256_or_si256(_mm256_sll_epi64(hi, shl_65k),
                                     _mm256_srl_epi64(lo, shr_k1));
        __m256i xsh = _mm256_srli_epi64(xs, 32);
        __m256i thi = mulhi64(xs, xsh, muv, muvh);
        __m256i tlo = mullo64(xs, xsh, muv, muvh);
        __m256i qest = _mm256_or_si256(_mm256_sll_epi64(thi, shl_63k),
                                       _mm256_srl_epi64(tlo, shr_k1p));
        __m256i qesth = _mm256_srli_epi64(qest, 32);
        __m256i r =
            _mm256_sub_epi64(lo, mullo64(qest, qesth, qv, qvh));
        return csub(csub(r, qv), qv);
    }

    __m256i
    mulMod(__m256i x, __m256i xh, __m256i y) const
    {
        __m256i yh = _mm256_srli_epi64(y, 32);
        __m256i hi = mulhi64(x, xh, y, yh);
        __m256i lo = mullo64(x, xh, y, yh);
        return reduce(hi, lo);
    }
};

void
addSpanAvx2(u64* a, const u64* b, size_t n, u64 q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i s = _mm256_add_epi64(loadu(a + i), loadu(b + i));
        storeu(a + i, csub(s, qv));
    }
    for (; i < n; ++i) {
        u64 s = a[i] + b[i];
        a[i] = s >= q ? s - q : s;
    }
}

void
subSpanAvx2(u64* a, const u64* b, size_t n, u64 q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i s = _mm256_sub_epi64(
            _mm256_add_epi64(loadu(a + i), qv), loadu(b + i));
        storeu(a + i, csub(s, qv));
    }
    for (; i < n; ++i)
        a[i] = a[i] >= b[i] ? a[i] - b[i] : a[i] + q - b[i];
}

void
negSpanAvx2(u64* a, size_t n, u64 q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q));
    const __m256i zero = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i x = loadu(a + i);
        __m256i is_zero = _mm256_cmpeq_epi64(x, zero);
        storeu(a + i, _mm256_andnot_si256(
                          is_zero, _mm256_sub_epi64(qv, x)));
    }
    for (; i < n; ++i)
        a[i] = a[i] == 0 ? 0 : q - a[i];
}

void
mulSpanAvx2(u64* a, const u64* b, size_t n, const Modulus& m)
{
    const BarrettVec bv(m);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i x = loadu(a + i);
        __m256i xh = _mm256_srli_epi64(x, 32);
        storeu(a + i, bv.mulMod(x, xh, loadu(b + i)));
    }
    for (; i < n; ++i)
        a[i] = m.mulMod(a[i], b[i]);
}

void
macSpanAvx2(u64* acc, const u64* x, const u64* y, size_t n,
            const Modulus& m)
{
    const BarrettVec bv(m);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i xv = loadu(x + i);
        __m256i xvh = _mm256_srli_epi64(xv, 32);
        __m256i p = bv.mulMod(xv, xvh, loadu(y + i));
        __m256i s = _mm256_add_epi64(loadu(acc + i), p);
        storeu(acc + i, csub(s, bv.qv));
    }
    for (; i < n; ++i)
        acc[i] = m.addMod(acc[i], m.mulMod(x[i], y[i]));
}

void
macPairSpanAvx2(u64* acc0, u64* acc1, const u64* x, const u64* y0,
                const u64* y1, size_t n, const Modulus& m)
{
    const BarrettVec bv(m);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i xv = loadu(x + i);
        __m256i xvh = _mm256_srli_epi64(xv, 32);
        __m256i p0 = bv.mulMod(xv, xvh, loadu(y0 + i));
        __m256i p1 = bv.mulMod(xv, xvh, loadu(y1 + i));
        __m256i s0 = _mm256_add_epi64(loadu(acc0 + i), p0);
        __m256i s1 = _mm256_add_epi64(loadu(acc1 + i), p1);
        storeu(acc0 + i, csub(s0, bv.qv));
        storeu(acc1 + i, csub(s1, bv.qv));
    }
    for (; i < n; ++i) {
        u64 xi = x[i];
        acc0[i] = m.addMod(acc0[i], m.mulMod(xi, y0[i]));
        acc1[i] = m.addMod(acc1[i], m.mulMod(xi, y1[i]));
    }
}

void
mulScalarSpanAvx2(u64* a, size_t n, u64 w, u64 w_shoup, u64 q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q));
    const __m256i qvh = _mm256_srli_epi64(qv, 32);
    const __m256i wv = _mm256_set1_epi64x(static_cast<i64>(w));
    const __m256i wvh = _mm256_srli_epi64(wv, 32);
    const __m256i wsv = _mm256_set1_epi64x(static_cast<i64>(w_shoup));
    const __m256i wsvh = _mm256_srli_epi64(wsv, 32);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i r = mulModLazyVec(loadu(a + i), wv, wvh, wsv, wsvh,
                                  qv, qvh);
        storeu(a + i, csub(r, qv));
    }
    for (; i < n; ++i) {
        u64 hi = static_cast<u64>(
            (static_cast<u128>(a[i]) * w_shoup) >> 64);
        u64 r = a[i] * w - hi * q;
        a[i] = r >= q ? r - q : r;
    }
}

void
subMulScalarSpanAvx2(u64* a, const u64* c, size_t n, u64 w,
                     u64 w_shoup, u64 q)
{
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q));
    const __m256i qvh = _mm256_srli_epi64(qv, 32);
    const __m256i wv = _mm256_set1_epi64x(static_cast<i64>(w));
    const __m256i wvh = _mm256_srli_epi64(wv, 32);
    const __m256i wsv = _mm256_set1_epi64x(static_cast<i64>(w_shoup));
    const __m256i wsvh = _mm256_srli_epi64(wsv, 32);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i d = _mm256_sub_epi64(
            _mm256_add_epi64(loadu(a + i), qv), loadu(c + i));
        d = csub(d, qv);
        __m256i r = mulModLazyVec(d, wv, wvh, wsv, wsvh, qv, qvh);
        storeu(a + i, csub(r, qv));
    }
    for (; i < n; ++i) {
        u64 d = a[i] >= c[i] ? a[i] - c[i] : a[i] + q - c[i];
        u64 hi =
            static_cast<u64>((static_cast<u128>(d) * w_shoup) >> 64);
        u64 r = d * w - hi * q;
        a[i] = r >= q ? r - q : r;
    }
}

void
toCenteredSpanAvx2(i64* dst, const u64* src, size_t n, u64 q)
{
    const u64 half = q / 2;
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q));
    const __m256i hv = _mm256_set1_epi64x(static_cast<i64>(half));
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        // q < 2^62: values fit in i64, signed compare suffices.
        __m256i x = loadu(src + i);
        __m256i gt = _mm256_cmpgt_epi64(x, hv);
        storeu(dst + i,
               _mm256_sub_epi64(x, _mm256_and_si256(gt, qv)));
    }
    for (; i < n; ++i) {
        u64 x = src[i];
        dst[i] = x > half ? static_cast<i64>(x) - static_cast<i64>(q)
                          : static_cast<i64>(x);
    }
}

void
reduceCenteredSpanAvx2(u64* dst, const i64* src, size_t n,
                       const Modulus& m)
{
    if (m.bits() < 33) {
        for (size_t i = 0; i < n; ++i)
            dst[i] = m.reduceI64(src[i]);
        return;
    }
    const BarrettVec bv(m);
    const __m256i zero = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m256i x = loadu(src + i);
        __m256i neg = _mm256_cmpgt_epi64(zero, x);
        // |x| via two's complement: (x ^ mask) - mask.
        __m256i ax = _mm256_sub_epi64(_mm256_xor_si256(x, neg), neg);
        __m256i r = bv.reduce(zero, ax);
        __m256i is_zero = _mm256_cmpeq_epi64(r, zero);
        __m256i rneg = _mm256_andnot_si256(
            is_zero, _mm256_sub_epi64(bv.qv, r));
        storeu(dst + i, _mm256_blendv_epi8(r, rneg, neg));
    }
    for (; i < n; ++i)
        dst[i] = m.reduceI64(src[i]);
}

/** Scalar butterfly pass for the short strides (t < 4). */
inline void
forwardStageScalar(u64* a, const u64* W, const u64* WS, size_t m,
                   size_t t, u64 q, u64 two_q)
{
    for (size_t i = 0; i < m; ++i) {
        size_t j1 = 2 * i * t;
        u64 w = W[m + i];
        u64 ws = WS[m + i];
        for (size_t j = j1; j < j1 + t; ++j) {
            u64 u = a[j];
            if (u >= two_q)
                u -= two_q;
            u64 hi = static_cast<u64>(
                (static_cast<u128>(a[j + t]) * ws) >> 64);
            u64 v = a[j + t] * w - hi * q;
            a[j] = u + v;
            a[j + t] = u - v + two_q;
        }
    }
}

void
nttForwardAvx2(const NttTable& tb, u64* a)
{
    const size_t nn = tb.n();
    const u64 q = tb.modulus().value();
    const u64 two_q = 2 * q;
    if (nn < 8) {
        scalarKernels().nttForward(tb, a);
        return;
    }
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q));
    const __m256i qvh = _mm256_srli_epi64(qv, 32);
    const __m256i tqv = _mm256_set1_epi64x(static_cast<i64>(two_q));
    const u64* W = tb.fwdW();
    const u64* WS = tb.fwdWShoup();

    size_t t = nn;
    size_t m = 1;
    for (; m < nn; m <<= 1) {
        t >>= 1;
        if (t < 4)
            break;
        for (size_t i = 0; i < m; ++i) {
            size_t j1 = 2 * i * t;
            const __m256i wv =
                _mm256_set1_epi64x(static_cast<i64>(W[m + i]));
            const __m256i wvh = _mm256_srli_epi64(wv, 32);
            const __m256i wsv =
                _mm256_set1_epi64x(static_cast<i64>(WS[m + i]));
            const __m256i wsvh = _mm256_srli_epi64(wsv, 32);
            for (size_t j = j1; j < j1 + t; j += 4) {
                __m256i u = csub(loadu(a + j), tqv);
                __m256i v = mulModLazyVec(loadu(a + j + t), wv, wvh,
                                          wsv, wsvh, qv, qvh);
                storeu(a + j, _mm256_add_epi64(u, v));
                storeu(a + j + t,
                       _mm256_add_epi64(_mm256_sub_epi64(u, v), tqv));
            }
        }
    }
    // Short strides (t = 2, 1) stay scalar on AVX2.
    for (; m < nn; m <<= 1, t >>= 1)
        forwardStageScalar(a, W, WS, m, t, q, two_q);
    for (size_t j = 0; j < nn; j += 4) {
        __m256i x = csub(loadu(a + j), tqv);
        storeu(a + j, csub(x, qv));
    }
}

void
nttInverseAvx2(const NttTable& tb, u64* a)
{
    const size_t nn = tb.n();
    const u64 q = tb.modulus().value();
    const u64 two_q = 2 * q;
    if (nn < 8) {
        scalarKernels().nttInverse(tb, a);
        return;
    }
    const __m256i qv = _mm256_set1_epi64x(static_cast<i64>(q));
    const __m256i qvh = _mm256_srli_epi64(qv, 32);
    const __m256i tqv = _mm256_set1_epi64x(static_cast<i64>(two_q));
    const u64* W = tb.invW();
    const u64* WS = tb.invWShoup();

    size_t t = 1;
    size_t m = nn;
    // Short strides (t = 1, 2) scalar.
    for (; m > 1 && t < 4; m >>= 1, t <<= 1) {
        size_t h = m >> 1;
        size_t j1 = 0;
        for (size_t i = 0; i < h; ++i) {
            u64 w = W[h + i];
            u64 ws = WS[h + i];
            for (size_t j = j1; j < j1 + t; ++j) {
                u64 u = a[j];
                u64 v = a[j + t];
                u64 sum = u + v;
                if (sum >= two_q)
                    sum -= two_q;
                a[j] = sum;
                u64 d = u - v + two_q;
                u64 hi = static_cast<u64>(
                    (static_cast<u128>(d) * ws) >> 64);
                a[j + t] = d * w - hi * q;
            }
            j1 += 2 * t;
        }
    }
    for (; m > 1; m >>= 1, t <<= 1) {
        const size_t h = m >> 1;
        size_t j1 = 0;
        for (size_t i = 0; i < h; ++i) {
            const __m256i wv =
                _mm256_set1_epi64x(static_cast<i64>(W[h + i]));
            const __m256i wvh = _mm256_srli_epi64(wv, 32);
            const __m256i wsv =
                _mm256_set1_epi64x(static_cast<i64>(WS[h + i]));
            const __m256i wsvh = _mm256_srli_epi64(wsv, 32);
            for (size_t j = j1; j < j1 + t; j += 4) {
                __m256i u = loadu(a + j);
                __m256i v = loadu(a + j + t);
                __m256i sum = csub(_mm256_add_epi64(u, v), tqv);
                __m256i diff =
                    _mm256_add_epi64(_mm256_sub_epi64(u, v), tqv);
                storeu(a + j, sum);
                storeu(a + j + t,
                       mulModLazyVec(diff, wv, wvh, wsv, wsvh, qv,
                                     qvh));
            }
            j1 += 2 * t;
        }
    }
    const __m256i niv =
        _mm256_set1_epi64x(static_cast<i64>(tb.nInvW()));
    const __m256i nivh = _mm256_srli_epi64(niv, 32);
    const __m256i nisv =
        _mm256_set1_epi64x(static_cast<i64>(tb.nInvWShoup()));
    const __m256i nisvh = _mm256_srli_epi64(nisv, 32);
    for (size_t j = 0; j < nn; j += 4) {
        __m256i x = mulModLazyVec(loadu(a + j), niv, nivh, nisv,
                                  nisvh, qv, qvh);
        storeu(a + j, csub(x, qv));
    }
}

const Kernels avx2_kernels = {
    SimdLevel::Avx2,
    addSpanAvx2,
    subSpanAvx2,
    negSpanAvx2,
    mulSpanAvx2,
    macSpanAvx2,
    macPairSpanAvx2,
    mulScalarSpanAvx2,
    subMulScalarSpanAvx2,
    toCenteredSpanAvx2,
    reduceCenteredSpanAvx2,
    nttForwardAvx2,
    nttForwardAvx2,
    nttInverseAvx2,
};

} // namespace

const Kernels&
avx2Kernels()
{
    return avx2_kernels;
}

} // namespace hydra::simd
