/**
 * @file
 * Runtime-dispatched SIMD kernel set for the FHE hot path.
 *
 * Every inner loop the CKKS evaluator spends its time in -- Harvey
 * lazy-reduction NTT butterflies, Barrett modular span arithmetic, the
 * keyswitch multiply-accumulate, and the centered-lift spans of digit
 * decomposition -- is routed through one process-wide table of kernel
 * function pointers.  Three tables exist:
 *
 *   scalar  -- always compiled; the bit-exactness oracle.  Identical
 *              arithmetic to the pre-SIMD code paths.
 *   avx2    -- 4 x u64 lanes (compiled when HYDRA_SIMD is ON and the
 *              compiler supports -mavx2).
 *   avx512  -- 8 x u64 lanes, needs F+DQ+BW+VL (vpmullq, vpminuq,
 *              64-bit lane permutes for the short-stride NTT stages).
 *
 * The active table is chosen once per process: the strongest level that
 * is both compiled in and reported by cpuid, optionally capped by the
 * HYDRA_SIMD_LEVEL environment variable ("scalar" | "avx2" | "avx512")
 * for A/B runs and CI equivalence checks.  Tests may force a level at
 * runtime with setLevel().
 *
 * Every kernel computes the exact same per-element integer expressions
 * as its scalar counterpart (same lazy [0,2q)/[0,4q) bounds in the NTT,
 * same Barrett quotient estimate, same correction count), so outputs
 * are bit-identical at every level -- vectorization changes execution
 * order across elements, never the value any element takes.
 */

#ifndef HYDRA_MATH_SIMD_SIMD_HH
#define HYDRA_MATH_SIMD_SIMD_HH

#include <cstddef>

#include "common/cpu.hh"
#include "math/modarith.hh"

namespace hydra {

class NttTable;

namespace simd {

/**
 * One dispatch level's kernel set.  Span kernels take canonical [0, q)
 * inputs and produce canonical outputs; n is the element count and may
 * be any size (vector bodies handle the tail scalar).
 */
struct Kernels
{
    SimdLevel level;

    /** a[i] = (a[i] + b[i]) mod q. */
    void (*addSpan)(u64* a, const u64* b, size_t n, u64 q);
    /** a[i] = (a[i] - b[i]) mod q. */
    void (*subSpan)(u64* a, const u64* b, size_t n, u64 q);
    /** a[i] = (-a[i]) mod q. */
    void (*negSpan)(u64* a, size_t n, u64 q);
    /** a[i] = (a[i] * b[i]) mod q (Barrett). */
    void (*mulSpan)(u64* a, const u64* b, size_t n, const Modulus& m);
    /** acc[i] = (acc[i] + x[i] * y[i]) mod q. */
    void (*macSpan)(u64* acc, const u64* x, const u64* y, size_t n,
                    const Modulus& m);
    /**
     * Fused keyswitch MAC: acc0[i] += x[i]*y0[i], acc1[i] += x[i]*y1[i]
     * (mod q).  Shares the decomposition of x across both products --
     * the dominant loop of accumulateKey.
     */
    void (*macPairSpan)(u64* acc0, u64* acc1, const u64* x,
                        const u64* y0, const u64* y1, size_t n,
                        const Modulus& m);
    /** a[i] = (a[i] * w) mod q via the Shoup quotient w_shoup. */
    void (*mulScalarSpan)(u64* a, size_t n, u64 w, u64 w_shoup, u64 q);
    /** a[i] = ((a[i] - c[i]) * w) mod q (rescale/ModDown combine). */
    void (*subMulScalarSpan)(u64* a, const u64* c, size_t n, u64 w,
                             u64 w_shoup, u64 q);
    /** dst[i] = centered representative of src[i] in [-q/2, q/2]. */
    void (*toCenteredSpan)(i64* dst, const u64* src, size_t n, u64 q);
    /** dst[i] = src[i] mod q lifted to [0, q) (digit decomposition). */
    void (*reduceCenteredSpan)(u64* dst, const i64* src, size_t n,
                               const Modulus& m);

    /** In-place forward NTT (lazy Harvey butterflies). */
    void (*nttForward)(const NttTable& t, u64* a);
    /** Radix-4 forward (bit-identical to nttForward). */
    void (*nttForwardRadix4)(const NttTable& t, u64* a);
    /** In-place inverse NTT. */
    void (*nttInverse)(const NttTable& t, u64* a);
};

/** The active kernel table (initialized on first use). */
const Kernels& kernels();

/** The scalar oracle table, regardless of the active level. */
const Kernels& scalarKernels();

/** Level of the active table. */
SimdLevel activeLevel();

/**
 * Strongest level this process can actually run: compiled in AND
 * supported by the host CPU (before any HYDRA_SIMD_LEVEL cap).
 */
SimdLevel bestAvailableLevel();

/**
 * Force a dispatch level (clamped to bestAvailableLevel); returns the
 * level actually applied.  Intended for tests and A/B benches; safe to
 * call at any time -- kernels at every level are bit-identical, so
 * in-flight spans finishing on the old table stay correct.
 */
SimdLevel setLevel(SimdLevel want);

} // namespace simd
} // namespace hydra

#endif // HYDRA_MATH_SIMD_SIMD_HH
