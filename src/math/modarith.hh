/**
 * @file
 * 64-bit modular arithmetic with Barrett reduction.
 *
 * All FHE arithmetic in Hydra happens in rings Z_q with word-sized NTT
 * primes q < 2^62.  The hardware MM unit in the paper is built on the
 * Barrett algorithm; we use the same reduction here so the functional
 * library mirrors the modelled datapath.
 */

#ifndef HYDRA_MATH_MODARITH_HH
#define HYDRA_MATH_MODARITH_HH

#include <bit>
#include <cstdint>

#include "common/logging.hh"

namespace hydra {

using u64 = std::uint64_t;
using i64 = std::int64_t;
using u128 = unsigned __int128;

/**
 * A modulus q together with its precomputed Barrett constant.
 *
 * Uses the textbook shifted Barrett reduction: with k = bitlen(q) and
 * mu = floor(2^(2k) / q), the quotient estimate
 *     q_est = ((x >> (k-1)) * mu) >> (k+1)
 * satisfies q_true - 2 <= q_est <= q_true for any x < q^2, so at most two
 * correction subtractions are needed.  Immutable after construction.
 */
class Modulus
{
  public:
    Modulus() = default;

    explicit Modulus(u64 q)
        : q_(q)
    {
        HYDRA_ASSERT(q >= 2 && q < (1ULL << 62), "modulus out of range");
        k_ = 64 - std::countl_zero(q);
        // mu = floor(2^(2k) / q) < 2^(k+1) <= 2^63, fits in u64.
        mu_ = static_cast<u64>((static_cast<u128>(1) << (2 * k_)) / q);
    }

    u64 value() const { return q_; }

    /** Bit length of q. */
    int bits() const { return k_; }

    /** Barrett constant mu = floor(2^(2k) / q) (for SIMD kernels). */
    u64 barrettMu() const { return mu_; }

    /** Reduce x < q^2 modulo q via Barrett. */
    u64
    reduce(u128 x) const
    {
        u64 x_shift = static_cast<u64>(x >> (k_ - 1));
        u64 q_est = static_cast<u64>(
            (static_cast<u128>(x_shift) * mu_) >> (k_ + 1));
        u64 r = static_cast<u64>(x - static_cast<u128>(q_est) * q_);
        while (r >= q_)
            r -= q_;
        return r;
    }

    /** (a * b) mod q for a, b already reduced. */
    u64
    mulMod(u64 a, u64 b) const
    {
        return reduce(static_cast<u128>(a) * b);
    }

    /** (a + b) mod q for a, b already reduced. */
    u64
    addMod(u64 a, u64 b) const
    {
        u64 s = a + b;
        return s >= q_ ? s - q_ : s;
    }

    /** (a - b) mod q for a, b already reduced. */
    u64
    subMod(u64 a, u64 b) const
    {
        return a >= b ? a - b : a + q_ - b;
    }

    /** (-a) mod q. */
    u64
    negMod(u64 a) const
    {
        return a == 0 ? 0 : q_ - a;
    }

    /** a^e mod q via square-and-multiply. */
    u64
    powMod(u64 a, u64 e) const
    {
        u64 r = 1;
        u64 base = a % q_;
        while (e) {
            if (e & 1)
                r = mulMod(r, base);
            base = mulMod(base, base);
            e >>= 1;
        }
        return r;
    }

    /** Multiplicative inverse for prime q (Fermat). */
    u64
    invMod(u64 a) const
    {
        HYDRA_ASSERT(a % q_ != 0, "inverse of zero");
        return powMod(a, q_ - 2);
    }

    /** Reduce an arbitrary u64 (not necessarily a product). */
    u64
    reduceU64(u64 x) const
    {
        return x % q_;
    }

    /** Reduce a signed value into [0, q). */
    u64
    reduceI64(i64 x) const
    {
        i64 m = x % static_cast<i64>(q_);
        if (m < 0)
            m += static_cast<i64>(q_);
        return static_cast<u64>(m);
    }

    /** Centered representative in [-q/2, q/2]. */
    i64
    toCentered(u64 x) const
    {
        return x > q_ / 2
            ? static_cast<i64>(x) - static_cast<i64>(q_)
            : static_cast<i64>(x);
    }

    bool operator==(const Modulus& o) const { return q_ == o.q_; }

  private:
    u64 q_ = 0;
    u64 mu_ = 0;
    int k_ = 0;
};

/**
 * Shoup-precomputed multiplier: multiplication by a fixed constant w mod q
 * in two machine multiplies.  Used for NTT twiddle factors, matching the
 * constant-multiplier DSP layout of the hardware NTT unit.
 */
class ShoupMul
{
  public:
    ShoupMul() = default;

    ShoupMul(u64 w, const Modulus& m)
        : w_(w),
          wShoup_(static_cast<u64>((static_cast<u128>(w) << 64) / m.value()))
    {
    }

    u64 value() const { return w_; }

    /** Precomputed quotient w' = floor(w * 2^64 / q). */
    u64 shoup() const { return wShoup_; }

    /** (a * w) mod q; a must be < q. */
    u64
    mulMod(u64 a, const Modulus& m) const
    {
        u64 hi = static_cast<u64>((static_cast<u128>(a) * wShoup_) >> 64);
        u64 r = a * w_ - hi * m.value();
        return r >= m.value() ? r - m.value() : r;
    }

    /**
     * Harvey-style lazy product: congruent to a * w mod q but only
     * reduced into [0, 2q).  The quotient estimate floor(a * w' / 2^64)
     * with w' = floor(w * 2^64 / q) errs by at most one, for ANY u64
     * input a -- so lazy [0, 4q) NTT operands are fine.  Skipping the
     * final correction keeps the butterfly at two multiplies plus one
     * subtraction.
     */
    u64
    mulModLazy(u64 a, u64 q) const
    {
        u64 hi = static_cast<u64>((static_cast<u128>(a) * wShoup_) >> 64);
        return a * w_ - hi * q;
    }

  private:
    u64 w_ = 0;
    u64 wShoup_ = 0;
};

} // namespace hydra

#endif // HYDRA_MATH_MODARITH_HH
