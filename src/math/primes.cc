#include "math/primes.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hydra {

namespace {

/** Modular exponentiation for arbitrary u64 modulus (no precomputation). */
u64
powModSlow(u64 a, u64 e, u64 m)
{
    u128 r = 1;
    u128 base = a % m;
    while (e) {
        if (e & 1)
            r = r * base % m;
        base = base * base % m;
        e >>= 1;
    }
    return static_cast<u64>(r);
}

bool
millerRabinWitness(u64 n, u64 a, u64 d, int s)
{
    u64 x = powModSlow(a, d, n);
    if (x == 1 || x == n - 1)
        return false;
    for (int i = 1; i < s; ++i) {
        x = static_cast<u64>(static_cast<u128>(x) * x % n);
        if (x == n - 1)
            return false;
    }
    return true; // composite witness found
}

} // namespace

bool
isPrime(u64 n)
{
    if (n < 2)
        return false;
    for (u64 p : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                  19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (n % p == 0)
            return n == p;
    }
    u64 d = n - 1;
    int s = 0;
    while ((d & 1) == 0) {
        d >>= 1;
        ++s;
    }
    // Deterministic witness set for all n < 2^64.
    for (u64 a : {2ULL, 3ULL, 5ULL, 7ULL, 11ULL, 13ULL, 17ULL,
                  19ULL, 23ULL, 29ULL, 31ULL, 37ULL}) {
        if (millerRabinWitness(n, a, d, s))
            return false;
    }
    return true;
}

std::vector<u64>
nttPrimes(size_t n, int bits, size_t count, const std::vector<u64>& exclude)
{
    HYDRA_ASSERT(bits >= 20 && bits <= 61, "prime size out of range");
    u64 step = 2 * static_cast<u64>(n);
    // Start at the largest multiple of 2n below 2^bits, plus 1.
    u64 candidate = ((1ULL << bits) / step) * step + 1;
    std::vector<u64> out;
    while (out.size() < count) {
        if (candidate <= (1ULL << (bits - 1)))
            fatal("ran out of %d-bit NTT primes for n=%zu", bits, n);
        if (isPrime(candidate) &&
            std::find(exclude.begin(), exclude.end(), candidate) ==
                exclude.end()) {
            out.push_back(candidate);
        }
        candidate -= step;
    }
    return out;
}

u64
primitiveRoot2N(const Modulus& q, size_t n)
{
    u64 qv = q.value();
    u64 order = 2 * static_cast<u64>(n);
    HYDRA_ASSERT((qv - 1) % order == 0, "q != 1 mod 2n");
    u64 cofactor = (qv - 1) / order;
    // Try small candidates g; psi = g^cofactor is a 2n-th root of unity.
    // It is primitive iff psi^n == -1.
    for (u64 g = 2; g < qv; ++g) {
        u64 psi = q.powMod(g, cofactor);
        if (q.powMod(psi, static_cast<u64>(n)) == qv - 1)
            return psi;
    }
    panic("no primitive 2n-th root found for q=%llu",
          static_cast<unsigned long long>(qv));
}

} // namespace hydra
