#include "common/pool.hh"

#include <cstdlib>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"

namespace hydra {

namespace {

constexpr size_t kAlignment = 64; // one cache line

/**
 * Set while the singleton is alive.  PoolBuffers destroyed during
 * static teardown after the pool itself (e.g. function-local static
 * fixtures in benches) free their memory directly instead of touching
 * a dead bucket map.
 */
bool g_pool_alive = false;

std::uint64_t*
alignedAlloc(size_t words)
{
    // aligned_alloc requires the size to be a multiple of the alignment.
    size_t bytes = (words * sizeof(std::uint64_t) + kAlignment - 1) /
                   kAlignment * kAlignment;
    void* p = std::aligned_alloc(kAlignment, bytes);
    HYDRA_ASSERT(p != nullptr, "buffer pool allocation failed");
    return static_cast<std::uint64_t*>(p);
}

} // namespace

struct BufferPool::Impl
{
    mutable std::mutex m;
    /** Idle buffers keyed by exact word count. */
    std::unordered_map<size_t, std::vector<std::uint64_t*>> buckets;
    Stats stats;
};

BufferPool::BufferPool() : impl_(new Impl)
{
    g_pool_alive = true;
}

BufferPool::~BufferPool()
{
    g_pool_alive = false;
    for (auto& [words, list] : impl_->buckets)
        for (std::uint64_t* p : list)
            std::free(p);
    delete impl_;
}

BufferPool&
BufferPool::global()
{
    static BufferPool pool;
    return pool;
}

PoolBuffer
BufferPool::acquire(size_t words)
{
    HYDRA_ASSERT(words > 0, "cannot acquire an empty buffer");
    {
        std::lock_guard<std::mutex> lock(impl_->m);
        auto it = impl_->buckets.find(words);
        if (it != impl_->buckets.end() && !it->second.empty()) {
            std::uint64_t* p = it->second.back();
            it->second.pop_back();
            ++impl_->stats.hits;
            ++impl_->stats.outstanding;
            --impl_->stats.cached;
            impl_->stats.cachedWords -= words;
            return PoolBuffer(p, words);
        }
        ++impl_->stats.misses;
        ++impl_->stats.outstanding;
    }
    // Allocate outside the lock; the counters above already reserved
    // this buffer's accounting.
    return PoolBuffer(alignedAlloc(words), words);
}

void
BufferPool::release(std::uint64_t* p, size_t words)
{
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->buckets[words].push_back(p);
    ++impl_->stats.released;
    --impl_->stats.outstanding;
    ++impl_->stats.cached;
    impl_->stats.cachedWords += words;
}

BufferPool::Stats
BufferPool::stats() const
{
    std::lock_guard<std::mutex> lock(impl_->m);
    return impl_->stats;
}

void
BufferPool::resetStats()
{
    std::lock_guard<std::mutex> lock(impl_->m);
    impl_->stats.hits = 0;
    impl_->stats.misses = 0;
    impl_->stats.released = 0;
}

void
BufferPool::trim()
{
    std::lock_guard<std::mutex> lock(impl_->m);
    for (auto& [words, list] : impl_->buckets)
        for (std::uint64_t* p : list)
            std::free(p);
    impl_->buckets.clear();
    impl_->stats.cached = 0;
    impl_->stats.cachedWords = 0;
}

void
PoolBuffer::reset()
{
    if (!ptr_)
        return;
    if (g_pool_alive)
        BufferPool::global().release(ptr_, words_);
    else
        std::free(ptr_);
    ptr_ = nullptr;
    words_ = 0;
}

} // namespace hydra
