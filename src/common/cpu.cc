#include "common/cpu.hh"

#include <cstdlib>
#include <cstring>

#include "common/logging.hh"

namespace hydra {

const char*
simdLevelName(SimdLevel level)
{
    switch (level) {
      case SimdLevel::Scalar:
        return "scalar";
      case SimdLevel::Avx2:
        return "avx2";
      case SimdLevel::Avx512:
        return "avx512";
    }
    return "scalar";
}

bool
simdLevelFromName(const char* name, SimdLevel& out)
{
    if (std::strcmp(name, "scalar") == 0) {
        out = SimdLevel::Scalar;
        return true;
    }
    if (std::strcmp(name, "avx2") == 0) {
        out = SimdLevel::Avx2;
        return true;
    }
    if (std::strcmp(name, "avx512") == 0) {
        out = SimdLevel::Avx512;
        return true;
    }
    return false;
}

SimdLevel
detectedSimdLevel()
{
#if defined(__x86_64__) || defined(_M_X64)
    // The kernels use 512-bit integer lanes (F), 64-bit mullo (DQ),
    // byte/word blends (BW) and 128/256-bit tails (VL).
    if (__builtin_cpu_supports("avx512f") &&
        __builtin_cpu_supports("avx512dq") &&
        __builtin_cpu_supports("avx512bw") &&
        __builtin_cpu_supports("avx512vl")) {
        return SimdLevel::Avx512;
    }
    if (__builtin_cpu_supports("avx2"))
        return SimdLevel::Avx2;
#endif
    return SimdLevel::Scalar;
}

SimdLevel
simdLevelFromEnv(SimdLevel fallback)
{
    const char* env = std::getenv("HYDRA_SIMD_LEVEL");
    if (env == nullptr || *env == '\0')
        return fallback;
    SimdLevel level;
    if (!simdLevelFromName(env, level)) {
        warn("HYDRA_SIMD_LEVEL='%s' not one of scalar|avx2|avx512; "
             "using %s", env, simdLevelName(fallback));
        return fallback;
    }
    return level;
}

} // namespace hydra
