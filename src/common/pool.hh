/**
 * @file
 * Size-bucketed buffer pool for RNS limb storage.
 *
 * Every RnsPoly stores its limbs in one contiguous cache-aligned
 * allocation of limbCount * n 64-bit words.  Evaluator operations churn
 * through short-lived temporaries (keyswitch digits, rotation
 * accumulators, rescale scratch), so steady-state work would otherwise
 * hit the allocator once per temporary per limb.  The pool recycles
 * released buffers in exact-size buckets: after one warm-up pass of a
 * workload every acquire is a free-list pop.
 *
 * acquire()/release() are mutex-guarded (they are rare relative to the
 * O(n) work done on each buffer, including from ThreadPool workers) and
 * counted: hits (reused buffer), misses (fresh allocation) and
 * outstanding (live buffers) are visible to tests and benches via
 * stats().  Returned memory is NOT zeroed; callers that need a zero
 * buffer clear it themselves.
 */

#ifndef HYDRA_COMMON_POOL_HH
#define HYDRA_COMMON_POOL_HH

#include <cstddef>
#include <cstdint>
#include <utility>

namespace hydra {

class BufferPool;

/**
 * RAII handle to one pooled allocation of `words()` 64-bit words,
 * aligned to 64 bytes.  Movable; returns the memory to its pool on
 * destruction.  Contents are uninitialized on acquisition.
 */
class PoolBuffer
{
  public:
    PoolBuffer() = default;

    PoolBuffer(PoolBuffer&& other) noexcept
        : ptr_(std::exchange(other.ptr_, nullptr)),
          words_(std::exchange(other.words_, 0))
    {
    }

    PoolBuffer&
    operator=(PoolBuffer&& other) noexcept
    {
        if (this != &other) {
            reset();
            ptr_ = std::exchange(other.ptr_, nullptr);
            words_ = std::exchange(other.words_, 0);
        }
        return *this;
    }

    PoolBuffer(const PoolBuffer&) = delete;
    PoolBuffer& operator=(const PoolBuffer&) = delete;

    ~PoolBuffer() { reset(); }

    /** Return the buffer to the pool early (handle becomes empty). */
    void reset();

    std::uint64_t* data() { return ptr_; }
    const std::uint64_t* data() const { return ptr_; }
    size_t words() const { return words_; }
    bool valid() const { return ptr_ != nullptr; }

  private:
    friend class BufferPool;
    PoolBuffer(std::uint64_t* p, size_t words) : ptr_(p), words_(words) {}

    std::uint64_t* ptr_ = nullptr;
    size_t words_ = 0;
};

/** Process-wide pool; all RnsPoly storage flows through global(). */
class BufferPool
{
  public:
    /** Counter snapshot; all values are cumulative except outstanding/cached. */
    struct Stats
    {
        std::uint64_t hits = 0;     ///< acquires served from a bucket
        std::uint64_t misses = 0;   ///< acquires that allocated fresh memory
        std::uint64_t released = 0; ///< buffers returned to the pool
        std::uint64_t outstanding = 0; ///< live (acquired, unreleased) buffers
        std::uint64_t cached = 0;      ///< idle buffers parked in buckets
        std::uint64_t cachedWords = 0; ///< total words parked in buckets
    };

    /** The singleton pool shared by every RnsPoly. */
    static BufferPool& global();

    BufferPool(const BufferPool&) = delete;
    BufferPool& operator=(const BufferPool&) = delete;

    /** Hand out a buffer of at exactly `words` words (uninitialized). */
    PoolBuffer acquire(size_t words);

    Stats stats() const;

    /** Zero the cumulative hit/miss/release counters (buckets stay). */
    void resetStats();

    /** Free every idle cached buffer (outstanding handles unaffected). */
    void trim();

    ~BufferPool();

  private:
    BufferPool();

    friend class PoolBuffer;
    void release(std::uint64_t* p, size_t words);

    struct Impl;
    Impl* impl_;
};

} // namespace hydra

#endif // HYDRA_COMMON_POOL_HH
