/**
 * @file
 * Strict spec-string parsing helpers shared by the CLI-facing
 * key=value parsers (FaultPlan, ServeSpec).
 *
 * The strto* family silently yields 0 on garbage, which turns a typo
 * into a quietly different experiment.  These helpers accept a token
 * only when the whole token converts, and the tryParse() entry points
 * built on them report a structured SpecError naming the offending
 * token instead of exiting — no crash, no silent default.
 */

#ifndef HYDRA_COMMON_PARSE_HH
#define HYDRA_COMMON_PARSE_HH

#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <string>

namespace hydra {

/** Structured outcome of a failed spec parse: what went wrong, and
 *  the exact token that caused it. */
struct SpecError
{
    std::string message;
    /** The offending token (item, field, or number), verbatim. */
    std::string token;

    bool ok() const { return message.empty(); }

    std::string
    describe() const
    {
        return ok() ? "ok" : message + " (at '" + token + "')";
    }
};

/** Parse `s` as an unsigned 64-bit decimal; the whole token must
 *  convert. */
inline bool
parseU64(const std::string& s, uint64_t& out)
{
    if (s.empty() || s[0] == '-' || s[0] == '+')
        return false;
    errno = 0;
    char* end = nullptr;
    unsigned long long v = std::strtoull(s.c_str(), &end, 10);
    if (errno == ERANGE || end != s.c_str() + s.size())
        return false;
    out = v;
    return true;
}

/** Parse `s` as a size_t decimal; the whole token must convert. */
inline bool
parseSize(const std::string& s, size_t& out)
{
    uint64_t v = 0;
    if (!parseU64(s, v) || v > static_cast<uint64_t>(static_cast<size_t>(-1)))
        return false;
    out = static_cast<size_t>(v);
    return true;
}

/** Parse `s` as a finite double; the whole token must convert. */
inline bool
parseF64(const std::string& s, double& out)
{
    if (s.empty())
        return false;
    errno = 0;
    char* end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    if (errno == ERANGE || end != s.c_str() + s.size())
        return false;
    // Reject nan/inf spellings: no spec field means to be non-finite.
    if (!(v == v) || v > 1e300 || v < -1e300)
        return false;
    out = v;
    return true;
}

} // namespace hydra

#endif // HYDRA_COMMON_PARSE_HH
