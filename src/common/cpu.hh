/**
 * @file
 * CPU SIMD capability detection for the runtime-dispatched math kernels.
 *
 * The math layer ships up to three kernel sets (scalar, AVX2, AVX-512);
 * which one actually runs is decided once per process from three inputs:
 *
 *   1. what this binary was compiled with (HYDRA_SIMD cmake option),
 *   2. what the host CPU reports (cpuid),
 *   3. an optional HYDRA_SIMD_LEVEL environment cap ("scalar", "avx2",
 *      "avx512") for A/B comparisons and CI equivalence runs.
 *
 * Detection lives in common so non-math layers (benches, CLIs) can
 * report the active level without linking the kernel tables.
 */

#ifndef HYDRA_COMMON_CPU_HH
#define HYDRA_COMMON_CPU_HH

namespace hydra {

/** SIMD instruction-set tiers, ordered weakest to strongest. */
enum class SimdLevel
{
    Scalar = 0,
    Avx2 = 1,
    Avx512 = 2,
};

/** Human-readable name: "scalar", "avx2" or "avx512". */
const char* simdLevelName(SimdLevel level);

/**
 * Parse a level name (as accepted in HYDRA_SIMD_LEVEL).  Returns true
 * and stores the level on success; unrecognized strings return false.
 */
bool simdLevelFromName(const char* name, SimdLevel& out);

/**
 * Strongest level the host CPU supports (cpuid), independent of what
 * this binary was compiled with.  AVX-512 requires the F+DQ+VL+BW
 * subsets used by the kernels.
 */
SimdLevel detectedSimdLevel();

/**
 * The HYDRA_SIMD_LEVEL environment cap, or the given fallback when the
 * variable is unset.  Unrecognized values log a warning and return the
 * fallback.
 */
SimdLevel simdLevelFromEnv(SimdLevel fallback);

} // namespace hydra

#endif // HYDRA_COMMON_CPU_HH
