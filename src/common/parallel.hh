/**
 * @file
 * Lightweight persistent thread pool for limb-parallel RNS work.
 *
 * The functional CKKS engine mirrors the paper's compute units by
 * parallelizing over independent RNS limbs (and keyswitch digits /
 * output limbs).  parallelFor() dispatches a half-open index range onto
 * the pool with deterministic static partitioning: worker w always
 * receives the same contiguous chunk of indices for a given (range,
 * thread count), and every index writes only its own outputs, so
 * results are bit-exact regardless of the configured thread count.
 *
 * Thread count comes from the HYDRA_THREADS environment variable
 * (default: std::thread::hardware_concurrency()).  A count of 1 is a
 * fully serial fallback that never touches a mutex or spawns a thread.
 */

#ifndef HYDRA_COMMON_PARALLEL_HH
#define HYDRA_COMMON_PARALLEL_HH

#include <cstddef>
#include <functional>

namespace hydra {

/**
 * Process-wide worker pool.  Workers persist across parallelFor calls;
 * reconfiguration via setThreadCount joins and respawns them.
 */
class ThreadPool
{
  public:
    /** The singleton pool, lazily created on first use. */
    static ThreadPool& instance();

    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /** Configured thread count (callers participate, so >= 1). */
    size_t threadCount() const { return nThreads_; }

    /**
     * Reconfigure the pool to `n` threads (0 = hardware concurrency).
     * Joins existing workers first; must not be called concurrently
     * with parallelFor.
     */
    void setThreadCount(size_t n);

    /**
     * Run fn(i) for every i in [begin, end).  The caller's thread
     * executes chunk 0; workers execute the remaining chunks.  Blocks
     * until every index has been processed.  Nested calls (fn itself
     * calling parallelFor) degrade to serial execution.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)>& fn);

  private:
    ThreadPool();

    struct Impl;
    Impl* impl_;
    size_t nThreads_ = 1;
};

/** Convenience wrapper over ThreadPool::instance().parallelFor. */
inline void
parallelFor(size_t begin, size_t end,
            const std::function<void(size_t)>& fn)
{
    ThreadPool::instance().parallelFor(begin, end, fn);
}

} // namespace hydra

#endif // HYDRA_COMMON_PARALLEL_HH
