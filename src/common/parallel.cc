#include "common/parallel.hh"

#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <thread>
#include <vector>

#include "common/logging.hh"

namespace hydra {

namespace {

/** Set while a thread is executing inside a parallelFor region. */
thread_local bool tls_in_parallel_region = false;

size_t
defaultThreadCount()
{
    if (const char* env = std::getenv("HYDRA_THREADS")) {
        char* end = nullptr;
        long v = std::strtol(env, &end, 10);
        if (end != env && v >= 1)
            return static_cast<size_t>(v);
        warn("ignoring invalid HYDRA_THREADS value '%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<size_t>(hw);
}

/** Static partition: chunk w of [begin, end) over nchunks chunks. */
inline std::pair<size_t, size_t>
chunkRange(size_t begin, size_t end, size_t w, size_t nchunks)
{
    size_t count = end - begin;
    size_t base = count / nchunks;
    size_t rem = count % nchunks;
    size_t lo = begin + w * base + std::min(w, rem);
    size_t hi = lo + base + (w < rem ? 1 : 0);
    return {lo, hi};
}

} // namespace

struct ThreadPool::Impl
{
    std::vector<std::thread> workers;

    std::mutex m;
    std::condition_variable cvStart;
    std::condition_variable cvDone;

    // Current job, valid while pending > 0.
    const std::function<void(size_t)>* fn = nullptr;
    size_t jobBegin = 0;
    size_t jobEnd = 0;
    size_t jobChunks = 0;
    /** Incremented per job so workers detect new work. */
    std::uint64_t generation = 0;
    /** Worker chunks not yet finished for the current job. */
    size_t pending = 0;
    bool shutdown = false;

    void
    workerLoop(size_t id, std::uint64_t seen)
    {
        for (;;) {
            std::unique_lock<std::mutex> lk(m);
            cvStart.wait(lk, [&] {
                return shutdown || generation != seen;
            });
            if (shutdown)
                return;
            seen = generation;
            // Worker `id` owns chunk id+1 (the caller runs chunk 0).
            size_t w = id + 1;
            const std::function<void(size_t)>* f = fn;
            size_t b = jobBegin, e = jobEnd, nchunks = jobChunks;
            lk.unlock();

            if (w < nchunks) {
                auto [lo, hi] = chunkRange(b, e, w, nchunks);
                tls_in_parallel_region = true;
                for (size_t i = lo; i < hi; ++i)
                    (*f)(i);
                tls_in_parallel_region = false;
            }

            lk.lock();
            if (--pending == 0)
                cvDone.notify_one();
        }
    }

    void
    start(size_t n_workers)
    {
        // Fresh workers must treat the current generation as already
        // handled: after a stop()/start() cycle the counter keeps its
        // old value, and a zero-initialized `seen` would make them wake
        // instantly on a phantom job with a stale fn pointer.
        std::uint64_t gen = generation;
        workers.reserve(n_workers);
        for (size_t i = 0; i < n_workers; ++i)
            workers.emplace_back([this, i, gen] { workerLoop(i, gen); });
    }

    void
    stop()
    {
        {
            std::lock_guard<std::mutex> lk(m);
            shutdown = true;
        }
        cvStart.notify_all();
        for (auto& t : workers)
            t.join();
        workers.clear();
        shutdown = false;
    }
};

ThreadPool::ThreadPool()
    : impl_(new Impl)
{
    nThreads_ = defaultThreadCount();
    if (nThreads_ > 1)
        impl_->start(nThreads_ - 1);
}

ThreadPool::~ThreadPool()
{
    impl_->stop();
    delete impl_;
}

ThreadPool&
ThreadPool::instance()
{
    // Intentionally leaked: running the destructor at exit would join
    // workers from a static destructor (fragile ordering), and a
    // fork()ed child -- e.g. a gtest death test -- would crash joining
    // threads that do not exist in the child.  Workers die with the
    // process.
    static ThreadPool* pool = new ThreadPool;
    return *pool;
}

void
ThreadPool::setThreadCount(size_t n)
{
    if (n == 0)
        n = defaultThreadCount();
    if (n == nThreads_)
        return;
    impl_->stop();
    nThreads_ = n;
    if (nThreads_ > 1)
        impl_->start(nThreads_ - 1);
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)>& fn)
{
    if (begin >= end)
        return;
    size_t count = end - begin;
    size_t nchunks = std::min(nThreads_, count);
    if (nchunks <= 1 || tls_in_parallel_region) {
        // Serial fallback: single thread configured, tiny range, or a
        // nested call from inside a worker chunk.
        for (size_t i = begin; i < end; ++i)
            fn(i);
        return;
    }

    {
        std::lock_guard<std::mutex> lk(impl_->m);
        impl_->fn = &fn;
        impl_->jobBegin = begin;
        impl_->jobEnd = end;
        impl_->jobChunks = nchunks;
        impl_->pending = nThreads_ - 1;
        ++impl_->generation;
    }
    impl_->cvStart.notify_all();

    // The caller executes chunk 0 while workers run the rest.
    auto [lo, hi] = chunkRange(begin, end, 0, nchunks);
    tls_in_parallel_region = true;
    for (size_t i = lo; i < hi; ++i)
        fn(i);
    tls_in_parallel_region = false;

    std::unique_lock<std::mutex> lk(impl_->m);
    impl_->cvDone.wait(lk, [&] { return impl_->pending == 0; });
    impl_->fn = nullptr;
}

} // namespace hydra
