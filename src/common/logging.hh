/**
 * @file
 * Status-message and error-reporting helpers in the gem5 spirit.
 *
 * fatal()  -- the situation is the user's fault (bad configuration,
 *             invalid arguments); exits with status 1.
 * panic()  -- the situation is a bug in Hydra itself; aborts.
 * warn()   -- something works but not as well as it should.
 * inform() -- plain status output.
 *
 * All take printf-style format strings, checked at compile time.
 */

#ifndef HYDRA_COMMON_LOGGING_HH
#define HYDRA_COMMON_LOGGING_HH

#include <cstdarg>
#include <string>
#include <string_view>

namespace hydra {

namespace detail {

/** Emit one log line with the given severity tag to stderr. */
void logLine(std::string_view tag, std::string_view msg);

/** vsnprintf into a std::string. */
std::string vformat(const char* fmt, std::va_list args);

[[noreturn]] void fatalExit();
[[noreturn]] void panicAbort();

} // namespace detail

/** printf into a std::string. */
std::string strf(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report a user-caused error and exit(1). */
[[noreturn]] void fatal(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Report an internal Hydra bug and abort(). */
[[noreturn]] void panic(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Warn about questionable but survivable conditions. */
void warn(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Plain informational status message. */
void inform(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Assert-like check that survives NDEBUG builds.  Use for invariants whose
 * violation means a Hydra bug.
 */
#define HYDRA_ASSERT(cond, msg)                                             \
    do {                                                                    \
        if (!(cond)) {                                                      \
            ::hydra::panic("assertion failed: %s (%s) at %s:%d",            \
                           #cond, msg, __FILE__, __LINE__);                 \
        }                                                                   \
    } while (0)

} // namespace hydra

#endif // HYDRA_COMMON_LOGGING_HH
