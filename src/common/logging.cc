#include "common/logging.hh"

#include <cstdio>
#include <cstdlib>
#include <vector>

namespace hydra {
namespace detail {

void
logLine(std::string_view tag, std::string_view msg)
{
    std::fprintf(stderr, "[%.*s] %.*s\n",
                 static_cast<int>(tag.size()), tag.data(),
                 static_cast<int>(msg.size()), msg.data());
}

std::string
vformat(const char* fmt, std::va_list args)
{
    std::va_list args_copy;
    va_copy(args_copy, args);
    int needed = std::vsnprintf(nullptr, 0, fmt, args_copy);
    va_end(args_copy);
    if (needed < 0)
        return "<format error>";
    std::string out(static_cast<size_t>(needed), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
    return out;
}

void
fatalExit()
{
    std::exit(1);
}

void
panicAbort()
{
    std::abort();
}

} // namespace detail

std::string
strf(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    std::string s = detail::vformat(fmt, args);
    va_end(args);
    return s;
}

void
fatal(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::logLine("fatal", detail::vformat(fmt, args));
    va_end(args);
    detail::fatalExit();
}

void
panic(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::logLine("panic", detail::vformat(fmt, args));
    va_end(args);
    detail::panicAbort();
}

void
warn(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::logLine("warn", detail::vformat(fmt, args));
    va_end(args);
}

void
inform(const char* fmt, ...)
{
    std::va_list args;
    va_start(args, fmt);
    detail::logLine("info", detail::vformat(fmt, args));
    va_end(args);
}

} // namespace hydra
