/**
 * @file
 * Deterministic random-number helpers.  All stochastic behaviour in Hydra
 * (key sampling, synthetic inputs) flows through an explicitly seeded
 * engine so simulations and tests are reproducible.
 */

#ifndef HYDRA_COMMON_RNG_HH
#define HYDRA_COMMON_RNG_HH

#include <cstdint>
#include <random>
#include <vector>

namespace hydra {

/** splitmix64 finalizer: well-mixed 64-bit hash for order-independent
 *  deterministic draws (fault injection, arrival processes). */
inline uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic uniform draw in [0,1) from (seed, stream, index, salt).
 *  Platform-independent: no std distribution involved. */
inline double
hashUnit(uint64_t seed, uint64_t stream, uint64_t index, uint64_t salt)
{
    uint64_t h = mix64(seed ^ mix64(stream ^ mix64(index ^ salt)));
    // 53 high bits -> double in [0,1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

/** Thin wrapper around a 64-bit Mersenne twister with typed draws. */
class Rng
{
  public:
    explicit Rng(uint64_t seed) : engine_(seed) {}

    /** Uniform integer in [0, bound). */
    uint64_t
    uniformU64(uint64_t bound)
    {
        std::uniform_int_distribution<uint64_t> d(0, bound - 1);
        return d(engine_);
    }

    /** Uniform double in [lo, hi). */
    double
    uniformReal(double lo, double hi)
    {
        std::uniform_real_distribution<double> d(lo, hi);
        return d(engine_);
    }

    /** Ternary value in {-1, 0, 1} — used for CKKS secret keys. */
    int
    ternary()
    {
        std::uniform_int_distribution<int> d(-1, 1);
        return d(engine_);
    }

    /** Centered binomial-ish small error sample (discrete gaussian-like). */
    int
    smallError(double stddev = 3.2)
    {
        std::normal_distribution<double> d(0.0, stddev);
        return static_cast<int>(std::lround(d(engine_)));
    }

    /** A vector of uniform doubles — synthetic plaintext messages. */
    std::vector<double>
    realVector(size_t n, double lo = -1.0, double hi = 1.0)
    {
        std::vector<double> v(n);
        for (auto& x : v)
            x = uniformReal(lo, hi);
        return v;
    }

    std::mt19937_64& engine() { return engine_; }

  private:
    std::mt19937_64 engine_;
};

} // namespace hydra

#endif // HYDRA_COMMON_RNG_HH
