#include "common/table.hh"

#include <algorithm>
#include <cstdio>

#include "common/logging.hh"

namespace hydra {

TextTable::TextTable(std::string caption)
    : caption_(std::move(caption))
{
}

void
TextTable::header(std::vector<std::string> cells)
{
    header_ = std::move(cells);
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (!header_.empty() && cells.size() != header_.size()) {
        panic("TextTable row has %zu cells, header has %zu",
              cells.size(), header_.size());
    }
    rows_.push_back(Row{std::move(cells), false});
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{{}, true});
}

std::string
TextTable::render() const
{
    // Compute column widths over header and all rows.
    size_t ncols = header_.size();
    for (const auto& r : rows_)
        ncols = std::max(ncols, r.cells.size());

    std::vector<size_t> width(ncols, 0);
    auto account = [&](const std::vector<std::string>& cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            width[i] = std::max(width[i], cells[i].size());
    };
    account(header_);
    for (const auto& r : rows_)
        if (!r.separator)
            account(r.cells);

    size_t total = 0;
    for (size_t w : width)
        total += w + 3;

    auto line = [&](const std::vector<std::string>& cells) {
        std::string out;
        for (size_t i = 0; i < ncols; ++i) {
            const std::string& c = i < cells.size() ? cells[i] : std::string();
            out += c;
            out.append(width[i] - c.size() + (i + 1 < ncols ? 3 : 0), ' ');
        }
        out += '\n';
        return out;
    };

    std::string out;
    if (!caption_.empty())
        out += caption_ + '\n';
    if (!header_.empty()) {
        out += line(header_);
        out += std::string(total, '-') + '\n';
    }
    for (const auto& r : rows_) {
        if (r.separator)
            out += std::string(total, '-') + '\n';
        else
            out += line(r.cells);
    }
    return out;
}

void
TextTable::print() const
{
    std::string s = render();
    std::fwrite(s.data(), 1, s.size(), stdout);
}

std::string
fmtF(double v, int precision)
{
    return strf("%.*f", precision, v);
}

std::string
fmtX(double v, int precision)
{
    return strf("%.*fx", precision, v);
}

std::string
fmtPct(double fraction, int precision)
{
    return strf("%.*f%%", precision, fraction * 100.0);
}

std::string
fmtGrouped(uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out += ',';
        out += *it;
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace hydra
