/**
 * @file
 * Minimal aligned-text table printer used by the benchmark harnesses to
 * regenerate the paper's tables on stdout.
 */

#ifndef HYDRA_COMMON_TABLE_HH
#define HYDRA_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace hydra {

/**
 * Accumulates rows of strings and prints them with per-column alignment.
 * All formatting is plain ASCII so that bench output diffs cleanly.
 */
class TextTable
{
  public:
    /** Create a table with an optional caption printed above the header. */
    explicit TextTable(std::string caption = {});

    /** Set the header row.  Must be called before addRow(). */
    void header(std::vector<std::string> cells);

    /** Append one data row; the cell count must match the header. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the whole table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

    /** Number of data rows added so far. */
    size_t rowCount() const { return rows_.size(); }

  private:
    struct Row
    {
        std::vector<std::string> cells;
        bool separator = false;
    };

    std::string caption_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
};

/** Format a double with the given precision, e.g.\ fmtF(3.14159, 2). */
std::string fmtF(double v, int precision);

/** Format a double as "12.3x" style speedup. */
std::string fmtX(double v, int precision = 1);

/** Format a fraction as a percentage string, e.g.\ "12.5%". */
std::string fmtPct(double fraction, int precision = 1);

/** Format with thousands separators, e.g.\ 1234567 -> "1,234,567". */
std::string fmtGrouped(uint64_t v);

} // namespace hydra

#endif // HYDRA_COMMON_TABLE_HH
