/**
 * @file
 * Ciphertext-level FHE operation IR.
 *
 * Every layer of Hydra speaks this vocabulary: the functional CKKS
 * library emits HeOp records as it executes, the workload models
 * generate HeOp mixes analytically (Table I), and the architecture
 * model assigns cycles and energy to each HeOp.
 */

#ifndef HYDRA_TRACE_HEOP_HH
#define HYDRA_TRACE_HEOP_HH

#include <array>
#include <cstdint>
#include <string>

namespace hydra {

/** Ciphertext-level homomorphic operations (paper Section II-A). */
enum class HeOpType : uint8_t
{
    HAdd,       ///< ciphertext + ciphertext (also HSub)
    PMult,      ///< plaintext * ciphertext
    CMult,      ///< ciphertext * ciphertext, including relinearization
    Rescale,    ///< divide by the last modulus-chain prime
    Rotate,     ///< slot rotation = automorphism + keyswitch
    Conjugate,  ///< complex conjugation = automorphism + keyswitch
    KeySwitch,  ///< bare keyswitch (counted inside Rotate/CMult too)
    ModRaise,   ///< bootstrap modulus raising
    NumTypes
};

constexpr size_t kNumHeOpTypes = static_cast<size_t>(HeOpType::NumTypes);

/** Short mnemonic, e.g.\ "CMult". */
const char* heOpName(HeOpType t);

/** One executed ciphertext-level operation. */
struct HeOp
{
    HeOpType type;
    /** Active modulus-chain limbs at execution time. */
    uint32_t limbs;
};

/** Aggregated counts per operation type. */
class OpCounter
{
  public:
    void
    record(HeOpType t, uint32_t limbs)
    {
        counts_[static_cast<size_t>(t)] += 1;
        limbSum_[static_cast<size_t>(t)] += limbs;
    }

    uint64_t
    count(HeOpType t) const
    {
        return counts_[static_cast<size_t>(t)];
    }

    /** Sum of active limb counts over all ops of this type. */
    uint64_t
    limbSum(HeOpType t) const
    {
        return limbSum_[static_cast<size_t>(t)];
    }

    uint64_t
    total() const
    {
        uint64_t s = 0;
        for (auto c : counts_)
            s += c;
        return s;
    }

    void
    reset()
    {
        counts_.fill(0);
        limbSum_.fill(0);
    }

    /** Render as a one-line summary. */
    std::string summary() const;

  private:
    std::array<uint64_t, kNumHeOpTypes> counts_{};
    std::array<uint64_t, kNumHeOpTypes> limbSum_{};
};

/**
 * Static per-unit operation mix of one parallel work unit of a DL layer
 * (paper Table I, right-hand columns).
 */
struct OpMix
{
    uint32_t rotations = 0;
    uint32_t cmults = 0;
    uint32_t pmults = 0;
    uint32_t hadds = 0;

    uint32_t
    totalOps() const
    {
        return rotations + cmults + pmults + hadds;
    }
};

} // namespace hydra

#endif // HYDRA_TRACE_HEOP_HH
