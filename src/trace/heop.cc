#include "trace/heop.hh"

#include "common/logging.hh"

namespace hydra {

const char*
heOpName(HeOpType t)
{
    switch (t) {
      case HeOpType::HAdd: return "HAdd";
      case HeOpType::PMult: return "PMult";
      case HeOpType::CMult: return "CMult";
      case HeOpType::Rescale: return "Rescale";
      case HeOpType::Rotate: return "Rotate";
      case HeOpType::Conjugate: return "Conjugate";
      case HeOpType::KeySwitch: return "KeySwitch";
      case HeOpType::ModRaise: return "ModRaise";
      default: break;
    }
    panic("unknown HeOpType %d", static_cast<int>(t));
}

std::string
OpCounter::summary() const
{
    std::string out;
    for (size_t i = 0; i < kNumHeOpTypes; ++i) {
        if (!counts_[i])
            continue;
        if (!out.empty())
            out += ", ";
        out += strf("%s=%llu", heOpName(static_cast<HeOpType>(i)),
                    static_cast<unsigned long long>(counts_[i]));
    }
    return out.empty() ? "none" : out;
}

} // namespace hydra
