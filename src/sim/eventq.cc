#include "sim/eventq.hh"

#include "common/logging.hh"

namespace hydra {

void
EventQueue::advanceTo(Tick t)
{
    HYDRA_ASSERT(events_.empty() || events_.top().when >= t,
                 "advancing the clock past a pending event");
    if (t > now_)
        now_ = t;
}

void
EventQueue::schedule(Tick when, std::function<void()> cb)
{
    HYDRA_ASSERT(when >= now_, "scheduling into the past");
    events_.push(Event{when, seq_++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (events_.empty())
        return false;
    // priority_queue::top() returns const ref; move out via const_cast
    // is UB -- copy the callback instead (cheap relative to sim work).
    Event ev = events_.top();
    events_.pop();
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
}

Tick
EventQueue::run()
{
    while (step()) {
    }
    return now_;
}

} // namespace hydra
