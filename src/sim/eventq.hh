/**
 * @file
 * Discrete-event simulation core.
 *
 * Time is measured in integer picoseconds (Tick), gem5-style, so card
 * cycles (300 MHz => 3333 ps) and network serialization delays compose
 * without rounding drift.  Events scheduled for the same tick fire in
 * insertion order (deterministic).
 */

#ifndef HYDRA_SIM_EVENTQ_HH
#define HYDRA_SIM_EVENTQ_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace hydra {

/** Simulated time in picoseconds. */
using Tick = std::uint64_t;

constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;

/** Convert seconds (double) to ticks. */
inline Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kTicksPerSecond));
}

/** Convert ticks to seconds. */
inline double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

/** Deterministic event queue. */
class EventQueue
{
  public:
    /** Schedule `cb` at absolute time `when` (>= now). */
    void schedule(Tick when, std::function<void()> cb);

    /** Schedule `cb` at now + delay. */
    void
    scheduleAfter(Tick delay, std::function<void()> cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Current simulated time. */
    Tick now() const { return now_; }

    /**
     * Jump the clock forward to `t` before any event is scheduled
     * (no-op when t <= now).  Lets several runs compose on one shared
     * virtual clock: a later run starts its queue at the previous
     * run's finish time instead of 0.
     */
    void advanceTo(Tick t);

    /** Whether any event is pending. */
    bool empty() const { return events_.empty(); }

    /** Pop and execute the next event; returns false when drained. */
    bool step();

    /** Run until the queue drains; returns the final time. */
    Tick run();

    /** Number of events executed so far. */
    uint64_t executedCount() const { return executed_; }

  private:
    struct Event
    {
        Tick when;
        uint64_t seq;
        std::function<void()> cb;

        bool
        operator>(const Event& o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    Tick now_ = 0;
    uint64_t seq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace hydra

#endif // HYDRA_SIM_EVENTQ_HH
