/**
 * @file
 * FHE-based deep learning workload descriptions.
 *
 * Each model is a sequence of Steps; a Step is one key procedure of the
 * paper (ConvBN, Pooling, FC, Non-linear, PCMM, CCMM, Norm, Bootstrap)
 * with its application-level parallelism and the per-unit ciphertext
 * operation mix of Table I.  The scheduler maps Steps onto cards.
 *
 * Layer schedules are reconstructed from the models' architectures and
 * the published implementations ([12] for CNNs, [13] for transformers);
 * per-layer unit counts are calibrated so single-card execution time
 * approximates the paper's Hydra-S column in Table II (the substitution
 * is documented in DESIGN.md).
 */

#ifndef HYDRA_WORKLOADS_MODEL_HH
#define HYDRA_WORKLOADS_MODEL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "trace/heop.hh"

namespace hydra {

/** Key procedures of FHE-based DL inference (paper Section III). */
enum class ProcKind : uint8_t
{
    ConvBN,
    Pooling,
    FC,
    NonLinear,
    PCMM,
    CCMM,
    Norm,
    Bootstrap,
    NumKinds
};

constexpr size_t kNumProcKinds = static_cast<size_t>(ProcKind::NumKinds);

const char* procName(ProcKind k);

/** How unit outputs are combined across cards. */
enum class AggKind : uint8_t
{
    None,          ///< outputs stay where they are produced
    BroadcastEach, ///< Fig. 2: every output broadcast to all nodes
    ReduceTree,    ///< partial sums reduced in a tree, then broadcast
};

/** One schedulable step of a model. */
struct Step
{
    ProcKind kind = ProcKind::ConvBN;
    std::string name;
    /** Independent parallel units (Table I); for Bootstrap: the number
     *  of ciphertexts to refresh. */
    size_t parallelism = 1;
    /** Ciphertext-level operations per unit (Table I right columns). */
    OpMix perUnit;
    /** Active modulus-chain limbs while this step runs. */
    size_t limbs = 12;
    /** Cross-card combination pattern. */
    AggKind agg = AggKind::BroadcastEach;
    /** Non-linear only: degree of the evaluated polynomial. */
    size_t polyDegree = 0;
    /**
     * Full-ciphertext work units per unit of Table-I parallelism.
     * Table I counts fine-grained application-level parallelism (e.g.
     * element copies inside a PCMM); one full-ciphertext rot+mult can
     * cover many of them (BSGS hoisting, slot packing).  Effective
     * scheduled units = max(1, parallelism * unitScale).
     */
    double unitScale = 1.0;
    /**
     * Output ciphertexts produced by the whole step.  Unit results are
     * multiplexed into these ([12]'s packing), so cross-card
     * aggregation moves outputCts ciphertexts, not one per unit.
     */
    size_t outputCts = 32;

    size_t
    effectiveUnits() const
    {
        double u = static_cast<double>(parallelism) * unitScale;
        return u < 1.0 ? 1 : static_cast<size_t>(u);
    }
};

/** Per-unit op mixes from Table I. */
OpMix convBnMix();
OpMix poolingMix();
OpMix fcMix();
OpMix pcmmMix();
OpMix ccmmMix();
OpMix nonLinearMix();

/// @name Step factories.
/// The building vocabulary of every model: each factory fixes one
/// procedure's op mix, working level, aggregation pattern and output
/// packing.  The hand-built models below and the declarative frontend
/// (sched/graph/modelspec.hh) both construct steps through these, so a
/// parsed layer is field-identical to its hand-built counterpart.
/// @{
Step makeConvStep(const std::string& name, size_t par,
                  double scale = 1.0, size_t out_cts = 32);
Step makeReluStep(const std::string& name, size_t par,
                  size_t out_cts = 32);
Step makePoolStep(const std::string& name, size_t par,
                  size_t out_cts = 16);
Step makeFcStep(const std::string& name, size_t par);
Step makeBootStep(const std::string& name, size_t count);
Step makePcmmStep(const std::string& name, size_t par, double scale);
Step makeCcmmStep(const std::string& name, size_t par, double scale);
Step makeNonLinStep(const std::string& name, size_t par,
                    size_t out_cts = 12);
Step makeNormStep(const std::string& name, size_t par);
/// @}

/** A full model: ordered steps plus CKKS geometry. */
struct WorkloadModel
{
    std::string name;
    /** log2 of the ciphertext slot count (Table V rows). */
    size_t logSlots = 15;
    /** Full modulus-chain length at the working parameters. */
    size_t maxLimbs = 24;
    std::vector<Step> steps;

    /** Total units of one procedure kind across all steps. */
    size_t totalUnits(ProcKind k) const;

    /** Min/max per-step parallelism of a kind (Table I's Min./Max.). */
    std::pair<size_t, size_t> parallelismRange(ProcKind k) const;

    size_t stepCount(ProcKind k) const;
};

/// @name The four benchmark models (paper Section V-A).
/// @{
WorkloadModel makeResNet18();
WorkloadModel makeResNet50();
WorkloadModel makeBertBase();
WorkloadModel makeOpt67B();
/// @}

/**
 * ResNet-20 on CIFAR-10: the small tailored model of the paper's
 * Section II motivation ("the most advanced practical accelerators,
 * Poseidon and FAB, achieve a performance of nearly 3 seconds").
 */
WorkloadModel makeResNet20Cifar();

/** All four, in the paper's column order. */
std::vector<WorkloadModel> allBenchmarks();

/// @name Workload registry (CLI name resolution and discoverability).
/// @{
/** CLI names of every registered workload model. */
std::vector<std::string> workloadNames();

/** True when `name` resolves via workloadByName(). */
bool workloadExists(const std::string& name);

/** Resolve a workload by CLI name ("resnet18", "bert", ...); calls
 *  fatal() with the list of valid names on an unknown one. */
WorkloadModel workloadByName(const std::string& name);
/// @}

} // namespace hydra

#endif // HYDRA_WORKLOADS_MODEL_HH
