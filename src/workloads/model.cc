#include "workloads/model.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hydra {

const char*
procName(ProcKind k)
{
    switch (k) {
      case ProcKind::ConvBN: return "ConvBN";
      case ProcKind::Pooling: return "Pooling";
      case ProcKind::FC: return "FC";
      case ProcKind::NonLinear: return "NonLinear";
      case ProcKind::PCMM: return "PCMM";
      case ProcKind::CCMM: return "CCMM";
      case ProcKind::Norm: return "Norm";
      case ProcKind::Bootstrap: return "Boot";
      default: break;
    }
    panic("unknown ProcKind %d", static_cast<int>(k));
}

// Per-unit mixes, Table I right-hand columns.
OpMix convBnMix() { return OpMix{8, 0, 2, 7}; }
OpMix poolingMix() { return OpMix{2, 0, 1, 0}; }
OpMix fcMix() { return OpMix{1, 0, 1, 0}; }
OpMix pcmmMix() { return OpMix{1, 0, 1, 0}; }
OpMix ccmmMix() { return OpMix{7, 1, 1, 6}; }
OpMix nonLinearMix() { return OpMix{0, 8, 0, 15}; }
/** LayerNorm: rotate-accumulate mean/variance + normalize. */
static OpMix normMix() { return OpMix{2, 1, 1, 2}; }

size_t
WorkloadModel::totalUnits(ProcKind k) const
{
    size_t sum = 0;
    for (const auto& s : steps)
        if (s.kind == k)
            sum += s.parallelism;
    return sum;
}

std::pair<size_t, size_t>
WorkloadModel::parallelismRange(ProcKind k) const
{
    size_t lo = 0, hi = 0;
    for (const auto& s : steps) {
        if (s.kind != k)
            continue;
        if (lo == 0 || s.parallelism < lo)
            lo = s.parallelism;
        hi = std::max(hi, s.parallelism);
    }
    return {lo, hi};
}

size_t
WorkloadModel::stepCount(ProcKind k) const
{
    size_t n = 0;
    for (const auto& s : steps)
        if (s.kind == k)
            ++n;
    return n;
}

namespace {

/** Mid-chain working level for linear layers. */
constexpr size_t kMidLimbs = 12;
/** Level right after bootstrap (cheap matmuls in [13]). */
constexpr size_t kFreshLimbs = 8;
/** Average level across a bootstrap's own pipeline. */
constexpr size_t kBootLimbs = 18;
/** Non-linear layers burn the lower part of the chain. */
constexpr size_t kNonLinLimbs = 10;

/** ReLU/GeLU/Softmax polynomial degree ([12] uses minimax composites;
 *  the per-unit op mix is already fixed by Table I). */
constexpr size_t kReluDegree = 15;

} // namespace

Step
makeConvStep(const std::string& name, size_t par, double scale,
             size_t out_cts)
{
    return Step{ProcKind::ConvBN, name, par, convBnMix(), kMidLimbs,
                AggKind::BroadcastEach, 0, scale, out_cts};
}

Step
makeReluStep(const std::string& name, size_t par, size_t out_cts)
{
    return Step{ProcKind::NonLinear, name, par, nonLinearMix(),
                kNonLinLimbs, AggKind::BroadcastEach, kReluDegree, 1.0,
                out_cts};
}

Step
makePoolStep(const std::string& name, size_t par, size_t out_cts)
{
    return Step{ProcKind::Pooling, name, par, poolingMix(), kMidLimbs,
                AggKind::BroadcastEach, 0, 1.0, out_cts};
}

Step
makeFcStep(const std::string& name, size_t par)
{
    return Step{ProcKind::FC, name, par, fcMix(), kMidLimbs,
                AggKind::ReduceTree, 0, 1.0, 1};
}

Step
makeBootStep(const std::string& name, size_t count)
{
    return Step{ProcKind::Bootstrap, name, count, OpMix{}, kBootLimbs,
                AggKind::None, 0, 1.0, count};
}

Step
makePcmmStep(const std::string& name, size_t par, double scale)
{
    return Step{ProcKind::PCMM, name, par, pcmmMix(), kFreshLimbs,
                AggKind::ReduceTree, 0, scale, 1};
}

Step
makeCcmmStep(const std::string& name, size_t par, double scale)
{
    return Step{ProcKind::CCMM, name, par, ccmmMix(), kMidLimbs,
                AggKind::ReduceTree, 0, scale, 1};
}

Step
makeNonLinStep(const std::string& name, size_t par, size_t out_cts)
{
    return Step{ProcKind::NonLinear, name, par, nonLinearMix(),
                kNonLinLimbs, AggKind::BroadcastEach, kReluDegree, 1.0,
                out_cts};
}

Step
makeNormStep(const std::string& name, size_t par)
{
    return Step{ProcKind::Norm, name, par, normMix(), kMidLimbs,
                AggKind::BroadcastEach, 0, 1.0, 2};
}

namespace {

/** Thin sugar over the step factories for the hand-built models. */
struct Builder
{
    WorkloadModel model;

    void
    conv(const std::string& name, size_t par, double scale = 1.0,
         size_t out_cts = 32)
    {
        model.steps.push_back(makeConvStep(name, par, scale, out_cts));
    }

    void
    relu(const std::string& name, size_t par, size_t out_cts = 32)
    {
        model.steps.push_back(makeReluStep(name, par, out_cts));
    }

    void
    pool(const std::string& name, size_t par, size_t out_cts = 16)
    {
        model.steps.push_back(makePoolStep(name, par, out_cts));
    }

    void
    fc(const std::string& name, size_t par)
    {
        model.steps.push_back(makeFcStep(name, par));
    }

    void
    boot(const std::string& name, size_t count)
    {
        model.steps.push_back(makeBootStep(name, count));
    }

    void
    pcmm(const std::string& name, size_t par, double scale)
    {
        model.steps.push_back(makePcmmStep(name, par, scale));
    }

    void
    ccmm(const std::string& name, size_t par, double scale)
    {
        model.steps.push_back(makeCcmmStep(name, par, scale));
    }

    void
    nonlin(const std::string& name, size_t par, size_t out_cts = 12)
    {
        model.steps.push_back(makeNonLinStep(name, par, out_cts));
    }

    void
    norm(const std::string& name, size_t par)
    {
        model.steps.push_back(makeNormStep(name, par));
    }
};

} // namespace

WorkloadModel
makeResNet18()
{
    Builder b;
    b.model.name = "ResNet-18";
    b.model.logSlots = 15;
    b.model.maxLimbs = 24;

    // conv1 + maxpool (approximated by average pooling under FHE).
    b.conv("conv1", 768);
    b.relu("relu1", 128);
    b.pool("pool1", 64);
    b.boot("boot0", 32);

    struct Stage
    {
        const char* name;
        size_t conv_par;
        size_t relu_par;
        size_t boot_cts;
        size_t ds_par; // downsample conv parallelism (0 = none)
    };
    // Per-stage parallelism within Table I's 384..1024 (ConvBN) and
    // 4..128 (Non-linear) ranges; ciphertext counts within 1..32.
    const Stage stages[] = {
        {"s1", 640, 128, 16, 0},
        {"s2", 512, 64, 8, 448},
        {"s3", 448, 32, 8, 384},
        {"s4", 384, 4, 2, 384},
    };
    for (const auto& st : stages) {
        for (int blk = 0; blk < 2; ++blk) {
            std::string p = std::string(st.name) + "b" +
                            std::to_string(blk);
            if (blk == 0 && st.ds_par)
                b.conv(p + "_ds", st.ds_par, 1.0, st.boot_cts);
            b.conv(p + "_conv1", st.conv_par, 1.0, st.boot_cts);
            b.relu(p + "_relu1", st.relu_par, st.boot_cts);
            b.conv(p + "_conv2", st.conv_par, 1.0, st.boot_cts);
            b.relu(p + "_relu2", st.relu_par, st.boot_cts);
            b.boot(p + "_boot", st.boot_cts);
        }
    }
    b.pool("avgpool", 6, 1);
    b.boot("boot_final", 1);
    b.fc("fc", 1511);
    return std::move(b.model);
}

WorkloadModel
makeResNet50()
{
    Builder b;
    b.model.name = "ResNet-50";
    b.model.logSlots = 15;
    b.model.maxLimbs = 24;

    b.conv("conv1", 1024);
    b.relu("relu1", 128);
    b.pool("pool1", 256);
    b.boot("boot0", 32);

    struct Stage
    {
        const char* name;
        int blocks;
        size_t conv_par;
        size_t relu_par;
        size_t boot_cts;
        /**
         * Ciphertext multiplicity: [12]'s multiplexed packing of the
         * wide (up to 2048-channel) bottleneck activations processes
         * several input ciphertexts per layer, repeating the kernel
         * units per ciphertext group.
         */
        double ct_scale;
    };
    const Stage stages[] = {
        {"s1", 3, 1024, 128, 32, 3.4},
        {"s2", 4, 896, 64, 32, 4.7},
        {"s3", 6, 640, 32, 24, 6.8},
        {"s4", 3, 384, 16, 16, 9.5},
    };
    for (const auto& st : stages) {
        for (int blk = 0; blk < st.blocks; ++blk) {
            std::string p = std::string(st.name) + "b" +
                            std::to_string(blk);
            if (blk == 0)
                b.conv(p + "_ds", st.conv_par, st.ct_scale, st.boot_cts);
            // Bottleneck: 1x1 reduce, 3x3, 1x1 expand.
            b.conv(p + "_conv1", st.conv_par / 2, st.ct_scale,
                   st.boot_cts);
            b.relu(p + "_relu1", st.relu_par, st.boot_cts);
            b.conv(p + "_conv2", st.conv_par, st.ct_scale, st.boot_cts);
            b.relu(p + "_relu2", st.relu_par, st.boot_cts);
            b.conv(p + "_conv3", st.conv_par, st.ct_scale, st.boot_cts);
            b.relu(p + "_relu3", st.relu_par, st.boot_cts);
            b.boot(p + "_boot", st.boot_cts);
        }
    }
    b.pool("avgpool", 12, 1);
    b.boot("boot_final", 1);
    b.fc("fc", 3047);
    return std::move(b.model);
}

namespace {

/**
 * One transformer encoder layer ([13]'s non-interactive pipeline:
 * LN -> QKV PCMM -> CCMM scores -> Softmax -> CCMM context ->
 * output PCMM -> LN -> FFN (PCMM, GeLU, PCMM) -> bootstraps).
 *
 * @param pcmm_par / ffn_par Table-I PCMM parallelism (min / max rows)
 * @param matmul_scale full-ciphertext ops per unit of parallelism
 */
void
transformerLayer(Builder& b, const std::string& p, size_t pcmm_par,
                 size_t ffn_par, size_t ccmm_par, size_t softmax_par,
                 size_t norm_par, size_t boot_cts, double matmul_scale)
{
    b.norm(p + "_ln1", norm_par);
    b.pcmm(p + "_qkv", pcmm_par, 3.0 * matmul_scale); // Q, K, V
    b.ccmm(p + "_scores", ccmm_par, 1.0);
    b.nonlin(p + "_softmax", softmax_par);
    b.ccmm(p + "_context", ccmm_par, 1.0);
    b.pcmm(p + "_proj", pcmm_par, matmul_scale);
    b.boot(p + "_boot1", boot_cts);
    b.norm(p + "_ln2", norm_par);
    b.pcmm(p + "_ffn1", ffn_par, matmul_scale);
    b.nonlin(p + "_gelu", softmax_par);
    b.pcmm(p + "_ffn2", ffn_par, matmul_scale);
    b.boot(p + "_boot2", boot_cts);
}

} // namespace

WorkloadModel
makeBertBase()
{
    Builder b;
    b.model.name = "BERT-base";
    b.model.logSlots = 15;
    b.model.maxLimbs = 24;
    // 12 layers, hidden 768, seq 128 (Table I: PCMM 98,304..393,216,
    // CCMM 384, Non-linear 4..48, ciphertexts 1..12).
    for (int layer = 0; layer < 12; ++layer) {
        std::string p = "l" + std::to_string(layer);
        size_t softmax = layer < 6 ? 48 : 24;
        size_t boot_cts = layer < 6 ? 12 : 6;
        transformerLayer(b, p, 98304, 393216, 384, softmax, 8, boot_cts,
                         /*matmul_scale=*/0.09);
    }
    b.boot("boot_final", 1);
    b.fc("pooler", 768);
    return std::move(b.model);
}

WorkloadModel
makeOpt67B()
{
    Builder b;
    b.model.name = "OPT-6.7B";
    b.model.logSlots = 15;
    b.model.maxLimbs = 24;
    // 32 layers, hidden 4096, seq 200 (Table I: PCMM
    // 153,600..614,400, CCMM 1000, Non-linear 8..72, cts 2..18).  The
    // 200 x 4096 activations span ~8x more ciphertexts than BERT-base,
    // hence the larger per-parallelism scale.
    for (int layer = 0; layer < 32; ++layer) {
        std::string p = "l" + std::to_string(layer);
        size_t softmax = layer < 16 ? 72 : 36;
        size_t boot_cts = layer < 16 ? 18 : 9;
        transformerLayer(b, p, 153600, 614400, 1000, softmax, 16,
                         boot_cts, /*matmul_scale=*/1.1);
    }
    b.boot("boot_final", 2);
    b.fc("head", 4096);
    return std::move(b.model);
}

WorkloadModel
makeResNet20Cifar()
{
    Builder b;
    b.model.name = "ResNet-20 (CIFAR-10)";
    b.model.logSlots = 15;
    b.model.maxLimbs = 24;
    // 32x32 inputs pack into a single ciphertext ([12]); channel counts
    // 16/32/64 give far smaller kernel-group parallelism than ImageNet.
    b.conv("conv1", 16, 1.0, 1);
    b.relu("relu1", 2, 1);

    struct Stage
    {
        const char* name;
        size_t conv_par;
    };
    const Stage stages[] = {{"s1", 12}, {"s2", 16}, {"s3", 24}};
    for (const auto& st : stages) {
        for (int blk = 0; blk < 3; ++blk) {
            std::string p = std::string(st.name) + "b" +
                            std::to_string(blk);
            b.conv(p + "_conv1", st.conv_par, 1.0, 1);
            b.relu(p + "_relu1", 2, 1);
            b.conv(p + "_conv2", st.conv_par, 1.0, 1);
            b.relu(p + "_relu2", 2, 1);
            if (blk != 1)
                b.boot(p + "_boot", 1);
        }
    }
    b.pool("avgpool", 2, 1);
    b.fc("fc", 64);
    return std::move(b.model);
}

std::vector<WorkloadModel>
allBenchmarks()
{
    return {makeResNet18(), makeResNet50(), makeBertBase(), makeOpt67B()};
}

namespace {

struct WorkloadEntry
{
    const char* name;
    WorkloadModel (*make)();
};

const WorkloadEntry kWorkloadRegistry[] = {
    {"resnet18", makeResNet18}, {"resnet50", makeResNet50},
    {"bert", makeBertBase},     {"opt", makeOpt67B},
    {"resnet20", makeResNet20Cifar},
};

} // namespace

std::vector<std::string>
workloadNames()
{
    std::vector<std::string> names;
    for (const auto& e : kWorkloadRegistry)
        names.emplace_back(e.name);
    return names;
}

bool
workloadExists(const std::string& name)
{
    for (const auto& e : kWorkloadRegistry)
        if (name == e.name)
            return true;
    return false;
}

WorkloadModel
workloadByName(const std::string& name)
{
    for (const auto& e : kWorkloadRegistry)
        if (name == e.name)
            return e.make();
    std::string valid;
    for (const auto& e : kWorkloadRegistry)
        valid += std::string(valid.empty() ? "" : "|") + e.name;
    fatal("unknown workload '%s' (want %s)", name.c_str(),
          valid.c_str());
}

} // namespace hydra
