#include "model/dft_model.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "common/table.hh"

namespace hydra {

DftOpTimes
DftOpTimes::fromCostModel(const OpCostModel& m, const NetworkModel& net,
                          size_t limbs)
{
    DftOpTimes t;
    t.rot = ticksToSeconds(m.opLatency(HeOpType::Rotate, limbs));
    t.pmult = ticksToSeconds(m.opLatency(HeOpType::PMult, limbs));
    t.hadd = ticksToSeconds(m.opLatency(HeOpType::HAdd, limbs));
    t.com = ticksToSeconds(
        net.transferTime(m.ciphertextBytes(limbs), 0, 1));
    return t;
}

std::string
DftPlan::describe() const
{
    std::string radix = "(";
    std::string bs = "(";
    for (size_t i = 0; i < levels.size(); ++i) {
        if (i) {
            radix += ",";
            bs += ",";
        }
        radix += std::to_string(levels[i].radix);
        bs += std::to_string(levels[i].bs);
    }
    return radix + ") bs=" + bs + ")";
}

double
dftLevelTime(const DftLevelPlan& plan, size_t cards, const DftOpTimes& t)
{
    double b = static_cast<double>(plan.bs);
    double gs_s = static_cast<double>(plan.gsPerNode(cards));
    double t_bs = b * t.rot;
    double t_gs = (b * t.pmult + (b - 1) * t.hadd + t.rot) * gs_s;
    double t_acc = (gs_s - 1) * t.hadd;
    if (cards > 1) {
        double rounds = std::log2(static_cast<double>(cards)) + 1;
        t_acc += rounds * t.com;
    }
    return t_bs + t_gs + t_acc;
}

double
dftTime(const DftPlan& plan, size_t cards, const DftOpTimes& t)
{
    double sum = 0.0;
    for (const auto& lvl : plan.levels)
        sum += dftLevelTime(lvl, cards, t);
    return sum;
}

namespace {

/** Best bs (power of two, bs * gs = 2 * radix) for one level. */
DftLevelPlan
bestLevel(size_t radix, size_t cards, const DftOpTimes& t)
{
    DftLevelPlan best{radix, 1};
    double best_time = dftLevelTime(best, cards, t);
    for (size_t bs = 2; bs <= 2 * radix; bs <<= 1) {
        DftLevelPlan cand{radix, bs};
        double ct = dftLevelTime(cand, cards, t);
        if (ct < best_time) {
            best_time = ct;
            best = cand;
        }
    }
    return best;
}

void
enumerate(size_t levels_left, size_t logs_left, size_t max_log,
          std::vector<size_t>& current, std::vector<std::vector<size_t>>& out)
{
    if (levels_left == 0) {
        if (logs_left == 0)
            out.push_back(current);
        return;
    }
    for (size_t lg = 1; lg <= std::min(max_log, logs_left); ++lg) {
        current.push_back(lg);
        enumerate(levels_left - 1, logs_left - lg, max_log, current, out);
        current.pop_back();
    }
}

} // namespace

DftPlan
optimizeDftPlan(size_t levels, size_t log_slots, size_t cards,
                const DftOpTimes& t)
{
    HYDRA_ASSERT(levels >= 1 && log_slots >= levels,
                 "log_slots must cover the level count");
    // Radix up to 2^8 = 256 per level (hardware table sizes cap it).
    std::vector<std::vector<size_t>> compositions;
    std::vector<size_t> current;
    enumerate(levels, log_slots, 8, current, compositions);
    HYDRA_ASSERT(!compositions.empty(), "no radix composition");

    DftPlan best;
    double best_time = 0.0;
    for (const auto& comp : compositions) {
        DftPlan plan;
        double total = 0.0;
        for (size_t lg : comp) {
            DftLevelPlan lvl = bestLevel(size_t{1} << lg, cards, t);
            total += dftLevelTime(lvl, cards, t);
            plan.levels.push_back(lvl);
        }
        if (best.levels.empty() || total < best_time) {
            best = plan;
            best_time = total;
        }
    }
    return best;
}

} // namespace hydra
