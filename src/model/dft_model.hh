/**
 * @file
 * Analytic performance model of the multi-node homomorphic DFT
 * (paper Eq. 1) and the Radix/bs parameter optimizer behind Table V.
 *
 * For one matrix-vector level with Radix r on C_n nodes, with b baby
 * step rotations:
 *     gs_s  = 2 r / (C_n * b)
 *     T_bs  = b * T_rot
 *     T_gs  = (b * T_pmult + (b - 1) * T_hadd + T_rot) * gs_s
 *     T_acc = (gs_s - 1) * T_hadd + (log2 C_n + 1) * T_com
 *     T_dft = sum over levels of (T_bs + T_gs + T_acc)
 */

#ifndef HYDRA_MODEL_DFT_MODEL_HH
#define HYDRA_MODEL_DFT_MODEL_HH

#include <cstddef>
#include <string>
#include <vector>

#include "arch/network.hh"
#include "arch/opcost.hh"

namespace hydra {

/** Per-operation time inputs of Eq. 1, in seconds. */
struct DftOpTimes
{
    double rot = 0.0;
    double pmult = 0.0;
    double hadd = 0.0;
    double com = 0.0;

    /** Derive from the cost model at a given level. */
    static DftOpTimes fromCostModel(const OpCostModel& m,
                                    const NetworkModel& net,
                                    size_t limbs);
};

/** One level's parameter choice. */
struct DftLevelPlan
{
    size_t radix = 16;
    size_t bs = 4;

    /** Giant steps per node (Eq. 1 first line), at least 1. */
    size_t
    gsPerNode(size_t cards) const
    {
        size_t gs = (2 * radix) / (cards * bs);
        return gs == 0 ? 1 : gs;
    }
};

/** Full DFT plan: one entry per level (paper uses 3 levels). */
struct DftPlan
{
    std::vector<DftLevelPlan> levels;

    std::string describe() const;
};

/** Eq. 1 evaluated for one level. */
double dftLevelTime(const DftLevelPlan& plan, size_t cards,
                    const DftOpTimes& t);

/** Eq. 1 summed over a full plan. */
double dftTime(const DftPlan& plan, size_t cards, const DftOpTimes& t);

/**
 * Search the (radix, bs) space for the plan minimizing Eq. 1 under a
 * multiplicative-depth budget (Table V uses depth 3), for `log_slots`
 * total DFT size: the per-level radices must multiply to 2^log_slots.
 *
 * @param levels number of matrix levels (depth consumed)
 * @param log_slots log2 of the DFT length
 * @param cards accelerator node count
 */
DftPlan optimizeDftPlan(size_t levels, size_t log_slots, size_t cards,
                        const DftOpTimes& t);

} // namespace hydra

#endif // HYDRA_MODEL_DFT_MODEL_HH
