#include "serve/partition.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hydra {

namespace {

size_t
tableIndex(const std::vector<std::string>& table, const std::string& w)
{
    for (size_t i = 0; i < table.size(); ++i)
        if (table[i] == w)
            return i;
    fatal("group plan names workload '%s' that no registry entry "
          "provides",
          w.c_str());
}

} // namespace

FleetPartition::FleetPartition(
    const PrototypeSpec& spec, const ServeSpec& serve,
    const std::vector<std::string>& workload_table)
{
    const size_t total = spec.cluster.totalCards();
    std::vector<GroupPlan> plan = serve.groups;
    if (plan.empty()) {
        // Auto-partition: even split across the workload classes the
        // tenants reference, remainder cards to the earliest classes.
        std::vector<std::string> used;
        for (const auto& t : serve.tenants)
            if (std::find(used.begin(), used.end(), t.workload) ==
                used.end())
                used.push_back(t.workload);
        if (used.empty())
            fatal("serve spec has no tenants and no group plan");
        if (used.size() > total)
            fatal("machine has %zu card(s) but tenants use %zu workload "
                  "class(es)",
                  total, used.size());
        size_t share = total / used.size();
        size_t extra = total % used.size();
        for (size_t i = 0; i < used.size(); ++i) {
            GroupPlan g;
            g.workload = used[i];
            g.cards = share + (i < extra ? 1 : 0);
            g.minCards = 1;
            plan.push_back(std::move(g));
        }
    }

    size_t next = 0;
    for (const auto& p : plan) {
        if (next + p.cards > total)
            fatal("group plan oversubscribes the machine: %zu card(s) "
                  "requested beyond the %zu available",
                  next + p.cards - total, total);
        ServeGroup g;
        g.id = groups_.size();
        g.workload = tableIndex(workload_table, p.workload);
        g.cards = CardGroup::contiguous(next, p.cards);
        g.minCards = p.minCards;
        groups_.push_back(std::move(g));
        next += p.cards;
    }
}

ServeGroup*
FleetPartition::groupOf(size_t card)
{
    for (auto& g : groups_) {
        if (!g.live())
            continue;
        const auto& cs = g.cards.cards;
        if (std::binary_search(cs.begin(), cs.end(), card))
            return &g;
    }
    return nullptr;
}

bool
FleetPartition::servable(size_t workload) const
{
    for (const auto& g : groups_)
        if (g.live() && g.workload == workload)
            return true;
    return false;
}

FleetPartition::DeathAction
FleetPartition::onCardDeath(size_t card)
{
    ServeGroup* g = groupOf(card);
    if (!g)
        return DeathAction::Ignored;
    auto& cs = g->cards.cards;
    cs.erase(std::find(cs.begin(), cs.end(), card));
    if (cs.size() >= g->minCards && !cs.empty())
        return DeathAction::Shrunk;

    // Below the floor: dissolve, donating survivors to the smallest
    // live sibling serving the same workload.
    std::vector<size_t> survivors = std::move(cs);
    g->retired = true;
    cs.clear();
    ServeGroup* sink = nullptr;
    for (auto& s : groups_) {
        if (&s == g || !s.live() || s.workload != g->workload)
            continue;
        if (!sink || s.cards.size() < sink->cards.size())
            sink = &s;
    }
    if (!sink)
        return DeathAction::Dissolved;
    auto& dst = sink->cards.cards;
    dst.insert(dst.end(), survivors.begin(), survivors.end());
    std::sort(dst.begin(), dst.end());
    return DeathAction::Donated;
}

} // namespace hydra
