#include "serve/federation.hh"

#include <algorithm>
#include <map>
#include <memory>

#include "common/logging.hh"
#include "sched/execplan.hh"
#include "sched/graph/modelspec.hh"
#include "sched/progcache.hh"
#include "serve/cake.hh"
#include "serve/jobcache.hh"
#include "serve/workload_gen.hh"
#include "workloads/model.hh"

namespace hydra {

namespace {

/** Failover budget per request: re-queue attempts before shedding. */
constexpr uint32_t kFailoverBudget = 3;

/**
 * The fault plan one cluster's jobs see: card-granularity entries
 * re-keyed from federation-global to cluster-local indices, cluster
 * entries stripped (the routing tier interprets those), and the seed
 * decorrelated per cluster so identical clusters don't fail in
 * lockstep.  Cluster 0 keeps the plan's own seed, so a single-cluster
 * federation is tick-identical to the pre-federation ServeSim.
 */
FaultPlan
clusterLocalPlan(const FaultPlan& f, size_t c, size_t cards_per)
{
    FaultPlan out = f;
    out.cardFailAt.clear();
    out.stragglers.clear();
    out.clusterKillAt.clear();
    out.clusterPartitionAt.clear();
    if (c)
        out.seed =
            f.seed + 0x9e3779b97f4a7c15ULL * static_cast<uint64_t>(c);
    for (const auto& [card, tick] : f.cardFailAt)
        if (card / cards_per == c)
            out.cardFailAt[card % cards_per] = tick;
    for (const auto& [card, factor] : f.stragglers)
        if (card / cards_per == c)
            out.stragglers[card % cards_per] = factor;
    return out;
}

/** What one dispatched job did, carried into its completion event. */
struct JobOutcome
{
    bool ok = true;
    Tick span = 0;
    std::vector<size_t> failedCards; // cluster-local indices
    uint64_t redispatches = 0;
    Tick recoveryPenalty = 0;
    uint64_t timedOut = 0;
    /** Absolute serve-clock ticks of completed step boundaries. */
    std::vector<Tick> stepEnds;
};

/** An in-flight job; erased on completion, cluster-kill abort, or a
 *  cake step-boundary preemption. */
struct JobRecord
{
    Request req;
    size_t cluster = 0;
    size_t group = 0; // cluster-local group id
    Tick start = 0;
    JobOutcome out;

    // Cake-scheduler state (unused on the fifo path).
    /** Deficit-ledger weight this dispatch was charged at. */
    uint64_t weight = 1;
    /** Absolute tick of the next armed slice check (0 = none). */
    Tick sliceEnd = 0;
    /** Steps of this dispatch's window complete at sliceEnd. */
    size_t sliceSteps = 0;
};

/** An in-flight half-open canary probe. */
struct ProbeRecord
{
    size_t cluster = 0;
    size_t group = 0;
    Tick span = 0;
    bool ok = false;
};

/** Runtime state of one cluster of the federation. */
struct ClusterRt
{
    size_t id = 0;
    FleetPartition fleet;
    std::vector<bool> cardDead;
    /** Card-granularity plan re-keyed to this cluster's local cards. */
    FaultPlan faults;
    bool killed = false;
    /** A probe wants to launch but every live group was busy; the next
     *  completion on this cluster launches it. */
    bool probePending = false;
    uint64_t completed = 0;
    /** In-flight jobs this cluster lost to its cluster_kill. */
    uint64_t lostJobs = 0;
    uint64_t canaries = 0;

    ClusterRt(size_t id_, const PrototypeSpec& spec,
              const ServeSpec& serve,
              const std::vector<std::string>& wl_names, FaultPlan local)
        : id(id_), fleet(spec, serve, wl_names), faults(std::move(local))
    {
        cardDead.assign(spec.cluster.totalCards(), false);
    }
};

/** One federated run's mutable state; lives for the duration of run(). */
struct Engine
{
    const PrototypeSpec& spec;
    const ServeSpec& serve;
    const FaultPlan& faults;
    const RetryPolicy& retry;

    InferenceRunner runner; // shared: clusters are identical machines
    std::vector<std::string> wlNames;
    std::vector<WorkloadModel> models;

    EventQueue eq;
    WorkloadGen gen;
    AdmissionQueue queue;
    std::vector<ClusterRt> clusters;
    HealthMonitor health;
    size_t cardsPer = 0;

    std::vector<uint64_t> servedPerTenant;
    /** In-flight jobs and probes, keyed by a shared token counter; a
     *  std::map so cluster-kill iteration is in dispatch order. */
    std::map<uint64_t, JobRecord> inflight;
    std::map<uint64_t, ProbeRecord> probes;
    uint64_t nextToken = 1;

    // Cake-scheduler state (null on the fifo path, which must stay
    // bit-identical to its pre-scheduler behaviour).
    bool cakeOn = false;
    size_t groupsPer = 0; // shards per cluster (identical machines)
    std::unique_ptr<DeficitLedger> ledger;
    std::unique_ptr<CakeQueue> crq;
    JobCache jobCache;

    // Unified ExecPlan dispatch: every tenant's jobs execute a
    // compiled plan at the tenant's `opt=` level.  Plans are skeletons
    // shared per (workload, level, group shape) — their Programs
    // resolve through the process-wide ProgramCache per executed unit,
    // so identical jobs keep the serving layer's compile reuse.
    std::vector<OptLevel> tenantOpt;
    std::map<std::tuple<size_t, uint8_t, size_t, size_t>,
             std::shared_ptr<const ExecPlan>>
        planTable;
    /** Memoized machine-scoped unit counts per (workload, level); the
     *  Aggressive partition is shape-invariant, so these also hold for
     *  every card group's plan. */
    std::map<std::pair<size_t, uint8_t>, size_t> unitTotals;
    /** ProgramCache snapshot at construction: go() reports this run's
     *  deltas (the cache is process-wide and outlives the run). */
    ProgramCache::Stats progBase;
    /** Ticks actually executed, weighted like the ledger's charges:
     *  chargedTicks == refundedTicks + executedTicks, mod 2^64. */
    uint64_t executedTicks = 0;
    /** Lower bound on the earliest queued arrival: the starvation
     *  sweep runs only once `now` passes bound + kick. */
    Tick minArrivalBound = ~Tick{0};

    ServeStats stats;
    Tick lastActivity = 0;
    Tick lastDepthTick = 0;
    double depthAcc = 0.0;

    Engine(const PrototypeSpec& spec_, const ServeSpec& serve_,
           const FaultPlan& faults_, const RetryPolicy& retry_,
           const HealthPolicy& health_)
        : spec(spec_), serve(serve_), faults(faults_), retry(retry_),
          runner(spec_), wlNames(serve_.workloadTable()),
          gen(serve_, wlNames), queue(serve_.queueCapacity),
          health(serve_.clusters ? serve_.clusters : 1, health_),
          cardsPer(spec_.cluster.totalCards())
    {
        models.reserve(wlNames.size());
        // Unified resolution: hand-built step registry first, then the
        // declarative model registry — serving tenants can name a
        // graph-compiled model ("mlp3") like any legacy workload.
        for (const auto& n : wlNames)
            models.push_back(resolveWorkloadModel(n));
        size_t n = serve.clusters ? serve.clusters : 1;
        clusters.reserve(n);
        for (size_t c = 0; c < n; ++c)
            clusters.emplace_back(c, spec, serve, wlNames,
                                  clusterLocalPlan(faults, c, cardsPer));
        servedPerTenant.assign(serve.tenants.size(), 0);
        stats.tenants.resize(serve.tenants.size());
        for (size_t i = 0; i < serve.tenants.size(); ++i)
            stats.tenants[i].name = serve.tenants[i].name;
        tenantOpt.reserve(serve.tenants.size());
        for (const auto& t : serve.tenants)
            tenantOpt.push_back(t.opt);
        progBase = ProgramCache::global().stats();
        if (serve.sched == SchedPolicy::Cake) {
            cakeOn = true;
            stats.sched = schedPolicyName(serve.sched);
            groupsPer = clusters.front().fleet.groups().size();
            ledger = std::make_unique<DeficitLedger>(serve);
            crq = std::make_unique<CakeQueue>(
                clusters.size() * groupsPer, serve.queueCapacity);
        }
    }

    TenantStats& tenant(const Request& r) { return stats.tenants[r.tenant]; }

    /** The shared ExecPlan `wl` executes at `lv` on a group shaped
     *  like `g`.  Shape-keyed: every group with the same sub-machine
     *  topology shares one skeleton plan (plan content only depends
     *  on the shape, never on which cards compose the group). */
    const ExecPlan&
    planOf(size_t wl, OptLevel lv, const CardGroup& g)
    {
        ClusterConfig shape = groupSubSpec(spec, g).cluster;
        auto key = std::make_tuple(wl, static_cast<uint8_t>(lv),
                                   shape.servers, shape.cardsPerServer);
        auto it = planTable.find(key);
        if (it == planTable.end())
            it = planTable
                     .emplace(key,
                              runner.planForJob(models[wl], g, lv))
                     .first;
        return *it->second;
    }

    /** Total unit count of `wl` at `lv` — the bound for resumable
     *  firstStep indices (which count plan units). */
    size_t
    unitTotal(size_t wl, OptLevel lv)
    {
        if (lv != OptLevel::Aggressive)
            return models[wl].steps.size();
        auto key = std::make_pair(wl, static_cast<uint8_t>(lv));
        auto it = unitTotals.find(key);
        if (it == unitTotals.end())
            it = unitTotals
                     .emplace(key,
                              runner.planUnitCount(models[wl], lv))
                     .first;
        return it->second;
    }

    /** Queued-request count under the active policy. */
    size_t qdepth() const { return cakeOn ? crq->depth() : queue.depth(); }

    /** Fold queue depth into the time-weighted integral; call before
     *  any mutation of the queue at the current tick. */
    void
    noteDepth()
    {
        Tick now = eq.now();
        depthAcc += static_cast<double>(qdepth()) *
                    static_cast<double>(now - lastDepthTick);
        lastDepthTick = now;
    }

    /** Shard id of a (cluster, cluster-local group) pair. */
    size_t sid(size_t cluster, size_t group) const
    {
        return cluster * groupsPer + group;
    }

    /** Routable cluster: can hold queued work / accept admissions
     *  (quarantined clusters count — probes may heal them). */
    bool
    clusterAlive(const ClusterRt& cl) const
    {
        return !cl.killed && !health.dead(cl.id);
    }

    /** Cake servability: any live group of any alive cluster can run
     *  any workload (runJob is model-parameterized), so a class loses
     *  its route only when the whole federation has none. */
    bool
    anyLiveGroup() const
    {
        for (const auto& cl : clusters) {
            if (!clusterAlive(cl))
                continue;
            for (const auto& g : cl.fleet.groups())
                if (g.live())
                    return true;
        }
        return false;
    }

    /**
     * Admission routing: shallowest shard among the live groups that
     * natively serve `r`'s class, falling back to any live group when
     * the class has no native group left (cross-class serving).
     * Returns the shard count when nothing is routable.
     */
    size_t
    pickShard(const Request& r) const
    {
        size_t best = clusters.size() * groupsPer;
        size_t bestDepth = 0;
        for (int pass = 0; pass < 2; ++pass) {
            for (const auto& cl : clusters) {
                if (!clusterAlive(cl))
                    continue;
                for (const auto& g : cl.fleet.groups()) {
                    if (!g.live())
                        continue;
                    if (pass == 0 && g.workload != r.workload)
                        continue;
                    size_t s = sid(cl.id, g.id);
                    size_t d = crq->shardDepth(s);
                    if (best == clusters.size() * groupsPer ||
                        d < bestDepth) {
                        best = s;
                        bestDepth = d;
                    }
                }
            }
            if (best != clusters.size() * groupsPer)
                break; // native pass found a home
        }
        return best;
    }

    /** Unconditional re-admission of already-admitted work (preempt
     *  remainders, failovers): bypasses the capacity gate, like the
     *  fifo path's AdmissionQueue::requeue. */
    void
    requeueAdmitted(const Request& r)
    {
        if (!cakeOn) {
            queue.requeue(r);
            return;
        }
        size_t s = pickShard(r);
        crq->push(s, r);
        minArrivalBound = std::min(minArrivalBound, r.arrival);
    }

    /** Re-route queued work stranded on the shard of a dissolved
     *  group or a dead/killed cluster; sheds only when the whole
     *  federation has no live group left. */
    void
    rerouteDeadShards()
    {
        for (auto& cl : clusters) {
            bool clusterOk = clusterAlive(cl);
            for (auto& g : cl.fleet.groups()) {
                size_t s = sid(cl.id, g.id);
                if ((clusterOk && g.live()) || !crq->shardDepth(s))
                    continue;
                noteDepth();
                for (const auto& r : crq->drainShard(s)) {
                    size_t to = pickShard(r);
                    if (to == clusters.size() * groupsPer)
                        shedAdmitted(r);
                    else
                        crq->push(to, r);
                }
            }
        }
    }

    /** Starvation sweep: mark queued requests older than the kick cap
     *  so they outrank every tier and deficit at the next dispatch.
     *  Gated on a lower arrival bound, so runs where work is served
     *  within its budget never pay for the scan. */
    void
    markKicks()
    {
        Tick now = eq.now();
        Tick kick = serve.kickTicks();
        if (!crq->depth() || minArrivalBound > now ||
            now - minArrivalBound < kick)
            return;
        minArrivalBound =
            crq->kickStarved(now, kick, [this](const Request& r) {
                ++stats.kicks;
                ++tenant(r).kicks;
            });
    }

    /** Any cluster that could (now or after healing) serve `wl`:
     *  quarantined clusters count — their queued work waits for the
     *  probe path — but dead/killed ones don't. */
    bool
    servableAnywhere(size_t wl) const
    {
        for (const auto& cl : clusters)
            if (!cl.killed && !health.dead(cl.id) &&
                cl.fleet.servable(wl))
                return true;
        return false;
    }

    /** Policy-aware servability: fifo needs a native group for the
     *  class; cake serves any class on any live group. */
    bool
    servable(size_t wl) const
    {
        return cakeOn ? anyLiveGroup() : servableAnywhere(wl);
    }

    void
    shedNew(const Request& r, RejectReason why)
    {
        ++stats.shed;
        ++tenant(r).shed;
        if (why == RejectReason::QueueFull)
            ++stats.shedQueueFull;
        else
            ++stats.shedNoCapacity;
    }

    /** Shed a request that was already admitted (capacity-loss flush,
     *  terminal job failure, exhausted failover budget, stall flush). */
    void
    shedAdmitted(const Request& r, bool respawn = true)
    {
        ++stats.shed;
        ++stats.shedNoCapacity;
        ++stats.shedAfterAdmit;
        ++tenant(r).shed;
        if (respawn)
            respawnClosed(r);
    }

    /** Closed-loop clients react to any terminal outcome of their
     *  request (completed or shed) by thinking and trying again. */
    void
    respawnClosed(const Request& r)
    {
        if (auto nr = gen.closedArrival(r.tenant, eq.now()))
            scheduleArrival(*nr);
    }

    void
    scheduleArrival(const Request& r)
    {
        eq.schedule(r.arrival, [this, r] { onArrival(r); });
    }

    /** Shed queued work of every workload class that lost its last
     *  possible route (all serving clusters dead).  Cake instead
     *  re-routes stranded shards first — work sheds only when the
     *  whole federation has no live group. */
    void
    flushUnservable()
    {
        if (cakeOn) {
            rerouteDeadShards();
            if (!anyLiveGroup() && crq->depth()) {
                noteDepth();
                for (const auto& r : crq->drainAll())
                    shedAdmitted(r);
            }
            return;
        }
        for (size_t wl = 0; wl < wlNames.size(); ++wl) {
            if (queue.depthFor(wl) == 0 || servableAnywhere(wl))
                continue;
            noteDepth();
            for (const auto& r : queue.drainWorkload(wl))
                shedAdmitted(r);
        }
    }

    /** Kill a card (cluster-local index): record it, repair that
     *  cluster's partition, and flush queued work of a workload class
     *  that lost its last group federation-wide. */
    void
    applyDeath(ClusterRt& cl, size_t local)
    {
        if (cl.cardDead[local])
            return;
        cl.cardDead[local] = true;
        stats.failedCards.push_back(cl.id * cardsPer + local);
        ServeGroup* g = cl.fleet.groupOf(local);
        if (!g)
            return;
        size_t wl = g->workload;
        auto action = cl.fleet.onCardDeath(local);
        if (action == FleetPartition::DeathAction::Dissolved ||
            action == FleetPartition::DeathAction::Donated)
            ++stats.repartitions;
        if (cakeOn) {
            // A dissolved group strands its shard; its work re-routes
            // (or sheds, if the federation has no live group left).
            rerouteDeadShards();
        } else if (!servableAnywhere(wl)) {
            noteDepth();
            for (const auto& r : queue.drainWorkload(wl))
                shedAdmitted(r);
        }
    }

    /** Apply kills dated at or before `now` on `g`'s cards that the
     *  in-flight job did not consume (e.g. dated exactly at its end,
     *  or falling in the post-step synchronization window). */
    void
    applyPendingKills(ClusterRt& cl, ServeGroup& g, Tick now)
    {
        if (!g.live())
            return;
        std::vector<size_t> snapshot = g.cards.cards;
        for (size_t c : snapshot) {
            auto it = cl.faults.cardFailAt.find(c);
            if (it != cl.faults.cardFailAt.end() && it->second <= now)
                applyDeath(cl, c);
        }
    }

    void
    onArrival(const Request& r)
    {
        Tick now = eq.now();
        lastActivity = std::max(lastActivity, now);
        ++stats.offered;
        ++tenant(r).offered;
        if (!servable(r.workload)) {
            shedNew(r, RejectReason::NoCapacity);
            respawnClosed(r);
            return;
        }
        if (cakeOn ? crq->full() : queue.full()) {
            shedNew(r, RejectReason::QueueFull);
            respawnClosed(r);
            return;
        }
        noteDepth();
        if (cakeOn) {
            crq->push(pickShard(r), r);
            minArrivalBound = std::min(minArrivalBound, r.arrival);
        } else {
            queue.offer(r);
        }
        ++stats.admitted;
        ++tenant(r).admitted;
        stats.maxQueueDepth = std::max(stats.maxQueueDepth, qdepth());
        dispatchIdle();
    }

    /** Health-gated routing: healthy clusters pull first, degraded
     *  ones take what's left, quarantined/dead receive nothing. */
    void
    dispatchIdle()
    {
        if (cakeOn) {
            dispatchIdleCake();
            return;
        }
        for (bool progress = true; progress;) {
            progress = false;
            for (ClusterHealth rank :
                 {ClusterHealth::Healthy, ClusterHealth::Degraded}) {
                for (auto& cl : clusters) {
                    if (health.state(cl.id) != rank)
                        continue;
                    for (auto& g : cl.fleet.groups()) {
                        if (!g.live() || g.busy)
                            continue;
                        noteDepth();
                        auto r =
                            queue.popFor(g.workload, servedPerTenant);
                        if (!r)
                            continue;
                        startJob(cl, g, *r);
                        progress = true;
                    }
                }
            }
        }
    }

    /** Cake dispatch: each idle group pops the best-ranked request of
     *  its own shard, then steals from the deepest shard anywhere in
     *  the federation (capacity follows demand, across workload
     *  classes and clusters).  Same health gating as the fifo path. */
    void
    dispatchIdleCake()
    {
        markKicks();
        for (bool progress = true; progress;) {
            progress = false;
            for (ClusterHealth rank :
                 {ClusterHealth::Healthy, ClusterHealth::Degraded}) {
                for (auto& cl : clusters) {
                    if (health.state(cl.id) != rank)
                        continue;
                    for (auto& g : cl.fleet.groups()) {
                        if (!g.live() || g.busy)
                            continue;
                        size_t s = sid(cl.id, g.id);
                        noteDepth();
                        size_t victim = s;
                        auto r = crq->popBest(s, *ledger);
                        if (!r)
                            r = crq->steal(s, *ledger, &victim);
                        if (!r)
                            continue;
                        if (victim != s) {
                            ++stats.steals;
                            ++tenant(*r).steals;
                            if (victim / groupsPer != cl.id)
                                ++stats.stealsCross;
                        }
                        startJobCake(cl, g, *r);
                        progress = true;
                    }
                }
            }
        }
    }

    void
    startJob(ClusterRt& cl, ServeGroup& g, Request r)
    {
        Tick now = eq.now();
        r.dispatched = now;
        // Deficit charge: spillover traffic counts double in the
        // least-served fairness ledger, so a tenant riding failover
        // capacity loses dequeue ties to native tenants.
        servedPerTenant[r.tenant] += r.spilled ? 2 : 1;
        if (r.spilled)
            ++stats.spilled;
        g.busy = true;
        const ExecPlan& plan =
            planOf(g.workload, tenantOpt[r.tenant], g.cards);
        size_t total = plan.size();
        size_t first = std::min(r.firstStep, total);
        // Every job executes for real on the shared clock — reuse
        // comes from the compiled-program cache behind the plan's
        // units, not from memoized service times, so absolute-tick
        // faults always land where they should.
        InferenceResult res = runner.runJob(plan, g.cards, now,
                                            cl.faults, retry, first,
                                            total - first);
        uint64_t id = nextToken++;
        JobRecord& jr = inflight[id];
        jr.req = r;
        jr.cluster = cl.id;
        jr.group = g.id;
        jr.start = now;
        jr.out.ok = res.ok();
        jr.out.span = res.total.makespan;
        jr.out.failedCards = res.failedCards;
        jr.out.redispatches = res.redispatches;
        jr.out.recoveryPenalty = res.recoveryPenalty;
        jr.out.timedOut = res.total.timedOutTransfers;
        jr.out.stepEnds.reserve(res.stepEnds.size());
        for (Tick t : res.stepEnds)
            jr.out.stepEnds.push_back(now + t);
        eq.schedule(now + jr.out.span, [this, id] { onComplete(id); });
    }

    /**
     * Cake dispatch of one request on one group: cross-class (the job
     * runs the REQUEST's model on the group's cards), deficit-charged
     * at dispatch, cache-accelerated on fault-free clusters, and
     * sliceable at step boundaries (DESIGN.md §14).
     */
    void
    startJobCake(ClusterRt& cl, ServeGroup& g, Request r)
    {
        Tick now = eq.now();
        if (r.executed == 0) {
            r.firstDispatch = now;
            stats.maxWaitTicks =
                std::max(stats.maxWaitTicks, now - r.arrival);
        } else {
            ++stats.preemptResumes;
        }
        r.dispatched = now;
        servedPerTenant[r.tenant] += r.spilled ? 2 : 1;
        if (r.spilled)
            ++stats.spilled;
        g.busy = true;
        const ExecPlan& plan =
            planOf(r.workload, tenantOpt[r.tenant], g.cards);
        size_t total = plan.size();
        size_t first = std::min(r.firstStep, total);
        uint64_t weight = r.spilled ? 2 : 1;

        uint64_t id = nextToken++;
        JobRecord& jr = inflight[id];
        jr.req = r;
        jr.cluster = cl.id;
        jr.group = g.id;
        jr.start = now;
        jr.weight = weight;

        // Fault-free clusters replay memoized windows (runJob is
        // start-invariant there, see serve/jobcache.hh); any cluster
        // with local fault injection always executes for real.
        const bool faultFree = cl.faults.empty();
        std::vector<Tick> rel; // window-relative unit ends
        const CachedJob* hit =
            faultFree ? jobCache.lookup(plan.key, g.cards.cards, first,
                                        total - first)
                      : nullptr;
        if (hit) {
            jr.out.ok = hit->ok;
            jr.out.span = hit->span;
            rel = hit->stepEnds;
        } else {
            InferenceResult res =
                runner.runJob(plan, g.cards, now, cl.faults, retry,
                              first, total - first);
            jr.out.ok = res.ok();
            jr.out.span = res.total.makespan;
            jr.out.failedCards = res.failedCards;
            jr.out.redispatches = res.redispatches;
            jr.out.recoveryPenalty = res.recoveryPenalty;
            jr.out.timedOut = res.total.timedOutTransfers;
            rel = res.stepEnds;
            if (faultFree)
                jobCache.insert(plan.key, g.cards.cards, first,
                                total - first, res);
        }
        jr.out.stepEnds.reserve(rel.size());
        for (Tick t : rel)
            jr.out.stepEnds.push_back(now + t);

        ledger->charge(r.tenant, jr.out.span, weight);
        // Step-boundary preemption arms only on fault-free clusters:
        // slicing discards the tail of the dispatched window, which
        // would silently discard tail-resident fault effects.
        if (faultFree)
            armSlice(id, now);
        eq.schedule(now + jr.out.span, [this, id] { onComplete(id); });
    }

    /** Arm the next slice check of job `id`: the first step boundary
     *  at least one wait budget past `from` that still leaves a step
     *  after it.  No-op when no such boundary exists (short jobs run
     *  whole). */
    void
    armSlice(uint64_t id, Tick from)
    {
        JobRecord& jr = inflight[id];
        // Per-tier quantum: hog-prone low tiers can be sliced finer
        // than latency-tier jobs (spec quanta; legacy = tier-0 wait
        // budget for everyone).  The AQM-demoted tier is used, so a
        // demoted hog inherits the deeper tier's (usually shorter)
        // slice.
        Tick quantum =
            serve.quantumTicks(ledger->effectiveTier(jr.req.tenant));
        const auto& ends = jr.out.stepEnds;
        for (size_t k = 0; k + 1 < ends.size(); ++k) {
            if (ends[k] < from + quantum)
                continue;
            jr.sliceEnd = ends[k];
            jr.sliceSteps = k + 1;
            eq.schedule(ends[k], [this, id] { onSliceCheck(id); });
            return;
        }
        jr.sliceEnd = 0;
    }

    /** Slice checkpoint: with work queued, preempt here — the group
     *  frees, the remainder requeues from this step boundary with its
     *  unrun span refunded; with nothing queued, re-arm one budget
     *  further out and let the job run. */
    void
    onSliceCheck(uint64_t id)
    {
        auto it = inflight.find(id);
        if (it == inflight.end() || it->second.sliceEnd != eq.now())
            return; // completed, aborted, or stale
        if (crq->depth() == 0) {
            armSlice(id, eq.now());
            return;
        }
        JobRecord jr = std::move(it->second);
        inflight.erase(it);
        Tick now = eq.now();
        lastActivity = std::max(lastActivity, now);
        ClusterRt& cl = clusters[jr.cluster];
        ServeGroup& g = cl.fleet.groups()[jr.group];
        g.busy = false;
        Tick ran = now - jr.start;
        g.busyTicks += ran;
        executedTicks += ran * jr.weight;
        ledger->refund(jr.req.tenant, jr.out.span - ran, jr.weight);
        ++stats.preemptions;
        ++tenant(jr.req).preemptions;

        Request r = jr.req;
        r.executed += ran;
        size_t total = unitTotal(r.workload, tenantOpt[r.tenant]);
        r.firstStep = std::min(r.firstStep + jr.sliceSteps, total);
        noteDepth();
        requeueAdmitted(r);
        stats.maxQueueDepth = std::max(stats.maxQueueDepth, qdepth());
        if (cl.probePending) {
            cl.probePending = false;
            launchProbe(cl.id);
        }
        dispatchIdle();
    }

    /**
     * Re-queue already-admitted work that lost its job (cluster kill
     * or terminal failure), resuming from its checkpoint: `done` steps
     * completed since `req.firstStep` are conserved.  Sheds instead
     * when the failover budget is spent or no route remains.
     */
    void
    failoverOrShed(const Request& req, size_t done)
    {
        Request r = req;
        size_t total = unitTotal(r.workload, tenantOpt[r.tenant]);
        r.firstStep = std::min(r.firstStep + done, total);
        if (r.failovers >= kFailoverBudget ||
            !servable(r.workload)) {
            shedAdmitted(r);
            return;
        }
        ++r.failovers;
        r.spilled = true;
        ++stats.failovers;
        stats.recoveredSteps += done;
        if (r.firstStep < total)
            ++stats.replayedSteps; // the interrupted step re-runs
        noteDepth();
        requeueAdmitted(r);
        stats.maxQueueDepth = std::max(stats.maxQueueDepth, qdepth());
    }

    void
    onComplete(uint64_t id)
    {
        auto it = inflight.find(id);
        if (it == inflight.end())
            return; // aborted by a cluster kill; superseded
        JobRecord jr = std::move(it->second);
        inflight.erase(it);
        Tick now = eq.now();
        lastActivity = std::max(lastActivity, now);
        ClusterRt& cl = clusters[jr.cluster];
        ServeGroup& g = cl.fleet.groups()[jr.group];
        g.busy = false;
        g.busyTicks += jr.out.span;
        stats.redispatches += jr.out.redispatches;
        stats.recoveryPenalty += jr.out.recoveryPenalty;
        for (size_t c : jr.out.failedCards)
            applyDeath(cl, c);
        applyPendingKills(cl, g, now);
        bool strained = jr.out.redispatches > 0 || jr.out.timedOut > 0 ||
                        !jr.out.failedCards.empty();
        if (health.recordOutcome(cl.id, jr.out.ok, strained, now))
            scheduleBreakerProbe(cl.id);
        if (cakeOn)
            executedTicks += jr.out.span * jr.weight;
        if (jr.out.ok) {
            ++g.completed;
            ++cl.completed;
            ++stats.completed;
            ++tenant(jr.req).completed;
            stats.latency.add(now - jr.req.arrival);
            if (cakeOn) {
                // Under preemption `dispatched` is per-slice: queue
                // wait is to the FIRST dispatch, service is the sum
                // of every slice actually executed.
                stats.queueWait.add(jr.req.firstDispatch -
                                    jr.req.arrival);
                stats.service.add(jr.req.executed + jr.out.span);
            } else {
                stats.queueWait.add(jr.req.dispatched - jr.req.arrival);
                stats.service.add(now - jr.req.dispatched);
            }
            respawnClosed(jr.req);
        } else {
            // Terminal job failure: conserve the steps this attempt
            // finished and fail the request over to another route.
            failoverOrShed(jr.req, jr.out.stepEnds.size());
        }
        if (cl.probePending) {
            cl.probePending = false;
            launchProbe(cl.id);
        }
        dispatchIdle();
    }

    /** Card-granularity kill event (federation-global index). */
    void
    onKillCard(size_t card)
    {
        ClusterRt& cl = clusters[card / cardsPer];
        size_t local = card % cardsPer;
        if (cl.killed || cl.cardDead[local])
            return;
        ServeGroup* g = cl.fleet.groupOf(local);
        if (g && g->busy)
            return; // the in-flight job's fault plan owns this kill;
                    // reconciled in onComplete via applyPendingKills
        applyDeath(cl, local);
        dispatchIdle();
    }

    /** cluster_kill: the whole cluster dies.  In-flight jobs abort and
     *  resume from their last completed step boundary on survivors. */
    void
    onClusterKill(size_t c)
    {
        ClusterRt& cl = clusters[c];
        if (cl.killed)
            return;
        Tick now = eq.now();
        lastActivity = std::max(lastActivity, now);
        cl.killed = true;
        ++stats.clusterKills;
        health.onClusterKill(c, now);
        for (auto& g : cl.fleet.groups()) {
            g.retired = true;
            g.busy = false;
        }
        cl.cardDead.assign(cl.cardDead.size(), true);
        cl.probePending = false;

        std::vector<uint64_t> doomedJobs, doomedProbes;
        for (const auto& [id, jr] : inflight)
            if (jr.cluster == c)
                doomedJobs.push_back(id);
        for (const auto& [id, pr] : probes)
            if (pr.cluster == c)
                doomedProbes.push_back(id);
        for (uint64_t id : doomedProbes)
            probes.erase(id);
        for (uint64_t id : doomedJobs) {
            JobRecord jr = std::move(inflight[id]);
            inflight.erase(id);
            ++cl.lostJobs;
            // Checkpoint: step boundaries at or before the kill are
            // conserved; the partially executed step (if any) is the
            // one replayed step this job pays.
            size_t k = 0;
            while (k < jr.out.stepEnds.size() &&
                   jr.out.stepEnds[k] <= now)
                ++k;
            Tick lastEnd = k ? jr.out.stepEnds[k - 1] : jr.start;
            stats.recoveryPenalty += now - lastEnd;
            cl.fleet.groups()[jr.group].busyTicks += now - jr.start;
            if (cakeOn) {
                // Settle the dispatch's charge: the ticks it ran are
                // executed, the unrun tail refunds (the failover's
                // re-dispatch recharges the remainder).
                Tick ran = now - jr.start;
                executedTicks += ran * jr.weight;
                ledger->refund(jr.req.tenant, jr.out.span - ran,
                               jr.weight);
                jr.req.executed += ran;
            }
            failoverOrShed(jr.req, k);
        }
        flushUnservable();
        dispatchIdle();
    }

    void
    onPartitionStart(size_t c)
    {
        ClusterRt& cl = clusters[c];
        if (cl.killed || health.dead(c))
            return;
        ++stats.clusterPartitions;
        health.onPartitionStart(c, eq.now());
        // In-flight jobs keep running (the cluster is cut off, not
        // down); only new routing is gated.
    }

    void
    onPartitionHeal(size_t c)
    {
        if (health.onPartitionHeal(c, eq.now()))
            launchProbe(c); // half-open: canary decides re-admission
    }

    /** Breaker opened on error rate: schedule the half-open probe.
     *  maxProbes == 0 disables probing entirely (sticky quarantine —
     *  operator intervention assumed; the stall watchdog reports any
     *  work this strands). */
    void
    scheduleBreakerProbe(size_t c)
    {
        if (health.policy().maxProbes == 0)
            return;
        eq.schedule(eq.now() + health.policy().probeDelay(),
                    [this, c] { breakerProbe(c); });
    }

    void
    breakerProbe(size_t c)
    {
        if (health.partitioned(c))
            return; // the partition's heal event owns re-admission
        launchProbe(c);
    }

    void
    launchProbe(size_t c)
    {
        ClusterRt& cl = clusters[c];
        if (cl.killed || health.partitioned(c) ||
            health.state(c) != ClusterHealth::Quarantined ||
            health.policy().maxProbes == 0)
            return;
        ServeGroup* pick = nullptr;
        for (auto& g : cl.fleet.groups())
            if (g.live() && !g.busy) {
                pick = &g;
                break;
            }
        if (!pick) {
            // No idle group: stragglers from before the quarantine are
            // still draining; probe when the next one completes.
            cl.probePending = true;
            return;
        }
        Tick now = eq.now();
        ++stats.canaryProbes;
        ++cl.canaries;
        pick->busy = true;
        // Cheap canary: the first step of the group's own workload.
        InferenceResult res = runner.runJob(models[pick->workload],
                                            pick->cards, now, cl.faults,
                                            retry, 0, 1);
        uint64_t id = nextToken++;
        ProbeRecord& pr = probes[id];
        pr.cluster = c;
        pr.group = pick->id;
        pr.span = res.total.makespan;
        pr.ok = res.ok();
        eq.schedule(now + pr.span, [this, id] { onProbeDone(id); });
    }

    void
    onProbeDone(uint64_t id)
    {
        auto it = probes.find(id);
        if (it == probes.end())
            return; // cluster died while the probe was in flight
        ProbeRecord pr = it->second;
        probes.erase(it);
        Tick now = eq.now();
        lastActivity = std::max(lastActivity, now);
        ClusterRt& cl = clusters[pr.cluster];
        ServeGroup& g = cl.fleet.groups()[pr.group];
        g.busy = false;
        g.busyTicks += pr.span;
        bool again = health.onProbeResult(pr.cluster, pr.ok, now);
        if (pr.ok) {
            dispatchIdle(); // breaker closed: back in the rotation
        } else if (again) {
            eq.schedule(now + health.policy().probeDelay(),
                        [this, c = pr.cluster] { breakerProbe(c); });
        } else {
            // Probe budget exhausted: written off as dead.  Queued
            // work whose last route this was sheds now.
            flushUnservable();
        }
        if (cl.probePending) {
            cl.probePending = false;
            launchProbe(pr.cluster);
        }
    }

    StallReport
    buildStallReport() const
    {
        StallReport rep;
        rep.tick = eq.now();
        rep.queuedRequests = qdepth();
        for (size_t wl = 0; wl < wlNames.size(); ++wl) {
            size_t d = cakeOn ? crq->depthFor(wl) : queue.depthFor(wl);
            if (d)
                rep.depths.push_back({wlNames[wl], d});
        }
        for (const auto& cl : clusters) {
            StallReport::ClusterLine line;
            line.cluster = cl.id;
            line.health = health.state(cl.id);
            for (const auto& g : cl.fleet.groups()) {
                line.liveGroups += g.live();
                line.busyGroups += g.live() && g.busy;
            }
            rep.clusters.push_back(line);
        }
        if (const Request* o = cakeOn ? crq->oldest()
                                      : queue.oldest()) {
            rep.oldestRequestId = o->id;
            rep.oldestTenant = serve.tenants[o->tenant].name;
            rep.oldestAge = rep.tick - o->arrival;
        }
        return rep;
    }

    ServeStats
    go()
    {
        for (const auto& r : gen.initialArrivals())
            scheduleArrival(r);
        for (const auto& [card, tick] : faults.cardFailAt)
            if (card < cardsPer * clusters.size())
                eq.schedule(tick,
                            [this, c = card] { onKillCard(c); });
        for (const auto& [c, tick] : faults.clusterKillAt)
            if (c < clusters.size())
                eq.schedule(tick, [this, c] { onClusterKill(c); });
        for (const auto& [c, p] : faults.clusterPartitionAt) {
            if (c >= clusters.size())
                continue;
            eq.schedule(p.start, [this, c] { onPartitionStart(c); });
            eq.schedule(p.heal, [this, c] { onPartitionHeal(c); });
        }
        eq.run();

        // No-progress watchdog: the event queue drained but admitted
        // requests are still queued — every route is quarantined (with
        // probing disabled) or gone.  Report and shed rather than
        // wedge; no respawn (the run is over).
        if (qdepth() > 0) {
            StallReport rep = buildStallReport();
            stats.stalled = true;
            stats.stallReport = rep.describe();
            noteDepth();
            for (const auto& r :
                 cakeOn ? crq->drainAll() : queue.drainAll())
                shedAdmitted(r, /*respawn=*/false);
        }

        stats.horizon = std::max(serve.durationTicks(), lastActivity);
        if (stats.horizon > lastDepthTick)
            depthAcc += static_cast<double>(qdepth()) *
                        static_cast<double>(stats.horizon -
                                            lastDepthTick);
        stats.meanQueueDepth =
            stats.horizon
                ? depthAcc / static_cast<double>(stats.horizon)
                : 0.0;
        stats.healthTransitions = health.transitions();
        ProgramCache::Stats pc = ProgramCache::global().stats();
        stats.progCacheHits = pc.hits - progBase.hits;
        stats.progCacheMisses = pc.misses - progBase.misses;
        stats.progCacheEvictions = pc.evictions - progBase.evictions;
        stats.progCacheEntries = pc.entries;
        if (cakeOn) {
            stats.demotions = ledger->demotions();
            stats.promotions = ledger->promotions();
            stats.chargedTicks = ledger->chargedTicks();
            stats.refundedTicks = ledger->refundedTicks();
            stats.executedTicks = executedTicks;
            stats.jobCacheHits = jobCache.hits();
            stats.jobCacheMisses = jobCache.misses();
            for (size_t t = 0; t < stats.tenants.size(); ++t) {
                stats.tenants[t].deficitTicks = ledger->deficit(t);
                stats.tenants[t].demotions = ledger->demotionsOf(t);
            }
        }
        for (const auto& cl : clusters) {
            for (const auto& g : cl.fleet.groups()) {
                GroupStats gs;
                gs.id = g.id;
                gs.cluster = cl.id;
                gs.workload = wlNames[g.workload];
                gs.cards = g.cards.size();
                gs.completed = g.completed;
                gs.busyTicks = g.busyTicks;
                gs.retired = g.retired;
                stats.groups.push_back(gs);
            }
            ClusterStats cs;
            cs.id = cl.id;
            cs.health = clusterHealthName(health.state(cl.id));
            cs.completed = cl.completed;
            cs.failovers = cl.lostJobs;
            cs.canaryProbes = cl.canaries;
            cs.deadCards = static_cast<size_t>(std::count(
                cl.cardDead.begin(), cl.cardDead.end(), true));
            cs.killed = cl.killed;
            stats.clusters.push_back(cs);
        }
        return std::move(stats);
    }
};

} // namespace

Federation::Federation(PrototypeSpec spec, ServeSpec serve,
                       FaultPlan faults, RetryPolicy retry,
                       HealthPolicy health)
    : spec_(std::move(spec)), serve_(std::move(serve)),
      faults_(std::move(faults)), retry_(retry), health_(health)
{
}

ServeStats
Federation::run()
{
    Engine eng(spec_, serve_, faults_, retry_, health_);
    return eng.go();
}

} // namespace hydra
