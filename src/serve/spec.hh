/**
 * @file
 * Multi-tenant serving specification.
 *
 * A ServeSpec describes one serving experiment deterministically from
 * a seed: which tenants issue requests (open-loop Poisson streams,
 * closed-loop client pools, or explicit trace entries), which workload
 * model each tenant runs, request priorities, the admission-queue
 * bound, and how the machine's cards are partitioned into serving
 * groups.  Like FaultPlan, it parses from / describes to a compact
 * CLI string so experiments are reproducible from one command line.
 */

#ifndef HYDRA_SERVE_SPEC_HH
#define HYDRA_SERVE_SPEC_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/parse.hh"
#include "sched/passes.hh"
#include "sim/eventq.hh"

namespace hydra {

/** How a tenant generates load. */
enum class ArrivalMode : uint8_t
{
    /** Open loop: Poisson arrivals at a fixed mean rate, regardless of
     *  completions (models independent external users). */
    Open,
    /** Closed loop: a fixed pool of clients, each issuing its next
     *  request a think time after its previous one completes. */
    Closed,
    /** Trace replay: arrivals only at the spec's explicit `at=` ticks. */
    Trace,
};

const char* arrivalModeName(ArrivalMode m);

/** How admitted requests are picked for idle card groups. */
enum class SchedPolicy : uint8_t
{
    /** Legacy admission: one global queue, highest priority tier
     *  first, then least-served tenant, then FIFO.  Groups only serve
     *  their own workload class; jobs run to completion. */
    Fifo,
    /** CAKE-style SLO scheduler (DESIGN.md §14): per-tenant deficit
     *  accounting (virtual service time charged at dispatch), sharded
     *  per-group run queues with work stealing across groups and
     *  clusters, step-boundary preemption of hog jobs when a
     *  higher-credit request blows its tier's wait budget, AQM tier
     *  demotion for tenants running a deep deficit, and a starvation
     *  kick that force-promotes anything queued past the hard cap. */
    Cake,
};

const char* schedPolicyName(SchedPolicy p);

/** One tenant of the serving experiment. */
struct TenantSpec
{
    std::string name;
    ArrivalMode mode = ArrivalMode::Open;
    /** Registry name of the workload this tenant runs ("resnet18"...). */
    std::string workload;
    /** Open loop: mean arrival rate in requests per (virtual) second. */
    double rate = 1.0;
    /** Closed loop: concurrent clients. */
    size_t clients = 1;
    /** Closed loop: think time between completion and next request. */
    double thinkSeconds = 0.0;
    /** Priority tier; 0 is the highest, larger numbers yield. */
    int priority = 1;
    /** Compilation level of this tenant's ExecPlans (`opt=`): Safe
     *  runs the legacy one-unit-per-layer path; Aggressive enables
     *  the cross-step passes (boot-plan, fuse-linear, prefetch). */
    OptLevel opt = OptLevel::Safe;
};

/** One explicit trace-replay arrival. */
struct TraceEntry
{
    double atSeconds = 0.0;
    std::string tenant;
    std::string workload;
};

/** One requested card group of the fleet partition. */
struct GroupPlan
{
    /** Workload class the group is dedicated to. */
    std::string workload;
    /** Cards carved out of the machine (contiguous allocation). */
    size_t cards = 1;
    /** Fault-aware repartitioning floor: when permanent card deaths
     *  shrink the group below this, it is dissolved and its survivors
     *  donated to a sibling group of the same workload. */
    size_t minCards = 1;
};

/** Full serving-experiment description. */
struct ServeSpec
{
    /** Seed for every stochastic draw (arrival processes). */
    uint64_t seed = 1;
    /** Federated fault domains: the machine is replicated this many
     *  times behind a health-gated routing tier; each cluster gets its
     *  own fleet partition (same group plan) and cards are numbered
     *  federation-globally (cluster c owns [c*P, (c+1)*P)). */
    size_t clusters = 1;
    /** Arrival horizon in virtual seconds; admitted work drains after. */
    double durationSeconds = 5.0;
    /** Admission-queue bound; arrivals beyond it are shed. */
    size_t queueCapacity = 64;
    /** Safety cap on generated requests (open loop + closed loop). */
    uint64_t maxRequests = 200000;
    /** Admission scheduling policy (`sched=fifo|cake`). */
    SchedPolicy sched = SchedPolicy::Fifo;
    /** Cake: base wait budget of tier 0 in virtual seconds; tier t's
     *  budget is waitBudgetSeconds * (t + 1).  A request queued past
     *  its budget triggers a step-boundary preemption attempt against
     *  the lowest-credit running job. */
    double waitBudgetSeconds = 1.0;
    /** Cake: starvation hard cap — any request queued this long is
     *  force-promoted ahead of every tier and deficit rank. */
    double kickSeconds = 10.0;
    /** Cake: per-tier preemption quantum in virtual seconds — the
     *  minimum slice a job owned by a tier-t tenant runs before a
     *  step-boundary preemption check (tiers past the last entry use
     *  the last entry).  Empty = legacy behaviour: every tier slices
     *  at the tier-0 wait budget. */
    std::vector<double> quantumSeconds;
    std::vector<TenantSpec> tenants;
    std::vector<TraceEntry> trace;
    /** Fleet partition plan; empty = split the machine evenly across
     *  the workload classes the tenants use. */
    std::vector<GroupPlan> groups;

    Tick durationTicks() const { return secondsToTicks(durationSeconds); }

    /** Cake wait budget of priority tier `tier` (0 = tightest). */
    Tick
    waitBudgetTicks(int tier) const
    {
        double scale = tier < 0 ? 1.0 : static_cast<double>(tier) + 1.0;
        return secondsToTicks(waitBudgetSeconds * scale);
    }

    /** Cake starvation hard cap. */
    Tick kickTicks() const { return secondsToTicks(kickSeconds); }

    /** Cake preemption quantum of (effective) priority tier `tier`:
     *  quantumSeconds clamped to its last entry, or the tier-0 wait
     *  budget when no quanta were spelled. */
    Tick
    quantumTicks(int tier) const
    {
        if (quantumSeconds.empty())
            return waitBudgetTicks(0);
        size_t i = tier < 0 ? 0 : static_cast<size_t>(tier);
        if (i >= quantumSeconds.size())
            i = quantumSeconds.size() - 1;
        return secondsToTicks(quantumSeconds[i]);
    }

    /**
     * Parse a CLI serve spec: comma-separated items.
     *   seed=N  clusters=N  duration=S  queue=N  requests=N
     *   sched=fifo | sched=cake[:WAIT_S[:KICK_S[:Q0_S[:Q1_S...]]]]
     *                                     (Qt_S: preemption quantum of
     *                                      tier t; last entry covers
     *                                      all deeper tiers)
     *   tenant=NAME:open:WL:RATE          (Poisson, RATE req/s)
     *   tenant=NAME:closed:WL:CLIENTS[:THINK_S]
     *   tenants=COUNT:PREFIX:MODE:WL:...  (bulk: COUNT tenants named
     *                                      PREFIX#0..#COUNT-1, same
     *                                      tail syntax as tenant=)
     *   prio=NAME:P                       (priority tier; 0 highest;
     *                                      NAME* prefix-matches)
     *   opt=safe|aggressive               (spec-wide compile-level
     *                                      default; once per spec)
     *   opt=NAME:safe|aggressive          (per-tenant level; NAME*
     *                                      prefix-matches; overrides
     *                                      the spec default)
     *   at=SEC:NAME:WL                    (trace entry; repeatable)
     *   group=WL:CARDS[:MIN]              (partition plan; repeatable)
     * Calls fatal() on malformed input (CLI-facing helper).
     */
    static ServeSpec parse(const std::string& spec);

    /**
     * Library-facing parse: on success fills `out` and returns true;
     * on malformed input returns false with `err` naming the offending
     * token.  Never exits, never crashes, never silently defaults a
     * field the spec spelled wrong.
     */
    static bool tryParse(const std::string& spec, ServeSpec& out,
                         SpecError& err);

    /** One-line human summary. */
    std::string describe() const;

    /** The distinct workload names the spec references, in first-use
     *  order (tenants, then trace, then groups): the sim's workload
     *  table. */
    std::vector<std::string> workloadTable() const;
};

} // namespace hydra

#endif // HYDRA_SERVE_SPEC_HH
