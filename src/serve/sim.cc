#include "serve/sim.hh"

#include "serve/federation.hh"

namespace hydra {

ServeSim::ServeSim(PrototypeSpec spec, ServeSpec serve, FaultPlan faults,
                   RetryPolicy retry)
    : spec_(std::move(spec)), serve_(std::move(serve)),
      faults_(std::move(faults)), retry_(retry)
{
}

ServeStats
ServeSim::run()
{
    // The federation engine IS the serving engine: a spec with
    // clusters=1 and no cluster faults takes the exact same code path
    // a standalone machine always did (cluster 0 keeps the plan's own
    // fault seed and the global card numbering).
    Federation fed(spec_, serve_, faults_, retry_);
    return fed.run();
}

} // namespace hydra
