#include "serve/sim.hh"

#include <algorithm>

#include "common/logging.hh"
#include "serve/workload_gen.hh"
#include "workloads/model.hh"

namespace hydra {

namespace {

/** What one dispatched job did, carried into its completion event. */
struct JobOutcome
{
    bool ok = true;
    Tick span = 0;
    std::vector<size_t> failedCards;
    uint64_t redispatches = 0;
    Tick recoveryPenalty = 0;
};

/** One serving run's mutable state; lives for the duration of run(). */
struct Engine
{
    const PrototypeSpec& spec;
    const ServeSpec& serve;
    const FaultPlan& faults;
    const RetryPolicy& retry;

    InferenceRunner runner;
    std::vector<std::string> wlNames;
    std::vector<WorkloadModel> models;

    EventQueue eq;
    WorkloadGen gen;
    AdmissionQueue queue;
    FleetPartition fleet;

    std::vector<uint64_t> servedPerTenant;
    std::vector<bool> cardDead;

    ServeStats stats;
    Tick lastActivity = 0;
    Tick lastDepthTick = 0;
    double depthAcc = 0.0;

    Engine(const PrototypeSpec& spec_, const ServeSpec& serve_,
           const FaultPlan& faults_, const RetryPolicy& retry_)
        : spec(spec_), serve(serve_), faults(faults_), retry(retry_),
          runner(spec_), wlNames(serve_.workloadTable()),
          gen(serve_, wlNames), queue(serve_.queueCapacity),
          fleet(spec_, serve_, wlNames)
    {
        models.reserve(wlNames.size());
        for (const auto& n : wlNames)
            models.push_back(workloadByName(n));
        servedPerTenant.assign(serve.tenants.size(), 0);
        cardDead.assign(spec.cluster.totalCards(), false);
        stats.tenants.resize(serve.tenants.size());
        for (size_t i = 0; i < serve.tenants.size(); ++i)
            stats.tenants[i].name = serve.tenants[i].name;
    }

    TenantStats& tenant(const Request& r) { return stats.tenants[r.tenant]; }

    /** Fold queue depth into the time-weighted integral; call before
     *  any mutation of the queue at the current tick. */
    void
    noteDepth()
    {
        Tick now = eq.now();
        depthAcc += static_cast<double>(queue.depth()) *
                    static_cast<double>(now - lastDepthTick);
        lastDepthTick = now;
    }

    void
    shedNew(const Request& r, RejectReason why)
    {
        ++stats.shed;
        ++tenant(r).shed;
        if (why == RejectReason::QueueFull)
            ++stats.shedQueueFull;
        else
            ++stats.shedNoCapacity;
    }

    /** Shed a request that was already admitted (capacity-loss flush
     *  or terminal job failure). */
    void
    shedAdmitted(const Request& r)
    {
        ++stats.shed;
        ++stats.shedNoCapacity;
        ++tenant(r).shed;
        respawnClosed(r);
    }

    /** Closed-loop clients react to any terminal outcome of their
     *  request (completed or shed) by thinking and trying again. */
    void
    respawnClosed(const Request& r)
    {
        if (auto nr = gen.closedArrival(r.tenant, eq.now()))
            scheduleArrival(*nr);
    }

    void
    scheduleArrival(const Request& r)
    {
        eq.schedule(r.arrival, [this, r] { onArrival(r); });
    }

    /** Kill a card: record it, repair the partition, and flush queued
     *  work of a workload class that lost its last group. */
    void
    applyDeath(size_t card)
    {
        if (cardDead[card])
            return;
        cardDead[card] = true;
        stats.failedCards.push_back(card);
        ServeGroup* g = fleet.groupOf(card);
        if (!g)
            return;
        size_t wl = g->workload;
        auto action = fleet.onCardDeath(card);
        if (action == FleetPartition::DeathAction::Dissolved ||
            action == FleetPartition::DeathAction::Donated)
            ++stats.repartitions;
        if (!fleet.servable(wl)) {
            noteDepth();
            for (const auto& r : queue.drainWorkload(wl))
                shedAdmitted(r);
        }
    }

    /** Apply kills dated at or before `now` on `g`'s cards that the
     *  in-flight job did not consume (e.g. dated exactly at its end,
     *  or falling in the post-step synchronization window). */
    void
    applyPendingKills(ServeGroup& g, Tick now)
    {
        if (!g.live())
            return;
        std::vector<size_t> snapshot = g.cards.cards;
        for (size_t c : snapshot) {
            auto it = faults.cardFailAt.find(c);
            if (it != faults.cardFailAt.end() && it->second <= now)
                applyDeath(c);
        }
    }

    void
    onArrival(const Request& r)
    {
        Tick now = eq.now();
        lastActivity = std::max(lastActivity, now);
        ++stats.offered;
        ++tenant(r).offered;
        if (!fleet.servable(r.workload)) {
            shedNew(r, RejectReason::NoCapacity);
            respawnClosed(r);
            return;
        }
        if (queue.full()) {
            shedNew(r, RejectReason::QueueFull);
            respawnClosed(r);
            return;
        }
        noteDepth();
        queue.offer(r);
        ++stats.admitted;
        ++tenant(r).admitted;
        stats.maxQueueDepth = std::max(stats.maxQueueDepth,
                                       queue.depth());
        dispatchIdle();
    }

    void
    dispatchIdle()
    {
        for (bool progress = true; progress;) {
            progress = false;
            for (auto& g : fleet.groups()) {
                if (!g.live() || g.busy)
                    continue;
                noteDepth();
                auto r = queue.popFor(g.workload, servedPerTenant);
                if (!r)
                    continue;
                startJob(g, *r);
                progress = true;
            }
        }
    }

    void
    startJob(ServeGroup& g, Request r)
    {
        Tick now = eq.now();
        r.dispatched = now;
        ++servedPerTenant[r.tenant];
        g.busy = true;
        // Every job executes for real on the shared clock — reuse
        // comes from the compiled-program cache inside runJob, not
        // from memoized service times, so absolute-tick faults always
        // land where they should.
        InferenceResult res = runner.runJob(models[g.workload], g.cards,
                                            now, faults, retry);
        JobOutcome out;
        out.ok = res.ok();
        out.span = res.total.makespan;
        out.failedCards = res.failedCards;
        out.redispatches = res.redispatches;
        out.recoveryPenalty = res.recoveryPenalty;
        size_t gid = g.id;
        eq.schedule(now + out.span, [this, gid, r, out] {
            onComplete(gid, r, out);
        });
    }

    void
    onComplete(size_t gid, const Request& r, const JobOutcome& out)
    {
        Tick now = eq.now();
        lastActivity = std::max(lastActivity, now);
        ServeGroup& g = fleet.groups()[gid];
        g.busy = false;
        g.busyTicks += out.span;
        stats.redispatches += out.redispatches;
        stats.recoveryPenalty += out.recoveryPenalty;
        for (size_t c : out.failedCards)
            applyDeath(c);
        applyPendingKills(g, now);
        if (out.ok) {
            ++g.completed;
            ++stats.completed;
            ++tenant(r).completed;
            stats.latency.add(now - r.arrival);
            stats.queueWait.add(r.dispatched - r.arrival);
            stats.service.add(now - r.dispatched);
            respawnClosed(r);
        } else {
            shedAdmitted(r);
        }
        dispatchIdle();
    }

    void
    onKill(size_t card)
    {
        if (cardDead[card])
            return;
        ServeGroup* g = fleet.groupOf(card);
        if (g && g->busy)
            return; // the in-flight job's fault plan owns this kill;
                    // reconciled in onComplete via applyPendingKills
        applyDeath(card);
        dispatchIdle();
    }

    ServeStats
    go()
    {
        for (const auto& r : gen.initialArrivals())
            scheduleArrival(r);
        for (const auto& [card, tick] : faults.cardFailAt)
            if (card < cardDead.size())
                eq.schedule(tick, [this, card] { onKill(card); });
        eq.run();

        stats.horizon = std::max(serve.durationTicks(), lastActivity);
        if (stats.horizon > lastDepthTick)
            depthAcc += static_cast<double>(queue.depth()) *
                        static_cast<double>(stats.horizon -
                                            lastDepthTick);
        stats.meanQueueDepth =
            stats.horizon ? depthAcc /
                                static_cast<double>(stats.horizon)
                          : 0.0;
        for (const auto& g : fleet.groups()) {
            GroupStats gs;
            gs.id = g.id;
            gs.workload = wlNames[g.workload];
            gs.cards = g.cards.size();
            gs.completed = g.completed;
            gs.busyTicks = g.busyTicks;
            gs.retired = g.retired;
            stats.groups.push_back(gs);
        }
        return std::move(stats);
    }
};

} // namespace

ServeSim::ServeSim(PrototypeSpec spec, ServeSpec serve, FaultPlan faults,
                   RetryPolicy retry)
    : spec_(std::move(spec)), serve_(std::move(serve)),
      faults_(std::move(faults)), retry_(retry)
{
}

ServeStats
ServeSim::run()
{
    Engine eng(spec_, serve_, faults_, retry_);
    return eng.go();
}

} // namespace hydra
