/**
 * @file
 * Per-cluster health for the federation's routing tier.
 *
 * Each cluster moves through a four-state machine driven by observed
 * job outcomes, retry/timeout strain, and explicit cluster-granularity
 * faults:
 *
 *   healthy ----> degraded ----> quarantined ----> dead
 *      ^             |   ^           |
 *      +-------------+   +-- probe --+
 *
 *  - healthy:     routable, preferred by the routing tier.
 *  - degraded:    routable but deprioritized; entered when the error
 *                 or strain fraction of the outcome window crosses the
 *                 degrade threshold, left again when the window heals.
 *  - quarantined: not routable (circuit breaker open); entered when
 *                 the error fraction crosses the quarantine threshold
 *                 or a cluster_partition fault cuts the cluster off.
 *                 After a cooldown the breaker half-opens: a cheap
 *                 canary job probes the cluster, success closes the
 *                 breaker (back to healthy), failure re-opens it.
 *  - dead:        permanently out of service: a cluster_kill fault, or
 *                 a quarantined cluster whose canary budget ran out.
 *
 * The window is a fixed-size ring of per-job outcomes, so the breaker
 * reacts to rates, not lifetime totals: one burst of failures opens
 * it, and the half-open probe path is the only way back in.
 */

#ifndef HYDRA_SERVE_HEALTH_HH
#define HYDRA_SERVE_HEALTH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/eventq.hh"

namespace hydra {

/** Health state of one cluster in the federation. */
enum class ClusterHealth : uint8_t
{
    Healthy,
    Degraded,
    Quarantined,
    Dead,
};

const char* clusterHealthName(ClusterHealth h);

/** Thresholds of the per-cluster circuit breaker. */
struct HealthPolicy
{
    /** Job outcomes tracked per cluster (sliding window). */
    size_t window = 16;
    /** Outcomes required before the window is judged at all. */
    size_t minSamples = 4;
    /** Error fraction at which a cluster turns degraded. */
    double degradeRate = 0.25;
    /** Error fraction at which the breaker opens (quarantine). */
    double quarantineRate = 0.5;
    /** Fraction of strained jobs (heavy retries/timeouts, degraded
     *  completions) at which a cluster turns degraded. */
    double strainRate = 0.5;
    /** Cooldown before a quarantined cluster gets a half-open probe. */
    double probeAfterSeconds = 2.0;
    /** Failed canary probes before a quarantined cluster is written
     *  off as dead (bounds the probe loop; keeps runs finite). */
    uint32_t maxProbes = 8;

    Tick probeDelay() const { return secondsToTicks(probeAfterSeconds); }
};

/** Tracks the health state machine of every cluster. */
class HealthMonitor
{
  public:
    explicit HealthMonitor(size_t clusters, HealthPolicy policy = {});

    ClusterHealth state(size_t c) const { return clusters_[c].state; }
    /** Routable = the routing tier may dispatch new work there. */
    bool
    routable(size_t c) const
    {
        ClusterHealth s = clusters_[c].state;
        return s == ClusterHealth::Healthy || s == ClusterHealth::Degraded;
    }
    bool dead(size_t c) const
    {
        return clusters_[c].state == ClusterHealth::Dead;
    }
    /** True while a cluster_partition's healing window is open; probes
     *  wait for the heal event instead of racing it. */
    bool partitioned(size_t c) const { return clusters_[c].partitioned; }

    /**
     * Record one job outcome on cluster `c`.  `ok` is terminal success;
     * `strained` marks an outcome that succeeded the hard way (card
     * deaths, heavy retries or timeouts).  Returns true when this
     * outcome just opened the breaker — the caller schedules a
     * half-open canary probe after policy().probeDelay().
     */
    bool recordOutcome(size_t c, bool ok, bool strained, Tick now);

    /** cluster_kill fault: the cluster is dead, permanently. */
    void onClusterKill(size_t c, Tick now);

    /** cluster_partition fault: quarantined until the healing window
     *  ends (no probes while partitioned). */
    void onPartitionStart(size_t c, Tick now);

    /**
     * The healing window ended.  The cluster stays quarantined but the
     * breaker half-opens: returns true when the caller should launch a
     * canary probe now (false when the cluster died meanwhile).
     */
    bool onPartitionHeal(size_t c, Tick now);

    /**
     * Half-open canary verdict.  Success closes the breaker (healthy,
     * window reset).  Failure re-opens it; returns true when another
     * probe should be scheduled, false when the probe budget is
     * exhausted and the cluster was written off as dead.
     */
    bool onProbeResult(size_t c, bool ok, Tick now);

    /** All state transitions so far, across clusters (stats export). */
    uint64_t transitions() const { return transitions_; }

    const HealthPolicy& policy() const { return policy_; }

    /** One-line summary: "0:healthy 1:quarantined ...". */
    std::string describe() const;

  private:
    struct Cluster
    {
        ClusterHealth state = ClusterHealth::Healthy;
        /** Outcome ring: 0 = ok, 1 = strained-ok, 2 = error. */
        std::vector<uint8_t> ring;
        size_t head = 0;
        size_t filled = 0;
        uint32_t probesFailed = 0;
        bool partitioned = false;
    };

    void moveTo(Cluster& cl, ClusterHealth next);
    void push(Cluster& cl, uint8_t outcome);
    double errorRate(const Cluster& cl) const;
    double strainRate(const Cluster& cl) const;

    HealthPolicy policy_;
    std::vector<Cluster> clusters_;
    uint64_t transitions_ = 0;
};

/**
 * No-progress diagnosis of a serving run (mirror of PR 2's
 * DeadlockReport): the event queue drained while admitted requests
 * were still queued — every cluster that could serve them is
 * quarantined or dead, so the virtual clock cannot advance any work.
 */
struct StallReport
{
    Tick tick = 0;
    size_t queuedRequests = 0;

    struct WorkloadDepth
    {
        std::string workload;
        size_t depth = 0;
    };
    std::vector<WorkloadDepth> depths;

    struct ClusterLine
    {
        size_t cluster = 0;
        ClusterHealth health = ClusterHealth::Healthy;
        size_t liveGroups = 0;
        size_t busyGroups = 0;
    };
    std::vector<ClusterLine> clusters;

    /** Oldest request still pending when the clock wedged. */
    uint64_t oldestRequestId = 0;
    std::string oldestTenant;
    Tick oldestAge = 0;

    /** Multi-line human-readable report. */
    std::string describe() const;
};

} // namespace hydra

#endif // HYDRA_SERVE_HEALTH_HH
