#include "serve/workload_gen.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/rng.hh"

namespace hydra {

namespace {

constexpr uint64_t kArrivalSalt = 0x61727276ULL; // "arrv"

size_t
tableIndex(const std::vector<std::string>& table, const std::string& w)
{
    for (size_t i = 0; i < table.size(); ++i)
        if (table[i] == w)
            return i;
    fatal("workload '%s' missing from the serve workload table",
          w.c_str());
}

} // namespace

WorkloadGen::WorkloadGen(const ServeSpec& spec,
                         const std::vector<std::string>& workload_table)
    : spec_(spec)
{
    tenantWorkload_.reserve(spec.tenants.size());
    for (const auto& t : spec.tenants)
        tenantWorkload_.push_back(tableIndex(workload_table, t.workload));
}

std::vector<Request>
WorkloadGen::initialArrivals()
{
    const Tick horizon = spec_.durationTicks();
    std::vector<Request> out;

    auto emit = [&](size_t tenant, Tick at) {
        Request r;
        r.tenant = tenant;
        r.workload = tenantWorkload_[tenant];
        r.priority = spec_.tenants[tenant].priority;
        r.arrival = at;
        out.push_back(r);
    };

    for (size_t ti = 0; ti < spec_.tenants.size(); ++ti) {
        const TenantSpec& t = spec_.tenants[ti];
        if (t.mode == ArrivalMode::Open) {
            // Poisson process: exponential gaps from the tenant's own
            // hashed stream, so adding a tenant never perturbs the
            // arrival times of another.
            double at = 0.0;
            for (uint64_t k = 0;
                 out.size() < spec_.maxRequests; ++k) {
                double u = hashUnit(spec_.seed, ti, k, kArrivalSalt);
                at += -std::log(1.0 - u) / t.rate;
                Tick tick = secondsToTicks(at);
                if (tick >= horizon)
                    break;
                emit(ti, tick);
            }
        } else if (t.mode == ArrivalMode::Closed) {
            for (size_t c = 0; c < t.clients &&
                               out.size() < spec_.maxRequests;
                 ++c)
                emit(ti, 0);
        }
    }
    for (const auto& e : spec_.trace) {
        if (out.size() >= spec_.maxRequests)
            break;
        Tick tick = secondsToTicks(e.atSeconds);
        if (tick >= horizon)
            continue;
        size_t ti = 0;
        for (; ti < spec_.tenants.size(); ++ti)
            if (spec_.tenants[ti].name == e.tenant)
                break;
        emit(ti, tick);
    }

    std::stable_sort(out.begin(), out.end(),
                     [](const Request& a, const Request& b) {
                         return a.arrival != b.arrival
                                    ? a.arrival < b.arrival
                                    : a.tenant < b.tenant;
                     });
    for (auto& r : out)
        r.id = nextId_++;
    return out;
}

std::optional<Request>
WorkloadGen::closedArrival(size_t tenant_idx, Tick completion)
{
    const TenantSpec& t = spec_.tenants[tenant_idx];
    if (t.mode != ArrivalMode::Closed)
        return std::nullopt;
    if (generated() >= spec_.maxRequests)
        return std::nullopt;
    Tick at = completion + secondsToTicks(t.thinkSeconds);
    if (at >= spec_.durationTicks())
        return std::nullopt;
    Request r;
    r.id = nextId_++;
    r.tenant = tenant_idx;
    r.workload = tenantWorkload_[tenant_idx];
    r.priority = t.priority;
    r.arrival = at;
    return r;
}

} // namespace hydra
