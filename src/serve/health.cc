#include "serve/health.hh"

#include "common/logging.hh"

namespace hydra {

const char*
clusterHealthName(ClusterHealth h)
{
    switch (h) {
    case ClusterHealth::Healthy:
        return "healthy";
    case ClusterHealth::Degraded:
        return "degraded";
    case ClusterHealth::Quarantined:
        return "quarantined";
    case ClusterHealth::Dead:
        return "dead";
    }
    return "?";
}

HealthMonitor::HealthMonitor(size_t clusters, HealthPolicy policy)
    : policy_(policy)
{
    clusters_.resize(clusters);
    for (auto& cl : clusters_)
        cl.ring.assign(policy_.window ? policy_.window : 1, 0);
}

void
HealthMonitor::moveTo(Cluster& cl, ClusterHealth next)
{
    if (cl.state == next)
        return;
    cl.state = next;
    ++transitions_;
}

void
HealthMonitor::push(Cluster& cl, uint8_t outcome)
{
    cl.ring[cl.head] = outcome;
    cl.head = (cl.head + 1) % cl.ring.size();
    if (cl.filled < cl.ring.size())
        ++cl.filled;
}

double
HealthMonitor::errorRate(const Cluster& cl) const
{
    if (cl.filled == 0)
        return 0.0;
    size_t errors = 0;
    for (size_t i = 0; i < cl.filled; ++i)
        errors += cl.ring[i] == 2;
    return static_cast<double>(errors) / static_cast<double>(cl.filled);
}

double
HealthMonitor::strainRate(const Cluster& cl) const
{
    if (cl.filled == 0)
        return 0.0;
    size_t strained = 0;
    for (size_t i = 0; i < cl.filled; ++i)
        strained += cl.ring[i] != 0;
    return static_cast<double>(strained) / static_cast<double>(cl.filled);
}

bool
HealthMonitor::recordOutcome(size_t c, bool ok, bool strained, Tick)
{
    Cluster& cl = clusters_[c];
    if (cl.state == ClusterHealth::Dead ||
        cl.state == ClusterHealth::Quarantined) {
        // Stragglers finishing after the breaker opened (or after a
        // partition started) don't move the state machine: only the
        // half-open probe path closes an open breaker.
        return false;
    }
    push(cl, ok ? (strained ? 1 : 0) : 2);
    if (cl.filled < policy_.minSamples)
        return false;
    if (errorRate(cl) >= policy_.quarantineRate) {
        moveTo(cl, ClusterHealth::Quarantined);
        return true; // breaker just opened: caller schedules a probe
    }
    if (errorRate(cl) >= policy_.degradeRate ||
        strainRate(cl) >= policy_.strainRate)
        moveTo(cl, ClusterHealth::Degraded);
    else
        moveTo(cl, ClusterHealth::Healthy);
    return false;
}

void
HealthMonitor::onClusterKill(size_t c, Tick)
{
    moveTo(clusters_[c], ClusterHealth::Dead);
}

void
HealthMonitor::onPartitionStart(size_t c, Tick)
{
    Cluster& cl = clusters_[c];
    if (cl.state == ClusterHealth::Dead)
        return;
    cl.partitioned = true;
    moveTo(cl, ClusterHealth::Quarantined);
}

bool
HealthMonitor::onPartitionHeal(size_t c, Tick)
{
    Cluster& cl = clusters_[c];
    cl.partitioned = false;
    return cl.state == ClusterHealth::Quarantined;
}

bool
HealthMonitor::onProbeResult(size_t c, bool ok, Tick)
{
    Cluster& cl = clusters_[c];
    if (cl.state != ClusterHealth::Quarantined)
        return false;
    if (ok) {
        // Close the breaker with a clean slate: the old window's
        // errors belong to the episode the probe just ended.
        cl.ring.assign(cl.ring.size(), 0);
        cl.head = 0;
        cl.filled = 0;
        cl.probesFailed = 0;
        moveTo(cl, ClusterHealth::Healthy);
        return false;
    }
    if (++cl.probesFailed >= policy_.maxProbes) {
        moveTo(cl, ClusterHealth::Dead);
        return false;
    }
    return true; // still within budget: schedule the next probe
}

std::string
HealthMonitor::describe() const
{
    std::string s;
    for (size_t c = 0; c < clusters_.size(); ++c)
        s += strf("%s%zu:%s", c ? " " : "", c,
                  clusterHealthName(clusters_[c].state));
    return s;
}

std::string
StallReport::describe() const
{
    std::string s =
        strf("stall at %.3f s: %zu request(s) queued with no cluster "
             "able to advance the clock\n",
             ticksToSeconds(tick), queuedRequests);
    for (const auto& d : depths)
        s += strf("  workload %-12s %zu queued\n", d.workload.c_str(),
                  d.depth);
    for (const auto& c : clusters)
        s += strf("  cluster %zu: %s, %zu live group(s), %zu busy\n",
                  c.cluster, clusterHealthName(c.health), c.liveGroups,
                  c.busyGroups);
    s += strf("  oldest pending: request %llu (tenant %s), waiting "
              "%.3f s\n",
              static_cast<unsigned long long>(oldestRequestId),
              oldestTenant.c_str(), ticksToSeconds(oldestAge));
    return s;
}

} // namespace hydra
