/**
 * @file
 * Fault-free job-result cache for the serving engine.
 *
 * With an empty cluster-local FaultPlan, InferenceRunner::runJob is a
 * pure function of (workload, card set, step window): the executor's
 * time origin only shifts event timestamps, so the span and step
 * boundaries are start-invariant (pinned by RunnerJobs.
 * AlignedGroupMatchesWholeMachine).  Million-request serving runs
 * re-execute the same handful of (workload, group) jobs, so the
 * engine caches the outcome and replays it in O(1) — the same spans,
 * bit for bit, as real execution.  Any cluster whose local plan
 * injects anything at all (rates, stragglers, kills) bypasses the
 * cache, keeping the PR 5 guarantee that absolute-tick faults land in
 * real executions.
 */

#ifndef HYDRA_SERVE_JOBCACHE_HH
#define HYDRA_SERVE_JOBCACHE_HH

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "sched/runner.hh"

namespace hydra {

/** Memoized outcome of one fault-free runJob window. */
struct CachedJob
{
    bool ok = true;
    Tick span = 0;
    /** Unit-boundary offsets from the job's start (runJob semantics). */
    std::vector<Tick> stepEnds;
};

/** Per-run cache of fault-free job windows, keyed on the ExecPlan's
 *  window-independent identity + the executed unit window + the card
 *  set: sliced tails and memoized replays work identically for Safe
 *  step units and Aggressive multi-layer units. */
class JobCache
{
  public:
    /** Cached result for (plan, cards, unit window), or nullptr. */
    const CachedJob*
    lookup(const std::string& plan_key,
           const std::vector<size_t>& cards, size_t first_unit,
           size_t num_units) const
    {
        auto it =
            map_.find(keyOf(plan_key, cards, first_unit, num_units));
        if (it == map_.end()) {
            ++misses_;
            return nullptr;
        }
        ++hits_;
        return &it->second;
    }

    void
    insert(const std::string& plan_key,
           const std::vector<size_t>& cards, size_t first_unit,
           size_t num_units, const InferenceResult& r)
    {
        CachedJob c;
        c.ok = r.ok();
        c.span = r.total.makespan;
        c.stepEnds = r.stepEnds;
        map_.emplace(keyOf(plan_key, cards, first_unit, num_units),
                     std::move(c));
    }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    /** (FNV-1a plan key, first, count, FNV-1a card signature).  The
     *  plan key folds the machine shape, workload content and opt
     *  level; the card set is folded by content, so shrunken groups
     *  never alias their pre-repair selves. */
    using Key = std::tuple<uint64_t, size_t, size_t, uint64_t>;

    static Key
    keyOf(const std::string& plan_key, const std::vector<size_t>& cards,
          size_t first_unit, size_t num_units)
    {
        auto fold = [](uint64_t& h, uint64_t v) {
            for (size_t i = 0; i < sizeof(v); ++i) {
                h ^= (v >> (i * 8)) & 0xff;
                h *= 0x100000001b3ULL;
            }
        };
        uint64_t hp = 0xcbf29ce484222325ULL;
        for (char ch : plan_key) {
            hp ^= static_cast<unsigned char>(ch);
            hp *= 0x100000001b3ULL;
        }
        uint64_t hc = 0xcbf29ce484222325ULL;
        fold(hc, cards.size());
        for (size_t c : cards)
            fold(hc, c);
        return {hp, first_unit, num_units, hc};
    }

    std::map<Key, CachedJob> map_;
    mutable uint64_t hits_ = 0;
    mutable uint64_t misses_ = 0;
};

} // namespace hydra

#endif // HYDRA_SERVE_JOBCACHE_HH
