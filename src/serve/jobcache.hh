/**
 * @file
 * Fault-free job-result cache for the serving engine.
 *
 * With an empty cluster-local FaultPlan, InferenceRunner::runJob is a
 * pure function of (workload, card set, step window): the executor's
 * time origin only shifts event timestamps, so the span and step
 * boundaries are start-invariant (pinned by RunnerJobs.
 * AlignedGroupMatchesWholeMachine).  Million-request serving runs
 * re-execute the same handful of (workload, group) jobs, so the
 * engine caches the outcome and replays it in O(1) — the same spans,
 * bit for bit, as real execution.  Any cluster whose local plan
 * injects anything at all (rates, stragglers, kills) bypasses the
 * cache, keeping the PR 5 guarantee that absolute-tick faults land in
 * real executions.
 */

#ifndef HYDRA_SERVE_JOBCACHE_HH
#define HYDRA_SERVE_JOBCACHE_HH

#include <map>
#include <tuple>
#include <vector>

#include "sched/runner.hh"

namespace hydra {

/** Memoized outcome of one fault-free runJob window. */
struct CachedJob
{
    bool ok = true;
    Tick span = 0;
    /** Step-boundary offsets from the job's start (runJob semantics). */
    std::vector<Tick> stepEnds;
};

/** Per-run cache of fault-free job windows. */
class JobCache
{
  public:
    /** Cached result for (workload, cards, window), or nullptr. */
    const CachedJob*
    lookup(size_t workload, const std::vector<size_t>& cards,
           size_t first_step, size_t num_steps) const
    {
        auto it = map_.find(keyOf(workload, cards, first_step,
                                  num_steps));
        if (it == map_.end()) {
            ++misses_;
            return nullptr;
        }
        ++hits_;
        return &it->second;
    }

    void
    insert(size_t workload, const std::vector<size_t>& cards,
           size_t first_step, size_t num_steps, const InferenceResult& r)
    {
        CachedJob c;
        c.ok = r.ok();
        c.span = r.total.makespan;
        c.stepEnds = r.stepEnds;
        map_.emplace(keyOf(workload, cards, first_step, num_steps),
                     std::move(c));
    }

    uint64_t hits() const { return hits_; }
    uint64_t misses() const { return misses_; }

  private:
    /** (workload, first, count, FNV-1a card signature).  The card set
     *  is folded by content, so shrunken groups never alias their
     *  pre-repair selves. */
    using Key = std::tuple<size_t, size_t, size_t, uint64_t>;

    static Key
    keyOf(size_t workload, const std::vector<size_t>& cards,
          size_t first_step, size_t num_steps)
    {
        uint64_t h = 0xcbf29ce484222325ULL;
        auto fold = [&h](uint64_t v) {
            for (size_t i = 0; i < sizeof(v); ++i) {
                h ^= (v >> (i * 8)) & 0xff;
                h *= 0x100000001b3ULL;
            }
        };
        fold(cards.size());
        for (size_t c : cards)
            fold(c);
        return {workload, first_step, num_steps, h};
    }

    std::map<Key, CachedJob> map_;
    mutable uint64_t hits_ = 0;
    mutable uint64_t misses_ = 0;
};

} // namespace hydra

#endif // HYDRA_SERVE_JOBCACHE_HH
