/**
 * @file
 * Multi-tenant serving simulator: the discrete-event layer that turns
 * one-shot inference into sustained throughput on a shared virtual
 * clock.
 *
 * Pipeline per request: workload generator -> bounded admission queue
 * (priority + tenant fairness, shed on full) -> fleet partition (one
 * idle card group per workload class picks the next request) ->
 * InferenceRunner::runJob on the group's cards -> ServeStats roll-up
 * (throughput, utilization, p50/p95/p99 latency).  `sched=cake`
 * replaces the FIFO admission order with the deficit scheduler of
 * serve/cake.hh (preemption, AQM, work stealing — DESIGN.md §14).
 *
 * Clock composition: the serve clock is absolute virtual time.  Jobs
 * dispatched at t0 run with the cluster executor's time origin set to
 * t0, so FaultPlan::cardFailAt ticks are absolute serve-clock times
 * and a kill lands in whatever job (or idle period) covers it.
 * Every job executes for real; reuse comes from the shared
 * ProgramCache inside InferenceRunner::runJob — identical (workload,
 * group size, alignment) jobs replay one compiled Program, which
 * keeps thousand-request simulations fast and bit-deterministic
 * while letting absolute-tick faults land in any job.
 *
 * Fault handling: transient faults (drop/corrupt/degrade) apply
 * inside every job; permanent card kills are consumed by the job in
 * flight (degraded completion via survivor re-dispatch, PR 2) or by
 * the serve loop when the card is idle.  Either way the fleet
 * partition repairs itself: groups shrink in place until minCards,
 * then dissolve and donate survivors to a sibling; a workload class
 * with no groups left sheds its queued and future requests with a
 * structured no-capacity reason.
 *
 * Federation: ServeSim is a thin wrapper over the Federation engine
 * (serve/federation.hh).  ServeSpec::clusters > 1 replicates the
 * machine behind a health-gated routing tier with cluster-granularity
 * faults, failover, and checkpointed job recovery; clusters = 1 keeps
 * the exact single-machine semantics described above.
 */

#ifndef HYDRA_SERVE_SIM_HH
#define HYDRA_SERVE_SIM_HH

#include "serve/partition.hh"
#include "serve/queue.hh"
#include "serve/stats.hh"
#include "sync/fault.hh"

namespace hydra {

/** Runs one serving experiment on one machine. */
class ServeSim
{
  public:
    /**
     * @param spec machine description (copied)
     * @param serve serving experiment (tenants, partition, queue)
     * @param faults machine-global fault plan; cardFailAt ticks are
     *        absolute serve-clock times
     * @param retry DTU retry policy forwarded to every job
     */
    ServeSim(PrototypeSpec spec, ServeSpec serve, FaultPlan faults = {},
             RetryPolicy retry = {});

    /**
     * Run to completion: arrivals stop at the spec horizon, admitted
     * work drains.  Deterministic: same spec + seed + faults give a
     * bit-identical ServeStats (same hash()), independent of
     * HYDRA_THREADS.
     */
    ServeStats run();

    const PrototypeSpec& spec() const { return spec_; }
    const ServeSpec& serveSpec() const { return serve_; }

  private:
    PrototypeSpec spec_;
    ServeSpec serve_;
    FaultPlan faults_;
    RetryPolicy retry_;
};

} // namespace hydra

#endif // HYDRA_SERVE_SIM_HH
