#include "serve/cake.hh"

#include <algorithm>

namespace hydra {

namespace {

/** Demotion fires at 8 wait budgets of deficit, promotion back at 2:
 *  one quantum of jitter never demotes, and a demoted hog must drain
 *  three quarters of the threshold before it competes at its spec
 *  tier again (no flapping at the boundary). */
constexpr uint64_t kDemoteBudgets = 8;
constexpr uint64_t kPromoteDivisor = 4;

} // namespace

DeficitLedger::DeficitLedger(const ServeSpec& spec)
{
    size_t n = spec.tenants.size();
    finish_.assign(n, 0);
    baseTier_.reserve(n);
    for (const auto& t : spec.tenants)
        baseTier_.push_back(t.priority);
    demoted_.assign(n, 0);
    tenantDemotions_.assign(n, 0);
    demoteThreshold_ = spec.waitBudgetTicks(0) * kDemoteBudgets;
}

void
DeficitLedger::charge(size_t t, Tick span, uint64_t weight)
{
    VirtualTag start = startTag(t);
    v_ = start;
    finish_[t] = start + static_cast<VirtualTag>(span) * weight;
    charged_ += span * weight; // mod 2^64: conservation identity only
    updateTier(t);
}

void
DeficitLedger::refund(size_t t, Tick unrun, uint64_t weight)
{
    VirtualTag back = static_cast<VirtualTag>(unrun) * weight;
    finish_[t] = finish_[t] > back ? finish_[t] - back : 0;
    refunded_ += unrun * weight;
    updateTier(t);
}

void
DeficitLedger::updateTier(size_t t)
{
    Tick d = deficit(t);
    if (!demoted_[t] && d > demoteThreshold_) {
        demoted_[t] = 1;
        ++demotions_;
        ++tenantDemotions_[t];
    } else if (demoted_[t] && d < demoteThreshold_ / kPromoteDivisor) {
        demoted_[t] = 0;
        ++promotions_;
    }
}

RankKey
rankOf(const Request& r, const DeficitLedger& led)
{
    RankKey k;
    k.kicked = r.kicked;
    k.tier = led.effectiveTier(r.tenant);
    k.tag = led.startTag(r.tenant);
    k.arrival = r.arrival;
    k.id = r.id;
    return k;
}

CakeQueue::CakeQueue(size_t shards, size_t capacity)
    : shards_(shards), capacity_(capacity)
{
}

void
CakeQueue::push(size_t s, const Request& r)
{
    shards_[s].push_back(r);
    ++depth_;
}

std::optional<Request>
CakeQueue::popBest(size_t s, const DeficitLedger& led)
{
    auto& q = shards_[s];
    if (q.empty())
        return std::nullopt;
    size_t best = 0;
    RankKey bestKey = rankOf(q[0], led);
    for (size_t i = 1; i < q.size(); ++i) {
        RankKey k = rankOf(q[i], led);
        if (k < bestKey) {
            best = i;
            bestKey = k;
        }
    }
    Request r = q[best];
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(best));
    --depth_;
    return r;
}

std::optional<Request>
CakeQueue::steal(size_t exclude, const DeficitLedger& led,
                 size_t* victim_out)
{
    size_t victim = shards_.size();
    size_t deepest = 0;
    for (size_t s = 0; s < shards_.size(); ++s) {
        if (s == exclude)
            continue;
        if (shards_[s].size() > deepest) {
            deepest = shards_[s].size();
            victim = s;
        }
    }
    if (victim == shards_.size())
        return std::nullopt;
    if (victim_out)
        *victim_out = victim;
    return popBest(victim, led);
}

Tick
CakeQueue::kickStarved(Tick now, Tick kick,
                       const std::function<void(const Request&)>& on_kick)
{
    Tick earliest = ~Tick{0};
    for (auto& q : shards_)
        for (auto& r : q) {
            if (!r.kicked && now >= r.arrival &&
                now - r.arrival >= kick) {
                r.kicked = true;
                on_kick(r);
            }
            earliest = std::min(earliest, r.arrival);
        }
    return earliest;
}

Request*
CakeQueue::find(size_t s, uint64_t id)
{
    for (auto& r : shards_[s])
        if (r.id == id)
            return &r;
    return nullptr;
}

std::vector<Request>
CakeQueue::drainAll()
{
    std::vector<Request> out;
    out.reserve(depth_);
    for (auto& q : shards_) {
        out.insert(out.end(), q.begin(), q.end());
        q.clear();
    }
    depth_ = 0;
    return out;
}

std::vector<Request>
CakeQueue::drainShard(size_t s)
{
    std::vector<Request> out = std::move(shards_[s]);
    shards_[s].clear();
    depth_ -= out.size();
    return out;
}

const Request*
CakeQueue::oldest() const
{
    const Request* o = nullptr;
    for (const auto& q : shards_)
        for (const auto& r : q)
            if (!o || r.arrival < o->arrival ||
                (r.arrival == o->arrival && r.id < o->id))
                o = &r;
    return o;
}

size_t
CakeQueue::depthFor(size_t workload) const
{
    size_t n = 0;
    for (const auto& q : shards_)
        for (const auto& r : q)
            n += r.workload == workload;
    return n;
}

} // namespace hydra
