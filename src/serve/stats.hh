/**
 * @file
 * Serving metrics: fixed-bucket latency histograms, per-tenant and
 * per-group counters, queue-depth tracking, and a machine-readable
 * JSON export compatible with the --json bench machinery.
 *
 * Percentiles come from a geometric fixed-bucket histogram (no stored
 * samples): bucket 0 is [0, 100us) and each later bucket grows by
 * 2^(1/4) (~19% relative resolution) up to ~23 minutes, overflow
 * clamped into the last bucket.  percentile() returns the upper edge
 * of the bucket containing the requested quantile — deterministic,
 * conservative, and O(1) memory regardless of request count.
 */

#ifndef HYDRA_SERVE_STATS_HH
#define HYDRA_SERVE_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/eventq.hh"

namespace hydra {

/** Fixed-bucket geometric latency histogram. */
class LatencyHistogram
{
  public:
    static constexpr size_t kBuckets = 96;

    void add(Tick t);

    uint64_t count() const { return total_; }

    /** Upper edge of the bucket holding quantile p (p in (0, 1]);
     *  0 when the histogram is empty. */
    Tick percentile(double p) const;

    const std::array<uint64_t, kBuckets>& buckets() const
    {
        return counts_;
    }

    /** Upper edge of bucket `i` in ticks (same table add() bins by). */
    static Tick bucketUpper(size_t i);

  private:
    std::array<uint64_t, kBuckets> counts_{};
    uint64_t total_ = 0;
};

/** Per-tenant serving counters. */
struct TenantStats
{
    std::string name;
    uint64_t offered = 0;
    uint64_t admitted = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
};

/** Per-group usage snapshot at the end of a run. */
struct GroupStats
{
    size_t id = 0;
    std::string workload;
    /** Cards still alive at the end of the run. */
    size_t cards = 0;
    uint64_t completed = 0;
    Tick busyTicks = 0;
    bool retired = false;

    double
    utilization(Tick horizon) const
    {
        return horizon ? static_cast<double>(busyTicks) /
                             static_cast<double>(horizon)
                       : 0.0;
    }
};

/** Aggregated results of one serving run. */
struct ServeStats
{
    /** End of the run: max(arrival horizon, last completion). */
    Tick horizon = 0;

    uint64_t offered = 0;
    uint64_t admitted = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t shedQueueFull = 0;
    uint64_t shedNoCapacity = 0;

    /** Fault accounting rolled up from degraded jobs and idle kills. */
    std::vector<size_t> failedCards;
    uint64_t repartitions = 0;
    uint64_t redispatches = 0;
    Tick recoveryPenalty = 0;

    size_t maxQueueDepth = 0;
    /** Time-weighted mean queue depth over the horizon. */
    double meanQueueDepth = 0.0;

    /** completion - arrival. */
    LatencyHistogram latency;
    /** dispatch - arrival. */
    LatencyHistogram queueWait;
    /** completion - dispatch. */
    LatencyHistogram service;

    std::vector<TenantStats> tenants;
    std::vector<GroupStats> groups;

    double
    throughputRps() const
    {
        double s = ticksToSeconds(horizon);
        return s > 0 ? static_cast<double>(completed) / s : 0.0;
    }

    /** FNV-1a over every counter and histogram bucket: two runs with
     *  the same seed must produce the same hash (determinism tests). */
    uint64_t hash() const;

    /** One JSON object with throughput, p50/p95/p99, shed reasons,
     *  per-tenant and per-group roll-ups. */
    std::string toJson(const std::string& machine,
                       const std::string& spec_line) const;

    /** Human-readable console report. */
    std::string describe() const;
};

} // namespace hydra

#endif // HYDRA_SERVE_STATS_HH
