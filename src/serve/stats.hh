/**
 * @file
 * Serving metrics: fixed-bucket latency histograms, per-tenant and
 * per-group counters, queue-depth tracking, and a machine-readable
 * JSON export compatible with the --json bench machinery.
 *
 * Percentiles come from a geometric fixed-bucket histogram (no stored
 * samples): bucket 0 is [0, 100us) and each later bucket grows by
 * 2^(1/4) (~19% relative resolution) up to ~23 minutes, overflow
 * clamped into the last bucket.  percentile() returns the upper edge
 * of the bucket containing the requested quantile — deterministic,
 * conservative, and O(1) memory regardless of request count.
 */

#ifndef HYDRA_SERVE_STATS_HH
#define HYDRA_SERVE_STATS_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "sim/eventq.hh"

namespace hydra {

/** Fixed-bucket geometric latency histogram. */
class LatencyHistogram
{
  public:
    static constexpr size_t kBuckets = 96;

    void add(Tick t);

    uint64_t count() const { return total_; }

    /** Upper edge of the bucket holding quantile p (p in (0, 1]);
     *  0 when the histogram is empty. */
    Tick percentile(double p) const;

    const std::array<uint64_t, kBuckets>& buckets() const
    {
        return counts_;
    }

    /** Upper edge of bucket `i` in ticks (same table add() bins by). */
    static Tick bucketUpper(size_t i);

  private:
    std::array<uint64_t, kBuckets> counts_{};
    uint64_t total_ = 0;
};

/** Per-tenant serving counters. */
struct TenantStats
{
    std::string name;
    uint64_t offered = 0;
    uint64_t admitted = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;

    // Cake-scheduler counters (all zero on the fifo path; folded into
    // the stats hash only when the run used a non-fifo policy).
    /** Residual deficit (ticks ahead of fair share) at end of run. */
    Tick deficitTicks = 0;
    /** AQM tier demotions charged to this tenant. */
    uint64_t demotions = 0;
    /** Requests force-promoted by the starvation kick. */
    uint64_t kicks = 0;
    /** Requests of this tenant served via work stealing. */
    uint64_t steals = 0;
    /** Step-boundary preemptions of this tenant's jobs. */
    uint64_t preemptions = 0;
};

/** Per-group usage snapshot at the end of a run. */
struct GroupStats
{
    size_t id = 0;
    /** Owning cluster (0 for single-cluster runs). */
    size_t cluster = 0;
    std::string workload;
    /** Cards still alive at the end of the run. */
    size_t cards = 0;
    uint64_t completed = 0;
    Tick busyTicks = 0;
    bool retired = false;

    double
    utilization(Tick horizon) const
    {
        return horizon ? static_cast<double>(busyTicks) /
                             static_cast<double>(horizon)
                       : 0.0;
    }
};

/** Per-cluster roll-up of a federated run. */
struct ClusterStats
{
    size_t id = 0;
    /** Final health state ("healthy" / "degraded" / ...). */
    std::string health;
    uint64_t completed = 0;
    /** In-flight jobs this cluster lost to a cluster kill. */
    uint64_t failovers = 0;
    uint64_t canaryProbes = 0;
    size_t deadCards = 0;
    bool killed = false;
};

/** Aggregated results of one serving run. */
struct ServeStats
{
    /** End of the run: max(arrival horizon, last completion). */
    Tick horizon = 0;

    /** Scheduling policy name ("fifo" / "cake").  Everything in the
     *  cake block below stays zero on the fifo path, and hash() folds
     *  it only for non-fifo runs so pre-existing fifo hashes remain
     *  bit-for-bit stable. */
    std::string sched = "fifo";

    // Cake-scheduler accounting (DESIGN.md §14).
    /** Jobs sliced at a step boundary and requeued. */
    uint64_t preemptions = 0;
    /** Dispatches that resumed a previously preempted request. */
    uint64_t preemptResumes = 0;
    /** Dispatches served by stealing from another group's shard. */
    uint64_t steals = 0;
    /** Portion of `steals` taken from a different cluster. */
    uint64_t stealsCross = 0;
    /** AQM tier demotions / recoveries across all tenants. */
    uint64_t demotions = 0;
    uint64_t promotions = 0;
    /** Starvation kicks (requests queued past the hard cap). */
    uint64_t kicks = 0;
    /** Deficit-ledger conservation counters, mod 2^64:
     *  chargedTicks == refundedTicks + executedTicks for every run. */
    uint64_t chargedTicks = 0;
    uint64_t refundedTicks = 0;
    uint64_t executedTicks = 0;
    /** Longest any completed request waited before first dispatch. */
    Tick maxWaitTicks = 0;
    /** Fault-free job-result cache effectiveness. */
    uint64_t jobCacheHits = 0;
    uint64_t jobCacheMisses = 0;

    /** Process-wide ProgramCache activity attributed to this run
     *  (hit/miss/eviction deltas over the run; entries is the
     *  end-of-run population).  Observability only — deliberately
     *  NEVER folded into hash(): the compiled-program cache is shared
     *  across runs in one process, so its deltas depend on what ran
     *  before, while the serving outcome does not. */
    uint64_t progCacheHits = 0;
    uint64_t progCacheMisses = 0;
    uint64_t progCacheEvictions = 0;
    uint64_t progCacheEntries = 0;

    uint64_t offered = 0;
    uint64_t admitted = 0;
    uint64_t completed = 0;
    uint64_t shed = 0;
    uint64_t shedQueueFull = 0;
    uint64_t shedNoCapacity = 0;
    /** Portion of `shed` that had already been admitted (capacity-loss
     *  flushes, terminal job failures, stall flushes): the accounting
     *  identity is admitted == completed + shedAfterAdmit. */
    uint64_t shedAfterAdmit = 0;

    /** Fault accounting rolled up from degraded jobs and idle kills. */
    std::vector<size_t> failedCards;
    uint64_t repartitions = 0;
    uint64_t redispatches = 0;
    Tick recoveryPenalty = 0;

    /** Federation accounting (all zero for single-cluster runs without
     *  cluster faults). */
    uint64_t clusterKills = 0;
    uint64_t clusterPartitions = 0;
    /** In-flight jobs aborted by a cluster death and re-queued. */
    uint64_t failovers = 0;
    /** Requests dispatched on a different cluster after a failover. */
    uint64_t spilled = 0;
    /** Step boundaries conserved across failovers: steps a resumed job
     *  did NOT have to re-run thanks to checkpointed recovery. */
    uint64_t recoveredSteps = 0;
    /** Steps re-executed because the kill landed mid-step (bounded by
     *  one per failed-over in-flight job). */
    uint64_t replayedSteps = 0;
    /** Health state-machine transitions across all clusters. */
    uint64_t healthTransitions = 0;
    /** Half-open canary probes launched by the circuit breaker. */
    uint64_t canaryProbes = 0;

    /** No-progress watchdog: set when the event queue drained with
     *  admitted requests still queued (all routes quarantined/dead);
     *  the stuck requests are shed and the report captured here. */
    bool stalled = false;
    std::string stallReport;

    size_t maxQueueDepth = 0;
    /** Time-weighted mean queue depth over the horizon. */
    double meanQueueDepth = 0.0;

    /** completion - arrival. */
    LatencyHistogram latency;
    /** dispatch - arrival. */
    LatencyHistogram queueWait;
    /** completion - dispatch. */
    LatencyHistogram service;

    std::vector<TenantStats> tenants;
    std::vector<GroupStats> groups;
    std::vector<ClusterStats> clusters;

    double
    throughputRps() const
    {
        double s = ticksToSeconds(horizon);
        return s > 0 ? static_cast<double>(completed) / s : 0.0;
    }

    /** FNV-1a over every counter and histogram bucket: two runs with
     *  the same seed must produce the same hash (determinism tests). */
    uint64_t hash() const;

    /** One JSON object with throughput, p50/p95/p99, shed reasons,
     *  per-tenant and per-group roll-ups. */
    std::string toJson(const std::string& machine,
                       const std::string& spec_line) const;

    /** Human-readable console report. */
    std::string describe() const;
};

} // namespace hydra

#endif // HYDRA_SERVE_STATS_HH
