/**
 * @file
 * Deterministic request-stream generation for the serving layer.
 *
 * Open-loop tenants draw exponential inter-arrival gaps from hashed
 * splitmix64 streams (platform-independent, order-independent per
 * tenant), trace tenants replay the spec's explicit `at=` entries, and
 * closed-loop client pools issue their first request at t=0 and then
 * one request per completion after the tenant's think time.  The same
 * seed always yields the same request ids at the same ticks.
 */

#ifndef HYDRA_SERVE_WORKLOAD_GEN_HH
#define HYDRA_SERVE_WORKLOAD_GEN_HH

#include <optional>

#include "serve/spec.hh"

namespace hydra {

/** One inference request travelling through the serving pipeline. */
struct Request
{
    uint64_t id = 0;
    /** Index into ServeSpec::tenants. */
    size_t tenant = 0;
    /** Index into the sim's workload table. */
    size_t workload = 0;
    /** Priority tier copied from the tenant (0 = highest). */
    int priority = 1;
    Tick arrival = 0;
    /** Set when the request leaves the queue for a card group. */
    Tick dispatched = 0;

    // Cake-scheduler state (untouched on the fifo path).
    /** First time the request left the queue (queue-wait metric under
     *  preemption, where `dispatched` is overwritten per slice). */
    Tick firstDispatch = 0;
    /** Virtual service time consumed by completed slices of this
     *  request (preempted runs accumulate; final slice adds its own
     *  span at completion). */
    Tick executed = 0;
    /** Starvation kick: set when the request sat queued past the hard
     *  cap — it now ranks ahead of every tier and deficit. */
    bool kicked = false;

    // Federated failover state (all defaults for fresh arrivals).
    /** Checkpointed resume point: first workload step still to run.
     *  Non-zero after a cluster kill aborted the job mid-run and its
     *  completed step boundaries were conserved. */
    size_t firstStep = 0;
    /** Times this request was re-queued off a dying cluster. */
    uint32_t failovers = 0;
    /** True once the request was re-queued onto the federation after
     *  losing its cluster; dispatch charges a fairness deficit so
     *  spillover traffic cannot starve native tenants. */
    bool spilled = false;
};

/** Generates the deterministic request stream of one ServeSpec. */
class WorkloadGen
{
  public:
    /**
     * @param spec the serving experiment (tenants, seed, horizon)
     * @param workload_table distinct workload names; tenant workloads
     *        are resolved to indices into it (fatal if absent)
     */
    WorkloadGen(const ServeSpec& spec,
                const std::vector<std::string>& workload_table);

    /**
     * Every open-loop and trace arrival in [0, duration), plus each
     * closed-loop client's first request at t=0; sorted by (tick, id)
     * with ids assigned in that order.
     */
    std::vector<Request> initialArrivals();

    /**
     * Next request of a closed-loop tenant after one of its in-flight
     * requests completed at `completion`.  Returns nullopt when the
     * next arrival would fall past the horizon (the client pool winds
     * down), for non-closed tenants, or past the request cap.
     */
    std::optional<Request> closedArrival(size_t tenant_idx,
                                         Tick completion);

    /** Requests handed out so far (open + trace + closed). */
    uint64_t generated() const { return nextId_ - 1; }

  private:
    const ServeSpec& spec_;
    std::vector<size_t> tenantWorkload_; // tenant idx -> table idx
    uint64_t nextId_ = 1;
};

} // namespace hydra

#endif // HYDRA_SERVE_WORKLOAD_GEN_HH
