#include "serve/stats.hh"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/logging.hh"

namespace hydra {

namespace {

/** Bucket upper edges in ticks, computed once: 100us * 2^(i/4). */
const std::array<Tick, LatencyHistogram::kBuckets>&
bucketEdges()
{
    static const auto edges = [] {
        std::array<Tick, LatencyHistogram::kBuckets> e{};
        const double base = 100e-6;
        const double ratio = std::pow(2.0, 0.25);
        double upper = base;
        for (size_t i = 0; i < e.size(); ++i) {
            e[i] = secondsToTicks(upper);
            upper *= ratio;
        }
        return e;
    }();
    return edges;
}

} // namespace

Tick
LatencyHistogram::bucketUpper(size_t i)
{
    return bucketEdges()[std::min(i, kBuckets - 1)];
}

void
LatencyHistogram::add(Tick t)
{
    const auto& edges = bucketEdges();
    // First bucket whose upper edge exceeds t; overflow clamps into
    // the last bucket.
    auto it = std::upper_bound(edges.begin(), edges.end(), t);
    size_t idx = it == edges.end()
                     ? kBuckets - 1
                     : static_cast<size_t>(it - edges.begin());
    ++counts_[idx];
    ++total_;
}

Tick
LatencyHistogram::percentile(double p) const
{
    if (total_ == 0)
        return 0;
    p = std::clamp(p, 0.0, 1.0);
    // Rank of the quantile sample, 1-based (nearest-rank definition).
    uint64_t rank = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(total_)));
    rank = std::max<uint64_t>(rank, 1);
    uint64_t cum = 0;
    for (size_t i = 0; i < kBuckets; ++i) {
        cum += counts_[i];
        if (cum >= rank)
            return bucketEdges()[i];
    }
    return bucketEdges()[kBuckets - 1];
}

namespace {

/** Incremental FNV-1a (64-bit). */
struct Fnv
{
    uint64_t h = 0xcbf29ce484222325ULL;

    void
    bytes(const void* p, size_t n)
    {
        const auto* b = static_cast<const unsigned char*>(p);
        for (size_t i = 0; i < n; ++i) {
            h ^= b[i];
            h *= 0x100000001b3ULL;
        }
    }

    void u64(uint64_t v) { bytes(&v, sizeof(v)); }

    void
    f64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string& s)
    {
        u64(s.size());
        bytes(s.data(), s.size());
    }

    void
    hist(const LatencyHistogram& hg)
    {
        u64(hg.count());
        for (uint64_t c : hg.buckets())
            u64(c);
    }
};

} // namespace

uint64_t
ServeStats::hash() const
{
    Fnv f;
    f.u64(horizon);
    f.u64(offered);
    f.u64(admitted);
    f.u64(completed);
    f.u64(shed);
    f.u64(shedQueueFull);
    f.u64(shedNoCapacity);
    f.u64(shedAfterAdmit);
    f.u64(failedCards.size());
    for (size_t c : failedCards)
        f.u64(c);
    f.u64(repartitions);
    f.u64(redispatches);
    f.u64(recoveryPenalty);
    f.u64(clusterKills);
    f.u64(clusterPartitions);
    f.u64(failovers);
    f.u64(spilled);
    f.u64(recoveredSteps);
    f.u64(replayedSteps);
    f.u64(healthTransitions);
    f.u64(canaryProbes);
    f.u64(stalled ? 1 : 0);
    f.str(stallReport);
    f.u64(maxQueueDepth);
    f.f64(meanQueueDepth);
    f.hist(latency);
    f.hist(queueWait);
    f.hist(service);
    // Cake counters join the hash only for non-fifo runs: fifo hashes
    // must stay bit-identical to their pre-scheduler values.
    const bool cake = sched != "fifo";
    if (cake) {
        f.str(sched);
        f.u64(preemptions);
        f.u64(preemptResumes);
        f.u64(steals);
        f.u64(stealsCross);
        f.u64(demotions);
        f.u64(promotions);
        f.u64(kicks);
        f.u64(chargedTicks);
        f.u64(refundedTicks);
        f.u64(executedTicks);
        f.u64(maxWaitTicks);
        f.u64(jobCacheHits);
        f.u64(jobCacheMisses);
    }
    for (const auto& t : tenants) {
        f.str(t.name);
        f.u64(t.offered);
        f.u64(t.admitted);
        f.u64(t.completed);
        f.u64(t.shed);
        if (cake) {
            f.u64(t.deficitTicks);
            f.u64(t.demotions);
            f.u64(t.kicks);
            f.u64(t.steals);
            f.u64(t.preemptions);
        }
    }
    for (const auto& g : groups) {
        f.u64(g.id);
        f.u64(g.cluster);
        f.str(g.workload);
        f.u64(g.cards);
        f.u64(g.completed);
        f.u64(g.busyTicks);
        f.u64(g.retired ? 1 : 0);
    }
    for (const auto& c : clusters) {
        f.u64(c.id);
        f.str(c.health);
        f.u64(c.completed);
        f.u64(c.failovers);
        f.u64(c.canaryProbes);
        f.u64(c.deadCards);
        f.u64(c.killed ? 1 : 0);
    }
    return f.h;
}

namespace {

double
ms(Tick t)
{
    return ticksToSeconds(t) * 1e3;
}

} // namespace

std::string
ServeStats::toJson(const std::string& machine,
                   const std::string& spec_line) const
{
    std::string s = "{";
    s += strf("\"machine\": \"%s\", ", machine.c_str());
    s += strf("\"spec\": \"%s\", ", spec_line.c_str());
    s += strf("\"horizon_s\": %.6f, ", ticksToSeconds(horizon));
    s += strf("\"offered\": %llu, \"admitted\": %llu, "
              "\"completed\": %llu, ",
              static_cast<unsigned long long>(offered),
              static_cast<unsigned long long>(admitted),
              static_cast<unsigned long long>(completed));
    s += strf("\"shed\": {\"total\": %llu, \"queue_full\": %llu, "
              "\"no_capacity\": %llu}, ",
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(shedQueueFull),
              static_cast<unsigned long long>(shedNoCapacity));
    s += strf("\"throughput_rps\": %.6f, ", throughputRps());
    s += strf("\"latency_ms\": {\"p50\": %.3f, \"p95\": %.3f, "
              "\"p99\": %.3f}, ",
              ms(latency.percentile(0.50)),
              ms(latency.percentile(0.95)),
              ms(latency.percentile(0.99)));
    s += strf("\"queue_wait_ms\": {\"p50\": %.3f, \"p99\": %.3f}, ",
              ms(queueWait.percentile(0.50)),
              ms(queueWait.percentile(0.99)));
    s += strf("\"queue\": {\"max_depth\": %zu, \"mean_depth\": %.3f}, ",
              maxQueueDepth, meanQueueDepth);
    s += strf("\"sched\": \"%s\", ", sched.c_str());
    if (sched != "fifo")
        s += strf("\"cake\": {\"preemptions\": %llu, "
                  "\"preempt_resumes\": %llu, \"steals\": %llu, "
                  "\"steals_cross\": %llu, \"demotions\": %llu, "
                  "\"promotions\": %llu, \"kicks\": %llu, "
                  "\"charged_ticks\": %llu, \"refunded_ticks\": %llu, "
                  "\"executed_ticks\": %llu, \"max_wait_s\": %.6f, "
                  "\"job_cache_hits\": %llu, "
                  "\"job_cache_misses\": %llu}, ",
                  static_cast<unsigned long long>(preemptions),
                  static_cast<unsigned long long>(preemptResumes),
                  static_cast<unsigned long long>(steals),
                  static_cast<unsigned long long>(stealsCross),
                  static_cast<unsigned long long>(demotions),
                  static_cast<unsigned long long>(promotions),
                  static_cast<unsigned long long>(kicks),
                  static_cast<unsigned long long>(chargedTicks),
                  static_cast<unsigned long long>(refundedTicks),
                  static_cast<unsigned long long>(executedTicks),
                  ticksToSeconds(maxWaitTicks),
                  static_cast<unsigned long long>(jobCacheHits),
                  static_cast<unsigned long long>(jobCacheMisses));
    // Cache observability under the unified ExecPlan path.  The job
    // cache repeats the cake-block values so fifo runs (no cake block)
    // still export them; none of this enters the hash.
    s += strf("\"caches\": {\"program\": {\"hits\": %llu, "
              "\"misses\": %llu, \"evictions\": %llu, "
              "\"entries\": %llu}, "
              "\"job\": {\"hits\": %llu, \"misses\": %llu}}, ",
              static_cast<unsigned long long>(progCacheHits),
              static_cast<unsigned long long>(progCacheMisses),
              static_cast<unsigned long long>(progCacheEvictions),
              static_cast<unsigned long long>(progCacheEntries),
              static_cast<unsigned long long>(jobCacheHits),
              static_cast<unsigned long long>(jobCacheMisses));
    s += "\"faults\": {\"failed_cards\": [";
    for (size_t i = 0; i < failedCards.size(); ++i)
        s += strf("%s%zu", i ? ", " : "", failedCards[i]);
    s += strf("], \"repartitions\": %llu, \"redispatches\": %llu, "
              "\"recovery_penalty_s\": %.6f}, ",
              static_cast<unsigned long long>(repartitions),
              static_cast<unsigned long long>(redispatches),
              ticksToSeconds(recoveryPenalty));
    s += strf("\"federation\": {\"cluster_kills\": %llu, "
              "\"cluster_partitions\": %llu, \"failovers\": %llu, "
              "\"spilled\": %llu, \"recovered_steps\": %llu, "
              "\"replayed_steps\": %llu, \"health_transitions\": %llu, "
              "\"canary_probes\": %llu, \"shed_after_admit\": %llu, "
              "\"stalled\": %s, ",
              static_cast<unsigned long long>(clusterKills),
              static_cast<unsigned long long>(clusterPartitions),
              static_cast<unsigned long long>(failovers),
              static_cast<unsigned long long>(spilled),
              static_cast<unsigned long long>(recoveredSteps),
              static_cast<unsigned long long>(replayedSteps),
              static_cast<unsigned long long>(healthTransitions),
              static_cast<unsigned long long>(canaryProbes),
              static_cast<unsigned long long>(shedAfterAdmit),
              stalled ? "true" : "false");
    s += "\"clusters\": [";
    for (size_t i = 0; i < clusters.size(); ++i) {
        const auto& c = clusters[i];
        s += strf("%s{\"id\": %zu, \"health\": \"%s\", "
                  "\"completed\": %llu, \"failovers\": %llu, "
                  "\"canary_probes\": %llu, \"dead_cards\": %zu, "
                  "\"killed\": %s}",
                  i ? ", " : "", c.id, c.health.c_str(),
                  static_cast<unsigned long long>(c.completed),
                  static_cast<unsigned long long>(c.failovers),
                  static_cast<unsigned long long>(c.canaryProbes),
                  c.deadCards, c.killed ? "true" : "false");
    }
    s += "]}, ";
    s += "\"tenants\": [";
    // Bulk runs (10k+ tenants) would dominate the export; list the
    // first kMaxJsonTenants and record how many were elided.
    constexpr size_t kMaxJsonTenants = 64;
    size_t listed = std::min(tenants.size(), kMaxJsonTenants);
    for (size_t i = 0; i < listed; ++i) {
        const auto& t = tenants[i];
        s += strf("%s{\"name\": \"%s\", \"offered\": %llu, "
                  "\"admitted\": %llu, \"completed\": %llu, "
                  "\"shed\": %llu",
                  i ? ", " : "", t.name.c_str(),
                  static_cast<unsigned long long>(t.offered),
                  static_cast<unsigned long long>(t.admitted),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.shed));
        if (sched != "fifo")
            s += strf(", \"deficit_s\": %.6f, \"demotions\": %llu, "
                      "\"kicks\": %llu, \"steals\": %llu, "
                      "\"preemptions\": %llu",
                      ticksToSeconds(t.deficitTicks),
                      static_cast<unsigned long long>(t.demotions),
                      static_cast<unsigned long long>(t.kicks),
                      static_cast<unsigned long long>(t.steals),
                      static_cast<unsigned long long>(t.preemptions));
        s += "}";
    }
    s += "]";
    if (listed < tenants.size())
        s += strf(", \"tenants_elided\": %zu",
                  tenants.size() - listed);
    s += ", \"groups\": [";
    for (size_t i = 0; i < groups.size(); ++i) {
        const auto& g = groups[i];
        s += strf("%s{\"id\": %zu, \"cluster\": %zu, "
                  "\"workload\": \"%s\", "
                  "\"cards\": %zu, \"completed\": %llu, "
                  "\"utilization\": %.4f, \"retired\": %s}",
                  i ? ", " : "", g.id, g.cluster, g.workload.c_str(),
                  g.cards,
                  static_cast<unsigned long long>(g.completed),
                  g.utilization(horizon),
                  g.retired ? "true" : "false");
    }
    s += strf("], \"hash\": \"%016llx\"}",
              static_cast<unsigned long long>(hash()));
    return s;
}

std::string
ServeStats::describe() const
{
    std::string s;
    s += strf("horizon %.3f s, offered %llu, admitted %llu, completed "
              "%llu, shed %llu (%llu queue-full, %llu no-capacity)\n",
              ticksToSeconds(horizon),
              static_cast<unsigned long long>(offered),
              static_cast<unsigned long long>(admitted),
              static_cast<unsigned long long>(completed),
              static_cast<unsigned long long>(shed),
              static_cast<unsigned long long>(shedQueueFull),
              static_cast<unsigned long long>(shedNoCapacity));
    s += strf("throughput %.3f req/s; latency p50 %.1f ms, p95 %.1f "
              "ms, p99 %.1f ms; queue depth max %zu, mean %.2f\n",
              throughputRps(), ms(latency.percentile(0.50)),
              ms(latency.percentile(0.95)),
              ms(latency.percentile(0.99)), maxQueueDepth,
              meanQueueDepth);
    if (!failedCards.empty()) {
        s += "faults: lost card(s)";
        for (size_t c : failedCards)
            s += strf(" %zu", c);
        s += strf(", %llu repartition(s), %llu redispatch(es), "
                  "recovery penalty %.3f s\n",
                  static_cast<unsigned long long>(repartitions),
                  static_cast<unsigned long long>(redispatches),
                  ticksToSeconds(recoveryPenalty));
    }
    if (clusterKills || clusterPartitions || failovers || spilled ||
        canaryProbes) {
        s += strf("federation: %llu cluster kill(s), %llu partition(s), "
                  "%llu failover(s), %llu spilled, %llu recovered / "
                  "%llu replayed step(s), %llu probe(s), %llu health "
                  "transition(s)\n",
                  static_cast<unsigned long long>(clusterKills),
                  static_cast<unsigned long long>(clusterPartitions),
                  static_cast<unsigned long long>(failovers),
                  static_cast<unsigned long long>(spilled),
                  static_cast<unsigned long long>(recoveredSteps),
                  static_cast<unsigned long long>(replayedSteps),
                  static_cast<unsigned long long>(canaryProbes),
                  static_cast<unsigned long long>(healthTransitions));
    }
    if (sched != "fifo") {
        s += strf("%s: %llu preemption(s) (%llu resumed), %llu "
                  "steal(s) (%llu cross-cluster), %llu demotion(s) / "
                  "%llu promotion(s), %llu kick(s), max wait %.3f s\n",
                  sched.c_str(),
                  static_cast<unsigned long long>(preemptions),
                  static_cast<unsigned long long>(preemptResumes),
                  static_cast<unsigned long long>(steals),
                  static_cast<unsigned long long>(stealsCross),
                  static_cast<unsigned long long>(demotions),
                  static_cast<unsigned long long>(promotions),
                  static_cast<unsigned long long>(kicks),
                  ticksToSeconds(maxWaitTicks));
        s += strf("  ledger: charged %llu = refunded %llu + executed "
                  "%llu tick(s) (mod 2^64); job cache %llu hit(s) / "
                  "%llu miss(es)\n",
                  static_cast<unsigned long long>(chargedTicks),
                  static_cast<unsigned long long>(refundedTicks),
                  static_cast<unsigned long long>(executedTicks),
                  static_cast<unsigned long long>(jobCacheHits),
                  static_cast<unsigned long long>(jobCacheMisses));
    }
    if (progCacheHits || progCacheMisses)
        s += strf("program cache: %llu hit(s) / %llu miss(es), %llu "
                  "eviction(s), %llu entrie(s)\n",
                  static_cast<unsigned long long>(progCacheHits),
                  static_cast<unsigned long long>(progCacheMisses),
                  static_cast<unsigned long long>(progCacheEvictions),
                  static_cast<unsigned long long>(progCacheEntries));
    if (stalled)
        s += stallReport;
    for (const auto& c : clusters)
        s += strf("  cluster %zu: %s%s, completed %llu, "
                  "%zu dead card(s)\n",
                  c.id, c.health.c_str(), c.killed ? " (killed)" : "",
                  static_cast<unsigned long long>(c.completed),
                  c.deadCards);
    // Bulk runs: cap the console listing (the JSON export and hash
    // still cover every tenant).
    constexpr size_t kMaxDescribeTenants = 20;
    size_t shown = std::min(tenants.size(), kMaxDescribeTenants);
    for (size_t i = 0; i < shown; ++i) {
        const auto& t = tenants[i];
        s += strf("  tenant %-10s offered %6llu  completed %6llu  "
                  "shed %5llu",
                  t.name.c_str(),
                  static_cast<unsigned long long>(t.offered),
                  static_cast<unsigned long long>(t.completed),
                  static_cast<unsigned long long>(t.shed));
        // Cake counters print only when the tenant actually tripped
        // the machinery — quiet tenants keep the fifo-era line shape.
        if (t.deficitTicks || t.demotions || t.kicks || t.steals ||
            t.preemptions) {
            s += strf("  [deficit %.3fs", ticksToSeconds(t.deficitTicks));
            if (t.demotions)
                s += strf(" demoted x%llu",
                          static_cast<unsigned long long>(t.demotions));
            if (t.kicks)
                s += strf(" kicked x%llu",
                          static_cast<unsigned long long>(t.kicks));
            if (t.steals)
                s += strf(" stolen x%llu",
                          static_cast<unsigned long long>(t.steals));
            if (t.preemptions)
                s += strf(" sliced x%llu",
                          static_cast<unsigned long long>(
                              t.preemptions));
            s += "]";
        }
        s += "\n";
    }
    if (shown < tenants.size())
        s += strf("  ... %zu more tenant(s)\n", tenants.size() - shown);
    for (const auto& g : groups)
        s += strf("  group %zu [%s] %zu card(s)%s  completed %6llu  "
                  "util %5.1f%%\n",
                  g.id, g.workload.c_str(), g.cards,
                  g.retired ? " retired" : "",
                  static_cast<unsigned long long>(g.completed),
                  g.utilization(horizon) * 100);
    return s;
}

} // namespace hydra
