/**
 * @file
 * CAKE-style SLO scheduling primitives for the serving layer
 * (DESIGN.md §14): a per-tenant deficit ledger built on start-time
 * fair queueing, and sharded per-group run queues with rank-ordered
 * dequeue and work stealing.
 *
 * Deficit accounting: every tenant carries a virtual finish tag F[t];
 * dispatching one of its requests charges F[t] = max(V, F[t]) +
 * span * weight and advances the global virtual clock V to the
 * dispatch's start tag max(V, F[t]).  A tenant consuming more than
 * its fair share runs ahead of V (a positive deficit F[t] - V) and
 * loses dequeue races to sparse flows, whose tags are clipped up to V
 * so idle time never banks unbounded credit.  Tags are 128-bit so
 * multi-million-request runs cannot wrap the virtual clock.
 *
 * AQM tier demotion: a tenant whose deficit exceeds the demotion
 * threshold is demoted one priority tier (hog isolation); it promotes
 * back once the deficit drains below a quarter of the threshold
 * (hysteresis, so borderline tenants don't flap).
 *
 * Ranking: queued requests order by (starved-kick flag, effective
 * tier, start tag, arrival, id) — strict, total, and deterministic.
 *
 * Sharding: each (cluster, group) owns a run-queue shard.  Admission
 * routes a request to the shallowest shard among the groups that
 * natively serve its workload class; an idle group whose shard is
 * empty steals the best-ranked request from the deepest shard
 * anywhere in the federation (capacity follows demand, including
 * across workload classes and clusters).
 */

#ifndef HYDRA_SERVE_CAKE_HH
#define HYDRA_SERVE_CAKE_HH

#include <functional>
#include <optional>
#include <vector>

#include "serve/spec.hh"
#include "serve/workload_gen.hh"

namespace hydra {

/** 128-bit virtual time: immune to wraparound at 1M-request scale. */
using VirtualTag = unsigned __int128;

/** Per-tenant deficit accounting (start-time fair queueing + AQM). */
class DeficitLedger
{
  public:
    explicit DeficitLedger(const ServeSpec& spec);

    /** Global virtual clock (start tag of the latest dispatch). */
    VirtualTag now() const { return v_; }

    /** Start tag a request of tenant `t` would dispatch with. */
    VirtualTag
    startTag(size_t t) const
    {
        return finish_[t] > v_ ? finish_[t] : v_;
    }

    /** Runtime deficit: how far ahead of its fair share tenant `t`
     *  has run (0 for sparse flows). */
    Tick
    deficit(size_t t) const
    {
        VirtualTag d = finish_[t] > v_ ? finish_[t] - v_ : 0;
        return d > static_cast<VirtualTag>(~Tick{0})
                   ? ~Tick{0}
                   : static_cast<Tick>(d);
    }

    /** Spec tier plus the AQM demotion (hogs yield one tier). */
    int
    effectiveTier(size_t t) const
    {
        return baseTier_[t] + (demoted_[t] ? 1 : 0);
    }

    bool demoted(size_t t) const { return demoted_[t]; }

    /**
     * Charge tenant `t` for a dispatched job: `span` virtual service
     * ticks at `weight` (2 for deficit-charged spillover traffic).
     * Advances the global virtual clock to the dispatch's start tag.
     */
    void charge(size_t t, Tick span, uint64_t weight);

    /**
     * Refund the unrun tail of a sliced (preempted) or aborted job:
     * the remainder re-charges at its next dispatch, so without the
     * refund a preempted tenant would pay twice for the same steps.
     */
    void refund(size_t t, Tick unrun, uint64_t weight);

    /** Total weighted ticks charged at dispatch (mod 2^64). */
    uint64_t chargedTicks() const { return charged_; }
    /** Total weighted ticks refunded by preemption/abort (mod 2^64). */
    uint64_t refundedTicks() const { return refunded_; }
    uint64_t demotions() const { return demotions_; }
    uint64_t promotions() const { return promotions_; }
    uint64_t demotionsOf(size_t t) const { return tenantDemotions_[t]; }

  private:
    void updateTier(size_t t);

    VirtualTag v_ = 0;
    std::vector<VirtualTag> finish_;
    std::vector<int> baseTier_;
    std::vector<uint8_t> demoted_;
    std::vector<uint64_t> tenantDemotions_;
    Tick demoteThreshold_ = 0;
    uint64_t charged_ = 0;
    uint64_t refunded_ = 0;
    uint64_t demotions_ = 0;
    uint64_t promotions_ = 0;
};

/** Strict total dispatch order of queued requests. */
struct RankKey
{
    bool kicked = false;
    int tier = 0;
    VirtualTag tag = 0;
    Tick arrival = 0;
    uint64_t id = 0;

    bool
    operator<(const RankKey& o) const
    {
        if (kicked != o.kicked)
            return kicked; // starvation kicks outrank everything
        if (tier != o.tier)
            return tier < o.tier;
        if (tag != o.tag)
            return tag < o.tag;
        if (arrival != o.arrival)
            return arrival < o.arrival;
        return id < o.id;
    }
};

/** Rank a queued request under the current ledger state. */
RankKey rankOf(const Request& r, const DeficitLedger& led);

/** Per-group run-queue shards with rank-ordered pop and stealing. */
class CakeQueue
{
  public:
    CakeQueue(size_t shards, size_t capacity);

    size_t depth() const { return depth_; }
    bool full() const { return depth_ >= capacity_; }
    size_t shardDepth(size_t s) const { return shards_[s].size(); }

    /** Enqueue on shard `s` (callers gate new admissions on full();
     *  requeued work re-enters unconditionally, as in the fifo path). */
    void push(size_t s, const Request& r);

    /** Pop the best-ranked request of shard `s`. */
    std::optional<Request> popBest(size_t s, const DeficitLedger& led);

    /**
     * Work stealing: pop the best-ranked request of the deepest
     * non-empty shard other than `exclude` (tie: lowest shard id),
     * reporting the victim shard through `victim_out`.  Returns
     * nullopt when every candidate shard is empty.
     */
    std::optional<Request> steal(size_t exclude,
                                 const DeficitLedger& led,
                                 size_t* victim_out);

    /**
     * Starvation kick: set the kicked flag on every queued request
     * older than `kick` ticks, invoking `on_kick` once per newly
     * kicked request.  Returns the earliest arrival still queued
     * (~Tick{0} when empty) so callers can skip future sweeps until
     * that request could be starved.
     */
    Tick kickStarved(Tick now, Tick kick,
                     const std::function<void(const Request&)>& on_kick);

    /** Queued request by id on shard `s` (budget/kick events). */
    Request* find(size_t s, uint64_t id);

    /** Remove and return everything queued (stall flush). */
    std::vector<Request> drainAll();

    /** Remove and return shard `s`'s queue (group loss re-route). */
    std::vector<Request> drainShard(size_t s);

    /** Earliest-arrival queued request (stall diagnostics). */
    const Request* oldest() const;

    /** Queued requests of one workload class (stall diagnostics). */
    size_t depthFor(size_t workload) const;

  private:
    std::vector<std::vector<Request>> shards_;
    size_t capacity_;
    size_t depth_ = 0;
};

} // namespace hydra

#endif // HYDRA_SERVE_CAKE_HH
