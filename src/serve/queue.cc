#include "serve/queue.hh"

namespace hydra {

const char*
rejectReasonName(RejectReason r)
{
    switch (r) {
    case RejectReason::QueueFull:
        return "queue-full";
    case RejectReason::NoCapacity:
        return "no-capacity";
    }
    return "?";
}

bool
AdmissionQueue::offer(const Request& r)
{
    if (full())
        return false;
    q_.push_back(r);
    return true;
}

std::optional<Request>
AdmissionQueue::popFor(size_t workload,
                       const std::vector<uint64_t>& served_per_tenant)
{
    size_t best = q_.size();
    for (size_t i = 0; i < q_.size(); ++i) {
        if (q_[i].workload != workload)
            continue;
        if (best == q_.size()) {
            best = i;
            continue;
        }
        const Request& a = q_[i];
        const Request& b = q_[best];
        if (a.priority != b.priority) {
            if (a.priority < b.priority)
                best = i;
            continue;
        }
        uint64_t sa = a.tenant < served_per_tenant.size()
                          ? served_per_tenant[a.tenant]
                          : 0;
        uint64_t sb = b.tenant < served_per_tenant.size()
                          ? served_per_tenant[b.tenant]
                          : 0;
        if (sa < sb)
            best = i; // fairness: least-served tenant wins the slot
        // equal -> keep `best` (earlier admission, FIFO)
    }
    if (best == q_.size())
        return std::nullopt;
    Request r = q_[best];
    q_.erase(q_.begin() + static_cast<std::ptrdiff_t>(best));
    return r;
}

size_t
AdmissionQueue::depthFor(size_t workload) const
{
    size_t n = 0;
    for (const auto& r : q_)
        n += r.workload == workload;
    return n;
}

std::vector<Request>
AdmissionQueue::drainAll()
{
    std::vector<Request> out = std::move(q_);
    q_.clear();
    return out;
}

std::vector<Request>
AdmissionQueue::drainWorkload(size_t workload)
{
    std::vector<Request> out;
    size_t w = 0;
    for (size_t i = 0; i < q_.size(); ++i) {
        if (q_[i].workload == workload)
            out.push_back(q_[i]);
        else
            q_[w++] = q_[i];
    }
    q_.resize(w);
    return out;
}

} // namespace hydra
