/**
 * @file
 * Federated fault domains: several clusters behind one health-gated
 * routing tier, extending the paper's Procedure-2 host scheduler one
 * level up (the ROADMAP's "millions of users" shape).
 *
 * A Federation owns N identical clusters (the machine replicated
 * `ServeSpec::clusters` times) on one shared virtual clock.  Every
 * cluster gets its own fleet partition (same group plan) and cards are
 * numbered federation-globally: cluster c owns [c*P, (c+1)*P).
 *
 * Routing tier: admitted requests wait in one federation-wide
 * admission queue; idle groups of *routable* clusters (healthy first,
 * then degraded — see serve/health.hh) pull from it.  Quarantined and
 * dead clusters receive nothing, so capacity loss shows up as
 * spillover onto the survivors, and failover traffic is
 * deficit-charged at dispatch (an extra least-served-fairness count
 * against its tenant) so it cannot starve native tenants.
 *
 * Cluster-granularity faults (FaultPlan):
 *  - cluster_kill (`ckill=C@S`): the cluster dies at tick S.  Its
 *    cards are gone, its in-flight jobs abort, and each aborted job is
 *    re-queued to resume *from its last completed step boundary* on a
 *    survivor via InferenceRunner::runJob(first_step, ...) — the
 *    checkpointed-recovery path.  The accounting split proves work
 *    conservation: `recoveredSteps` counts boundaries conserved,
 *    `replayedSteps` the at-most-one partially-executed step per
 *    in-flight job that must re-run.
 *  - cluster_partition (`cpart=C@S:W`): the cluster is unreachable for
 *    new work during [S, S+W).  Work already on it keeps running; at
 *    the healing window's end the breaker half-opens and a canary job
 *    probes the cluster back into service.
 *
 * Terminal job failures (exhausted retries, deadlock) also fail over:
 * the request re-queues with its completed steps conserved, bounded by
 * a per-request failover budget, then sheds with a structured reason.
 *
 * No-progress watchdog: when the event queue drains while admitted
 * requests are still queued (every possible route quarantined or dead
 * with probing disabled), the run does not wedge silently — it emits
 * a structured StallReport (queue depths, per-cluster health, oldest
 * pending request) and sheds the stuck work, keeping the accounting
 * identity admitted == completed + shedAfterAdmit exact.
 *
 * Scheduling policy (`sched=fifo|cake`, serve/cake.hh, DESIGN.md
 * §14): fifo keeps the legacy admission order above with bit-stable
 * stats hashes; cake swaps in per-tenant deficit accounting,
 * step-boundary preemption (fault-free clusters only, unrun tail
 * deficit-refunded), wait-budget AQM tier demotion plus a starvation
 * kick, and per-(cluster, group) run-queue shards with work stealing
 * across groups and clusters.
 */

#ifndef HYDRA_SERVE_FEDERATION_HH
#define HYDRA_SERVE_FEDERATION_HH

#include "serve/health.hh"
#include "serve/partition.hh"
#include "serve/queue.hh"
#include "serve/stats.hh"
#include "sync/fault.hh"

namespace hydra {

/** Runs one serving experiment over a federation of clusters. */
class Federation
{
  public:
    /**
     * @param spec machine description of ONE cluster (copied); the
     *        federation replicates it `serve.clusters` times
     * @param serve serving experiment (tenants, partition, queue,
     *        cluster count)
     * @param faults federation-global fault plan; card indices are
     *        federation-global, cluster faults name cluster indices,
     *        and all ticks are absolute serve-clock times
     * @param retry DTU retry policy forwarded to every job
     * @param health circuit-breaker thresholds of the routing tier
     */
    Federation(PrototypeSpec spec, ServeSpec serve, FaultPlan faults = {},
               RetryPolicy retry = {}, HealthPolicy health = {});

    /**
     * Run to completion: arrivals stop at the spec horizon, admitted
     * work drains (or is shed with a StallReport when it cannot).
     * Deterministic: same spec + seed + faults give a bit-identical
     * ServeStats (same hash()), independent of HYDRA_THREADS.
     */
    ServeStats run();

    const PrototypeSpec& spec() const { return spec_; }
    const ServeSpec& serveSpec() const { return serve_; }
    size_t clusterCount() const { return serve_.clusters; }

  private:
    PrototypeSpec spec_;
    ServeSpec serve_;
    FaultPlan faults_;
    RetryPolicy retry_;
    HealthPolicy health_;
};

} // namespace hydra

#endif // HYDRA_SERVE_FEDERATION_HH
