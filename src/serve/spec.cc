#include "serve/spec.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace hydra {

const char*
arrivalModeName(ArrivalMode m)
{
    switch (m) {
    case ArrivalMode::Open:
        return "open";
    case ArrivalMode::Closed:
        return "closed";
    case ArrivalMode::Trace:
        return "trace";
    }
    return "?";
}

namespace {

/** Split `s` on `sep` (no empty-field collapsing). */
std::vector<std::string>
splitOn(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string field;
    while (std::getline(ss, field, sep))
        out.push_back(field);
    return out;
}

TenantSpec*
findTenant(std::vector<TenantSpec>& tenants, const std::string& name)
{
    for (auto& t : tenants)
        if (t.name == name)
            return &t;
    return nullptr;
}

} // namespace

ServeSpec
ServeSpec::parse(const std::string& spec)
{
    ServeSpec out;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string::npos)
            fatal("serve spec item '%s' is not key=value", item.c_str());
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (val.empty())
            fatal("serve spec item '%s' has an empty value", item.c_str());
        if (key == "seed") {
            out.seed = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "duration") {
            out.durationSeconds = std::strtod(val.c_str(), nullptr);
        } else if (key == "queue") {
            out.queueCapacity = std::strtoul(val.c_str(), nullptr, 10);
        } else if (key == "requests") {
            out.maxRequests = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "tenant") {
            auto f = splitOn(val, ':');
            if (f.size() < 4)
                fatal("tenant wants NAME:MODE:WL:ARG[...], got '%s'",
                      val.c_str());
            TenantSpec t;
            t.name = f[0];
            t.workload = f[2];
            if (f[1] == "open") {
                t.mode = ArrivalMode::Open;
                t.rate = std::strtod(f[3].c_str(), nullptr);
                if (t.rate <= 0)
                    fatal("tenant '%s': open-loop rate must be > 0",
                          t.name.c_str());
            } else if (f[1] == "closed") {
                t.mode = ArrivalMode::Closed;
                t.clients = std::strtoul(f[3].c_str(), nullptr, 10);
                if (t.clients == 0)
                    fatal("tenant '%s': closed loop wants >= 1 client",
                          t.name.c_str());
                if (f.size() > 4)
                    t.thinkSeconds = std::strtod(f[4].c_str(), nullptr);
            } else {
                fatal("tenant '%s': mode must be open|closed, got '%s'",
                      t.name.c_str(), f[1].c_str());
            }
            if (findTenant(out.tenants, t.name))
                fatal("duplicate tenant '%s'", t.name.c_str());
            out.tenants.push_back(std::move(t));
        } else if (key == "prio") {
            auto f = splitOn(val, ':');
            if (f.size() != 2)
                fatal("prio wants NAME:P, got '%s'", val.c_str());
            TenantSpec* t = findTenant(out.tenants, f[0]);
            if (!t)
                fatal("prio: unknown tenant '%s' (declare it first)",
                      f[0].c_str());
            t->priority = static_cast<int>(
                std::strtol(f[1].c_str(), nullptr, 10));
        } else if (key == "at") {
            auto f = splitOn(val, ':');
            if (f.size() != 3)
                fatal("at wants SEC:NAME:WL, got '%s'", val.c_str());
            TraceEntry e;
            e.atSeconds = std::strtod(f[0].c_str(), nullptr);
            e.tenant = f[1];
            e.workload = f[2];
            if (e.atSeconds < 0)
                fatal("at: negative arrival time '%s'", f[0].c_str());
            out.trace.push_back(std::move(e));
        } else if (key == "group") {
            auto f = splitOn(val, ':');
            if (f.size() < 2 || f.size() > 3)
                fatal("group wants WL:CARDS[:MIN], got '%s'", val.c_str());
            GroupPlan g;
            g.workload = f[0];
            g.cards = std::strtoul(f[1].c_str(), nullptr, 10);
            g.minCards = f.size() > 2
                             ? std::strtoul(f[2].c_str(), nullptr, 10)
                             : 1;
            if (g.cards == 0 || g.minCards == 0 || g.minCards > g.cards)
                fatal("group '%s': want 1 <= MIN <= CARDS", val.c_str());
            out.groups.push_back(std::move(g));
        } else {
            fatal("unknown serve spec key '%s' (want seed/duration/"
                  "queue/requests/tenant/prio/at/group)",
                  key.c_str());
        }
    }
    if (out.durationSeconds <= 0)
        fatal("serve duration must be > 0");
    if (out.queueCapacity == 0)
        fatal("serve queue capacity must be >= 1");

    // Trace entries for undeclared tenants implicitly declare a
    // trace-only tenant (replay convenience).
    for (const auto& e : out.trace) {
        if (!findTenant(out.tenants, e.tenant)) {
            TenantSpec t;
            t.name = e.tenant;
            t.mode = ArrivalMode::Trace;
            t.workload = e.workload;
            out.tenants.push_back(std::move(t));
        }
    }
    return out;
}

std::string
ServeSpec::describe() const
{
    std::string s = strf("seed=%llu duration=%.3gs queue=%zu",
                         static_cast<unsigned long long>(seed),
                         durationSeconds, queueCapacity);
    for (const auto& t : tenants) {
        s += strf(" %s[%s %s", t.name.c_str(), arrivalModeName(t.mode),
                  t.workload.c_str());
        if (t.mode == ArrivalMode::Open)
            s += strf(" %.3g req/s", t.rate);
        else if (t.mode == ArrivalMode::Closed)
            s += strf(" %zu client(s) think %.3gs", t.clients,
                      t.thinkSeconds);
        if (t.priority != 1)
            s += strf(" prio %d", t.priority);
        s += "]";
    }
    if (!trace.empty())
        s += strf(" +%zu trace arrival(s)", trace.size());
    for (const auto& g : groups)
        s += strf(" group[%s x%zu min %zu]", g.workload.c_str(), g.cards,
                  g.minCards);
    return s;
}

std::vector<std::string>
ServeSpec::workloadTable() const
{
    std::vector<std::string> table;
    auto intern = [&](const std::string& w) {
        if (std::find(table.begin(), table.end(), w) == table.end())
            table.push_back(w);
    };
    for (const auto& t : tenants)
        intern(t.workload);
    for (const auto& e : trace)
        intern(e.workload);
    for (const auto& g : groups)
        intern(g.workload);
    return table;
}

} // namespace hydra
