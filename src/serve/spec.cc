#include "serve/spec.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace hydra {

const char*
arrivalModeName(ArrivalMode m)
{
    switch (m) {
    case ArrivalMode::Open:
        return "open";
    case ArrivalMode::Closed:
        return "closed";
    case ArrivalMode::Trace:
        return "trace";
    }
    return "?";
}

const char*
schedPolicyName(SchedPolicy p)
{
    switch (p) {
    case SchedPolicy::Fifo:
        return "fifo";
    case SchedPolicy::Cake:
        return "cake";
    }
    return "?";
}

namespace {

/** Split `s` on `sep` (no empty-field collapsing). */
std::vector<std::string>
splitOn(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string field;
    while (std::getline(ss, field, sep))
        out.push_back(field);
    return out;
}

TenantSpec*
findTenant(std::vector<TenantSpec>& tenants, const std::string& name)
{
    for (auto& t : tenants)
        if (t.name == name)
            return &t;
    return nullptr;
}

} // namespace

bool
ServeSpec::tryParse(const std::string& spec, ServeSpec& out,
                    SpecError& err)
{
    ServeSpec parsed;
    // Per-tenant `opt=` assignments win over a spec-wide `opt=` default
    // regardless of item order; the default is applied at the end to
    // every tenant without an explicit level (including trace-implied
    // ones).  Index-parallel with parsed.tenants.
    std::vector<char> explicitOpt;
    bool optDefaultSet = false;
    OptLevel optDefault = OptLevel::Safe;
    std::string item;
    auto fail = [&](std::string msg, std::string token) {
        err.message = std::move(msg);
        // An empty sub-token (e.g. "tenant=:open:x:1") still names the
        // offending item, never an empty diagnosis.
        err.token = token.empty() ? item : std::move(token);
        return false;
    };
    std::stringstream ss(spec);
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string::npos)
            return fail("serve spec item is not key=value", item);
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (val.empty())
            return fail("serve spec item has an empty value", item);
        if (key == "seed") {
            if (!parseU64(val, parsed.seed))
                return fail("seed wants an unsigned integer", val);
        } else if (key == "clusters") {
            if (!parseSize(val, parsed.clusters) || parsed.clusters == 0)
                return fail("clusters wants an integer >= 1", val);
        } else if (key == "duration") {
            if (!parseF64(val, parsed.durationSeconds))
                return fail("duration wants seconds", val);
        } else if (key == "queue") {
            if (!parseSize(val, parsed.queueCapacity))
                return fail("queue wants an unsigned bound", val);
        } else if (key == "requests") {
            if (!parseU64(val, parsed.maxRequests))
                return fail("requests wants an unsigned cap", val);
        } else if (key == "sched") {
            auto f = splitOn(val, ':');
            if (f[0] == "fifo") {
                if (f.size() != 1)
                    return fail("sched=fifo takes no parameters", val);
                parsed.sched = SchedPolicy::Fifo;
            } else if (f[0] == "cake") {
                parsed.sched = SchedPolicy::Cake;
                if (f.size() > 1 &&
                    (!parseF64(f[1], parsed.waitBudgetSeconds) ||
                     parsed.waitBudgetSeconds <= 0))
                    return fail("cake wait budget wants seconds > 0",
                                f[1]);
                if (f.size() > 2 &&
                    (!parseF64(f[2], parsed.kickSeconds) ||
                     parsed.kickSeconds <= 0))
                    return fail("cake kick cap wants seconds > 0",
                                f[2]);
                for (size_t qi = 3; qi < f.size(); ++qi) {
                    double q = 0.0;
                    if (!parseF64(f[qi], q) || q <= 0)
                        return fail(
                            "cake tier quantum wants seconds > 0",
                            f[qi]);
                    parsed.quantumSeconds.push_back(q);
                }
            } else {
                return fail("sched policy must be fifo|cake", f[0]);
            }
        } else if (key == "tenant" || key == "tenants") {
            auto f = splitOn(val, ':');
            size_t count = 1;
            size_t base = 0;
            if (key == "tenants") {
                if (f.size() < 5)
                    return fail(
                        "tenants wants COUNT:PREFIX:MODE:WL:ARG[...]",
                        val);
                if (!parseSize(f[0], count) || count == 0)
                    return fail("tenants wants a count >= 1", f[0]);
                if (count > 1000000)
                    return fail("tenants count capped at 1000000",
                                f[0]);
                base = 1;
            } else if (f.size() < 4) {
                return fail("tenant wants NAME:MODE:WL:ARG[...]", val);
            }
            TenantSpec t;
            t.name = f[base + 0];
            t.workload = f[base + 2];
            if (t.name.empty() || t.workload.empty())
                return fail("tenant wants non-empty NAME and WL", val);
            if (f[base + 1] == "open") {
                t.mode = ArrivalMode::Open;
                if (!parseF64(f[base + 3], t.rate) || t.rate <= 0)
                    return fail("open-loop rate must be > 0",
                                f[base + 3]);
            } else if (f[base + 1] == "closed") {
                t.mode = ArrivalMode::Closed;
                if (!parseSize(f[base + 3], t.clients) ||
                    t.clients == 0)
                    return fail("closed loop wants >= 1 client",
                                f[base + 3]);
                if (f.size() > base + 4 &&
                    (!parseF64(f[base + 4], t.thinkSeconds) ||
                     t.thinkSeconds < 0))
                    return fail("think time wants seconds >= 0",
                                f[base + 4]);
            } else {
                return fail("tenant mode must be open|closed",
                            f[base + 1]);
            }
            if (key == "tenant") {
                if (findTenant(parsed.tenants, t.name))
                    return fail("duplicate tenant", t.name);
                parsed.tenants.push_back(std::move(t));
                explicitOpt.push_back(0);
            } else {
                // Bulk expansion: COUNT clones named PREFIX#i, all
                // sharing the template's mode/workload/rate.
                for (size_t i = 0; i < count; ++i) {
                    TenantSpec ti = t;
                    ti.name = strf("%s#%zu", t.name.c_str(), i);
                    if (findTenant(parsed.tenants, ti.name))
                        return fail("duplicate tenant", ti.name);
                    parsed.tenants.push_back(std::move(ti));
                    explicitOpt.push_back(0);
                }
            }
        } else if (key == "prio") {
            auto f = splitOn(val, ':');
            if (f.size() != 2)
                return fail("prio wants NAME:P", val);
            double p = 0;
            if (!parseF64(f[1], p) || p != static_cast<int>(p))
                return fail("prio wants an integer tier", f[1]);
            // A trailing '*' prefix-matches (bulk tenants= blocks).
            size_t matched = 0;
            if (!f[0].empty() && f[0].back() == '*') {
                std::string prefix = f[0].substr(0, f[0].size() - 1);
                for (auto& t : parsed.tenants)
                    if (t.name.compare(0, prefix.size(), prefix) == 0) {
                        t.priority = static_cast<int>(p);
                        ++matched;
                    }
            } else if (TenantSpec* t = findTenant(parsed.tenants, f[0])) {
                t->priority = static_cast<int>(p);
                ++matched;
            }
            if (!matched)
                return fail("prio names an undeclared tenant "
                            "(declare it first)",
                            f[0]);
        } else if (key == "opt") {
            auto parseLevel = [](const std::string& s, OptLevel& lv) {
                if (s == "safe")
                    lv = OptLevel::Safe;
                else if (s == "aggressive")
                    lv = OptLevel::Aggressive;
                else
                    return false;
                return true;
            };
            auto f = splitOn(val, ':');
            if (f.size() == 1) {
                // Spec-wide default, applied after parsing to every
                // tenant without an explicit per-tenant level.
                if (optDefaultSet)
                    return fail("duplicate opt default (one spec-wide "
                                "opt= allowed)",
                                val);
                if (!parseLevel(f[0], optDefault))
                    return fail("opt level must be safe|aggressive",
                                f[0]);
                optDefaultSet = true;
            } else if (f.size() == 2) {
                OptLevel lv = OptLevel::Safe;
                if (!parseLevel(f[1], lv))
                    return fail("opt level must be safe|aggressive",
                                f[1]);
                // A trailing '*' prefix-matches, like prio=.
                size_t matched = 0;
                if (!f[0].empty() && f[0].back() == '*') {
                    std::string prefix =
                        f[0].substr(0, f[0].size() - 1);
                    for (size_t i = 0; i < parsed.tenants.size(); ++i)
                        if (parsed.tenants[i].name.compare(
                                0, prefix.size(), prefix) == 0) {
                            parsed.tenants[i].opt = lv;
                            explicitOpt[i] = 1;
                            ++matched;
                        }
                } else {
                    for (size_t i = 0; i < parsed.tenants.size(); ++i)
                        if (parsed.tenants[i].name == f[0]) {
                            parsed.tenants[i].opt = lv;
                            explicitOpt[i] = 1;
                            ++matched;
                        }
                }
                if (!matched)
                    return fail("opt names an undeclared tenant "
                                "(declare it first)",
                                f[0]);
            } else {
                return fail("opt wants LEVEL or NAME:LEVEL", val);
            }
        } else if (key == "at") {
            auto f = splitOn(val, ':');
            if (f.size() != 3)
                return fail("at wants SEC:NAME:WL", val);
            TraceEntry e;
            if (!parseF64(f[0], e.atSeconds) || e.atSeconds < 0)
                return fail("at wants a non-negative arrival time",
                            f[0]);
            e.tenant = f[1];
            e.workload = f[2];
            if (e.tenant.empty() || e.workload.empty())
                return fail("at wants non-empty NAME and WL", val);
            parsed.trace.push_back(std::move(e));
        } else if (key == "group") {
            auto f = splitOn(val, ':');
            if (f.size() < 2 || f.size() > 3)
                return fail("group wants WL:CARDS[:MIN]", val);
            GroupPlan g;
            g.workload = f[0];
            if (g.workload.empty())
                return fail("group wants a non-empty workload", val);
            if (!parseSize(f[1], g.cards))
                return fail("group wants an unsigned card count", f[1]);
            if (f.size() > 2 && !parseSize(f[2], g.minCards))
                return fail("group wants an unsigned card floor", f[2]);
            if (g.cards == 0 || g.minCards == 0 || g.minCards > g.cards)
                return fail("group wants 1 <= MIN <= CARDS", val);
            parsed.groups.push_back(std::move(g));
        } else {
            return fail("unknown serve spec key (want seed/clusters/"
                        "duration/queue/requests/sched/tenant/tenants/"
                        "prio/opt/at/group)",
                        key);
        }
    }
    if (parsed.durationSeconds <= 0)
        return fail("serve duration must be > 0",
                    strf("%g", parsed.durationSeconds));
    if (parsed.queueCapacity == 0)
        return fail("serve queue capacity must be >= 1", "0");
    if (parsed.kickSeconds < parsed.waitBudgetSeconds)
        return fail("cake kick cap must be >= the wait budget",
                    strf("%g", parsed.kickSeconds));

    // The spec-wide opt default covers every tenant that did not get
    // an explicit per-tenant level.
    if (optDefaultSet)
        for (size_t i = 0; i < parsed.tenants.size(); ++i)
            if (!explicitOpt[i])
                parsed.tenants[i].opt = optDefault;

    // Trace entries for undeclared tenants implicitly declare a
    // trace-only tenant (replay convenience).
    for (const auto& e : parsed.trace) {
        if (!findTenant(parsed.tenants, e.tenant)) {
            TenantSpec t;
            t.name = e.tenant;
            t.mode = ArrivalMode::Trace;
            t.workload = e.workload;
            t.opt = optDefault;
            parsed.tenants.push_back(std::move(t));
        }
    }
    out = std::move(parsed);
    return true;
}

ServeSpec
ServeSpec::parse(const std::string& spec)
{
    ServeSpec out;
    SpecError err;
    if (!tryParse(spec, out, err))
        fatal("bad serve spec: %s", err.describe().c_str());
    return out;
}

std::string
ServeSpec::describe() const
{
    std::string s = strf("seed=%llu duration=%.3gs queue=%zu",
                         static_cast<unsigned long long>(seed),
                         durationSeconds, queueCapacity);
    if (clusters > 1)
        s += strf(" clusters=%zu", clusters);
    if (sched != SchedPolicy::Fifo) {
        s += strf(" sched=%s(wait %.3gs kick %.3gs",
                  schedPolicyName(sched), waitBudgetSeconds,
                  kickSeconds);
        for (size_t i = 0; i < quantumSeconds.size(); ++i)
            s += strf("%s%.3gs", i ? "/" : " quanta ",
                      quantumSeconds[i]);
        s += ")";
    }
    if (tenants.size() > 12) {
        // Bulk specs (10k-tenant runs): summarize instead of listing.
        s += strf(" %zu tenant(s)", tenants.size());
        size_t aggressive = 0;
        for (const auto& t : tenants)
            if (t.opt != OptLevel::Safe)
                ++aggressive;
        if (aggressive)
            s += strf(" (%zu aggressive)", aggressive);
    } else {
        for (const auto& t : tenants) {
            s += strf(" %s[%s %s", t.name.c_str(),
                      arrivalModeName(t.mode), t.workload.c_str());
            if (t.mode == ArrivalMode::Open)
                s += strf(" %.3g req/s", t.rate);
            else if (t.mode == ArrivalMode::Closed)
                s += strf(" %zu client(s) think %.3gs", t.clients,
                          t.thinkSeconds);
            if (t.priority != 1)
                s += strf(" prio %d", t.priority);
            if (t.opt != OptLevel::Safe)
                s += strf(" opt %s", optLevelName(t.opt));
            s += "]";
        }
    }
    if (!trace.empty())
        s += strf(" +%zu trace arrival(s)", trace.size());
    for (const auto& g : groups)
        s += strf(" group[%s x%zu min %zu]", g.workload.c_str(), g.cards,
                  g.minCards);
    return s;
}

std::vector<std::string>
ServeSpec::workloadTable() const
{
    std::vector<std::string> table;
    auto intern = [&](const std::string& w) {
        if (std::find(table.begin(), table.end(), w) == table.end())
            table.push_back(w);
    };
    for (const auto& t : tenants)
        intern(t.workload);
    for (const auto& e : trace)
        intern(e.workload);
    for (const auto& g : groups)
        intern(g.workload);
    return table;
}

} // namespace hydra
