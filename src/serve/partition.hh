/**
 * @file
 * Fleet partition manager: carves one machine's cards into disjoint
 * serving groups, each dedicated to a workload class, and repairs the
 * partition when permanent card deaths shrink a group.
 *
 * Carving follows the ServeSpec's `group=` plan (contiguous card
 * ranges in plan order) or, when no plan is given, splits the machine
 * evenly across the workload classes the tenants use.  On a card
 * death the owning group shrinks in place while it stays at or above
 * its minCards floor; below the floor it dissolves and donates its
 * survivors to the smallest live sibling serving the same workload
 * (no sibling -> the workload loses capacity and its queued requests
 * are shed upstream).
 */

#ifndef HYDRA_SERVE_PARTITION_HH
#define HYDRA_SERVE_PARTITION_HH

#include "sched/runner.hh"
#include "serve/spec.hh"

namespace hydra {

/** One serving group: a card subset dedicated to a workload class. */
struct ServeGroup
{
    size_t id = 0;
    /** Workload-table index this group serves. */
    size_t workload = 0;
    /** Live cards (original machine indices, ascending). */
    CardGroup cards;
    /** Dissolution floor for fault-aware repartitioning. */
    size_t minCards = 1;
    bool retired = false;

    // Serving state, maintained by ServeSim.
    bool busy = false;
    Tick busyTicks = 0;
    uint64_t completed = 0;

    bool live() const { return !retired && !cards.cards.empty(); }
};

/** Owns the group set and the card -> group index. */
class FleetPartition
{
  public:
    /** What onCardDeath did to the partition. */
    enum class DeathAction : uint8_t
    {
        /** Card was not owned by a live group (already gone). */
        Ignored,
        /** Group shrank in place (still >= minCards). */
        Shrunk,
        /** Group fell below minCards and dissolved; no sibling serves
         *  its workload, so the class lost all capacity. */
        Dissolved,
        /** Group dissolved and its survivors joined a sibling. */
        Donated,
    };

    /**
     * Carve `spec`'s cluster per `serve.groups` (auto-split across the
     * tenants' workloads when empty).  `workload_table` maps names to
     * the sim's workload indices.  Calls fatal() when the plan
     * oversubscribes the machine or names an unknown workload.
     */
    FleetPartition(const PrototypeSpec& spec, const ServeSpec& serve,
                   const std::vector<std::string>& workload_table);

    std::vector<ServeGroup>& groups() { return groups_; }
    const std::vector<ServeGroup>& groups() const { return groups_; }

    /** Live group currently owning `card`, or nullptr. */
    ServeGroup* groupOf(size_t card);

    /** True while at least one live group serves `workload`. */
    bool servable(size_t workload) const;

    /** Remove a dead card and repair the partition. */
    DeathAction onCardDeath(size_t card);

  private:
    std::vector<ServeGroup> groups_;
};

} // namespace hydra

#endif // HYDRA_SERVE_PARTITION_HH
