/**
 * @file
 * Bounded admission queue with priority tiers and per-tenant fairness.
 *
 * Arrivals beyond the capacity are shed with a structured reject
 * reason instead of queueing unboundedly (load shedding keeps tail
 * latency bounded under overload).  Dispatch picks, among the queued
 * requests a group can serve, the highest priority tier first, then
 * the tenant with the fewest dispatches so far (fairness counter),
 * then FIFO arrival order.
 *
 * This is the `sched=fifo` (default) admission path.  Under
 * `sched=cake` the federation bypasses this queue's dispatch order
 * for the sharded, deficit-ranked CakeQueue (serve/cake.hh); the
 * shed-on-full capacity contract is shared by both policies.
 */

#ifndef HYDRA_SERVE_QUEUE_HH
#define HYDRA_SERVE_QUEUE_HH

#include <optional>
#include <vector>

#include "serve/workload_gen.hh"

namespace hydra {

/** Why an offered request was not admitted / not served. */
enum class RejectReason : uint8_t
{
    /** The admission queue was at capacity (shed on arrival). */
    QueueFull,
    /** No live card group serves the request's workload class (on
     *  arrival, or flushed after a fault dissolved the last group). */
    NoCapacity,
};

const char* rejectReasonName(RejectReason r);

/** Bounded FIFO with priority tiers and tenant-fair dequeue. */
class AdmissionQueue
{
  public:
    explicit AdmissionQueue(size_t capacity) : capacity_(capacity) {}

    size_t capacity() const { return capacity_; }
    size_t depth() const { return q_.size(); }
    bool empty() const { return q_.empty(); }
    bool full() const { return q_.size() >= capacity_; }

    /** Admit `r`; false when the queue is at capacity (caller sheds). */
    bool offer(const Request& r);

    /**
     * Re-admit already-admitted work (federated failover): a request
     * re-queued off a dying cluster held no queue slot while running,
     * so it re-enters even past the capacity bound — shedding it on a
     * transiently full queue would break admission accounting.
     */
    void requeue(const Request& r) { q_.push_back(r); }

    /** Earliest-admitted queued request (stall diagnostics). */
    const Request* oldest() const
    {
        return q_.empty() ? nullptr : &q_.front();
    }

    /** Queued requests of one workload class (stall diagnostics). */
    size_t depthFor(size_t workload) const;

    /** Remove and return everything queued (no-progress watchdog). */
    std::vector<Request> drainAll();

    /**
     * Dequeue the best queued request of workload class `workload`:
     * lowest priority value first, then the tenant with the smallest
     * `served_per_tenant` count, then earliest admission.  Returns
     * nullopt when nothing of that class is queued.
     */
    std::optional<Request>
    popFor(size_t workload,
           const std::vector<uint64_t>& served_per_tenant);

    /** Remove and return every queued request of `workload` (flush
     *  path when the last group serving it dissolves). */
    std::vector<Request> drainWorkload(size_t workload);

  private:
    size_t capacity_;
    std::vector<Request> q_; // admission order
};

} // namespace hydra

#endif // HYDRA_SERVE_QUEUE_HH
