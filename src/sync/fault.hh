/**
 * @file
 * Fault model for cluster execution (robustness layer).
 *
 * A FaultPlan describes, deterministically from a seed, what goes
 * wrong during one program run: transient transfer drops/corruption,
 * link degradation, straggling cards, and permanent card failure at a
 * given tick.  The executor consults the plan at every transfer
 * attempt and compute dispatch; an empty plan takes the exact
 * fault-free code path (zero overhead, tick-identical results).
 *
 * RetryPolicy governs the DTU's reaction to failed transfers:
 * bounded attempts, per-attempt timeout, exponential backoff.
 *
 * RunError / DeadlockReport are the structured outcomes replacing the
 * old "panic on deadlock" behaviour: library-reachable inputs never
 * abort the process.
 */

#ifndef HYDRA_SYNC_FAULT_HH
#define HYDRA_SYNC_FAULT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/parse.hh"
#include "sync/task.hh"

namespace hydra {

/** A cluster-granularity network partition: the cluster is unreachable
 *  for new work from `start` until `heal` (the healing window's end);
 *  work already running on it continues locally. */
struct ClusterPartition
{
    Tick start = 0;
    Tick heal = 0;
};

/** Deterministic, seed-driven fault-injection plan for one run. */
struct FaultPlan
{
    /** Seed for all probabilistic draws (drop/corrupt). */
    uint64_t seed = 0;
    /** Per-attempt probability that a transfer is silently dropped. */
    double dropRate = 0.0;
    /** Per-attempt probability that a transfer arrives corrupted. */
    double corruptRate = 0.0;
    /** Link degradation: multiplies every transfer's wire time (>= 1). */
    double linkDegrade = 1.0;
    /** Deterministically drop the first K attempts of every transfer
     *  (useful for reproducible retry tests; composes with dropRate). */
    uint32_t dropFirstAttempts = 0;
    /** Straggler cards: compute-duration multiplier per card (>= 1). */
    std::map<size_t, double> stragglers;
    /** Permanent card failures: card -> tick of death. */
    std::map<size_t, Tick> cardFailAt;
    /** Cluster-granularity faults (federation layer, PR 7): whole
     *  clusters die (`cluster_kill`) or drop off the network for a
     *  healing window (`cluster_partition`).  Interpreted by the
     *  federation's routing tier; a single-cluster run ignores them. */
    std::map<size_t, Tick> clusterKillAt;
    std::map<size_t, ClusterPartition> clusterPartitionAt;

    /** True when the plan injects nothing at all. */
    bool empty() const;

    /** Deterministic draw: is attempt `attempt` of `msg` dropped? */
    bool dropsTransfer(uint64_t msg, uint32_t attempt) const;

    /** Deterministic draw: does attempt `attempt` of `msg` arrive
     *  corrupted (detected by the receiver's checksum)? */
    bool corruptsTransfer(uint64_t msg, uint32_t attempt) const;

    /** Compute-duration multiplier for `card` (1.0 if not listed). */
    double stragglerFactor(size_t card) const;

    /**
     * Parse a CLI fault spec: comma-separated key=value pairs.
     *   seed=N  drop=P  corrupt=P  degrade=F  dropfirst=K
     *   straggle=CARD:F    (repeatable)
     *   kill=CARD@SECONDS  (repeatable; SECONDS is a double)
     *   ckill=CLUSTER@SECONDS          (cluster_kill; repeatable)
     *   cpart=CLUSTER@SECONDS:HEAL_S   (cluster_partition with a
     *                                   HEAL_S-second healing window)
     * Calls fatal() on malformed input (CLI-facing helper).
     */
    static FaultPlan parse(const std::string& spec);

    /**
     * Library-facing parse: on success fills `out` and returns true;
     * on malformed input returns false with `err` naming the offending
     * token.  Never exits, never crashes, never silently defaults a
     * field the spec spelled wrong.
     */
    static bool tryParse(const std::string& spec, FaultPlan& out,
                         SpecError& err);

    /** One-line human summary of the plan. */
    std::string describe() const;
};

/** DTU retry behaviour for failed transfers. */
struct RetryPolicy
{
    /** Total attempts per transfer, including the first. */
    uint32_t maxAttempts = 4;
    /** Backoff before retry r is base * 2^r, capped at backoffMax. */
    Tick backoffBase = secondsToTicks(1e-6);
    Tick backoffMax = secondsToTicks(100e-6);
    /**
     * Per-attempt timeout.  A dropped transfer is detected when the
     * ack timer expires; a transfer whose (possibly degraded) wire
     * time exceeds the timeout is abandoned and retried.  0 disables
     * the timer: drops are detected at the expected wire time.
     */
    Tick timeout = 0;

    /** Backoff delay after failed attempt index `attempt` (0-based). */
    Tick backoffFor(uint32_t attempt) const;
};

/** One card's stuck position in a deadlock. */
struct StuckCard
{
    size_t card = 0;
    size_t computeIdx = 0;
    size_t computeTotal = 0;
    size_t commIdx = 0;
    size_t commTotal = 0;
    /** Human description of what the head task is blocked on. */
    std::string waitingOn;
};

/** Diagnostics for a run that quiesced before its queues drained. */
struct DeadlockReport
{
    std::vector<StuckCard> stuck;
    /** Cards forming a wait-for cycle, if one exists. */
    std::vector<size_t> cycle;
    /** Pending message ids with no live sender/receiver pairing. */
    std::vector<uint64_t> unmatchedMsgs;

    /** Multi-line human-readable report. */
    std::string describe() const;
};

/** Structured outcome of a failed run (replaces panic/abort). */
struct RunError
{
    enum class Kind : uint8_t
    {
        None,
        /** Program::validate() rejected the program pre-execution. */
        InvalidProgram,
        /** Queues quiesced without draining; see `deadlock`. */
        Deadlock,
        /** A transfer exhausted its retry budget. */
        TransferFailed,
        /** A card died permanently mid-run. */
        CardFailed,
        /** A whole cluster died mid-job (federation layer aborts the
         *  job and resumes it from its checkpoint on a survivor). */
        ClusterFailed,
    };

    Kind kind = Kind::None;
    std::string message;
    /** Failing card (sender for TransferFailed, victim for CardFailed). */
    size_t card = static_cast<size_t>(-1);
    /** Failing message id (TransferFailed). */
    uint64_t msg = 0;
    /** Attempts consumed before giving up (TransferFailed). */
    uint32_t attempts = 0;
    /** Simulated time of the failure. */
    Tick tick = 0;
    DeadlockReport deadlock;
    std::vector<ProgramIssue> issues;

    bool ok() const { return kind == Kind::None; }
    static const char* kindName(Kind k);
};

} // namespace hydra

#endif // HYDRA_SYNC_FAULT_HH
