/**
 * @file
 * Cluster executor: runs a Program over N cards with Procedure-1
 * synchronization semantics (paper Section IV-C):
 *
 *  - compute and comm task queues advance strictly in order;
 *  - CT_i compute tasks run immediately, CT_d wait for recv signals;
 *  - sends wait for the producing compute task (SAC) and for the
 *    receiver's ready handshake;
 *  - recvs configure the DMA, post ready, and block until data lands;
 *  - with an overlapping network (Hydra DTU) transfers proceed in
 *    parallel with compute; with a host-mediated network (FAB) data
 *    movement and compute mutually exclude.
 */

#ifndef HYDRA_SYNC_EXECUTOR_HH
#define HYDRA_SYNC_EXECUTOR_HH

#include <map>
#include <set>
#include <vector>

#include "arch/network.hh"
#include "sync/task.hh"

namespace hydra {

/** One recorded occupancy interval (for Fig. 5-style timelines). */
struct TaskEvent
{
    enum class Kind : uint8_t { Compute, Transfer };

    size_t card = 0;
    Tick start = 0;
    Tick end = 0;
    Kind kind = Kind::Compute;
    uint32_t label = 0;
};

/** Aggregated results of one program execution. */
struct RunStats
{
    Tick makespan = 0;
    /** Per-card total time the compute pipeline was busy. */
    std::vector<Tick> computeBusy;
    /** Per-card total time a transfer touched the card. */
    std::vector<Tick> commBusy;
    uint64_t netBytes = 0;
    uint64_t netMessages = 0;
    /** Aggregate hardware activity for the energy model. */
    OpCost totalCost;
    /** Per-label compute time summed over cards. */
    std::map<uint32_t, Tick> labelComputeTicks;

    /** Longest per-card compute occupancy — the compute-bound floor. */
    Tick maxComputeBusy() const;

    /** makespan - compute floor: time attributable to communication
     *  and load imbalance (the paper's "communication overhead"). */
    Tick commOverhead() const;

    /** Accumulate a subsequent step's stats (makespans add). */
    void append(const RunStats& next, Tick step_gap = 0);

    /** Occupancy intervals; only filled when timeline recording is on. */
    std::vector<TaskEvent> timeline;
};

/** Executes programs on a modelled cluster. */
class ClusterExecutor
{
  public:
    ClusterExecutor(const ClusterConfig& cluster,
                    const NetworkModel& network)
        : cluster_(cluster), network_(network)
    {
    }

    /** Run one program to completion; panics on deadlock. */
    RunStats run(const Program& program);

    /** Record per-task occupancy intervals into RunStats::timeline. */
    void setRecordTimeline(bool on) { recordTimeline_ = on; }

  private:
    ClusterConfig cluster_;
    const NetworkModel& network_;
    bool recordTimeline_ = false;
};

} // namespace hydra

#endif // HYDRA_SYNC_EXECUTOR_HH
