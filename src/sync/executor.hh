/**
 * @file
 * Cluster executor: runs a Program over N cards with Procedure-1
 * synchronization semantics (paper Section IV-C):
 *
 *  - compute and comm task queues advance strictly in order;
 *  - CT_i compute tasks run immediately, CT_d wait for recv signals;
 *  - sends wait for the producing compute task (SAC) and for the
 *    receiver's ready handshake;
 *  - recvs configure the DMA, post ready, and block until data lands;
 *  - with an overlapping network (Hydra DTU) transfers proceed in
 *    parallel with compute; with a host-mediated network (FAB) data
 *    movement and compute mutually exclude.
 *
 * Robustness layer: a FaultPlan injects transfer drops/corruption,
 * link degradation, stragglers and permanent card failures; the DTU
 * retries failed transfers with timeout + exponential backoff; runs
 * that cannot complete return a structured RunError (deadlock
 * diagnostics with a wait-for graph, retry-budget exhaustion, card
 * death) instead of aborting the process.
 */

#ifndef HYDRA_SYNC_EXECUTOR_HH
#define HYDRA_SYNC_EXECUTOR_HH

#include <map>
#include <memory>
#include <set>
#include <vector>

#include "arch/network.hh"
#include "sync/fault.hh"
#include "sync/task.hh"

namespace hydra {

/** One recorded occupancy interval (for Fig. 5-style timelines). */
struct TaskEvent
{
    enum class Kind : uint8_t { Compute, Transfer };

    size_t card = 0;
    Tick start = 0;
    Tick end = 0;
    Kind kind = Kind::Compute;
    uint32_t label = 0;
};

/** Aggregated results of one program execution. */
struct RunStats
{
    Tick makespan = 0;
    /** Per-card total time the compute pipeline was busy. */
    std::vector<Tick> computeBusy;
    /** Per-card total time a transfer touched the card. */
    std::vector<Tick> commBusy;
    uint64_t netBytes = 0;
    uint64_t netMessages = 0;
    /** Aggregate hardware activity for the energy model. */
    OpCost totalCost;
    /** Per-label compute time summed over cards. */
    std::map<uint32_t, Tick> labelComputeTicks;

    /** Retry accounting (all zero on fault-free runs). */
    uint64_t retries = 0;
    uint64_t droppedTransfers = 0;
    uint64_t corruptedTransfers = 0;
    uint64_t timedOutTransfers = 0;
    /** Total backoff time spent waiting between attempts. */
    Tick retryBackoffTicks = 0;

    /** Longest per-card compute occupancy — the compute-bound floor. */
    Tick maxComputeBusy() const;

    /** makespan - compute floor: time attributable to communication
     *  and load imbalance (the paper's "communication overhead"). */
    Tick commOverhead() const;

    /** FNV-1a hash of every execution-visible field (timeline
     *  excluded): equal iff two runs are bit-identical. */
    uint64_t fingerprint() const;

    /** Accumulate a subsequent step's stats (makespans add). */
    void append(const RunStats& next, Tick step_gap = 0);

    /** Occupancy intervals; only filled when timeline recording is on. */
    std::vector<TaskEvent> timeline;
};

/** Outcome of ClusterExecutor::tryRun: stats plus a structured error. */
struct RunResult
{
    RunStats stats;
    RunError error;

    bool ok() const { return error.ok(); }
};

/** Executes programs on a modelled cluster. */
class ClusterExecutor
{
  public:
    /**
     * The network model is cloned: the executor owns its copy, so the
     * referenced model may be a temporary and may be destroyed freely
     * after this constructor returns.
     */
    ClusterExecutor(const ClusterConfig& cluster,
                    const NetworkModel& network)
        : cluster_(cluster), network_(network.clone())
    {
    }

    /**
     * Run one program to completion.  On any structured failure
     * (invalid program, deadlock, exhausted retries, card death) this
     * compatibility wrapper reports the diagnostics via fatal() —
     * clean exit, never abort().  Prefer tryRun() in library code.
     */
    RunStats run(const Program& program);

    /** Run one program, returning stats plus a structured error. */
    RunResult tryRun(const Program& program);

    /** Install the fault plan for subsequent runs (empty = off). */
    void setFaultPlan(FaultPlan plan) { faults_ = std::move(plan); }
    const FaultPlan& faultPlan() const { return faults_; }

    /** DTU retry/timeout/backoff policy for failed transfers. */
    void setRetryPolicy(const RetryPolicy& p) { retry_ = p; }
    const RetryPolicy& retryPolicy() const { return retry_; }

    /**
     * Start subsequent runs at absolute virtual time `t` instead of 0,
     * so several jobs compose on one shared clock (serving layer).
     * RunStats::makespan stays relative to the origin (duration of the
     * run), but timeline events and FaultPlan::cardFailAt ticks are
     * interpreted on the absolute clock: a kill scheduled before the
     * origin fires immediately at run start.
     */
    void setTimeOrigin(Tick t) { origin_ = t; }
    Tick timeOrigin() const { return origin_; }

    /** Run Program::validate() before executing (default on). */
    void setPrevalidate(bool on) { prevalidate_ = on; }

    /** Record per-task occupancy intervals into RunStats::timeline. */
    void setRecordTimeline(bool on) { recordTimeline_ = on; }

  private:
    ClusterConfig cluster_;
    std::unique_ptr<const NetworkModel> network_;
    FaultPlan faults_;
    RetryPolicy retry_;
    Tick origin_ = 0;
    bool prevalidate_ = true;
    bool recordTimeline_ = false;
};

} // namespace hydra

#endif // HYDRA_SYNC_EXECUTOR_HH
