#include "sync/executor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/eventq.hh"

namespace hydra {

Tick
RunStats::maxComputeBusy() const
{
    Tick m = 0;
    for (Tick t : computeBusy)
        m = std::max(m, t);
    return m;
}

Tick
RunStats::commOverhead() const
{
    Tick floor = maxComputeBusy();
    return makespan > floor ? makespan - floor : 0;
}

void
RunStats::append(const RunStats& next, Tick step_gap)
{
    makespan += next.makespan + step_gap;
    if (computeBusy.size() < next.computeBusy.size())
        computeBusy.resize(next.computeBusy.size(), 0);
    if (commBusy.size() < next.commBusy.size())
        commBusy.resize(next.commBusy.size(), 0);
    for (size_t i = 0; i < next.computeBusy.size(); ++i)
        computeBusy[i] += next.computeBusy[i];
    for (size_t i = 0; i < next.commBusy.size(); ++i)
        commBusy[i] += next.commBusy[i];
    netBytes += next.netBytes;
    netMessages += next.netMessages;
    totalCost += next.totalCost;
    for (const auto& [label, t] : next.labelComputeTicks)
        labelComputeTicks[label] += t;
}

namespace {

/** All mutable execution state, local to one run() call. */
struct Engine
{
    Engine(const Program& prog, const ClusterConfig& cluster,
           const NetworkModel& net)
        : prog(prog), cluster(cluster), net(net),
          cards(prog.cardCount()),
          received(prog.cardCount()),
          overlap(net.overlapsCompute())
    {
        // Map message -> sender card so ready-posts can kick the sender.
        for (size_t c = 0; c < prog.cardCount(); ++c)
            for (const auto& t : prog.cards[c].comm)
                if (t.kind == CommTask::Kind::Send)
                    senderOf[t.msg] = c;
    }

    const Program& prog;
    const ClusterConfig& cluster;
    const NetworkModel& net;

    struct CardState
    {
        size_t computeIdx = 0;
        size_t commIdx = 0;
        bool computeBusy = false;
        bool commBusy = false;
        bool recvConfigured = false;
        Tick computeBusyTicks = 0;
        Tick commBusyTicks = 0;
    };

    EventQueue eq;
    std::vector<CardState> cards;
    std::vector<std::set<uint64_t>> received; // per card: msgs landed
    std::set<uint64_t> doneCompute;
    std::map<uint64_t, std::set<size_t>> readyFor; // msg -> ready cards
    std::map<uint64_t, size_t> senderOf;
    RunStats stats;
    bool overlap;
    bool record = false;

    void
    emit(size_t card, Tick start, Tick end, TaskEvent::Kind kind,
         uint32_t label)
    {
        if (record)
            stats.timeline.push_back(TaskEvent{card, start, end, kind,
                                               label});
    }

    void
    kick(size_t c)
    {
        eq.scheduleAfter(0, [this, c] {
            tryCompute(c);
            tryComm(c);
        });
    }

    bool
    msgsReceived(size_t c, const std::vector<uint64_t>& msgs) const
    {
        for (uint64_t m : msgs)
            if (!received[c].count(m))
                return false;
        return true;
    }

    void
    tryCompute(size_t c)
    {
        auto& st = cards[c];
        const auto& queue = prog.cards[c].compute;
        if (st.computeBusy || st.computeIdx >= queue.size())
            return;
        if (!overlap && st.commBusy)
            return; // FAB: data movement blocks the pipeline
        const ComputeTask& task = queue[st.computeIdx];
        if (!msgsReceived(c, task.waitMsgs))
            return; // CT_d waiting for its recv signal

        st.computeBusy = true;
        Tick start = eq.now();
        eq.scheduleAfter(task.duration, [this, c, &task, start] {
            auto& s = cards[c];
            s.computeBusy = false;
            s.computeBusyTicks += task.duration;
            emit(c, start, eq.now(), TaskEvent::Kind::Compute,
                 task.label);
            stats.labelComputeTicks[task.label] += task.duration;
            stats.totalCost += task.cost;
            doneCompute.insert(task.id);
            ++s.computeIdx;
            if (overlap) {
                kick(c);
            } else {
                // Host-mediated mode: remote senders may be blocked on
                // this card's compute pipeline; re-evaluate everyone.
                for (size_t r = 0; r < prog.cardCount(); ++r)
                    kick(r);
            }
        });
    }

    void
    tryComm(size_t c)
    {
        auto& st = cards[c];
        const auto& queue = prog.cards[c].comm;
        if (st.commBusy || st.commIdx >= queue.size())
            return;
        const CommTask& task = queue[st.commIdx];

        if (task.kind == CommTask::Kind::Recv) {
            if (st.recvConfigured)
                return; // ready posted; waiting for the sender
            // Configure the DMA, then post ready to the sender.
            st.commBusy = true;
            eq.scheduleAfter(net.setupLatency(), [this, c, &task] {
                auto& s = cards[c];
                s.commBusy = false;
                s.recvConfigured = true;
                readyFor[task.msg].insert(c);
                auto it = senderOf.find(task.msg);
                HYDRA_ASSERT(it != senderOf.end(),
                             "recv with no matching send");
                kick(it->second);
            });
            return;
        }

        // Send: needs its payload computed (SAC) and every receiver
        // ready (handshake).
        if (task.afterCompute != 0 && !doneCompute.count(task.afterCompute))
            return;
        std::vector<size_t> receivers;
        if (task.peer == kBroadcast) {
            for (size_t r = 0; r < prog.cardCount(); ++r)
                if (r != c)
                    receivers.push_back(r);
        } else {
            receivers.push_back(task.peer);
        }
        const auto& ready = readyFor[task.msg];
        for (size_t r : receivers)
            if (!ready.count(r))
                return;
        if (!overlap) {
            // Host-mediated movement engages the FPGA's only DMA path;
            // it cannot start while the pipeline computes.
            if (st.computeBusy)
                return;
            for (size_t r : receivers)
                if (cards[r].computeBusy)
                    return;
        }

        Tick dur = task.peer == kBroadcast
                       ? net.broadcastTime(task.bytes, c, prog.cardCount())
                       : net.transferTime(task.bytes, c, task.peer);
        st.commBusy = true;
        for (size_t r : receivers)
            cards[r].commBusy = true;
        stats.netBytes += task.bytes * receivers.size();
        ++stats.netMessages;

        Tick t_start = eq.now();
        eq.scheduleAfter(dur, [this, c, receivers, dur, t_start,
                               msg = task.msg] {
            auto& s = cards[c];
            s.commBusy = false;
            s.commBusyTicks += dur;
            emit(c, t_start, eq.now(), TaskEvent::Kind::Transfer, 0);
            ++s.commIdx;
            for (size_t r : receivers) {
                auto& rs = cards[r];
                rs.commBusy = false;
                rs.recvConfigured = false;
                rs.commBusyTicks += dur;
                emit(r, t_start, eq.now(), TaskEvent::Kind::Transfer, 0);
                ++rs.commIdx;
                received[r].insert(msg);
                kick(r);
            }
            readyFor.erase(msg);
            kick(c);
        });
    }
};

} // namespace

RunStats
ClusterExecutor::run(const Program& program)
{
    HYDRA_ASSERT(program.cardCount() == cluster_.totalCards(),
                 "program size does not match the cluster");
    Engine eng(program, cluster_, network_);
    eng.record = recordTimeline_;
    for (size_t c = 0; c < program.cardCount(); ++c)
        eng.kick(c);
    Tick end = eng.eq.run();

    // Detect deadlock: every queue must have drained.
    for (size_t c = 0; c < program.cardCount(); ++c) {
        const auto& st = eng.cards[c];
        if (st.computeIdx != program.cards[c].compute.size() ||
            st.commIdx != program.cards[c].comm.size()) {
            panic("deadlock: card %zu stuck at compute %zu/%zu, "
                  "comm %zu/%zu",
                  c, st.computeIdx, program.cards[c].compute.size(),
                  st.commIdx, program.cards[c].comm.size());
        }
    }

    eng.stats.makespan = end;
    eng.stats.computeBusy.resize(program.cardCount());
    eng.stats.commBusy.resize(program.cardCount());
    for (size_t c = 0; c < program.cardCount(); ++c) {
        eng.stats.computeBusy[c] = eng.cards[c].computeBusyTicks;
        eng.stats.commBusy[c] = eng.cards[c].commBusyTicks;
    }
    return eng.stats;
}

} // namespace hydra
