#include "sync/executor.hh"

#include <algorithm>

#include "common/logging.hh"
#include "sim/eventq.hh"

namespace hydra {

Tick
RunStats::maxComputeBusy() const
{
    Tick m = 0;
    for (Tick t : computeBusy)
        m = std::max(m, t);
    return m;
}

Tick
RunStats::commOverhead() const
{
    Tick floor = maxComputeBusy();
    return makespan > floor ? makespan - floor : 0;
}

uint64_t
RunStats::fingerprint() const
{
    // FNV-1a over every execution-visible field, so two runs hash
    // equal iff they are bit-identical (execution-equivalence tests).
    uint64_t h = 1469598103934665603ull;
    auto mix = [&h](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(makespan);
    mix(computeBusy.size());
    for (Tick t : computeBusy)
        mix(t);
    mix(commBusy.size());
    for (Tick t : commBusy)
        mix(t);
    mix(netBytes);
    mix(netMessages);
    mix(totalCost.cycles);
    mix(totalCost.hbmBytes);
    for (uint64_t v : totalCost.cuOps)
        mix(v);
    mix(totalCost.limbs);
    for (const auto& [label, ticks] : labelComputeTicks) {
        mix(label);
        mix(ticks);
    }
    mix(retries);
    mix(droppedTransfers);
    mix(corruptedTransfers);
    mix(timedOutTransfers);
    mix(retryBackoffTicks);
    return h;
}

void
RunStats::append(const RunStats& next, Tick step_gap)
{
    makespan += next.makespan + step_gap;
    if (computeBusy.size() < next.computeBusy.size())
        computeBusy.resize(next.computeBusy.size(), 0);
    if (commBusy.size() < next.commBusy.size())
        commBusy.resize(next.commBusy.size(), 0);
    for (size_t i = 0; i < next.computeBusy.size(); ++i)
        computeBusy[i] += next.computeBusy[i];
    for (size_t i = 0; i < next.commBusy.size(); ++i)
        commBusy[i] += next.commBusy[i];
    netBytes += next.netBytes;
    netMessages += next.netMessages;
    totalCost += next.totalCost;
    retries += next.retries;
    droppedTransfers += next.droppedTransfers;
    corruptedTransfers += next.corruptedTransfers;
    timedOutTransfers += next.timedOutTransfers;
    retryBackoffTicks += next.retryBackoffTicks;
    for (const auto& [label, t] : next.labelComputeTicks)
        labelComputeTicks[label] += t;
}

namespace {

/** Deterministic duration scaling for stragglers / link degradation. */
Tick
scaleTick(Tick t, double factor)
{
    return static_cast<Tick>(static_cast<double>(t) * factor);
}

/** All mutable execution state, local to one run() call. */
struct Engine
{
    Engine(const Program& prog, const ClusterConfig& cluster,
           const NetworkModel& net, const FaultPlan& plan,
           const RetryPolicy& retry)
        : prog(prog), cluster(cluster), net(net), plan(plan),
          retry(retry),
          cards(prog.cardCount()),
          received(prog.cardCount()),
          overlap(net.overlapsCompute()),
          faultsActive(!plan.empty())
    {
        // Map message -> sender card so ready-posts can kick the sender.
        for (size_t c = 0; c < prog.cardCount(); ++c)
            for (const auto& t : prog.cards[c].comm)
                if (t.kind == CommTask::Kind::Send)
                    senderOf[t.msg] = c;
    }

    const Program& prog;
    const ClusterConfig& cluster;
    const NetworkModel& net;
    const FaultPlan& plan;
    const RetryPolicy& retry;

    struct CardState
    {
        size_t computeIdx = 0;
        size_t commIdx = 0;
        bool computeBusy = false;
        bool commBusy = false;
        bool recvConfigured = false;
        Tick computeBusyTicks = 0;
        Tick commBusyTicks = 0;
    };

    EventQueue eq;
    std::vector<CardState> cards;
    std::vector<std::set<uint64_t>> received; // per card: msgs landed
    std::set<uint64_t> doneCompute;
    std::map<uint64_t, std::set<size_t>> readyFor; // msg -> ready cards
    std::map<uint64_t, size_t> senderOf;
    std::map<uint64_t, uint32_t> attempts; // msg -> failed attempts
    RunStats stats;
    RunError err;
    bool overlap;
    bool faultsActive;
    bool halted = false;
    bool record = false;
    /** Time of the last completed piece of work (drives makespan, so
     *  a post-completion card-kill event cannot inflate it). */
    Tick finishTick = 0;

    void
    emit(size_t card, Tick start, Tick end, TaskEvent::Kind kind,
         uint32_t label)
    {
        if (record)
            stats.timeline.push_back(TaskEvent{card, start, end, kind,
                                               label});
    }

    bool
    allDone() const
    {
        for (size_t c = 0; c < prog.cardCount(); ++c)
            if (cards[c].computeIdx != prog.cards[c].compute.size() ||
                cards[c].commIdx != prog.cards[c].comm.size())
                return false;
        return true;
    }

    void
    halt(RunError e)
    {
        halted = true;
        finishTick = eq.now();
        err = std::move(e);
    }

    void
    kick(size_t c)
    {
        if (halted)
            return;
        eq.scheduleAfter(0, [this, c] {
            tryCompute(c);
            tryComm(c);
        });
    }

    void
    scheduleCardFailures()
    {
        for (const auto& [card, tick] : plan.cardFailAt) {
            if (card >= prog.cardCount())
                continue;
            // Kill ticks are absolute; with a time origin a kill dated
            // before the run starts fires immediately.
            eq.schedule(std::max(tick, eq.now()), [this, card = card] {
                if (halted || allDone())
                    return; // program already drained; nothing to kill
                RunError e;
                e.kind = RunError::Kind::CardFailed;
                e.card = card;
                e.tick = eq.now();
                e.message =
                    strf("card %zu failed permanently at %.6f s", card,
                         ticksToSeconds(eq.now()));
                halt(std::move(e));
            });
        }
    }

    bool
    msgsReceived(size_t c, const std::vector<uint64_t>& msgs) const
    {
        for (uint64_t m : msgs)
            if (!received[c].count(m))
                return false;
        return true;
    }

    void
    tryCompute(size_t c)
    {
        if (halted)
            return;
        auto& st = cards[c];
        const auto& queue = prog.cards[c].compute;
        if (st.computeBusy || st.computeIdx >= queue.size())
            return;
        if (!overlap && st.commBusy)
            return; // FAB: data movement blocks the pipeline
        const ComputeTask& task = queue[st.computeIdx];
        if (!msgsReceived(c, task.waitMsgs))
            return; // CT_d waiting for its recv signal

        Tick dur = task.duration;
        if (faultsActive) {
            double f = plan.stragglerFactor(c);
            if (f != 1.0)
                dur = scaleTick(dur, f);
        }
        st.computeBusy = true;
        Tick start = eq.now();
        eq.scheduleAfter(dur, [this, c, &task, start, dur] {
            if (halted)
                return;
            auto& s = cards[c];
            s.computeBusy = false;
            s.computeBusyTicks += dur;
            emit(c, start, eq.now(), TaskEvent::Kind::Compute,
                 task.label);
            stats.labelComputeTicks[task.label] += dur;
            stats.totalCost += task.cost;
            doneCompute.insert(task.id);
            ++s.computeIdx;
            finishTick = eq.now();
            if (overlap) {
                kick(c);
            } else {
                // Host-mediated mode: remote senders may be blocked on
                // this card's compute pipeline; re-evaluate everyone.
                for (size_t r = 0; r < prog.cardCount(); ++r)
                    kick(r);
            }
        });
    }

    void
    tryComm(size_t c)
    {
        if (halted)
            return;
        auto& st = cards[c];
        const auto& queue = prog.cards[c].comm;
        if (st.commBusy || st.commIdx >= queue.size())
            return;
        const CommTask& task = queue[st.commIdx];

        if (task.kind == CommTask::Kind::Recv) {
            if (st.recvConfigured)
                return; // ready posted; waiting for the sender
            // Configure the DMA, then post ready to the sender.
            st.commBusy = true;
            eq.scheduleAfter(net.setupLatency(), [this, c, &task] {
                if (halted)
                    return;
                auto& s = cards[c];
                s.commBusy = false;
                s.recvConfigured = true;
                readyFor[task.msg].insert(c);
                auto it = senderOf.find(task.msg);
                // An unmatched recv quiesces here and is reported by
                // the deadlock diagnostics (no abort).
                if (it != senderOf.end())
                    kick(it->second);
            });
            return;
        }

        // Send: needs its payload computed (SAC) and every receiver
        // ready (handshake).
        if (task.afterCompute != 0 && !doneCompute.count(task.afterCompute))
            return;
        std::vector<size_t> receivers;
        if (task.peer == kBroadcast) {
            for (size_t r = 0; r < prog.cardCount(); ++r)
                if (r != c)
                    receivers.push_back(r);
        } else {
            receivers.push_back(task.peer);
        }
        const auto& ready = readyFor[task.msg];
        for (size_t r : receivers)
            if (!ready.count(r))
                return;
        if (!overlap) {
            // Host-mediated movement engages the FPGA's only DMA path;
            // it cannot start while the pipeline computes.
            if (st.computeBusy)
                return;
            for (size_t r : receivers)
                if (cards[r].computeBusy)
                    return;
        }

        Tick dur = task.peer == kBroadcast
                       ? net.broadcastTime(task.bytes, c, prog.cardCount())
                       : net.transferTime(task.bytes, c, task.peer);

        // Resolve this attempt's fate against the fault plan.  On the
        // fault-free path the outcome is always Ok with the exact wire
        // time, keeping event timing tick-identical to a build without
        // the fault layer.
        enum class Outcome : uint8_t { Ok, Drop, Timeout, Corrupt };
        Outcome out = Outcome::Ok;
        uint32_t attempt = 0;
        Tick consumed = dur;
        if (faultsActive) {
            auto it = attempts.find(task.msg);
            if (it != attempts.end())
                attempt = it->second;
            if (plan.linkDegrade > 1.0)
                dur = scaleTick(dur, plan.linkDegrade);
            consumed = dur;
            if (plan.dropsTransfer(task.msg, attempt)) {
                // The data never arrives; the DTU's ack timer fires at
                // the timeout (or at the expected wire time if no
                // timer is configured).
                out = Outcome::Drop;
                consumed = retry.timeout ? retry.timeout : dur;
            } else if (retry.timeout && dur > retry.timeout) {
                out = Outcome::Timeout;
                consumed = retry.timeout;
            } else if (plan.corruptsTransfer(task.msg, attempt)) {
                out = Outcome::Corrupt; // checksum fails on arrival
            }
        }

        st.commBusy = true;
        for (size_t r : receivers)
            cards[r].commBusy = true;
        stats.netBytes += task.bytes * receivers.size();
        if (attempt == 0)
            ++stats.netMessages;

        Tick t_start = eq.now();
        if (out == Outcome::Ok) {
            eq.scheduleAfter(consumed, [this, c, receivers,
                                        dur = consumed, t_start,
                                        msg = task.msg] {
                if (halted)
                    return;
                auto& s = cards[c];
                s.commBusy = false;
                s.commBusyTicks += dur;
                emit(c, t_start, eq.now(), TaskEvent::Kind::Transfer, 0);
                ++s.commIdx;
                for (size_t r : receivers) {
                    auto& rs = cards[r];
                    rs.commBusy = false;
                    rs.recvConfigured = false;
                    rs.commBusyTicks += dur;
                    emit(r, t_start, eq.now(), TaskEvent::Kind::Transfer,
                         0);
                    ++rs.commIdx;
                    received[r].insert(msg);
                    kick(r);
                }
                readyFor.erase(msg);
                finishTick = eq.now();
                kick(c);
            });
            return;
        }

        // Failed attempt: the wire/DTU stays occupied for `consumed`
        // ticks, then the sender backs off exponentially and retries
        // the same head-of-queue task.  Receivers keep their DMA
        // configured (ready state survives a retry).
        eq.scheduleAfter(consumed, [this, c, receivers, consumed,
                                    t_start, msg = task.msg, attempt,
                                    out] {
            if (halted)
                return;
            auto& s = cards[c];
            s.commBusy = false;
            s.commBusyTicks += consumed;
            emit(c, t_start, eq.now(), TaskEvent::Kind::Transfer, 0);
            for (size_t r : receivers) {
                auto& rs = cards[r];
                rs.commBusy = false;
                rs.commBusyTicks += consumed;
                emit(r, t_start, eq.now(), TaskEvent::Kind::Transfer, 0);
            }
            switch (out) {
            case Outcome::Drop:
                ++stats.droppedTransfers;
                break;
            case Outcome::Timeout:
                ++stats.timedOutTransfers;
                break;
            case Outcome::Corrupt:
                ++stats.corruptedTransfers;
                break;
            case Outcome::Ok:
                break;
            }
            finishTick = eq.now();
            uint32_t next = attempt + 1;
            attempts[msg] = next;
            if (next >= retry.maxAttempts) {
                RunError e;
                e.kind = RunError::Kind::TransferFailed;
                e.card = c;
                e.msg = msg;
                e.attempts = next;
                e.tick = eq.now();
                e.message = strf(
                    "transfer of msg %llu from card %zu failed after "
                    "%u attempt(s) (%llu dropped, %llu corrupted, "
                    "%llu timed out this run)",
                    static_cast<unsigned long long>(msg), c, next,
                    static_cast<unsigned long long>(
                        stats.droppedTransfers),
                    static_cast<unsigned long long>(
                        stats.corruptedTransfers),
                    static_cast<unsigned long long>(
                        stats.timedOutTransfers));
                halt(std::move(e));
                return;
            }
            ++stats.retries;
            Tick backoff = retry.backoffFor(attempt);
            stats.retryBackoffTicks += backoff;
            eq.scheduleAfter(backoff, [this, c] {
                if (!halted) {
                    tryCompute(c);
                    tryComm(c);
                }
            });
            if (!overlap) {
                // Freed endpoints may compute during the backoff
                // window; the sender re-arbitrates at retry time.
                for (size_t r : receivers)
                    kick(r);
            }
        });
    }

    /** Build wait-for diagnostics once the queue quiesced undrained. */
    DeadlockReport
    buildDeadlockReport() const
    {
        DeadlockReport report;
        const size_t n = prog.cardCount();

        // Pending compute ids -> owning card (for SAC blockers).
        std::map<uint64_t, size_t> pendingComputeOwner;
        for (size_t c = 0; c < n; ++c)
            for (size_t i = cards[c].computeIdx;
                 i < prog.cards[c].compute.size(); ++i)
                pendingComputeOwner[prog.cards[c].compute[i].id] = c;

        std::set<uint64_t> unmatched;
        std::vector<std::vector<size_t>> edges(n);

        for (size_t c = 0; c < n; ++c) {
            const auto& st = cards[c];
            const auto& compute = prog.cards[c].compute;
            const auto& comm = prog.cards[c].comm;
            if (st.computeIdx == compute.size() &&
                st.commIdx == comm.size())
                continue;

            StuckCard sc;
            sc.card = c;
            sc.computeIdx = st.computeIdx;
            sc.computeTotal = compute.size();
            sc.commIdx = st.commIdx;
            sc.commTotal = comm.size();
            std::string why;

            if (st.computeIdx < compute.size()) {
                const ComputeTask& t = compute[st.computeIdx];
                for (uint64_t m : t.waitMsgs) {
                    if (received[c].count(m))
                        continue;
                    auto s = senderOf.find(m);
                    if (s != senderOf.end()) {
                        edges[c].push_back(s->second);
                        why += strf("compute %llu waits msg %llu from "
                                    "card %zu; ",
                                    static_cast<unsigned long long>(t.id),
                                    static_cast<unsigned long long>(m),
                                    s->second);
                    } else {
                        unmatched.insert(m);
                        why += strf("compute %llu waits msg %llu that "
                                    "has no sender; ",
                                    static_cast<unsigned long long>(t.id),
                                    static_cast<unsigned long long>(m));
                    }
                }
            }
            if (st.commIdx < comm.size()) {
                const CommTask& t = comm[st.commIdx];
                auto msgU = static_cast<unsigned long long>(t.msg);
                if (t.kind == CommTask::Kind::Send) {
                    if (t.afterCompute != 0 &&
                        !doneCompute.count(t.afterCompute)) {
                        auto o = pendingComputeOwner.find(t.afterCompute);
                        auto idU = static_cast<unsigned long long>(
                            t.afterCompute);
                        if (o != pendingComputeOwner.end()) {
                            edges[c].push_back(o->second);
                            why += strf("send msg %llu waits compute "
                                        "%llu on card %zu; ",
                                        msgU, idU, o->second);
                        } else {
                            why += strf("send msg %llu waits dangling "
                                        "compute id %llu; ",
                                        msgU, idU);
                        }
                    } else {
                        std::vector<size_t> rx;
                        if (t.peer == kBroadcast) {
                            for (size_t r = 0; r < n; ++r)
                                if (r != c)
                                    rx.push_back(r);
                        } else if (t.peer < n) {
                            rx.push_back(t.peer);
                        }
                        auto rit = readyFor.find(t.msg);
                        for (size_t r : rx) {
                            if (rit != readyFor.end() &&
                                rit->second.count(r))
                                continue;
                            edges[c].push_back(r);
                            why += strf("send msg %llu waits ready "
                                        "from card %zu; ",
                                        msgU, r);
                        }
                    }
                } else if (st.recvConfigured) {
                    auto s = senderOf.find(t.msg);
                    if (s != senderOf.end()) {
                        edges[c].push_back(s->second);
                        why += strf("recv msg %llu waits data from "
                                    "card %zu; ",
                                    msgU, s->second);
                    } else {
                        unmatched.insert(t.msg);
                        why += strf("recv msg %llu has no matching "
                                    "send; ",
                                    msgU);
                    }
                }
            }
            if (why.empty())
                why = "quiesced with pending work";
            sc.waitingOn = std::move(why);
            report.stuck.push_back(std::move(sc));
        }

        report.unmatchedMsgs.assign(unmatched.begin(), unmatched.end());
        report.cycle = findCycle(edges);
        return report;
    }

    /** First wait-for cycle among the cards, if any (iterative DFS). */
    static std::vector<size_t>
    findCycle(const std::vector<std::vector<size_t>>& edges)
    {
        const size_t n = edges.size();
        enum : uint8_t { White, Grey, Black };
        std::vector<uint8_t> color(n, White);
        std::vector<size_t> stack;

        // Recursive DFS expressed with an explicit stack of (node,
        // next-edge-index) frames.
        for (size_t root = 0; root < n; ++root) {
            if (color[root] != White)
                continue;
            std::vector<std::pair<size_t, size_t>> frames;
            frames.emplace_back(root, 0);
            color[root] = Grey;
            stack.push_back(root);
            while (!frames.empty()) {
                auto& [node, idx] = frames.back();
                if (idx < edges[node].size()) {
                    size_t next = edges[node][idx++];
                    if (next >= n)
                        continue;
                    if (color[next] == Grey) {
                        // Found a cycle: slice the grey stack.
                        auto it = std::find(stack.begin(), stack.end(),
                                            next);
                        return std::vector<size_t>(it, stack.end());
                    }
                    if (color[next] == White) {
                        color[next] = Grey;
                        stack.push_back(next);
                        frames.emplace_back(next, 0);
                    }
                } else {
                    color[node] = Black;
                    stack.pop_back();
                    frames.pop_back();
                }
            }
        }
        return {};
    }
};

} // namespace

RunResult
ClusterExecutor::tryRun(const Program& program)
{
    RunResult res;
    if (program.cardCount() != cluster_.totalCards()) {
        res.error.kind = RunError::Kind::InvalidProgram;
        res.error.message =
            strf("program spans %zu card(s) but the cluster has %zu",
                 program.cardCount(), cluster_.totalCards());
        return res;
    }
    if (prevalidate_) {
        auto issues = program.validate();
        if (!issues.empty()) {
            res.error.kind = RunError::Kind::InvalidProgram;
            res.error.message = strf(
                "program validation found %zu issue(s); first: [%s] %s",
                issues.size(),
                programIssueKindName(issues.front().kind),
                issues.front().detail.c_str());
            res.error.issues = std::move(issues);
            return res;
        }
    }

    Engine eng(program, cluster_, *network_, faults_, retry_);
    eng.record = recordTimeline_;
    eng.eq.advanceTo(origin_);
    eng.finishTick = origin_;
    eng.scheduleCardFailures();
    for (size_t c = 0; c < program.cardCount(); ++c)
        eng.kick(c);
    eng.eq.run();

    if (eng.err.ok() && !eng.allDone()) {
        eng.err.kind = RunError::Kind::Deadlock;
        eng.err.tick = eng.eq.now();
        eng.err.deadlock = eng.buildDeadlockReport();
        eng.err.message = strf(
            "deadlock: %zu card(s) quiesced with pending work%s",
            eng.err.deadlock.stuck.size(),
            eng.err.deadlock.cycle.empty() ? ""
                                           : " (wait-for cycle found)");
    }

    eng.stats.makespan = eng.finishTick - origin_;
    eng.stats.computeBusy.resize(program.cardCount());
    eng.stats.commBusy.resize(program.cardCount());
    for (size_t c = 0; c < program.cardCount(); ++c) {
        eng.stats.computeBusy[c] = eng.cards[c].computeBusyTicks;
        eng.stats.commBusy[c] = eng.cards[c].commBusyTicks;
    }
    res.stats = std::move(eng.stats);
    res.error = std::move(eng.err);
    return res;
}

RunStats
ClusterExecutor::run(const Program& program)
{
    RunResult res = tryRun(program);
    if (!res.ok()) {
        std::string detail = res.error.message;
        if (res.error.kind == RunError::Kind::Deadlock)
            detail += "\n" + res.error.deadlock.describe();
        // A user-visible, clean exit (never abort): callers that need
        // to survive failures use tryRun() and inspect the RunError.
        fatal("cluster run failed [%s]: %s",
              RunError::kindName(res.error.kind), detail.c_str());
    }
    return std::move(res.stats);
}

} // namespace hydra
