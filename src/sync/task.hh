/**
 * @file
 * Per-card task programs: the instruction streams the host-side
 * scheduling software preloads onto every FPGA (paper Section IV-D).
 *
 * Each card carries two FIFO queues -- computation and communication --
 * whose interplay implements Procedure 1: data-independent compute
 * tasks (CT_i) run immediately, data-dependent ones (CT_d) wait for
 * recv-completion signals, sends wait for compute-completion signals
 * and the receiver's ready handshake.
 */

#ifndef HYDRA_SYNC_TASK_HH
#define HYDRA_SYNC_TASK_HH

#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include "arch/opcost.hh"

namespace hydra {

/** Broadcast destination marker. */
constexpr size_t kBroadcast = std::numeric_limits<size_t>::max();

/** One computation task in a card's compute queue. */
struct ComputeTask
{
    /** Unique id within the program (used by send dependencies). */
    uint64_t id = 0;
    /** Execution time on this card. */
    Tick duration = 0;
    /** Message ids whose reception must complete first (CT_d). */
    std::vector<uint64_t> waitMsgs;
    /** Aggregated hardware cost, for energy accounting. */
    OpCost cost;
    /** Procedure tag for per-step statistics (e.g.\ "ConvBN"). */
    uint32_t label = 0;
};

/** One communication task in a card's comm queue. */
struct CommTask
{
    enum class Kind : uint8_t { Send, Recv };

    Kind kind = Kind::Send;
    /** Pairing key: every send matches recvs with the same msg id. */
    uint64_t msg = 0;
    /** Send: destination card or kBroadcast.  Recv: source card. */
    size_t peer = 0;
    /** Payload size. */
    uint64_t bytes = 0;
    /** Send only: compute-task id that must finish first (SAC);
     *  0 = payload already available. */
    uint64_t afterCompute = 0;
};

/** One static defect found by Program::validate(). */
struct ProgramIssue
{
    enum class Kind : uint8_t
    {
        /** A recv whose message id no card ever sends. */
        UnmatchedRecv,
        /** A send whose receiver(s) never post a matching recv. */
        UnmatchedSend,
        /** A send's afterCompute id exists in no compute queue. */
        DanglingAfterCompute,
        /** Send/recv peer index outside the cluster. */
        BadPeer,
        /** A card sending or receiving to/from itself. */
        SelfMessage,
        /** A compute task waiting on a message this card never recvs. */
        WaitOnUnknownMsg,
        /** The same message id sent by more than one card. */
        DuplicateSender,
    };

    Kind kind = Kind::UnmatchedRecv;
    /** Card whose queue carries the offending task. */
    size_t card = 0;
    /** Offending message id or compute id (kind-dependent). */
    uint64_t id = 0;
    std::string detail;
};

const char* programIssueKindName(ProgramIssue::Kind k);

/** The two preloaded queues of one card. */
struct CardProgram
{
    std::vector<ComputeTask> compute;
    std::vector<CommTask> comm;

    bool
    empty() const
    {
        return compute.empty() && comm.empty();
    }
};

/** A whole-cluster program: one CardProgram per card. */
struct Program
{
    std::vector<CardProgram> cards;
    /** Names backing ComputeTask::label. */
    std::vector<std::string> labels;

    explicit Program(size_t n_cards = 0) : cards(n_cards) {}

    size_t cardCount() const { return cards.size(); }

    /** Intern a label name, returning its id. */
    uint32_t labelId(const std::string& name);

    /**
     * Static pre-execution checks: unmatched message ids, dangling
     * afterCompute references, out-of-range or self peers, compute
     * waits on messages the card never receives, duplicate senders.
     * Returns every defect found (empty = valid).  Programs built
     * through ProgramBuilder's sendTo/broadcastFrom helpers always
     * validate clean.
     */
    std::vector<ProgramIssue> validate() const;
};

/**
 * Helper for building programs: hands out unique compute-task and
 * message ids and appends tasks.
 */
class ProgramBuilder
{
  public:
    explicit ProgramBuilder(size_t n_cards) : prog_(n_cards) {}

    Program take() { return std::move(prog_); }
    Program& program() { return prog_; }
    size_t cardCount() const { return prog_.cardCount(); }

    uint32_t
    label(const std::string& name)
    {
        return prog_.labelId(name);
    }

    /** Append a compute task; returns its id. */
    uint64_t addCompute(size_t card, Tick duration, const OpCost& cost,
                        uint32_t label,
                        std::vector<uint64_t> wait_msgs = {});

    /** Fresh message id for a send/recv pairing. */
    uint64_t newMsg() { return nextMsg_++; }

    void addSend(size_t card, uint64_t msg, size_t dst, uint64_t bytes,
                 uint64_t after_compute = 0);
    void addRecv(size_t card, uint64_t msg, size_t src, uint64_t bytes);

    /**
     * Convenience: send `bytes` from `src` (after compute task `after`)
     * to card `dst`; returns the message id.
     */
    uint64_t sendTo(size_t src, size_t dst, uint64_t bytes,
                    uint64_t after_compute = 0);

    /** Broadcast from `src` to all other cards. */
    uint64_t broadcastFrom(size_t src, uint64_t bytes,
                           uint64_t after_compute = 0);

  private:
    Program prog_;
    uint64_t nextCompute_ = 1; // 0 means "no dependency"
    uint64_t nextMsg_ = 1;
};

} // namespace hydra

#endif // HYDRA_SYNC_TASK_HH
