#include "sync/task.hh"

#include <map>
#include <set>

#include "common/logging.hh"

namespace hydra {

const char*
programIssueKindName(ProgramIssue::Kind k)
{
    switch (k) {
    case ProgramIssue::Kind::UnmatchedRecv:
        return "unmatched-recv";
    case ProgramIssue::Kind::UnmatchedSend:
        return "unmatched-send";
    case ProgramIssue::Kind::DanglingAfterCompute:
        return "dangling-after-compute";
    case ProgramIssue::Kind::BadPeer:
        return "bad-peer";
    case ProgramIssue::Kind::SelfMessage:
        return "self-message";
    case ProgramIssue::Kind::WaitOnUnknownMsg:
        return "wait-on-unknown-msg";
    case ProgramIssue::Kind::DuplicateSender:
        return "duplicate-sender";
    }
    return "?";
}

std::vector<ProgramIssue>
Program::validate() const
{
    std::vector<ProgramIssue> issues;
    auto add = [&](ProgramIssue::Kind kind, size_t card, uint64_t id,
                   std::string detail) {
        issues.push_back(
            ProgramIssue{kind, card, id, std::move(detail)});
    };

    const size_t n = cardCount();
    std::set<uint64_t> computeIds;
    for (size_t c = 0; c < n; ++c)
        for (const auto& t : cards[c].compute)
            computeIds.insert(t.id);

    // Message id -> sender (card, dst) and receivers (card, src).
    struct SendInfo
    {
        size_t card;
        size_t dst;
    };
    std::map<uint64_t, std::vector<SendInfo>> senders;
    std::map<uint64_t, std::map<size_t, size_t>> recvs; // msg->card->src

    for (size_t c = 0; c < n; ++c) {
        for (const auto& t : cards[c].comm) {
            if (t.kind == CommTask::Kind::Send) {
                if (t.peer != kBroadcast && t.peer >= n)
                    add(ProgramIssue::Kind::BadPeer, c, t.msg,
                        strf("send msg %llu to out-of-range card %zu",
                             (unsigned long long)t.msg, t.peer));
                else if (t.peer == c)
                    add(ProgramIssue::Kind::SelfMessage, c, t.msg,
                        strf("card %zu sends msg %llu to itself", c,
                             (unsigned long long)t.msg));
                if (t.afterCompute != 0 && !computeIds.count(t.afterCompute))
                    add(ProgramIssue::Kind::DanglingAfterCompute, c,
                        t.afterCompute,
                        strf("send msg %llu waits on unknown compute id "
                             "%llu",
                             (unsigned long long)t.msg,
                             (unsigned long long)t.afterCompute));
                senders[t.msg].push_back(SendInfo{c, t.peer});
            } else {
                if (t.peer >= n)
                    add(ProgramIssue::Kind::BadPeer, c, t.msg,
                        strf("recv msg %llu from out-of-range card %zu",
                             (unsigned long long)t.msg, t.peer));
                else if (t.peer == c)
                    add(ProgramIssue::Kind::SelfMessage, c, t.msg,
                        strf("card %zu receives msg %llu from itself", c,
                             (unsigned long long)t.msg));
                recvs[t.msg][c] = t.peer;
            }
        }
    }

    for (const auto& [msg, infos] : senders) {
        if (infos.size() > 1) {
            add(ProgramIssue::Kind::DuplicateSender, infos[1].card, msg,
                strf("msg %llu has %zu senders",
                     (unsigned long long)msg, infos.size()));
            continue;
        }
        const SendInfo& s = infos.front();
        auto rit = recvs.find(msg);
        if (s.dst == kBroadcast) {
            for (size_t r = 0; r < n; ++r) {
                if (r == s.card)
                    continue;
                if (rit == recvs.end() || !rit->second.count(r))
                    add(ProgramIssue::Kind::UnmatchedSend, s.card, msg,
                        strf("broadcast msg %llu has no recv on card "
                             "%zu",
                             (unsigned long long)msg, r));
            }
        } else if (s.dst < n) {
            if (rit == recvs.end() || !rit->second.count(s.dst))
                add(ProgramIssue::Kind::UnmatchedSend, s.card, msg,
                    strf("msg %llu to card %zu has no matching recv",
                         (unsigned long long)msg, s.dst));
        }
    }

    for (const auto& [msg, by_card] : recvs) {
        if (senders.count(msg))
            continue;
        for (const auto& [card, src] : by_card) {
            (void)src;
            add(ProgramIssue::Kind::UnmatchedRecv, card, msg,
                strf("recv of msg %llu that no card sends",
                     (unsigned long long)msg));
        }
    }

    for (size_t c = 0; c < n; ++c) {
        for (const auto& t : cards[c].compute) {
            for (uint64_t m : t.waitMsgs) {
                auto rit = recvs.find(m);
                if (rit == recvs.end() || !rit->second.count(c))
                    add(ProgramIssue::Kind::WaitOnUnknownMsg, c, m,
                        strf("compute id %llu waits on msg %llu that "
                             "card %zu never receives",
                             (unsigned long long)t.id,
                             (unsigned long long)m, c));
            }
        }
    }

    return issues;
}

uint32_t
Program::labelId(const std::string& name)
{
    for (size_t i = 0; i < labels.size(); ++i)
        if (labels[i] == name)
            return static_cast<uint32_t>(i);
    labels.push_back(name);
    return static_cast<uint32_t>(labels.size() - 1);
}

uint64_t
ProgramBuilder::addCompute(size_t card, Tick duration, const OpCost& cost,
                           uint32_t label,
                           std::vector<uint64_t> wait_msgs)
{
    HYDRA_ASSERT(card < prog_.cardCount(), "card index out of range");
    uint64_t id = nextCompute_++;
    prog_.cards[card].compute.push_back(
        ComputeTask{id, duration, std::move(wait_msgs), cost, label});
    return id;
}

void
ProgramBuilder::addSend(size_t card, uint64_t msg, size_t dst,
                        uint64_t bytes, uint64_t after_compute)
{
    HYDRA_ASSERT(card < prog_.cardCount(), "card index out of range");
    HYDRA_ASSERT(dst == kBroadcast || dst < prog_.cardCount(),
                 "destination out of range");
    HYDRA_ASSERT(dst != card, "self-send");
    prog_.cards[card].comm.push_back(
        CommTask{CommTask::Kind::Send, msg, dst, bytes, after_compute});
}

void
ProgramBuilder::addRecv(size_t card, uint64_t msg, size_t src,
                        uint64_t bytes)
{
    HYDRA_ASSERT(card < prog_.cardCount() && src < prog_.cardCount(),
                 "card index out of range");
    HYDRA_ASSERT(src != card, "self-recv");
    prog_.cards[card].comm.push_back(
        CommTask{CommTask::Kind::Recv, msg, src, bytes, 0});
}

uint64_t
ProgramBuilder::sendTo(size_t src, size_t dst, uint64_t bytes,
                       uint64_t after_compute)
{
    uint64_t msg = newMsg();
    addSend(src, msg, dst, bytes, after_compute);
    addRecv(dst, msg, src, bytes);
    return msg;
}

uint64_t
ProgramBuilder::broadcastFrom(size_t src, uint64_t bytes,
                              uint64_t after_compute)
{
    uint64_t msg = newMsg();
    addSend(src, msg, kBroadcast, bytes, after_compute);
    for (size_t c = 0; c < prog_.cardCount(); ++c)
        if (c != src)
            addRecv(c, msg, src, bytes);
    return msg;
}

} // namespace hydra
