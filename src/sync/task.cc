#include "sync/task.hh"

#include "common/logging.hh"

namespace hydra {

uint32_t
Program::labelId(const std::string& name)
{
    for (size_t i = 0; i < labels.size(); ++i)
        if (labels[i] == name)
            return static_cast<uint32_t>(i);
    labels.push_back(name);
    return static_cast<uint32_t>(labels.size() - 1);
}

uint64_t
ProgramBuilder::addCompute(size_t card, Tick duration, const OpCost& cost,
                           uint32_t label,
                           std::vector<uint64_t> wait_msgs)
{
    HYDRA_ASSERT(card < prog_.cardCount(), "card index out of range");
    uint64_t id = nextCompute_++;
    prog_.cards[card].compute.push_back(
        ComputeTask{id, duration, std::move(wait_msgs), cost, label});
    return id;
}

void
ProgramBuilder::addSend(size_t card, uint64_t msg, size_t dst,
                        uint64_t bytes, uint64_t after_compute)
{
    HYDRA_ASSERT(card < prog_.cardCount(), "card index out of range");
    HYDRA_ASSERT(dst == kBroadcast || dst < prog_.cardCount(),
                 "destination out of range");
    HYDRA_ASSERT(dst != card, "self-send");
    prog_.cards[card].comm.push_back(
        CommTask{CommTask::Kind::Send, msg, dst, bytes, after_compute});
}

void
ProgramBuilder::addRecv(size_t card, uint64_t msg, size_t src,
                        uint64_t bytes)
{
    HYDRA_ASSERT(card < prog_.cardCount() && src < prog_.cardCount(),
                 "card index out of range");
    HYDRA_ASSERT(src != card, "self-recv");
    prog_.cards[card].comm.push_back(
        CommTask{CommTask::Kind::Recv, msg, src, bytes, 0});
}

uint64_t
ProgramBuilder::sendTo(size_t src, size_t dst, uint64_t bytes,
                       uint64_t after_compute)
{
    uint64_t msg = newMsg();
    addSend(src, msg, dst, bytes, after_compute);
    addRecv(dst, msg, src, bytes);
    return msg;
}

uint64_t
ProgramBuilder::broadcastFrom(size_t src, uint64_t bytes,
                              uint64_t after_compute)
{
    uint64_t msg = newMsg();
    addSend(src, msg, kBroadcast, bytes, after_compute);
    for (size_t c = 0; c < prog_.cardCount(); ++c)
        if (c != src)
            addRecv(c, msg, src, bytes);
    return msg;
}

} // namespace hydra
