#include "sync/fault.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace hydra {

namespace {

/** splitmix64: well-mixed 64-bit hash for order-independent draws. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic uniform draw in [0,1) from (seed, msg, attempt, salt). */
double
hashDraw(uint64_t seed, uint64_t msg, uint32_t attempt, uint64_t salt)
{
    uint64_t h = mix64(seed ^ mix64(msg ^ mix64(attempt ^ salt)));
    // 53 high bits -> double in [0,1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

bool
FaultPlan::empty() const
{
    return dropRate <= 0.0 && corruptRate <= 0.0 && linkDegrade <= 1.0 &&
           dropFirstAttempts == 0 && stragglers.empty() &&
           cardFailAt.empty() && clusterKillAt.empty() &&
           clusterPartitionAt.empty();
}

bool
FaultPlan::dropsTransfer(uint64_t msg, uint32_t attempt) const
{
    if (attempt < dropFirstAttempts)
        return true;
    if (dropRate <= 0.0)
        return false;
    return hashDraw(seed, msg, attempt, 0x64726f70ULL) < dropRate;
}

bool
FaultPlan::corruptsTransfer(uint64_t msg, uint32_t attempt) const
{
    if (corruptRate <= 0.0)
        return false;
    return hashDraw(seed, msg, attempt, 0x636f7272ULL) < corruptRate;
}

double
FaultPlan::stragglerFactor(size_t card) const
{
    auto it = stragglers.find(card);
    return it == stragglers.end() ? 1.0 : it->second;
}

bool
FaultPlan::tryParse(const std::string& spec, FaultPlan& out,
                    SpecError& err)
{
    FaultPlan plan;
    std::string item;
    auto fail = [&](std::string msg, std::string token) {
        err.message = std::move(msg);
        // An empty sub-token (e.g. "cpart=@5:1") still names the
        // offending item, never an empty diagnosis.
        err.token = token.empty() ? item : std::move(token);
        return false;
    };
    std::stringstream ss(spec);
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string::npos)
            return fail("fault spec item is not key=value", item);
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (val.empty())
            return fail("fault spec item has an empty value", item);
        if (key == "seed") {
            if (!parseU64(val, plan.seed))
                return fail("seed wants an unsigned integer", val);
        } else if (key == "drop") {
            if (!parseF64(val, plan.dropRate))
                return fail("drop wants a probability", val);
        } else if (key == "corrupt") {
            if (!parseF64(val, plan.corruptRate))
                return fail("corrupt wants a probability", val);
        } else if (key == "degrade") {
            if (!parseF64(val, plan.linkDegrade))
                return fail("degrade wants a factor", val);
        } else if (key == "dropfirst") {
            uint64_t k = 0;
            if (!parseU64(val, k) || k > UINT32_MAX)
                return fail("dropfirst wants a small unsigned integer",
                            val);
            plan.dropFirstAttempts = static_cast<uint32_t>(k);
        } else if (key == "straggle") {
            auto colon = val.find(':');
            if (colon == std::string::npos)
                return fail("straggle wants CARD:FACTOR", val);
            size_t card = 0;
            double factor = 0;
            if (!parseSize(val.substr(0, colon), card))
                return fail("straggle wants an unsigned card index",
                            val.substr(0, colon));
            if (!parseF64(val.substr(colon + 1), factor) || factor < 1.0)
                return fail("straggle wants a factor >= 1",
                            val.substr(colon + 1));
            plan.stragglers[card] = factor;
        } else if (key == "kill") {
            auto at = val.find('@');
            if (at == std::string::npos)
                return fail("kill wants CARD@SECONDS", val);
            size_t card = 0;
            double sec = 0;
            if (!parseSize(val.substr(0, at), card))
                return fail("kill wants an unsigned card index",
                            val.substr(0, at));
            if (!parseF64(val.substr(at + 1), sec) || sec < 0)
                return fail("kill wants a non-negative time",
                            val.substr(at + 1));
            plan.cardFailAt[card] = secondsToTicks(sec);
        } else if (key == "ckill") {
            auto at = val.find('@');
            if (at == std::string::npos)
                return fail("ckill wants CLUSTER@SECONDS", val);
            size_t cluster = 0;
            double sec = 0;
            if (!parseSize(val.substr(0, at), cluster))
                return fail("ckill wants an unsigned cluster index",
                            val.substr(0, at));
            if (!parseF64(val.substr(at + 1), sec) || sec < 0)
                return fail("ckill wants a non-negative time",
                            val.substr(at + 1));
            plan.clusterKillAt[cluster] = secondsToTicks(sec);
        } else if (key == "cpart") {
            auto at = val.find('@');
            if (at == std::string::npos)
                return fail("cpart wants CLUSTER@SECONDS:HEAL_S", val);
            auto colon = val.find(':', at + 1);
            if (colon == std::string::npos)
                return fail("cpart wants CLUSTER@SECONDS:HEAL_S", val);
            size_t cluster = 0;
            double start = 0, healWindow = 0;
            if (!parseSize(val.substr(0, at), cluster))
                return fail("cpart wants an unsigned cluster index",
                            val.substr(0, at));
            if (!parseF64(val.substr(at + 1, colon - at - 1), start) ||
                start < 0)
                return fail("cpart wants a non-negative start time",
                            val.substr(at + 1, colon - at - 1));
            if (!parseF64(val.substr(colon + 1), healWindow) ||
                healWindow <= 0)
                return fail("cpart wants a positive healing window",
                            val.substr(colon + 1));
            ClusterPartition p;
            p.start = secondsToTicks(start);
            p.heal = secondsToTicks(start + healWindow);
            plan.clusterPartitionAt[cluster] = p;
        } else {
            return fail("unknown fault spec key (want seed/drop/corrupt/"
                        "degrade/dropfirst/straggle/kill/ckill/cpart)",
                        key);
        }
    }
    if (plan.dropRate < 0 || plan.dropRate > 1)
        return fail("drop rate must be within [0,1]",
                    strf("%g", plan.dropRate));
    if (plan.corruptRate < 0 || plan.corruptRate > 1)
        return fail("corrupt rate must be within [0,1]",
                    strf("%g", plan.corruptRate));
    if (plan.linkDegrade < 1.0)
        return fail("degrade factor must be >= 1",
                    strf("%g", plan.linkDegrade));
    out = std::move(plan);
    return true;
}

FaultPlan
FaultPlan::parse(const std::string& spec)
{
    FaultPlan plan;
    SpecError err;
    if (!tryParse(spec, plan, err))
        fatal("bad fault spec: %s", err.describe().c_str());
    return plan;
}

std::string
FaultPlan::describe() const
{
    if (empty())
        return "no faults";
    std::string s = strf("seed=%llu drop=%.3g corrupt=%.3g degrade=%.3g",
                         static_cast<unsigned long long>(seed), dropRate,
                         corruptRate, linkDegrade);
    if (dropFirstAttempts)
        s += strf(" dropfirst=%u", dropFirstAttempts);
    for (const auto& [c, f] : stragglers)
        s += strf(" straggle=%zu:%.3g", c, f);
    for (const auto& [c, t] : cardFailAt)
        s += strf(" kill=%zu@%.6gs", c, ticksToSeconds(t));
    for (const auto& [c, t] : clusterKillAt)
        s += strf(" ckill=%zu@%.6gs", c, ticksToSeconds(t));
    for (const auto& [c, p] : clusterPartitionAt)
        s += strf(" cpart=%zu@%.6gs:%.6gs", c, ticksToSeconds(p.start),
                  ticksToSeconds(p.heal - p.start));
    return s;
}

Tick
RetryPolicy::backoffFor(uint32_t attempt) const
{
    Tick b = backoffBase;
    for (uint32_t i = 0; i < attempt && b < backoffMax; ++i)
        b *= 2;
    return std::min(b, backoffMax);
}

std::string
DeadlockReport::describe() const
{
    std::string s = strf("deadlock: %zu card(s) stuck\n", stuck.size());
    for (const auto& c : stuck)
        s += strf("  card %zu at compute %zu/%zu, comm %zu/%zu: %s\n",
                  c.card, c.computeIdx, c.computeTotal, c.commIdx,
                  c.commTotal, c.waitingOn.c_str());
    if (!cycle.empty()) {
        s += "  wait-for cycle:";
        for (size_t c : cycle)
            s += strf(" %zu", c);
        s += strf(" -> %zu\n", cycle.front());
    }
    if (!unmatchedMsgs.empty()) {
        s += "  unmatched message id(s):";
        for (uint64_t m : unmatchedMsgs)
            s += strf(" %llu", static_cast<unsigned long long>(m));
        s += "\n";
    }
    return s;
}

const char*
RunError::kindName(Kind k)
{
    switch (k) {
    case Kind::None:
        return "none";
    case Kind::InvalidProgram:
        return "invalid-program";
    case Kind::Deadlock:
        return "deadlock";
    case Kind::TransferFailed:
        return "transfer-failed";
    case Kind::CardFailed:
        return "card-failed";
    case Kind::ClusterFailed:
        return "cluster-failed";
    }
    return "?";
}

} // namespace hydra
