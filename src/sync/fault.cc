#include "sync/fault.hh"

#include <algorithm>
#include <cstdlib>
#include <sstream>

#include "common/logging.hh"

namespace hydra {

namespace {

/** splitmix64: well-mixed 64-bit hash for order-independent draws. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/** Deterministic uniform draw in [0,1) from (seed, msg, attempt, salt). */
double
hashDraw(uint64_t seed, uint64_t msg, uint32_t attempt, uint64_t salt)
{
    uint64_t h = mix64(seed ^ mix64(msg ^ mix64(attempt ^ salt)));
    // 53 high bits -> double in [0,1).
    return static_cast<double>(h >> 11) * 0x1.0p-53;
}

} // namespace

bool
FaultPlan::empty() const
{
    return dropRate <= 0.0 && corruptRate <= 0.0 && linkDegrade <= 1.0 &&
           dropFirstAttempts == 0 && stragglers.empty() &&
           cardFailAt.empty();
}

bool
FaultPlan::dropsTransfer(uint64_t msg, uint32_t attempt) const
{
    if (attempt < dropFirstAttempts)
        return true;
    if (dropRate <= 0.0)
        return false;
    return hashDraw(seed, msg, attempt, 0x64726f70ULL) < dropRate;
}

bool
FaultPlan::corruptsTransfer(uint64_t msg, uint32_t attempt) const
{
    if (corruptRate <= 0.0)
        return false;
    return hashDraw(seed, msg, attempt, 0x636f7272ULL) < corruptRate;
}

double
FaultPlan::stragglerFactor(size_t card) const
{
    auto it = stragglers.find(card);
    return it == stragglers.end() ? 1.0 : it->second;
}

FaultPlan
FaultPlan::parse(const std::string& spec)
{
    FaultPlan plan;
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
        if (item.empty())
            continue;
        auto eq = item.find('=');
        if (eq == std::string::npos)
            fatal("fault spec item '%s' is not key=value", item.c_str());
        std::string key = item.substr(0, eq);
        std::string val = item.substr(eq + 1);
        if (val.empty())
            fatal("fault spec item '%s' has an empty value", item.c_str());
        if (key == "seed") {
            plan.seed = std::strtoull(val.c_str(), nullptr, 10);
        } else if (key == "drop") {
            plan.dropRate = std::strtod(val.c_str(), nullptr);
        } else if (key == "corrupt") {
            plan.corruptRate = std::strtod(val.c_str(), nullptr);
        } else if (key == "degrade") {
            plan.linkDegrade = std::strtod(val.c_str(), nullptr);
        } else if (key == "dropfirst") {
            plan.dropFirstAttempts = static_cast<uint32_t>(
                std::strtoul(val.c_str(), nullptr, 10));
        } else if (key == "straggle") {
            auto colon = val.find(':');
            if (colon == std::string::npos)
                fatal("straggle wants CARD:FACTOR, got '%s'", val.c_str());
            size_t card = std::strtoul(val.substr(0, colon).c_str(),
                                       nullptr, 10);
            plan.stragglers[card] =
                std::strtod(val.substr(colon + 1).c_str(), nullptr);
        } else if (key == "kill") {
            auto at = val.find('@');
            if (at == std::string::npos)
                fatal("kill wants CARD@SECONDS, got '%s'", val.c_str());
            size_t card = std::strtoul(val.substr(0, at).c_str(),
                                       nullptr, 10);
            double sec = std::strtod(val.substr(at + 1).c_str(), nullptr);
            plan.cardFailAt[card] = secondsToTicks(sec);
        } else {
            fatal("unknown fault spec key '%s' (want seed/drop/corrupt/"
                  "degrade/dropfirst/straggle/kill)",
                  key.c_str());
        }
    }
    if (plan.dropRate < 0 || plan.dropRate > 1 || plan.corruptRate < 0 ||
        plan.corruptRate > 1)
        fatal("fault rates must be within [0,1]");
    if (plan.linkDegrade < 1.0)
        fatal("degrade factor must be >= 1");
    return plan;
}

std::string
FaultPlan::describe() const
{
    if (empty())
        return "no faults";
    std::string s = strf("seed=%llu drop=%.3g corrupt=%.3g degrade=%.3g",
                         static_cast<unsigned long long>(seed), dropRate,
                         corruptRate, linkDegrade);
    if (dropFirstAttempts)
        s += strf(" dropfirst=%u", dropFirstAttempts);
    for (const auto& [c, f] : stragglers)
        s += strf(" straggle=%zu:%.3g", c, f);
    for (const auto& [c, t] : cardFailAt)
        s += strf(" kill=%zu@%.6gs", c, ticksToSeconds(t));
    return s;
}

Tick
RetryPolicy::backoffFor(uint32_t attempt) const
{
    Tick b = backoffBase;
    for (uint32_t i = 0; i < attempt && b < backoffMax; ++i)
        b *= 2;
    return std::min(b, backoffMax);
}

std::string
DeadlockReport::describe() const
{
    std::string s = strf("deadlock: %zu card(s) stuck\n", stuck.size());
    for (const auto& c : stuck)
        s += strf("  card %zu at compute %zu/%zu, comm %zu/%zu: %s\n",
                  c.card, c.computeIdx, c.computeTotal, c.commIdx,
                  c.commTotal, c.waitingOn.c_str());
    if (!cycle.empty()) {
        s += "  wait-for cycle:";
        for (size_t c : cycle)
            s += strf(" %zu", c);
        s += strf(" -> %zu\n", cycle.front());
    }
    if (!unmatchedMsgs.empty()) {
        s += "  unmatched message id(s):";
        for (uint64_t m : unmatchedMsgs)
            s += strf(" %llu", static_cast<unsigned long long>(m));
        s += "\n";
    }
    return s;
}

const char*
RunError::kindName(Kind k)
{
    switch (k) {
    case Kind::None:
        return "none";
    case Kind::InvalidProgram:
        return "invalid-program";
    case Kind::Deadlock:
        return "deadlock";
    case Kind::TransferFailed:
        return "transfer-failed";
    case Kind::CardFailed:
        return "card-failed";
    }
    return "?";
}

} // namespace hydra
