#include "analysis/resources.hh"

#include <cmath>

namespace hydra {

ResourceUsage
u280Available()
{
    return ResourceUsage{1304.0, 2607.0, 9024, 4032, 962};
}

ResourceUsage
estimateResources(const FpgaParams& fpga)
{
    ResourceUsage r;
    double lanes = static_cast<double>(fpga.lanes);
    double log_radix = std::log2(static_cast<double>(fpga.nttRadix));

    // DSP: each NTT lane carries a pipelined modular multiplier whose
    // depth grows with the fused radix (radix-4 fuses two stages); the
    // Barrett MM unit adds ~4 DSP48 per lane; MA and AUT need none.
    double dsp_per_ntt_lane = 9.0 + 2.0 * log_radix; // 13 at radix 4
    double dsp_per_mm_lane = 4.0;
    r.dsp = static_cast<int>(lanes * (dsp_per_ntt_lane + dsp_per_mm_lane));

    // LUT/FF: datapath + twiddle addressing + butterfly routing.
    double lut_per_lane = 1100.0 /*NTT*/ + 300.0 /*MM*/ + 100.0 /*MA*/ +
                          150.0 /*AUT*/;
    double control_luts = 152e3; // DTU, queues, sync control, host shell
    r.lutsK = (lanes * lut_per_lane + control_luts) / 1e3;
    r.ffsK = r.lutsK * 1.38; // pipeline registers track LUT usage

    // BRAM: dual-port data caches feeding each CU's lanes.
    r.bram = static_cast<int>(lanes * kNumCuTypes * 1.5);

    // URAM: single-port evaluation-key cache sized to the scratchpad.
    r.uram = static_cast<int>(
        std::min<double>(962.0, lanes * 1.5));

    return r;
}

} // namespace hydra
