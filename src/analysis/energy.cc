#include "analysis/energy.hh"

namespace hydra {

double
EnergyBreakdown::dynamicShare(double bucket) const
{
    double dynamic = computeJ() + hbmJ + nicJ;
    return dynamic > 0 ? bucket / dynamic : 0.0;
}

EnergyBreakdown
computeEnergy(const RunStats& stats, const EnergyParams& energy,
              const FpgaParams& fpga, size_t cards)
{
    EnergyBreakdown out;
    for (size_t i = 0; i < kNumCuTypes; ++i)
        out.cuJ[i] = static_cast<double>(stats.totalCost.cuOps[i]) *
                     energy.cuOpJ[i];
    out.hbmJ = static_cast<double>(stats.totalCost.hbmBytes) *
               fpga.hbmTrafficFactor * energy.hbmJPerByte;
    out.nicJ = static_cast<double>(stats.netBytes) * energy.nicJPerByte;
    out.staticJ = energy.staticWatts * ticksToSeconds(stats.makespan) *
                  static_cast<double>(cards);
    return out;
}

EnergyParams
asicEnergyParams()
{
    // 7nm-standardized coefficients (RTL-derived in the paper); an
    // ASIC implementation of the same datapath spends roughly 5x less
    // per operation than the FPGA fabric and uses on-die SRAM-backed
    // HBM PHYs.
    EnergyParams p;
    p.cuOpJ[static_cast<size_t>(CuType::Ntt)] = 3.5e-12;
    p.cuOpJ[static_cast<size_t>(CuType::Mm)] = 3.0e-12;
    p.cuOpJ[static_cast<size_t>(CuType::Ma)] = 0.4e-12;
    p.cuOpJ[static_cast<size_t>(CuType::Aut)] = 0.8e-12;
    p.hbmJPerByte = 4e-12 * 8;
    p.nicJPerByte = 0.8e-12 * 8;
    p.staticWatts = 8.0;
    return p;
}

double
edap(double energy_j, double delay_s, double area_mm2)
{
    // Table III units: kJ * s * m^2-normalized (scale constant chosen
    // once so published and measured magnitudes align; the comparison
    // metric is ratio-based, so the constant cancels).
    constexpr double kScale = 1.3e-8;
    return energy_j * delay_s * area_mm2 * kScale;
}

double
hydraCardAreaMm2()
{
    // 512-lane datapath, four CUs + scratchpad + DTU at 7nm; in the
    // same ballpark as single-chip FHE ASICs normalized per card.
    return 160.0;
}

} // namespace hydra
