/**
 * @file
 * Energy accounting (paper Fig. 7) and EDAP efficiency (Table III).
 */

#ifndef HYDRA_ANALYSIS_ENERGY_HH
#define HYDRA_ANALYSIS_ENERGY_HH

#include <array>

#include "sync/executor.hh"

namespace hydra {

/** Joules per component over one run. */
struct EnergyBreakdown
{
    /** Per compute unit (NTT, MM, MA, AUT). */
    std::array<double, kNumCuTypes> cuJ{};
    double hbmJ = 0.0;
    double nicJ = 0.0;
    double staticJ = 0.0;

    double
    computeJ() const
    {
        double s = 0.0;
        for (double j : cuJ)
            s += j;
        return s;
    }

    double total() const { return computeJ() + hbmJ + nicJ + staticJ; }

    /** Fraction of dynamic (non-static) energy spent in one bucket. */
    double dynamicShare(double bucket) const;
};

/**
 * Derive the energy breakdown of a run.
 * @param cards number of cards drawing static power for the makespan
 */
EnergyBreakdown computeEnergy(const RunStats& stats,
                              const EnergyParams& energy,
                              const FpgaParams& fpga, size_t cards);

/** 7nm ASIC-standardized energy coefficients (Table III methodology). */
EnergyParams asicEnergyParams();

/**
 * Energy-Delay-Area product in the paper's (normalized) Table III
 * units.
 * @param area_mm2 total silicon area of the machine
 */
double edap(double energy_j, double delay_s, double area_mm2);

/** 7nm-standardized area of one Hydra card's logic, mm^2. */
double hydraCardAreaMm2();

} // namespace hydra

#endif // HYDRA_ANALYSIS_ENERGY_HH
