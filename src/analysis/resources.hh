/**
 * @file
 * FPGA resource-utilization model (paper Table IV): estimates U280
 * LUT/FF/DSP/BRAM/URAM usage of the Hydra card from its
 * microarchitecture parameters.
 */

#ifndef HYDRA_ANALYSIS_RESOURCES_HH
#define HYDRA_ANALYSIS_RESOURCES_HH

#include "arch/hwparams.hh"

namespace hydra {

/** Absolute resource counts on the card. */
struct ResourceUsage
{
    double lutsK = 0.0;
    double ffsK = 0.0;
    int dsp = 0;
    int bram = 0;
    int uram = 0;
};

/** Available resources of a Xilinx Alveo U280. */
ResourceUsage u280Available();

/**
 * Estimated utilization of a Hydra card: NTT (radix-based butterfly
 * network, DSP-heavy), MM (Barrett), MA, Automorphism (addressing
 * logic only), CU data buffers in BRAM, the key cache in URAM, and the
 * DTU + control fabric.
 */
ResourceUsage estimateResources(const FpgaParams& fpga);

} // namespace hydra

#endif // HYDRA_ANALYSIS_RESOURCES_HH
