/**
 * @file
 * Inter-card communication models.
 *
 * SwitchedNetwork is Hydra's DTU + switch fabric: point-to-point and
 * broadcast transfers that proceed concurrently with compute.
 * HostMediatedNetwork is FAB's path: FPGA -> host (PCIe), host -> host
 * (LAN), host -> FPGA (PCIe), with software synchronization overhead
 * and no compute/communication overlap (paper Section II-B1, V-D).
 */

#ifndef HYDRA_ARCH_NETWORK_HH
#define HYDRA_ARCH_NETWORK_HH

#include <cstdint>
#include <memory>

#include "arch/hwparams.hh"

namespace hydra {

/** Abstract transfer-time model between cards of a cluster. */
class NetworkModel
{
  public:
    virtual ~NetworkModel() = default;

    /**
     * Deep copy.  Long-lived holders (e.g. ClusterExecutor) clone the
     * model instead of keeping a reference, so a temporary network
     * passed to a constructor can never dangle.
     */
    virtual std::unique_ptr<NetworkModel> clone() const = 0;

    /** Wire time of a point-to-point transfer of `bytes`. */
    virtual Tick transferTime(uint64_t bytes, size_t src,
                              size_t dst) const = 0;

    /** Wire time of a broadcast from `src` to every other card. */
    virtual Tick broadcastTime(uint64_t bytes, size_t src,
                               size_t n_cards) const = 0;

    /** Receiver-side setup (DMA config / host driver) before ready. */
    virtual Tick setupLatency() const = 0;

    /** Whether transfers overlap with computation (independent DTU). */
    virtual bool overlapsCompute() const = 0;

    /** Per-step host synchronization overhead (Procedure 2 rollup). */
    virtual Tick stepSyncLatency() const = 0;
};

/** Hydra: QSFP + switch, DTU-driven, overlapping. */
class SwitchedNetwork : public NetworkModel
{
  public:
    SwitchedNetwork(const NetParams& net, const ClusterConfig& cluster)
        : net_(net), cluster_(cluster)
    {
    }

    std::unique_ptr<NetworkModel>
    clone() const override
    {
        return std::make_unique<SwitchedNetwork>(*this);
    }

    Tick transferTime(uint64_t bytes, size_t src,
                      size_t dst) const override;
    Tick broadcastTime(uint64_t bytes, size_t src,
                       size_t n_cards) const override;
    Tick setupLatency() const override { return net_.dmaConfigLatency; }
    bool overlapsCompute() const override { return true; }

    /** Completion signal only: negligible (paper Section IV-D). */
    Tick
    stepSyncLatency() const override
    {
        return net_.switchLatency;
    }

  private:
    NetParams net_;
    ClusterConfig cluster_;
};

/** FAB: host-forwarded transfers, blocking, software-synchronized. */
class HostMediatedNetwork : public NetworkModel
{
  public:
    HostMediatedNetwork(const HostNetParams& net,
                        const ClusterConfig& cluster)
        : net_(net), cluster_(cluster)
    {
    }

    std::unique_ptr<NetworkModel>
    clone() const override
    {
        return std::make_unique<HostMediatedNetwork>(*this);
    }

    Tick transferTime(uint64_t bytes, size_t src,
                      size_t dst) const override;
    Tick broadcastTime(uint64_t bytes, size_t src,
                       size_t n_cards) const override;
    Tick setupLatency() const override { return net_.hostLatency; }
    bool overlapsCompute() const override { return false; }
    Tick stepSyncLatency() const override { return net_.hostLatency; }

  private:
    HostNetParams net_;
    ClusterConfig cluster_;
};

} // namespace hydra

#endif // HYDRA_ARCH_NETWORK_HH
