/**
 * @file
 * Hardware parameters of the modelled platforms (paper Section IV/V).
 *
 * The Hydra card is a Xilinx Alveo U280: 512-lane compute units (NTT,
 * MM, MA, Automorphism), HBM2 (~460 GB/s), QSFP28 networking through
 * switches, and a DTU that moves data independently of compute.  The
 * FAB baseline shares the FPGA platform but routes all inter-card data
 * through host CPUs (PCIe + LAN) with software synchronization.
 */

#ifndef HYDRA_ARCH_HWPARAMS_HH
#define HYDRA_ARCH_HWPARAMS_HH

#include <cstddef>
#include <cstdint>
#include <string>

#include "sim/eventq.hh"

namespace hydra {

/** Compute-unit kinds on a card (paper Fig. 4). */
enum class CuType : uint8_t
{
    Ntt,
    Mm,
    Ma,
    Aut,
    NumTypes
};

constexpr size_t kNumCuTypes = static_cast<size_t>(CuType::NumTypes);

const char* cuName(CuType t);

/** Per-card microarchitecture parameters. */
struct FpgaParams
{
    /** Card clock in Hz (U280 FHE designs close ~300 MHz). */
    double clockHz = 300e6;
    /** Operands consumed per CU per cycle ("512 operands are loaded"). */
    size_t lanes = 512;
    /** NTT butterfly radix (paper: radix-4 for N = 2^16). */
    size_t nttRadix = 4;
    /** HBM bandwidth in bytes/s (U280 HBM2: ~460 GB/s). */
    double hbmBytesPerSec = 460e9;
    /** On-chip scratchpad size in bytes (MAD-style caching). */
    size_t scratchpadBytes = 32ull << 20;
    /**
     * HBM traffic multiplier over compulsory traffic.  1.0 models the
     * MAD-style scratchpad reuse Hydra adopts; Poseidon (no caching
     * strategy) re-fetches operands and sits near 3.
     */
    double hbmTrafficFactor = 1.0;
    /**
     * Capacity-aware re-fetch penalty: extra traffic factor added per
     * unit of working-set overflow beyond the scratchpad (0 disables
     * the capacity model; used by the MAD ablation).
     */
    double scratchpadOverflowPenalty = 0.0;
    /**
     * Throughput derating vs the ideal pipeline (routing congestion,
     * stalls).  Multiplies compute cycles.
     */
    double computeDerate = 1.0;

    double cycleSeconds() const { return 1.0 / clockHz; }

    Tick
    cycleTicks() const
    {
        return static_cast<Tick>(1e12 / clockHz);
    }
};

/** Inter-card network parameters (Hydra DTU + switches). */
struct NetParams
{
    /** Per-port line rate in bytes/s (QSFP28 100 GbE). */
    double linkBytesPerSec = 100e9 / 8.0;
    /** Per-hop switch latency. */
    Tick switchLatency = secondsToTicks(1e-6);
    /** DTU instruction parse + DMA configuration time. */
    Tick dmaConfigLatency = secondsToTicks(0.5e-6);
    /** Extra hops when crossing servers (top-of-rack switch). */
    int crossServerExtraHops = 2;
};

/** FAB-style host-mediated communication parameters. */
struct HostNetParams
{
    /** PCIe Gen3 x16 effective bandwidth (paper Section V-A). */
    double pcieBytesPerSec = 16e9;
    /** 10 Gb/s LAN between hosts. */
    double lanBytesPerSec = 10e9 / 8.0;
    /** Host software overhead per transfer (driver + sync). */
    Tick hostLatency = secondsToTicks(10e-6);
};

/** Per-operation energy coefficients. */
struct EnergyParams
{
    /** Energy per lane-operation per CU type, joules. */
    double cuOpJ[kNumCuTypes] = {
        28e-12, // NTT butterfly stage op (DSP-heavy)
        22e-12, // MM (Barrett)
        3e-12,  // MA
        5e-12,  // Automorphism (addressing only)
    };
    /** HBM access energy, joules per byte (~3.5 pJ/bit). */
    double hbmJPerByte = 3.5e-12 * 8;
    /** NIC/DTU transfer energy, joules per byte (low-power hardcore). */
    double nicJPerByte = 0.8e-12 * 8;
    /** Static power per card, watts. */
    double staticWatts = 25.0;
};

/** Cluster topology. */
struct ClusterConfig
{
    size_t servers = 1;
    size_t cardsPerServer = 1;

    size_t totalCards() const { return servers * cardsPerServer; }

    size_t
    serverOf(size_t card) const
    {
        return card / cardsPerServer;
    }
};

/** Named Hydra prototypes from the paper (Section V-A). */
ClusterConfig hydraS();
ClusterConfig hydraM();
ClusterConfig hydraL();

} // namespace hydra

#endif // HYDRA_ARCH_HWPARAMS_HH
