#include "arch/opcost.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace hydra {

const char*
cuName(CuType t)
{
    switch (t) {
      case CuType::Ntt: return "NTT";
      case CuType::Mm: return "MM";
      case CuType::Ma: return "MA";
      case CuType::Aut: return "AUT";
      default: break;
    }
    panic("unknown CuType %d", static_cast<int>(t));
}

ClusterConfig
hydraS()
{
    return ClusterConfig{1, 1};
}

ClusterConfig
hydraM()
{
    return ClusterConfig{1, 8};
}

ClusterConfig
hydraL()
{
    return ClusterConfig{8, 8};
}

OpCostModel::OpCostModel(const FpgaParams& fpga, size_t n, size_t dnum)
    : fpga_(fpga), n_(n), dnum_(dnum)
{
    HYDRA_ASSERT(std::has_single_bit(n), "ring dimension power of two");
    logN_ = static_cast<size_t>(std::countr_zero(n));
    HYDRA_ASSERT(dnum >= 1, "dnum >= 1");
}

uint64_t
OpCostModel::nttPasses() const
{
    // Radix-r NTT fuses log2(r) radix-2 stages per pass.
    size_t log_radix = std::countr_zero(fpga_.nttRadix);
    return (logN_ + log_radix - 1) / log_radix;
}

uint64_t
OpCostModel::ciphertextBytes(size_t limbs) const
{
    return 2ull * limbs * n_ * sizeof(uint64_t);
}

uint64_t
OpCostModel::keyBytes(size_t limbs) const
{
    size_t alpha = (limbs + dnum_ - 1) / dnum_; // special primes
    size_t beta = limbs + alpha;
    return 2ull * dnum_ * beta * n_ * sizeof(uint64_t);
}

OpCost
OpCostModel::cost(HeOpType op, size_t limbs) const
{
    HYDRA_ASSERT(limbs >= 1, "limbs >= 1");
    const uint64_t pass = passCycles();
    const uint64_t ntt_p = nttPasses();
    const uint64_t limb_bytes = n_ * sizeof(uint64_t);
    size_t l = limbs;
    size_t alpha = (l + dnum_ - 1) / dnum_;
    size_t beta = l + alpha;

    // Accumulate passes per CU; convert to cycles/ops at the end.
    uint64_t p_ntt = 0, p_mm = 0, p_ma = 0, p_aut = 0;
    uint64_t bytes = 0;

    auto keyswitch = [&]() {
        // Per digit: lift (MA), beta forward NTTs, 2*beta MM (b and a
        // key mults), 2*beta MA (accumulate).
        p_ma += dnum_ * beta;
        p_ntt += dnum_ * beta * ntt_p;
        p_mm += 2 * dnum_ * beta;
        p_ma += 2 * dnum_ * beta;
        // ModDown of the two accumulators: INTT of alpha special limbs,
        // NTT of correction into l limbs, MM+MA per limb.
        p_ntt += 2 * (alpha + l) * ntt_p;
        p_mm += 2 * l;
        p_ma += 2 * l;
        // Keys are streamed from HBM; digits stay in scratchpad.
        bytes += keyBytes(l);
    };

    switch (op) {
      case HeOpType::HAdd:
        p_ma += 2 * l;
        bytes += 3 * ciphertextBytes(l); // read a, b; write out
        break;
      case HeOpType::PMult:
        p_mm += 2 * l;
        bytes += 2 * ciphertextBytes(l) + l * limb_bytes;
        break;
      case HeOpType::CMult:
        // Tensor product (4 MM + 1 MA for the cross term), INTT of d2,
        // keyswitch, two final adds.
        p_mm += 4 * l;
        p_ma += 1 * l;
        p_ntt += l * ntt_p; // d2 to coefficient domain
        keyswitch();
        p_ma += 2 * l;
        bytes += 3 * ciphertextBytes(l);
        break;
      case HeOpType::Rescale:
        // Per polynomial: INTT last limb, NTT correction into l-1
        // limbs, MM+MA per remaining limb.
        p_ntt += 2 * (1 + (l - 1)) * ntt_p;
        p_mm += 2 * (l - 1);
        p_ma += 2 * (l - 1);
        bytes += 2 * ciphertextBytes(l);
        break;
      case HeOpType::Rotate:
      case HeOpType::Conjugate:
        p_aut += 2 * l;           // permute both polynomials
        p_ntt += 2 * l * ntt_p;   // to coeff domain for the automorphism
        keyswitch();
        p_ma += 2 * l;
        bytes += 2 * ciphertextBytes(l);
        break;
      case HeOpType::KeySwitch:
        keyswitch();
        bytes += 2 * ciphertextBytes(l);
        break;
      case HeOpType::ModRaise:
        p_ntt += 2 * (1 + l) * ntt_p;
        p_ma += 2 * l;
        bytes += ciphertextBytes(1) + ciphertextBytes(l);
        break;
      default:
        panic("no cost model for op %d", static_cast<int>(op));
    }

    OpCost c;
    // The four CUs are separate pipelines operating concurrently
    // (paper Fig. 4); with double-buffered operands the slowest unit
    // governs the op's compute time.
    uint64_t bottleneck_passes =
        std::max(std::max(p_ntt, p_mm), std::max(p_ma, p_aut));
    c.cycles = static_cast<uint64_t>(
        static_cast<double>(bottleneck_passes * pass) *
        fpga_.computeDerate);
    c.hbmBytes = bytes;
    c.cuOps[static_cast<size_t>(CuType::Ntt)] = p_ntt * n_;
    c.cuOps[static_cast<size_t>(CuType::Mm)] = p_mm * n_;
    c.cuOps[static_cast<size_t>(CuType::Ma)] = p_ma * n_;
    c.cuOps[static_cast<size_t>(CuType::Aut)] = p_aut * n_;
    c.limbs = static_cast<uint32_t>(l);
    return c;
}

uint64_t
OpCostModel::workingSetBytes(size_t limbs) const
{
    // Two ciphertext operands plus one digit buffer extended to the
    // special primes, all resident during a keyswitch-bearing op.
    size_t alpha = (limbs + dnum_ - 1) / dnum_;
    return 2 * ciphertextBytes(limbs) +
           (limbs + alpha) * n_ * sizeof(uint64_t);
}

double
OpCostModel::trafficFactor(size_t limbs) const
{
    double factor = fpga_.hbmTrafficFactor;
    if (fpga_.scratchpadOverflowPenalty > 0.0 && limbs >= 1) {
        double ws = static_cast<double>(workingSetBytes(limbs));
        double cap = static_cast<double>(fpga_.scratchpadBytes);
        if (ws > cap)
            factor += fpga_.scratchpadOverflowPenalty * (ws / cap - 1.0);
    }
    return factor;
}

OpCost
OpCostModel::mixCost(const OpMix& mix, size_t limbs) const
{
    OpCost c;
    for (uint32_t i = 0; i < mix.rotations; ++i)
        c += cost(HeOpType::Rotate, limbs);
    for (uint32_t i = 0; i < mix.cmults; ++i)
        c += cost(HeOpType::CMult, limbs);
    for (uint32_t i = 0; i < mix.pmults; ++i)
        c += cost(HeOpType::PMult, limbs);
    for (uint32_t i = 0; i < mix.hadds; ++i)
        c += cost(HeOpType::HAdd, limbs);
    return c;
}

OpCost
counterCost(const OpCostModel& model, const OpCounter& counter)
{
    OpCost total;
    for (size_t i = 0; i < kNumHeOpTypes; ++i) {
        HeOpType op = static_cast<HeOpType>(i);
        if (op == HeOpType::KeySwitch)
            continue; // folded into Rotate/Conjugate/CMult
        uint64_t count = counter.count(op);
        if (!count)
            continue;
        size_t avg_limbs = static_cast<size_t>(
            (counter.limbSum(op) + count / 2) / count);
        avg_limbs = std::max<size_t>(avg_limbs, 1);
        OpCost c = model.cost(op, avg_limbs);
        c.cycles *= count;
        c.hbmBytes *= count;
        for (auto& x : c.cuOps)
            x *= count;
        total += c;
    }
    return total;
}

Tick
OpCostModel::latency(const OpCost& c) const
{
    double compute_s = static_cast<double>(c.cycles) * fpga_.cycleSeconds();
    double memory_s = static_cast<double>(c.hbmBytes) *
                      trafficFactor(c.limbs) / fpga_.hbmBytesPerSec;
    return secondsToTicks(std::max(compute_s, memory_s));
}

} // namespace hydra
