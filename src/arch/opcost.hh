/**
 * @file
 * Ciphertext-level operation cost model.
 *
 * Decomposes every HeOp into basic-operator passes over the four CUs
 * (paper Section IV-B: "all FHE operations can be decomposed into four
 * basic operators"), counts compulsory HBM traffic, and derives per-op
 * latency as the roofline max of compute and memory time.
 */

#ifndef HYDRA_ARCH_OPCOST_HH
#define HYDRA_ARCH_OPCOST_HH

#include <array>
#include <cstdint>

#include "arch/hwparams.hh"
#include "trace/heop.hh"

namespace hydra {

/** Cost of one ciphertext-level operation on one card. */
struct OpCost
{
    /** Compute cycles (after derating). */
    uint64_t cycles = 0;
    /** Compulsory HBM bytes moved (before the traffic factor). */
    uint64_t hbmBytes = 0;
    /** Element operations per CU type (for the energy model). */
    std::array<uint64_t, kNumCuTypes> cuOps{};
    /** Active limb count (capacity model input); max on aggregation. */
    uint32_t limbs = 0;

    OpCost&
    operator+=(const OpCost& o)
    {
        cycles += o.cycles;
        hbmBytes += o.hbmBytes;
        for (size_t i = 0; i < kNumCuTypes; ++i)
            cuOps[i] += o.cuOps[i];
        limbs = limbs > o.limbs ? limbs : o.limbs;
        return *this;
    }
};

/**
 * Cost model for one (ring dimension, keyswitch digit count, card)
 * combination.
 */
class OpCostModel
{
  public:
    /**
     * @param fpga card microarchitecture
     * @param n ring dimension (paper: 2^16)
     * @param dnum keyswitching digit count (hybrid keyswitch)
     */
    OpCostModel(const FpgaParams& fpga, size_t n, size_t dnum = 4);

    /** Cost of one operation at `limbs` active modulus-chain primes. */
    OpCost cost(HeOpType op, size_t limbs) const;

    /** Aggregate cost of an OpMix executed at `limbs`. */
    OpCost mixCost(const OpMix& mix, size_t limbs) const;

    /** Latency of `c` on the card: max(compute, HBM) roofline. */
    Tick latency(const OpCost& c) const;

    /**
     * Capacity-aware HBM traffic factor at `limbs` active primes: the
     * base factor plus the configured penalty once the op working set
     * (ciphertext operands + keyswitch digits) overflows the
     * scratchpad (MAD's capacity effect; 0-penalty cards ignore it).
     */
    double trafficFactor(size_t limbs) const;

    /** Working-set estimate of one keyswitch-bearing op at `limbs`. */
    uint64_t workingSetBytes(size_t limbs) const;

    /** Convenience: latency of one op. */
    Tick
    opLatency(HeOpType op, size_t limbs) const
    {
        return latency(cost(op, limbs));
    }

    /** Serialized ciphertext size at `limbs` (two polynomials). */
    uint64_t ciphertextBytes(size_t limbs) const;

    /** Keyswitching-key size at `limbs`. */
    uint64_t keyBytes(size_t limbs) const;

    const FpgaParams& fpga() const { return fpga_; }
    size_t n() const { return n_; }
    size_t dnum() const { return dnum_; }

  private:
    /** Cycles for one streaming pass over a single limb. */
    uint64_t passCycles() const { return n_ / fpga_.lanes; }

    /** Passes for one NTT of one limb at the configured radix. */
    uint64_t nttPasses() const;

    FpgaParams fpga_;
    size_t n_;
    size_t logN_;
    size_t dnum_;
};

/**
 * Price an OpCounter recorded by the functional CKKS evaluator: each
 * ciphertext-level op is charged at its average recorded limb count.
 * Bare KeySwitch records are skipped (already embedded in the Rotate /
 * Conjugate / CMult costs).  This is the bridge that lets a real
 * (laptop-scale) homomorphic run be re-priced at accelerator scale.
 */
OpCost counterCost(const OpCostModel& model, const OpCounter& counter);

} // namespace hydra

#endif // HYDRA_ARCH_OPCOST_HH
