#include "arch/network.hh"

#include <cmath>

namespace hydra {

Tick
SwitchedNetwork::transferTime(uint64_t bytes, size_t src, size_t dst) const
{
    int hops = 1;
    if (cluster_.serverOf(src) != cluster_.serverOf(dst))
        hops += net_.crossServerExtraHops;
    double wire = static_cast<double>(bytes) / net_.linkBytesPerSec;
    return secondsToTicks(wire) +
           static_cast<Tick>(hops) * net_.switchLatency;
}

Tick
SwitchedNetwork::broadcastTime(uint64_t bytes, size_t src,
                               size_t n_cards) const
{
    // The switch replicates the stream: one egress serialization from
    // the sender plus the worst-case hop count in the cluster.
    (void)src;
    int hops = 1;
    if (n_cards > cluster_.cardsPerServer)
        hops += net_.crossServerExtraHops;
    double wire = static_cast<double>(bytes) / net_.linkBytesPerSec;
    return secondsToTicks(wire) +
           static_cast<Tick>(hops) * net_.switchLatency;
}

Tick
HostMediatedNetwork::transferTime(uint64_t bytes, size_t src,
                                  size_t dst) const
{
    // Directly paired boards (2i, 2i+1) keep FAB's point-to-point
    // network link.  Everything else goes FPGA -> host over PCIe, then
    // host -> host over the LAN when the cards sit on different hosts,
    // then host -> FPGA over PCIe.
    double b = static_cast<double>(bytes);
    bool same_server = cluster_.serverOf(src) == cluster_.serverOf(dst);
    if ((src ^ 1) == dst && same_server)
        return secondsToTicks(b / net_.lanBytesPerSec) + net_.hostLatency;

    double t = 2.0 * b / net_.pcieBytesPerSec; // in and out over PCIe
    if (!same_server)
        t += b / net_.lanBytesPerSec; // host-to-host LAN hop
    return secondsToTicks(t) + 2 * net_.hostLatency;
}

Tick
HostMediatedNetwork::broadcastTime(uint64_t bytes, size_t src,
                                   size_t n_cards) const
{
    // No switch replication: the host reads the data once over PCIe,
    // unicasts it to each co-located card over PCIe, and to each remote
    // server once over the LAN plus a PCIe write per remote card.
    double b = static_cast<double>(bytes);
    size_t per_server = cluster_.cardsPerServer;
    size_t servers = (n_cards + per_server - 1) / per_server;
    size_t local_targets = std::min(n_cards - 1, per_server - 1);
    size_t remote_targets = n_cards - 1 - local_targets;
    double t = b / net_.pcieBytesPerSec; // ingest from the source card
    t += static_cast<double>(local_targets) * b / net_.pcieBytesPerSec;
    if (servers > 1) {
        t += static_cast<double>(servers - 1) * b / net_.lanBytesPerSec;
        t += static_cast<double>(remote_targets) * b /
             net_.pcieBytesPerSec;
    }
    (void)src;
    return secondsToTicks(t) + 2 * net_.hostLatency;
}

} // namespace hydra
