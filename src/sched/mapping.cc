#include "sched/mapping.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"
#include "sched/lower.hh"

namespace hydra {

namespace {

size_t
pow2Floor(size_t v)
{
    return v == 0 ? 0 : std::bit_floor(v);
}

/** The representative op mix of one whole bootstrap (energy model). */
OpMix
bootstrapCostMix()
{
    return OpMix{24, 32, 48, 64};
}

} // namespace

StepMapper::StepMapper(const OpCostModel& cost, const NetworkModel& net,
                       size_t cards, size_t log_slots,
                       MappingConfig config)
    : cost_(cost), net_(net), cards_(cards), logSlots_(log_slots),
      config_(config)
{
    HYDRA_ASSERT(cards_ >= 1, "need at least one card");
}

LogicalPlan
StepMapper::planStep(const Step& step) const
{
    PlanBuilder pb(cards_);
    pb.setLogSlots(logSlots_);
    planStepInto(pb, step);
    return pb.take();
}

Program
StepMapper::mapStep(const Step& step) const
{
    return lowerPlan(planStep(step), cost_, net_, config_);
}

void
StepMapper::mapStepInto(ProgramBuilder& pb, const Step& step) const
{
    lowerPlanInto(pb, planStep(step), cost_, net_, config_);
}

void
StepMapper::planStepInto(PlanBuilder& pb, const Step& step) const
{
    switch (step.kind) {
      case ProcKind::ConvBN:
      case ProcKind::Pooling:
      case ProcKind::FC:
      case ProcKind::PCMM:
      case ProcKind::CCMM:
      case ProcKind::Norm:
        planUniform(pb, step);
        break;
      case ProcKind::NonLinear:
        planNonLinear(pb, step);
        break;
      case ProcKind::Bootstrap:
        planBootstrap(pb, step);
        break;
      default:
        panic("unmapped ProcKind %d", static_cast<int>(step.kind));
    }
}

void
StepMapper::planUniform(PlanBuilder& pb, const Step& step) const
{
    size_t units = step.effectiveUnits();
    size_t c_n = cards_;
    uint32_t label = pb.label(procName(step.kind));
    size_t limbs = step.limbs;

    // Unit share of card c, split into R chunk rounds.
    auto share = [&](size_t c) {
        return units / c_n + (c < units % c_n ? 1 : 0);
    };
    size_t max_share = share(0);
    size_t rounds = std::min<size_t>(config_.maxChunksPerCard,
                                     std::max<size_t>(1, max_share));
    auto chunk_units = [&](size_t c, size_t k) {
        size_t s = share(c);
        return s / rounds + (k < s % rounds ? 1 : 0);
    };

    // Compute chunks (CT_i: convolution inputs are local).
    std::vector<std::vector<uint64_t>> chunk_id(
        c_n, std::vector<uint64_t>(rounds, 0));
    std::vector<uint64_t> last_id(c_n, 0);
    for (size_t c = 0; c < c_n; ++c) {
        for (size_t k = 0; k < rounds; ++k) {
            size_t u = chunk_units(c, k);
            if (!u)
                continue;
            chunk_id[c][k] =
                pb.addMixRepeat(c, step.perUnit, u, limbs, label);
            last_id[c] = chunk_id[c][k];
        }
    }

    if (c_n == 1 || step.agg == AggKind::None)
        return;

    if (step.agg == AggKind::BroadcastEach) {
        // Fig. 2: per round, every card broadcasts the output
        // ciphertexts its chunk produced, in card order; transfers
        // overlap the next round's compute.  Unit results multiplex
        // into step.outputCts ciphertexts total.
        auto out_share = [&](size_t c) {
            return step.outputCts / c_n +
                   (c < step.outputCts % c_n ? 1 : 0);
        };
        auto out_chunk = [&](size_t c, size_t k) {
            size_t s = out_share(c);
            return s / rounds + (k < s % rounds ? 1 : 0);
        };
        for (size_t k = 0; k < rounds; ++k) {
            for (size_t s = 0; s < c_n; ++s) {
                size_t cts = out_chunk(s, k);
                if (!cts)
                    continue;
                // Anchor the send on this round's compute chunk (or the
                // card's last chunk if this round had no units).
                uint64_t after = chunk_id[s][k] ? chunk_id[s][k]
                                                : last_id[s];
                pb.broadcastFrom(s, cts, limbs, after);
            }
        }
        return;
    }

    // ReduceTree: pairwise tree reduction of partial results to card 0,
    // then one broadcast so every card holds the combined output.
    for (size_t stride = 1; stride < c_n; stride <<= 1) {
        for (size_t dst = 0; dst + stride < c_n; dst += 2 * stride) {
            size_t src = dst + stride;
            uint64_t msg = pb.sendTo(src, dst, 1, limbs, last_id[src]);
            last_id[dst] = pb.addOpList(dst, {{HeOpType::HAdd, 1}},
                                        limbs, label, {msg});
        }
    }
    uint64_t msg = pb.broadcastFrom(0, 1, limbs, last_id[0]);
    for (size_t c = 1; c < c_n; ++c)
        pb.addOpList(c, {}, limbs, label, {msg});
}

void
StepMapper::planNonLinear(PlanBuilder& pb, const Step& step) const
{
    size_t units = step.effectiveUnits();
    if (cards_ == 1 || units >= cards_) {
        planUniform(pb, step);
        return;
    }
    // Fewer evaluations than cards: split each polynomial evaluation
    // over a card group (Alg. 1).
    size_t group = pow2Floor(cards_ / units);
    uint32_t label = pb.label(procName(step.kind));
    size_t degree = step.polyDegree ? step.polyDegree : 15;
    for (size_t u = 0; u < units; ++u)
        planPolyEvalTree(pb, u * group, group, degree, step.limbs,
                         label);
}

void
StepMapper::planPolyEvalTree(PlanBuilder& pb, size_t base, size_t group,
                             size_t degree, size_t limbs,
                             uint32_t label) const
{
    if (group <= 1 || degree < 4) {
        // Whole evaluation on one node.
        uint64_t terms = degree + 1;
        uint64_t cms = degree >= 2 ? degree / 2 + 1 : 0;
        pb.addOpList(base,
                     {{HeOpType::CMult, cms},
                      {HeOpType::PMult, terms},
                      {HeOpType::HAdd, terms}},
                     limbs, label);
        return;
    }

    size_t poly_depth = std::bit_width(degree); // ceil(log2(deg+1))
    size_t card_depth = std::countr_zero(pow2Floor(group));
    size_t tree_depth =
        std::min(poly_depth >= 2 ? poly_depth - 2 : 0, card_depth);
    size_t m = size_t{1} << tree_depth;

    std::vector<uint64_t> last_id(m, 0);
    std::vector<std::vector<uint64_t>> wait_msgs(m);

    // Phase A: power ladder x^2, x^4, ... distributed to lower-numbered
    // nodes; each level's product is forwarded to the mirror node.
    for (size_t i = 0; i < m; ++i)
        last_id[i] = pb.addOpList(base + i, {{HeOpType::CMult, 1}},
                                  limbs, label); // x^2
    for (size_t j = 1; j <= tree_depth; ++j) {
        size_t cnt = m >> j;
        for (size_t i = 0; i < cnt; ++i) {
            last_id[i] = pb.addOpList(base + i, {{HeOpType::CMult, 1}},
                                      limbs, label);
            size_t dst = i + cnt;
            uint64_t msg =
                pb.sendTo(base + i, base + dst, 1, limbs, last_id[i]);
            wait_msgs[dst].push_back(msg);
        }
    }

    // Phase B: each node evaluates its sub-polynomial with the shared
    // powers (add_and_multiply_const / multiply_and_add of Alg. 1).
    uint64_t terms = (degree + m) / m;
    uint64_t local_cms =
        std::max<uint64_t>(1, (degree >= 2 ? degree / 2 : 1) / m);
    for (size_t i = 0; i < m; ++i)
        last_id[i] = pb.addOpList(base + i,
                                  {{HeOpType::CMult, local_cms},
                                   {HeOpType::PMult, terms},
                                   {HeOpType::HAdd, terms}},
                                  limbs, label,
                                  std::move(wait_msgs[i]));

    // Phase C: tree merge -- the upper node multiplies by the splitting
    // power and sends, the lower node accumulates (Alg. 1 final loop).
    for (size_t num = m; num > 1; num /= 2) {
        size_t half = num / 2;
        for (size_t i = 0; i < half; ++i) {
            size_t upper = i + half;
            uint64_t mul_id = pb.addOpList(
                base + upper, {{HeOpType::CMult, 1}}, limbs, label);
            uint64_t msg =
                pb.sendTo(base + upper, base + i, 1, limbs, mul_id);
            last_id[i] = pb.addOpList(base + i, {{HeOpType::HAdd, 1}},
                                      limbs, label, {msg});
        }
    }
}

DftPlan
StepMapper::dftPlanFor(size_t group_cards, size_t limbs) const
{
    DftOpTimes t = DftOpTimes::fromCostModel(cost_, net_, limbs);
    return optimizeDftPlan(config_.dftLevels, logSlots_, group_cards, t);
}

void
StepMapper::planDftLevels(PlanBuilder& pb, size_t base, size_t group,
                          const DftPlan& plan, size_t limbs,
                          uint32_t label) const
{
    for (const auto& lvl : plan.levels) {
        uint64_t b = lvl.bs;
        uint64_t gs_s = lvl.gsPerNode(group);
        std::vector<uint64_t> last_id(group, 0);
        for (size_t i = 0; i < group; ++i) {
            size_t card = base + i;
            // Baby steps are replicated on every node (Section III-B
            // point (1): aggregating distributed bs is inefficient).
            pb.addOpList(card, {{HeOpType::Rotate, b}}, limbs, label);
            // Giant steps assigned to this node + local accumulation.
            last_id[i] = pb.addOpList(
                card,
                {{HeOpType::PMult, gs_s * b},
                 {HeOpType::HAdd, gs_s * (b - 1) + (gs_s - 1)},
                 {HeOpType::Rotate, gs_s}},
                limbs, label);
        }
        if (group > 1) {
            // Tree aggregation of the per-node partial sums (Fig. 3(d)).
            for (size_t num = group; num > 1; num /= 2) {
                size_t half = num / 2;
                for (size_t i = 0; i < half; ++i) {
                    size_t upper = i + half;
                    uint64_t msg = pb.sendTo(base + upper, base + i, 1,
                                             limbs, last_id[upper]);
                    last_id[i] =
                        pb.addOpList(base + i, {{HeOpType::HAdd, 1}},
                                     limbs, label, {msg});
                }
            }
            // The leader redistributes the level result for the next
            // level's baby steps.
            for (size_t i = 1; i < group; ++i) {
                uint64_t msg =
                    pb.sendTo(base, base + i, 1, limbs, last_id[0]);
                pb.addOpList(base + i, {}, limbs, label, {msg});
            }
        }
    }
}

void
StepMapper::planBootstrap(PlanBuilder& pb, const Step& step) const
{
    size_t boots = std::max<size_t>(1, step.parallelism);
    uint32_t label = pb.label(procName(step.kind));

    size_t group = boots >= cards_ ? 1 : pow2Floor(cards_ / boots);
    if (group <= 1) {
        // Data-parallel: each card refreshes its share locally.
        for (size_t c = 0; c < cards_; ++c) {
            size_t s = boots / cards_ + (c < boots % cards_ ? 1 : 0);
            if (s)
                pb.addBootstrapLocal(c, bootstrapCostMix(), s,
                                     step.limbs, label);
        }
        return;
    }

    DftPlan plan = dftPlanFor(group, step.limbs);

    size_t n_groups = std::min(boots, cards_ / group);
    for (size_t g = 0; g < n_groups; ++g) {
        size_t base = g * group;
        size_t reps = boots / n_groups + (g < boots % n_groups ? 1 : 0);
        for (size_t r = 0; r < reps; ++r) {
            // CoeffToSlot.
            planDftLevels(pb, base, group, plan, step.limbs, label);
            // EvaExp (Alg. 1 tree over the group).
            planPolyEvalTree(pb, base, group, config_.evalExpDegree,
                             step.limbs, label);
            // Double-angle + sine extraction on the group leader
            // (limited parallelism: the paper's Boot scaling is the
            // most modest of all procedures).  rot/ha/pm are timed but
            // only the CMult iterations carry hardware cost.
            pb.addOpList(base,
                         {{HeOpType::CMult, config_.dafIters},
                          {HeOpType::Rotate, 1, true, false},
                          {HeOpType::HAdd, 1, true, false},
                          {HeOpType::PMult, 1, true, false}},
                         step.limbs, label);
            // SlotToCoeff.
            planDftLevels(pb, base, group, plan, step.limbs, label);
        }
    }
}

Tick
StepMapper::bootstrapLocalTime(size_t limbs) const
{
    return bootstrapLocalTicks(cost_, net_, config_, logSlots_, limbs);
}

} // namespace hydra
