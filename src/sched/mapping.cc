#include "sched/mapping.hh"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace hydra {

namespace {

/** OpCost scaled by a repetition count. */
OpCost
scaled(OpCost c, uint64_t count)
{
    c.cycles *= count;
    c.hbmBytes *= count;
    for (auto& x : c.cuOps)
        x *= count;
    return c;
}

size_t
pow2Floor(size_t v)
{
    return v == 0 ? 0 : std::bit_floor(v);
}

} // namespace

StepMapper::StepMapper(const OpCostModel& cost, const NetworkModel& net,
                       size_t cards, size_t log_slots,
                       MappingConfig config)
    : cost_(cost), net_(net), cards_(cards), logSlots_(log_slots),
      config_(config)
{
    HYDRA_ASSERT(cards_ >= 1, "need at least one card");
}

Tick
StepMapper::unitLatency(const OpMix& mix, size_t limbs) const
{
    return cost_.latency(cost_.mixCost(mix, limbs));
}

Tick
StepMapper::opLat(HeOpType op, size_t limbs) const
{
    return cost_.opLatency(op, limbs);
}

Program
StepMapper::mapStep(const Step& step) const
{
    ProgramBuilder pb(cards_);
    mapStepInto(pb, step);
    return pb.take();
}

void
StepMapper::mapStepInto(ProgramBuilder& pb, const Step& step) const
{
    switch (step.kind) {
      case ProcKind::ConvBN:
      case ProcKind::Pooling:
      case ProcKind::FC:
      case ProcKind::PCMM:
      case ProcKind::CCMM:
      case ProcKind::Norm:
        mapUniform(pb, step);
        break;
      case ProcKind::NonLinear:
        mapNonLinear(pb, step);
        break;
      case ProcKind::Bootstrap:
        mapBootstrap(pb, step);
        break;
      default:
        panic("unmapped ProcKind %d", static_cast<int>(step.kind));
    }
}

void
StepMapper::mapUniform(ProgramBuilder& pb, const Step& step) const
{
    size_t units = step.effectiveUnits();
    size_t c_n = cards_;
    uint32_t label = pb.label(procName(step.kind));
    Tick unit_lat = unitLatency(step.perUnit, step.limbs);
    OpCost unit_cost = cost_.mixCost(step.perUnit, step.limbs);
    uint64_t ct_bytes = cost_.ciphertextBytes(step.limbs);

    // Unit share of card c, split into R chunk rounds.
    auto share = [&](size_t c) {
        return units / c_n + (c < units % c_n ? 1 : 0);
    };
    size_t max_share = share(0);
    size_t rounds = std::min<size_t>(config_.maxChunksPerCard,
                                     std::max<size_t>(1, max_share));
    auto chunk_units = [&](size_t c, size_t k) {
        size_t s = share(c);
        return s / rounds + (k < s % rounds ? 1 : 0);
    };

    // Compute chunks (CT_i: convolution inputs are local).
    std::vector<std::vector<uint64_t>> chunk_id(
        c_n, std::vector<uint64_t>(rounds, 0));
    std::vector<uint64_t> last_id(c_n, 0);
    for (size_t c = 0; c < c_n; ++c) {
        for (size_t k = 0; k < rounds; ++k) {
            size_t u = chunk_units(c, k);
            if (!u)
                continue;
            chunk_id[c][k] = pb.addCompute(c, unit_lat * u,
                                           scaled(unit_cost, u), label);
            last_id[c] = chunk_id[c][k];
        }
    }

    if (c_n == 1 || step.agg == AggKind::None)
        return;

    if (step.agg == AggKind::BroadcastEach) {
        // Fig. 2: per round, every card broadcasts the output
        // ciphertexts its chunk produced, in card order; transfers
        // overlap the next round's compute.  Unit results multiplex
        // into step.outputCts ciphertexts total.
        auto out_share = [&](size_t c) {
            return step.outputCts / c_n +
                   (c < step.outputCts % c_n ? 1 : 0);
        };
        auto out_chunk = [&](size_t c, size_t k) {
            size_t s = out_share(c);
            return s / rounds + (k < s % rounds ? 1 : 0);
        };
        for (size_t k = 0; k < rounds; ++k) {
            for (size_t s = 0; s < c_n; ++s) {
                size_t cts = out_chunk(s, k);
                if (!cts)
                    continue;
                // Anchor the send on this round's compute chunk (or the
                // card's last chunk if this round had no units).
                uint64_t after = chunk_id[s][k] ? chunk_id[s][k]
                                                : last_id[s];
                pb.broadcastFrom(s, ct_bytes * cts, after);
            }
        }
        return;
    }

    // ReduceTree: pairwise tree reduction of partial results to card 0,
    // then one broadcast so every card holds the combined output.
    Tick hadd_lat = opLat(HeOpType::HAdd, step.limbs);
    OpCost hadd_cost = cost_.cost(HeOpType::HAdd, step.limbs);
    for (size_t stride = 1; stride < c_n; stride <<= 1) {
        for (size_t dst = 0; dst + stride < c_n; dst += 2 * stride) {
            size_t src = dst + stride;
            uint64_t msg = pb.sendTo(src, dst, ct_bytes, last_id[src]);
            last_id[dst] = pb.addCompute(dst, hadd_lat, hadd_cost, label,
                                         {msg});
        }
    }
    uint64_t msg = pb.broadcastFrom(0, ct_bytes, last_id[0]);
    for (size_t c = 1; c < c_n; ++c)
        pb.addCompute(c, 0, OpCost{}, label, {msg});
}

void
StepMapper::mapNonLinear(ProgramBuilder& pb, const Step& step) const
{
    size_t units = step.effectiveUnits();
    if (cards_ == 1 || units >= cards_) {
        mapUniform(pb, step);
        return;
    }
    // Fewer evaluations than cards: split each polynomial evaluation
    // over a card group (Alg. 1).
    size_t group = pow2Floor(cards_ / units);
    uint32_t label = pb.label(procName(step.kind));
    size_t degree = step.polyDegree ? step.polyDegree : 15;
    for (size_t u = 0; u < units; ++u)
        mapPolyEvalTree(pb, u * group, group, degree, step.limbs, label);
}

void
StepMapper::mapPolyEvalTree(ProgramBuilder& pb, size_t base, size_t group,
                            size_t degree, size_t limbs,
                            uint32_t label) const
{
    Tick cm = opLat(HeOpType::CMult, limbs);
    Tick pm = opLat(HeOpType::PMult, limbs);
    Tick ha = opLat(HeOpType::HAdd, limbs);
    OpCost cm_c = cost_.cost(HeOpType::CMult, limbs);
    OpCost pm_c = cost_.cost(HeOpType::PMult, limbs);
    OpCost ha_c = cost_.cost(HeOpType::HAdd, limbs);
    uint64_t ct_bytes = cost_.ciphertextBytes(limbs);

    if (group <= 1 || degree < 4) {
        // Whole evaluation on one node.
        uint64_t terms = degree + 1;
        uint64_t cms = degree >= 2 ? degree / 2 + 1 : 0;
        Tick dur = cms * cm + terms * (pm + ha);
        OpCost c = scaled(cm_c, cms);
        c += scaled(pm_c, terms);
        c += scaled(ha_c, terms);
        pb.addCompute(base, dur, c, label);
        return;
    }

    size_t poly_depth = std::bit_width(degree); // ceil(log2(deg+1))
    size_t card_depth = std::countr_zero(pow2Floor(group));
    size_t tree_depth =
        std::min(poly_depth >= 2 ? poly_depth - 2 : 0, card_depth);
    size_t m = size_t{1} << tree_depth;

    std::vector<uint64_t> last_id(m, 0);
    std::vector<std::vector<uint64_t>> wait_msgs(m);

    // Phase A: power ladder x^2, x^4, ... distributed to lower-numbered
    // nodes; each level's product is forwarded to the mirror node.
    for (size_t i = 0; i < m; ++i)
        last_id[i] = pb.addCompute(base + i, cm, cm_c, label); // x^2
    for (size_t j = 1; j <= tree_depth; ++j) {
        size_t cnt = m >> j;
        for (size_t i = 0; i < cnt; ++i) {
            last_id[i] = pb.addCompute(base + i, cm, cm_c, label);
            size_t dst = i + cnt;
            uint64_t msg = pb.sendTo(base + i, base + dst, ct_bytes,
                                     last_id[i]);
            wait_msgs[dst].push_back(msg);
        }
    }

    // Phase B: each node evaluates its sub-polynomial with the shared
    // powers (add_and_multiply_const / multiply_and_add of Alg. 1).
    uint64_t terms = (degree + m) / m;
    uint64_t local_cms =
        std::max<uint64_t>(1, (degree >= 2 ? degree / 2 : 1) / m);
    for (size_t i = 0; i < m; ++i) {
        Tick dur = local_cms * cm + terms * (pm + ha);
        OpCost c = scaled(cm_c, local_cms);
        c += scaled(pm_c, terms);
        c += scaled(ha_c, terms);
        last_id[i] = pb.addCompute(base + i, dur, c, label,
                                   std::move(wait_msgs[i]));
    }

    // Phase C: tree merge -- the upper node multiplies by the splitting
    // power and sends, the lower node accumulates (Alg. 1 final loop).
    for (size_t num = m; num > 1; num /= 2) {
        size_t half = num / 2;
        for (size_t i = 0; i < half; ++i) {
            size_t upper = i + half;
            uint64_t mul_id =
                pb.addCompute(base + upper, cm, cm_c, label);
            uint64_t msg = pb.sendTo(base + upper, base + i, ct_bytes,
                                     mul_id);
            last_id[i] = pb.addCompute(base + i, ha, ha_c, label, {msg});
        }
    }
}

DftPlan
StepMapper::dftPlanFor(size_t group_cards, size_t limbs) const
{
    DftOpTimes t = DftOpTimes::fromCostModel(cost_, net_, limbs);
    return optimizeDftPlan(config_.dftLevels, logSlots_, group_cards, t);
}

void
StepMapper::mapDftLevels(ProgramBuilder& pb, size_t base, size_t group,
                         const DftPlan& plan, size_t limbs,
                         uint32_t label) const
{
    Tick rot = opLat(HeOpType::Rotate, limbs);
    Tick pm = opLat(HeOpType::PMult, limbs);
    Tick ha = opLat(HeOpType::HAdd, limbs);
    OpCost rot_c = cost_.cost(HeOpType::Rotate, limbs);
    OpCost pm_c = cost_.cost(HeOpType::PMult, limbs);
    OpCost ha_c = cost_.cost(HeOpType::HAdd, limbs);
    uint64_t ct_bytes = cost_.ciphertextBytes(limbs);

    for (const auto& lvl : plan.levels) {
        uint64_t b = lvl.bs;
        uint64_t gs_s = lvl.gsPerNode(group);
        std::vector<uint64_t> last_id(group, 0);
        for (size_t i = 0; i < group; ++i) {
            size_t card = base + i;
            // Baby steps are replicated on every node (Section III-B
            // point (1): aggregating distributed bs is inefficient).
            OpCost bs_cost = scaled(rot_c, b);
            pb.addCompute(card, b * rot, bs_cost, label);
            // Giant steps assigned to this node + local accumulation.
            Tick gs_dur = gs_s * (b * pm + (b - 1) * ha + rot) +
                          (gs_s - 1) * ha;
            OpCost gs_cost = scaled(pm_c, gs_s * b);
            gs_cost += scaled(ha_c, gs_s * (b - 1) + (gs_s - 1));
            gs_cost += scaled(rot_c, gs_s);
            last_id[i] = pb.addCompute(card, gs_dur, gs_cost, label);
        }
        if (group > 1) {
            // Tree aggregation of the per-node partial sums (Fig. 3(d)).
            for (size_t num = group; num > 1; num /= 2) {
                size_t half = num / 2;
                for (size_t i = 0; i < half; ++i) {
                    size_t upper = i + half;
                    uint64_t msg = pb.sendTo(base + upper, base + i,
                                             ct_bytes, last_id[upper]);
                    last_id[i] = pb.addCompute(base + i, ha, ha_c, label,
                                               {msg});
                }
            }
            // The leader redistributes the level result for the next
            // level's baby steps.
            for (size_t i = 1; i < group; ++i) {
                uint64_t msg = pb.sendTo(base, base + i, ct_bytes,
                                         last_id[0]);
                pb.addCompute(base + i, 0, OpCost{}, label, {msg});
            }
        }
    }
}

void
StepMapper::mapBootstrap(ProgramBuilder& pb, const Step& step) const
{
    size_t boots = std::max<size_t>(1, step.parallelism);
    uint32_t label = pb.label(procName(step.kind));

    size_t group = boots >= cards_ ? 1 : pow2Floor(cards_ / boots);
    if (group <= 1) {
        // Data-parallel: each card refreshes its share locally.
        Tick unit = bootstrapLocalTime(step.limbs);
        OpCost unit_cost = cost_.mixCost(
            OpMix{24, 32, 48, 64}, step.limbs); // representative mix
        for (size_t c = 0; c < cards_; ++c) {
            size_t s = boots / cards_ + (c < boots % cards_ ? 1 : 0);
            if (s)
                pb.addCompute(c, unit * s, scaled(unit_cost, s), label);
        }
        return;
    }

    DftPlan plan = dftPlanFor(group, step.limbs);
    Tick cm = opLat(HeOpType::CMult, step.limbs);
    Tick rot = opLat(HeOpType::Rotate, step.limbs);
    Tick pm = opLat(HeOpType::PMult, step.limbs);
    Tick ha = opLat(HeOpType::HAdd, step.limbs);
    OpCost daf_cost = scaled(cost_.cost(HeOpType::CMult, step.limbs),
                             config_.dafIters);

    size_t n_groups = std::min(boots, cards_ / group);
    for (size_t g = 0; g < n_groups; ++g) {
        size_t base = g * group;
        size_t reps = boots / n_groups + (g < boots % n_groups ? 1 : 0);
        for (size_t r = 0; r < reps; ++r) {
            // CoeffToSlot.
            mapDftLevels(pb, base, group, plan, step.limbs, label);
            // EvaExp (Alg. 1 tree over the group).
            mapPolyEvalTree(pb, base, group, config_.evalExpDegree,
                            step.limbs, label);
            // Double-angle + sine extraction on the group leader
            // (limited parallelism: the paper's Boot scaling is the
            // most modest of all procedures).
            pb.addCompute(base,
                          config_.dafIters * cm + rot + ha + pm,
                          daf_cost, label);
            // SlotToCoeff.
            mapDftLevels(pb, base, group, plan, step.limbs, label);
        }
    }
}

Tick
StepMapper::bootstrapLocalTime(size_t limbs) const
{
    DftOpTimes t = DftOpTimes::fromCostModel(cost_, net_, limbs);
    DftPlan plan = dftPlanFor(1, limbs);
    double dft_s = dftTime(plan, 1, t);
    size_t deg = config_.evalExpDegree;
    double evaexp_s =
        (deg / 2.0 + 1) * ticksToSeconds(opLat(HeOpType::CMult, limbs)) +
        static_cast<double>(deg + 1) *
            (ticksToSeconds(opLat(HeOpType::PMult, limbs)) +
             ticksToSeconds(opLat(HeOpType::HAdd, limbs)));
    double daf_s = static_cast<double>(config_.dafIters) *
                   ticksToSeconds(opLat(HeOpType::CMult, limbs));
    return secondsToTicks(2.0 * dft_s + evaexp_s + daf_s);
}

} // namespace hydra
