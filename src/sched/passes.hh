/**
 * @file
 * Program optimization passes: stage 3 of the schedule compiler
 * (plan -> lower -> optimize).  Rewrites an executable Program before
 * it is preloaded, with per-pass before/after statistics.
 *
 * Levels:
 *  - None: the lowered Program untouched.
 *  - Safe: provably tick-neutral rewrites only.  Today that is the
 *    canonical compute-queue reorder — maximal runs of adjacent
 *    dependency-free tasks (no waitMsgs, not anchoring any send) are
 *    sorted by (label, id).  Neutrality holds only when transfers
 *    overlap compute (Hydra DTU): on a host-mediated network a task
 *    boundary is a point where a pending transfer may claim the
 *    machine, so the pass is gated on `overlaps_compute`.
 *  - Aggressive: adds rewrites that preserve the computation but may
 *    change timing: dead-transfer elimination (zero-byte messages no
 *    task waits on), broadcast coalescing (adjacent broadcasts from
 *    one card with the same compute anchor merge into one transfer),
 *    and stall hoisting (dependency-free compute tasks move ahead of
 *    waiting ones — a stable partition, which provably cannot
 *    introduce deadlock).
 *
 * The default compile path (InferenceRunner / ServeSim / ProgramCache)
 * runs Safe, keeping every golden makespan and determinism hash
 * bit-identical; Aggressive is opt-in for exploration.
 */

#ifndef HYDRA_SCHED_PASSES_HH
#define HYDRA_SCHED_PASSES_HH

#include <string>
#include <vector>

#include "sync/task.hh"

namespace hydra {

/** Optimization level of the pass pipeline. */
enum class OptLevel : uint8_t { None, Safe, Aggressive };

const char* optLevelName(OptLevel level);

/** Size summary of one Program (or one card's queues). */
struct ProgramCounts
{
    uint64_t computeTasks = 0;
    uint64_t sends = 0;
    uint64_t recvs = 0;
    /** Distinct message ids. */
    uint64_t messages = 0;
    /** Payload bytes summed over sends (a broadcast counts once). */
    uint64_t bytes = 0;
    /** Deepest per-card compute / comm queue. */
    uint64_t maxComputeDepth = 0;
    uint64_t maxCommDepth = 0;

    bool
    operator==(const ProgramCounts& o) const
    {
        return computeTasks == o.computeTasks && sends == o.sends &&
               recvs == o.recvs && messages == o.messages &&
               bytes == o.bytes &&
               maxComputeDepth == o.maxComputeDepth &&
               maxCommDepth == o.maxCommDepth;
    }
};

/** Whole-program totals. */
ProgramCounts countProgram(const Program& prog);

/** One pass's contribution to an optimization run. */
struct PassDelta
{
    std::string pass;
    ProgramCounts before;
    ProgramCounts after;
    /** Pass-specific mutation count (tasks moved, transfers removed,
     *  broadcasts merged). */
    uint64_t changes = 0;
};

/** Before/after record of one optimizeProgram() call. */
struct OptReport
{
    OptLevel level = OptLevel::None;
    ProgramCounts before;
    ProgramCounts after;
    std::vector<PassDelta> passes;

    /** Total mutations across passes. */
    uint64_t totalChanges() const;

    /** Multi-line human-readable summary (CLI --dump-program). */
    std::string describe() const;
};

/**
 * Run the pass pipeline for `level` over `prog`.
 *
 * @param overlaps_compute NetworkModel::overlapsCompute() of the
 *        machine the program will execute on; gates the tick-neutral
 *        reorder (see file header)
 * @param report optional per-pass statistics sink
 */
Program optimizeProgram(Program prog, OptLevel level,
                        bool overlaps_compute,
                        OptReport* report = nullptr);

/**
 * Per-card queue/traffic summary plus pass deltas, for the CLI
 * --dump-program flag.
 */
std::string describeProgram(const Program& prog,
                            const OptReport* report = nullptr);

} // namespace hydra

#endif // HYDRA_SCHED_PASSES_HH
