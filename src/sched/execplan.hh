/**
 * @file
 * The unified compiled-execution-plan abstraction (DESIGN.md §16).
 *
 * An ExecPlan is the one executable artifact both execution worlds
 * compile to: an ordered sequence of units, each carrying its member
 * steps, its ProgramCache key and (when materialized) its compiled
 * Program, plus the plan's opt-level provenance.  compilePlan()
 * subsumes the two historical entry points:
 *
 *  - the step-list path (InferenceRunner::run / runJob): at
 *    OptLevel::None/Safe every step becomes one Single unit keyed by
 *    stepCacheKey — the exact keys the pre-ExecPlan runner used, so
 *    cache populations and tick streams are bit-identical;
 *  - the graph path (compileNetwork): at OptLevel::Aggressive the
 *    cross-step passes (boot-plan, fuse-linear, prefetch) partition
 *    the network into possibly multi-layer units via
 *    partitionNetwork(), keyed by unitCacheKey.
 *
 * Unit boundaries generalize step boundaries: everything downstream
 * that used to index steps (resumable first_step windows, cake's
 * preemption slices, federation's checkpointed failover, the
 * fault-free JobCache) indexes units of the tenant's plan instead.
 * The Aggressive partition is a pure function of (workload content,
 * network kind) — NOT of the executing card count — so every card
 * group of one machine agrees on unit boundaries for a given
 * (workload, level), which is what makes unit indices meaningful
 * across dispatch, preemption and failover.
 *
 * A plan can be *materialized* (programs compiled up front, one
 * ProgramCache access per unit at build time) or a *skeleton*
 * (PlanWindow::none(): keys only; drivers resolve programs on demand
 * via compilePlanUnit, which is also the degraded re-dispatch path
 * where the executing cluster shrank under the plan).
 */

#ifndef HYDRA_SCHED_EXECPLAN_HH
#define HYDRA_SCHED_EXECPLAN_HH

#include <memory>
#include <string>
#include <vector>

#include "sched/graph/netcompile.hh"
#include "sched/runner.hh"

namespace hydra {

/** One schedulable unit of an ExecPlan: one or more layers executing
 *  as a single Program (no internal sync barrier, one checkpoint
 *  boundary at the end). */
struct ExecUnit
{
    NetUnit::Kind kind = NetUnit::Kind::Single;
    /** Display name: the single layer, or "first..last". */
    std::string name;
    /** Procedure kind of the leading layer (roll-up display). */
    ProcKind lead = ProcKind::ConvBN;
    /** Member steps in execution order (post-pass content).  Carried
     *  by value so a shrunken cluster can recompile the unit without
     *  the original workload/graph in hand. */
    std::vector<Step> steps;
    /** ProgramCache key for the plan's own cluster. */
    std::string key;
    /** Compiled program; null in skeleton plans (resolve on demand
     *  through compilePlanUnit). */
    std::shared_ptr<const CompiledStep> compiled;
};

/** Which units of a plan get their programs materialized at
 *  compilePlan() time.  Units outside the window still get keys. */
struct PlanWindow
{
    static constexpr size_t npos = static_cast<size_t>(-1);

    size_t first = 0;
    size_t count = npos;

    /** Materialize every unit (run()/runGraph semantics). */
    static PlanWindow all() { return PlanWindow{}; }

    /** Materialize nothing — a skeleton plan (serving dispatch). */
    static PlanWindow none() { return PlanWindow{0, 0}; }
};

/** A compiled execution plan: the unit sequence plus provenance. */
struct ExecPlan
{
    std::string machine;
    std::string workload;
    /**
     * Window-independent plan identity: machine half + workload name
     * + every pre-pass step's content key + level.  Two plans share a
     * key iff they compile the same content for the same machine shape
     * at the same level — the serving layer's JobCache keys memoized
     * replays on (this, unit window, card signature).
     */
    std::string key;
    OptLevel level = OptLevel::Safe;
    /** Cluster shape the plan was compiled against (the machine, or a
     *  card group's sub-spec). */
    ClusterConfig cluster;
    size_t logSlots = 0;
    std::vector<ExecUnit> units;
    /** Cross-step pass statistics (empty below Aggressive). */
    NetOptReport report;

    size_t size() const { return units.size(); }
};

/**
 * Compile `workload` for `spec`'s machine at `level`.  None/Safe take
 * the step-list path (one Single unit per step, legacy cache keys);
 * Aggressive lifts the workload to a NetworkGraph chain and applies
 * the cross-step passes.
 */
ExecPlan compilePlan(const PrototypeSpec& spec, const OpCostModel& cost,
                     const NetworkModel& net,
                     const WorkloadModel& workload,
                     OptLevel level = OptLevel::Safe,
                     PlanWindow window = PlanWindow::all());

/**
 * Compile `graph` for `spec`'s machine at `level`.  The graph must be
 * validate()-clean (callers report the SpecError; a cyclic graph
 * fatals in partitionNetwork).
 */
ExecPlan compilePlan(const PrototypeSpec& spec, const OpCostModel& cost,
                     const NetworkModel& net, const NetworkGraph& graph,
                     OptLevel level = OptLevel::Safe,
                     PlanWindow window = PlanWindow::all());

/**
 * Resolve one unit's Program through the shared ProgramCache for an
 * executing (sub-)cluster.  With exec_cluster == the plan's own
 * cluster this returns exactly what materialization stored; with a
 * smaller cluster (degraded re-dispatch) it compiles under the
 * surviving card count while keeping the plan's network model.
 */
std::shared_ptr<const CompiledStep>
compilePlanUnit(const PrototypeSpec& spec,
                const ClusterConfig& exec_cluster,
                const ClusterConfig& net_cluster, const OpCostModel& cost,
                const NetworkModel& net, size_t log_slots,
                const ExecUnit& unit, OptLevel level);

/**
 * The number of units `workload` partitions into at `level` on
 * `spec`'s machine — computed without compiling any Program.  Shape-
 * invariant: card groups of the machine see the same count.
 */
size_t planUnitCount(const PrototypeSpec& spec, const OpCostModel& cost,
                     const NetworkModel& net,
                     const WorkloadModel& workload, OptLevel level);

} // namespace hydra

#endif // HYDRA_SCHED_EXECPLAN_HH
