#include "sched/progcache.hh"

#include <cinttypes>

#include "common/logging.hh"

namespace hydra {

CompiledStep
compileStep(const OpCostModel& cost, const NetworkModel& net,
            size_t cards, size_t log_slots, const MappingConfig& mapping,
            const Step& step, OptLevel level)
{
    StepMapper mapper(cost, net, cards, log_slots, mapping);
    CompiledStep out;
    Program prog = lowerPlan(mapper.planStep(step), cost, net, mapping);
    out.program = optimizeProgram(std::move(prog), level,
                                  net.overlapsCompute(), &out.report);
    return out;
}

std::string
machineCacheKey(const PrototypeSpec& spec,
                const ClusterConfig& exec_cluster,
                const ClusterConfig& net_cluster, size_t ring_n,
                size_t log_slots, OptLevel level)
{
    const FpgaParams& f = spec.fpga;
    const MappingConfig& m = spec.mapping;
    // Machine half: everything the cost/network models read.
    std::string key = strf(
        "m=%s|x=%zux%zu|nx=%zux%zu|n=%zu|d=%zu|f=%.17g,%zu,%zu,%.17g,"
        "%zu,%.17g,%.17g,%.17g|k=%d",
        spec.name.c_str(), exec_cluster.servers,
        exec_cluster.cardsPerServer, net_cluster.servers,
        net_cluster.cardsPerServer, ring_n, spec.dnum, f.clockHz,
        f.lanes, f.nttRadix, f.hbmBytesPerSec, f.scratchpadBytes,
        f.hbmTrafficFactor, f.scratchpadOverflowPenalty, f.computeDerate,
        static_cast<int>(spec.netKind));
    if (spec.netKind == PrototypeSpec::NetKind::Switched)
        key += strf("|nw=%.17g,%" PRIu64 ",%" PRIu64 ",%d",
                    spec.net.linkBytesPerSec, spec.net.switchLatency,
                    spec.net.dmaConfigLatency,
                    spec.net.crossServerExtraHops);
    else
        key += strf("|nw=%.17g,%.17g,%" PRIu64 "",
                    spec.hostNet.pcieBytesPerSec,
                    spec.hostNet.lanBytesPerSec,
                    spec.hostNet.hostLatency);
    key += strf("|mc=%zu,%zu,%zu,%zu|ls=%zu|o=%s", m.maxChunksPerCard,
                m.evalExpDegree, m.dafIters, m.dftLevels, log_slots,
                optLevelName(level));
    return key;
}

std::string
stepContentKey(const Step& step)
{
    // Content only — the name/index is deliberately excluded so
    // repeated identical layers share one entry.
    return strf("|s=%d,%zu,%u,%u,%u,%u,%zu,%d,%zu,%.17g,%zu",
                static_cast<int>(step.kind), step.parallelism,
                step.perUnit.rotations, step.perUnit.cmults,
                step.perUnit.pmults, step.perUnit.hadds, step.limbs,
                static_cast<int>(step.agg), step.polyDegree,
                step.unitScale, step.outputCts);
}

std::string
stepCacheKey(const PrototypeSpec& spec, const ClusterConfig& exec_cluster,
             const ClusterConfig& net_cluster, size_t ring_n,
             size_t log_slots, const Step& step, OptLevel level)
{
    return machineCacheKey(spec, exec_cluster, net_cluster, ring_n,
                           log_slots, level) +
           stepContentKey(step);
}

ProgramCache&
ProgramCache::global()
{
    static ProgramCache cache;
    return cache;
}

std::shared_ptr<const CompiledStep>
ProgramCache::getOrCompile(const std::string& key,
                           const std::function<CompiledStep()>& compile)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = map_.find(key);
        if (it != map_.end()) {
            ++hits_;
            lru_.splice(lru_.begin(), lru_, it->second.pos);
            return it->second.compiled;
        }
        ++misses_;
    }
    // Compile outside the lock: compilation is pure and slow; a
    // concurrent duplicate compile is deterministic and harmless (one
    // of the identical results is published).
    auto compiled = std::make_shared<const CompiledStep>(compile());
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
        // A concurrent compile won the publish race; adopt its result.
        lru_.splice(lru_.begin(), lru_, it->second.pos);
        return it->second.compiled;
    }
    lru_.push_front(key);
    map_.emplace(key, Entry{compiled, lru_.begin()});
    trimLocked();
    return compiled;
}

std::shared_ptr<const CompiledStep>
ProgramCache::lookup(const std::string& key) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    return it == map_.end() ? nullptr : it->second.compiled;
}

ProgramCache::Stats
ProgramCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Stats s;
    s.hits = hits_;
    s.misses = misses_;
    s.entries = map_.size();
    s.evictions = evictions_;
    return s;
}

void
ProgramCache::resetStats()
{
    std::lock_guard<std::mutex> lock(mu_);
    hits_ = 0;
    misses_ = 0;
    evictions_ = 0;
}

void
ProgramCache::clear()
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.clear();
    lru_.clear();
}

size_t
ProgramCache::capacity() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return capacity_;
}

void
ProgramCache::setCapacity(size_t cap)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = cap;
    trimLocked();
}

void
ProgramCache::trimLocked()
{
    if (!capacity_)
        return;
    while (map_.size() > capacity_) {
        map_.erase(lru_.back());
        lru_.pop_back();
        ++evictions_;
    }
}

} // namespace hydra
