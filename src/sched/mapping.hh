/**
 * @file
 * Task decomposition and mapping strategies (paper Section III) —
 * stage 1 ("plan") of the schedule compiler.
 *
 * Turns one workload Step into a machine-independent LogicalPlan:
 *  - ConvBN / Pooling: kernel units split across cards, each chunk's
 *    outputs broadcast round-robin so transfers hide under the next
 *    chunk's compute (Fig. 1 + Fig. 2);
 *  - FC / PCMM / CCMM: units split evenly, partial results combined by
 *    a tree reduction and re-broadcast (Section III-A);
 *  - Non-linear: data-parallel across ciphertexts when parallelism
 *    covers the cards, otherwise the Alg. 1 computation-tree split with
 *    CMult balancing;
 *  - Bootstrap: Fig. 3 mapping -- per-level BSGS DFT with replicated
 *    baby steps, distributed giant steps and tree aggregation, Alg. 1
 *    EvaExp, leader-local double-angle -- with Radix/bs chosen by the
 *    Eq. 1 optimizer.
 *
 * mapStep/mapStepInto remain as the plan+lower composition (see
 * sched/lower.hh) and produce bit-identical Programs to the historical
 * direct path; planStep exposes the plan itself for re-costing,
 * optimization and caching (sched/passes.hh, sched/progcache.hh).
 */

#ifndef HYDRA_SCHED_MAPPING_HH
#define HYDRA_SCHED_MAPPING_HH

#include "arch/network.hh"
#include "arch/opcost.hh"
#include "model/dft_model.hh"
#include "sched/plan.hh"
#include "sync/task.hh"
#include "workloads/model.hh"

namespace hydra {

/** Mapping knobs. */
struct MappingConfig
{
    /** Chunks each card splits its unit share into (comm overlap). */
    size_t maxChunksPerCard = 8;
    /** EvaExp polynomial degree (paper: 59). */
    size_t evalExpDegree = 59;
    /** Double-angle iterations after EvaExp. */
    size_t dafIters = 3;
    /** Homomorphic DFT matrix levels (Table V: depth 3). */
    size_t dftLevels = 3;
};

/** Builds per-step plans/Programs for one (machine, workload) pair. */
class StepMapper
{
  public:
    StepMapper(const OpCostModel& cost, const NetworkModel& net,
               size_t cards, size_t log_slots,
               MappingConfig config = {});

    /**
     * Decompose one step into a machine-independent LogicalPlan.  The
     * bootstrap DFT structure (Eq. 1 Radix/bs) is frozen with this
     * mapper's cost/network models; everything else in the plan is
     * model-free.
     */
    LogicalPlan planStep(const Step& step) const;

    /** Append one step's plan ops to an existing plan builder. */
    void planStepInto(PlanBuilder& pb, const Step& step) const;

    /** Map one step onto the cluster (plan + lower). */
    Program mapStep(const Step& step) const;

    /**
     * Append one step's tasks to an existing builder.  Used by the
     * fused scheduling mode (paper Section IV-D: "multiple tasks can be
     * loaded into each FPGA's task queue at once"), which removes the
     * per-step barrier and lets a card start the next step while peers
     * finish the current one.
     */
    void mapStepInto(ProgramBuilder& pb, const Step& step) const;

    /** Single-card time of one full bootstrap (used for data-parallel
     *  bootstrap scheduling and for Fig. 9 style analyses). */
    Tick bootstrapLocalTime(size_t limbs) const;

    /** The Eq. 1-optimal DFT plan for a group of `cards` nodes. */
    DftPlan dftPlanFor(size_t group_cards, size_t limbs) const;

    const MappingConfig& config() const { return config_; }

  private:
    void planUniform(PlanBuilder& pb, const Step& step) const;
    void planNonLinear(PlanBuilder& pb, const Step& step) const;
    /** Alg. 1 on the card range [base, base + group). */
    void planPolyEvalTree(PlanBuilder& pb, size_t base, size_t group,
                          size_t degree, size_t limbs,
                          uint32_t label) const;
    void planBootstrap(PlanBuilder& pb, const Step& step) const;
    /** One BSGS DFT stack (C2S or S2C) on a card group. */
    void planDftLevels(PlanBuilder& pb, size_t base, size_t group,
                       const DftPlan& plan, size_t limbs,
                       uint32_t label) const;

    const OpCostModel& cost_;
    const NetworkModel& net_;
    size_t cards_;
    size_t logSlots_;
    MappingConfig config_;
};

} // namespace hydra

#endif // HYDRA_SCHED_MAPPING_HH
