#include "sched/passes.hh"

#include <algorithm>
#include <cinttypes>
#include <unordered_map>
#include <unordered_set>

#include "common/logging.hh"

namespace hydra {

namespace {

/** Compute-task ids some send is anchored on (any card's comm queue). */
std::unordered_set<uint64_t>
anchoredComputeIds(const Program& prog)
{
    std::unordered_set<uint64_t> anchored;
    for (const auto& card : prog.cards)
        for (const auto& ct : card.comm)
            if (ct.kind == CommTask::Kind::Send && ct.afterCompute)
                anchored.insert(ct.afterCompute);
    return anchored;
}

/** Message ids some compute task waits on. */
std::unordered_set<uint64_t>
waitedMsgIds(const Program& prog)
{
    std::unordered_set<uint64_t> waited;
    for (const auto& card : prog.cards)
        for (const auto& t : card.compute)
            waited.insert(t.waitMsgs.begin(), t.waitMsgs.end());
    return waited;
}

/**
 * Canonical compute-queue order (Safe): sort maximal runs of adjacent
 * dependency-free tasks (no waitMsgs, no send anchored on them) by
 * (label, id).  Within such a run the tasks execute back-to-back with
 * no external observer of intermediate completions, so any permutation
 * is tick-identical when transfers overlap compute.
 */
uint64_t
canonicalComputeOrder(Program& prog)
{
    auto anchored = anchoredComputeIds(prog);
    uint64_t moved = 0;
    for (auto& card : prog.cards) {
        auto& q = card.compute;
        auto movable = [&](const ComputeTask& t) {
            return t.waitMsgs.empty() && !anchored.count(t.id);
        };
        size_t i = 0;
        while (i < q.size()) {
            if (!movable(q[i])) {
                ++i;
                continue;
            }
            size_t j = i + 1;
            while (j < q.size() && movable(q[j]))
                ++j;
            if (j - i > 1) {
                std::vector<uint64_t> before(j - i);
                for (size_t k = i; k < j; ++k)
                    before[k - i] = q[k].id;
                std::stable_sort(q.begin() + i, q.begin() + j,
                                 [](const ComputeTask& a,
                                    const ComputeTask& b) {
                                     if (a.label != b.label)
                                         return a.label < b.label;
                                     return a.id < b.id;
                                 });
                for (size_t k = i; k < j; ++k)
                    if (q[k].id != before[k - i])
                        ++moved;
            }
            i = j;
        }
    }
    return moved;
}

/**
 * Dead-transfer elimination (Aggressive): a message whose send carries
 * zero bytes and that no compute task waits on only occupies comm
 * queues and setup latency; drop its send and every matching recv.
 */
uint64_t
eliminateDeadTransfers(Program& prog)
{
    auto waited = waitedMsgIds(prog);
    std::unordered_set<uint64_t> dead;
    for (const auto& card : prog.cards)
        for (const auto& ct : card.comm)
            if (ct.kind == CommTask::Kind::Send && ct.bytes == 0 &&
                !waited.count(ct.msg))
                dead.insert(ct.msg);
    if (dead.empty())
        return 0;
    uint64_t removed = 0;
    for (auto& card : prog.cards) {
        auto it = std::remove_if(card.comm.begin(), card.comm.end(),
                                 [&](const CommTask& ct) {
                                     return dead.count(ct.msg) != 0;
                                 });
        removed += static_cast<uint64_t>(card.comm.end() - it);
        card.comm.erase(it, card.comm.end());
    }
    return removed;
}

/** Replace msg `from` with `to` in every compute task's wait list. */
void
rewriteWaits(Program& prog, uint64_t from, uint64_t to)
{
    for (auto& card : prog.cards)
        for (auto& t : card.compute) {
            bool has_to = false;
            for (uint64_t m : t.waitMsgs)
                has_to |= (m == to);
            for (auto& m : t.waitMsgs)
                if (m == from)
                    m = to;
            if (has_to) {
                // Both were present: drop the duplicate.
                auto it = std::find(t.waitMsgs.begin(),
                                    t.waitMsgs.end(), to);
                if (it != t.waitMsgs.end())
                    t.waitMsgs.erase(
                        std::remove(it + 1, t.waitMsgs.end(), to),
                        t.waitMsgs.end());
            }
        }
}

/**
 * Broadcast coalescing (Aggressive): two adjacent broadcasts from the
 * same card with the same compute anchor — and adjacent matching
 * recvs on every receiver — merge into one transfer with the summed
 * payload, saving one per-hop setup + DMA configuration round.
 */
uint64_t
coalesceBroadcasts(Program& prog)
{
    uint64_t merges = 0;
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t c = 0; c < prog.cards.size() && !changed; ++c) {
            auto& comm = prog.cards[c].comm;
            for (size_t i = 0; i + 1 < comm.size(); ++i) {
                CommTask& a = comm[i];
                CommTask& b = comm[i + 1];
                if (a.kind != CommTask::Kind::Send ||
                    b.kind != CommTask::Kind::Send)
                    continue;
                if (a.peer != kBroadcast || b.peer != kBroadcast ||
                    a.afterCompute != b.afterCompute)
                    continue;
                // Every receiver must hold recv(a) immediately
                // followed by recv(b), so the merge is FIFO-safe.
                bool mergeable = true;
                for (size_t d = 0;
                     d < prog.cards.size() && mergeable; ++d) {
                    if (d == c)
                        continue;
                    const auto& rq = prog.cards[d].comm;
                    size_t ra = rq.size();
                    for (size_t k = 0; k < rq.size(); ++k)
                        if (rq[k].kind == CommTask::Kind::Recv &&
                            rq[k].msg == a.msg) {
                            ra = k;
                            break;
                        }
                    mergeable = ra + 1 < rq.size() &&
                                rq[ra + 1].kind ==
                                    CommTask::Kind::Recv &&
                                rq[ra + 1].msg == b.msg;
                }
                if (!mergeable)
                    continue;
                uint64_t dead_msg = b.msg;
                a.bytes += b.bytes;
                comm.erase(comm.begin() + i + 1);
                for (size_t d = 0; d < prog.cards.size(); ++d) {
                    if (d == c)
                        continue;
                    auto& rq = prog.cards[d].comm;
                    for (size_t k = 0; k < rq.size(); ++k)
                        if (rq[k].kind == CommTask::Kind::Recv &&
                            rq[k].msg == dead_msg) {
                            rq[k - 1].bytes += rq[k].bytes;
                            rq.erase(rq.begin() + k);
                            break;
                        }
                }
                rewriteWaits(prog, dead_msg, comm[i].msg);
                ++merges;
                changed = true;
                break;
            }
        }
    }
    return merges;
}

/**
 * Stall hoisting (Aggressive): stable-partition each compute queue so
 * dependency-free tasks run before waiting ones.  Relative order
 * within each class is preserved; waiters gain only always-runnable
 * predecessors, so no wait cycle can appear that the original program
 * did not already have.
 */
uint64_t
hoistIndependentCompute(Program& prog)
{
    uint64_t moved = 0;
    for (auto& card : prog.cards) {
        auto& q = card.compute;
        std::vector<uint64_t> before(q.size());
        for (size_t k = 0; k < q.size(); ++k)
            before[k] = q[k].id;
        std::stable_partition(q.begin(), q.end(),
                              [](const ComputeTask& t) {
                                  return t.waitMsgs.empty();
                              });
        for (size_t k = 0; k < q.size(); ++k)
            if (q[k].id != before[k])
                ++moved;
    }
    return moved;
}

void
runPass(Program& prog, const char* name, uint64_t (*pass)(Program&),
        OptReport* report)
{
    PassDelta delta;
    delta.pass = name;
    delta.before = countProgram(prog);
    delta.changes = pass(prog);
    delta.after = countProgram(prog);
    if (report)
        report->passes.push_back(std::move(delta));
}

std::string
countsLine(const ProgramCounts& c)
{
    return strf("%" PRIu64 " compute, %" PRIu64 " send(s), %" PRIu64
                " recv(s), %" PRIu64 " msg(s), %.3f MiB",
                c.computeTasks, c.sends, c.recvs, c.messages,
                static_cast<double>(c.bytes) / (1 << 20));
}

} // namespace

const char*
optLevelName(OptLevel level)
{
    switch (level) {
      case OptLevel::None:
        return "none";
      case OptLevel::Safe:
        return "safe";
      case OptLevel::Aggressive:
        return "aggressive";
    }
    return "?";
}

ProgramCounts
countProgram(const Program& prog)
{
    ProgramCounts c;
    std::unordered_set<uint64_t> msgs;
    for (const auto& card : prog.cards) {
        c.computeTasks += card.compute.size();
        c.maxComputeDepth =
            std::max<uint64_t>(c.maxComputeDepth, card.compute.size());
        c.maxCommDepth =
            std::max<uint64_t>(c.maxCommDepth, card.comm.size());
        for (const auto& ct : card.comm) {
            if (ct.kind == CommTask::Kind::Send) {
                ++c.sends;
                c.bytes += ct.bytes;
                msgs.insert(ct.msg);
            } else {
                ++c.recvs;
                msgs.insert(ct.msg);
            }
        }
    }
    c.messages = msgs.size();
    return c;
}

uint64_t
OptReport::totalChanges() const
{
    uint64_t sum = 0;
    for (const auto& p : passes)
        sum += p.changes;
    return sum;
}

std::string
OptReport::describe() const
{
    std::string out =
        strf("optimize [%s]: %s\n            -> %s\n",
             optLevelName(level), countsLine(before).c_str(),
             countsLine(after).c_str());
    for (const auto& p : passes)
        out += strf("  pass %-18s %5" PRIu64 " change(s), %s\n",
                    p.pass.c_str(), p.changes,
                    countsLine(p.after).c_str());
    return out;
}

Program
optimizeProgram(Program prog, OptLevel level, bool overlaps_compute,
                OptReport* report)
{
    if (report) {
        *report = OptReport{};
        report->level = level;
        report->before = countProgram(prog);
    }
    if (level >= OptLevel::Aggressive) {
        runPass(prog, "dead-transfer-elim", eliminateDeadTransfers,
                report);
        runPass(prog, "broadcast-coalesce", coalesceBroadcasts, report);
        runPass(prog, "stall-hoist", hoistIndependentCompute, report);
    }
    // Tick-neutral only when transfers overlap compute: on a
    // host-mediated network a compute boundary is a scheduling point
    // for pending transfers, so even no-wait task permutations can
    // shift them.
    if (level >= OptLevel::Safe && overlaps_compute)
        runPass(prog, "canonical-order", canonicalComputeOrder, report);
    if (report)
        report->after = countProgram(prog);
    return prog;
}

std::string
describeProgram(const Program& prog, const OptReport* report)
{
    std::string out;
    ProgramCounts total = countProgram(prog);
    out += strf("program: %zu card(s), %s\n", prog.cardCount(),
                countsLine(total).c_str());
    for (size_t c = 0; c < prog.cards.size(); ++c) {
        const auto& card = prog.cards[c];
        uint64_t sends = 0, recvs = 0, bytes = 0, waits = 0;
        for (const auto& ct : card.comm) {
            if (ct.kind == CommTask::Kind::Send) {
                ++sends;
                bytes += ct.bytes;
            } else {
                ++recvs;
            }
        }
        for (const auto& t : card.compute)
            waits += t.waitMsgs.size();
        out += strf("  card %2zu: compute %4zu (%4" PRIu64
                    " wait(s)), send %4" PRIu64 ", recv %4" PRIu64
                    ", out %8.3f MiB\n",
                    c, card.compute.size(), waits, sends, recvs,
                    static_cast<double>(bytes) / (1 << 20));
    }
    if (report)
        out += report->describe();
    return out;
}

} // namespace hydra
