/**
 * @file
 * Lowering: stage 2 of the schedule compiler (plan -> lower ->
 * optimize).  Binds an OpCostModel + NetworkModel to a machine-
 * independent LogicalPlan, producing the executable Program the
 * ClusterExecutor consumes: HeOp term lists become Tick durations and
 * OpCost aggregates, ciphertext counts become wire bytes.
 *
 * Lowering replays the plan's emission order through a ProgramBuilder,
 * so the produced Program is bit-identical to what the pre-pipeline
 * StepMapper built directly — including compute/message id assignment
 * and label interning — and appending into a caller's builder (fused
 * mode) composes exactly like the old mapStepInto.
 */

#ifndef HYDRA_SCHED_LOWER_HH
#define HYDRA_SCHED_LOWER_HH

#include "arch/network.hh"
#include "arch/opcost.hh"
#include "sched/mapping.hh"
#include "sched/plan.hh"
#include "sync/task.hh"

namespace hydra {

/**
 * Single-card wall time of one full bootstrap (2 DFT stacks + EvaExp +
 * double-angle) under the given models: the lowering-time price of a
 * BootstrapLocal plan op.  StepMapper::bootstrapLocalTime delegates
 * here.
 */
Tick bootstrapLocalTicks(const OpCostModel& cost, const NetworkModel& net,
                         const MappingConfig& config, size_t log_slots,
                         size_t limbs);

/** Lower `plan` into a fresh Program. */
Program lowerPlan(const LogicalPlan& plan, const OpCostModel& cost,
                  const NetworkModel& net, const MappingConfig& config);

/**
 * Append `plan`'s lowered tasks to an existing builder (fused
 * scheduling).  Plan-local ids are re-bound to builder-issued ids in
 * emission order; the builder's card count must match the plan's.
 */
void lowerPlanInto(ProgramBuilder& pb, const LogicalPlan& plan,
                   const OpCostModel& cost, const NetworkModel& net,
                   const MappingConfig& config);

} // namespace hydra

#endif // HYDRA_SCHED_LOWER_HH
