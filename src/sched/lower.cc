#include "sched/lower.hh"

#include <map>

#include "common/logging.hh"
#include "model/dft_model.hh"

namespace hydra {

namespace {

/** OpCost scaled by a repetition count. */
OpCost
scaled(OpCost c, uint64_t count)
{
    c.cycles *= count;
    c.hbmBytes *= count;
    for (auto& x : c.cuOps)
        x *= count;
    return c;
}

/** Per-lowering context: the bound models plus small memo tables. */
struct LowerCtx
{
    const OpCostModel& cost;
    const NetworkModel& net;
    const MappingConfig& config;
    size_t logSlots;
    /** Bootstrap local time per limb count (the Eq.-1 search is the
     *  one expensive lookup; every card of a data-parallel bootstrap
     *  shares it). */
    std::map<size_t, Tick> bootTicks;

    Tick
    bootstrapTicks(size_t limbs)
    {
        auto it = bootTicks.find(limbs);
        if (it == bootTicks.end())
            it = bootTicks
                     .emplace(limbs,
                              bootstrapLocalTicks(cost, net, config,
                                                  logSlots, limbs))
                     .first;
        return it->second;
    }
};

/** Duration of one plan op under the bound models. */
Tick
lowerDuration(LowerCtx& ctx, const PlanOp& op)
{
    switch (op.kind) {
      case PlanOpKind::OpList: {
        Tick dur = 0;
        for (const auto& t : op.terms)
            if (t.timed)
                dur += t.count * ctx.cost.opLatency(t.op, op.limbs);
        return dur;
      }
      case PlanOpKind::MixRepeat:
        // Roofline once, then repeat — matches the uniform-step chunk
        // formula (latency of one unit's mix times unit count).
        return ctx.cost.latency(ctx.cost.mixCost(op.mix, op.limbs)) *
               op.repeat;
      case PlanOpKind::BootstrapLocal:
        return ctx.bootstrapTicks(op.limbs) * op.repeat;
    }
    panic("unlowered PlanOpKind %d", static_cast<int>(op.kind));
}

/** Hardware cost of one plan op under the bound cost model. */
OpCost
lowerCost(LowerCtx& ctx, const PlanOp& op)
{
    OpCost c{};
    switch (op.kind) {
      case PlanOpKind::OpList:
        for (const auto& t : op.terms)
            if (t.costed)
                c += scaled(ctx.cost.cost(t.op, op.limbs), t.count);
        return c;
      case PlanOpKind::MixRepeat:
      case PlanOpKind::BootstrapLocal:
        return scaled(ctx.cost.mixCost(op.mix, op.limbs), op.repeat);
    }
    panic("uncosted PlanOpKind %d", static_cast<int>(op.kind));
}

} // namespace

Tick
bootstrapLocalTicks(const OpCostModel& cost, const NetworkModel& net,
                    const MappingConfig& config, size_t log_slots,
                    size_t limbs)
{
    DftOpTimes t = DftOpTimes::fromCostModel(cost, net, limbs);
    DftPlan plan =
        optimizeDftPlan(config.dftLevels, log_slots, 1, t);
    double dft_s = dftTime(plan, 1, t);
    size_t deg = config.evalExpDegree;
    auto op_s = [&](HeOpType op) {
        return ticksToSeconds(cost.opLatency(op, limbs));
    };
    double evaexp_s = (deg / 2.0 + 1) * op_s(HeOpType::CMult) +
                      static_cast<double>(deg + 1) *
                          (op_s(HeOpType::PMult) + op_s(HeOpType::HAdd));
    double daf_s =
        static_cast<double>(config.dafIters) * op_s(HeOpType::CMult);
    return secondsToTicks(2.0 * dft_s + evaexp_s + daf_s);
}

void
lowerPlanInto(ProgramBuilder& pb, const LogicalPlan& plan,
              const OpCostModel& cost, const NetworkModel& net,
              const MappingConfig& config)
{
    HYDRA_ASSERT(pb.cardCount() == plan.cards,
                 "builder/plan card count mismatch");
    LowerCtx ctx{cost, net, config, plan.logSlots, {}};

    // Plan-local -> builder-issued id rebinding (ids are dense from 1).
    std::vector<uint32_t> labelMap(plan.labels.size());
    for (size_t i = 0; i < plan.labels.size(); ++i)
        labelMap[i] = pb.label(plan.labels[i]);
    std::vector<uint64_t> opId(plan.ops.size() + 1, 0);
    std::vector<uint64_t> msgId(plan.transfers.size() + 1, 0);

    for (const auto& ev : plan.events) {
        if (ev.kind == PlanEvent::Kind::Compute) {
            const PlanOp& op = plan.ops[ev.index];
            std::vector<uint64_t> waits;
            waits.reserve(op.waitMsgs.size());
            for (uint64_t m : op.waitMsgs) {
                HYDRA_ASSERT(m < msgId.size() && msgId[m],
                             "plan op waits on a not-yet-emitted msg");
                waits.push_back(msgId[m]);
            }
            opId[op.id] = pb.addCompute(op.card, lowerDuration(ctx, op),
                                        lowerCost(ctx, op),
                                        labelMap[op.label],
                                        std::move(waits));
        } else {
            const PlanTransfer& t = plan.transfers[ev.index];
            uint64_t after = 0;
            if (t.afterCompute) {
                HYDRA_ASSERT(t.afterCompute < opId.size() &&
                                 opId[t.afterCompute],
                             "plan transfer anchored on a "
                             "not-yet-emitted op");
                after = opId[t.afterCompute];
            }
            uint64_t bytes = t.cts * cost.ciphertextBytes(t.limbs);
            msgId[t.msg] = t.dst == kBroadcast
                               ? pb.broadcastFrom(t.src, bytes, after)
                               : pb.sendTo(t.src, t.dst, bytes, after);
        }
    }
}

Program
lowerPlan(const LogicalPlan& plan, const OpCostModel& cost,
          const NetworkModel& net, const MappingConfig& config)
{
    ProgramBuilder pb(plan.cards);
    lowerPlanInto(pb, plan, cost, net, config);
    return pb.take();
}

} // namespace hydra
