#include "sched/plan.hh"

#include "common/logging.hh"

namespace hydra {

const char*
planOpKindName(PlanOpKind k)
{
    switch (k) {
      case PlanOpKind::OpList:
        return "OpList";
      case PlanOpKind::MixRepeat:
        return "MixRepeat";
      case PlanOpKind::BootstrapLocal:
        return "BootstrapLocal";
    }
    return "?";
}

uint64_t
LogicalPlan::totalTransferCts() const
{
    uint64_t sum = 0;
    for (const auto& t : transfers)
        sum += t.cts;
    return sum;
}

uint32_t
PlanBuilder::label(const std::string& name)
{
    for (uint32_t i = 0; i < plan_.labels.size(); ++i)
        if (plan_.labels[i] == name)
            return i;
    plan_.labels.push_back(name);
    return static_cast<uint32_t>(plan_.labels.size() - 1);
}

uint64_t
PlanBuilder::addOp(PlanOp op)
{
    HYDRA_ASSERT(op.card < plan_.cards, "plan op card out of range");
    op.id = nextOp_++;
    uint64_t id = op.id;
    plan_.events.push_back(
        {PlanEvent::Kind::Compute,
         static_cast<uint32_t>(plan_.ops.size())});
    plan_.ops.push_back(std::move(op));
    return id;
}

uint64_t
PlanBuilder::addTransfer(PlanTransfer t)
{
    HYDRA_ASSERT(t.src < plan_.cards, "plan transfer src out of range");
    HYDRA_ASSERT(t.dst == kBroadcast || t.dst < plan_.cards,
                 "plan transfer dst out of range");
    t.msg = nextMsg_++;
    uint64_t msg = t.msg;
    plan_.events.push_back(
        {PlanEvent::Kind::Transfer,
         static_cast<uint32_t>(plan_.transfers.size())});
    plan_.transfers.push_back(std::move(t));
    return msg;
}

uint64_t
PlanBuilder::addOpList(size_t card, std::vector<PlanTerm> terms,
                       size_t limbs, uint32_t label,
                       std::vector<uint64_t> wait_msgs)
{
    PlanOp op;
    op.card = card;
    op.kind = PlanOpKind::OpList;
    op.terms = std::move(terms);
    op.limbs = limbs;
    op.label = label;
    op.waitMsgs = std::move(wait_msgs);
    return addOp(std::move(op));
}

uint64_t
PlanBuilder::addMixRepeat(size_t card, const OpMix& mix, uint64_t repeat,
                          size_t limbs, uint32_t label,
                          std::vector<uint64_t> wait_msgs)
{
    PlanOp op;
    op.card = card;
    op.kind = PlanOpKind::MixRepeat;
    op.mix = mix;
    op.repeat = repeat;
    op.limbs = limbs;
    op.label = label;
    op.waitMsgs = std::move(wait_msgs);
    return addOp(std::move(op));
}

uint64_t
PlanBuilder::addBootstrapLocal(size_t card, const OpMix& cost_mix,
                               uint64_t repeat, size_t limbs,
                               uint32_t label,
                               std::vector<uint64_t> wait_msgs)
{
    PlanOp op;
    op.card = card;
    op.kind = PlanOpKind::BootstrapLocal;
    op.mix = cost_mix;
    op.repeat = repeat;
    op.limbs = limbs;
    op.label = label;
    op.waitMsgs = std::move(wait_msgs);
    return addOp(std::move(op));
}

uint64_t
PlanBuilder::sendTo(size_t src, size_t dst, uint64_t cts, size_t limbs,
                    uint64_t after_compute)
{
    PlanTransfer t;
    t.src = src;
    t.dst = dst;
    t.cts = cts;
    t.limbs = limbs;
    t.afterCompute = after_compute;
    return addTransfer(std::move(t));
}

uint64_t
PlanBuilder::broadcastFrom(size_t src, uint64_t cts, size_t limbs,
                           uint64_t after_compute)
{
    return sendTo(src, kBroadcast, cts, limbs, after_compute);
}

} // namespace hydra
