#include "sched/runner.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"
#include "sched/graph/netcompile.hh"
#include "sched/progcache.hh"

namespace hydra {

namespace {

/**
 * The one program-construction path of the runner: fetch the step's
 * compiled Program from the shared ProgramCache, compiling
 * plan -> lower -> optimize(Safe) on a miss.  run(), the degraded
 * re-dispatch loops and runJob() all come through here, so identical
 * (machine, cluster, step) combinations compile exactly once per
 * process.
 */
std::shared_ptr<const CompiledStep>
compiledFor(const PrototypeSpec& spec, const ClusterConfig& exec_cluster,
            const ClusterConfig& net_cluster, const OpCostModel& cost,
            const NetworkModel& net, size_t log_slots, const Step& step)
{
    std::string key = stepCacheKey(spec, exec_cluster, net_cluster,
                                   cost.n(), log_slots, step);
    return ProgramCache::global().getOrCompile(key, [&] {
        return compileStep(cost, net, exec_cluster.totalCards(),
                           log_slots, spec.mapping, step);
    });
}

} // namespace

std::unique_ptr<NetworkModel>
PrototypeSpec::makeNetwork() const
{
    if (netKind == NetKind::Switched)
        return std::make_unique<SwitchedNetwork>(net, cluster);
    return std::make_unique<HostMediatedNetwork>(hostNet, cluster);
}

bool
CardGroup::alignedTo(const ClusterConfig& cluster) const
{
    if (cards.empty())
        return false;
    for (size_t i = 1; i < cards.size(); ++i)
        if (cards[i] != cards[i - 1] + 1)
            return false;
    return cards.front() % cluster.cardsPerServer == 0 &&
           cards.size() % cluster.cardsPerServer == 0;
}

CardGroup
CardGroup::contiguous(size_t base, size_t count)
{
    CardGroup g;
    g.cards.resize(count);
    for (size_t i = 0; i < count; ++i)
        g.cards[i] = base + i;
    return g;
}

PrototypeSpec
groupSubSpec(const PrototypeSpec& spec, const CardGroup& group)
{
    PrototypeSpec sub = spec;
    if (group.alignedTo(spec.cluster))
        sub.cluster =
            ClusterConfig{group.size() / spec.cluster.cardsPerServer,
                          spec.cluster.cardsPerServer};
    else
        // Ragged groups lose the server structure: model them as one
        // switch, like the degraded-survivors path.
        sub.cluster = ClusterConfig{1, group.size()};
    return sub;
}

Tick
InferenceResult::procTime(ProcKind k) const
{
    Tick sum = 0;
    for (const auto& s : steps)
        if (s.kind == k)
            sum += s.stats.makespan;
    return sum;
}

Tick
InferenceResult::procComputeFloor(ProcKind k) const
{
    Tick sum = 0;
    for (const auto& s : steps)
        if (s.kind == k)
            sum += s.stats.maxComputeBusy();
    return sum;
}

double
InferenceResult::procCommFraction(ProcKind k) const
{
    Tick t = procTime(k);
    if (t == 0)
        return 0.0;
    return static_cast<double>(t - procComputeFloor(k)) /
           static_cast<double>(t);
}

double
InferenceResult::commFraction() const
{
    if (total.makespan == 0)
        return 0.0;
    Tick floor = 0;
    for (const auto& s : steps)
        floor += s.stats.maxComputeBusy();
    return static_cast<double>(total.makespan - floor) /
           static_cast<double>(total.makespan);
}

InferenceRunner::InferenceRunner(PrototypeSpec spec, size_t ring_n)
    : spec_(std::move(spec)),
      cost_(spec_.fpga, ring_n, spec_.dnum),
      net_(spec_.makeNetwork())
{
}

RunStats
InferenceRunner::runFused(const WorkloadModel& workload) const
{
    StepMapper mapper(cost_, *net_, spec_.cluster.totalCards(),
                      workload.logSlots, spec_.mapping);
    ClusterExecutor executor(spec_.cluster, *net_);
    ProgramBuilder pb(spec_.cluster.totalCards());
    for (const auto& step : workload.steps)
        mapper.mapStepInto(pb, step);
    return executor.run(pb.take());
}

InferenceResult
InferenceRunner::run(const WorkloadModel& workload) const
{
    ClusterExecutor executor(spec_.cluster, *net_);

    InferenceResult result;
    result.machine = spec_.name;
    result.workload = workload.name;
    for (const auto& step : workload.steps) {
        auto compiled =
            compiledFor(spec_, spec_.cluster, spec_.cluster, cost_,
                        *net_, workload.logSlots, step);
        RunStats stats = executor.run(compiled->program);
        result.total.append(stats, net_->stepSyncLatency());
        result.steps.push_back(StepResult{step.name, step.kind, stats});
        result.stepEnds.push_back(result.total.makespan);
    }
    return result;
}

InferenceResult
InferenceRunner::runGraph(const NetworkGraph& graph, OptLevel level,
                          NetOptReport* report) const
{
    InferenceResult result;
    result.machine = spec_.name;
    result.workload = graph.name;

    SpecError err;
    if (!graph.validate(err)) {
        result.error.kind = RunError::Kind::InvalidProgram;
        result.error.message = "runGraph: " + err.describe();
        return result;
    }

    CompiledNetwork cn =
        compileNetwork(spec_, cost_, *net_, graph, level);
    if (report)
        *report = cn.report;

    ClusterExecutor executor(spec_.cluster, *net_);
    for (size_t i = 0; i < cn.units.size(); ++i) {
        const NetUnit& u = cn.units[i];
        RunStats stats = executor.run(cn.programs[i]->program);
        result.total.append(stats, net_->stepSyncLatency());
        result.steps.push_back(StepResult{u.name, u.lead, stats});
        result.stepEnds.push_back(result.total.makespan);
    }
    return result;
}

namespace {

/** Project a machine-global fault plan onto the live cards of a job:
 *  per-card entries are re-keyed to local indices, entries for cards
 *  outside `alive` are dropped, and kill ticks stay absolute. */
FaultPlan
planForGroup(const FaultPlan& plan, const std::vector<size_t>& alive)
{
    FaultPlan out = plan;
    out.stragglers.clear();
    out.cardFailAt.clear();
    for (size_t i = 0; i < alive.size(); ++i) {
        auto s = plan.stragglers.find(alive[i]);
        if (s != plan.stragglers.end())
            out.stragglers[i] = s->second;
        auto k = plan.cardFailAt.find(alive[i]);
        if (k != plan.cardFailAt.end())
            out.cardFailAt[i] = k->second;
    }
    return out;
}

/** Re-key per-card fault entries after card `dead` left the cluster. */
FaultPlan
remapPlanAfterDeath(const FaultPlan& plan, size_t dead)
{
    FaultPlan out = plan;
    out.stragglers.clear();
    out.cardFailAt.clear();
    for (const auto& [card, f] : plan.stragglers)
        if (card != dead)
            out.stragglers[card > dead ? card - 1 : card] = f;
    for (const auto& [card, t] : plan.cardFailAt)
        if (card != dead)
            out.cardFailAt[card > dead ? card - 1 : card] = t;
    return out;
}

} // namespace

InferenceResult
InferenceRunner::run(const WorkloadModel& workload,
                     const FaultPlan& faults,
                     const RetryPolicy& retry) const
{
    InferenceResult result;
    result.machine = spec_.name;
    result.workload = workload.name;

    // alive[i] = original index of the card currently mapped as i.
    std::vector<size_t> alive(spec_.cluster.totalCards());
    for (size_t i = 0; i < alive.size(); ++i)
        alive[i] = i;

    // cardFailAt ticks are interpreted as *global* inference time;
    // each step's executor run restarts its clock, so the plan handed
    // to a step is shifted by the time elapsed so far.
    FaultPlan plan = faults;
    ClusterConfig cluster = spec_.cluster;
    auto executor = std::make_unique<ClusterExecutor>(cluster, *net_);
    executor->setRetryPolicy(retry);

    for (const auto& step : workload.steps) {
        for (;;) {
            Tick elapsed = result.total.makespan;
            FaultPlan stepPlan = plan;
            stepPlan.cardFailAt.clear();
            for (const auto& [card, t] : plan.cardFailAt)
                stepPlan.cardFailAt[card] = t > elapsed ? t - elapsed : 0;
            executor->setFaultPlan(stepPlan);

            // The compiled program is fault-independent: only the
            // executor's fault plan differs between attempts, so the
            // cache stays valid across retries and re-dispatches.
            auto compiled = compiledFor(spec_, cluster, spec_.cluster,
                                        cost_, *net_, workload.logSlots,
                                        step);
            RunResult rr = executor->tryRun(compiled->program);
            if (rr.ok()) {
                result.total.append(rr.stats, net_->stepSyncLatency());
                result.steps.push_back(
                    StepResult{step.name, step.kind, rr.stats});
                result.stepEnds.push_back(result.total.makespan);
                break;
            }
            if (rr.error.kind != RunError::Kind::CardFailed) {
                // Exhausted retries / deadlock: unrecoverable.
                result.error = std::move(rr.error);
                return result;
            }

            // Permanent card failure: charge the aborted attempt,
            // shrink the cluster, and re-dispatch this step onto the
            // survivors (modelled as a flat single-switch cluster).
            size_t dead = rr.error.card;
            result.recoveryPenalty += rr.stats.makespan;
            result.total.append(rr.stats, 0);
            result.failedCards.push_back(alive[dead]);
            ++result.redispatches;
            alive.erase(alive.begin() + dead);
            if (alive.empty()) {
                result.error = std::move(rr.error);
                result.error.message += " (no surviving cards left)";
                return result;
            }
            plan = remapPlanAfterDeath(plan, dead);
            cluster = ClusterConfig{1, alive.size()};
            executor = std::make_unique<ClusterExecutor>(cluster, *net_);
            executor->setRetryPolicy(retry);
        }
    }
    return result;
}

InferenceResult
InferenceRunner::runJob(const WorkloadModel& workload,
                        const CardGroup& group, Tick start_tick,
                        const FaultPlan& faults,
                        const RetryPolicy& retry, size_t first_step,
                        size_t num_steps) const
{
    InferenceResult result;
    result.machine = spec_.name;
    result.workload = workload.name;
    if (group.cards.empty()) {
        result.error.kind = RunError::Kind::InvalidProgram;
        result.error.message = "runJob: empty card group";
        return result;
    }

    // alive[i] = original machine index of the card locally mapped as i.
    std::vector<size_t> alive = group.cards;
    PrototypeSpec sub = groupSubSpec(spec_, group);
    std::unique_ptr<NetworkModel> net = sub.makeNetwork();
    ClusterConfig cluster = sub.cluster;
    auto executor = std::make_unique<ClusterExecutor>(cluster, *net);
    executor->setRetryPolicy(retry);

    size_t end = workload.steps.size();
    first_step = std::min(first_step, end);
    if (num_steps < end - first_step)
        end = first_step + num_steps;

    for (size_t si = first_step; si < end; ++si) {
        const Step& step = workload.steps[si];
        for (;;) {
            // The executor's clock IS the serve clock: each step
            // starts where the job has advanced to, and kill ticks
            // need no shifting.
            executor->setTimeOrigin(start_tick + result.total.makespan);
            executor->setFaultPlan(planForGroup(faults, alive));

            // Identical (workload, group size, alignment) jobs share
            // one compiled program — the serving layer's reuse.
            auto compiled = compiledFor(sub, cluster, sub.cluster,
                                        cost_, *net, workload.logSlots,
                                        step);
            RunResult rr = executor->tryRun(compiled->program);
            if (rr.ok()) {
                result.total.append(rr.stats, net->stepSyncLatency());
                result.steps.push_back(
                    StepResult{step.name, step.kind, rr.stats});
                result.stepEnds.push_back(result.total.makespan);
                break;
            }
            if (rr.error.kind != RunError::Kind::CardFailed) {
                result.error = std::move(rr.error);
                return result;
            }

            // Permanent card failure inside the group: charge the
            // aborted attempt and re-dispatch on the survivors.
            size_t dead = rr.error.card;
            result.recoveryPenalty += rr.stats.makespan;
            result.total.append(rr.stats, 0);
            result.failedCards.push_back(alive[dead]);
            ++result.redispatches;
            alive.erase(alive.begin() + dead);
            if (alive.empty()) {
                result.error = std::move(rr.error);
                result.error.message += " (no surviving cards left)";
                return result;
            }
            cluster = ClusterConfig{1, alive.size()};
            executor = std::make_unique<ClusterExecutor>(cluster, *net);
            executor->setRetryPolicy(retry);
        }
    }
    return result;
}

RunResult
InferenceRunner::runFused(const WorkloadModel& workload,
                          const FaultPlan& faults,
                          const RetryPolicy& retry) const
{
    StepMapper mapper(cost_, *net_, spec_.cluster.totalCards(),
                      workload.logSlots, spec_.mapping);
    ClusterExecutor executor(spec_.cluster, *net_);
    executor.setFaultPlan(faults);
    executor.setRetryPolicy(retry);
    ProgramBuilder pb(spec_.cluster.totalCards());
    for (const auto& step : workload.steps)
        mapper.mapStepInto(pb, step);
    return executor.tryRun(pb.take());
}

} // namespace hydra
