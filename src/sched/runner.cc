#include "sched/runner.hh"

#include <algorithm>
#include <memory>

#include "common/logging.hh"
#include "sched/execplan.hh"
#include "sched/graph/netcompile.hh"
#include "sched/progcache.hh"

namespace hydra {

std::unique_ptr<NetworkModel>
PrototypeSpec::makeNetwork() const
{
    if (netKind == NetKind::Switched)
        return std::make_unique<SwitchedNetwork>(net, cluster);
    return std::make_unique<HostMediatedNetwork>(hostNet, cluster);
}

bool
CardGroup::alignedTo(const ClusterConfig& cluster) const
{
    if (cards.empty())
        return false;
    for (size_t i = 1; i < cards.size(); ++i)
        if (cards[i] != cards[i - 1] + 1)
            return false;
    return cards.front() % cluster.cardsPerServer == 0 &&
           cards.size() % cluster.cardsPerServer == 0;
}

CardGroup
CardGroup::contiguous(size_t base, size_t count)
{
    CardGroup g;
    g.cards.resize(count);
    for (size_t i = 0; i < count; ++i)
        g.cards[i] = base + i;
    return g;
}

PrototypeSpec
groupSubSpec(const PrototypeSpec& spec, const CardGroup& group)
{
    PrototypeSpec sub = spec;
    if (group.alignedTo(spec.cluster))
        sub.cluster =
            ClusterConfig{group.size() / spec.cluster.cardsPerServer,
                          spec.cluster.cardsPerServer};
    else
        // Ragged groups lose the server structure: model them as one
        // switch, like the degraded-survivors path.
        sub.cluster = ClusterConfig{1, group.size()};
    return sub;
}

Tick
InferenceResult::procTime(ProcKind k) const
{
    Tick sum = 0;
    for (const auto& s : steps)
        if (s.kind == k)
            sum += s.stats.makespan;
    return sum;
}

Tick
InferenceResult::procComputeFloor(ProcKind k) const
{
    Tick sum = 0;
    for (const auto& s : steps)
        if (s.kind == k)
            sum += s.stats.maxComputeBusy();
    return sum;
}

double
InferenceResult::procCommFraction(ProcKind k) const
{
    Tick t = procTime(k);
    if (t == 0)
        return 0.0;
    return static_cast<double>(t - procComputeFloor(k)) /
           static_cast<double>(t);
}

double
InferenceResult::commFraction() const
{
    if (total.makespan == 0)
        return 0.0;
    Tick floor = 0;
    for (const auto& s : steps)
        floor += s.stats.maxComputeBusy();
    return static_cast<double>(total.makespan - floor) /
           static_cast<double>(total.makespan);
}

InferenceRunner::InferenceRunner(PrototypeSpec spec, size_t ring_n)
    : spec_(std::move(spec)),
      cost_(spec_.fpga, ring_n, spec_.dnum),
      net_(spec_.makeNetwork())
{
}

RunStats
InferenceRunner::runFused(const WorkloadModel& workload) const
{
    StepMapper mapper(cost_, *net_, spec_.cluster.totalCards(),
                      workload.logSlots, spec_.mapping);
    ClusterExecutor executor(spec_.cluster, *net_);
    ProgramBuilder pb(spec_.cluster.totalCards());
    for (const auto& step : workload.steps)
        mapper.mapStepInto(pb, step);
    return executor.run(pb.take());
}

InferenceResult
InferenceRunner::run(const WorkloadModel& workload) const
{
    return runPlan(compilePlan(spec_, cost_, *net_, workload));
}

InferenceResult
InferenceRunner::runGraph(const NetworkGraph& graph, OptLevel level,
                          NetOptReport* report) const
{
    SpecError err;
    if (!graph.validate(err)) {
        InferenceResult result;
        result.machine = spec_.name;
        result.workload = graph.name;
        result.error.kind = RunError::Kind::InvalidProgram;
        result.error.message = "runGraph: " + err.describe();
        return result;
    }

    ExecPlan plan = compilePlan(spec_, cost_, *net_, graph, level);
    if (report)
        *report = plan.report;
    return runPlan(plan);
}

std::shared_ptr<const ExecPlan>
InferenceRunner::planFor(const WorkloadModel& workload,
                         OptLevel level) const
{
    return std::make_shared<ExecPlan>(
        compilePlan(spec_, cost_, *net_, workload, level));
}

std::shared_ptr<const ExecPlan>
InferenceRunner::planForJob(const WorkloadModel& workload,
                            const CardGroup& group, OptLevel level) const
{
    PrototypeSpec sub = groupSubSpec(spec_, group);
    std::unique_ptr<NetworkModel> net = sub.makeNetwork();
    return std::make_shared<ExecPlan>(compilePlan(
        sub, cost_, *net, workload, level, PlanWindow::none()));
}

size_t
InferenceRunner::planUnitCount(const WorkloadModel& workload,
                               OptLevel level) const
{
    return hydra::planUnitCount(spec_, cost_, *net_, workload, level);
}

InferenceResult
InferenceRunner::runPlan(const ExecPlan& plan, size_t first_unit,
                         size_t num_units) const
{
    InferenceResult result;
    result.machine = spec_.name;
    result.workload = plan.workload;

    size_t end = plan.units.size();
    first_unit = std::min(first_unit, end);
    if (num_units < end - first_unit)
        end = first_unit + num_units;

    ClusterExecutor executor(spec_.cluster, *net_);
    for (size_t ui = first_unit; ui < end; ++ui) {
        const ExecUnit& u = plan.units[ui];
        auto compiled = u.compiled
                            ? u.compiled
                            : compilePlanUnit(spec_, spec_.cluster,
                                              spec_.cluster, cost_,
                                              *net_, plan.logSlots, u,
                                              plan.level);
        RunStats stats = executor.run(compiled->program);
        result.total.append(stats, net_->stepSyncLatency());
        result.steps.push_back(StepResult{u.name, u.lead, stats});
        result.stepEnds.push_back(result.total.makespan);
    }
    return result;
}

namespace {

/** Project a machine-global fault plan onto the live cards of a job:
 *  per-card entries are re-keyed to local indices, entries for cards
 *  outside `alive` are dropped, and kill ticks stay absolute. */
FaultPlan
planForGroup(const FaultPlan& plan, const std::vector<size_t>& alive)
{
    FaultPlan out = plan;
    out.stragglers.clear();
    out.cardFailAt.clear();
    for (size_t i = 0; i < alive.size(); ++i) {
        auto s = plan.stragglers.find(alive[i]);
        if (s != plan.stragglers.end())
            out.stragglers[i] = s->second;
        auto k = plan.cardFailAt.find(alive[i]);
        if (k != plan.cardFailAt.end())
            out.cardFailAt[i] = k->second;
    }
    return out;
}

} // namespace

InferenceResult
InferenceRunner::execFaulted(const PrototypeSpec& sub,
                             const NetworkModel& net,
                             const ExecPlan& plan,
                             const std::vector<size_t>& cards,
                             Tick start_tick, bool absolute_clock,
                             const FaultPlan& faults,
                             const RetryPolicy& retry, size_t first_unit,
                             size_t num_units) const
{
    InferenceResult result;
    result.machine = spec_.name;
    result.workload = plan.workload;

    // alive[i] = original machine index of the card locally mapped
    // as i.
    std::vector<size_t> alive = cards;
    ClusterConfig cluster = sub.cluster;
    auto executor = std::make_unique<ClusterExecutor>(cluster, net);
    executor->setRetryPolicy(retry);
    // Materialized programs are only valid while the executing cluster
    // matches the plan's shape; after a death (or a shape mismatch)
    // every attempt resolves through the ProgramCache.
    bool planShape =
        sub.cluster.servers == plan.cluster.servers &&
        sub.cluster.cardsPerServer == plan.cluster.cardsPerServer;
    bool degraded = false;

    size_t end = plan.units.size();
    first_unit = std::min(first_unit, end);
    if (num_units < end - first_unit)
        end = first_unit + num_units;

    for (size_t ui = first_unit; ui < end; ++ui) {
        const ExecUnit& u = plan.units[ui];
        for (;;) {
            Tick elapsed = result.total.makespan;
            FaultPlan fp = planForGroup(faults, alive);
            if (absolute_clock) {
                // The executor's clock IS the serve clock: each unit
                // starts where the job has advanced to, and kill
                // ticks need no shifting.
                executor->setTimeOrigin(start_tick + elapsed);
            } else {
                // Legacy whole-machine semantics: cardFailAt ticks
                // are global inference time, but each unit's executor
                // run restarts its clock — shift the plan by the time
                // elapsed so far.
                for (auto& [card, t] : fp.cardFailAt)
                    t = t > elapsed ? t - elapsed : 0;
            }
            executor->setFaultPlan(fp);

            // The compiled program is fault-independent: only the
            // executor's fault plan differs between attempts, so the
            // cache stays valid across retries and re-dispatches.
            auto compiled =
                (!degraded && planShape && u.compiled)
                    ? u.compiled
                    : compilePlanUnit(sub, cluster, sub.cluster, cost_,
                                      net, plan.logSlots, u,
                                      plan.level);
            RunResult rr = executor->tryRun(compiled->program);
            if (rr.ok()) {
                result.total.append(rr.stats, net.stepSyncLatency());
                result.steps.push_back(
                    StepResult{u.name, u.lead, rr.stats});
                result.stepEnds.push_back(result.total.makespan);
                break;
            }
            if (rr.error.kind != RunError::Kind::CardFailed) {
                // Exhausted retries / deadlock: unrecoverable.
                result.error = std::move(rr.error);
                return result;
            }

            // Permanent card failure: charge the aborted attempt,
            // shrink the cluster, and re-dispatch this unit onto the
            // survivors (modelled as a flat single-switch cluster).
            size_t dead = rr.error.card;
            result.recoveryPenalty += rr.stats.makespan;
            result.total.append(rr.stats, 0);
            result.failedCards.push_back(alive[dead]);
            ++result.redispatches;
            alive.erase(alive.begin() + dead);
            if (alive.empty()) {
                result.error = std::move(rr.error);
                result.error.message += " (no surviving cards left)";
                return result;
            }
            cluster = ClusterConfig{1, alive.size()};
            degraded = true;
            executor = std::make_unique<ClusterExecutor>(cluster, net);
            executor->setRetryPolicy(retry);
        }
    }
    return result;
}

InferenceResult
InferenceRunner::run(const WorkloadModel& workload,
                     const FaultPlan& faults,
                     const RetryPolicy& retry) const
{
    ExecPlan plan = compilePlan(spec_, cost_, *net_, workload,
                                OptLevel::Safe, PlanWindow::none());
    std::vector<size_t> cards(spec_.cluster.totalCards());
    for (size_t i = 0; i < cards.size(); ++i)
        cards[i] = i;
    return execFaulted(spec_, *net_, plan, cards, 0,
                       /*absolute_clock=*/false, faults, retry, 0,
                       static_cast<size_t>(-1));
}

InferenceResult
InferenceRunner::runJob(const WorkloadModel& workload,
                        const CardGroup& group, Tick start_tick,
                        const FaultPlan& faults,
                        const RetryPolicy& retry, size_t first_step,
                        size_t num_steps) const
{
    if (group.cards.empty()) {
        InferenceResult result;
        result.machine = spec_.name;
        result.workload = workload.name;
        result.error.kind = RunError::Kind::InvalidProgram;
        result.error.message = "runJob: empty card group";
        return result;
    }
    PrototypeSpec sub = groupSubSpec(spec_, group);
    std::unique_ptr<NetworkModel> net = sub.makeNetwork();
    ExecPlan plan = compilePlan(sub, cost_, *net, workload,
                                OptLevel::Safe, PlanWindow::none());
    return execFaulted(sub, *net, plan, group.cards, start_tick,
                       /*absolute_clock=*/true, faults, retry,
                       first_step, num_steps);
}

InferenceResult
InferenceRunner::runJob(const ExecPlan& plan, const CardGroup& group,
                        Tick start_tick, const FaultPlan& faults,
                        const RetryPolicy& retry, size_t first_unit,
                        size_t num_units) const
{
    if (group.cards.empty()) {
        InferenceResult result;
        result.machine = spec_.name;
        result.workload = plan.workload;
        result.error.kind = RunError::Kind::InvalidProgram;
        result.error.message = "runJob: empty card group";
        return result;
    }
    PrototypeSpec sub = groupSubSpec(spec_, group);
    std::unique_ptr<NetworkModel> net = sub.makeNetwork();
    return execFaulted(sub, *net, plan, group.cards, start_tick,
                       /*absolute_clock=*/true, faults, retry,
                       first_unit, num_units);
}

RunResult
InferenceRunner::runFused(const WorkloadModel& workload,
                          const FaultPlan& faults,
                          const RetryPolicy& retry) const
{
    StepMapper mapper(cost_, *net_, spec_.cluster.totalCards(),
                      workload.logSlots, spec_.mapping);
    ClusterExecutor executor(spec_.cluster, *net_);
    executor.setFaultPlan(faults);
    executor.setRetryPolicy(retry);
    ProgramBuilder pb(spec_.cluster.totalCards());
    for (const auto& step : workload.steps)
        mapper.mapStepInto(pb, step);
    return executor.tryRun(pb.take());
}

} // namespace hydra
