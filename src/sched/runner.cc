#include "sched/runner.hh"

#include "common/logging.hh"

namespace hydra {

std::unique_ptr<NetworkModel>
PrototypeSpec::makeNetwork() const
{
    if (netKind == NetKind::Switched)
        return std::make_unique<SwitchedNetwork>(net, cluster);
    return std::make_unique<HostMediatedNetwork>(hostNet, cluster);
}

Tick
InferenceResult::procTime(ProcKind k) const
{
    Tick sum = 0;
    for (const auto& s : steps)
        if (s.kind == k)
            sum += s.stats.makespan;
    return sum;
}

Tick
InferenceResult::procComputeFloor(ProcKind k) const
{
    Tick sum = 0;
    for (const auto& s : steps)
        if (s.kind == k)
            sum += s.stats.maxComputeBusy();
    return sum;
}

double
InferenceResult::procCommFraction(ProcKind k) const
{
    Tick t = procTime(k);
    if (t == 0)
        return 0.0;
    return static_cast<double>(t - procComputeFloor(k)) /
           static_cast<double>(t);
}

double
InferenceResult::commFraction() const
{
    if (total.makespan == 0)
        return 0.0;
    Tick floor = 0;
    for (const auto& s : steps)
        floor += s.stats.maxComputeBusy();
    return static_cast<double>(total.makespan - floor) /
           static_cast<double>(total.makespan);
}

InferenceRunner::InferenceRunner(PrototypeSpec spec, size_t ring_n)
    : spec_(std::move(spec)),
      cost_(spec_.fpga, ring_n, spec_.dnum),
      net_(spec_.makeNetwork())
{
}

RunStats
InferenceRunner::runFused(const WorkloadModel& workload) const
{
    StepMapper mapper(cost_, *net_, spec_.cluster.totalCards(),
                      workload.logSlots, spec_.mapping);
    ClusterExecutor executor(spec_.cluster, *net_);
    ProgramBuilder pb(spec_.cluster.totalCards());
    for (const auto& step : workload.steps)
        mapper.mapStepInto(pb, step);
    return executor.run(pb.take());
}

InferenceResult
InferenceRunner::run(const WorkloadModel& workload) const
{
    StepMapper mapper(cost_, *net_, spec_.cluster.totalCards(),
                      workload.logSlots, spec_.mapping);
    ClusterExecutor executor(spec_.cluster, *net_);

    InferenceResult result;
    result.machine = spec_.name;
    result.workload = workload.name;
    for (const auto& step : workload.steps) {
        Program prog = mapper.mapStep(step);
        RunStats stats = executor.run(prog);
        result.total.append(stats, net_->stepSyncLatency());
        result.steps.push_back(StepResult{step.name, step.kind, stats});
    }
    return result;
}

} // namespace hydra
