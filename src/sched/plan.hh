/**
 * @file
 * LogicalPlan: the machine-independent step IR of the schedule
 * compiler (stage 1 of plan -> lower -> optimize).
 *
 * A plan captures *what* the StepMapper decided — which card runs
 * which operation group, in what emission order, and which logical
 * transfers connect them — without binding a cost or network model:
 * compute ops carry HeOp term lists / op-mix repetitions instead of
 * Ticks, and transfers carry ciphertext counts instead of bytes.  The
 * lower stage (sched/lower.hh) replays the plan against an
 * OpCostModel/NetworkModel pair to produce an executable Program, so
 * one decomposition re-costs across Hydra-S/M/L and the baseline
 * machines without re-running the Eq.-1/Alg.-1 searches.
 *
 * Structural caveat: the bootstrap DFT shape (Radix/bs per level,
 * Eq. 1) is itself chosen with a cost model, so a plan freezes the
 * planning machine's DFT decomposition; lowering re-prices it but
 * does not re-optimize it.
 */

#ifndef HYDRA_SCHED_PLAN_HH
#define HYDRA_SCHED_PLAN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sync/task.hh"
#include "trace/heop.hh"

namespace hydra {

/** How a PlanOp's duration/cost lower against a cost model. */
enum class PlanOpKind : uint8_t
{
    /** Sum of PlanTerm op latencies/costs (tree phases, reductions). */
    OpList,
    /** One OpMix priced as a unit, repeated `repeat` times: duration
     *  is latency(mixCost(mix)) * repeat — the roofline is taken once,
     *  exactly like the uniform-step chunk formula. */
    MixRepeat,
    /** `repeat` whole single-card bootstraps (2 DFTs + EvaExp +
     *  double-angle); duration needs the Eq.-1 model at lower time. */
    BootstrapLocal,
};

const char* planOpKindName(PlanOpKind k);

/**
 * One HeOp term of an OpList.  `timed`/`costed` express asymmetric
 * accounting: the bootstrap double-angle step times rot+ha+pm but
 * charges only the CMult iterations to the energy model.
 */
struct PlanTerm
{
    HeOpType op = HeOpType::HAdd;
    uint64_t count = 0;
    bool timed = true;
    bool costed = true;
};

/** One compute node of the plan (lowers to one ComputeTask). */
struct PlanOp
{
    /** Plan-local id, dense from 1 in emission order. */
    uint64_t id = 0;
    size_t card = 0;
    PlanOpKind kind = PlanOpKind::OpList;
    /** OpList only. */
    std::vector<PlanTerm> terms;
    /** MixRepeat / BootstrapLocal: the priced (representative) mix. */
    OpMix mix;
    /** MixRepeat / BootstrapLocal repetition count. */
    uint64_t repeat = 1;
    /** Active modulus-chain limbs for every term of this op. */
    size_t limbs = 0;
    /** Plan-local message ids that must land first (CT_d). */
    std::vector<uint64_t> waitMsgs;
    /** Index into LogicalPlan::labels. */
    uint32_t label = 0;
};

/** One logical transfer (lowers to a send plus its recvs). */
struct PlanTransfer
{
    /** Plan-local message id, dense from 1 in emission order. */
    uint64_t msg = 0;
    size_t src = 0;
    /** Destination card or kBroadcast. */
    size_t dst = 0;
    /** Payload in ciphertexts; bytes bind at lower time as
     *  cts * OpCostModel::ciphertextBytes(limbs). */
    uint64_t cts = 0;
    size_t limbs = 0;
    /** Plan-local compute id the send is anchored on (0 = none). */
    uint64_t afterCompute = 0;
};

/** Emission-order record: which table the next event lives in. */
struct PlanEvent
{
    enum class Kind : uint8_t { Compute, Transfer };

    Kind kind = Kind::Compute;
    /** Index into LogicalPlan::ops or ::transfers. */
    uint32_t index = 0;
};

/**
 * A whole-step logical plan.  `events` preserves the exact
 * interleaving of compute and transfer emission, so lowering replays
 * the same ProgramBuilder call sequence the direct path used to make
 * — ids, queue orders and label interning come out bit-identical.
 */
struct LogicalPlan
{
    size_t cards = 0;
    /** log2 slot count of the planned workload (bootstrap lowering). */
    size_t logSlots = 0;
    std::vector<std::string> labels;
    std::vector<PlanOp> ops;
    std::vector<PlanTransfer> transfers;
    std::vector<PlanEvent> events;

    /** Total transfer payload in ciphertexts (no cost model needed). */
    uint64_t totalTransferCts() const;
};

/**
 * Mirror of ProgramBuilder for the plan layer: hands out plan-local
 * compute and message ids in call order and records the emission
 * sequence.
 */
class PlanBuilder
{
  public:
    explicit PlanBuilder(size_t n_cards) { plan_.cards = n_cards; }

    LogicalPlan take() { return std::move(plan_); }
    LogicalPlan& plan() { return plan_; }
    size_t cardCount() const { return plan_.cards; }

    void setLogSlots(size_t log_slots) { plan_.logSlots = log_slots; }

    /** Intern a label name, returning its id. */
    uint32_t label(const std::string& name);

    /** Append an OpList compute op; returns its plan-local id. */
    uint64_t addOpList(size_t card, std::vector<PlanTerm> terms,
                       size_t limbs, uint32_t label,
                       std::vector<uint64_t> wait_msgs = {});

    /** Append a MixRepeat compute op; returns its plan-local id. */
    uint64_t addMixRepeat(size_t card, const OpMix& mix, uint64_t repeat,
                          size_t limbs, uint32_t label,
                          std::vector<uint64_t> wait_msgs = {});

    /** Append a BootstrapLocal compute op; returns its plan-local id. */
    uint64_t addBootstrapLocal(size_t card, const OpMix& cost_mix,
                               uint64_t repeat, size_t limbs,
                               uint32_t label,
                               std::vector<uint64_t> wait_msgs = {});

    /** Logical point-to-point transfer of `cts` ciphertexts; returns
     *  the plan-local message id. */
    uint64_t sendTo(size_t src, size_t dst, uint64_t cts, size_t limbs,
                    uint64_t after_compute = 0);

    /** Logical broadcast of `cts` ciphertexts from `src`. */
    uint64_t broadcastFrom(size_t src, uint64_t cts, size_t limbs,
                           uint64_t after_compute = 0);

  private:
    uint64_t addOp(PlanOp op);
    uint64_t addTransfer(PlanTransfer t);

    LogicalPlan plan_;
    uint64_t nextOp_ = 1;  // 0 means "no dependency"
    uint64_t nextMsg_ = 1;
};

} // namespace hydra

#endif // HYDRA_SCHED_PLAN_HH
