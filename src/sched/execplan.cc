#include "sched/execplan.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hydra {

namespace {

/** Window-independent plan identity (see ExecPlan::key). */
std::string
planKey(const PrototypeSpec& spec, const OpCostModel& cost,
        size_t log_slots, const std::string& name,
        const std::vector<const Step*>& pre_pass, OptLevel level)
{
    std::string key = machineCacheKey(spec, spec.cluster, spec.cluster,
                                      cost.n(), log_slots, level);
    key += "|w=" + name;
    for (const Step* s : pre_pass)
        key += stepContentKey(*s);
    return key;
}

/** The unit's ProgramCache key for a given executing cluster; mirrors
 *  compileNetUnit's key choice so skeleton plans advertise the exact
 *  key a later materialization resolves. */
std::string
unitKeyFor(const PrototypeSpec& spec, const ClusterConfig& exec_cluster,
           const ClusterConfig& net_cluster, const OpCostModel& cost,
           size_t log_slots, const ExecUnit& unit, OptLevel level)
{
    if (unit.steps.size() == 1)
        return stepCacheKey(spec, exec_cluster, net_cluster, cost.n(),
                            log_slots, unit.steps[0], level);
    std::vector<const Step*> members;
    members.reserve(unit.steps.size());
    for (const Step& s : unit.steps)
        members.push_back(&s);
    return unitCacheKey(spec, exec_cluster, net_cluster, cost.n(),
                        log_slots, members, unit.kind, level);
}

/** Materialize programs for the windowed units of `plan`. */
void
materialize(ExecPlan& plan, const PrototypeSpec& spec,
            const OpCostModel& cost, const NetworkModel& net,
            PlanWindow window)
{
    size_t end = plan.units.size();
    size_t first = std::min(window.first, end);
    if (window.count < end - first)
        end = first + window.count;
    for (size_t i = first; i < end; ++i)
        plan.units[i].compiled =
            compilePlanUnit(spec, plan.cluster, plan.cluster, cost, net,
                            plan.logSlots, plan.units[i], plan.level);
}

} // namespace

std::shared_ptr<const CompiledStep>
compilePlanUnit(const PrototypeSpec& spec,
                const ClusterConfig& exec_cluster,
                const ClusterConfig& net_cluster, const OpCostModel& cost,
                const NetworkModel& net, size_t log_slots,
                const ExecUnit& unit, OptLevel level)
{
    std::vector<const Step*> members;
    members.reserve(unit.steps.size());
    for (const Step& s : unit.steps)
        members.push_back(&s);
    return compileNetUnit(spec, exec_cluster, net_cluster, cost, net,
                          log_slots, members, unit.kind, level);
}

ExecPlan
compilePlan(const PrototypeSpec& spec, const OpCostModel& cost,
            const NetworkModel& net, const WorkloadModel& workload,
            OptLevel level, PlanWindow window)
{
    if (level == OptLevel::Aggressive)
        // The cross-step passes need the graph form; fromModel lifts
        // the step list to the equivalent chain (same names, same
        // content, identity topo order).
        return compilePlan(spec, cost, net,
                           NetworkGraph::fromModel(workload), level,
                           window);

    // Step-list fast path: one Single unit per step, keyed exactly
    // like the pre-ExecPlan runner (stepCacheKey), no graph machinery.
    ExecPlan plan;
    plan.machine = spec.name;
    plan.workload = workload.name;
    plan.level = level;
    plan.cluster = spec.cluster;
    plan.logSlots = workload.logSlots;
    plan.report.level = level;

    std::vector<const Step*> pre;
    pre.reserve(workload.steps.size());
    for (const Step& s : workload.steps)
        pre.push_back(&s);
    plan.key = planKey(spec, cost, workload.logSlots, workload.name,
                       pre, level);

    plan.units.reserve(workload.steps.size());
    for (const Step& s : workload.steps) {
        ExecUnit u;
        u.kind = NetUnit::Kind::Single;
        u.name = s.name;
        u.lead = s.kind;
        u.steps.push_back(s);
        u.key = unitKeyFor(spec, plan.cluster, plan.cluster, cost,
                           plan.logSlots, u, level);
        plan.units.push_back(std::move(u));
    }
    materialize(plan, spec, cost, net, window);
    return plan;
}

ExecPlan
compilePlan(const PrototypeSpec& spec, const OpCostModel& cost,
            const NetworkModel& net, const NetworkGraph& graph,
            OptLevel level, PlanWindow window)
{
    ExecPlan plan;
    plan.machine = spec.name;
    plan.workload = graph.name;
    plan.level = level;
    plan.cluster = spec.cluster;
    plan.logSlots = graph.logSlots;

    // Identity over the PRE-pass content: the passes are deterministic
    // functions of it, so post-pass rewrites need not enter the key.
    std::vector<uint32_t> order;
    SpecError err;
    if (!graph.topoOrder(order, err))
        fatal("compilePlan on an invalid graph: %s",
              err.describe().c_str());
    std::vector<const Step*> pre;
    pre.reserve(order.size());
    for (uint32_t id : order)
        pre.push_back(&graph.nodes[id].step);
    plan.key =
        planKey(spec, cost, graph.logSlots, graph.name, pre, level);

    NetPartition part = partitionNetwork(spec, cost, net, graph, level);
    plan.report = part.report;
    plan.units.reserve(part.units.size());
    for (const NetUnit& nu : part.units) {
        ExecUnit u;
        u.kind = nu.kind;
        u.name = nu.name;
        u.lead = nu.lead;
        u.steps.reserve(nu.nodes.size());
        for (uint32_t id : nu.nodes)
            u.steps.push_back(part.steps[id]);
        u.key = unitKeyFor(spec, plan.cluster, plan.cluster, cost,
                           plan.logSlots, u, level);
        plan.units.push_back(std::move(u));
    }
    materialize(plan, spec, cost, net, window);
    return plan;
}

size_t
planUnitCount(const PrototypeSpec& spec, const OpCostModel& cost,
              const NetworkModel& net, const WorkloadModel& workload,
              OptLevel level)
{
    if (level != OptLevel::Aggressive)
        return workload.steps.size();
    NetPartition part =
        partitionNetwork(spec, cost, net,
                         NetworkGraph::fromModel(workload), level);
    return part.units.size();
}

} // namespace hydra
