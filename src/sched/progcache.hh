/**
 * @file
 * Shared compiled-program cache: the reuse layer of the schedule
 * compiler (plan -> lower -> optimize -> cache).
 *
 * The paper's host software preloads instruction streams (Section
 * IV-D); compiling one is pure — a Program depends only on the cost
 * model (card microarchitecture, ring, dnum), the network model (kind,
 * parameters, topology), the card count, the mapping knobs and the
 * step content — and is fault-independent: fault plans act at
 * *execution* time, so a cached Program stays valid under any
 * FaultPlan.  InferenceRunner (run / degraded re-dispatch / runJob)
 * and ServeSim therefore share one process-wide cache keyed by those
 * inputs, in the counter style of BufferPool: deep serving runs and
 * repeated identical layers (ResNet blocks, transformer layers) hit
 * after the first compile.
 *
 * Keys are explicit human-readable strings covering every mapping
 * input (no hash collisions by construction); step *names* and step
 * indices are excluded so content-identical layers share one entry.
 */

#ifndef HYDRA_SCHED_PROGCACHE_HH
#define HYDRA_SCHED_PROGCACHE_HH

#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "sched/lower.hh"
#include "sched/passes.hh"
#include "sched/runner.hh"

namespace hydra {

/** One cached compilation result (immutable once published). */
struct CompiledStep
{
    Program program;
    OptReport report;
};

/**
 * Compile one step end to end: plan (StepMapper decomposition), lower
 * (bind `cost`/`net`), optimize (`level` pass pipeline, gated on
 * net.overlapsCompute()).
 */
CompiledStep compileStep(const OpCostModel& cost, const NetworkModel& net,
                         size_t cards, size_t log_slots,
                         const MappingConfig& mapping, const Step& step,
                         OptLevel level = OptLevel::Safe);

/**
 * Machine half of a cache key: everything the cost/network models and
 * the mapper read, except the step content.  The network-level
 * compiler (sched/graph/netcompile.hh) appends one stepContentKey()
 * per fused member to this to key multi-step units.
 *
 * @param spec machine description (name + card/network/mapping params)
 * @param exec_cluster topology of the executing (sub-)cluster — the
 *        mapper's card count
 * @param net_cluster topology the network model was built from (the
 *        degraded re-dispatch path keeps the machine network while
 *        shrinking the executing cluster, so the two can differ)
 * @param ring_n CKKS ring dimension of the cost model
 * @param log_slots workload slot geometry (bootstrap DFT size)
 */
std::string machineCacheKey(const PrototypeSpec& spec,
                            const ClusterConfig& exec_cluster,
                            const ClusterConfig& net_cluster,
                            size_t ring_n, size_t log_slots,
                            OptLevel level = OptLevel::Safe);

/** Step half of a cache key: content only — the step's name/index is
 *  deliberately excluded so identical layers share one entry. */
std::string stepContentKey(const Step& step);

/** Cache key for one step compilation (machine half + step half). */
std::string stepCacheKey(const PrototypeSpec& spec,
                         const ClusterConfig& exec_cluster,
                         const ClusterConfig& net_cluster, size_t ring_n,
                         size_t log_slots, const Step& step,
                         OptLevel level = OptLevel::Safe);

/**
 * Process-wide compiled-program cache (BufferPool-style counters),
 * bounded: at most `capacity()` entries are retained, trimmed in
 * least-recently-used order — network-level unit keys multiply the
 * entry population, so unbounded growth is no longer acceptable.
 */
class ProgramCache
{
  public:
    /** Default entry cap: far above one machine's distinct steps, far
     *  below a sweep over every (machine, model, level) combination. */
    static constexpr size_t kDefaultCapacity = 4096;

    /** Counter snapshot; hits/misses/evictions are cumulative, entries
     *  current. */
    struct Stats
    {
        uint64_t hits = 0;   ///< lookups served from the cache
        uint64_t misses = 0; ///< lookups that compiled fresh
        uint64_t entries = 0;
        uint64_t evictions = 0; ///< entries trimmed by the LRU bound

        double
        hitRate() const
        {
            uint64_t n = hits + misses;
            return n ? static_cast<double>(hits) /
                           static_cast<double>(n)
                     : 0.0;
        }
    };

    /** The singleton cache shared by runner and serving layers. */
    static ProgramCache& global();

    ProgramCache() = default;
    ProgramCache(const ProgramCache&) = delete;
    ProgramCache& operator=(const ProgramCache&) = delete;

    /**
     * Return the entry for `key`, invoking `compile` on a miss.  The
     * returned CompiledStep is shared and immutable; executors run the
     * program without copying it.
     */
    std::shared_ptr<const CompiledStep>
    getOrCompile(const std::string& key,
                 const std::function<CompiledStep()>& compile);

    /** Peek without counting or compiling (tests). */
    std::shared_ptr<const CompiledStep>
    lookup(const std::string& key) const;

    Stats stats() const;

    /** Zero the cumulative hit/miss/eviction counters (entries stay). */
    void resetStats();

    /** Drop every entry (counters stay). */
    void clear();

    /** Current entry cap (0 = unbounded). */
    size_t capacity() const;

    /** Set the entry cap; 0 disables trimming.  Shrinking below the
     *  current population evicts LRU entries immediately. */
    void setCapacity(size_t cap);

  private:
    struct Entry
    {
        std::shared_ptr<const CompiledStep> compiled;
        /** Position in lru_ (front = most recently used). */
        std::list<std::string>::iterator pos;
    };

    /** Evict past-capacity entries; mu_ must be held. */
    void trimLocked();

    mutable std::mutex mu_;
    std::unordered_map<std::string, Entry> map_;
    std::list<std::string> lru_;
    size_t capacity_ = kDefaultCapacity;
    uint64_t hits_ = 0;
    uint64_t misses_ = 0;
    uint64_t evictions_ = 0;
};

} // namespace hydra

#endif // HYDRA_SCHED_PROGCACHE_HH
