#include "sched/graph/graph.hh"

#include <algorithm>
#include <bit>

#include "common/logging.hh"

namespace hydra {

size_t
layerDepth(const Step& step)
{
    switch (step.kind) {
      case ProcKind::Bootstrap:
        return 0;
      case ProcKind::NonLinear:
        // BSGS ladder of a degree-d polynomial: ceil(log2(d + 1))
        // rescales (degree 15 -> 4 levels).
        return std::bit_width(step.polyDegree);
      default:
        return 1;
    }
}

NetworkGraph
NetworkGraph::fromModel(const WorkloadModel& model)
{
    NetworkGraph g;
    g.name = model.name;
    g.logSlots = model.logSlots;
    g.maxLimbs = model.maxLimbs;
    g.nodes.reserve(model.steps.size());
    for (size_t i = 0; i < model.steps.size(); ++i) {
        LayerNode n;
        n.id = static_cast<uint32_t>(i);
        n.step = model.steps[i];
        g.nodes.push_back(std::move(n));
    }
    for (size_t i = 0; i + 1 < model.steps.size(); ++i)
        g.edges.push_back(GraphEdge{static_cast<uint32_t>(i),
                                    static_cast<uint32_t>(i + 1),
                                    model.steps[i].outputCts});
    g.annotateLevels();
    return g;
}

WorkloadModel
NetworkGraph::toModel() const
{
    std::vector<uint32_t> order;
    SpecError err;
    if (!topoOrder(order, err))
        fatal("NetworkGraph::toModel on a cyclic graph: %s",
              err.describe().c_str());
    WorkloadModel m;
    m.name = name;
    m.logSlots = logSlots;
    m.maxLimbs = maxLimbs;
    m.steps.reserve(order.size());
    for (uint32_t id : order)
        m.steps.push_back(nodes[id].step);
    return m;
}

bool
NetworkGraph::topoOrder(std::vector<uint32_t>& order, SpecError& err) const
{
    order.clear();
    std::vector<size_t> indeg(nodes.size(), 0);
    for (const auto& e : edges)
        if (e.dst < nodes.size())
            ++indeg[e.dst];
    // Kahn with a smallest-id-first scan: deterministic, and a chain
    // graph comes out in authored order.  Node counts are model-sized
    // (hundreds), so the quadratic scan is irrelevant.
    std::vector<bool> done(nodes.size(), false);
    for (size_t picked = 0; picked < nodes.size(); ++picked) {
        size_t next = nodes.size();
        for (size_t i = 0; i < nodes.size(); ++i)
            if (!done[i] && indeg[i] == 0) {
                next = i;
                break;
            }
        if (next == nodes.size()) {
            err.message = "network graph has a dependency cycle";
            err.token = nodes.empty() ? name : nodes[0].step.name;
            for (size_t i = 0; i < nodes.size(); ++i)
                if (!done[i]) {
                    err.token = nodes[i].step.name;
                    break;
                }
            return false;
        }
        done[next] = true;
        order.push_back(static_cast<uint32_t>(next));
        for (const auto& e : edges)
            if (e.src == next && e.dst < nodes.size())
                --indeg[e.dst];
    }
    return true;
}

bool
NetworkGraph::validate(SpecError& err) const
{
    auto fail = [&](std::string msg, std::string token) {
        err.message = std::move(msg);
        err.token = std::move(token);
        return false;
    };
    if (name.empty())
        return fail("network graph wants a model name", "model");
    if (logSlots == 0 || logSlots > 20)
        return fail("network graph wants 1 <= logSlots <= 20",
                    strf("%zu", logSlots));
    if (maxLimbs == 0 || maxLimbs > 64)
        return fail("network graph wants 1 <= maxLimbs <= 64",
                    strf("%zu", maxLimbs));
    if (nodes.empty())
        return fail("network graph has no layers", name);
    for (size_t i = 0; i < nodes.size(); ++i) {
        const LayerNode& n = nodes[i];
        const Step& s = n.step;
        if (n.id != i)
            return fail("network graph node ids must be dense",
                        strf("%u", n.id));
        if (s.name.empty())
            return fail("layer wants a non-empty name", strf("#%zu", i));
        if (s.parallelism == 0)
            return fail("layer wants parallelism >= 1", s.name);
        if (s.limbs == 0 || s.limbs > maxLimbs)
            return fail("layer limbs must be in [1, maxLimbs]", s.name);
        if (s.kind == ProcKind::NonLinear && s.polyDegree == 0)
            return fail("non-linear layer wants a polynomial degree",
                        s.name);
        if (s.unitScale <= 0.0)
            return fail("layer wants unitScale > 0", s.name);
        if (s.outputCts == 0)
            return fail("layer wants outputCts >= 1", s.name);
    }
    for (const auto& e : edges) {
        if (e.src >= nodes.size() || e.dst >= nodes.size())
            return fail("edge references an unknown layer",
                        strf("%u->%u", e.src, e.dst));
        if (e.src == e.dst)
            return fail("edge forms a self-loop",
                        nodes[e.src].step.name);
        if (e.cts == 0)
            return fail("edge wants cts >= 1",
                        strf("%u->%u", e.src, e.dst));
    }
    std::vector<uint32_t> order;
    return topoOrder(order, err);
}

void
NetworkGraph::annotateLevels()
{
    std::vector<uint32_t> order;
    SpecError err;
    if (!topoOrder(order, err))
        fatal("NetworkGraph::annotateLevels on a cyclic graph: %s",
              err.describe().c_str());
    // levelOut[i] = level available after node i ran.
    std::vector<size_t> levelOut(nodes.size(), maxLimbs);
    for (uint32_t id : order) {
        LayerNode& n = nodes[id];
        size_t level = maxLimbs;
        bool hasPred = false;
        for (const auto& e : edges)
            if (e.dst == id) {
                level = hasPred ? std::min(level, levelOut[e.src])
                                : levelOut[e.src];
                hasPred = true;
            }
        n.levelIn = level;
        n.depth = layerDepth(n.step);
        n.rotations = static_cast<uint64_t>(n.step.perUnit.rotations) *
                      n.step.effectiveUnits();
        if (n.step.kind == ProcKind::Bootstrap)
            levelOut[id] = maxLimbs;
        else
            levelOut[id] = level > n.depth ? level - n.depth : 1;
    }
}

std::string
NetworkGraph::describe() const
{
    std::string s = strf("model %s: %zu layer(s), %zu edge(s), "
                         "2^%zu slots, %zu limbs\n",
                         name.c_str(), nodes.size(), edges.size(),
                         logSlots, maxLimbs);
    std::vector<uint32_t> order;
    SpecError err;
    if (!topoOrder(order, err))
        return s + "  <cyclic: " + err.describe() + ">\n";
    for (uint32_t id : order) {
        const LayerNode& n = nodes[id];
        s += strf("  %3u %-20s %-9s par %-7zu limbs %-2zu level %-2zu "
                  "depth %zu out %zu ct\n",
                  n.id, n.step.name.c_str(), procName(n.step.kind),
                  n.step.parallelism, n.step.limbs, n.levelIn, n.depth,
                  n.step.outputCts);
    }
    return s;
}

namespace {

/** Minimal JSON string escape (layer names are identifier-like, but a
 *  hand-written spec could sneak a quote in). */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += strf("\\%c", c);
        else if (static_cast<unsigned char>(c) < 0x20)
            out += strf("\\u%04x", c);
        else
            out += c;
    }
    return out;
}

} // namespace

std::string
NetworkGraph::toJson() const
{
    std::string s = strf("{\"model\":\"%s\",\"logSlots\":%zu,"
                         "\"maxLimbs\":%zu,\"nodes\":[",
                         jsonEscape(name).c_str(), logSlots, maxLimbs);
    for (size_t i = 0; i < nodes.size(); ++i) {
        const LayerNode& n = nodes[i];
        s += strf("%s{\"id\":%u,\"name\":\"%s\",\"kind\":\"%s\","
                  "\"parallelism\":%zu,\"limbs\":%zu,\"agg\":%d,"
                  "\"polyDegree\":%zu,\"unitScale\":%.17g,"
                  "\"outputCts\":%zu,\"levelIn\":%zu,\"depth\":%zu,"
                  "\"rotations\":%llu}",
                  i ? "," : "", n.id, jsonEscape(n.step.name).c_str(),
                  procName(n.step.kind), n.step.parallelism,
                  n.step.limbs, static_cast<int>(n.step.agg),
                  n.step.polyDegree, n.step.unitScale, n.step.outputCts,
                  n.levelIn, n.depth,
                  static_cast<unsigned long long>(n.rotations));
    }
    s += "],\"edges\":[";
    for (size_t i = 0; i < edges.size(); ++i)
        s += strf("%s{\"src\":%u,\"dst\":%u,\"cts\":%llu}",
                  i ? "," : "", edges[i].src, edges[i].dst,
                  static_cast<unsigned long long>(edges[i].cts));
    s += "]}";
    return s;
}

uint64_t
NetworkGraph::totalEdgeCts() const
{
    uint64_t sum = 0;
    for (const auto& e : edges)
        sum += e.cts;
    return sum;
}

} // namespace hydra
