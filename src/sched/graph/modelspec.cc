#include "sched/graph/modelspec.hh"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/logging.hh"

namespace hydra {

namespace {

/** Hard bounds keeping a hostile spec cheap to reject. */
constexpr size_t kMaxLayers = 10000;
constexpr size_t kMaxBlockCount = 1024;

/** Split `s` on `sep` (no empty-field collapsing). */
std::vector<std::string>
splitOn(const std::string& s, char sep)
{
    std::vector<std::string> out;
    std::stringstream ss(s);
    std::string field;
    while (std::getline(ss, field, sep))
        out.push_back(field);
    return out;
}

std::string
trim(const std::string& s)
{
    size_t b = s.find_first_not_of(" \t\r");
    if (b == std::string::npos)
        return "";
    size_t e = s.find_last_not_of(" \t\r");
    return s.substr(b, e - b + 1);
}

bool
validLayerName(const std::string& s)
{
    if (s.empty())
        return false;
    for (char c : s)
        if (!(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
              c == '.' || c == '-'))
            return false;
    return true;
}

/** One key=value item (or the bare `end` block terminator). */
struct SpecItem
{
    std::string key;
    std::string val;
    std::string raw;
};

bool
tokenize(const std::string& text, std::vector<SpecItem>& items,
         SpecError& err)
{
    std::stringstream lines(text);
    std::string line;
    while (std::getline(lines, line, '\n')) {
        size_t hash = line.find('#');
        if (hash != std::string::npos)
            line = line.substr(0, hash);
        for (const std::string& piece : splitOn(line, ',')) {
            std::string item = trim(piece);
            if (item.empty())
                continue;
            if (item == "end") {
                items.push_back(SpecItem{"end", "", item});
                continue;
            }
            size_t eq = item.find('=');
            if (eq == std::string::npos) {
                err.message = "model spec item is not key=value";
                err.token = item;
                return false;
            }
            std::string key = item.substr(0, eq);
            std::string val = item.substr(eq + 1);
            if (key.empty() || val.empty()) {
                err.message = "model spec item wants key=value with "
                              "both sides non-empty";
                err.token = item;
                return false;
            }
            items.push_back(
                SpecItem{std::move(key), std::move(val), item});
        }
    }
    return true;
}

/** Parser state threaded through plain and block-expanded items. */
struct ParseState
{
    WorkloadModel model;
    bool sawName = false;
    SpecError* err = nullptr;

    bool
    fail(std::string msg, std::string token, const std::string& raw)
    {
        err->message = std::move(msg);
        err->token = token.empty() ? raw : std::move(token);
        return false;
    }

    bool
    addStep(Step step, const std::string& raw)
    {
        if (model.steps.size() >= kMaxLayers)
            return fail(strf("model spec exceeds %zu layers",
                             kMaxLayers),
                        step.name, raw);
        model.steps.push_back(std::move(step));
        return true;
    }

    /** Apply one item; `prefix` is the active block name prefix
     *  (empty at top level, where header keys are also legal). */
    bool
    apply(const SpecItem& it, const std::string& prefix, bool in_block)
    {
        const std::string& raw = it.raw;
        auto fields = splitOn(it.val, ':');
        // Header keys (top level only).
        if (it.key == "model" || it.key == "slots" ||
            it.key == "limbs") {
            if (in_block)
                return fail("header key is not allowed inside a block",
                            it.key, raw);
            if (it.key == "model") {
                if (sawName)
                    return fail("duplicate model name", it.val, raw);
                sawName = true;
                model.name = it.val;
                return true;
            }
            size_t v = 0;
            if (!parseSize(it.val, v))
                return fail(it.key + " wants an unsigned integer",
                            it.val, raw);
            if (it.key == "slots") {
                if (v == 0 || v > 20)
                    return fail("slots wants 1 <= log2(slots) <= 20",
                                it.val, raw);
                model.logSlots = v;
            } else {
                if (v == 0 || v > 64)
                    return fail("limbs wants 1 <= limbs <= 64", it.val,
                                raw);
                model.maxLimbs = v;
            }
            return true;
        }

        // Layer keys: NAME:PAR-style fields, built by the shared step
        // factories so parsed layers match hand-built ones exactly.
        auto layerName = [&](std::string& out) {
            if (fields.empty() || !validLayerName(prefix + fields[0])) {
                fail("layer wants a name of [A-Za-z0-9_.-]",
                     fields.empty() ? "" : fields[0], raw);
                return false;
            }
            out = prefix + fields[0];
            return true;
        };
        auto parField = [&](size_t idx, size_t& out) {
            if (idx >= fields.size() || !parseSize(fields[idx], out) ||
                out == 0) {
                fail("layer wants an integer count >= 1",
                     idx < fields.size() ? fields[idx] : "", raw);
                return false;
            }
            return true;
        };
        auto scaleField = [&](size_t idx, double& out) {
            if (idx >= fields.size() || !parseF64(fields[idx], out) ||
                out <= 0) {
                fail("layer scale wants a number > 0",
                     idx < fields.size() ? fields[idx] : "", raw);
                return false;
            }
            return true;
        };

        std::string name;
        size_t par = 0;
        if (it.key == "conv") {
            if (fields.size() < 2 || fields.size() > 4)
                return fail("conv wants NAME:PAR[:SCALE[:CTS]]", it.val,
                            raw);
            double scale = 1.0;
            size_t cts = 32;
            if (!layerName(name) || !parField(1, par))
                return false;
            if (fields.size() > 2 && !scaleField(2, scale))
                return false;
            if (fields.size() > 3 && !parField(3, cts))
                return false;
            return addStep(makeConvStep(name, par, scale, cts), raw);
        }
        if (it.key == "relu" || it.key == "nonlin" ||
            it.key == "pool") {
            if (fields.size() < 2 || fields.size() > 3)
                return fail(it.key + " wants NAME:PAR[:CTS]", it.val,
                            raw);
            if (!layerName(name) || !parField(1, par))
                return false;
            size_t cts =
                it.key == "relu" ? 32 : (it.key == "pool" ? 16 : 12);
            if (fields.size() > 2 && !parField(2, cts))
                return false;
            if (it.key == "relu")
                return addStep(makeReluStep(name, par, cts), raw);
            if (it.key == "pool")
                return addStep(makePoolStep(name, par, cts), raw);
            return addStep(makeNonLinStep(name, par, cts), raw);
        }
        if (it.key == "fc" || it.key == "norm" || it.key == "boot") {
            if (fields.size() != 2)
                return fail(it.key + (it.key == "boot"
                                          ? " wants NAME:CTS"
                                          : " wants NAME:PAR"),
                            it.val, raw);
            if (!layerName(name) || !parField(1, par))
                return false;
            if (it.key == "fc")
                return addStep(makeFcStep(name, par), raw);
            if (it.key == "norm")
                return addStep(makeNormStep(name, par), raw);
            return addStep(makeBootStep(name, par), raw);
        }
        if (it.key == "pcmm" || it.key == "ccmm") {
            if (fields.size() != 3)
                return fail(it.key + " wants NAME:PAR:SCALE", it.val,
                            raw);
            double scale = 1.0;
            if (!layerName(name) || !parField(1, par) ||
                !scaleField(2, scale))
                return false;
            if (it.key == "pcmm")
                return addStep(makePcmmStep(name, par, scale), raw);
            return addStep(makeCcmmStep(name, par, scale), raw);
        }
        return fail("unknown model spec key (want model/slots/limbs/"
                    "conv/relu/pool/fc/boot/pcmm/ccmm/nonlin/norm/"
                    "block/end)",
                    it.key, raw);
    }
};

} // namespace

bool
tryParseModelGraph(const std::string& text, NetworkGraph& out,
                   SpecError& err)
{
    err = SpecError{};
    std::vector<SpecItem> items;
    if (!tokenize(text, items, err))
        return false;

    ParseState st;
    st.err = &err;
    size_t i = 0;
    while (i < items.size()) {
        const SpecItem& it = items[i];
        if (it.key == "end") {
            err.message = "end without an open block";
            err.token = it.raw;
            return false;
        }
        if (it.key == "block") {
            auto f = splitOn(it.val, ':');
            if (f.size() < 2 || f.size() > 3)
                return st.fail("block wants PREFIX:COUNT[:START]",
                               it.val, it.raw);
            if (!validLayerName(f[0]))
                return st.fail("block prefix wants [A-Za-z0-9_.-]",
                               f[0], it.raw);
            size_t count = 0, start = 0;
            if (!parseSize(f[1], count) || count == 0 ||
                count > kMaxBlockCount)
                return st.fail(strf("block count wants 1..%zu",
                                    kMaxBlockCount),
                               f[1], it.raw);
            if (f.size() > 2 && !parseSize(f[2], start))
                return st.fail("block start wants an unsigned integer",
                               f[2], it.raw);
            // Collect the body up to the matching `end` (no nesting).
            size_t body = i + 1;
            size_t close = body;
            while (close < items.size() && items[close].key != "end") {
                if (items[close].key == "block")
                    return st.fail("blocks do not nest",
                                   items[close].raw, items[close].raw);
                ++close;
            }
            if (close == items.size())
                return st.fail("block is missing its end", it.val,
                               it.raw);
            for (size_t rep = 0; rep < count; ++rep) {
                std::string prefix = f[0] + strf("%zu", start + rep);
                for (size_t k = body; k < close; ++k)
                    if (!st.apply(items[k], prefix, true))
                        return false;
            }
            i = close + 1;
            continue;
        }
        if (!st.apply(it, "", false))
            return false;
        ++i;
    }

    if (!st.sawName) {
        err.message = "model spec wants a model=NAME item";
        err.token = "model";
        return false;
    }
    if (st.model.steps.empty()) {
        err.message = "model spec declares no layers";
        err.token = st.model.name;
        return false;
    }
    // Duplicate layer names would make graph dumps and fused-unit
    // labels ambiguous; reject them here (block expansion included).
    {
        std::vector<std::string> names;
        names.reserve(st.model.steps.size());
        for (const auto& s : st.model.steps)
            names.push_back(s.name);
        std::sort(names.begin(), names.end());
        auto dup = std::adjacent_find(names.begin(), names.end());
        if (dup != names.end()) {
            err.message = "duplicate layer name";
            err.token = *dup;
            return false;
        }
    }

    NetworkGraph g = NetworkGraph::fromModel(st.model);
    // Semantic validation (limbs vs maxLimbs etc.) reports through the
    // same structured channel as the grammar above.
    if (!g.validate(err))
        return false;
    out = std::move(g);
    return true;
}

NetworkGraph
parseModelGraph(const std::string& text)
{
    NetworkGraph g;
    SpecError err;
    if (!tryParseModelGraph(text, g, err))
        fatal("bad model spec: %s", err.describe().c_str());
    return g;
}

namespace {

// ---------------------------------------------------------------------
// Registry: the five hand-built workloads as declarative specs (field-
// identical to workloads/model.cc — asserted by sched_graph_test), plus
// declarative-only models.  unitScale literals that are products in the
// hand-built code (e.g. 3.0 * 0.09) are spelled as their exact %.17g
// round-trip so the parsed double is bit-identical.
// ---------------------------------------------------------------------

const char kResNet18Spec[] = R"(# ResNet-18 under RNS-CKKS ([12]'s packing)
model=ResNet-18
slots=15
limbs=24
conv=conv1:768
relu=relu1:128
pool=pool1:64
boot=boot0:32
block=s1b:2
conv=_conv1:640:1:16
relu=_relu1:128:16
conv=_conv2:640:1:16
relu=_relu2:128:16
boot=_boot:16
end
conv=s2b0_ds:448:1:8
conv=s2b0_conv1:512:1:8
relu=s2b0_relu1:64:8
conv=s2b0_conv2:512:1:8
relu=s2b0_relu2:64:8
boot=s2b0_boot:8
block=s2b:1:1
conv=_conv1:512:1:8
relu=_relu1:64:8
conv=_conv2:512:1:8
relu=_relu2:64:8
boot=_boot:8
end
conv=s3b0_ds:384:1:8
conv=s3b0_conv1:448:1:8
relu=s3b0_relu1:32:8
conv=s3b0_conv2:448:1:8
relu=s3b0_relu2:32:8
boot=s3b0_boot:8
block=s3b:1:1
conv=_conv1:448:1:8
relu=_relu1:32:8
conv=_conv2:448:1:8
relu=_relu2:32:8
boot=_boot:8
end
conv=s4b0_ds:384:1:2
conv=s4b0_conv1:384:1:2
relu=s4b0_relu1:4:2
conv=s4b0_conv2:384:1:2
relu=s4b0_relu2:4:2
boot=s4b0_boot:2
block=s4b:1:1
conv=_conv1:384:1:2
relu=_relu1:4:2
conv=_conv2:384:1:2
relu=_relu2:4:2
boot=_boot:2
end
pool=avgpool:6:1
boot=boot_final:1
fc=fc:1511
)";

const char kResNet50Spec[] = R"(# ResNet-50 bottleneck stages ([12])
model=ResNet-50
slots=15
limbs=24
conv=conv1:1024
relu=relu1:128
pool=pool1:256
boot=boot0:32
conv=s1b0_ds:1024:3.4:32
conv=s1b0_conv1:512:3.4:32
relu=s1b0_relu1:128:32
conv=s1b0_conv2:1024:3.4:32
relu=s1b0_relu2:128:32
conv=s1b0_conv3:1024:3.4:32
relu=s1b0_relu3:128:32
boot=s1b0_boot:32
block=s1b:2:1
conv=_conv1:512:3.4:32
relu=_relu1:128:32
conv=_conv2:1024:3.4:32
relu=_relu2:128:32
conv=_conv3:1024:3.4:32
relu=_relu3:128:32
boot=_boot:32
end
conv=s2b0_ds:896:4.7:32
conv=s2b0_conv1:448:4.7:32
relu=s2b0_relu1:64:32
conv=s2b0_conv2:896:4.7:32
relu=s2b0_relu2:64:32
conv=s2b0_conv3:896:4.7:32
relu=s2b0_relu3:64:32
boot=s2b0_boot:32
block=s2b:3:1
conv=_conv1:448:4.7:32
relu=_relu1:64:32
conv=_conv2:896:4.7:32
relu=_relu2:64:32
conv=_conv3:896:4.7:32
relu=_relu3:64:32
boot=_boot:32
end
conv=s3b0_ds:640:6.8:24
conv=s3b0_conv1:320:6.8:24
relu=s3b0_relu1:32:24
conv=s3b0_conv2:640:6.8:24
relu=s3b0_relu2:32:24
conv=s3b0_conv3:640:6.8:24
relu=s3b0_relu3:32:24
boot=s3b0_boot:24
block=s3b:5:1
conv=_conv1:320:6.8:24
relu=_relu1:32:24
conv=_conv2:640:6.8:24
relu=_relu2:32:24
conv=_conv3:640:6.8:24
relu=_relu3:32:24
boot=_boot:24
end
conv=s4b0_ds:384:9.5:16
conv=s4b0_conv1:192:9.5:16
relu=s4b0_relu1:16:16
conv=s4b0_conv2:384:9.5:16
relu=s4b0_relu2:16:16
conv=s4b0_conv3:384:9.5:16
relu=s4b0_relu3:16:16
boot=s4b0_boot:16
block=s4b:2:1
conv=_conv1:192:9.5:16
relu=_relu1:16:16
conv=_conv2:384:9.5:16
relu=_relu2:16:16
conv=_conv3:384:9.5:16
relu=_relu3:16:16
boot=_boot:16
end
pool=avgpool:12:1
boot=boot_final:1
fc=fc:3047
)";

const char kBertBaseSpec[] = R"(# BERT-base: 12 encoder layers ([13])
model=BERT-base
slots=15
limbs=24
# layers 0-5: qkv scale is 3 * 0.09 spelled exactly
block=l:6
norm=_ln1:8
pcmm=_qkv:98304:0.27000000000000002
ccmm=_scores:384:1
nonlin=_softmax:48
ccmm=_context:384:1
pcmm=_proj:98304:0.09
boot=_boot1:12
norm=_ln2:8
pcmm=_ffn1:393216:0.09
nonlin=_gelu:48
pcmm=_ffn2:393216:0.09
boot=_boot2:12
end
# layers 6-11: halved softmax parallelism and bootstrap counts
block=l:6:6
norm=_ln1:8
pcmm=_qkv:98304:0.27000000000000002
ccmm=_scores:384:1
nonlin=_softmax:24
ccmm=_context:384:1
pcmm=_proj:98304:0.09
boot=_boot1:6
norm=_ln2:8
pcmm=_ffn1:393216:0.09
nonlin=_gelu:24
pcmm=_ffn2:393216:0.09
boot=_boot2:6
end
boot=boot_final:1
fc=pooler:768
)";

const char kOpt67BSpec[] = R"(# OPT-6.7B: 32 decoder layers ([13])
model=OPT-6.7B
slots=15
limbs=24
# layers 0-15: qkv scale is 3 * 1.1 spelled exactly
block=l:16
norm=_ln1:16
pcmm=_qkv:153600:3.3000000000000003
ccmm=_scores:1000:1
nonlin=_softmax:72
ccmm=_context:1000:1
pcmm=_proj:153600:1.1
boot=_boot1:18
norm=_ln2:16
pcmm=_ffn1:614400:1.1
nonlin=_gelu:72
pcmm=_ffn2:614400:1.1
boot=_boot2:18
end
# layers 16-31: halved softmax parallelism and bootstrap counts
block=l:16:16
norm=_ln1:16
pcmm=_qkv:153600:3.3000000000000003
ccmm=_scores:1000:1
nonlin=_softmax:36
ccmm=_context:1000:1
pcmm=_proj:153600:1.1
boot=_boot1:9
norm=_ln2:16
pcmm=_ffn1:614400:1.1
nonlin=_gelu:36
pcmm=_ffn2:614400:1.1
boot=_boot2:9
end
boot=boot_final:2
fc=head:4096
)";

const char kResNet20Spec[] = R"(# ResNet-20 on CIFAR-10 (Section II motivation)
model=ResNet-20 (CIFAR-10)
slots=15
limbs=24
conv=conv1:16:1:1
relu=relu1:2:1
conv=s1b0_conv1:12:1:1
relu=s1b0_relu1:2:1
conv=s1b0_conv2:12:1:1
relu=s1b0_relu2:2:1
boot=s1b0_boot:1
conv=s1b1_conv1:12:1:1
relu=s1b1_relu1:2:1
conv=s1b1_conv2:12:1:1
relu=s1b1_relu2:2:1
conv=s1b2_conv1:12:1:1
relu=s1b2_relu1:2:1
conv=s1b2_conv2:12:1:1
relu=s1b2_relu2:2:1
boot=s1b2_boot:1
conv=s2b0_conv1:16:1:1
relu=s2b0_relu1:2:1
conv=s2b0_conv2:16:1:1
relu=s2b0_relu2:2:1
boot=s2b0_boot:1
conv=s2b1_conv1:16:1:1
relu=s2b1_relu1:2:1
conv=s2b1_conv2:16:1:1
relu=s2b1_relu2:2:1
conv=s2b2_conv1:16:1:1
relu=s2b2_relu1:2:1
conv=s2b2_conv2:16:1:1
relu=s2b2_relu2:2:1
boot=s2b2_boot:1
conv=s3b0_conv1:24:1:1
relu=s3b0_relu1:2:1
conv=s3b0_conv2:24:1:1
relu=s3b0_relu2:2:1
boot=s3b0_boot:1
conv=s3b1_conv1:24:1:1
relu=s3b1_relu1:2:1
conv=s3b1_conv2:24:1:1
relu=s3b1_relu2:2:1
conv=s3b2_conv1:24:1:1
relu=s3b2_relu1:2:1
conv=s3b2_conv2:24:1:1
relu=s3b2_relu2:2:1
boot=s3b2_boot:1
pool=avgpool:2:1
fc=fc:64
)";

/** Declarative-only demo model: exercises the model registry path in
 *  serving specs without a hand-built twin. */
const char kMlp3Spec[] = R"(# 3-layer encrypted MLP (declarative-only)
model=MLP-3
slots=15
limbs=24
pcmm=fc1:8192:1
nonlin=act1:8
boot=boot0:4
pcmm=fc2:8192:1
nonlin=act2:8
boot=boot1:4
fc=out:512
)";

struct ModelSpecEntry
{
    const char* name;
    const char* text;
};

const ModelSpecEntry kModelSpecRegistry[] = {
    {"resnet18", kResNet18Spec}, {"resnet50", kResNet50Spec},
    {"bert", kBertBaseSpec},     {"opt", kOpt67BSpec},
    {"resnet20", kResNet20Spec}, {"mlp3", kMlp3Spec},
};

std::string
joinNames(const std::vector<std::string>& names)
{
    std::string out;
    for (const auto& n : names)
        out += std::string(out.empty() ? "" : "|") + n;
    return out;
}

} // namespace

std::vector<std::string>
modelSpecNames()
{
    std::vector<std::string> names;
    for (const auto& e : kModelSpecRegistry)
        names.emplace_back(e.name);
    return names;
}

bool
modelSpecExists(const std::string& name)
{
    return modelSpecText(name) != nullptr;
}

const char*
modelSpecText(const std::string& name)
{
    for (const auto& e : kModelSpecRegistry)
        if (name == e.name)
            return e.text;
    return nullptr;
}

bool
tryModelGraphByName(const std::string& name, NetworkGraph& out,
                    SpecError& err)
{
    const char* text = modelSpecText(name);
    if (!text) {
        err.message =
            strf("unknown model (want %s)",
                 joinNames(modelSpecNames()).c_str());
        err.token = name;
        return false;
    }
    if (!tryParseModelGraph(text, out, err)) {
        // A registry spec failing to parse is a programming error, but
        // surface it structurally so callers never see a silent fall-
        // through.
        err.message = strf("registry spec '%s' is broken: %s",
                           name.c_str(), err.message.c_str());
        return false;
    }
    return true;
}

NetworkGraph
modelGraphByName(const std::string& name)
{
    NetworkGraph g;
    SpecError err;
    if (!tryModelGraphByName(name, g, err))
        fatal("bad model '%s': %s", name.c_str(),
              err.describe().c_str());
    return g;
}

bool
tryResolveWorkloadModel(const std::string& name, WorkloadModel& out,
                        SpecError& err)
{
    // Hand-built step registry first: legacy names stay bit-identical.
    if (workloadExists(name)) {
        out = workloadByName(name);
        return true;
    }
    if (modelSpecExists(name)) {
        NetworkGraph g;
        if (!tryModelGraphByName(name, g, err))
            return false;
        out = g.toModel();
        return true;
    }
    std::vector<std::string> all = workloadNames();
    for (const auto& n : modelSpecNames())
        if (std::find(all.begin(), all.end(), n) == all.end())
            all.push_back(n);
    err.message = strf("unknown workload or model (want %s)",
                       joinNames(all).c_str());
    err.token = name;
    return false;
}

WorkloadModel
resolveWorkloadModel(const std::string& name)
{
    WorkloadModel m;
    SpecError err;
    if (!tryResolveWorkloadModel(name, m, err))
        fatal("%s", err.describe().c_str());
    return m;
}

} // namespace hydra
