/**
 * @file
 * Network-level compilation: cross-step passes over a NetworkGraph,
 * lowering to per-unit Programs through the PR 5 step machinery
 * (plan -> lower -> optimize -> cache) — DESIGN.md §15.
 *
 * At OptLevel::None and Safe the network compiler is a pure chain
 * walker: one unit per layer, each compiled exactly like
 * InferenceRunner::run() compiles a step (same ProgramCache keys), so
 * the executed tick stream is bit-identical to the step-at-a-time
 * path.  OptLevel::Aggressive enables the cross-step passes:
 *
 *  - boot-plan: the paper's Eq. 1 level model generalized across
 *    steps.  Walks the chain tracking the modulus level from maxLimbs
 *    down, merges adjacent bootstraps, elides a bootstrap whenever the
 *    remaining level covers the depth to the next refresh, and
 *    re-levels each surviving layer to the tracked level (running an
 *    op at its true level instead of the hand-calibrated average —
 *    rescale placement).
 *  - fuse-linear: maximal runs of adjacent ConvBN/Pooling layers
 *    (with a terminal FC allowed) plan into ONE Program; intermediate
 *    broadcasts are elided (outputs stay card-local, consumed by the
 *    next layer's co-resident units), and the per-step sync barrier
 *    between members disappears.
 *  - prefetch: on networks whose DTU overlaps compute, up to
 *    kPrefetchWindow consecutive units merge into one preloaded
 *    Program, so unit N+1's broadcasts sit in the comm queues behind
 *    unit N's compute and transfers hide under it (the Section IV-D
 *    fused mode, applied in bounded windows).  Bootstrap boundaries
 *    stay barriers.
 */

#ifndef HYDRA_SCHED_GRAPH_NETCOMPILE_HH
#define HYDRA_SCHED_GRAPH_NETCOMPILE_HH

#include <memory>
#include <string>
#include <vector>

#include "sched/graph/graph.hh"
#include "sched/progcache.hh"

namespace hydra {

/** Max units one prefetch window merges into a single Program. */
constexpr size_t kPrefetchWindow = 4;

/** One schedulable unit of a compiled network: one or more layers
 *  sharing a single Program (and hence no internal sync barrier). */
struct NetUnit
{
    enum class Kind : uint8_t
    {
        Single,   ///< one layer, step-compiler semantics
        Fused,    ///< fuse-linear group (intermediate broadcasts gone)
        Prefetch, ///< prefetch window (transfers hide under compute)
    };

    Kind kind = Kind::Single;
    /** Display name: the single layer, or "first..last". */
    std::string name;
    /** Procedure kind of the leading layer (roll-up display). */
    ProcKind lead = ProcKind::ConvBN;
    /** Node ids of the members, in execution order, into
     *  CompiledNetwork::graph. */
    std::vector<uint32_t> nodes;
};

const char* netUnitKindName(NetUnit::Kind k);

/** Cross-step pass statistics. */
struct NetOptReport
{
    OptLevel level = OptLevel::None;
    /** Bootstraps removed by the Eq. 1 level walk. */
    uint64_t bootsElided = 0;
    /** Adjacent bootstrap pairs collapsed into one refresh. */
    uint64_t bootsMerged = 0;
    /** Layers whose working level was lowered to the tracked level. */
    uint64_t relevelled = 0;
    /** Layers folded into fuse-linear groups. */
    uint64_t fusedSteps = 0;
    /** Unit boundaries removed by prefetch windows. */
    uint64_t prefetchedBoundaries = 0;
    /** Eq. 1-modeled single-card cost of the elided bootstraps. */
    Tick modeledBootSavings = 0;

    uint64_t
    totalChanges() const
    {
        return bootsElided + bootsMerged + relevelled + fusedSteps +
               prefetchedBoundaries;
    }

    /** One-line human summary. */
    std::string describe() const;
};

/**
 * The partition stage of network compilation, exposed separately so
 * the ExecPlan layer (sched/execplan.hh) can compute a plan's unit
 * boundaries without materializing any Program: the post-pass step
 * list in execution order, its unit partition, and the pass report.
 * The partition is a pure function of the graph content and the
 * machine's network kind — it does NOT depend on the executing card
 * count, so every card group of one machine sees the same unit
 * boundaries for a given (workload, level) pair (the serving layer's
 * resumable unit indices rely on this).
 */
struct NetPartition
{
    /** Post-pass steps, in execution order (boot-plan rewrites
     *  applied); unit node ids index into this. */
    std::vector<Step> steps;
    std::vector<NetUnit> units;
    NetOptReport report;
};

/** Run the cross-step passes and unit partition of compileNetwork
 *  without compiling any Program.  The graph must topo-order (fatals
 *  on a cycle, like compileNetwork). */
NetPartition partitionNetwork(const PrototypeSpec& spec,
                              const OpCostModel& cost,
                              const NetworkModel& net,
                              const NetworkGraph& graph,
                              OptLevel level = OptLevel::Safe);

/**
 * Compile one unit of a partition through the shared ProgramCache for
 * an executing (sub-)cluster: single-member units use the step
 * compiler's exact stepCacheKey (shared with InferenceRunner::run());
 * multi-member units use unitCacheKey.  `exec_cluster` may be smaller
 * than `net_cluster` (the degraded re-dispatch path).
 */
std::shared_ptr<const CompiledStep>
compileNetUnit(const PrototypeSpec& spec,
               const ClusterConfig& exec_cluster,
               const ClusterConfig& net_cluster, const OpCostModel& cost,
               const NetworkModel& net, size_t log_slots,
               const std::vector<const Step*>& members,
               NetUnit::Kind kind, OptLevel level);

/** A fully compiled network: the post-pass graph, its unit partition,
 *  and one shared compiled Program per unit. */
struct CompiledNetwork
{
    /** Post-pass graph (boot-plan rewrites visible), re-annotated. */
    NetworkGraph graph;
    std::vector<NetUnit> units;
    /** programs[i] executes units[i]; entries come from (and live in)
     *  the process-wide ProgramCache. */
    std::vector<std::shared_ptr<const CompiledStep>> programs;
    NetOptReport report;
};

/**
 * Compile `graph` for `spec`'s machine at `level`.  The graph must be
 * validate()-clean (callers report the SpecError; this fatals).
 * Compiled unit programs are cached process-wide: single-layer units
 * share entries with the step compiler's stepCacheKey population;
 * multi-layer units get network-aware keys (machine half + every
 * member's content half + the unit kind).
 */
CompiledNetwork compileNetwork(const PrototypeSpec& spec,
                               const OpCostModel& cost,
                               const NetworkModel& net,
                               const NetworkGraph& graph,
                               OptLevel level = OptLevel::Safe);

/** Cache key of a multi-layer unit (exposed for tests). */
std::string unitCacheKey(const PrototypeSpec& spec,
                         const ClusterConfig& exec_cluster,
                         const ClusterConfig& net_cluster, size_t ring_n,
                         size_t log_slots,
                         const std::vector<const Step*>& members,
                         NetUnit::Kind kind, OptLevel level);

} // namespace hydra

#endif // HYDRA_SCHED_GRAPH_NETCOMPILE_HH
