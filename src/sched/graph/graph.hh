/**
 * @file
 * NetworkGraph: the whole-network IR of the graph compiler, one level
 * above the per-step LogicalPlan (DESIGN.md §15).
 *
 * A node is one schedulable layer (a workloads/model.hh Step) annotated
 * with the level metadata the cross-step passes need: the modulus-chain
 * level available on entry, the multiplicative depth the layer consumes,
 * and its total rotation count.  An edge is the dataflow between two
 * layers, weighted by the ciphertext count the producer emits — the
 * payload a prefetch pass can move early.
 *
 * The IR round-trips with the flat step-list world: fromModel() lifts a
 * WorkloadModel into a chain graph, toModel() lowers any (acyclic)
 * graph back to a step list in topological order, so every existing
 * consumer of WorkloadModel (InferenceRunner, ServeSim, energy
 * analysis) can run a graph-defined model unchanged.
 *
 * Depth accounting (paper Eq. 1 generalized across steps): a linear
 * layer consumes one level (its rescale); a non-linear layer consumes
 * ceil(log2(degree + 1)) levels (the BSGS polynomial ladder); a
 * bootstrap consumes none and resets the level to the chain maximum.
 */

#ifndef HYDRA_SCHED_GRAPH_GRAPH_HH
#define HYDRA_SCHED_GRAPH_GRAPH_HH

#include <cstdint>
#include <string>
#include <vector>

#include "common/parse.hh"
#include "workloads/model.hh"

namespace hydra {

/** Modulus-chain levels one layer consumes (0 for Bootstrap). */
size_t layerDepth(const Step& step);

/** One layer of the network. */
struct LayerNode
{
    /** Node id == index into NetworkGraph::nodes (dense). */
    uint32_t id = 0;
    Step step;

    /// @name Level annotations (filled by annotateLevels()).
    /// @{
    /** Modulus-chain level available when this layer starts. */
    size_t levelIn = 0;
    /** Levels this layer consumes (layerDepth of the step). */
    size_t depth = 0;
    /** Total rotations across the layer's effective units. */
    uint64_t rotations = 0;
    /// @}
};

/** Dataflow between two layers. */
struct GraphEdge
{
    uint32_t src = 0;
    uint32_t dst = 0;
    /** Ciphertexts crossing the edge (the producer's output packing). */
    uint64_t cts = 0;
};

/** A whole network: layers plus their dataflow. */
struct NetworkGraph
{
    std::string name;
    /** log2 ciphertext slot count (Table V geometry). */
    size_t logSlots = 15;
    /** Full modulus-chain length; a bootstrap refreshes to this. */
    size_t maxLimbs = 24;
    std::vector<LayerNode> nodes;
    std::vector<GraphEdge> edges;

    /** Lift a flat step list into a chain graph (level-annotated). */
    static NetworkGraph fromModel(const WorkloadModel& model);

    /** Lower back to a step list, nodes in topological order. */
    WorkloadModel toModel() const;

    /**
     * Topological execution order (Kahn, smallest node id first, so
     * the order is deterministic and chain graphs keep their authored
     * order).  Returns false with `err` set on a cycle.
     */
    bool topoOrder(std::vector<uint32_t>& order, SpecError& err) const;

    /**
     * Structural validation: non-empty name and node list, dense node
     * ids, in-range acyclic edges, per-layer invariants (parallelism
     * >= 1, 1 <= limbs <= maxLimbs, NonLinear has a polynomial degree,
     * positive unitScale and outputCts).  On failure `err` names the
     * offending node or edge.
     */
    bool validate(SpecError& err) const;

    /**
     * Recompute levelIn/depth/rotations: walk the topological order
     * tracking the available level from maxLimbs down (a join takes the
     * minimum across its predecessors; a bootstrap resets).  Requires a
     * validate()-clean graph.
     */
    void annotateLevels();

    /** Multi-line human-readable dump (CLI --dump-graph). */
    std::string describe() const;

    /** JSON dump (CLI --dump-graph --json): nodes, edges, levels. */
    std::string toJson() const;

    /** Total ciphertexts crossing all edges. */
    uint64_t totalEdgeCts() const;
};

} // namespace hydra

#endif // HYDRA_SCHED_GRAPH_GRAPH_HH
