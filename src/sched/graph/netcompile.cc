#include "sched/graph/netcompile.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hydra {

const char*
netUnitKindName(NetUnit::Kind k)
{
    switch (k) {
      case NetUnit::Kind::Single: return "single";
      case NetUnit::Kind::Fused: return "fused";
      case NetUnit::Kind::Prefetch: return "prefetch";
    }
    return "?";
}

std::string
NetOptReport::describe() const
{
    if (level != OptLevel::Aggressive)
        return strf("net passes [%s]: step-identical lowering",
                    optLevelName(level));
    return strf("net passes [%s]: %llu boot(s) elided (+%llu merged, "
                "~%.3f s modeled), %llu layer(s) re-levelled, %llu "
                "fused, %llu boundary(ies) prefetched",
                optLevelName(level),
                static_cast<unsigned long long>(bootsElided),
                static_cast<unsigned long long>(bootsMerged),
                ticksToSeconds(modeledBootSavings),
                static_cast<unsigned long long>(relevelled),
                static_cast<unsigned long long>(fusedSteps),
                static_cast<unsigned long long>(prefetchedBoundaries));
}

std::string
unitCacheKey(const PrototypeSpec& spec, const ClusterConfig& exec_cluster,
             const ClusterConfig& net_cluster, size_t ring_n,
             size_t log_slots, const std::vector<const Step*>& members,
             NetUnit::Kind kind, OptLevel level)
{
    std::string key = machineCacheKey(spec, exec_cluster, net_cluster,
                                      ring_n, log_slots, level);
    for (const Step* s : members)
        key += stepContentKey(*s);
    key += strf("|u=%s,%zu", netUnitKindName(kind), members.size());
    return key;
}

namespace {

/** Minimum level headroom the boot-plan pass must leave at the next
 *  refresh point (never run the chain to its last limb). */
constexpr size_t kMinLevel = 2;

bool
fusableHead(ProcKind k)
{
    return k == ProcKind::ConvBN || k == ProcKind::Pooling;
}

/**
 * Eq. 1 level walk: merge adjacent bootstraps, elide refreshes the
 * remaining level makes redundant, re-level survivors to the tracked
 * level.  Chain semantics follow the topological order.
 */
std::vector<Step>
bootPlanPass(const std::vector<Step>& in, size_t max_limbs,
             size_t log_slots, const OpCostModel& cost,
             const NetworkModel& net, const MappingConfig& mapping,
             size_t cards, NetOptReport& rep)
{
    // Sub-pass 1: coalesce runs of adjacent bootstraps (no compute
    // between them) into one combined refresh of both ciphertext sets,
    // so the level walk below sees a well-defined refresh chain.
    std::vector<Step> merged;
    merged.reserve(in.size());
    for (const Step& s : in) {
        if (s.kind == ProcKind::Bootstrap && !merged.empty() &&
            merged.back().kind == ProcKind::Bootstrap) {
            merged.back().parallelism += s.parallelism;
            merged.back().outputCts = merged.back().parallelism;
            ++rep.bootsMerged;
            continue;
        }
        merged.push_back(s);
    }

    // Depth still to burn after position `from` before the next
    // refresh opportunity (the next Bootstrap) or the end of the net.
    auto depthAhead = [&](size_t from) {
        size_t d = 0;
        for (size_t j = from;
             j < merged.size() && merged[j].kind != ProcKind::Bootstrap;
             ++j)
            d += layerDepth(merged[j]);
        return d;
    };

    // Sub-pass 2: Eq. 1 level walk — elide redundant refreshes,
    // re-level surviving layers.
    std::vector<Step> out;
    out.reserve(merged.size());
    size_t level = max_limbs;
    for (size_t i = 0; i < merged.size(); ++i) {
        const Step& s = merged[i];
        if (s.kind == ProcKind::Bootstrap) {
            size_t need = depthAhead(i + 1);
            if (level > need && level - need >= kMinLevel) {
                // The chain reaches the next refresh with headroom:
                // this bootstrap is redundant.  Credit its Eq. 1
                // single-card cost times the per-card refresh count.
                ++rep.bootsElided;
                size_t per_card = (s.parallelism + cards - 1) /
                                  std::max<size_t>(1, cards);
                rep.modeledBootSavings +=
                    bootstrapLocalTicks(cost, net, mapping, log_slots,
                                        s.limbs) *
                    per_card;
                continue;
            }
            out.push_back(s);
            level = max_limbs;
            continue;
        }
        Step t = s;
        size_t d = layerDepth(t);
        if (t.limbs > level) {
            // Rescale placement: run the layer at the level the chain
            // actually has here, not the calibrated average.
            t.limbs = std::max<size_t>(1, level);
            ++rep.relevelled;
        }
        out.push_back(std::move(t));
        level = level > d ? level - d : 1;
    }
    return out;
}

} // namespace

NetPartition
partitionNetwork(const PrototypeSpec& spec, const OpCostModel& cost,
                 const NetworkModel& net, const NetworkGraph& graph,
                 OptLevel level)
{
    std::vector<uint32_t> order;
    SpecError err;
    if (!graph.topoOrder(order, err))
        fatal("compileNetwork on an invalid graph: %s",
              err.describe().c_str());

    std::vector<Step> steps;
    steps.reserve(order.size());
    for (uint32_t id : order)
        steps.push_back(graph.nodes[id].step);

    NetPartition out;
    out.report.level = level;
    size_t cards = spec.cluster.totalCards();
    bool aggressive = level == OptLevel::Aggressive;

    if (aggressive)
        steps = bootPlanPass(steps, graph.maxLimbs, graph.logSlots,
                             cost, net, spec.mapping, cards,
                             out.report);

    // Unit partition: fuse-linear groups first, then prefetch windows
    // over the resulting unit list.
    std::vector<NetUnit> units;
    size_t n = steps.size();
    for (size_t i = 0; i < n;) {
        if (aggressive && fusableHead(steps[i].kind)) {
            size_t j = i + 1;
            while (j < n && fusableHead(steps[j].kind))
                ++j;
            if (j < n && steps[j].kind == ProcKind::FC)
                ++j; // a terminal FC joins the linear group
            if (j - i >= 2) {
                NetUnit u;
                u.kind = NetUnit::Kind::Fused;
                u.lead = steps[i].kind;
                for (size_t k = i; k < j; ++k) {
                    u.nodes.push_back(static_cast<uint32_t>(k));
                    // Intermediate outputs stay card-local: the next
                    // member's co-resident units consume them without
                    // the cross-card broadcast.
                    if (k + 1 < j && steps[k].agg != AggKind::None) {
                        steps[k].agg = AggKind::None;
                        ++out.report.fusedSteps;
                    }
                }
                u.name = steps[i].name + ".." + steps[j - 1].name;
                units.push_back(std::move(u));
                i = j;
                continue;
            }
        }
        NetUnit u;
        u.lead = steps[i].kind;
        u.name = steps[i].name;
        u.nodes.push_back(static_cast<uint32_t>(i));
        units.push_back(std::move(u));
        ++i;
    }

    if (aggressive && net.overlapsCompute()) {
        // Prefetch: merge up to kPrefetchWindow consecutive units when
        // the earlier unit ends in a cross-card aggregation (there is a
        // transfer to hide) and neither side is a bootstrap barrier.
        std::vector<NetUnit> merged;
        for (size_t i = 0; i < units.size();) {
            NetUnit u = std::move(units[i]);
            size_t j = i + 1;
            while (j < units.size() &&
                   j - i < kPrefetchWindow) {
                const Step& last = steps[u.nodes.back()];
                const Step& head = steps[units[j].nodes.front()];
                if (last.kind == ProcKind::Bootstrap ||
                    head.kind == ProcKind::Bootstrap ||
                    last.agg == AggKind::None)
                    break;
                u.nodes.insert(u.nodes.end(), units[j].nodes.begin(),
                               units[j].nodes.end());
                u.kind = NetUnit::Kind::Prefetch;
                ++out.report.prefetchedBoundaries;
                ++j;
            }
            if (u.kind == NetUnit::Kind::Prefetch)
                u.name = steps[u.nodes.front()].name + ".." +
                         steps[u.nodes.back()].name;
            merged.push_back(std::move(u));
            i = j;
        }
        units = std::move(merged);
    }

    out.steps = std::move(steps);
    out.units = std::move(units);
    return out;
}

std::shared_ptr<const CompiledStep>
compileNetUnit(const PrototypeSpec& spec,
               const ClusterConfig& exec_cluster,
               const ClusterConfig& net_cluster, const OpCostModel& cost,
               const NetworkModel& net, size_t log_slots,
               const std::vector<const Step*>& members,
               NetUnit::Kind kind, OptLevel level)
{
    size_t cards = exec_cluster.totalCards();
    std::string key;
    if (members.size() == 1)
        key = stepCacheKey(spec, exec_cluster, net_cluster, cost.n(),
                           log_slots, *members[0], level);
    else
        key = unitCacheKey(spec, exec_cluster, net_cluster, cost.n(),
                           log_slots, members, kind, level);
    return ProgramCache::global().getOrCompile(key, [&] {
        if (members.size() == 1)
            return compileStep(cost, net, cards, log_slots,
                               spec.mapping, *members[0], level);
        StepMapper mapper(cost, net, cards, log_slots, spec.mapping);
        PlanBuilder pb(cards);
        pb.setLogSlots(log_slots);
        for (const Step* s : members)
            mapper.planStepInto(pb, *s);
        CompiledStep cs;
        Program prog = lowerPlan(pb.take(), cost, net, spec.mapping);
        cs.program = optimizeProgram(std::move(prog), level,
                                     net.overlapsCompute(),
                                     &cs.report);
        return cs;
    });
}

CompiledNetwork
compileNetwork(const PrototypeSpec& spec, const OpCostModel& cost,
               const NetworkModel& net, const NetworkGraph& graph,
               OptLevel level)
{
    NetPartition part = partitionNetwork(spec, cost, net, graph, level);

    // Rebuild the post-pass graph (chain in execution order) so dumps
    // and unit node ids reflect what actually compiles.
    WorkloadModel post;
    post.name = graph.name;
    post.logSlots = graph.logSlots;
    post.maxLimbs = graph.maxLimbs;
    post.steps = part.steps;
    CompiledNetwork out;
    out.graph = NetworkGraph::fromModel(post);
    out.units = std::move(part.units);
    out.report = part.report;

    // Compile every unit through the shared cache.  Single-layer units
    // use the step compiler's exact key, so the graph path shares
    // entries with InferenceRunner::run()/ServeSim.
    out.programs.reserve(out.units.size());
    for (const NetUnit& u : out.units) {
        std::vector<const Step*> members;
        members.reserve(u.nodes.size());
        for (uint32_t id : u.nodes)
            members.push_back(&part.steps[id]);
        out.programs.push_back(
            compileNetUnit(spec, spec.cluster, spec.cluster, cost, net,
                           graph.logSlots, members, u.kind, level));
    }
    return out;
}

} // namespace hydra
