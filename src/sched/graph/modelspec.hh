/**
 * @file
 * Declarative model frontend: text spec in, NetworkGraph out.
 *
 * A model spec is a newline- or comma-separated list of key=value
 * items ('#' starts a comment).  Header keys set the CKKS geometry;
 * layer keys append one layer each, chained in authoring order; a
 * block repeats its body COUNT times with an indexed name prefix:
 *
 *   model=NAME                      (required, the display name)
 *   slots=N                         (log2 slot count, default 15)
 *   limbs=N                         (modulus-chain length, default 24)
 *   conv=NAME:PAR[:SCALE[:CTS]]     (ConvBN;   scale 1, 32 cts)
 *   relu=NAME:PAR[:CTS]             (NonLinear ReLU;     32 cts)
 *   pool=NAME:PAR[:CTS]             (Pooling;            16 cts)
 *   fc=NAME:PAR                     (FC, tree-reduced to 1 ct)
 *   boot=NAME:CTS                   (Bootstrap of CTS ciphertexts)
 *   pcmm=NAME:PAR:SCALE             (plaintext-ciphertext matmul)
 *   ccmm=NAME:PAR:SCALE             (ciphertext-ciphertext matmul)
 *   nonlin=NAME:PAR[:CTS]           (NonLinear GeLU/Softmax; 12 cts)
 *   norm=NAME:PAR                   (LayerNorm)
 *   block=PREFIX:COUNT[:START]      (repeat body COUNT times; inner
 *   ...layer items...                layer names become
 *   end                              PREFIX<START+i><name>; no nesting)
 *
 * Every layer is built by the workloads/model.hh step factories, so a
 * parsed layer is field-identical to its hand-built counterpart — the
 * registry specs below reproduce the five hand-built models exactly
 * (asserted by tests/sched_graph_test.cc).
 *
 * tryParseModelGraph follows the ServeSpec::tryParse conventions: on
 * malformed input it returns false with a SpecError naming the
 * offending token — no crash, no exit, no silent default.
 */

#ifndef HYDRA_SCHED_GRAPH_MODELSPEC_HH
#define HYDRA_SCHED_GRAPH_MODELSPEC_HH

#include <string>
#include <vector>

#include "sched/graph/graph.hh"

namespace hydra {

/** Library-facing parse: fill `out` or fail with a named token. */
bool tryParseModelGraph(const std::string& text, NetworkGraph& out,
                        SpecError& err);

/** CLI-facing parse: calls fatal() on malformed input. */
NetworkGraph parseModelGraph(const std::string& text);

/// @name Declarative model registry.
/// The five hand-built workloads as checked-in specs plus declarative-
/// only models; `hydra_sim_cli --model` and serving tenants resolve
/// through here.
/// @{
/** Registry names of every declarative model spec. */
std::vector<std::string> modelSpecNames();

/** True when `name` has a registered spec. */
bool modelSpecExists(const std::string& name);

/** The registered spec text, or nullptr for an unknown name. */
const char* modelSpecText(const std::string& name);

/** Parse the registered spec `name`; false + structured error when the
 *  name is unknown (the error lists the valid names). */
bool tryModelGraphByName(const std::string& name, NetworkGraph& out,
                         SpecError& err);

/** CLI-facing registry lookup: calls fatal() on an unknown name. */
NetworkGraph modelGraphByName(const std::string& name);
/// @}

/**
 * Unified workload resolution for the serving layer: the hand-built
 * step registry first (bit-identical legacy behaviour), then the
 * declarative model registry lowered via toModel().  False + a
 * structured error listing both registries on an unknown name.
 */
bool tryResolveWorkloadModel(const std::string& name, WorkloadModel& out,
                             SpecError& err);

/** CLI/engine-facing resolution: calls fatal() on an unknown name. */
WorkloadModel resolveWorkloadModel(const std::string& name);

} // namespace hydra

#endif // HYDRA_SCHED_GRAPH_MODELSPEC_HH
