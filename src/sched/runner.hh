/**
 * @file
 * Whole-inference scheduler (paper Procedure 2): maps every Step of a
 * workload, executes the resulting programs in order, and rolls up
 * card -> server -> task completion with the per-step synchronization
 * cost of the machine's network.
 */

#ifndef HYDRA_SCHED_RUNNER_HH
#define HYDRA_SCHED_RUNNER_HH

#include <memory>
#include <string>
#include <vector>

#include "sched/mapping.hh"
#include "sched/passes.hh"
#include "sync/executor.hh"
#include "workloads/model.hh"

namespace hydra {

struct NetworkGraph;
struct NetOptReport;
struct ExecPlan;

/** A named machine configuration (Hydra-S/M/L, FAB-*, Poseidon). */
struct PrototypeSpec
{
    enum class NetKind : uint8_t { Switched, HostMediated };

    std::string name;
    ClusterConfig cluster;
    FpgaParams fpga;
    /** Keyswitching digit count used by the cost model. */
    size_t dnum = 4;
    NetKind netKind = NetKind::Switched;
    NetParams net;
    HostNetParams hostNet;
    MappingConfig mapping;

    std::unique_ptr<NetworkModel> makeNetwork() const;
};

/**
 * A job-scoped subset of a machine's cards, identified by their
 * original (machine-global) indices.  The serving layer carves a
 * machine into disjoint groups and runs one inference job per group.
 */
struct CardGroup
{
    /** Original card indices, strictly ascending. */
    std::vector<size_t> cards;

    size_t size() const { return cards.size(); }

    /** Whether the group is a contiguous run of whole servers, so the
     *  machine's real topology applies inside it. */
    bool alignedTo(const ClusterConfig& cluster) const;

    /** Convenience: the contiguous group [base, base + count). */
    static CardGroup contiguous(size_t base, size_t count);
};

/**
 * The sub-machine a job confined to `group` sees: whole-server groups
 * keep the machine's switched/host topology; ragged groups are
 * modelled as a flat single-server cluster (the same substitution the
 * degraded re-dispatch path of PR 2 uses for survivors).
 */
PrototypeSpec groupSubSpec(const PrototypeSpec& spec,
                           const CardGroup& group);

/** Execution record of one step. */
struct StepResult
{
    std::string name;
    ProcKind kind = ProcKind::ConvBN;
    RunStats stats;
};

/** Execution record of a full inference. */
struct InferenceResult
{
    std::string machine;
    std::string workload;
    std::vector<StepResult> steps;
    RunStats total;
    /**
     * Checkpoint boundaries: offset from the run's start (in ticks) at
     * which each successfully completed step ended, in execution order
     * (sync latency included).  The serving layer uses these to resume
     * a job killed mid-run from its last completed step boundary via
     * runJob(first_step, ...) instead of restarting from step 0.
     */
    std::vector<Tick> stepEnds;

    /** Cards (original indices) that failed permanently during the
     *  run; the affected steps were re-dispatched onto survivors. */
    std::vector<size_t> failedCards;
    /** Number of step re-dispatches triggered by card failures. */
    size_t redispatches = 0;
    /** Simulated time wasted in aborted step attempts (included in
     *  total.makespan): the makespan penalty of degraded execution. */
    Tick recoveryPenalty = 0;
    /** Terminal error when even the degraded path could not finish
     *  (retry budget exhausted, deadlock, all cards dead). */
    RunError error;

    bool ok() const { return error.ok(); }
    bool degraded() const { return !failedCards.empty(); }

    double seconds() const { return ticksToSeconds(total.makespan); }

    /** Summed makespan of all steps of one procedure kind. */
    Tick procTime(ProcKind k) const;

    /** Compute-floor (max per-card busy time) summed over those steps. */
    Tick procComputeFloor(ProcKind k) const;

    /** Fraction of a procedure's time attributable to communication. */
    double procCommFraction(ProcKind k) const;

    /** Whole-run communication-overhead fraction. */
    double commFraction() const;
};

/**
 * Runs workloads on one machine.
 *
 * Every execution path is a thin driver over an ExecPlan
 * (sched/execplan.hh): run()/runGraph() compile a materialized
 * machine plan and replay it unit by unit; the fault-aware overloads
 * and runJob() feed a plan through one unified degraded-re-dispatch
 * driver.  The legacy WorkloadModel entry points are kept as
 * bit-identical wrappers; plan-first callers (the serving layer)
 * compile once via planFor()/planForJob() and execute windows of the
 * shared plan.
 */
class InferenceRunner
{
  public:
    /**
     * @param spec machine description (copied; temporaries are safe)
     * @param ring_n CKKS ring dimension for the cost model
     */
    explicit InferenceRunner(PrototypeSpec spec,
                             size_t ring_n = size_t{1} << 16);

    InferenceResult run(const WorkloadModel& workload) const;

    /**
     * Compile `workload` into a materialized machine-scoped ExecPlan
     * (every unit's Program resolved through the shared ProgramCache
     * at build time).  run()/runGraph() semantics over the plan come
     * from runPlan().
     */
    std::shared_ptr<const ExecPlan>
    planFor(const WorkloadModel& workload,
            OptLevel level = OptLevel::Safe) const;

    /**
     * Compile `workload` into a skeleton ExecPlan for `group`'s
     * sub-machine (unit boundaries and cache keys only; programs
     * resolve on demand at execution, so repeated jobs over one shared
     * plan hit the ProgramCache per executed unit — the serving
     * layer's reuse).
     */
    std::shared_ptr<const ExecPlan>
    planForJob(const WorkloadModel& workload, const CardGroup& group,
               OptLevel level = OptLevel::Safe) const;

    /**
     * The number of units `workload` partitions into at `level` on
     * this machine, without compiling any Program.  The Aggressive
     * partition is shape-invariant (it does not depend on the
     * executing card count), so this count also holds for every card
     * group's plan — resumable unit indices (preemption slices,
     * checkpointed failover) stay meaningful across groups.
     */
    size_t planUnitCount(const WorkloadModel& workload,
                         OptLevel level = OptLevel::Safe) const;

    /**
     * Execute units [first_unit, first_unit + num_units) of a
     * machine-scoped plan on the whole machine, fault-free.  Skeleton
     * units resolve their Program through the ProgramCache.
     */
    InferenceResult
    runPlan(const ExecPlan& plan, size_t first_unit = 0,
            size_t num_units = static_cast<size_t>(-1)) const;

    /**
     * Job-scoped, resumable plan execution: the plan-first form of
     * runJob() below, with windows indexing plan *units* instead of
     * workload steps.  `plan` should come from planForJob() with the
     * same group (any plan whose cluster shape differs from the
     * group's sub-machine is recompiled per unit via the cache).
     */
    InferenceResult
    runJob(const ExecPlan& plan, const CardGroup& group, Tick start_tick,
           const FaultPlan& faults = {}, const RetryPolicy& retry = {},
           size_t first_unit = 0,
           size_t num_units = static_cast<size_t>(-1)) const;

    /**
     * Graph-compiled execution (DESIGN.md §15): compile `graph`
     * through the network compiler at `level` and execute the
     * resulting units in order.  At OptLevel::Safe this is
     * tick-identical to run(graph.toModel()) — one unit per layer,
     * same cache keys, same per-step sync accounting; Aggressive
     * enables the cross-step passes (boot-plan, fuse-linear,
     * prefetch).  An invalid graph surfaces as a structured
     * InferenceResult::error, never an abort.  When `report` is
     * non-null it receives the pass statistics.
     */
    InferenceResult runGraph(const NetworkGraph& graph,
                             OptLevel level = OptLevel::Safe,
                             NetOptReport* report = nullptr) const;

    /**
     * Fault-aware execution (Procedure-2 robustness).  Runs each step
     * under the given fault plan and retry policy.  On a permanent
     * card failure the failed step is re-mapped onto the surviving
     * cards (modelled as a flat single-switch cluster) and re-run;
     * the wasted attempt time is charged to the makespan and reported
     * as InferenceResult::recoveryPenalty.  Unrecoverable failures
     * (exhausted retry budget, deadlock, no survivors left) terminate
     * the run with InferenceResult::error set — never abort.
     */
    InferenceResult run(const WorkloadModel& workload,
                        const FaultPlan& faults,
                        const RetryPolicy& retry = {}) const;

    /**
     * Job-scoped, resumable execution for the serving layer: run steps
     * [first_step, first_step + num_steps) of `workload` confined to
     * `group`'s cards, starting at absolute virtual time `start_tick`
     * on a shared clock (the executor's time origin).
     *
     * Fault-plan card indices are machine-global (entries for cards
     * outside the group are ignored) and cardFailAt ticks are absolute
     * serve-clock times — no caller-side shifting.  On a permanent
     * card failure inside the group the failed step is re-dispatched
     * onto the group's survivors exactly like run(), and the result's
     * failedCards reports original machine indices.
     *
     * The returned total.makespan is the job's duration, i.e. the job
     * ends at start_tick + total.makespan.
     */
    InferenceResult runJob(const WorkloadModel& workload,
                           const CardGroup& group, Tick start_tick,
                           const FaultPlan& faults = {},
                           const RetryPolicy& retry = {},
                           size_t first_step = 0,
                           size_t num_steps = static_cast<size_t>(-1))
        const;

    /**
     * Fused execution: all steps preloaded into the card queues as one
     * program (paper Section IV-D), removing per-step barriers -- a
     * card may start the next step while its peers drain the current
     * one.  Returns the single merged run's statistics.
     */
    RunStats runFused(const WorkloadModel& workload) const;

    /**
     * Fused execution under a fault plan.  Fused queues cannot be
     * re-dispatched mid-stream, so a permanent card failure surfaces
     * as a structured error instead of degrading.
     */
    RunResult runFused(const WorkloadModel& workload,
                       const FaultPlan& faults,
                       const RetryPolicy& retry = {}) const;

    const OpCostModel& costModel() const { return cost_; }
    const NetworkModel& network() const { return *net_; }
    const PrototypeSpec& spec() const { return spec_; }

  private:
    /**
     * The one fault-aware execution driver: run plan units
     * [first_unit, first_unit + num_units) on the cards in `alive`
     * (original machine indices) under `sub`'s topology, re-dispatching
     * onto survivors after permanent card failures.  With
     * `absolute_clock` the executor's origin tracks
     * start_tick + elapsed and kill ticks are absolute serve-clock
     * times (runJob semantics); without it the origin stays 0 and kill
     * ticks are shifted by the elapsed makespan per attempt (legacy
     * whole-machine run(faults) semantics).
     */
    InferenceResult
    execFaulted(const PrototypeSpec& sub, const NetworkModel& net,
                const ExecPlan& plan, const std::vector<size_t>& cards,
                Tick start_tick, bool absolute_clock,
                const FaultPlan& faults, const RetryPolicy& retry,
                size_t first_unit, size_t num_units) const;

    PrototypeSpec spec_;
    OpCostModel cost_;
    std::unique_ptr<NetworkModel> net_;
};

} // namespace hydra

#endif // HYDRA_SCHED_RUNNER_HH
