/**
 * @file
 * Key material for the CKKS scheme.
 *
 * Keyswitching keys use per-limb digit decomposition with one special
 * prime P (hybrid keyswitching with dnum = L): digit i of the switched
 * polynomial is its residue mod q_i lifted to the full basis, and
 * KSK_i = (-a_i s + e_i + [P]_{q_i} * src_i * s_src-gadget, a_i) over QP.
 */

#ifndef HYDRA_FHE_KEYS_HH
#define HYDRA_FHE_KEYS_HH

#include <map>
#include <vector>

#include "math/poly.hh"

namespace hydra {

/** Secret key: ternary s, stored NTT-form over the full basis + P. */
struct SecretKey
{
    RnsPoly s;
};

/** Encryption key (b, a) = (-a s + e, a) over Q, NTT form. */
struct PublicKey
{
    RnsPoly b;
    RnsPoly a;
};

/**
 * Keyswitching key: one (b_i, a_i) pair per digit (= per ciphertext
 * prime), each over the full basis + special prime, NTT form.
 */
struct EvalKey
{
    std::vector<RnsPoly> b;
    std::vector<RnsPoly> a;

    bool valid() const { return !b.empty(); }
};

/** Rotation/conjugation keys indexed by Galois element. */
struct GaloisKeys
{
    std::map<u64, EvalKey> keys;

    bool
    has(u64 galois) const
    {
        return keys.count(galois) != 0;
    }

    const EvalKey&
    at(u64 galois) const
    {
        auto it = keys.find(galois);
        HYDRA_ASSERT(it != keys.end(), "missing Galois key");
        return it->second;
    }
};

/** Ciphertext (c0, c1) with c0 + c1 s = scale * m + e; NTT form. */
struct Ciphertext
{
    RnsPoly c0;
    RnsPoly c1;
    double scale = 0.0;

    /** Active modulus-chain limbs (the "level" plus one). */
    size_t level() const { return c0.nLimbs(); }
};

} // namespace hydra

#endif // HYDRA_FHE_KEYS_HH
