#include "fhe/polyeval.hh"

#include <bit>
#include <cmath>

#include "common/logging.hh"

namespace hydra {

size_t
polyEvalDepth(size_t degree)
{
    if (degree <= 1)
        return 1;
    return std::bit_width(degree) + 1; // power ladder + term alignment
}

Ciphertext
evalPolynomial(const Evaluator& eval, const Ciphertext& x,
               const std::vector<cplx>& coeffs, double target_scale)
{
    HYDRA_ASSERT(coeffs.size() >= 2, "need degree >= 1");
    size_t deg = coeffs.size() - 1;
    if (target_scale <= 0.0)
        target_scale = eval.context().params().scale();

    // 1. Power ladder: pow[k] for 1 <= k <= deg, built by binary
    //    splitting (x^k = x^{2^t} * x^{k - 2^t}), one rescale per mult.
    std::vector<Ciphertext> pow(deg + 1);
    std::vector<bool> have(deg + 1, false);
    pow[1] = x;
    have[1] = true;
    for (size_t k = 2; k <= deg; ++k) {
        size_t hi = size_t{1} << (std::bit_width(k) - 1);
        if (hi == k)
            hi = k / 2;
        size_t lo = k - hi;
        HYDRA_ASSERT(have[hi] && have[lo], "power ladder ordering bug");
        Ciphertext a = pow[hi];
        Ciphertext b = pow[lo];
        eval.matchLevels(a, b);
        pow[k] = eval.rescale(eval.mulRelin(a, b));
        have[k] = true;
    }

    // 2. Drop every power to the common (deepest) level.
    size_t common = pow[1].level();
    for (size_t k = 2; k <= deg; ++k)
        common = std::min(common, pow[k].level());
    HYDRA_ASSERT(common >= 2, "not enough levels for polynomial");
    for (size_t k = 1; k <= deg; ++k)
        pow[k] = eval.dropToLevel(pow[k], common);

    // 3. Scale-align every term to target_scale via mulConstantRescale
    //    (the dropped prime is the same for all terms at equal level).
    bool have_sum = false;
    Ciphertext sum;
    for (size_t k = 1; k <= deg; ++k) {
        if (std::abs(coeffs[k]) == 0.0)
            continue;
        Ciphertext term =
            eval.mulConstantRescale(pow[k], coeffs[k], target_scale);
        if (have_sum) {
            eval.addInPlace(sum, term);
        } else {
            sum = std::move(term);
            have_sum = true;
        }
    }
    HYDRA_ASSERT(have_sum, "polynomial has no nonzero term of degree >= 1");

    // 4. Constant term.
    if (std::abs(coeffs[0]) != 0.0)
        sum = eval.addConstant(sum, coeffs[0]);
    return sum;
}

} // namespace hydra
