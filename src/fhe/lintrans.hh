/**
 * @file
 * Homomorphic linear transforms on slot vectors via the Baby-Step
 * Giant-Step (BSGS) diagonal method (paper Section III-B, Fig. 3(d)).
 *
 * For an s x s matrix M acting on the slot vector z:
 *     M z = sum_g rot_{g*bs}( sum_b diag'_{g*bs+b}(M) . rot_b(z) )
 * where diag'_d is the d-th generalized diagonal pre-rotated by -g*bs.
 * Rotation count drops from O(s) to bs + gs with bs * gs >= s.
 */

#ifndef HYDRA_FHE_LINTRANS_HH
#define HYDRA_FHE_LINTRANS_HH

#include <map>
#include <vector>

#include "fhe/evaluator.hh"

namespace hydra {

/** Dense complex matrix, row-major, slots x slots. */
using CMatrix = std::vector<std::vector<cplx>>;

/** One precomputed homomorphic matrix-vector product. */
class LinearTransform
{
  public:
    /**
     * Precompute the encoded diagonals of `matrix` at plaintext scale
     * `scale`.
     * @param bs baby-step count; 0 selects ceil(sqrt(slots)) rounded to
     *           a power of two.
     */
    LinearTransform(const CkksEncoder& encoder, const CMatrix& matrix,
                    double scale, size_t bs = 0);

    /** Rotation steps the evaluator's Galois keys must cover. */
    std::vector<int> requiredRotations() const;

    /**
     * Apply to a ciphertext.  Consumes one level (PMult + final
     * rescale); the result decodes to M * decode(ct).
     */
    Ciphertext apply(const Evaluator& eval, const Ciphertext& ct) const;

    size_t babySteps() const { return bs_; }
    size_t giantSteps() const { return gs_; }

    /** Number of stored (non-negligible) diagonals. */
    size_t diagonalCount() const { return diag_.size(); }

  private:
    size_t slots_;
    size_t bs_;
    size_t gs_;
    double scale_;
    /** Encoded pre-rotated diagonals, keyed by diagonal index d. */
    std::map<size_t, Plaintext> diag_;
};

/**
 * Reference (plaintext) matrix-vector product for tests and for
 * composing transform matrices.
 */
std::vector<cplx> matVec(const CMatrix& m, const std::vector<cplx>& v);

} // namespace hydra

#endif // HYDRA_FHE_LINTRANS_HH
