#include "fhe/context.hh"

#include "common/logging.hh"
#include "math/primes.hh"

namespace hydra {

CkksContext::CkksContext(const CkksParams& params)
    : params_(params)
{
    params_.validate();

    // Build the modulus chain: q_0 (decode headroom), then L-1 scale
    // primes, then the special prime.  All distinct.
    std::vector<u64> chain = nttPrimes(params_.n, params_.firstPrimeBits, 1);
    if (params_.levels > 1) {
        auto scale_primes = nttPrimes(params_.n, params_.scaleBits,
                                      params_.levels - 1, chain);
        chain.insert(chain.end(), scale_primes.begin(), scale_primes.end());
    }
    u64 special = nttPrimes(params_.n, params_.specialPrimeBits, 1, chain)[0];

    basis_ = std::make_shared<RnsBasis>(params_.n, chain, special);

    pModQ_.resize(params_.levels);
    for (size_t k = 0; k < params_.levels; ++k)
        pModQ_[k] = basis_->mod(k).reduceU64(special);
}

u64
CkksContext::specialPrime() const
{
    return basis_->mod(basis_->specialIndex()).value();
}

u64
CkksContext::galoisForRotation(int steps) const
{
    size_t slots = params_.n / 2;
    u64 two_n = 2 * params_.n;
    // Normalize steps into [0, slots).
    long long r = steps % static_cast<long long>(slots);
    if (r < 0)
        r += static_cast<long long>(slots);
    u64 g = 1;
    for (long long i = 0; i < r; ++i)
        g = (g * 5) % two_n;
    return g;
}

} // namespace hydra
