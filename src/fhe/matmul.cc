#include "fhe/matmul.hh"

#include "common/logging.hh"

namespace hydra {

std::vector<cplx>
packMatrix(const RMatrix& m, size_t slots)
{
    size_t d = m.size();
    HYDRA_ASSERT(d * d <= slots, "matrix exceeds slot count");
    std::vector<cplx> out(slots, cplx(0, 0));
    for (size_t i = 0; i < d; ++i) {
        HYDRA_ASSERT(m[i].size() == d, "matrix must be square");
        for (size_t j = 0; j < d; ++j)
            out[i * d + j] = cplx(m[i][j], 0.0);
    }
    return out;
}

RMatrix
unpackMatrix(const std::vector<cplx>& slots, size_t d)
{
    HYDRA_ASSERT(slots.size() >= d * d, "slot vector too short");
    RMatrix m(d, std::vector<double>(d));
    for (size_t i = 0; i < d; ++i)
        for (size_t j = 0; j < d; ++j)
            m[i][j] = slots[i * d + j].real();
    return m;
}

RMatrix
matMulRef(const RMatrix& a, const RMatrix& b)
{
    size_t d = a.size();
    RMatrix out(d, std::vector<double>(d, 0.0));
    for (size_t i = 0; i < d; ++i)
        for (size_t k = 0; k < d; ++k)
            for (size_t j = 0; j < d; ++j)
                out[i][j] += a[i][k] * b[k][j];
    return out;
}

PcmmPlan::PcmmPlan(const CkksEncoder& encoder, const RMatrix& w, size_t d,
                   double scale)
    : d_(d)
{
    size_t slots = encoder.slots();
    HYDRA_ASSERT(d * d <= slots, "matrix exceeds slot count");
    HYDRA_ASSERT(w.size() == d, "weight matrix dimension");
    // Slot-level transform M with out = M z:
    // out[i*d + j] = sum_k z[i*d + k] * W[k][j]  (one W^T block per row).
    CMatrix m(slots, std::vector<cplx>(slots, cplx(0, 0)));
    for (size_t i = 0; i < d; ++i)
        for (size_t j = 0; j < d; ++j)
            for (size_t k = 0; k < d; ++k)
                m[i * d + j][i * d + k] = cplx(w[k][j], 0.0);
    lt_ = std::make_unique<LinearTransform>(encoder, m, scale, 0);
}

std::vector<int>
PcmmPlan::requiredRotations() const
{
    return lt_->requiredRotations();
}

Ciphertext
PcmmPlan::apply(const Evaluator& eval, const Ciphertext& ct) const
{
    return lt_->apply(eval, ct);
}

std::vector<int>
ccmmRotations(size_t d)
{
    std::vector<int> steps;
    int dd = static_cast<int>(d);
    for (int t = 1 - dd; t < dd; ++t)
        if (t != 0)
            steps.push_back(t);
    for (int i = 1 - dd; i < dd; ++i)
        if (i != 0)
            steps.push_back(i * dd);
    return steps;
}

namespace {

/** Sum of hoisted rotations of `ct` by every step in `steps`. */
Ciphertext
sumRotations(const Evaluator& eval, const Ciphertext& ct,
             const std::vector<int>& steps)
{
    std::vector<Ciphertext> rots = eval.rotateHoisted(ct, steps);
    Ciphertext acc = std::move(rots[0]);
    for (size_t i = 1; i < rots.size(); ++i)
        eval.addInPlace(acc, rots[i]);
    return acc;
}

/** One-hot column (or row) mask at target scale. */
Plaintext
makeMask(const CkksEncoder& encoder, size_t d, size_t k, bool column,
         double scale, size_t levels)
{
    std::vector<cplx> mask(encoder.slots(), cplx(0, 0));
    for (size_t t = 0; t < d; ++t) {
        size_t idx = column ? t * d + k : k * d + t;
        mask[idx] = cplx(1.0, 0.0);
    }
    return encoder.encode(mask, scale, levels);
}

} // namespace

Ciphertext
ccmm(const Evaluator& eval, const Ciphertext& a, const Ciphertext& b,
     size_t d)
{
    const CkksEncoder& encoder = eval.encoder();
    HYDRA_ASSERT(d * d <= encoder.slots(), "matrix exceeds slot count");
    double scale = eval.context().params().scale();

    bool have = false;
    Ciphertext acc;
    for (size_t k = 0; k < d; ++k) {
        // Column k of A, broadcast across each row:
        // sum_t rot(maskA, k - t).
        Plaintext col_mask = makeMask(encoder, d, k, true, scale,
                                      a.level());
        Ciphertext a_col = eval.mulPlain(a, col_mask);
        eval.rescaleInPlace(a_col);
        std::vector<int> row_steps;
        for (size_t t = 0; t < d; ++t)
            row_steps.push_back(static_cast<int>(k) -
                                static_cast<int>(t));
        Ciphertext a_rep = sumRotations(eval, a_col, row_steps);

        // Row k of B, broadcast down each column:
        // sum_i rot(maskB, (k - i) * d).
        Plaintext row_mask = makeMask(encoder, d, k, false, scale,
                                      b.level());
        Ciphertext b_row = eval.mulPlain(b, row_mask);
        eval.rescaleInPlace(b_row);
        std::vector<int> col_steps;
        for (size_t i = 0; i < d; ++i)
            col_steps.push_back((static_cast<int>(k) -
                                 static_cast<int>(i)) *
                                static_cast<int>(d));
        Ciphertext b_rep = sumRotations(eval, b_row, col_steps);

        Ciphertext term = eval.mulRelin(a_rep, b_rep);
        if (have) {
            eval.addInPlace(acc, term);
        } else {
            acc = std::move(term);
            have = true;
        }
    }
    eval.rescaleInPlace(acc);
    return acc;
}

} // namespace hydra
