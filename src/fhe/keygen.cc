#include "fhe/keygen.hh"

#include "common/logging.hh"

namespace hydra {

KeyGenerator::KeyGenerator(const CkksContext& ctx)
    : ctx_(ctx), rng_(ctx.params().seed)
{
}

RnsPoly
KeyGenerator::sampleUniformFull()
{
    size_t levels = ctx_.levels();
    RnsPoly p(ctx_.basis(), levels, true, true);
    for (size_t k = 0; k < p.limbCount(); ++k) {
        u64 q = p.mod(k).value();
        for (auto& x : p.limb(k))
            x = rng_.uniformU64(q);
    }
    return p;
}

RnsPoly
KeyGenerator::sampleErrorFull()
{
    std::vector<i64> e(ctx_.n());
    for (auto& x : e)
        x = rng_.smallError(ctx_.params().errorStd);
    RnsPoly p = RnsPoly::fromSigned(ctx_.basis(), ctx_.levels(), true, e);
    p.toNtt();
    return p;
}

SecretKey
KeyGenerator::secretKey()
{
    std::vector<i64> s(ctx_.n(), 0);
    size_t h = ctx_.params().secretHammingWeight;
    if (h == 0) {
        for (auto& x : s)
            x = rng_.ternary();
    } else {
        // Sparse ternary secret with exactly h nonzero coefficients.
        HYDRA_ASSERT(h <= ctx_.n(), "Hamming weight exceeds ring size");
        size_t placed = 0;
        while (placed < h) {
            size_t idx = rng_.uniformU64(ctx_.n());
            if (s[idx] != 0)
                continue;
            s[idx] = rng_.uniformU64(2) ? 1 : -1;
            ++placed;
        }
    }
    RnsPoly p = RnsPoly::fromSigned(ctx_.basis(), ctx_.levels(), true, s);
    p.toNtt();
    return SecretKey{std::move(p)};
}

PublicKey
KeyGenerator::publicKey(const SecretKey& sk)
{
    // (b, a) with b = -a s + e over Q only (no special limb needed).
    RnsPoly a(ctx_.basis(), ctx_.levels(), false, true);
    for (size_t k = 0; k < a.limbCount(); ++k) {
        u64 q = a.mod(k).value();
        for (auto& x : a.limb(k))
            x = rng_.uniformU64(q);
    }
    std::vector<i64> ev(ctx_.n());
    for (auto& x : ev)
        x = rng_.smallError(ctx_.params().errorStd);
    RnsPoly e = RnsPoly::fromSigned(ctx_.basis(), ctx_.levels(), false, ev);
    e.toNtt();

    // Restrict s to the Q limbs.
    RnsPoly b(ctx_.basis(), ctx_.levels(), false, true);
    for (size_t k = 0; k < b.limbCount(); ++k) {
        const Modulus& m = b.mod(k);
        const auto sl = sk.s.limb(k);
        const auto al = a.limb(k);
        const auto bl = b.limb(k);
        const auto el = e.limb(k);
        for (size_t i = 0; i < bl.size(); ++i)
            bl[i] = m.addMod(m.negMod(m.mulMod(al[i], sl[i])), el[i]);
    }
    return PublicKey{std::move(b), std::move(a)};
}

EvalKey
KeyGenerator::makeSwitchKey(const RnsPoly& src, const SecretKey& sk)
{
    HYDRA_ASSERT(src.nttForm() && src.hasSpecial() &&
                     src.nLimbs() == ctx_.levels(),
                 "switch-key source must be NTT form over the full basis");
    size_t digits = ctx_.levels();
    EvalKey key;
    key.b.reserve(digits);
    key.a.reserve(digits);
    for (size_t i = 0; i < digits; ++i) {
        RnsPoly a_i = sampleUniformFull();
        RnsPoly e_i = sampleErrorFull();
        // b_i = -a_i s + e_i; then limb i += (P mod q_i) * src.
        RnsPoly b_i(ctx_.basis(), digits, true, true);
        for (size_t k = 0; k < b_i.limbCount(); ++k) {
            const Modulus& m = b_i.mod(k);
            const auto al = a_i.limb(k);
            const auto sl = sk.s.limb(k);
            const auto el = e_i.limb(k);
            const auto bl = b_i.limb(k);
            for (size_t t = 0; t < bl.size(); ++t)
                bl[t] = m.addMod(m.negMod(m.mulMod(al[t], sl[t])), el[t]);
        }
        {
            const Modulus& m = b_i.mod(i);
            u64 p_mod = ctx_.pModQ(i);
            const auto bl = b_i.limb(i);
            const auto srcl = src.limb(i);
            for (size_t t = 0; t < bl.size(); ++t)
                bl[t] = m.addMod(bl[t], m.mulMod(p_mod, srcl[t]));
        }
        key.b.push_back(std::move(b_i));
        key.a.push_back(std::move(a_i));
    }
    return key;
}

EvalKey
KeyGenerator::relinKey(const SecretKey& sk)
{
    RnsPoly s2 = sk.s;
    s2.mulPointwise(sk.s);
    return makeSwitchKey(s2, sk);
}

EvalKey
KeyGenerator::galoisKey(const SecretKey& sk, u64 galois)
{
    RnsPoly s = sk.s;
    s.fromNtt();
    RnsPoly s_g = s.automorphism(galois);
    s_g.toNtt();
    return makeSwitchKey(s_g, sk);
}

std::vector<int>
KeyGenerator::powerOfTwoSteps() const
{
    std::vector<int> steps;
    for (size_t s = 1; s < ctx_.slots(); s <<= 1)
        steps.push_back(static_cast<int>(s));
    return steps;
}

GaloisKeys
KeyGenerator::galoisKeys(const SecretKey& sk, const std::vector<int>& steps,
                         bool with_conjugation)
{
    GaloisKeys out;
    for (int r : steps) {
        u64 g = ctx_.galoisForRotation(r);
        if (g != 1 && !out.has(g))
            out.keys.emplace(g, galoisKey(sk, g));
    }
    if (with_conjugation) {
        u64 g = ctx_.galoisForConjugation();
        if (!out.has(g))
            out.keys.emplace(g, galoisKey(sk, g));
    }
    return out;
}

} // namespace hydra
