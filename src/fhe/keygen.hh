/**
 * @file
 * Key generation: secret, public, relinearization and Galois keys.
 */

#ifndef HYDRA_FHE_KEYGEN_HH
#define HYDRA_FHE_KEYGEN_HH

#include <vector>

#include "common/rng.hh"
#include "fhe/context.hh"
#include "fhe/keys.hh"

namespace hydra {

/** Samples all key material for one CKKS context. */
class KeyGenerator
{
  public:
    explicit KeyGenerator(const CkksContext& ctx);

    /** Sample a fresh ternary secret key. */
    SecretKey secretKey();

    /** Encryption key for the given secret. */
    PublicKey publicKey(const SecretKey& sk);

    /** Relinearization key: switches s^2 -> s. */
    EvalKey relinKey(const SecretKey& sk);

    /** Galois key for one element g: switches s(X^g) -> s. */
    EvalKey galoisKey(const SecretKey& sk, u64 galois);

    /** Galois keys for a set of rotation steps (plus conjugation). */
    GaloisKeys galoisKeys(const SecretKey& sk,
                          const std::vector<int>& steps,
                          bool with_conjugation = true);

    /**
     * The power-of-two step set {1, 2, 4, ..., slots/2}: log2(slots)
     * keys that let Evaluator::rotateDecomposed reach any rotation.
     */
    std::vector<int> powerOfTwoSteps() const;

    /**
     * Keyswitching key from an arbitrary source secret polynomial
     * (NTT form, full basis) to sk.  Building block for the above.
     */
    EvalKey makeSwitchKey(const RnsPoly& src, const SecretKey& sk);

  private:
    /** Uniform polynomial over the full basis + special prime, NTT. */
    RnsPoly sampleUniformFull();

    /** Small error polynomial over the full basis + special prime. */
    RnsPoly sampleErrorFull();

    const CkksContext& ctx_;
    Rng rng_;
};

} // namespace hydra

#endif // HYDRA_FHE_KEYGEN_HH
