/**
 * @file
 * Functional homomorphic CNN kernels (paper Section III-A / Fig. 1):
 * single-input single-output 2-D convolution by rotations and
 * plaintext multiplications ([12]'s SISO building block), BN folding,
 * and average pooling as a 1/k^2 convolution.
 *
 * The image is packed row-major into the ciphertext slots; a k x k
 * kernel costs k^2 - 1 rotations, k^2 PMults and k^2 - 1 HAdds (the
 * paper's ConvBN unit is the multiplexed multi-channel extension with
 * 8 rotations, 2 PMults, 7 HAdds per kernel group).
 */

#ifndef HYDRA_FHE_CONVOLUTION_HH
#define HYDRA_FHE_CONVOLUTION_HH

#include <vector>

#include "fhe/evaluator.hh"

namespace hydra {

/** A dense 2-D convolution kernel with its fused BN bias. */
struct ConvKernel
{
    /** k x k row-major weights. */
    std::vector<double> weights;
    size_t k = 3;
    /** Folded batch-norm bias added after the convolution. */
    double bias = 0.0;
};

/**
 * Rotation steps conv2d/avgPool need for image width `w` and kernel
 * size `k` (pass to KeyGenerator::galoisKeys).
 */
std::vector<int> convRotations(size_t w, size_t k);

/**
 * Homomorphic "same"-padded 2-D convolution of an h x w image packed
 * row-major in `ct`'s slots.  Border slots wrap (slot rotation is
 * cyclic); callers that need exact borders keep a margin, as [12]
 * does with its multiplexed packing.  Costs one level.
 */
Ciphertext conv2d(const Evaluator& eval, const Ciphertext& ct,
                  const ConvKernel& kernel, size_t h, size_t w);

/**
 * Homomorphic k x k average pooling at stride 1 (paper Section III-A:
 * "a two-dimensional convolution ... with 1/k^2 values").
 */
Ciphertext avgPool(const Evaluator& eval, const Ciphertext& ct,
                   size_t k, size_t h, size_t w);

/** Plaintext reference implementations for tests. */
std::vector<double> conv2dRef(const std::vector<double>& image,
                              const ConvKernel& kernel, size_t h,
                              size_t w);
std::vector<double> avgPoolRef(const std::vector<double>& image,
                               size_t k, size_t h, size_t w);

} // namespace hydra

#endif // HYDRA_FHE_CONVOLUTION_HH
