/**
 * @file
 * CKKS encoder: canonical-embedding encode/decode between complex slot
 * vectors and ring plaintexts, via the HEAAN-style special FFT over the
 * 5^j twisted roots.
 */

#ifndef HYDRA_FHE_ENCODER_HH
#define HYDRA_FHE_ENCODER_HH

#include <complex>
#include <memory>
#include <vector>

#include "fhe/context.hh"
#include "math/poly.hh"

namespace hydra {

using cplx = std::complex<double>;

/** Plaintext polynomial together with its scaling factor. */
struct Plaintext
{
    RnsPoly poly;
    double scale = 0.0;

    Plaintext() = default;

    Plaintext(RnsPoly p, double s)
        : poly(std::move(p)), scale(s)
    {
    }

    /** Copies start with a cold cache so edits to `poly` stay safe. */
    Plaintext(const Plaintext& o)
        : poly(o.poly), scale(o.scale)
    {
    }

    Plaintext&
    operator=(const Plaintext& o)
    {
        poly = o.poly;
        scale = o.scale;
        cache_.reset();
        return *this;
    }

    Plaintext(Plaintext&&) = default;
    Plaintext& operator=(Plaintext&&) = default;

    /**
     * NTT-form copy of `poly` restricted to its first `levels` limbs,
     * built on first use and memoized per level.  Repeated
     * plaintext-ciphertext operations against the same plaintext (the
     * BSGS inner loop) pay the restrict + forward NTT exactly once.
     * Do not mutate `poly` after calling this.
     */
    const RnsPoly& nttRestricted(size_t levels) const;

  private:
    struct NttCache;
    mutable std::shared_ptr<NttCache> cache_;
};

/** Encode/decode between C^{n/2} and R = Z[X]/(X^n+1). */
class CkksEncoder
{
  public:
    explicit CkksEncoder(const CkksContext& ctx);

    size_t slots() const { return slots_; }

    /** Limb count of a full-level plaintext. */
    size_t maxLevels() const { return ctx_.levels(); }

    /**
     * Encode a complex vector (padded with zeros up to n/2 slots) at the
     * given scale into a plaintext with `n_limbs` active limbs.
     */
    Plaintext encode(const std::vector<cplx>& values, double scale,
                     size_t n_limbs) const;

    /** Encode a real vector. */
    Plaintext encode(const std::vector<double>& values, double scale,
                     size_t n_limbs) const;

    /**
     * Encode the constant vector (c, c, ..., c) without an FFT:
     * the plaintext is Re(c)*scale + Im(c)*scale * X^{n/2}.
     */
    Plaintext encodeConstant(cplx c, double scale, size_t n_limbs) const;

    /** Decode a plaintext back to its complex slot vector. */
    std::vector<cplx> decode(const Plaintext& pt) const;

    /** Special FFT (coefficient-packing -> slot values), in place. */
    void fftSpecial(std::vector<cplx>& vals) const;

    /** Inverse special FFT (slot values -> coefficient packing). */
    void fftSpecialInv(std::vector<cplx>& vals) const;

    /**
     * The j-th embedding root zeta_j = exp(i*pi*(5^j mod 2n)/n); the
     * matrix U with U[j][i] = zeta_j^i defines decode(pt)_j =
     * sum_i coeff_i * zeta_j^i / scale for i < n.  Exposed for the
     * bootstrapping linear transforms.
     */
    cplx embeddingRoot(size_t j) const;

  private:
    const CkksContext& ctx_;
    size_t slots_;
    size_t m_; ///< 2n
    std::vector<size_t> rotGroup_; ///< 5^j mod 2n
    std::vector<cplx> ksiPows_;    ///< exp(2*pi*i*k/m)
};

} // namespace hydra

#endif // HYDRA_FHE_ENCODER_HH
