#include "fhe/convolution.hh"

#include <cmath>
#include <set>

#include "common/logging.hh"

namespace hydra {

namespace {

/** Signed tap offsets for a k x k kernel centred on the output slot. */
int
tapShift(size_t k, size_t tap_row, size_t tap_col, size_t w)
{
    int half = static_cast<int>(k) / 2;
    int dy = static_cast<int>(tap_row) - half;
    int dx = static_cast<int>(tap_col) - half;
    return dy * static_cast<int>(w) + dx;
}

} // namespace

std::vector<int>
convRotations(size_t w, size_t k)
{
    std::set<int> steps;
    for (size_t r = 0; r < k; ++r)
        for (size_t c = 0; c < k; ++c) {
            int s = tapShift(k, r, c, w);
            if (s != 0)
                steps.insert(s);
        }
    return {steps.begin(), steps.end()};
}

Ciphertext
conv2d(const Evaluator& eval, const Ciphertext& ct,
       const ConvKernel& kernel, size_t h, size_t w)
{
    HYDRA_ASSERT(kernel.weights.size() == kernel.k * kernel.k,
                 "kernel weight count");
    HYDRA_ASSERT(h * w <= eval.encoder().slots(), "image exceeds slots");
    (void)h;
    double scale = eval.context().params().scale();

    bool have = false;
    Ciphertext acc;
    for (size_t r = 0; r < kernel.k; ++r) {
        for (size_t c = 0; c < kernel.k; ++c) {
            double wgt = kernel.weights[r * kernel.k + c];
            if (wgt == 0.0)
                continue;
            int shift = tapShift(kernel.k, r, c, w);
            Ciphertext rot = shift ? eval.rotate(ct, shift) : ct;
            Ciphertext term =
                eval.mulConstant(rot, cplx(wgt, 0.0), scale);
            if (have) {
                acc = eval.add(acc, term);
            } else {
                acc = std::move(term);
                have = true;
            }
        }
    }
    HYDRA_ASSERT(have, "kernel is all zero");
    Ciphertext out = eval.rescale(acc);
    if (kernel.bias != 0.0)
        out = eval.addConstant(out, cplx(kernel.bias, 0.0));
    return out;
}

Ciphertext
avgPool(const Evaluator& eval, const Ciphertext& ct, size_t k, size_t h,
        size_t w)
{
    ConvKernel kernel;
    kernel.k = k;
    kernel.weights.assign(k * k,
                          1.0 / static_cast<double>(k * k));
    return conv2d(eval, ct, kernel, h, w);
}

std::vector<double>
conv2dRef(const std::vector<double>& image, const ConvKernel& kernel,
          size_t h, size_t w)
{
    size_t n = h * w;
    HYDRA_ASSERT(image.size() == n, "image size");
    std::vector<double> out(n, kernel.bias);
    for (size_t j = 0; j < n; ++j) {
        for (size_t r = 0; r < kernel.k; ++r) {
            for (size_t c = 0; c < kernel.k; ++c) {
                int shift = tapShift(kernel.k, r, c, w);
                size_t src =
                    (j + n + static_cast<size_t>(
                                 (shift % static_cast<int>(n) +
                                  static_cast<int>(n)))) % n;
                out[j] += kernel.weights[r * kernel.k + c] * image[src];
            }
        }
    }
    return out;
}

std::vector<double>
avgPoolRef(const std::vector<double>& image, size_t k, size_t h,
           size_t w)
{
    ConvKernel kernel;
    kernel.k = k;
    kernel.weights.assign(k * k, 1.0 / static_cast<double>(k * k));
    return conv2dRef(image, kernel, h, w);
}

} // namespace hydra
