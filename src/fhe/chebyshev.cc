#include "fhe/chebyshev.hh"

#include <cmath>
#include <numbers>

#include "common/logging.hh"

namespace hydra {

double
ChebyshevPoly::operator()(double x) const
{
    HYDRA_ASSERT(!coeffs.empty(), "empty Chebyshev polynomial");
    double t = (2.0 * x - a - b) / (b - a);
    // Clenshaw recurrence.
    double b1 = 0.0, b2 = 0.0;
    for (size_t k = coeffs.size(); k-- > 1;) {
        double tmp = 2.0 * t * b1 - b2 + coeffs[k];
        b2 = b1;
        b1 = tmp;
    }
    return t * b1 - b2 + coeffs[0];
}

std::vector<cplx>
ChebyshevPoly::toPowerBasis() const
{
    size_t d = degree();
    // T_k(t) in monomials of t, built by the recurrence
    // T_k = 2 t T_{k-1} - T_{k-2}.
    std::vector<std::vector<double>> t_poly(d + 1);
    t_poly[0] = {1.0};
    if (d >= 1)
        t_poly[1] = {0.0, 1.0};
    for (size_t k = 2; k <= d; ++k) {
        std::vector<double> p(k + 1, 0.0);
        for (size_t i = 0; i < t_poly[k - 1].size(); ++i)
            p[i + 1] += 2.0 * t_poly[k - 1][i];
        for (size_t i = 0; i < t_poly[k - 2].size(); ++i)
            p[i] -= t_poly[k - 2][i];
        t_poly[k] = std::move(p);
    }
    // Sum c_k T_k(t), still in t.
    std::vector<double> in_t(d + 1, 0.0);
    for (size_t k = 0; k <= d; ++k)
        for (size_t i = 0; i < t_poly[k].size(); ++i)
            in_t[i] += coeffs[k] * t_poly[k][i];
    // Substitute t = alpha x + beta.
    double alpha = 2.0 / (b - a);
    double beta = -(a + b) / (b - a);
    std::vector<double> out(d + 1, 0.0);
    // Horner in t over polynomial coefficients of x.
    std::vector<double> acc = {0.0};
    for (size_t k = d + 1; k-- > 0;) {
        // acc = acc * (alpha x + beta) + in_t[k]
        std::vector<double> next(acc.size() + 1, 0.0);
        for (size_t i = 0; i < acc.size(); ++i) {
            next[i + 1] += acc[i] * alpha;
            next[i] += acc[i] * beta;
        }
        next[0] += in_t[k];
        acc = std::move(next);
    }
    out.assign(d + 1, 0.0);
    for (size_t i = 0; i <= d && i < acc.size(); ++i)
        out[i] = acc[i];
    std::vector<cplx> cout(d + 1);
    for (size_t i = 0; i <= d; ++i)
        cout[i] = cplx(out[i], 0.0);
    return cout;
}

ChebyshevPoly
chebyshevFit(const std::function<double(double)>& f, size_t degree,
             double a, double b)
{
    HYDRA_ASSERT(b > a, "empty interval");
    size_t n = degree + 1;
    ChebyshevPoly out;
    out.a = a;
    out.b = b;
    out.coeffs.assign(n, 0.0);
    // Sample at Chebyshev nodes and project.
    std::vector<double> fx(n);
    for (size_t j = 0; j < n; ++j) {
        double theta = std::numbers::pi * (j + 0.5) / n;
        double t = std::cos(theta);
        fx[j] = f(0.5 * (t * (b - a) + a + b));
    }
    for (size_t k = 0; k < n; ++k) {
        double s = 0.0;
        for (size_t j = 0; j < n; ++j)
            s += fx[j] *
                 std::cos(std::numbers::pi * k * (j + 0.5) / n);
        out.coeffs[k] = 2.0 * s / n;
    }
    out.coeffs[0] *= 0.5;
    return out;
}

Ciphertext
evalChebyshev(const Evaluator& eval, const Ciphertext& ct,
              const ChebyshevPoly& poly)
{
    HYDRA_ASSERT(poly.degree() >= 1, "degree >= 1 required");
    HYDRA_ASSERT(poly.degree() <= 24,
                 "power-basis conversion unstable past degree ~24");
    return evalPolynomial(eval, ct, poly.toPowerBasis());
}

double
softRelu(double x, double sharpness)
{
    return x / (1.0 + std::exp(-sharpness * x));
}

} // namespace hydra
