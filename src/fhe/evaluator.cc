#include "fhe/evaluator.hh"

#include <cmath>

#include "common/logging.hh"
#include "common/parallel.hh"
#include "common/pool.hh"
#include "math/simd/simd.hh"

namespace hydra {

namespace {

/** Scales must agree to relative 1e-6 before additive combination. */
void
checkScalesMatch(double a, double b)
{
    HYDRA_ASSERT(std::abs(a - b) <= 1e-6 * std::max(a, b),
                 "ciphertext scales do not match");
}

/** Copy of p restricted to its first `levels` limbs (domain preserved). */
RnsPoly
restrictTo(const RnsPoly& p, size_t levels)
{
    HYDRA_ASSERT(levels <= p.nLimbs() && !p.hasSpecial(),
                 "cannot restrict");
    RnsPoly out(p.basis(), levels, false, p.nttForm());
    for (size_t k = 0; k < levels; ++k)
        out.copyLimbFrom(k, p, k);
    return out;
}

} // namespace

Evaluator::Evaluator(const CkksContext& ctx, const CkksEncoder& encoder)
    : ctx_(ctx), encoder_(encoder)
{
}

void
Evaluator::addInPlace(Ciphertext& a, const Ciphertext& b) const
{
    HYDRA_ASSERT(a.level() == b.level(), "level mismatch in add");
    checkScalesMatch(a.scale, b.scale);
    a.c0.add(b.c0);
    a.c1.add(b.c1);
    count(HeOpType::HAdd, a.level());
}

Ciphertext
Evaluator::add(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext out = a;
    addInPlace(out, b);
    return out;
}

void
Evaluator::subInPlace(Ciphertext& a, const Ciphertext& b) const
{
    HYDRA_ASSERT(a.level() == b.level(), "level mismatch in sub");
    checkScalesMatch(a.scale, b.scale);
    a.c0.sub(b.c0);
    a.c1.sub(b.c1);
    count(HeOpType::HAdd, a.level());
}

Ciphertext
Evaluator::sub(const Ciphertext& a, const Ciphertext& b) const
{
    Ciphertext out = a;
    subInPlace(out, b);
    return out;
}

Ciphertext
Evaluator::negate(const Ciphertext& a) const
{
    Ciphertext out = a;
    out.c0.negate();
    out.c1.negate();
    return out;
}

Ciphertext
Evaluator::addPlain(const Ciphertext& a, const Plaintext& p) const
{
    checkScalesMatch(a.scale, p.scale);
    HYDRA_ASSERT(p.poly.nLimbs() >= a.level(), "plaintext level too low");
    Ciphertext out = a;
    out.c0.add(p.nttRestricted(a.level()));
    count(HeOpType::HAdd, out.level());
    return out;
}

void
Evaluator::mulPlainInPlace(Ciphertext& a, const Plaintext& p) const
{
    HYDRA_ASSERT(p.poly.nLimbs() >= a.level(), "plaintext level too low");
    const RnsPoly& pp = p.nttRestricted(a.level());
    a.c0.mulPointwise(pp);
    a.c1.mulPointwise(pp);
    a.scale *= p.scale;
    count(HeOpType::PMult, a.level());
}

Ciphertext
Evaluator::mulPlain(const Ciphertext& a, const Plaintext& p) const
{
    Ciphertext out = a;
    mulPlainInPlace(out, p);
    return out;
}

void
Evaluator::addMulPlain(Ciphertext& acc, const Ciphertext& a,
                       const Plaintext& p) const
{
    HYDRA_ASSERT(acc.level() == a.level(),
                 "level mismatch in addMulPlain");
    HYDRA_ASSERT(p.poly.nLimbs() >= a.level(), "plaintext level too low");
    checkScalesMatch(acc.scale, a.scale * p.scale);
    const RnsPoly& pp = p.nttRestricted(a.level());
    acc.c0.addMulPointwise(a.c0, pp);
    acc.c1.addMulPointwise(a.c1, pp);
    count(HeOpType::PMult, acc.level());
    count(HeOpType::HAdd, acc.level());
}

Ciphertext
Evaluator::mulRelin(const Ciphertext& a, const Ciphertext& b) const
{
    HYDRA_ASSERT(relin_ != nullptr, "relin key not set");
    HYDRA_ASSERT(a.level() == b.level(), "level mismatch in mulRelin");

    RnsPoly d0 = a.c0;
    d0.mulPointwise(b.c0);
    RnsPoly d1 = a.c0;
    d1.mulPointwise(b.c1);
    d1.addMulPointwise(a.c1, b.c0);
    RnsPoly d2 = a.c1;
    d2.mulPointwise(b.c1);

    d2.fromNtt();
    auto [t0, t1] = keySwitch(d2, *relin_);

    Ciphertext out;
    out.c0 = std::move(d0);
    out.c0.add(t0);
    out.c1 = std::move(d1);
    out.c1.add(t1);
    out.scale = a.scale * b.scale;
    count(HeOpType::CMult, out.level());
    return out;
}

Ciphertext
Evaluator::square(const Ciphertext& a) const
{
    return mulRelin(a, a);
}

Ciphertext
Evaluator::mulConstant(const Ciphertext& a, cplx c, double scale) const
{
    Plaintext pt = encoder_.encodeConstant(c, scale, a.level());
    return mulPlain(a, pt);
}

Ciphertext
Evaluator::addConstant(const Ciphertext& a, cplx c) const
{
    Plaintext pt = encoder_.encodeConstant(c, a.scale, a.level());
    return addPlain(a, pt);
}

Ciphertext
Evaluator::mulConstantRescale(const Ciphertext& a, cplx c,
                              double target_scale) const
{
    HYDRA_ASSERT(a.level() >= 2, "no level left for mulConstantRescale");
    double q_last = static_cast<double>(
        ctx_.basis()->mod(a.level() - 1).value());
    double u = target_scale * q_last / a.scale;
    Ciphertext out = rescale(mulConstant(a, c, u));
    out.scale = target_scale; // exact by construction
    return out;
}

void
Evaluator::rescaleInPlace(Ciphertext& a) const
{
    HYDRA_ASSERT(a.level() >= 2, "no limb left to rescale away");
    u64 q_last = a.c0.mod(a.level() - 1).value();
    a.c0.divideRoundByLast();
    a.c1.divideRoundByLast();
    a.scale /= static_cast<double>(q_last);
    count(HeOpType::Rescale, a.level());
}

Ciphertext
Evaluator::rescale(const Ciphertext& a) const
{
    Ciphertext out = a;
    rescaleInPlace(out);
    return out;
}

Ciphertext
Evaluator::dropToLevel(const Ciphertext& a, size_t levels) const
{
    HYDRA_ASSERT(levels >= 1 && levels <= a.level(), "bad target level");
    if (levels == a.level())
        return a;
    Ciphertext out;
    out.c0 = restrictTo(a.c0, levels);
    out.c1 = restrictTo(a.c1, levels);
    out.scale = a.scale;
    return out;
}

void
Evaluator::matchLevels(Ciphertext& a, Ciphertext& b) const
{
    if (a.level() > b.level())
        a = dropToLevel(a, b.level());
    else if (b.level() > a.level())
        b = dropToLevel(b, a.level());
}

std::vector<RnsPoly>
Evaluator::decomposeDigits(const RnsPoly& d) const
{
    HYDRA_ASSERT(!d.nttForm() && !d.hasSpecial(),
                 "digit decomposition wants coefficient domain over Q");
    size_t levels = d.nLimbs();
    size_t n = d.n();
    const RnsBasis& basis = *ctx_.basis();

    // Digits are independent: each lifts one centered residue limb to
    // the full basis and NTTs it, so the digit loop parallelizes whole
    // (the nested limb loops inside fromSigned/toNtt fall back to
    // serial under the pool's re-entrancy guard).
    std::vector<RnsPoly> digits(levels);
    parallelFor(0, levels, [&](size_t i) {
        const Modulus& qi = basis.mod(i);
        const u64* src = d.limbData(i);
        // Pool scratch for the centered representatives (signed alias
        // of the same 64-bit words).
        PoolBuffer scratch = BufferPool::global().acquire(n);
        i64* centered = reinterpret_cast<i64*>(scratch.data());
        simd::kernels().toCenteredSpan(centered, src, n, qi.value());
        RnsPoly dig = RnsPoly::fromSigned(ctx_.basis(), levels, true,
                                          centered);
        dig.toNtt();
        digits[i] = std::move(dig);
    });
    return digits;
}

std::pair<RnsPoly, RnsPoly>
Evaluator::accumulateKey(const std::vector<RnsPoly>& digits,
                         const EvalKey& key, size_t levels,
                         u64 galois) const
{
    size_t key_special_pos = ctx_.levels(); // position in key polys
    RnsPoly acc0(ctx_.basis(), levels, true, true);
    RnsPoly acc1(ctx_.basis(), levels, true, true);

    // Hoisting: the Galois map commutes with digit decomposition, so a
    // permutation of the precomputed NTT-form digits stands in for
    // decomposing the rotated polynomial.  The permutation is the same
    // for every limb and digit, so it is fetched once from the memo and
    // applied as a gather inside the accumulation loop.
    const std::vector<size_t>* map = nullptr;
    if (galois != 1)
        map = &RnsPoly::nttAutomorphismMapCached(acc0.n(), galois);

    // The levels+1 output limbs are independent: each accumulates every
    // digit against its own key limb.  This is the dominant cost of
    // mulRelin/rotate and the same limb-level parallelism the paper's
    // compute units exploit, so the output-limb loop goes to the pool.
    size_t nn = acc0.n();
    parallelFor(0, levels + 1, [&](size_t kpos) {
        size_t key_pos = kpos < levels ? kpos : key_special_pos;
        const Modulus& mj = acc0.mod(kpos);
        u64* a0 = acc0.limbData(kpos);
        u64* a1 = acc1.limbData(kpos);
        // The hoisted-rotation variant gathers the digit limb through
        // the Galois permutation once into pooled scratch so the MAC
        // below always runs on contiguous spans.
        PoolBuffer gathered;
        if (map)
            gathered = BufferPool::global().acquire(nn);
        for (size_t i = 0; i < digits.size(); ++i) {
            const u64* dl = digits[i].limbData(kpos);
            const u64* bkey = key.b[i].limbData(key_pos);
            const u64* akey = key.a[i].limbData(key_pos);
            if (map) {
                u64* g = gathered.data();
                for (size_t t = 0; t < nn; ++t)
                    g[t] = dl[(*map)[t]];
                dl = g;
            }
            simd::kernels().macPairSpan(a0, a1, dl, bkey, akey, nn,
                                        mj);
        }
    });

    // ModDown: divide by the special prime.
    acc0.divideRoundByLast();
    acc1.divideRoundByLast();
    count(HeOpType::KeySwitch, levels);
    return {std::move(acc0), std::move(acc1)};
}

std::pair<RnsPoly, RnsPoly>
Evaluator::keySwitch(const RnsPoly& d, const EvalKey& key) const
{
    return accumulateKey(decomposeDigits(d), key, d.nLimbs());
}

Ciphertext
Evaluator::applyGalois(const Ciphertext& a, u64 galois, HeOpType op) const
{
    HYDRA_ASSERT(galois_ != nullptr, "Galois keys not set");
    const EvalKey& key = galois_->at(galois);

    RnsPoly c1 = a.c1;
    c1.fromNtt();
    RnsPoly p1 = c1.automorphism(galois);

    auto [t0, t1] = keySwitch(p1, key);

    // c0 never leaves the NTT domain: the automorphism is the pure
    // index shuffle gathered straight into the keyswitch accumulator,
    // saving an inverse + forward NTT pass per limb.
    Ciphertext out;
    out.c0 = std::move(t0);
    out.c0.addAutomorphismNtt(a.c0, galois);
    out.c1 = std::move(t1);
    out.scale = a.scale;
    count(op, out.level());
    return out;
}

Ciphertext
Evaluator::rotate(const Ciphertext& a, int steps) const
{
    u64 g = ctx_.galoisForRotation(steps);
    if (g == 1)
        return a;
    return applyGalois(a, g, HeOpType::Rotate);
}

Ciphertext
Evaluator::rotateDecomposed(const Ciphertext& a, int steps) const
{
    size_t slots = ctx_.slots();
    size_t r = static_cast<size_t>(
        ((steps % static_cast<long long>(slots)) +
         static_cast<long long>(slots)) %
        static_cast<long long>(slots));
    Ciphertext out = a;
    for (size_t bit = 0; (size_t{1} << bit) <= r; ++bit)
        if (r & (size_t{1} << bit))
            out = rotate(out, static_cast<int>(size_t{1} << bit));
    return out;
}

Ciphertext
Evaluator::conjugate(const Ciphertext& a) const
{
    return applyGalois(a, ctx_.galoisForConjugation(),
                       HeOpType::Conjugate);
}

std::vector<Ciphertext>
Evaluator::rotateHoisted(const Ciphertext& a,
                         const std::vector<int>& steps) const
{
    HYDRA_ASSERT(galois_ != nullptr, "Galois keys not set");
    RnsPoly c1 = a.c1;
    c1.fromNtt();
    std::vector<RnsPoly> digits = decomposeDigits(c1);

    std::vector<Ciphertext> out;
    out.reserve(steps.size());
    for (int s : steps) {
        u64 g = ctx_.galoisForRotation(s);
        if (g == 1) {
            out.push_back(a);
            continue;
        }
        auto [t0, t1] = accumulateKey(digits, galois_->at(g), a.level(),
                                      g);
        // Accumulate the permuted c0 straight into the keyswitch
        // output instead of materializing the rotated polynomial.
        Ciphertext ct;
        ct.c0 = std::move(t0);
        ct.c0.addAutomorphismNtt(a.c0, g);
        ct.c1 = std::move(t1);
        ct.scale = a.scale;
        count(HeOpType::Rotate, ct.level());
        out.push_back(std::move(ct));
    }
    return out;
}

} // namespace hydra
