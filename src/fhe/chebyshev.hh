/**
 * @file
 * Chebyshev approximation of non-linear activations (paper Section
 * III-A: ReLU/GeLU/Softmax "are approximated using the Taylor
 * expansion or the Chebyshev algorithm").
 *
 * chebyshevFit() interpolates an arbitrary real function on [a, b];
 * evalChebyshev() evaluates the interpolant homomorphically by
 * converting to the power basis and reusing the tree-structured
 * polynomial evaluator (Alg. 1's single-node primitive).
 */

#ifndef HYDRA_FHE_CHEBYSHEV_HH
#define HYDRA_FHE_CHEBYSHEV_HH

#include <functional>
#include <vector>

#include "fhe/polyeval.hh"

namespace hydra {

/** Chebyshev interpolant: coefficients over T_k((2x - a - b)/(b - a)). */
struct ChebyshevPoly
{
    std::vector<double> coeffs; ///< c_0..c_d in the Chebyshev basis
    double a = -1.0;
    double b = 1.0;

    size_t degree() const { return coeffs.empty() ? 0 : coeffs.size() - 1; }

    /** Evaluate in plaintext (Clenshaw recurrence). */
    double operator()(double x) const;

    /** Convert to monomial coefficients in x (degree <= ~24 advised). */
    std::vector<cplx> toPowerBasis() const;
};

/** Degree-d Chebyshev interpolation of f on [a, b]. */
ChebyshevPoly chebyshevFit(const std::function<double(double)>& f,
                           size_t degree, double a, double b);

/** Homomorphic evaluation of the interpolant on ct's slots. */
Ciphertext evalChebyshev(const Evaluator& eval, const Ciphertext& ct,
                         const ChebyshevPoly& poly);

/** Smooth ReLU surrogate x * sigmoid(k x), handy for CNN tests. */
double softRelu(double x, double sharpness = 6.0);

} // namespace hydra

#endif // HYDRA_FHE_CHEBYSHEV_HH
