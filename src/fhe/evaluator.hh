/**
 * @file
 * Homomorphic evaluation: the CKKS operation set used throughout the
 * paper (HAdd, PMult, CMult, Rescale, Rotate, Conjugate, KeySwitch).
 */

#ifndef HYDRA_FHE_EVALUATOR_HH
#define HYDRA_FHE_EVALUATOR_HH

#include <utility>

#include "fhe/context.hh"
#include "fhe/encoder.hh"
#include "fhe/keys.hh"
#include "trace/heop.hh"

namespace hydra {

/**
 * Stateless-ish evaluator; holds references to the keys it needs and an
 * optional OpCounter that records every ciphertext-level operation for
 * the architecture model.
 */
class Evaluator
{
  public:
    Evaluator(const CkksContext& ctx, const CkksEncoder& encoder);

    void setRelinKey(const EvalKey* k) { relin_ = k; }
    void setGaloisKeys(const GaloisKeys* k) { galois_ = k; }
    void setCounter(OpCounter* c) { counter_ = c; }

    /// @name Additive operations
    /// @{
    Ciphertext add(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext sub(const Ciphertext& a, const Ciphertext& b) const;
    Ciphertext negate(const Ciphertext& a) const;
    Ciphertext addPlain(const Ciphertext& a, const Plaintext& p) const;

    /** a += b without materializing a result ciphertext. */
    void addInPlace(Ciphertext& a, const Ciphertext& b) const;

    /** a -= b in place. */
    void subInPlace(Ciphertext& a, const Ciphertext& b) const;
    /// @}

    /// @name Multiplicative operations
    /// @{
    /** Plaintext-ciphertext product; scales multiply, no rescale. */
    Ciphertext mulPlain(const Ciphertext& a, const Plaintext& p) const;

    /** a *= p in place (scales multiply, no rescale). */
    void mulPlainInPlace(Ciphertext& a, const Plaintext& p) const;

    /**
     * acc += a * p without materializing the product: the fused
     * multiply-accumulate behind BSGS inner loops.  Requires acc at the
     * same level as `a` with scale a.scale * p.scale.
     */
    void addMulPlain(Ciphertext& acc, const Ciphertext& a,
                     const Plaintext& p) const;

    /** Ciphertext product including relinearization; no rescale. */
    Ciphertext mulRelin(const Ciphertext& a, const Ciphertext& b) const;

    Ciphertext square(const Ciphertext& a) const;

    /** Multiply by a scalar constant encoded on the fly at `scale`. */
    Ciphertext mulConstant(const Ciphertext& a, cplx c,
                           double scale) const;

    /** Add a scalar constant (encoded at the ciphertext's scale). */
    Ciphertext addConstant(const Ciphertext& a, cplx c) const;

    /**
     * Multiply by a scalar and rescale, choosing the plaintext scale so
     * the result lands exactly on `target_scale`.  Costs one level.
     */
    Ciphertext mulConstantRescale(const Ciphertext& a, cplx c,
                                  double target_scale) const;
    /// @}

    /// @name Modulus management
    /// @{
    /** Drop the last limb, dividing the scale by its prime. */
    Ciphertext rescale(const Ciphertext& a) const;

    /** Rescale in place (no copy of the surviving limbs). */
    void rescaleInPlace(Ciphertext& a) const;

    /** Discard limbs down to `levels` active primes (scale unchanged). */
    Ciphertext dropToLevel(const Ciphertext& a, size_t levels) const;

    /** Rescale `a` down so it can be combined with level/scale of b. */
    void matchLevels(Ciphertext& a, Ciphertext& b) const;
    /// @}

    /// @name Automorphisms
    /// @{
    /** Rotate slots left by `steps` (requires the matching Galois key). */
    Ciphertext rotate(const Ciphertext& a, int steps) const;

    /**
     * Rotate by an arbitrary step using only power-of-two Galois keys
     * (see KeyGenerator::powerOfTwoSteps): the step is decomposed into
     * its binary expansion, costing popcount(steps) keyswitches.
     */
    Ciphertext rotateDecomposed(const Ciphertext& a, int steps) const;

    /**
     * Hoisted rotations: compute all requested rotations of one
     * ciphertext while decomposing and NTT-transforming its keyswitch
     * digits only once; each rotation then costs a pure permutation
     * plus the key multiply-accumulate.  This is the classic hoisting
     * optimization that accelerates BSGS baby steps.
     */
    std::vector<Ciphertext> rotateHoisted(const Ciphertext& a,
                                          const std::vector<int>&
                                              steps) const;

    /** Complex conjugation of every slot. */
    Ciphertext conjugate(const Ciphertext& a) const;
    /// @}

    /**
     * Bare keyswitch of polynomial d (coefficient domain, level limbs,
     * no special limb), returning (t0, t1) in NTT form such that
     * t0 + t1 s ~= d * s_src.
     */
    std::pair<RnsPoly, RnsPoly> keySwitch(const RnsPoly& d,
                                          const EvalKey& key) const;

    const CkksContext& context() const { return ctx_; }
    const CkksEncoder& encoder() const { return encoder_; }

  private:
    void
    count(HeOpType t, size_t limbs) const
    {
        if (counter_)
            counter_->record(t, static_cast<uint32_t>(limbs));
    }

    Ciphertext applyGalois(const Ciphertext& a, u64 galois,
                           HeOpType op) const;

    /**
     * Digit decomposition for keyswitching: per ciphertext prime, the
     * centered residue lifted to every active limb plus the special
     * prime, in NTT form.
     */
    std::vector<RnsPoly> decomposeDigits(const RnsPoly& d) const;

    /** Multiply-accumulate digits against a key into (t0, t1) + ModDown. */
    std::pair<RnsPoly, RnsPoly>
    accumulateKey(const std::vector<RnsPoly>& digits, const EvalKey& key,
                  size_t levels, u64 galois = 1) const;

    const CkksContext& ctx_;
    const CkksEncoder& encoder_;
    const EvalKey* relin_ = nullptr;
    const GaloisKeys* galois_ = nullptr;
    mutable OpCounter* counter_ = nullptr;
};

} // namespace hydra

#endif // HYDRA_FHE_EVALUATOR_HH
