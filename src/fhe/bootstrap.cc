#include "fhe/bootstrap.hh"

#include <cmath>
#include <numbers>
#include <set>

#include "common/logging.hh"
#include "fhe/chebyshev.hh"

namespace hydra {

Bootstrapper::Bootstrapper(const CkksContext& ctx,
                           const CkksEncoder& encoder,
                           const BootstrapConfig& config)
    : ctx_(ctx), encoder_(encoder), config_(config)
{
    size_t s = ctx.slots();
    double scale = ctx.params().scale();

    // Embedding roots zeta_j; U[j][i] = zeta_j^i for i < n defines the
    // decode map.  See encoder.hh.
    CMatrix a(s, std::vector<cplx>(s));
    CMatrix b(s, std::vector<cplx>(s));
    CMatrix v0(s, std::vector<cplx>(s));
    CMatrix v1(s, std::vector<cplx>(s));
    double inv_n = 1.0 / static_cast<double>(ctx.n());
    for (size_t j = 0; j < s; ++j) {
        cplx zeta = encoder.embeddingRoot(j);
        cplx zi(1.0, 0.0); // zeta^i
        for (size_t i = 0; i < s; ++i) {
            a[j][i] = zi;
            zi *= zeta;
        }
        // zeta^(i+s) continues from zi = zeta^s.
        for (size_t i = 0; i < s; ++i) {
            b[j][i] = zi;
            zi *= zeta;
        }
        // V0[i][j] = conj(zeta_j^i)/n, V1[i][j] = conj(zeta_j^{i+s})/n:
        // transpose-with-conjugate of A and B.
        for (size_t i = 0; i < s; ++i) {
            v0[i][j] = std::conj(a[j][i]) * inv_n;
            v1[i][j] = std::conj(b[j][i]) * inv_n;
        }
    }

    c2sLow_ = std::make_unique<LinearTransform>(encoder, v0, scale,
                                                config_.babySteps);
    c2sHigh_ = std::make_unique<LinearTransform>(encoder, v1, scale,
                                                 config_.babySteps);
    s2cLow_ = std::make_unique<LinearTransform>(encoder, a, scale,
                                                config_.babySteps);
    s2cHigh_ = std::make_unique<LinearTransform>(encoder, b, scale,
                                                 config_.babySteps);
}

std::vector<int>
Bootstrapper::requiredRotations() const
{
    std::set<int> steps;
    for (const auto* lt : {c2sLow_.get(), c2sHigh_.get(), s2cLow_.get(),
                           s2cHigh_.get()})
        for (int r : lt->requiredRotations())
            steps.insert(r);
    return {steps.begin(), steps.end()};
}

size_t
Bootstrapper::depth() const
{
    // C2S (1) + scaling to the series range (1) + exp ladder
    // + double angle (r) + sine extraction constant (1) + S2C (1).
    size_t deg = config_.useChebyshev ? config_.chebyshevDegree
                                      : config_.taylorDegree;
    return 1 + 1 + polyEvalDepth(deg) + config_.doubleAngleIters + 1 + 1;
}

Ciphertext
Bootstrapper::modRaise(const Ciphertext& ct) const
{
    HYDRA_ASSERT(ct.level() == 1, "modRaise expects a level-1 ciphertext");
    size_t levels = ctx_.levels();
    size_t n = ctx_.n();
    const Modulus& q0 = ctx_.basis()->mod(0);

    auto raise = [&](const RnsPoly& p) {
        RnsPoly coeff = p;
        coeff.fromNtt();
        std::vector<i64> centered(n);
        for (size_t i = 0; i < n; ++i)
            centered[i] = q0.toCentered(coeff.limb(0)[i]);
        RnsPoly out = RnsPoly::fromSigned(ctx_.basis(), levels, false,
                                          centered);
        out.toNtt();
        return out;
    };

    Ciphertext out;
    out.c0 = raise(ct.c0);
    out.c1 = raise(ct.c1);
    out.scale = ct.scale;
    return out;
}

std::pair<Ciphertext, Ciphertext>
Bootstrapper::coeffToSlot(const Evaluator& eval, const Ciphertext& ct) const
{
    // w = V z; c_half = w + conj(w).
    Ciphertext re = c2sLow_->apply(eval, ct);
    eval.addInPlace(re, eval.conjugate(re));
    Ciphertext im = c2sHigh_->apply(eval, ct);
    eval.addInPlace(im, eval.conjugate(im));
    return {std::move(re), std::move(im)};
}

Ciphertext
Bootstrapper::evalMod(const Evaluator& eval, const Ciphertext& ct,
                      double message_scale) const
{
    double q0 = static_cast<double>(ctx_.basis()->mod(0).value());
    double two_pi = 2.0 * std::numbers::pi;
    double pow2r = std::ldexp(1.0, static_cast<int>(
                                  config_.doubleAngleIters));
    double scale = ctx_.params().scale();

    // y = kappa * x with kappa = 2 pi * Delta / (q0 * 2^r): |y| small
    // enough for the short Taylor series.
    double kappa = two_pi * message_scale / (q0 * pow2r);
    Ciphertext y = eval.mulConstantRescale(ct, cplx(kappa, 0.0), scale);

    std::vector<cplx> coeffs;
    if (config_.useChebyshev) {
        // Chebyshev interpolants of cos and sin on the actual argument
        // range |y| <= 2 pi (I_max + 1) / 2^r, combined into complex
        // power-basis coefficients of exp(i y).
        double bound = two_pi * (config_.maxOverflow + 1.0) / pow2r;
        size_t deg = config_.chebyshevDegree;
        ChebyshevPoly c_cos = chebyshevFit(
            [](double t) { return std::cos(t); }, deg, -bound, bound);
        ChebyshevPoly c_sin = chebyshevFit(
            [](double t) { return std::sin(t); }, deg, -bound, bound);
        auto pb_cos = c_cos.toPowerBasis();
        auto pb_sin = c_sin.toPowerBasis();
        coeffs.resize(deg + 1);
        for (size_t t = 0; t <= deg; ++t)
            coeffs[t] = cplx(pb_cos[t].real(), pb_sin[t].real());
    } else {
        // Taylor series of exp(i theta): sum (i^t / t!) y^t.
        coeffs.resize(config_.taylorDegree + 1);
        cplx it(1.0, 0.0);
        double fact = 1.0;
        for (size_t t = 0; t <= config_.taylorDegree; ++t) {
            coeffs[t] = it / fact;
            it *= cplx(0.0, 1.0);
            fact *= static_cast<double>(t + 1);
        }
    }
    Ciphertext w = evalPolynomial(eval, y, coeffs, scale);

    // Double-angle: repeated squaring doubles the argument.
    for (size_t r = 0; r < config_.doubleAngleIters; ++r) {
        w = eval.mulRelin(w, w);
        eval.rescaleInPlace(w);
    }

    // sin = (w - conj(w)) / 2i; fold in the amplitude q0 / (2 pi Delta).
    Ciphertext diff = eval.sub(w, eval.conjugate(w));
    double amp = q0 / (two_pi * message_scale);
    cplx c = cplx(0.0, -0.5) * amp; // 1/(2i) = -i/2
    return eval.mulConstantRescale(diff, c, scale);
}

Ciphertext
Bootstrapper::slotToCoeff(const Evaluator& eval, const Ciphertext& re,
                          const Ciphertext& im) const
{
    Ciphertext zr = s2cLow_->apply(eval, re);
    eval.addInPlace(zr, s2cHigh_->apply(eval, im));
    return zr;
}

Ciphertext
Bootstrapper::bootstrap(const Evaluator& eval, const Ciphertext& ct) const
{
    double message_scale = ct.scale;
    Ciphertext raised = modRaise(ct);
    auto [re, im] = coeffToSlot(eval, raised);
    Ciphertext mre = evalMod(eval, re, message_scale);
    Ciphertext mim = evalMod(eval, im, message_scale);
    return slotToCoeff(eval, mre, mim);
}

} // namespace hydra
