/**
 * @file
 * Functional homomorphic matrix multiplication -- the transformer
 * kernels of paper Section III-A, following [13]'s packing:
 *
 *  - PCMM (plaintext-ciphertext): the encrypted activation matrix,
 *    packed row-major, is multiplied by a plaintext weight matrix.
 *    Expressed as a block-diagonal slot linear transform (one W^T
 *    block per matrix row) and evaluated with the hoisted BSGS
 *    machinery.
 *  - CCMM (ciphertext-ciphertext): out = A x B by column/row
 *    replication -- mask one column of A, broadcast it across the row,
 *    mask the matching row of B, broadcast it down the columns, CMult,
 *    accumulate (1 CMult + several rotations per step, matching the
 *    Table I CCMM mix shape).
 */

#ifndef HYDRA_FHE_MATMUL_HH
#define HYDRA_FHE_MATMUL_HH

#include <memory>

#include "fhe/lintrans.hh"

namespace hydra {

/** Dense real matrix, row-major. */
using RMatrix = std::vector<std::vector<double>>;

/** Pack a d x d matrix row-major into a slot vector. */
std::vector<cplx> packMatrix(const RMatrix& m, size_t slots);

/** Unpack the first d x d block of a slot vector. */
RMatrix unpackMatrix(const std::vector<cplx>& slots, size_t d);

/** Plain reference product. */
RMatrix matMulRef(const RMatrix& a, const RMatrix& b);

/**
 * Precomputed PCMM: multiplies a row-packed encrypted d x d matrix by
 * the fixed plaintext weight matrix W on the right.  Costs one level.
 */
class PcmmPlan
{
  public:
    /** @param scale plaintext scale of the encoded weight diagonals */
    PcmmPlan(const CkksEncoder& encoder, const RMatrix& w, size_t d,
             double scale);

    std::vector<int> requiredRotations() const;

    /** decode(apply(ct)) unpacks to (packed A) x W. */
    Ciphertext apply(const Evaluator& eval, const Ciphertext& ct) const;

    size_t dim() const { return d_; }

  private:
    size_t d_;
    std::unique_ptr<LinearTransform> lt_;
};

/** Rotation steps ccmm() needs for dimension d. */
std::vector<int> ccmmRotations(size_t d);

/**
 * Ciphertext-ciphertext product of two row-packed d x d matrices.
 * Consumes two levels (mask + CMult).  d*d must not exceed the slot
 * count and the ciphertexts must be zero outside the matrix block.
 */
Ciphertext ccmm(const Evaluator& eval, const Ciphertext& a,
                const Ciphertext& b, size_t d);

} // namespace hydra

#endif // HYDRA_FHE_MATMUL_HH
