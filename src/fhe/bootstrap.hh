/**
 * @file
 * CKKS bootstrapping (paper Section III-B, Fig. 3(b)):
 *
 *   ModRaise -> CoeffToSlot (homomorphic DFT) -> EvalMod
 *   (EvaExp Taylor series + Double-Angle Formula + sine extraction)
 *   -> SlotToCoeff.
 *
 * The linear transforms are the BSGS matrix products whose multi-node
 * mapping the paper optimizes; here they run single-node and exact, and
 * the scheduler layer distributes the very same structure.
 */

#ifndef HYDRA_FHE_BOOTSTRAP_HH
#define HYDRA_FHE_BOOTSTRAP_HH

#include <memory>
#include <vector>

#include "fhe/lintrans.hh"
#include "fhe/polyeval.hh"

namespace hydra {

/** Tunable knobs of the EvalMod stage. */
struct BootstrapConfig
{
    /** Taylor degree of the complex exponential (paper uses 59 at
     *  full scale; 7 suffices after enough double-angle halving). */
    size_t taylorDegree = 7;
    /** Double-angle iterations r: the argument is divided by 2^r. */
    size_t doubleAngleIters = 9;
    /** Baby-step count forwarded to the linear transforms (0 = auto). */
    size_t babySteps = 0;
    /**
     * Approximate exp with a Chebyshev interpolant instead of the
     * Taylor series (paper Section III-A names both).  Chebyshev stays
     * accurate on a much wider argument range, so doubleAngleIters can
     * shrink and the pipeline keeps more output levels.
     */
    bool useChebyshev = false;
    /** Interpolant degree when useChebyshev is set. */
    size_t chebyshevDegree = 15;
    /** Bound on the ModRaise overflow count I (sets the fit range). */
    double maxOverflow = 18.0;
};

/** Precomputed bootstrapping pipeline for one context. */
class Bootstrapper
{
  public:
    Bootstrapper(const CkksContext& ctx, const CkksEncoder& encoder,
                 const BootstrapConfig& config = {});

    /** Rotation steps the Galois keys must cover (plus conjugation). */
    std::vector<int> requiredRotations() const;

    /** Levels consumed from full; output level = levels() - depth(). */
    size_t depth() const;

    /**
     * Refresh a low-level ciphertext to a high level carrying (almost)
     * the same message.  The evaluator must have relin and Galois keys
     * (covering requiredRotations()) installed.
     */
    Ciphertext bootstrap(const Evaluator& eval,
                         const Ciphertext& ct) const;

    /// @name Individual pipeline stages (exposed for tests & scheduling)
    /// @{
    /** Re-interpret a level-1 ciphertext over the full modulus chain. */
    Ciphertext modRaise(const Ciphertext& ct) const;

    /**
     * Homomorphic DFT: returns ciphertexts whose slots are the first and
     * second halves of the input's polynomial coefficients (each divided
     * by the scale).
     */
    std::pair<Ciphertext, Ciphertext>
    coeffToSlot(const Evaluator& eval, const Ciphertext& ct) const;

    /**
     * Approximate modular reduction: maps slot value
     * x = m/scale + (q0/scale) * I  to  ~m/scale, via
     * (q0 / 2 pi scale) * sin(2 pi scale x / q0).
     */
    Ciphertext evalMod(const Evaluator& eval, const Ciphertext& ct,
                       double message_scale) const;

    /** Inverse DFT: packs two coefficient-half ciphertexts back. */
    Ciphertext slotToCoeff(const Evaluator& eval, const Ciphertext& re,
                           const Ciphertext& im) const;
    /// @}

  private:
    const CkksContext& ctx_;
    const CkksEncoder& encoder_;
    BootstrapConfig config_;
    /** C2S: real/imag coefficient extraction matrices (x 1/n). */
    std::unique_ptr<LinearTransform> c2sLow_;
    std::unique_ptr<LinearTransform> c2sHigh_;
    /** S2C: embedding matrices A and B = diag(i) * A. */
    std::unique_ptr<LinearTransform> s2cLow_;
    std::unique_ptr<LinearTransform> s2cHigh_;
};

} // namespace hydra

#endif // HYDRA_FHE_BOOTSTRAP_HH
