#include "fhe/encryptor.hh"

#include "common/logging.hh"

namespace hydra {

Encryptor::Encryptor(const CkksContext& ctx, PublicKey pk, uint64_t seed)
    : ctx_(ctx), pk_(std::move(pk)), rng_(seed)
{
}

Ciphertext
Encryptor::encrypt(const Plaintext& pt)
{
    size_t levels = pt.poly.nLimbs();
    HYDRA_ASSERT(!pt.poly.hasSpecial(), "plaintext must be over Q");

    // u ternary; e0, e1 small.
    std::vector<i64> uv(ctx_.n()), e0v(ctx_.n()), e1v(ctx_.n());
    for (size_t i = 0; i < ctx_.n(); ++i) {
        uv[i] = rng_.ternary();
        e0v[i] = rng_.smallError(ctx_.params().errorStd);
        e1v[i] = rng_.smallError(ctx_.params().errorStd);
    }
    RnsPoly u = RnsPoly::fromSigned(ctx_.basis(), levels, false, uv);
    u.toNtt();
    RnsPoly e0 = RnsPoly::fromSigned(ctx_.basis(), levels, false, e0v);
    e0.toNtt();
    RnsPoly e1 = RnsPoly::fromSigned(ctx_.basis(), levels, false, e1v);
    e1.toNtt();

    RnsPoly m = pt.poly;
    m.toNtt();

    // Restrict the (full-level) public key to the plaintext's limbs.
    Ciphertext ct;
    ct.c0 = RnsPoly(ctx_.basis(), levels, false, true);
    ct.c1 = RnsPoly(ctx_.basis(), levels, false, true);
    ct.scale = pt.scale;
    for (size_t k = 0; k < levels; ++k) {
        const Modulus& mod = ct.c0.mod(k);
        const auto bk = pk_.b.limb(k);
        const auto ak = pk_.a.limb(k);
        const auto uk = u.limb(k);
        const auto c0k = ct.c0.limb(k);
        const auto c1k = ct.c1.limb(k);
        const auto e0k = e0.limb(k);
        const auto e1k = e1.limb(k);
        const auto mk = m.limb(k);
        for (size_t i = 0; i < c0k.size(); ++i) {
            c0k[i] = mod.addMod(mod.addMod(mod.mulMod(bk[i], uk[i]),
                                           e0k[i]),
                                mk[i]);
            c1k[i] = mod.addMod(mod.mulMod(ak[i], uk[i]), e1k[i]);
        }
    }
    return ct;
}

Decryptor::Decryptor(const CkksContext& ctx, SecretKey sk)
    : ctx_(ctx), sk_(std::move(sk))
{
}

Plaintext
Decryptor::decrypt(const Ciphertext& ct)
{
    HYDRA_ASSERT(ct.c0.nttForm() && ct.c1.nttForm(),
                 "ciphertexts are kept in NTT form");
    size_t levels = ct.level();
    RnsPoly m(ctx_.basis(), levels, false, true);
    for (size_t k = 0; k < levels; ++k) {
        const Modulus& mod = m.mod(k);
        const auto c0k = ct.c0.limb(k);
        const auto c1k = ct.c1.limb(k);
        const auto sk_k = sk_.s.limb(k);
        const auto mk = m.limb(k);
        for (size_t i = 0; i < mk.size(); ++i)
            mk[i] = mod.addMod(c0k[i], mod.mulMod(c1k[i], sk_k[i]));
    }
    m.fromNtt();
    return Plaintext{std::move(m), ct.scale};
}

} // namespace hydra
