#include "fhe/encoder.hh"

#include <cmath>
#include <map>
#include <mutex>
#include <numbers>

#include "common/logging.hh"
#include "math/ntt.hh"

namespace hydra {

/** Per-level memo of NTT-form restricted plaintext polynomials. */
struct Plaintext::NttCache
{
    std::mutex m;
    std::map<size_t, RnsPoly> byLevel;
};

const RnsPoly&
Plaintext::nttRestricted(size_t levels) const
{
    HYDRA_ASSERT(levels >= 1 && levels <= poly.nLimbs() &&
                     !poly.hasSpecial(),
                 "cannot restrict plaintext to this level");
    if (!cache_)
        cache_ = std::make_shared<NttCache>();
    std::lock_guard<std::mutex> lock(cache_->m);
    auto [it, inserted] = cache_->byLevel.try_emplace(levels);
    if (inserted) {
        RnsPoly pp(poly.basis(), levels, false, poly.nttForm());
        for (size_t k = 0; k < levels; ++k)
            pp.copyLimbFrom(k, poly, k);
        pp.toNtt();
        it->second = std::move(pp);
    }
    return it->second;
}

CkksEncoder::CkksEncoder(const CkksContext& ctx)
    : ctx_(ctx),
      slots_(ctx.slots()),
      m_(2 * ctx.n())
{
    rotGroup_.resize(slots_);
    size_t five = 1;
    for (size_t i = 0; i < slots_; ++i) {
        rotGroup_[i] = five;
        five = five * 5 % m_;
    }
    ksiPows_.resize(m_ + 1);
    for (size_t k = 0; k <= m_; ++k) {
        double angle = 2.0 * std::numbers::pi * static_cast<double>(k) /
                       static_cast<double>(m_);
        ksiPows_[k] = cplx(std::cos(angle), std::sin(angle));
    }
}

cplx
CkksEncoder::embeddingRoot(size_t j) const
{
    HYDRA_ASSERT(j < slots_, "slot index out of range");
    return ksiPows_[rotGroup_[j]];
}

void
CkksEncoder::fftSpecial(std::vector<cplx>& vals) const
{
    size_t n = vals.size();
    HYDRA_ASSERT(n == slots_, "fftSpecial length mismatch");
    int log_n = 0;
    while ((1u << log_n) < n)
        ++log_n;
    for (size_t i = 0; i < n; ++i) {
        size_t j = static_cast<size_t>(bitReverse(i, log_n));
        if (i < j)
            std::swap(vals[i], vals[j]);
    }
    for (size_t len = 2; len <= n; len <<= 1) {
        for (size_t i = 0; i < n; i += len) {
            size_t lenh = len >> 1;
            size_t lenq = len << 2;
            for (size_t j = 0; j < lenh; ++j) {
                size_t idx = (rotGroup_[j] % lenq) * (m_ / lenq);
                cplx u = vals[i + j];
                cplx v = vals[i + j + lenh] * ksiPows_[idx];
                vals[i + j] = u + v;
                vals[i + j + lenh] = u - v;
            }
        }
    }
}

void
CkksEncoder::fftSpecialInv(std::vector<cplx>& vals) const
{
    size_t n = vals.size();
    HYDRA_ASSERT(n == slots_, "fftSpecialInv length mismatch");
    for (size_t len = n; len >= 2; len >>= 1) {
        for (size_t i = 0; i < n; i += len) {
            size_t lenh = len >> 1;
            size_t lenq = len << 2;
            for (size_t j = 0; j < lenh; ++j) {
                size_t idx =
                    (lenq - rotGroup_[j] % lenq) % lenq * (m_ / lenq);
                cplx u = vals[i + j] + vals[i + j + lenh];
                cplx v = (vals[i + j] - vals[i + j + lenh]) * ksiPows_[idx];
                vals[i + j] = u;
                vals[i + j + lenh] = v;
            }
        }
    }
    int log_n = 0;
    while ((1u << log_n) < n)
        ++log_n;
    for (size_t i = 0; i < n; ++i) {
        size_t j = static_cast<size_t>(bitReverse(i, log_n));
        if (i < j)
            std::swap(vals[i], vals[j]);
    }
    double inv = 1.0 / static_cast<double>(n);
    for (auto& v : vals)
        v *= inv;
}

Plaintext
CkksEncoder::encode(const std::vector<cplx>& values, double scale,
                    size_t n_limbs) const
{
    HYDRA_ASSERT(values.size() <= slots_, "too many values to encode");
    HYDRA_ASSERT(scale > 0, "scale must be positive");
    std::vector<cplx> z(slots_, cplx(0, 0));
    std::copy(values.begin(), values.end(), z.begin());
    fftSpecialInv(z);

    std::vector<i64> coeffs(ctx_.n());
    for (size_t i = 0; i < slots_; ++i) {
        double re = z[i].real() * scale;
        double im = z[i].imag() * scale;
        if (std::abs(re) >= 9.0e18 || std::abs(im) >= 9.0e18)
            fatal("encode overflow: value * scale exceeds 63 bits");
        coeffs[i] = static_cast<i64>(std::llround(re));
        coeffs[i + slots_] = static_cast<i64>(std::llround(im));
    }
    return Plaintext{RnsPoly::fromSigned(ctx_.basis(), n_limbs, false,
                                         coeffs),
                     scale};
}

Plaintext
CkksEncoder::encode(const std::vector<double>& values, double scale,
                    size_t n_limbs) const
{
    std::vector<cplx> z(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        z[i] = cplx(values[i], 0.0);
    return encode(z, scale, n_limbs);
}

Plaintext
CkksEncoder::encodeConstant(cplx c, double scale, size_t n_limbs) const
{
    std::vector<i64> coeffs(ctx_.n(), 0);
    double re = c.real() * scale;
    double im = c.imag() * scale;
    if (std::abs(re) >= 9.0e18 || std::abs(im) >= 9.0e18)
        fatal("encodeConstant overflow");
    coeffs[0] = static_cast<i64>(std::llround(re));
    coeffs[slots_] = static_cast<i64>(std::llround(im));
    return Plaintext{RnsPoly::fromSigned(ctx_.basis(), n_limbs, false,
                                         coeffs),
                     scale};
}

std::vector<cplx>
CkksEncoder::decode(const Plaintext& pt) const
{
    HYDRA_ASSERT(!pt.poly.nttForm(), "decode expects coefficient domain");
    size_t count = pt.poly.nLimbs();
    const RnsBasis& basis = *ctx_.basis();

    std::vector<cplx> z(slots_);
    std::vector<u64> residues(count);
    for (size_t i = 0; i < slots_; ++i) {
        for (size_t k = 0; k < count; ++k)
            residues[k] = pt.poly.limb(k)[i];
        long double re = basis.composeCentered(residues, count);
        for (size_t k = 0; k < count; ++k)
            residues[k] = pt.poly.limb(k)[i + slots_];
        long double im = basis.composeCentered(residues, count);
        z[i] = cplx(static_cast<double>(re / pt.scale),
                    static_cast<double>(im / pt.scale));
    }
    fftSpecial(z);
    return z;
}

} // namespace hydra
