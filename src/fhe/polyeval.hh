/**
 * @file
 * Homomorphic polynomial evaluation (paper Alg. 1 computes the same
 * tree-structured power basis across accelerator nodes; this is the
 * single-node functional primitive it distributes).
 */

#ifndef HYDRA_FHE_POLYEVAL_HH
#define HYDRA_FHE_POLYEVAL_HH

#include <vector>

#include "fhe/evaluator.hh"

namespace hydra {

/**
 * Evaluate p(x) = sum_k coeffs[k] * x^k on a ciphertext.
 *
 * Powers are built by binary splitting (depth ceil(log2(deg+1))), all
 * terms are scale-aligned to `target_scale` before summation, and the
 * result carries exactly that scale.
 *
 * @param coeffs complex coefficients, degree = coeffs.size() - 1 >= 1
 * @param target_scale scale of the result (default: context scale)
 */
Ciphertext evalPolynomial(const Evaluator& eval, const Ciphertext& x,
                          const std::vector<cplx>& coeffs,
                          double target_scale = 0.0);

/** Levels evalPolynomial consumes for a given degree. */
size_t polyEvalDepth(size_t degree);

} // namespace hydra

#endif // HYDRA_FHE_POLYEVAL_HH
