#include "fhe/lintrans.hh"

#include <cmath>

#include "common/logging.hh"

namespace hydra {

namespace {

/** Largest magnitude entry of a vector. */
double
maxNorm(const std::vector<cplx>& v)
{
    double m = 0.0;
    for (const auto& x : v)
        m = std::max(m, std::abs(x));
    return m;
}

} // namespace

LinearTransform::LinearTransform(const CkksEncoder& encoder,
                                 const CMatrix& matrix, double scale,
                                 size_t bs)
    : slots_(encoder.slots()), scale_(scale)
{
    HYDRA_ASSERT(matrix.size() == slots_, "matrix must be slots x slots");
    for (const auto& row : matrix)
        HYDRA_ASSERT(row.size() == slots_, "matrix must be square");

    if (bs == 0) {
        bs = 1;
        while (bs * bs < slots_)
            bs <<= 1;
    }
    HYDRA_ASSERT(slots_ % bs == 0, "baby-step count must divide slots");
    bs_ = bs;
    gs_ = slots_ / bs;

    // Extract generalized diagonals, pre-rotate each by -(g*bs), encode.
    size_t encoded = 0;
    for (size_t g = 0; g < gs_; ++g) {
        for (size_t b = 0; b < bs_; ++b) {
            size_t d = g * bs_ + b;
            std::vector<cplx> diag(slots_);
            for (size_t j = 0; j < slots_; ++j)
                diag[j] = matrix[j][(j + d) % slots_];
            if (maxNorm(diag) < 1e-14)
                continue; // structurally zero diagonal
            // Pre-rotate right by g*bs so the giant-step rotation of the
            // partial sum aligns the plaintext with the ciphertext.
            std::vector<cplx> rotated(slots_);
            size_t shift = g * bs_;
            for (size_t j = 0; j < slots_; ++j)
                rotated[j] = diag[(j + slots_ - shift % slots_) % slots_];
            // Encode at full level so any ciphertext level works.
            diag_.emplace(d, encoder.encode(rotated, scale_,
                                            encoder.maxLevels()));
            ++encoded;
        }
    }
    (void)encoded;
}

std::vector<int>
LinearTransform::requiredRotations() const
{
    std::vector<int> steps;
    for (size_t b = 1; b < bs_; ++b)
        steps.push_back(static_cast<int>(b));
    for (size_t g = 1; g < gs_; ++g)
        steps.push_back(static_cast<int>(g * bs_));
    return steps;
}

Ciphertext
LinearTransform::apply(const Evaluator& eval, const Ciphertext& ct) const
{
    HYDRA_ASSERT(!diag_.empty(), "empty linear transform");
    // Baby steps: rot_b(ct) for every b that some diagonal needs.
    std::vector<bool> need(bs_, false);
    for (const auto& [d, pt] : diag_)
        need[d % bs_] = true;

    // Hoisted baby steps: one digit decomposition shared by all.
    std::vector<int> steps;
    for (size_t b = 1; b < bs_; ++b)
        if (need[b])
            steps.push_back(static_cast<int>(b));
    std::vector<Ciphertext> hoisted = eval.rotateHoisted(ct, steps);
    std::vector<Ciphertext> baby(bs_);
    if (need[0])
        baby[0] = ct;
    for (size_t i = 0; i < steps.size(); ++i)
        baby[static_cast<size_t>(steps[i])] = std::move(hoisted[i]);

    bool have_total = false;
    Ciphertext total;
    for (size_t g = 0; g < gs_; ++g) {
        // Giant-step accumulator: the first diagonal materializes the
        // product, every further one is a fused multiply-accumulate
        // into it -- no per-term ciphertext, no copy-then-add.
        bool have_acc = false;
        Ciphertext acc;
        for (size_t b = 0; b < bs_; ++b) {
            auto it = diag_.find(g * bs_ + b);
            if (it == diag_.end())
                continue;
            if (have_acc) {
                eval.addMulPlain(acc, baby[b], it->second);
            } else {
                acc = eval.mulPlain(baby[b], it->second);
                have_acc = true;
            }
        }
        if (!have_acc)
            continue;
        Ciphertext shifted =
            g == 0 ? std::move(acc)
                   : eval.rotate(acc, static_cast<int>(g * bs_));
        if (have_total) {
            eval.addInPlace(total, shifted);
        } else {
            total = std::move(shifted);
            have_total = true;
        }
    }
    HYDRA_ASSERT(have_total, "linear transform produced nothing");
    eval.rescaleInPlace(total);
    return total;
}

std::vector<cplx>
matVec(const CMatrix& m, const std::vector<cplx>& v)
{
    std::vector<cplx> out(m.size(), cplx(0, 0));
    for (size_t i = 0; i < m.size(); ++i)
        for (size_t j = 0; j < v.size(); ++j)
            out[i] += m[i][j] * v[j];
    return out;
}

} // namespace hydra
