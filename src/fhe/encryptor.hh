/**
 * @file
 * Encryption and decryption.
 */

#ifndef HYDRA_FHE_ENCRYPTOR_HH
#define HYDRA_FHE_ENCRYPTOR_HH

#include "common/rng.hh"
#include "fhe/context.hh"
#include "fhe/encoder.hh"
#include "fhe/keys.hh"

namespace hydra {

/** Public- and secret-key encryption of plaintexts. */
class Encryptor
{
  public:
    Encryptor(const CkksContext& ctx, PublicKey pk, uint64_t seed = 1);

    /** RLWE public-key encryption of an encoded plaintext. */
    Ciphertext encrypt(const Plaintext& pt);

  private:
    const CkksContext& ctx_;
    PublicKey pk_;
    Rng rng_;
};

/** Decryption with the secret key. */
class Decryptor
{
  public:
    Decryptor(const CkksContext& ctx, SecretKey sk);

    /** Decrypt to an encoded plaintext (coefficient domain). */
    Plaintext decrypt(const Ciphertext& ct);

  private:
    const CkksContext& ctx_;
    SecretKey sk_;
};

} // namespace hydra

#endif // HYDRA_FHE_ENCRYPTOR_HH
