#include "fhe/serialize.hh"

#include <cstring>

#include "common/logging.hh"

namespace hydra {

namespace {

constexpr uint64_t kMagicPoly = 0x48594452504f4c59ull; // "HYDRPOLY"
constexpr uint64_t kMagicCt = 0x4859445243495054ull;   // "HYDRCIPT"
constexpr uint64_t kMagicPt = 0x48594452504c4149ull;   // "HYDRPLAI"
constexpr uint64_t kMagicKey = 0x48594452454b4559ull;  // "HYDREKEY"
constexpr uint64_t kVersion = 1;

class ByteWriter
{
  public:
    void
    putU64(uint64_t v)
    {
        size_t off = out_.size();
        out_.resize(off + 8);
        std::memcpy(out_.data() + off, &v, 8);
    }

    void
    putF64(double v)
    {
        uint64_t bits;
        std::memcpy(&bits, &v, 8);
        putU64(bits);
    }

    void
    putWords(ConstLimbView w)
    {
        size_t off = out_.size();
        out_.resize(off + w.size() * 8);
        std::memcpy(out_.data() + off, w.data(), w.size() * 8);
    }

    Bytes take() { return std::move(out_); }

  private:
    Bytes out_;
};

class ByteReader
{
  public:
    explicit ByteReader(const Bytes& data) : data_(data) {}

    uint64_t
    getU64()
    {
        if (pos_ + 8 > data_.size())
            fatal("truncated Hydra serialization blob");
        uint64_t v;
        std::memcpy(&v, data_.data() + pos_, 8);
        pos_ += 8;
        return v;
    }

    double
    getF64()
    {
        uint64_t bits = getU64();
        double v;
        std::memcpy(&v, &bits, 8);
        return v;
    }

    void
    getWords(LimbView w)
    {
        if (pos_ + w.size() * 8 > data_.size())
            fatal("truncated Hydra serialization blob");
        std::memcpy(w.data(), data_.data() + pos_, w.size() * 8);
        pos_ += w.size() * 8;
    }

    bool done() const { return pos_ == data_.size(); }

  private:
    const Bytes& data_;
    size_t pos_ = 0;
};

void
writeHeader(ByteWriter& w, uint64_t magic, const RnsBasis& basis)
{
    w.putU64(magic);
    w.putU64(kVersion);
    w.putU64(basisFingerprint(basis));
}

void
readHeader(ByteReader& r, uint64_t magic, const RnsBasis& basis)
{
    if (r.getU64() != magic)
        fatal("serialization blob has the wrong type tag");
    if (r.getU64() != kVersion)
        fatal("unsupported serialization version");
    if (r.getU64() != basisFingerprint(basis))
        fatal("blob was produced under different CKKS parameters");
}

void
writePolyBody(ByteWriter& w, const RnsPoly& poly)
{
    w.putU64(poly.nLimbs());
    w.putU64(poly.hasSpecial() ? 1 : 0);
    w.putU64(poly.nttForm() ? 1 : 0);
    for (size_t k = 0; k < poly.limbCount(); ++k)
        w.putWords(poly.limb(k));
}

RnsPoly
readPolyBody(ByteReader& r, const std::shared_ptr<const RnsBasis>& basis)
{
    size_t n_limbs = r.getU64();
    bool special = r.getU64() != 0;
    bool ntt = r.getU64() != 0;
    if (n_limbs < 1 || n_limbs > basis->qCount())
        fatal("blob limb count out of range for this context");
    RnsPoly poly(basis, n_limbs, special, ntt);
    for (size_t k = 0; k < poly.limbCount(); ++k) {
        r.getWords(poly.limb(k));
        // Residues must be reduced; reject corrupted blobs.
        const Modulus& m = poly.mod(k);
        for (u64 x : poly.limb(k))
            if (x >= m.value())
                fatal("blob contains out-of-range residues");
    }
    return poly;
}

} // namespace

uint64_t
basisFingerprint(const RnsBasis& basis)
{
    uint64_t h = 1469598103934665603ull; // FNV offset basis
    auto mix = [&](uint64_t v) {
        h ^= v;
        h *= 1099511628211ull;
    };
    mix(basis.n());
    for (size_t k = 0; k < basis.totalCount(); ++k)
        mix(basis.mod(k).value());
    return h;
}

Bytes
serialize(const RnsPoly& poly)
{
    ByteWriter w;
    writeHeader(w, kMagicPoly, *poly.basis());
    writePolyBody(w, poly);
    return w.take();
}

RnsPoly
deserializePoly(const Bytes& data,
                const std::shared_ptr<const RnsBasis>& basis)
{
    ByteReader r(data);
    readHeader(r, kMagicPoly, *basis);
    RnsPoly poly = readPolyBody(r, basis);
    if (!r.done())
        fatal("trailing bytes after polynomial blob");
    return poly;
}

Bytes
serialize(const Ciphertext& ct)
{
    ByteWriter w;
    writeHeader(w, kMagicCt, *ct.c0.basis());
    w.putF64(ct.scale);
    writePolyBody(w, ct.c0);
    writePolyBody(w, ct.c1);
    return w.take();
}

Ciphertext
deserializeCiphertext(const Bytes& data,
                      const std::shared_ptr<const RnsBasis>& basis)
{
    ByteReader r(data);
    readHeader(r, kMagicCt, *basis);
    Ciphertext ct;
    ct.scale = r.getF64();
    ct.c0 = readPolyBody(r, basis);
    ct.c1 = readPolyBody(r, basis);
    if (ct.c0.nLimbs() != ct.c1.nLimbs() || !r.done())
        fatal("malformed ciphertext blob");
    return ct;
}

Bytes
serialize(const Plaintext& pt)
{
    ByteWriter w;
    writeHeader(w, kMagicPt, *pt.poly.basis());
    w.putF64(pt.scale);
    writePolyBody(w, pt.poly);
    return w.take();
}

Plaintext
deserializePlaintext(const Bytes& data,
                     const std::shared_ptr<const RnsBasis>& basis)
{
    ByteReader r(data);
    readHeader(r, kMagicPt, *basis);
    Plaintext pt;
    pt.scale = r.getF64();
    pt.poly = readPolyBody(r, basis);
    if (!r.done())
        fatal("trailing bytes after plaintext blob");
    return pt;
}

Bytes
serialize(const EvalKey& key)
{
    HYDRA_ASSERT(key.valid(), "cannot serialize an empty key");
    ByteWriter w;
    writeHeader(w, kMagicKey, *key.b[0].basis());
    w.putU64(key.b.size());
    for (size_t i = 0; i < key.b.size(); ++i) {
        writePolyBody(w, key.b[i]);
        writePolyBody(w, key.a[i]);
    }
    return w.take();
}

EvalKey
deserializeEvalKey(const Bytes& data,
                   const std::shared_ptr<const RnsBasis>& basis)
{
    ByteReader r(data);
    readHeader(r, kMagicKey, *basis);
    size_t digits = r.getU64();
    if (digits == 0 || digits > basis->qCount())
        fatal("malformed keyswitching-key blob");
    EvalKey key;
    for (size_t i = 0; i < digits; ++i) {
        key.b.push_back(readPolyBody(r, basis));
        key.a.push_back(readPolyBody(r, basis));
    }
    if (!r.done())
        fatal("trailing bytes after key blob");
    return key;
}

size_t
serializedCiphertextBytes(const Ciphertext& ct)
{
    // header (3) + scale + 2 x (3 meta + limbs).
    return 8 * (3 + 1 + 2 * 3) +
           8 * (ct.c0.limbCount() + ct.c1.limbCount()) * ct.c0.n();
}

} // namespace hydra
