/**
 * @file
 * CkksContext: owns the RNS basis and the precomputation shared by the
 * encoder, key generator and evaluator.
 */

#ifndef HYDRA_FHE_CONTEXT_HH
#define HYDRA_FHE_CONTEXT_HH

#include <memory>
#include <vector>

#include "fhe/params.hh"
#include "math/poly.hh"
#include "math/rns.hh"

namespace hydra {

/**
 * Immutable per-parameter-set state.  Create once, share by reference
 * across encoder/keygen/evaluator.
 */
class CkksContext
{
  public:
    explicit CkksContext(const CkksParams& params);

    const CkksParams& params() const { return params_; }
    const std::shared_ptr<const RnsBasis>& basis() const { return basis_; }
    size_t n() const { return params_.n; }
    size_t slots() const { return params_.n / 2; }
    size_t levels() const { return params_.levels; }

    /** Special prime value P. */
    u64 specialPrime() const;

    /** P mod q_k, used in keyswitching-key generation. */
    u64 pModQ(size_t k) const { return pModQ_[k]; }

    /** Galois element for a left rotation by `steps` slots. */
    u64 galoisForRotation(int steps) const;

    /** Galois element for complex conjugation. */
    u64 galoisForConjugation() const { return 2 * params_.n - 1; }

  private:
    CkksParams params_;
    std::shared_ptr<const RnsBasis> basis_;
    std::vector<u64> pModQ_;
};

} // namespace hydra

#endif // HYDRA_FHE_CONTEXT_HH
