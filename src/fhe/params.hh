/**
 * @file
 * CKKS parameter sets.
 *
 * The paper runs RNS-CKKS with N = 2^16, log(PQ) = 1692, logQ = 1260
 * (SHARP's parameters).  The functional library executes at laptop-scale
 * ring dimensions; the full-scale set is carried symbolically and feeds
 * the architecture model only.
 */

#ifndef HYDRA_FHE_PARAMS_HH
#define HYDRA_FHE_PARAMS_HH

#include <cstddef>
#include <cstdint>
#include <string>

namespace hydra {

/** Parameters for a CKKS context. */
struct CkksParams
{
    /** Ring dimension (power of two). */
    size_t n = 1 << 12;
    /** Number of ciphertext primes in the modulus chain. */
    size_t levels = 6;
    /** Bit size of q_1..q_{L-1} = log2 of the rescaling scale. */
    int scaleBits = 40;
    /** Bit size of the base prime q_0 (decode headroom). */
    int firstPrimeBits = 50;
    /** Bit size of the keyswitching special prime. */
    int specialPrimeBits = 51;
    /** Error stddev for fresh encryptions. */
    double errorStd = 3.2;
    /**
     * Hamming weight of the ternary secret; 0 = dense ternary.  Sparse
     * secrets bound the modulus-raising overflow count I during
     * bootstrapping (HEAAN-style).
     */
    size_t secretHammingWeight = 0;
    /** RNG seed for key material. */
    uint64_t seed = 0x4879647261ULL; // "Hydra"

    size_t slots() const { return n / 2; }
    double scale() const { return static_cast<double>(1ULL << scaleBits); }

    /** Sanity-check ranges; fatal() on user error. */
    void validate() const;

    /** Total ciphertext modulus bits (approximate). */
    int
    logQ() const
    {
        return firstPrimeBits + static_cast<int>(levels - 1) * scaleBits;
    }

    /** Including the special prime. */
    int logPQ() const { return logQ() + specialPrimeBits; }

    std::string describe() const;

    /** Small fast preset for unit tests. */
    static CkksParams unitTest();

    /** Preset sized so that full bootstrapping fits (still laptop-scale). */
    static CkksParams bootstrapTest();

    /**
     * The paper's full-scale parameter set (SHARP-compatible):
     * N = 2^16, logQ = 1260, log(PQ) = 1692.  Symbolic: drives the
     * architecture model, not meant for functional execution here.
     */
    static CkksParams paperFullScale();
};

} // namespace hydra

#endif // HYDRA_FHE_PARAMS_HH
