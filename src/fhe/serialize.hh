/**
 * @file
 * Binary serialization of ciphertexts, plaintexts and keys -- the
 * wire format a Hydra deployment ships between the client, the host
 * scheduler and the accelerator cards (ciphertexts at the paper's
 * parameters exceed 20 MB, so the format is flat and zero-parse).
 *
 * Layout: magic, version, a basis fingerprint (ring dimension + prime
 * chain hash) that must match the receiving context, then raw limbs.
 */

#ifndef HYDRA_FHE_SERIALIZE_HH
#define HYDRA_FHE_SERIALIZE_HH

#include <cstdint>
#include <vector>

#include "fhe/encoder.hh"
#include "fhe/keys.hh"

namespace hydra {

using Bytes = std::vector<uint8_t>;

/** Stable fingerprint of a basis (n + FNV-1a over the prime chain). */
uint64_t basisFingerprint(const RnsBasis& basis);

/// @name Serialization
/// @{
Bytes serialize(const RnsPoly& poly);
Bytes serialize(const Ciphertext& ct);
Bytes serialize(const Plaintext& pt);
Bytes serialize(const EvalKey& key);
/// @}

/// @name Deserialization (fatal() on format or fingerprint mismatch)
/// @{
RnsPoly deserializePoly(const Bytes& data,
                        const std::shared_ptr<const RnsBasis>& basis);
Ciphertext deserializeCiphertext(
    const Bytes& data, const std::shared_ptr<const RnsBasis>& basis);
Plaintext deserializePlaintext(
    const Bytes& data, const std::shared_ptr<const RnsBasis>& basis);
EvalKey deserializeEvalKey(
    const Bytes& data, const std::shared_ptr<const RnsBasis>& basis);
/// @}

/** Serialized ciphertext size in bytes (for transfer planning). */
size_t serializedCiphertextBytes(const Ciphertext& ct);

} // namespace hydra

#endif // HYDRA_FHE_SERIALIZE_HH
