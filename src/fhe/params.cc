#include "fhe/params.hh"

#include <bit>

#include "common/logging.hh"

namespace hydra {

void
CkksParams::validate() const
{
    if (!std::has_single_bit(n) || n < 8)
        fatal("ring dimension must be a power of two >= 8, got %zu", n);
    if (levels < 1 || levels > 64)
        fatal("modulus chain length %zu out of range", levels);
    if (scaleBits < 20 || scaleBits > 59)
        fatal("scaleBits %d out of range [20, 59]", scaleBits);
    if (firstPrimeBits < scaleBits || firstPrimeBits > 60)
        fatal("firstPrimeBits %d out of range", firstPrimeBits);
    if (specialPrimeBits < firstPrimeBits || specialPrimeBits > 61)
        fatal("specialPrimeBits must be >= firstPrimeBits");
}

std::string
CkksParams::describe() const
{
    return strf("CKKS(N=2^%d, L=%zu, scale=2^%d, logQ=%d, logPQ=%d)",
                std::countr_zero(n), levels, scaleBits, logQ(), logPQ());
}

CkksParams
CkksParams::unitTest()
{
    CkksParams p;
    p.n = 1 << 10;
    p.levels = 6;
    p.scaleBits = 40;
    p.firstPrimeBits = 50;
    p.specialPrimeBits = 51;
    return p;
}

CkksParams
CkksParams::bootstrapTest()
{
    CkksParams p;
    p.n = 1 << 10;
    // q_0 == scale: EvalMod folds message and modulus at the same scale.
    p.levels = 20;
    p.scaleBits = 42;
    p.firstPrimeBits = 42;
    p.specialPrimeBits = 55;
    p.secretHammingWeight = 64;
    return p;
}

CkksParams
CkksParams::paperFullScale()
{
    CkksParams p;
    p.n = 1 << 16;
    // 1260 = 60 + 24 * 50 symbolically; SHARP uses short words but the
    // architecture model only consumes logQ/limb counts.
    p.levels = 25;
    p.scaleBits = 50;
    p.firstPrimeBits = 60;
    p.specialPrimeBits = 54; // logPQ - logQ adjusted below by caller
    return p;
}

} // namespace hydra
