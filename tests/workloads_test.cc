/**
 * @file
 * Workload-model tests: Table I invariants (op mixes, parallelism
 * ranges, ciphertext counts) and structural sanity of the four models.
 */

#include <gtest/gtest.h>

#include "workloads/model.hh"

namespace hydra {
namespace {

TEST(OpMixes, MatchTableOne)
{
    EXPECT_EQ(convBnMix().rotations, 8u);
    EXPECT_EQ(convBnMix().pmults, 2u);
    EXPECT_EQ(convBnMix().hadds, 7u);
    EXPECT_EQ(convBnMix().cmults, 0u);

    EXPECT_EQ(poolingMix().rotations, 2u);
    EXPECT_EQ(poolingMix().pmults, 1u);

    EXPECT_EQ(fcMix().rotations, 1u);
    EXPECT_EQ(fcMix().pmults, 1u);

    EXPECT_EQ(pcmmMix().rotations, 1u);
    EXPECT_EQ(pcmmMix().pmults, 1u);

    EXPECT_EQ(ccmmMix().rotations, 7u);
    EXPECT_EQ(ccmmMix().cmults, 1u);
    EXPECT_EQ(ccmmMix().pmults, 1u);
    EXPECT_EQ(ccmmMix().hadds, 6u);

    EXPECT_EQ(nonLinearMix().cmults, 8u);
    EXPECT_EQ(nonLinearMix().hadds, 15u);
    EXPECT_EQ(nonLinearMix().rotations, 0u);
}

class ModelTest : public ::testing::TestWithParam<int>
{
  protected:
    WorkloadModel
    model() const
    {
        switch (GetParam()) {
          case 0: return makeResNet18();
          case 1: return makeResNet50();
          case 2: return makeBertBase();
          default: return makeOpt67B();
        }
    }
};

TEST_P(ModelTest, StepsAreWellFormed)
{
    WorkloadModel m = model();
    EXPECT_FALSE(m.steps.empty());
    for (const auto& s : m.steps) {
        EXPECT_GE(s.parallelism, 1u) << s.name;
        EXPECT_GE(s.limbs, 1u) << s.name;
        EXPECT_LE(s.limbs, m.maxLimbs) << s.name;
        EXPECT_GE(s.effectiveUnits(), 1u) << s.name;
        EXPECT_FALSE(s.name.empty());
        if (s.kind == ProcKind::NonLinear)
            EXPECT_GT(s.polyDegree, 0u) << s.name;
    }
}

TEST_P(ModelTest, BootstrapsArePresent)
{
    WorkloadModel m = model();
    EXPECT_GT(m.stepCount(ProcKind::Bootstrap), 0u);
    auto [lo, hi] = m.parallelismRange(ProcKind::Bootstrap);
    EXPECT_GE(lo, 1u);
    EXPECT_LE(hi, 32u); // Table I ciphertext row
}

INSTANTIATE_TEST_SUITE_P(Models, ModelTest, ::testing::Values(0, 1, 2, 3));

TEST(TableOneRanges, CnnModels)
{
    for (const auto& m : {makeResNet18(), makeResNet50()}) {
        auto [clo, chi] = m.parallelismRange(ProcKind::ConvBN);
        EXPECT_GE(chi, 384u) << m.name;
        EXPECT_LE(chi, 1024u) << m.name; // Table I max
        EXPECT_GE(clo, 1u);
        auto [nlo, nhi] = m.parallelismRange(ProcKind::NonLinear);
        EXPECT_LE(nhi, 128u) << m.name;
        EXPECT_GE(nlo, 4u) << m.name;
        EXPECT_EQ(m.stepCount(ProcKind::PCMM), 0u);
        EXPECT_EQ(m.stepCount(ProcKind::CCMM), 0u);
    }
}

TEST(TableOneRanges, LlmModels)
{
    WorkloadModel bert = makeBertBase();
    auto [plo, phi] = bert.parallelismRange(ProcKind::PCMM);
    EXPECT_EQ(plo, 98304u);
    EXPECT_EQ(phi, 393216u);
    auto [cclo, cchi] = bert.parallelismRange(ProcKind::CCMM);
    EXPECT_EQ(cclo, 384u);
    EXPECT_EQ(cchi, 384u);

    WorkloadModel opt = makeOpt67B();
    auto [olo, ohi] = opt.parallelismRange(ProcKind::PCMM);
    EXPECT_EQ(olo, 153600u);
    EXPECT_EQ(ohi, 614400u);
    auto [oclo, ochi] = opt.parallelismRange(ProcKind::CCMM);
    EXPECT_EQ(oclo, 1000u);
    EXPECT_EQ(ochi, 1000u);
    EXPECT_EQ(opt.stepCount(ProcKind::ConvBN), 0u);
}

TEST(TableOneRanges, ModelScalesOrdered)
{
    // ResNet-50 carries more conv work than ResNet-18; OPT more matmul
    // work than BERT.
    WorkloadModel r18 = makeResNet18();
    WorkloadModel r50 = makeResNet50();
    EXPECT_GT(r50.stepCount(ProcKind::ConvBN),
              r18.stepCount(ProcKind::ConvBN));
    WorkloadModel bert = makeBertBase();
    WorkloadModel opt = makeOpt67B();
    EXPECT_GT(opt.steps.size(), bert.steps.size());
    EXPECT_GT(opt.totalUnits(ProcKind::PCMM),
              bert.totalUnits(ProcKind::PCMM));
}

TEST(StepHelpers, EffectiveUnitsScales)
{
    Step s;
    s.parallelism = 1000;
    s.unitScale = 0.25;
    EXPECT_EQ(s.effectiveUnits(), 250u);
    s.unitScale = 0.0001;
    EXPECT_EQ(s.effectiveUnits(), 1u); // floors at one unit
    s.unitScale = 2.0;
    EXPECT_EQ(s.effectiveUnits(), 2000u);
}

TEST(ProcNames, AllDistinct)
{
    for (size_t i = 0; i < kNumProcKinds; ++i)
        for (size_t j = i + 1; j < kNumProcKinds; ++j)
            EXPECT_STRNE(procName(static_cast<ProcKind>(i)),
                         procName(static_cast<ProcKind>(j)));
}

} // namespace
} // namespace hydra
