/**
 * @file
 * Fault-tolerance layer tests: retry accounting, timeout/budget
 * exhaustion, Program::validate() rejection cases, deadlock report
 * contents, straggler/card-failure injection, and degraded-mode
 * re-dispatch through InferenceRunner.
 */

#include <gtest/gtest.h>

#include "baselines/prototypes.hh"
#include "sched/runner.hh"
#include "sync/executor.hh"

namespace hydra {
namespace {

/** Fixed-latency test network. */
class FlatNetwork : public NetworkModel
{
  public:
    explicit FlatNetwork(Tick per_msg, bool overlaps = true)
        : perMsg_(per_msg), overlaps_(overlaps)
    {
    }

    std::unique_ptr<NetworkModel>
    clone() const override
    {
        return std::make_unique<FlatNetwork>(*this);
    }

    Tick
    transferTime(uint64_t, size_t, size_t) const override
    {
        return perMsg_;
    }

    Tick
    broadcastTime(uint64_t, size_t, size_t) const override
    {
        return perMsg_;
    }

    Tick setupLatency() const override { return 0; }
    bool overlapsCompute() const override { return overlaps_; }
    Tick stepSyncLatency() const override { return 0; }

  private:
    Tick perMsg_;
    bool overlaps_;
};

/** One producer->consumer transfer: compute(10) -> send -> CT_d(5). */
Program
oneTransferProgram(uint64_t bytes = 50)
{
    ProgramBuilder pb(2);
    uint32_t l = pb.label("t");
    uint64_t c0 = pb.addCompute(0, 10, OpCost{}, l);
    uint64_t msg = pb.sendTo(0, 1, bytes, c0);
    pb.addCompute(1, 5, OpCost{}, l, {msg});
    return pb.take();
}

RetryPolicy
testPolicy(uint32_t max_attempts, Tick backoff, Tick timeout = 0)
{
    RetryPolicy p;
    p.maxAttempts = max_attempts;
    p.backoffBase = backoff;
    p.backoffMax = backoff * 8;
    p.timeout = timeout;
    return p;
}

TEST(FaultRetry, FirstAttemptDroppedThenRecovered)
{
    ClusterConfig cfg{1, 2};
    FlatNetwork net(100);
    ClusterExecutor ex(cfg, net);
    FaultPlan plan;
    plan.dropFirstAttempts = 1;
    ex.setFaultPlan(plan);
    ex.setRetryPolicy(testPolicy(4, 7));

    RunResult res = ex.tryRun(oneTransferProgram());
    ASSERT_TRUE(res.ok()) << res.error.message;
    // compute [0,10); failed attempt [10,110); backoff 7; retry
    // [117,217); CT_d [217,222).
    EXPECT_EQ(res.stats.makespan, 222u);
    EXPECT_EQ(res.stats.retries, 1u);
    EXPECT_EQ(res.stats.droppedTransfers, 1u);
    EXPECT_EQ(res.stats.corruptedTransfers, 0u);
    EXPECT_EQ(res.stats.retryBackoffTicks, 7u);
    // The wire is charged for both attempts on both endpoints.
    EXPECT_EQ(res.stats.commBusy[0], 200u);
    EXPECT_EQ(res.stats.commBusy[1], 200u);
    // Logical message counted once; bytes per attempt.
    EXPECT_EQ(res.stats.netMessages, 1u);
    EXPECT_EQ(res.stats.netBytes, 100u);
}

TEST(FaultRetry, BudgetExhaustionReturnsStructuredError)
{
    ClusterConfig cfg{1, 2};
    FlatNetwork net(100);
    ClusterExecutor ex(cfg, net);
    FaultPlan plan;
    plan.dropFirstAttempts = 10; // every attempt drops
    ex.setFaultPlan(plan);
    ex.setRetryPolicy(testPolicy(3, 7));

    RunResult res = ex.tryRun(oneTransferProgram());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::TransferFailed);
    EXPECT_EQ(res.error.card, 0u);
    EXPECT_EQ(res.error.attempts, 3u);
    EXPECT_EQ(res.stats.droppedTransfers, 3u);
    EXPECT_EQ(res.stats.retries, 2u);
    // attempts [10,110) [117,217) [231,331): backoffs 7 then 14.
    EXPECT_EQ(res.stats.retryBackoffTicks, 21u);
    EXPECT_EQ(res.stats.makespan, 331u);
}

TEST(FaultRetry, TimeoutShortensDropDetection)
{
    ClusterConfig cfg{1, 2};
    FlatNetwork net(100);
    ClusterExecutor ex(cfg, net);
    FaultPlan plan;
    plan.dropFirstAttempts = 10;
    ex.setFaultPlan(plan);
    ex.setRetryPolicy(testPolicy(2, 5, /*timeout=*/30));

    RunResult res = ex.tryRun(oneTransferProgram());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::TransferFailed);
    // Attempts [10,40) and [45,75): the ack timer, not the wire time,
    // bounds each failed attempt.
    EXPECT_EQ(res.stats.makespan, 75u);
    EXPECT_EQ(res.stats.droppedTransfers, 2u);
}

TEST(FaultRetry, DegradedLinkExceedingTimeoutTimesOut)
{
    ClusterConfig cfg{1, 2};
    FlatNetwork net(100);
    ClusterExecutor ex(cfg, net);
    FaultPlan plan;
    plan.linkDegrade = 10.0; // wire time 1000 > timeout 500
    ex.setFaultPlan(plan);
    ex.setRetryPolicy(testPolicy(2, 5, /*timeout=*/500));

    RunResult res = ex.tryRun(oneTransferProgram());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::TransferFailed);
    EXPECT_EQ(res.stats.timedOutTransfers, 2u);
    EXPECT_EQ(res.stats.droppedTransfers, 0u);
}

TEST(FaultRetry, CorruptionIsDetectedAndCounted)
{
    ClusterConfig cfg{1, 2};
    FlatNetwork net(100);
    ClusterExecutor ex(cfg, net);
    FaultPlan plan;
    plan.corruptRate = 1.0; // checksum fails on every arrival
    ex.setFaultPlan(plan);
    ex.setRetryPolicy(testPolicy(2, 7));

    RunResult res = ex.tryRun(oneTransferProgram());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::TransferFailed);
    EXPECT_EQ(res.stats.corruptedTransfers, 2u);
    // A corrupted transfer burns the full wire time before detection:
    // compute 10 + attempt 100 + backoff 7 + attempt 100.
    EXPECT_EQ(res.stats.makespan, 217u);
}

TEST(FaultInject, StragglerStretchesComputeDeterministically)
{
    ClusterConfig cfg{1, 1};
    FlatNetwork net(0);
    ProgramBuilder pb(1);
    pb.addCompute(0, 100, OpCost{}, pb.label("c"));
    Program prog = pb.take();

    ClusterExecutor ex(cfg, net);
    FaultPlan plan;
    plan.stragglers[0] = 2.5;
    ex.setFaultPlan(plan);
    RunResult res = ex.tryRun(prog);
    ASSERT_TRUE(res.ok());
    EXPECT_EQ(res.stats.makespan, 250u);
    EXPECT_EQ(res.stats.computeBusy[0], 250u);
}

TEST(FaultInject, CardDeathHaltsWithStructuredError)
{
    ClusterConfig cfg{1, 2};
    FlatNetwork net(10);
    ProgramBuilder pb(2);
    uint32_t l = pb.label("c");
    pb.addCompute(0, 100, OpCost{}, l);
    pb.addCompute(1, 100, OpCost{}, l);
    Program prog = pb.take();

    ClusterExecutor ex(cfg, net);
    FaultPlan plan;
    plan.cardFailAt[1] = 50;
    ex.setFaultPlan(plan);
    RunResult res = ex.tryRun(prog);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::CardFailed);
    EXPECT_EQ(res.error.card, 1u);
    EXPECT_EQ(res.error.tick, 50u);
    EXPECT_EQ(res.stats.makespan, 50u);
}

TEST(FaultInject, CardDeathAfterDrainIsIgnored)
{
    ClusterConfig cfg{1, 2};
    FlatNetwork net(10);
    ProgramBuilder pb(2);
    uint32_t l = pb.label("c");
    pb.addCompute(0, 100, OpCost{}, l);
    pb.addCompute(1, 100, OpCost{}, l);
    Program prog = pb.take();

    ClusterExecutor ex(cfg, net);
    FaultPlan plan;
    plan.cardFailAt[1] = 5000; // long after completion
    ex.setFaultPlan(plan);
    RunResult res = ex.tryRun(prog);
    ASSERT_TRUE(res.ok()) << res.error.message;
    // The pending kill event must not inflate the makespan.
    EXPECT_EQ(res.stats.makespan, 100u);
}

TEST(Validate, BuilderProgramsAreClean)
{
    ProgramBuilder pb(4);
    uint32_t l = pb.label("v");
    uint64_t c0 = pb.addCompute(0, 10, OpCost{}, l);
    uint64_t m = pb.sendTo(0, 2, 64, c0);
    pb.addCompute(2, 10, OpCost{}, l, {m});
    uint64_t b = pb.broadcastFrom(1, 32);
    for (size_t c = 0; c < 4; ++c)
        if (c != 1)
            pb.addCompute(c, 1, OpCost{}, l, {b});
    EXPECT_TRUE(pb.take().validate().empty());
}

bool
hasIssue(const std::vector<ProgramIssue>& issues, ProgramIssue::Kind k)
{
    for (const auto& i : issues)
        if (i.kind == k)
            return true;
    return false;
}

TEST(Validate, CatchesUnmatchedRecv)
{
    ProgramBuilder pb(2);
    pb.addRecv(1, 777, 0, 8);
    auto issues = pb.take().validate();
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].kind, ProgramIssue::Kind::UnmatchedRecv);
    EXPECT_EQ(issues[0].card, 1u);
    EXPECT_EQ(issues[0].id, 777u);
}

TEST(Validate, CatchesUnmatchedSend)
{
    ProgramBuilder pb(2);
    pb.addSend(0, 5, 1, 8);
    auto issues = pb.take().validate();
    EXPECT_TRUE(hasIssue(issues, ProgramIssue::Kind::UnmatchedSend));
}

TEST(Validate, CatchesDanglingAfterCompute)
{
    ProgramBuilder pb(2);
    uint64_t m = pb.newMsg();
    pb.addSend(0, m, 1, 8, /*after_compute=*/9999);
    pb.addRecv(1, m, 0, 8);
    auto issues = pb.take().validate();
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].kind,
              ProgramIssue::Kind::DanglingAfterCompute);
    EXPECT_EQ(issues[0].id, 9999u);
}

TEST(Validate, CatchesBadPeerAndSelfSend)
{
    // Hand-built program: the builder's asserts would reject these.
    Program p(2);
    p.cards[0].comm.push_back(
        CommTask{CommTask::Kind::Send, 1, /*peer=*/7, 8, 0});
    p.cards[1].comm.push_back(
        CommTask{CommTask::Kind::Send, 2, /*peer=*/1, 8, 0});
    auto issues = p.validate();
    EXPECT_TRUE(hasIssue(issues, ProgramIssue::Kind::BadPeer));
    EXPECT_TRUE(hasIssue(issues, ProgramIssue::Kind::SelfMessage));
}

TEST(Validate, CatchesDuplicateSender)
{
    Program p(3);
    p.cards[0].comm.push_back(
        CommTask{CommTask::Kind::Send, 9, 2, 8, 0});
    p.cards[1].comm.push_back(
        CommTask{CommTask::Kind::Send, 9, 2, 8, 0});
    p.cards[2].comm.push_back(
        CommTask{CommTask::Kind::Recv, 9, 0, 8, 0});
    auto issues = p.validate();
    EXPECT_TRUE(hasIssue(issues, ProgramIssue::Kind::DuplicateSender));
}

TEST(Validate, CatchesWaitOnMsgNeverReceivedHere)
{
    // Card 0 waits on a message only card 2 receives.
    ProgramBuilder pb(3);
    uint32_t l = pb.label("v");
    uint64_t c1 = pb.addCompute(1, 10, OpCost{}, l);
    uint64_t m = pb.sendTo(1, 2, 8, c1);
    pb.addCompute(0, 5, OpCost{}, l, {m});
    auto issues = pb.take().validate();
    ASSERT_EQ(issues.size(), 1u);
    EXPECT_EQ(issues[0].kind, ProgramIssue::Kind::WaitOnUnknownMsg);
    EXPECT_EQ(issues[0].card, 0u);
}

TEST(Deadlock, HeadOfLineCycleIsDiagnosed)
{
    // Both cards queue their send before their recv: neither receiver
    // ever posts ready, a classic head-of-line deadlock.  The program
    // is statically valid (all pairs matched).
    ClusterConfig cfg{1, 2};
    FlatNetwork net(10);
    ProgramBuilder pb(2);
    uint64_t m0 = pb.newMsg();
    uint64_t m1 = pb.newMsg();
    pb.addSend(0, m0, 1, 8);
    pb.addRecv(0, m1, 1, 8);
    pb.addSend(1, m1, 0, 8);
    pb.addRecv(1, m0, 0, 8);
    Program prog = pb.take();
    EXPECT_TRUE(prog.validate().empty());

    ClusterExecutor ex(cfg, net);
    RunResult res = ex.tryRun(prog);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::Deadlock);
    const DeadlockReport& rep = res.error.deadlock;
    ASSERT_EQ(rep.stuck.size(), 2u);
    EXPECT_EQ(rep.stuck[0].card, 0u);
    EXPECT_EQ(rep.stuck[0].commIdx, 0u);
    EXPECT_EQ(rep.stuck[0].commTotal, 2u);
    EXPECT_NE(rep.stuck[0].waitingOn.find("waits ready"),
              std::string::npos);
    // The wait-for cycle covers both cards.
    ASSERT_EQ(rep.cycle.size(), 2u);
    EXPECT_TRUE(rep.unmatchedMsgs.empty());
    // The report renders without crashing and names both cards.
    std::string text = rep.describe();
    EXPECT_NE(text.find("card 0"), std::string::npos);
    EXPECT_NE(text.find("card 1"), std::string::npos);
}

TEST(Deadlock, CrossCardComputeCycleIsDiagnosed)
{
    // Card 0's send waits on a compute that waits on card 1's message,
    // and vice versa: a compute-mediated cycle.
    ClusterConfig cfg{1, 2};
    FlatNetwork net(10);
    ProgramBuilder pb(2);
    uint32_t l = pb.label("d");
    uint64_t m0 = pb.newMsg();
    uint64_t m1 = pb.newMsg();
    uint64_t c0 = pb.addCompute(0, 10, OpCost{}, l, {m1});
    uint64_t c1 = pb.addCompute(1, 10, OpCost{}, l, {m0});
    pb.addSend(0, m0, 1, 8, c0);
    pb.addRecv(1, m0, 0, 8);
    pb.addSend(1, m1, 0, 8, c1);
    pb.addRecv(0, m1, 1, 8);
    Program prog = pb.take();
    EXPECT_TRUE(prog.validate().empty());

    ClusterExecutor ex(cfg, net);
    RunResult res = ex.tryRun(prog);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::Deadlock);
    EXPECT_EQ(res.error.deadlock.stuck.size(), 2u);
    EXPECT_FALSE(res.error.deadlock.cycle.empty());
}

TEST(FaultPolicy, BackoffGrowsExponentiallyWithCap)
{
    RetryPolicy p;
    p.backoffBase = 10;
    p.backoffMax = 50;
    EXPECT_EQ(p.backoffFor(0), 10u);
    EXPECT_EQ(p.backoffFor(1), 20u);
    EXPECT_EQ(p.backoffFor(2), 40u);
    EXPECT_EQ(p.backoffFor(3), 50u);
    EXPECT_EQ(p.backoffFor(9), 50u);
}

TEST(FaultPlanSpec, ParseRoundTrip)
{
    FaultPlan p = FaultPlan::parse(
        "seed=42,drop=0.25,corrupt=0.5,degrade=2,dropfirst=3,"
        "straggle=2:1.5,kill=1@0.001");
    EXPECT_EQ(p.seed, 42u);
    EXPECT_DOUBLE_EQ(p.dropRate, 0.25);
    EXPECT_DOUBLE_EQ(p.corruptRate, 0.5);
    EXPECT_DOUBLE_EQ(p.linkDegrade, 2.0);
    EXPECT_EQ(p.dropFirstAttempts, 3u);
    ASSERT_EQ(p.stragglers.count(2), 1u);
    EXPECT_DOUBLE_EQ(p.stragglers.at(2), 1.5);
    ASSERT_EQ(p.cardFailAt.count(1), 1u);
    EXPECT_EQ(p.cardFailAt.at(1), secondsToTicks(0.001));
    EXPECT_FALSE(p.empty());
    EXPECT_TRUE(FaultPlan::parse("").empty());
}

TEST(FaultPlanSpec, DrawsAreDeterministicAndSeedSensitive)
{
    FaultPlan a;
    a.seed = 1;
    a.dropRate = 0.5;
    FaultPlan b = a;
    FaultPlan c = a;
    c.seed = 2;
    size_t agree_ab = 0, agree_ac = 0, n = 256;
    for (uint64_t m = 1; m <= n; ++m) {
        agree_ab += a.dropsTransfer(m, 0) == b.dropsTransfer(m, 0);
        agree_ac += a.dropsTransfer(m, 0) == c.dropsTransfer(m, 0);
    }
    EXPECT_EQ(agree_ab, n);  // same seed: identical decisions
    EXPECT_LT(agree_ac, n);  // different seed: decisions diverge
}

/** Small two-step ConvBN workload for degraded-mode runs. */
WorkloadModel
toyWorkload()
{
    WorkloadModel wl;
    wl.name = "toy";
    wl.logSlots = 15;
    wl.maxLimbs = 24;
    wl.steps.push_back(Step{ProcKind::ConvBN, "conv0", 64, convBnMix(),
                            12, AggKind::BroadcastEach, 0, 1.0, 8});
    wl.steps.push_back(Step{ProcKind::FC, "fc0", 128, fcMix(), 12,
                            AggKind::ReduceTree, 0, 1.0, 1});
    return wl;
}

TEST(Degraded, EmptyPlanMatchesLegacyRunner)
{
    InferenceRunner runner(hydraMSpec());
    WorkloadModel wl = toyWorkload();
    InferenceResult legacy = runner.run(wl);
    InferenceResult faulty = runner.run(wl, FaultPlan{});
    ASSERT_TRUE(faulty.ok());
    EXPECT_FALSE(faulty.degraded());
    EXPECT_EQ(faulty.total.makespan, legacy.total.makespan);
    EXPECT_EQ(faulty.total.netBytes, legacy.total.netBytes);
}

TEST(Degraded, SingleCardFailureRedispatchesAndReportsPenalty)
{
    InferenceRunner runner(hydraMSpec()); // 8 cards
    WorkloadModel wl = toyWorkload();
    InferenceResult healthy = runner.run(wl);
    ASSERT_GT(healthy.total.makespan, 0u);

    FaultPlan plan;
    plan.cardFailAt[3] = healthy.total.makespan / 4;
    InferenceResult res = runner.run(wl, plan);

    ASSERT_TRUE(res.ok()) << res.error.message;
    EXPECT_TRUE(res.degraded());
    ASSERT_EQ(res.failedCards.size(), 1u);
    EXPECT_EQ(res.failedCards[0], 3u);
    EXPECT_EQ(res.redispatches, 1u);
    EXPECT_GT(res.recoveryPenalty, 0u);
    // All steps still completed, on fewer cards and later.
    EXPECT_EQ(res.steps.size(), wl.steps.size());
    EXPECT_GT(res.total.makespan, healthy.total.makespan);
}

TEST(Degraded, EveryCardDyingIsATerminalError)
{
    PrototypeSpec spec = hydraPrototype("tiny", 1, 2);
    InferenceRunner runner(spec);
    WorkloadModel wl = toyWorkload();
    FaultPlan plan;
    plan.cardFailAt[0] = 0;
    plan.cardFailAt[1] = 0;
    InferenceResult res = runner.run(wl, plan);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::CardFailed);
    // Both deaths are recorded before the runner gives up.
    EXPECT_EQ(res.failedCards.size(), 2u);
    EXPECT_NE(res.error.message.find("no surviving cards"),
              std::string::npos);
}

TEST(Degraded, FusedRunSurfacesCardDeathAsError)
{
    InferenceRunner runner(hydraMSpec());
    WorkloadModel wl = toyWorkload();
    FaultPlan plan;
    plan.cardFailAt[2] = 1; // immediately after launch
    RunResult res = runner.runFused(wl, plan);
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::CardFailed);
    EXPECT_EQ(res.error.card, 2u);
}

} // namespace
} // namespace hydra
