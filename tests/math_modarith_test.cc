/**
 * @file
 * Unit and property tests for Barrett/Shoup modular arithmetic,
 * primality testing and prime generation.
 */

#include <gtest/gtest.h>

#include <random>

#include "math/modarith.hh"
#include "math/primes.hh"

namespace hydra {
namespace {

TEST(Modulus, BasicOps)
{
    Modulus m(17);
    EXPECT_EQ(m.addMod(9, 9), 1u);
    EXPECT_EQ(m.subMod(3, 9), 11u);
    EXPECT_EQ(m.mulMod(5, 7), 35u % 17u);
    EXPECT_EQ(m.negMod(0), 0u);
    EXPECT_EQ(m.negMod(5), 12u);
    EXPECT_EQ(m.powMod(3, 16), 1u); // Fermat
    EXPECT_EQ(m.mulMod(m.invMod(5), 5), 1u);
}

TEST(Modulus, CenteredRepresentative)
{
    Modulus m(17);
    EXPECT_EQ(m.toCentered(0), 0);
    EXPECT_EQ(m.toCentered(8), 8);
    EXPECT_EQ(m.toCentered(9), -8);
    EXPECT_EQ(m.toCentered(16), -1);
    EXPECT_EQ(m.reduceI64(-1), 16u);
    EXPECT_EQ(m.reduceI64(-17), 0u);
    EXPECT_EQ(m.reduceI64(-18), 16u);
}

class ModulusRandomTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ModulusRandomTest, BarrettMatchesNaive)
{
    int bits = GetParam();
    std::mt19937_64 rng(12345 + bits);
    auto primes = nttPrimes(1024, bits, 2);
    for (u64 qv : primes) {
        Modulus q(qv);
        for (int iter = 0; iter < 2000; ++iter) {
            u64 a = rng() % qv;
            u64 b = rng() % qv;
            u64 expect =
                static_cast<u64>(static_cast<u128>(a) * b % qv);
            EXPECT_EQ(q.mulMod(a, b), expect);
            EXPECT_EQ(q.reduce(static_cast<u128>(a) * b), expect);
        }
    }
}

TEST_P(ModulusRandomTest, ShoupMatchesBarrett)
{
    int bits = GetParam();
    std::mt19937_64 rng(777 + bits);
    u64 qv = nttPrimes(2048, bits, 1)[0];
    Modulus q(qv);
    for (int iter = 0; iter < 500; ++iter) {
        u64 w = rng() % qv;
        ShoupMul s(w, q);
        for (int k = 0; k < 20; ++k) {
            u64 a = rng() % qv;
            EXPECT_EQ(s.mulMod(a, q), q.mulMod(a, w));
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Sizes, ModulusRandomTest,
                         ::testing::Values(20, 30, 40, 45, 50, 55, 59, 61));

TEST(Primes, MillerRabinKnownValues)
{
    EXPECT_FALSE(isPrime(0));
    EXPECT_FALSE(isPrime(1));
    EXPECT_TRUE(isPrime(2));
    EXPECT_TRUE(isPrime(3));
    EXPECT_FALSE(isPrime(4));
    EXPECT_TRUE(isPrime(65537));
    EXPECT_FALSE(isPrime(65536));
    EXPECT_TRUE(isPrime((1ULL << 61) - 1)); // Mersenne prime M61
    EXPECT_FALSE(isPrime((1ULL << 59) - 1));
    // Carmichael numbers must not fool the test.
    EXPECT_FALSE(isPrime(561));
    EXPECT_FALSE(isPrime(41041));
    EXPECT_FALSE(isPrime(825265));
}

TEST(Primes, NttPrimesHaveRightResidue)
{
    size_t n = 4096;
    auto primes = nttPrimes(n, 45, 8);
    EXPECT_EQ(primes.size(), 8u);
    for (u64 p : primes) {
        EXPECT_TRUE(isPrime(p));
        EXPECT_EQ((p - 1) % (2 * n), 0u);
        EXPECT_LT(p, 1ULL << 45);
        EXPECT_GT(p, 1ULL << 44);
    }
    // Distinct
    for (size_t i = 0; i < primes.size(); ++i)
        for (size_t j = i + 1; j < primes.size(); ++j)
            EXPECT_NE(primes[i], primes[j]);
}

TEST(Primes, ExclusionRespected)
{
    size_t n = 1024;
    auto first = nttPrimes(n, 40, 3);
    auto more = nttPrimes(n, 40, 3, first);
    for (u64 p : more)
        for (u64 q : first)
            EXPECT_NE(p, q);
}

TEST(Primes, PrimitiveRootHasFullOrder)
{
    size_t n = 1024;
    u64 qv = nttPrimes(n, 40, 1)[0];
    Modulus q(qv);
    u64 psi = primitiveRoot2N(q, n);
    // psi^n = -1, psi^2n = 1, and no smaller power of two order.
    EXPECT_EQ(q.powMod(psi, n), qv - 1);
    EXPECT_EQ(q.powMod(psi, 2 * n), 1u);
    EXPECT_NE(q.powMod(psi, n / 2), qv - 1);
}

} // namespace
} // namespace hydra
