/**
 * @file
 * Task-mapping tests: work conservation, deadlock freedom, aggregation
 * patterns (Fig. 2 broadcast waves, tree reductions), Alg. 1 polynomial
 * splitting, and Fig. 3 bootstrap mapping.
 */

#include <gtest/gtest.h>

#include "sched/mapping.hh"
#include "sync/executor.hh"

namespace hydra {
namespace {

struct MapperFixture
{
    explicit MapperFixture(size_t cards, bool host_net = false)
        : cluster{cards <= 8 ? 1 : (cards + 7) / 8,
                  cards <= 8 ? cards : 8},
          cost(FpgaParams{}, size_t{1} << 16, 4)
    {
        if (host_net)
            net = std::make_unique<HostMediatedNetwork>(HostNetParams{},
                                                        cluster);
        else
            net = std::make_unique<SwitchedNetwork>(NetParams{}, cluster);
        mapper = std::make_unique<StepMapper>(cost, *net,
                                              cluster.totalCards(), 15);
        executor = std::make_unique<ClusterExecutor>(cluster, *net);
    }

    RunStats
    runStep(const Step& s)
    {
        Program p = mapper->mapStep(s);
        return executor->run(p);
    }

    ClusterConfig cluster;
    OpCostModel cost;
    std::unique_ptr<NetworkModel> net;
    std::unique_ptr<StepMapper> mapper;
    std::unique_ptr<ClusterExecutor> executor;
};

Step
convStep(size_t par = 512)
{
    return Step{ProcKind::ConvBN, "conv", par, convBnMix(), 12,
                AggKind::BroadcastEach, 0, 1.0, 16};
}

Step
fcStep(size_t par = 1511)
{
    return Step{ProcKind::FC, "fc", par, fcMix(), 12,
                AggKind::ReduceTree, 0, 1.0, 1};
}

Step
reluStep(size_t par)
{
    return Step{ProcKind::NonLinear, "relu", par, nonLinearMix(), 10,
                AggKind::BroadcastEach, 15, 1.0, 8};
}

Step
bootStep(size_t count)
{
    return Step{ProcKind::Bootstrap, "boot", count, OpMix{}, 18,
                AggKind::None, 0, 1.0, count};
}

class CardCountTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(CardCountTest, ConvMappingRunsWithoutDeadlock)
{
    MapperFixture f(GetParam());
    RunStats st = f.runStep(convStep());
    EXPECT_GT(st.makespan, 0u);
}

TEST_P(CardCountTest, WorkIsConserved)
{
    // Total compute time across cards must equal units x unit latency,
    // independent of the card count (plus aggregation HAdds).
    size_t cards = GetParam();
    MapperFixture f(cards);
    Step s = convStep(512);
    Tick unit = f.cost.latency(f.cost.mixCost(s.perUnit, s.limbs));
    RunStats st = f.runStep(s);
    Tick busy = 0;
    for (Tick t : st.computeBusy)
        busy += t;
    EXPECT_EQ(busy, unit * 512);
}

TEST_P(CardCountTest, MoreCardsNotSlower)
{
    size_t cards = GetParam();
    if (cards == 1)
        GTEST_SKIP();
    MapperFixture one(1);
    MapperFixture many(cards);
    Step s = convStep(1024);
    EXPECT_LT(many.runStep(s).makespan, one.runStep(s).makespan);
}

INSTANTIATE_TEST_SUITE_P(Cards, CardCountTest,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 64));

TEST(Mapping, ConvBroadcastDeliversToEveryCard)
{
    size_t cards = 8;
    MapperFixture f(cards);
    Step s = convStep(64);
    Program p = f.mapper->mapStep(s);
    // Every card posts receives for the other cards' outputs.
    for (size_t c = 0; c < cards; ++c) {
        size_t recvs = 0, sends = 0;
        for (const auto& t : p.cards[c].comm) {
            if (t.kind == CommTask::Kind::Recv)
                ++recvs;
            else
                ++sends;
        }
        EXPECT_GT(recvs, 0u) << "card " << c;
        EXPECT_GT(sends, 0u) << "card " << c;
    }
    RunStats st = f.executor->run(p);
    // outputCts ciphertexts broadcast to 7 receivers each.
    EXPECT_EQ(st.netBytes,
              16ull * f.cost.ciphertextBytes(12) * (cards - 1));
}

TEST(Mapping, ReduceTreeUsesLogRounds)
{
    size_t cards = 8;
    MapperFixture f(cards);
    Step s = fcStep();
    Program p = f.mapper->mapStep(s);
    // Tree reduction: 7 point-to-point sends + final broadcast.
    size_t sends = 0, bcasts = 0;
    for (const auto& card : p.cards) {
        for (const auto& t : card.comm) {
            if (t.kind != CommTask::Kind::Send)
                continue;
            if (t.peer == kBroadcast)
                ++bcasts;
            else
                ++sends;
        }
    }
    EXPECT_EQ(sends, cards - 1);
    EXPECT_EQ(bcasts, 1u);
    RunStats st = f.executor->run(p);
    EXPECT_GT(st.makespan, 0u);
}

TEST(Mapping, NonLinearUsesTreeWhenUnitsBelowCards)
{
    MapperFixture f(8);
    // 2 evaluations on 8 cards: each gets a 4-card Alg. 1 group that
    // exchanges sub-results (CMult on several cards).
    Program p = f.mapper->mapStep(reluStep(2));
    size_t active_cards = 0;
    for (const auto& card : p.cards)
        if (!card.compute.empty())
            ++active_cards;
    EXPECT_GT(active_cards, 2u); // more cards engaged than evaluations
    RunStats st = f.executor->run(p);
    EXPECT_GT(st.makespan, 0u);
}

TEST(Mapping, NonLinearDataParallelWhenUnitsCoverCards)
{
    MapperFixture f(8);
    Program p = f.mapper->mapStep(reluStep(64));
    for (const auto& card : p.cards)
        EXPECT_FALSE(card.compute.empty());
    RunStats st = f.executor->run(p);
    EXPECT_GT(st.makespan, 0u);
}

TEST(Mapping, PolyTreeDistributesCMultLoad)
{
    // One degree-59 evaluation via Alg. 1 on 8 cards: the CMult-heavy
    // work spreads over several cards, so no card carries more than
    // ~half of the single-card compute time.
    MapperFixture f8(8);
    MapperFixture f1(1);
    Step s = reluStep(1);
    s.polyDegree = 59;
    // The single-card path prices the whole polynomial with the
    // degree-based formula; compare per-card busy time, which is what
    // Alg. 1 balances (the end-to-end makespan additionally depends on
    // the compute/transfer latency ratio of the platform).
    RunStats st8 = f8.runStep(s);
    Tick busiest = st8.maxComputeBusy();
    Tick total8 = 0;
    size_t active = 0;
    for (Tick t : st8.computeBusy) {
        total8 += t;
        if (t)
            ++active;
    }
    EXPECT_GE(active, 4u);
    EXPECT_LT(busiest, total8); // genuinely distributed
}

TEST(Mapping, PolyTreeWinsWhenTransfersAreCheap)
{
    // With a fast interconnect (compute >> transfer), growing the
    // Alg. 1 group shortens one degree-59 evaluation end to end, as in
    // Fig. 3(a).  Comparing 8- vs 2-card groups keeps the pricing of
    // the polynomial identical on both sides.
    NetParams fast;
    fast.linkBytesPerSec = 1e13;
    fast.switchLatency = 0;
    fast.dmaConfigLatency = 0;
    OpCostModel cost(FpgaParams{}, size_t{1} << 16, 4);

    auto run_group = [&](size_t cards) {
        ClusterConfig cfg{1, cards};
        SwitchedNetwork net(fast, cfg);
        StepMapper mapper(cost, net, cards, 15);
        ClusterExecutor ex(cfg, net);
        Step s = reluStep(1);
        s.polyDegree = 59;
        return ex.run(mapper.mapStep(s)).makespan;
    };
    EXPECT_LT(run_group(8), run_group(2));
}

TEST(Mapping, BootstrapDataParallelWhenManyCts)
{
    MapperFixture f(8);
    Program p = f.mapper->mapStep(bootStep(32));
    // 32 boots on 8 cards: purely local, no communication.
    for (const auto& card : p.cards) {
        EXPECT_TRUE(card.comm.empty());
        EXPECT_FALSE(card.compute.empty());
    }
}

TEST(Mapping, BootstrapGroupMappingWhenFewCts)
{
    MapperFixture f(8);
    Program p = f.mapper->mapStep(bootStep(2));
    // 2 boots on 8 cards: 4-card groups communicate (DFT aggregation).
    size_t comm_tasks = 0;
    for (const auto& card : p.cards)
        comm_tasks += card.comm.size();
    EXPECT_GT(comm_tasks, 0u);
    RunStats st = f.executor->run(p);
    EXPECT_GT(st.makespan, 0u);
}

TEST(Mapping, BootstrapScalesAcrossGroups)
{
    Step s = bootStep(2);
    MapperFixture f1(1);
    MapperFixture f8(8);
    Tick t1 = f1.runStep(s).makespan;
    Tick t8 = f8.runStep(s).makespan;
    EXPECT_LT(t8, t1);
}

TEST(Mapping, HostMediatedNetworkStillCompletes)
{
    MapperFixture f(8, /*host_net=*/true);
    for (const Step& s : {convStep(128), fcStep(256), reluStep(4),
                          bootStep(2)}) {
        RunStats st = f.runStep(s);
        EXPECT_GT(st.makespan, 0u) << s.name;
    }
}

TEST(Mapping, HydraOverlapsCommBetterThanFab)
{
    Step s = convStep(1024);
    MapperFixture hydra(8, false);
    MapperFixture fab(8, true);
    RunStats sh = hydra.runStep(s);
    RunStats sf = fab.runStep(s);
    double hydra_comm = static_cast<double>(sh.commOverhead()) /
                        static_cast<double>(sh.makespan);
    double fab_comm = static_cast<double>(sf.commOverhead()) /
                      static_cast<double>(sf.makespan);
    EXPECT_LT(hydra_comm, fab_comm);
}

TEST(Mapping, BootstrapLocalTimeGrowsWithLimbs)
{
    MapperFixture f(1);
    EXPECT_LT(f.mapper->bootstrapLocalTime(8),
              f.mapper->bootstrapLocalTime(20));
}

} // namespace
} // namespace hydra
