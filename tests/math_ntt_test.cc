/**
 * @file
 * NTT round-trip, linearity and negacyclic convolution-theorem tests.
 */

#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "math/ntt.hh"
#include "math/primes.hh"

namespace hydra {
namespace {

/** Schoolbook negacyclic convolution in Z_q[X]/(X^n + 1). */
std::vector<u64>
negacyclicMul(const std::vector<u64>& a, const std::vector<u64>& b,
              const Modulus& q)
{
    size_t n = a.size();
    std::vector<u64> out(n, 0);
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = 0; j < n; ++j) {
            u64 prod = q.mulMod(a[i], b[j]);
            size_t k = i + j;
            if (k < n)
                out[k] = q.addMod(out[k], prod);
            else
                out[k - n] = q.subMod(out[k - n], prod);
        }
    }
    return out;
}

std::vector<u64>
randomPoly(size_t n, const Modulus& q, std::mt19937_64& rng)
{
    std::vector<u64> a(n);
    for (auto& x : a)
        x = rng() % q.value();
    return a;
}

class NttParamTest
    : public ::testing::TestWithParam<std::tuple<size_t, int>>
{
  protected:
    void
    SetUp() override
    {
        n_ = std::get<0>(GetParam());
        int bits = std::get<1>(GetParam());
        q_ = Modulus(nttPrimes(n_, bits, 1)[0]);
        table_ = std::make_unique<NttTable>(n_, q_);
    }

    size_t n_;
    Modulus q_;
    std::unique_ptr<NttTable> table_;
};

TEST_P(NttParamTest, RoundTrip)
{
    std::mt19937_64 rng(42);
    auto a = randomPoly(n_, q_, rng);
    auto saved = a;
    table_->forward(a);
    EXPECT_NE(a, saved); // transform actually does something
    table_->inverse(a);
    EXPECT_EQ(a, saved);
}

TEST_P(NttParamTest, Linearity)
{
    std::mt19937_64 rng(43);
    auto a = randomPoly(n_, q_, rng);
    auto b = randomPoly(n_, q_, rng);
    std::vector<u64> sum(n_);
    for (size_t i = 0; i < n_; ++i)
        sum[i] = q_.addMod(a[i], b[i]);

    table_->forward(a);
    table_->forward(b);
    table_->forward(sum);
    for (size_t i = 0; i < n_; ++i)
        EXPECT_EQ(sum[i], q_.addMod(a[i], b[i]));
}

TEST_P(NttParamTest, ConvolutionTheorem)
{
    if (n_ > 256)
        GTEST_SKIP() << "schoolbook reference too slow";
    std::mt19937_64 rng(44);
    auto a = randomPoly(n_, q_, rng);
    auto b = randomPoly(n_, q_, rng);
    auto expect = negacyclicMul(a, b, q_);

    table_->forward(a);
    table_->forward(b);
    std::vector<u64> c(n_);
    for (size_t i = 0; i < n_; ++i)
        c[i] = q_.mulMod(a[i], b[i]);
    table_->inverse(c);
    EXPECT_EQ(c, expect);
}

TEST_P(NttParamTest, MonomialShiftWrapsWithSign)
{
    // X^(n-1) * X = X^n = -1 in the negacyclic ring.
    std::vector<u64> a(n_, 0), b(n_, 0);
    a[n_ - 1] = 1;
    b[1] = 1;
    table_->forward(a);
    table_->forward(b);
    std::vector<u64> c(n_);
    for (size_t i = 0; i < n_; ++i)
        c[i] = q_.mulMod(a[i], b[i]);
    table_->inverse(c);
    EXPECT_EQ(c[0], q_.value() - 1);
    for (size_t i = 1; i < n_; ++i)
        EXPECT_EQ(c[i], 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, NttParamTest,
    ::testing::Combine(::testing::Values(16, 64, 256, 1024, 4096),
                       ::testing::Values(30, 45, 59)));

TEST_P(NttParamTest, Radix4MatchesRadix2)
{
    std::mt19937_64 rng(45);
    auto a = randomPoly(n_, q_, rng);
    auto b = a;
    table_->forward(a);
    table_->forwardRadix4(b.data());
    EXPECT_EQ(a, b);
}

TEST(BitReverse, SmallCases)
{
    EXPECT_EQ(bitReverse(0b001, 3), 0b100u);
    EXPECT_EQ(bitReverse(0b110, 3), 0b011u);
    EXPECT_EQ(bitReverse(5, 4), 0b1010u);
    for (u64 v = 0; v < 64; ++v)
        EXPECT_EQ(bitReverse(bitReverse(v, 6), 6), v);
}

} // namespace
} // namespace hydra
