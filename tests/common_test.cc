/**
 * @file
 * Tests of the common utilities: table rendering, formatting helpers,
 * deterministic RNG, and string formatting.
 */

#include <gtest/gtest.h>

#include "common/logging.hh"
#include "common/rng.hh"
#include "common/table.hh"

namespace hydra {
namespace {

TEST(TextTable, RendersAlignedColumns)
{
    TextTable t("caption");
    t.header({"a", "bbbb", "c"});
    t.addRow({"1", "2", "3"});
    t.addRow({"10", "20", "30"});
    std::string out = t.render();
    EXPECT_NE(out.find("caption"), std::string::npos);
    EXPECT_NE(out.find("bbbb"), std::string::npos);
    // Each line ends without trailing separators and rows align.
    size_t header_pos = out.find("a");
    size_t row_pos = out.find("1");
    ASSERT_NE(header_pos, std::string::npos);
    ASSERT_NE(row_pos, std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TextTable, SeparatorRows)
{
    TextTable t;
    t.header({"x"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    std::string out = t.render();
    // Three dashed lines: under header plus explicit separator.
    size_t dashes = 0;
    for (size_t pos = 0; (pos = out.find("----", pos)) != std::string::npos;
         pos += 4)
        ++dashes;
    EXPECT_GE(dashes, 2u);
}

TEST(TextTable, MismatchedRowDies)
{
    TextTable t;
    t.header({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(Formatting, Helpers)
{
    EXPECT_EQ(fmtF(3.14159, 2), "3.14");
    EXPECT_EQ(fmtF(2.0, 0), "2");
    EXPECT_EQ(fmtX(2.5), "2.5x");
    EXPECT_EQ(fmtX(12.345, 2), "12.35x");
    EXPECT_EQ(fmtPct(0.125, 1), "12.5%");
    EXPECT_EQ(fmtGrouped(0), "0");
    EXPECT_EQ(fmtGrouped(999), "999");
    EXPECT_EQ(fmtGrouped(1000), "1,000");
    EXPECT_EQ(fmtGrouped(1234567), "1,234,567");
}

TEST(Strf, FormatsLikePrintf)
{
    EXPECT_EQ(strf("x=%d y=%s", 42, "hi"), "x=42 y=hi");
    EXPECT_EQ(strf("%05.1f", 2.25), "002.2");
    EXPECT_EQ(strf("empty"), "empty");
    // Long strings survive the two-pass vsnprintf.
    std::string big(5000, 'a');
    EXPECT_EQ(strf("%s", big.c_str()).size(), 5000u);
}

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(123), b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.uniformU64(1000000), b.uniformU64(1000000));
}

TEST(Rng, TernaryIsBalancedAndBounded)
{
    Rng rng(7);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 30000; ++i) {
        int t = rng.ternary();
        ASSERT_GE(t, -1);
        ASSERT_LE(t, 1);
        ++counts[t + 1];
    }
    for (int c : counts) {
        EXPECT_GT(c, 9000);
        EXPECT_LT(c, 11000);
    }
}

TEST(Rng, SmallErrorIsCentered)
{
    Rng rng(8);
    double sum = 0, sum_sq = 0;
    int n = 20000;
    for (int i = 0; i < n; ++i) {
        int e = rng.smallError(3.2);
        sum += e;
        sum_sq += static_cast<double>(e) * e;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.1);
    EXPECT_NEAR(std::sqrt(sum_sq / n), 3.2, 0.15);
}

TEST(Rng, UniformRealWithinBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        double v = rng.uniformReal(-2.5, 1.5);
        EXPECT_GE(v, -2.5);
        EXPECT_LT(v, 1.5);
    }
    auto vec = rng.realVector(64, 0.0, 1.0);
    EXPECT_EQ(vec.size(), 64u);
}

} // namespace
} // namespace hydra
