/**
 * @file
 * Serving front-end tests: spec parsing, deterministic request
 * generation, and the bounded priority/fairness admission queue.
 */

#include <gtest/gtest.h>

#include "serve/queue.hh"
#include "serve/workload_gen.hh"

namespace hydra {
namespace {

Request
req(uint64_t id, size_t tenant, size_t workload, int priority,
    Tick arrival)
{
    Request r;
    r.id = id;
    r.tenant = tenant;
    r.workload = workload;
    r.priority = priority;
    r.arrival = arrival;
    return r;
}

TEST(ServeSpec, ParsesFullGrammar)
{
    ServeSpec s = ServeSpec::parse(
        "seed=9,duration=12.5,queue=7,requests=100,"
        "tenant=vision:open:resnet18:2.5,"
        "tenant=pool:closed:bert:3:0.25,"
        "prio=vision:0,at=1.5:replay:opt,group=resnet18:4:2");
    EXPECT_EQ(s.seed, 9u);
    EXPECT_DOUBLE_EQ(s.durationSeconds, 12.5);
    EXPECT_EQ(s.queueCapacity, 7u);
    EXPECT_EQ(s.maxRequests, 100u);
    ASSERT_EQ(s.tenants.size(), 3u); // trace tenant auto-declared
    EXPECT_EQ(s.tenants[0].name, "vision");
    EXPECT_EQ(s.tenants[0].mode, ArrivalMode::Open);
    EXPECT_DOUBLE_EQ(s.tenants[0].rate, 2.5);
    EXPECT_EQ(s.tenants[0].priority, 0);
    EXPECT_EQ(s.tenants[1].mode, ArrivalMode::Closed);
    EXPECT_EQ(s.tenants[1].clients, 3u);
    EXPECT_DOUBLE_EQ(s.tenants[1].thinkSeconds, 0.25);
    EXPECT_EQ(s.tenants[2].name, "replay");
    EXPECT_EQ(s.tenants[2].mode, ArrivalMode::Trace);
    ASSERT_EQ(s.trace.size(), 1u);
    EXPECT_EQ(s.trace[0].workload, "opt");
    ASSERT_EQ(s.groups.size(), 1u);
    EXPECT_EQ(s.groups[0].cards, 4u);
    EXPECT_EQ(s.groups[0].minCards, 2u);

    // The workload table lists each name once, in first-use order.
    std::vector<std::string> table = s.workloadTable();
    ASSERT_EQ(table.size(), 3u);
    EXPECT_EQ(table[0], "resnet18");
    EXPECT_EQ(table[1], "bert");
    EXPECT_EQ(table[2], "opt");
}

TEST(WorkloadGen, SameSeedSameStream)
{
    ServeSpec s = ServeSpec::parse(
        "seed=3,duration=20,tenant=a:open:resnet18:2,"
        "tenant=b:open:bert:1");
    std::vector<std::string> table = s.workloadTable();
    std::vector<Request> x = WorkloadGen(s, table).initialArrivals();
    std::vector<Request> y = WorkloadGen(s, table).initialArrivals();
    ASSERT_EQ(x.size(), y.size());
    ASSERT_FALSE(x.empty());
    for (size_t i = 0; i < x.size(); ++i) {
        EXPECT_EQ(x[i].id, y[i].id);
        EXPECT_EQ(x[i].arrival, y[i].arrival);
        EXPECT_EQ(x[i].tenant, y[i].tenant);
    }
    // Sorted by arrival, ids in that order, all inside the horizon.
    for (size_t i = 1; i < x.size(); ++i) {
        EXPECT_LE(x[i - 1].arrival, x[i].arrival);
        EXPECT_EQ(x[i].id, x[i - 1].id + 1);
    }
    EXPECT_LT(x.back().arrival, s.durationTicks());

    ServeSpec other = s;
    other.seed = 4;
    std::vector<Request> z = WorkloadGen(other, table).initialArrivals();
    bool differs = z.size() != x.size();
    for (size_t i = 0; !differs && i < x.size(); ++i)
        differs = z[i].arrival != x[i].arrival;
    EXPECT_TRUE(differs);
}

TEST(WorkloadGen, ClosedLoopThinksThenStops)
{
    ServeSpec s = ServeSpec::parse(
        "seed=1,duration=10,tenant=pool:closed:resnet18:2:0.5");
    std::vector<std::string> table = s.workloadTable();
    WorkloadGen gen(s, table);
    std::vector<Request> first = gen.initialArrivals();
    ASSERT_EQ(first.size(), 2u); // one per client, at t=0
    EXPECT_EQ(first[0].arrival, 0u);

    auto next = gen.closedArrival(0, secondsToTicks(2.0));
    ASSERT_TRUE(next.has_value());
    EXPECT_EQ(next->arrival, secondsToTicks(2.5));

    // Past the horizon the pool winds down.
    EXPECT_FALSE(gen.closedArrival(0, secondsToTicks(9.8)).has_value());
}

TEST(AdmissionQueue, ShedsWhenFull)
{
    AdmissionQueue q(2);
    EXPECT_TRUE(q.offer(req(1, 0, 0, 1, 0)));
    EXPECT_TRUE(q.offer(req(2, 0, 0, 1, 1)));
    EXPECT_TRUE(q.full());
    EXPECT_FALSE(q.offer(req(3, 0, 0, 1, 2)));
    EXPECT_EQ(q.depth(), 2u);
}

TEST(AdmissionQueue, PriorityThenFairnessThenFifo)
{
    AdmissionQueue q(16);
    // tenant 0 has been served a lot; tenant 1 not at all.
    std::vector<uint64_t> served = {5, 0};
    q.offer(req(1, 0, 0, 1, 0));
    q.offer(req(2, 1, 0, 1, 1));
    q.offer(req(3, 0, 0, 0, 2)); // higher tier (0 beats 1)

    auto a = q.popFor(0, served);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->id, 3u); // priority wins over arrival order

    auto b = q.popFor(0, served);
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(b->id, 2u); // least-served tenant wins inside a tier

    auto c = q.popFor(0, served);
    ASSERT_TRUE(c.has_value());
    EXPECT_EQ(c->id, 1u);
    EXPECT_FALSE(q.popFor(0, served).has_value());
}

TEST(AdmissionQueue, PopAndDrainAreWorkloadScoped)
{
    AdmissionQueue q(16);
    std::vector<uint64_t> served = {0};
    q.offer(req(1, 0, 7, 1, 0));
    q.offer(req(2, 0, 8, 1, 1));
    q.offer(req(3, 0, 7, 1, 2));

    EXPECT_FALSE(q.popFor(9, served).has_value());
    auto a = q.popFor(8, served);
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->id, 2u);

    std::vector<Request> flushed = q.drainWorkload(7);
    ASSERT_EQ(flushed.size(), 2u);
    EXPECT_EQ(flushed[0].id, 1u);
    EXPECT_EQ(flushed[1].id, 3u);
    EXPECT_TRUE(q.empty());
}

} // namespace
} // namespace hydra
