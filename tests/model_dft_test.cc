/**
 * @file
 * Eq. 1 DFT performance model and Radix/bs optimizer tests (Table V).
 */

#include <gtest/gtest.h>

#include "baselines/prototypes.hh"
#include "model/dft_model.hh"

namespace hydra {
namespace {

DftOpTimes
unitTimes()
{
    DftOpTimes t;
    t.rot = 1.0;
    t.pmult = 0.2;
    t.hadd = 0.05;
    t.com = 0.5;
    return t;
}

TEST(DftModel, GsPerNodeClampsToOne)
{
    DftLevelPlan p{8, 4};
    EXPECT_EQ(p.gsPerNode(1), 4u);   // 16 / 4
    EXPECT_EQ(p.gsPerNode(4), 1u);   // 16 / 16
    EXPECT_EQ(p.gsPerNode(64), 1u);  // clamped
}

TEST(DftModel, LevelTimeMatchesFormula)
{
    DftOpTimes t = unitTimes();
    DftLevelPlan p{16, 4}; // gs = 32/4 = 8 on one card
    double expect = 4 * t.rot +
                    8.0 * (4 * t.pmult + 3 * t.hadd + t.rot) +
                    7.0 * t.hadd; // no comm on 1 card
    EXPECT_NEAR(dftLevelTime(p, 1, t), expect, 1e-12);
}

TEST(DftModel, CommunicationTermOnlyWithMultipleCards)
{
    DftOpTimes t = unitTimes();
    DftLevelPlan p{16, 4};
    double single = dftLevelTime(p, 1, t);
    DftOpTimes t_free = t;
    t_free.com = 0.0;
    // With com = 0, multi-card is never slower than its own com > 0.
    EXPECT_LT(dftLevelTime(p, 8, t_free), dftLevelTime(p, 8, t));
    EXPECT_GT(single, 0.0);
}

TEST(DftModel, MoreCardsNeverSlowerWithFreeComm)
{
    DftOpTimes t = unitTimes();
    t.com = 0.0;
    DftLevelPlan p{64, 2};
    double prev = dftLevelTime(p, 1, t);
    for (size_t cards : {2, 4, 8, 16}) {
        double cur = dftLevelTime(p, cards, t);
        EXPECT_LE(cur, prev + 1e-12);
        prev = cur;
    }
}

class OptimizerTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(OptimizerTest, RadixCompositionCoversSlots)
{
    size_t log_slots = GetParam();
    DftOpTimes t = unitTimes();
    for (size_t cards : {1, 8, 64}) {
        DftPlan plan = optimizeDftPlan(3, log_slots, cards, t);
        ASSERT_EQ(plan.levels.size(), 3u);
        size_t log_sum = 0;
        for (const auto& lvl : plan.levels) {
            EXPECT_GE(lvl.radix, 2u);
            size_t lg = 0;
            while ((size_t{1} << lg) < lvl.radix)
                ++lg;
            EXPECT_EQ(size_t{1} << lg, lvl.radix); // power of two
            log_sum += lg;
            // bs must be a power of two not exceeding 2 * radix.
            EXPECT_LE(lvl.bs, 2 * lvl.radix);
        }
        EXPECT_EQ(log_sum, log_slots);
    }
}

TEST_P(OptimizerTest, OptimalBeatsAlternatives)
{
    size_t log_slots = GetParam();
    DftOpTimes t = unitTimes();
    DftPlan best = optimizeDftPlan(3, log_slots, 8, t);
    double best_time = dftTime(best, 8, t);
    // A deliberately skewed plan must not beat the optimum.
    DftPlan skew;
    skew.levels = {{size_t{1} << (log_slots - 2), 1},
                   {2, 1},
                   {2, 1}};
    EXPECT_LE(best_time, dftTime(skew, 8, t) + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(SlotCounts, OptimizerTest,
                         ::testing::Values(12, 13, 14, 15));

TEST(DftModel, BabyStepsShrinkWithMoreCards)
{
    // Table V's headline shape: Hydra-L picks smaller bs than Hydra-S.
    PrototypeSpec spec = hydraSSpec();
    OpCostModel cost(spec.fpga, size_t{1} << 16, spec.dnum);
    SwitchedNetwork net(NetParams{}, hydraL());
    DftOpTimes t = DftOpTimes::fromCostModel(cost, net, 18);

    for (size_t log_slots = 12; log_slots <= 15; ++log_slots) {
        DftPlan s = optimizeDftPlan(3, log_slots, 1, t);
        DftPlan l = optimizeDftPlan(3, log_slots, 64, t);
        size_t bs_s = 0, bs_l = 0;
        for (size_t i = 0; i < 3; ++i) {
            bs_s += s.levels[i].bs;
            bs_l += l.levels[i].bs;
        }
        EXPECT_LT(bs_l, bs_s) << "logSlots " << log_slots;
    }
}

TEST(DftModel, SingleCardMatchesPaperAtLogSlots12)
{
    // Paper Table V, Hydra-S, logSlots 12: Radix (16,16,16), bs (4,4,4).
    PrototypeSpec spec = hydraSSpec();
    OpCostModel cost(spec.fpga, size_t{1} << 16, spec.dnum);
    SwitchedNetwork net(NetParams{}, hydraS());
    DftOpTimes t = DftOpTimes::fromCostModel(cost, net, 18);
    DftPlan plan = optimizeDftPlan(3, 12, 1, t);
    for (const auto& lvl : plan.levels)
        EXPECT_EQ(lvl.radix, 16u);
}

TEST(DftModel, FewerLevelsCostMoreTime)
{
    // The Section III-B trade-off: squeezing the DFT into fewer levels
    // (bigger radices) raises its time under Eq. 1.
    DftOpTimes t = unitTimes();
    double t2 = dftTime(optimizeDftPlan(2, 15, 8, t), 8, t);
    double t4 = dftTime(optimizeDftPlan(4, 15, 8, t), 8, t);
    EXPECT_GT(t2, t4);
}

TEST(DftModel, DescribeFormatsPlan)
{
    DftPlan p;
    p.levels = {{16, 4}, {32, 8}};
    EXPECT_EQ(p.describe(), "(16,32) bs=(4,8)");
}

} // namespace
} // namespace hydra
