/**
 * @file
 * Schedule-compiler tests: the plan -> lower -> optimize pipeline must
 * be execution-equivalent to the pre-pipeline direct mapper (golden
 * makespans for every registered machine x workload pair), the Safe
 * pass level must be tick-neutral (RunStats fingerprints), Aggressive
 * output must stay statically valid and executable (unit + fuzz), and
 * the shared ProgramCache must hit on repeated compiles while keying
 * on step content, not step names.
 */

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/prototypes.hh"
#include "common/rng.hh"
#include "sched/progcache.hh"
#include "sync/executor.hh"

namespace hydra {
namespace {

/**
 * Final ticks of every registered (machine, workload) pair, captured
 * on the direct StepMapper::mapStep path before the compiler split.
 * The pipeline (and its Safe pass level) must reproduce these exactly.
 */
struct Golden
{
    const char* machine;
    const char* workload;
    uint64_t makespan;
};

const Golden kGoldens[] = {
    {"hydra-s", "resnet18", 52691418458776ull},
    {"hydra-s", "resnet50", 655834251580152ull},
    {"hydra-s", "bert", 408704936259736ull},
    {"hydra-s", "opt", 17637541280413872ull},
    {"hydra-s", "resnet20", 2220523528524ull},
    {"hydra-m", "resnet18", 6857565190612ull},
    {"hydra-m", "resnet50", 82584461339718ull},
    {"hydra-m", "bert", 53122397900053ull},
    {"hydra-m", "opt", 2214560898140687ull},
    {"hydra-m", "resnet20", 1040746374372ull},
    {"hydra-l", "resnet18", 2931152948723ull},
    {"hydra-l", "resnet50", 12441962309636ull},
    {"hydra-l", "bert", 9928055869936ull},
    {"hydra-l", "opt", 282793641201986ull},
    {"hydra-l", "resnet20", 4074712084371ull},
    {"fab-s", "resnet18", 152047346888172ull},
    {"fab-s", "resnet50", 1940709169586428ull},
    {"fab-s", "bert", 1213166176400924ull},
    {"fab-s", "opt", 52860947277381752ull},
    {"fab-s", "resnet20", 6303837625832ull},
    {"fab-m", "resnet18", 22672157922188ull},
    {"fab-m", "resnet50", 258872566044188ull},
    {"fab-m", "bert", 159294942125964ull},
    {"fab-m", "opt", 6640184078890908ull},
    {"fab-m", "resnet20", 4427843626920ull},
    {"fab-l", "resnet18", 56571113009520ull},
    {"fab-l", "resnet50", 286750963399388ull},
    {"fab-l", "bert", 53553936749234ull},
    {"fab-l", "opt", 945129268191504ull},
    {"fab-l", "resnet20", 43111632301050ull},
    {"poseidon", "resnet18", 78696081052797ull},
    {"poseidon", "resnet50", 937303258235333ull},
    {"poseidon", "bert", 545952360060732ull},
    {"poseidon", "opt", 23013800065115272ull},
    {"poseidon", "resnet20", 3367559216914ull},
};

TEST(CompileGolden, EveryMachineWorkloadPairKeepsItsTicks)
{
    for (const Golden& g : kGoldens) {
        InferenceRunner runner(machineByName(g.machine));
        InferenceResult res = runner.run(workloadByName(g.workload));
        ASSERT_TRUE(res.ok()) << g.machine << "/" << g.workload;
        EXPECT_EQ(res.total.makespan, g.makespan)
            << g.machine << "/" << g.workload;
    }
}

/** Compile/executor fixture for one (machine, workload). */
struct Rig
{
    PrototypeSpec spec;
    WorkloadModel wl;
    OpCostModel cost;
    std::unique_ptr<NetworkModel> net;
    ClusterExecutor ex;

    Rig(const char* machine, const char* workload)
        : spec(machineByName(machine)), wl(workloadByName(workload)),
          cost(spec.fpga, size_t{1} << 16, spec.dnum),
          net(spec.makeNetwork()), ex(spec.cluster, *net)
    {
    }

    CompiledStep
    compile(const Step& step, OptLevel level)
    {
        return compileStep(cost, *net, spec.cluster.totalCards(),
                           wl.logSlots, spec.mapping, step, level);
    }
};

TEST(CompilePipeline, SafeLevelIsTickNeutralPerStep)
{
    for (const char* machine : {"hydra-m", "fab-m", "poseidon"}) {
        Rig rig(machine, "resnet20");
        for (const auto& step : rig.wl.steps) {
            RunStats none =
                rig.ex.run(rig.compile(step, OptLevel::None).program);
            RunStats safe =
                rig.ex.run(rig.compile(step, OptLevel::Safe).program);
            EXPECT_EQ(none.fingerprint(), safe.fingerprint())
                << machine << " step " << step.name;
        }
    }
}

TEST(CompilePipeline, MapStepEqualsPlanThenLower)
{
    for (const char* machine : {"hydra-m", "fab-m"}) {
        Rig rig(machine, "resnet20");
        StepMapper mapper(rig.cost, *rig.net,
                          rig.spec.cluster.totalCards(), rig.wl.logSlots,
                          rig.spec.mapping);
        for (const auto& step : rig.wl.steps) {
            Program direct = mapper.mapStep(step);
            Program staged = lowerPlan(mapper.planStep(step), rig.cost,
                                       *rig.net, rig.spec.mapping);
            EXPECT_TRUE(countProgram(direct) == countProgram(staged));
            EXPECT_EQ(rig.ex.run(direct).fingerprint(),
                      rig.ex.run(staged).fingerprint())
                << machine << " step " << step.name;
        }
    }
}

TEST(CompilePipeline, AggressiveOutputValidatesAndExecutes)
{
    for (const char* machine : {"hydra-m", "fab-m"}) {
        Rig rig(machine, "resnet20");
        for (const auto& step : rig.wl.steps) {
            CompiledStep cs = rig.compile(step, OptLevel::Aggressive);
            EXPECT_TRUE(cs.program.validate().empty())
                << machine << " step " << step.name;
            RunResult rr = rig.ex.tryRun(cs.program);
            EXPECT_TRUE(rr.ok()) << rr.error.message;
        }
    }
}

TEST(CompilePipeline, LoweringRebindsMachineModelsOnOnePlan)
{
    // One machine-independent plan, lowered against two different card
    // microarchitectures: the structure (task counts, ids, queues) is
    // identical, only durations and costs re-bind.
    Rig rig("hydra-m", "resnet20");
    StepMapper mapper(rig.cost, *rig.net, rig.spec.cluster.totalCards(),
                      rig.wl.logSlots, rig.spec.mapping);
    PrototypeSpec fast = rig.spec;
    fast.fpga.clockHz *= 2.0;
    OpCostModel fastCost(fast.fpga, size_t{1} << 16, fast.dnum);

    bool some_faster = false;
    for (const auto& step : rig.wl.steps) {
        LogicalPlan plan = mapper.planStep(step);
        Program base = lowerPlan(plan, rig.cost, *rig.net,
                                 rig.spec.mapping);
        Program rebound = lowerPlan(plan, fastCost, *rig.net,
                                    fast.mapping);
        ASSERT_EQ(base.cards.size(), rebound.cards.size());
        for (size_t c = 0; c < base.cards.size(); ++c) {
            ASSERT_EQ(base.cards[c].compute.size(),
                      rebound.cards[c].compute.size());
            for (size_t i = 0; i < base.cards[c].compute.size(); ++i) {
                EXPECT_EQ(base.cards[c].compute[i].id,
                          rebound.cards[c].compute[i].id);
                if (rebound.cards[c].compute[i].duration <
                    base.cards[c].compute[i].duration)
                    some_faster = true;
            }
        }
    }
    EXPECT_TRUE(some_faster);
}

TEST(ProgramCacheTest, SecondRunHitsEveryStep)
{
    ProgramCache& cache = ProgramCache::global();
    cache.clear();
    cache.resetStats();

    InferenceRunner runner(machineByName("hydra-m"));
    WorkloadModel wl = workloadByName("resnet18");
    runner.run(wl);
    ProgramCache::Stats first = cache.stats();
    EXPECT_GT(first.misses, 0u);
    // Repeated identical layers share entries: fewer compiles than
    // steps.
    EXPECT_LT(first.entries, wl.steps.size());
    EXPECT_EQ(first.hits + first.misses, wl.steps.size());

    runner.run(wl);
    ProgramCache::Stats second = cache.stats();
    EXPECT_EQ(second.misses, first.misses);
    EXPECT_EQ(second.hits, first.hits + wl.steps.size());
    EXPECT_GT(second.hitRate(), 0.5);
}

TEST(ProgramCacheTest, RunAndRunJobShareEntries)
{
    ProgramCache& cache = ProgramCache::global();
    cache.clear();
    cache.resetStats();

    PrototypeSpec spec = machineByName("hydra-m");
    InferenceRunner runner(spec);
    WorkloadModel wl = workloadByName("resnet20");
    runner.run(wl);
    ProgramCache::Stats after_run = cache.stats();

    // A whole-machine job group maps to the same sub-spec as run(), so
    // runJob compiles nothing new.
    CardGroup all =
        CardGroup::contiguous(0, spec.cluster.totalCards());
    InferenceResult res = runner.runJob(wl, all, 0);
    ASSERT_TRUE(res.ok());
    ProgramCache::Stats after_job = cache.stats();
    EXPECT_EQ(after_job.misses, after_run.misses);
    EXPECT_EQ(after_job.entries, after_run.entries);
    EXPECT_GE(after_job.hits, after_run.hits + wl.steps.size());
}

TEST(ProgramCacheTest, KeyTracksContentNotName)
{
    PrototypeSpec spec = machineByName("hydra-m");
    WorkloadModel wl = workloadByName("resnet20");
    Step a = wl.steps[0];
    Step b = a;
    b.name = "renamed_step";
    std::string ka = stepCacheKey(spec, spec.cluster, spec.cluster,
                                  size_t{1} << 16, wl.logSlots, a);
    EXPECT_EQ(ka, stepCacheKey(spec, spec.cluster, spec.cluster,
                               size_t{1} << 16, wl.logSlots, b));

    b.limbs += 1;
    EXPECT_NE(ka, stepCacheKey(spec, spec.cluster, spec.cluster,
                               size_t{1} << 16, wl.logSlots, b));

    // Shrunken executing cluster (degraded re-dispatch) re-keys.
    ClusterConfig degraded{1, spec.cluster.totalCards() - 1};
    EXPECT_NE(ka, stepCacheKey(spec, degraded, spec.cluster,
                               size_t{1} << 16, wl.logSlots, a));

    // Pass level re-keys.
    EXPECT_NE(ka, stepCacheKey(spec, spec.cluster, spec.cluster,
                               size_t{1} << 16, wl.logSlots, a,
                               OptLevel::Aggressive));

    // A different machine re-keys even with equal geometry.
    PrototypeSpec other = spec;
    other.fpga.clockHz *= 2.0;
    EXPECT_NE(ka, stepCacheKey(other, other.cluster, other.cluster,
                               size_t{1} << 16, wl.logSlots, a));
}

/** Minimal configurable network for the synthetic pass tests. */
class PassNetwork : public NetworkModel
{
  public:
    explicit PassNetwork(bool overlaps) : overlaps_(overlaps) {}

    std::unique_ptr<NetworkModel>
    clone() const override
    {
        return std::make_unique<PassNetwork>(*this);
    }

    Tick
    transferTime(uint64_t b, size_t, size_t) const override
    {
        return 100 + 3 * b;
    }

    Tick
    broadcastTime(uint64_t b, size_t, size_t) const override
    {
        return 150 + 3 * b;
    }

    Tick setupLatency() const override { return 20; }
    bool overlapsCompute() const override { return overlaps_; }
    Tick stepSyncLatency() const override { return 0; }

  private:
    bool overlaps_;
};

TEST(Passes, CanonicalOrderSortsFreeRunsAndStaysTickNeutral)
{
    ProgramBuilder pb(2);
    uint32_t la = pb.label("a");
    uint32_t lb = pb.label("b");
    // Card 0: b, a, b, a — all dependency-free, one maximal run.
    pb.addCompute(0, 10, OpCost{}, lb);
    pb.addCompute(0, 20, OpCost{}, la);
    pb.addCompute(0, 30, OpCost{}, lb);
    pb.addCompute(0, 40, OpCost{}, la);
    pb.addCompute(1, 5, OpCost{}, la);
    Program prog = pb.take();

    PassNetwork net(true);
    ClusterExecutor ex(ClusterConfig{1, 2}, net);
    uint64_t before = ex.run(prog).fingerprint();

    OptReport report;
    Program opt = optimizeProgram(prog, OptLevel::Safe, true, &report);
    ASSERT_EQ(report.passes.size(), 1u);
    EXPECT_EQ(report.passes[0].pass, "canonical-order");
    EXPECT_GT(report.passes[0].changes, 0u);
    std::vector<uint32_t> labels;
    for (const auto& t : opt.cards[0].compute)
        labels.push_back(t.label);
    EXPECT_EQ(labels, (std::vector<uint32_t>{la, la, lb, lb}));
    EXPECT_EQ(ex.run(opt).fingerprint(), before);
}

TEST(Passes, CanonicalOrderRespectsAnchorsAndWaits)
{
    ProgramBuilder pb(2);
    uint32_t la = pb.label("a");
    uint32_t lb = pb.label("b");
    uint64_t anchor = pb.addCompute(0, 10, OpCost{}, lb);
    uint64_t msg = pb.sendTo(0, 1, 64, anchor);
    pb.addCompute(0, 20, OpCost{}, la);
    pb.addCompute(1, 5, OpCost{}, lb, {msg});
    pb.addCompute(1, 5, OpCost{}, la);
    Program prog = pb.take();

    Program opt = optimizeProgram(prog, OptLevel::Safe, true);
    // The anchored b-task cannot swap with the later a-task, and card
    // 1's waiting task breaks its run: both queues keep their order.
    EXPECT_EQ(opt.cards[0].compute[0].label, lb);
    EXPECT_EQ(opt.cards[1].compute[0].label, lb);
}

TEST(Passes, SafeIsIdentityOnHostMediatedNetworks)
{
    ProgramBuilder pb(1);
    uint32_t lb = pb.label("b");
    uint32_t la = pb.label("a");
    pb.addCompute(0, 10, OpCost{}, lb);
    pb.addCompute(0, 20, OpCost{}, la);
    OptReport report;
    Program opt = optimizeProgram(pb.take(), OptLevel::Safe, false,
                                  &report);
    EXPECT_TRUE(report.passes.empty());
    EXPECT_EQ(opt.cards[0].compute[0].label, lb);
}

TEST(Passes, DeadTransferEliminationDropsUnwaitedZeroByteMsgs)
{
    ProgramBuilder pb(2);
    uint32_t l = pb.label("x");
    uint64_t p = pb.addCompute(0, 10, OpCost{}, l);
    pb.sendTo(0, 1, 0, p);             // dead: zero bytes, never waited
    uint64_t live = pb.sendTo(0, 1, 0, p); // zero bytes but waited
    pb.addCompute(1, 5, OpCost{}, l, {live});
    Program prog = pb.take();

    OptReport report;
    Program opt = optimizeProgram(prog, OptLevel::Aggressive, true,
                                  &report);
    ProgramCounts c = countProgram(opt);
    EXPECT_EQ(c.sends, 1u);
    EXPECT_EQ(c.recvs, 1u);
    EXPECT_TRUE(opt.validate().empty());
    PassNetwork net(true);
    ClusterExecutor ex(ClusterConfig{1, 2}, net);
    EXPECT_TRUE(ex.tryRun(opt).ok());
}

TEST(Passes, BroadcastCoalesceMergesAdjacentSameAnchor)
{
    ProgramBuilder pb(3);
    uint32_t l = pb.label("x");
    uint64_t p = pb.addCompute(0, 10, OpCost{}, l);
    uint64_t m1 = pb.broadcastFrom(0, 100, p);
    uint64_t m2 = pb.broadcastFrom(0, 28, p);
    pb.addCompute(1, 5, OpCost{}, l, {m1, m2});
    pb.addCompute(2, 5, OpCost{}, l, {m2});
    Program prog = pb.take();

    OptReport report;
    Program opt = optimizeProgram(prog, OptLevel::Aggressive, true,
                                  &report);
    ProgramCounts c = countProgram(opt);
    EXPECT_EQ(c.sends, 1u);
    EXPECT_EQ(c.messages, 1u);
    EXPECT_EQ(c.bytes, 128u);
    // Waits on the merged message collapse to the survivor, deduped.
    EXPECT_EQ(opt.cards[1].compute[0].waitMsgs,
              (std::vector<uint64_t>{m1}));
    EXPECT_EQ(opt.cards[2].compute[0].waitMsgs,
              (std::vector<uint64_t>{m1}));
    EXPECT_TRUE(opt.validate().empty());
    PassNetwork net(true);
    ClusterExecutor ex(ClusterConfig{1, 3}, net);
    EXPECT_TRUE(ex.tryRun(opt).ok());
}

TEST(Passes, StallHoistMovesFreeComputeAheadOfWaiters)
{
    ProgramBuilder pb(2);
    uint32_t l = pb.label("x");
    uint64_t p = pb.addCompute(0, 1000, OpCost{}, l);
    uint64_t msg = pb.sendTo(0, 1, 64, p);
    uint64_t waiter = pb.addCompute(1, 5, OpCost{}, l, {msg});
    uint64_t free1 = pb.addCompute(1, 7, OpCost{}, l);
    uint64_t free2 = pb.addCompute(1, 9, OpCost{}, l);
    Program prog = pb.take();

    OptReport report;
    Program opt = optimizeProgram(prog, OptLevel::Aggressive, true,
                                  &report);
    std::vector<uint64_t> order;
    for (const auto& t : opt.cards[1].compute)
        order.push_back(t.id);
    EXPECT_EQ(order, (std::vector<uint64_t>{free1, free2, waiter}));
    PassNetwork net(true);
    ClusterExecutor ex(ClusterConfig{1, 2}, net);
    RunResult rr = ex.tryRun(opt);
    ASSERT_TRUE(rr.ok());
    // The hoisted tasks fill the stall: card 1 now computes while the
    // producer runs, so its makespan is bounded by producer + transfer
    // + waiter rather than adding the free tasks at the end.
    EXPECT_LE(rr.stats.makespan,
              ex.tryRun(prog).stats.makespan);
}

/** Random deadlock-free program in the sync_fuzz_test style. */
Program
randomProgram(size_t cards, uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder pb(cards);
    uint32_t labels[3] = {pb.label("f0"), pb.label("f1"),
                          pb.label("f2")};
    std::vector<uint64_t> last(cards, 0);
    for (size_t c = 0; c < cards; ++c)
        last[c] = pb.addCompute(c, 10 + rng.uniformU64(100), OpCost{},
                                labels[rng.uniformU64(3)]);
    // (msg, source) of every broadcast: a card may wait only on
    // broadcasts it actually receives, i.e. from another source.
    std::vector<std::pair<uint64_t, size_t>> bcasts;
    for (size_t m = 0; m < 30; ++m) {
        size_t src = rng.uniformU64(cards);
        if (rng.uniformU64(3) == 0) {
            bcasts.emplace_back(
                pb.broadcastFrom(src,
                                 rng.uniformU64(3) == 0
                                     ? 0
                                     : 1 + rng.uniformU64(500),
                                 last[src]),
                src);
        } else {
            size_t dst = rng.uniformU64(cards);
            if (dst == src)
                dst = (dst + 1) % cards;
            pb.sendTo(src, dst,
                      rng.uniformU64(4) == 0 ? 0
                                             : 1 + rng.uniformU64(500),
                      last[src]);
        }
        size_t c = rng.uniformU64(cards);
        std::vector<uint64_t> waits;
        if (!bcasts.empty() && rng.uniformU64(2) == 0) {
            auto [msg, bsrc] = bcasts[rng.uniformU64(bcasts.size())];
            if (bsrc != c)
                waits.push_back(msg);
        }
        last[c] = pb.addCompute(c, 5 + rng.uniformU64(50), OpCost{},
                                labels[rng.uniformU64(3)], waits);
    }
    return pb.take();
}

TEST(Passes, FuzzAggressiveKeepsProgramsValidAndRunnable)
{
    for (uint64_t seed : {1u, 7u, 19u, 42u, 77u, 101u}) {
        for (bool overlaps : {true, false}) {
            Program prog = randomProgram(4, seed);
            Tick work = 0;
            for (const auto& card : prog.cards)
                for (const auto& t : card.compute)
                    work += t.duration;

            Program opt = optimizeProgram(prog, OptLevel::Aggressive,
                                          overlaps);
            EXPECT_TRUE(opt.validate().empty())
                << "seed " << seed << " overlaps " << overlaps;

            PassNetwork net(overlaps);
            ClusterExecutor ex(ClusterConfig{1, 4}, net);
            RunResult a = ex.tryRun(opt);
            ASSERT_TRUE(a.ok()) << a.error.message;
            RunResult b = ex.tryRun(opt);
            EXPECT_EQ(a.stats.fingerprint(), b.stats.fingerprint());

            // Passes drop transfers, never compute: work conserved.
            Tick busy = 0;
            for (Tick t : a.stats.computeBusy)
                busy += t;
            EXPECT_EQ(busy, work);
        }
    }
}

} // namespace
} // namespace hydra
