/**
 * @file
 * Fused-queue scheduling tests (paper Section IV-D: multiple tasks
 * preloaded per card).
 */

#include <gtest/gtest.h>

#include "baselines/prototypes.hh"

namespace hydra {
namespace {

TEST(Fused, NeverSlowerThanStepwise)
{
    for (const auto& wl : {makeResNet20Cifar(), makeBertBase()}) {
        for (auto spec : {hydraMSpec(), hydraLSpec()}) {
            InferenceRunner runner(spec);
            Tick stepwise = runner.run(wl).total.makespan;
            Tick fused = runner.runFused(wl).makespan;
            EXPECT_LE(fused, stepwise)
                << wl.name << " on " << spec.name;
        }
    }
}

TEST(Fused, SingleCardMatchesStepwiseCompute)
{
    // With one card there is no cross-card slack to reclaim; the fused
    // makespan equals the stepwise makespan minus the sync gaps.
    WorkloadModel wl = makeResNet20Cifar();
    InferenceRunner runner(hydraSSpec());
    InferenceResult stepwise = runner.run(wl);
    RunStats fused = runner.runFused(wl);
    Tick busy_stepwise = 0;
    for (const auto& s : stepwise.steps)
        busy_stepwise += s.stats.computeBusy[0];
    EXPECT_EQ(fused.computeBusy[0], busy_stepwise);
    EXPECT_EQ(fused.makespan, fused.computeBusy[0]);
}

TEST(Fused, WorkIsConserved)
{
    WorkloadModel wl = makeResNet18();
    InferenceRunner runner(hydraMSpec());
    InferenceResult stepwise = runner.run(wl);
    RunStats fused = runner.runFused(wl);
    Tick sw = 0, fu = 0;
    for (Tick t : stepwise.total.computeBusy)
        sw += t;
    for (Tick t : fused.computeBusy)
        fu += t;
    EXPECT_EQ(sw, fu);
    EXPECT_EQ(stepwise.total.netBytes, fused.netBytes);
}

TEST(Fused, Deterministic)
{
    WorkloadModel wl = makeBertBase();
    InferenceRunner runner(hydraLSpec());
    EXPECT_EQ(runner.runFused(wl).makespan,
              runner.runFused(wl).makespan);
}

} // namespace
} // namespace hydra
