/**
 * @file
 * Canonical-embedding encoder tests: FFT inverse pairing, encode/decode
 * round trips, precision, and agreement with direct polynomial
 * evaluation at the embedding roots.
 */

#include <gtest/gtest.h>

#include "fhe/context.hh"
#include "fhe/encoder.hh"
#include "fhe_test_util.hh"

namespace hydra {
namespace {

using test::maxError;
using test::randomComplexVec;

class EncoderTest : public ::testing::TestWithParam<size_t>
{
  protected:
    void
    SetUp() override
    {
        CkksParams p = CkksParams::unitTest();
        p.n = GetParam();
        p.levels = 3;
        ctx_ = std::make_unique<CkksContext>(p);
        enc_ = std::make_unique<CkksEncoder>(*ctx_);
    }

    std::unique_ptr<CkksContext> ctx_;
    std::unique_ptr<CkksEncoder> enc_;
};

TEST_P(EncoderTest, FftPairIsIdentity)
{
    auto v = randomComplexVec(enc_->slots(), 5);
    auto w = v;
    enc_->fftSpecialInv(w);
    enc_->fftSpecial(w);
    EXPECT_LT(maxError(v, w), 1e-9);
}

TEST_P(EncoderTest, EncodeDecodeRoundTrip)
{
    auto v = randomComplexVec(enc_->slots(), 6);
    Plaintext pt = enc_->encode(v, ctx_->params().scale(), 2);
    auto w = enc_->decode(pt);
    // Rounding error per coefficient is 1/2; after the FFT it stays
    // around sqrt(n)/scale.
    EXPECT_LT(maxError(v, w), 1e-6);
}

TEST_P(EncoderTest, ShortVectorIsZeroPadded)
{
    std::vector<cplx> v = {cplx(1.5, -0.25), cplx(-2.0, 0.0)};
    Plaintext pt = enc_->encode(v, ctx_->params().scale(), 1);
    auto w = enc_->decode(pt);
    EXPECT_NEAR(std::abs(w[0] - v[0]), 0.0, 1e-6);
    EXPECT_NEAR(std::abs(w[1] - v[1]), 0.0, 1e-6);
    for (size_t i = 2; i < w.size(); ++i)
        EXPECT_NEAR(std::abs(w[i]), 0.0, 1e-6);
}

TEST_P(EncoderTest, ConstantEncodeMatchesFullEncode)
{
    cplx c(0.75, -1.25);
    Plaintext direct = enc_->encodeConstant(c, ctx_->params().scale(), 2);
    auto w = enc_->decode(direct);
    for (const auto& x : w)
        EXPECT_NEAR(std::abs(x - c), 0.0, 1e-9);
}

TEST_P(EncoderTest, DecodeMatchesDirectRootEvaluation)
{
    if (enc_->slots() > 64)
        GTEST_SKIP() << "direct evaluation too slow";
    auto v = randomComplexVec(enc_->slots(), 7);
    double scale = ctx_->params().scale();
    Plaintext pt = enc_->encode(v, scale, 1);

    // Evaluate the integer polynomial at each embedding root directly.
    size_t n = ctx_->n();
    const Modulus& q0 = ctx_->basis()->mod(0);
    for (size_t j = 0; j < enc_->slots(); ++j) {
        cplx zeta = enc_->embeddingRoot(j);
        cplx acc(0, 0);
        cplx zi(1, 0);
        for (size_t i = 0; i < n; ++i) {
            acc += static_cast<double>(q0.toCentered(pt.poly.limb(0)[i])) *
                   zi;
            zi *= zeta;
        }
        EXPECT_NEAR(std::abs(acc / scale - v[j]), 0.0, 1e-6);
    }
}

TEST_P(EncoderTest, EncodeIsAdditivelyHomomorphic)
{
    auto a = randomComplexVec(enc_->slots(), 8);
    auto b = randomComplexVec(enc_->slots(), 9);
    double scale = ctx_->params().scale();
    Plaintext pa = enc_->encode(a, scale, 2);
    Plaintext pb = enc_->encode(b, scale, 2);
    pa.poly.add(pb.poly);
    auto w = enc_->decode(pa);
    for (size_t i = 0; i < w.size(); ++i)
        EXPECT_NEAR(std::abs(w[i] - (a[i] + b[i])), 0.0, 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Rings, EncoderTest,
                         ::testing::Values(16, 64, 256, 1024));

} // namespace
} // namespace hydra
