/**
 * @file
 * Chaos tests for the federated serving layer: cluster kills with
 * checkpointed job recovery, partition healing via canary probes,
 * error-rate quarantine, the no-progress watchdog, and the accounting
 * + determinism invariants that must survive all of it.
 */

#include <gtest/gtest.h>

#include "baselines/prototypes.hh"
#include "common/parallel.hh"
#include "sched/execplan.hh"
#include "serve/federation.hh"
#include "serve/sim.hh"
#include "workloads/model.hh"

namespace hydra {
namespace {

ServeStats
runFed(const std::string& machine, const std::string& spec,
       const std::string& faults = "", HealthPolicy health = {})
{
    Federation fed(machineByName(machine), ServeSpec::parse(spec),
                   FaultPlan::parse(faults), RetryPolicy{}, health);
    return fed.run();
}

/**
 * The federation-wide accounting identities: every offered request is
 * completed or shed, and every admitted request is completed or shed
 * after admission (nothing is ever lost in flight, even across
 * failovers and stall flushes).
 */
void
expectAccounted(const ServeStats& st)
{
    EXPECT_EQ(st.offered, st.completed + st.shed);
    EXPECT_EQ(st.admitted, st.completed + st.shedAfterAdmit);
    EXPECT_EQ(st.shed, st.shedQueueFull + st.shedNoCapacity);
    uint64_t t_off = 0, t_done = 0, t_shed = 0;
    for (const auto& t : st.tenants) {
        t_off += t.offered;
        t_done += t.completed;
        t_shed += t.shed;
    }
    EXPECT_EQ(t_off, st.offered);
    EXPECT_EQ(t_done, st.completed);
    EXPECT_EQ(t_shed, st.shed);
    uint64_t c_done = 0;
    for (const auto& c : st.clusters)
        c_done += c.completed;
    EXPECT_EQ(c_done, st.completed);
}

// A closed-loop pool that keeps every cluster's group busy the whole
// run: deterministic pressure, so a mid-run cluster kill is guaranteed
// to catch in-flight jobs.
const char* kFedPool =
    "seed=9,duration=40,clusters=4,group=resnet18:8,"
    "tenant=pool:closed:resnet18:8:0";

TEST(Federation, SingleClusterMatchesServeSim)
{
    const char* spec =
        "seed=5,duration=120,tenant=vision:open:resnet18:0.05,"
        "tenant=nlp:open:bert:0.005";
    ServeSim sim(machineByName("hydra-m"), ServeSpec::parse(spec));
    ServeStats a = sim.run();
    ServeStats b = runFed("hydra-m", spec);
    ASSERT_GT(a.completed, 0u);
    EXPECT_EQ(a.hash(), b.hash());
    ASSERT_EQ(b.clusters.size(), 1u);
    EXPECT_EQ(b.clusters[0].health, "healthy");
    EXPECT_FALSE(b.stalled);
}

TEST(Federation, ClusterKillFailsOverAndRecovers)
{
    ServeStats st = runFed("hydra-m", kFedPool, "ckill=1@30");

    EXPECT_EQ(st.clusterKills, 1u);
    // The killed cluster had a job in flight: it failed over and its
    // completed step boundaries were conserved.
    EXPECT_GE(st.failovers, 1u);
    EXPECT_GE(st.recoveredSteps, 1u);
    // At most the one partially-executed step per aborted job re-runs.
    EXPECT_LE(st.replayedSteps, st.failovers);
    // The failed-over request was re-dispatched on a survivor.
    EXPECT_GE(st.spilled, 1u);
    EXPECT_GE(st.healthTransitions, 1u);

    // Every non-shed request completed on the survivors; a kill with
    // three healthy clusters left sheds nothing.
    EXPECT_EQ(st.shedAfterAdmit, 0u);
    EXPECT_GT(st.completed, 0u);
    EXPECT_FALSE(st.stalled);
    expectAccounted(st);

    ASSERT_EQ(st.clusters.size(), 4u);
    EXPECT_TRUE(st.clusters[1].killed);
    EXPECT_EQ(st.clusters[1].health, "dead");
    EXPECT_EQ(st.clusters[1].deadCards, 8u);
    EXPECT_EQ(st.clusters[1].failovers, st.failovers);
    for (size_t c : {0u, 2u, 3u}) {
        EXPECT_FALSE(st.clusters[c].killed);
        EXPECT_EQ(st.clusters[c].health, "healthy");
        EXPECT_GT(st.clusters[c].completed, 0u);
    }
    ASSERT_EQ(st.groups.size(), 4u);
    for (size_t c = 0; c < 4; ++c)
        EXPECT_EQ(st.groups[c].cluster, c);
    EXPECT_TRUE(st.groups[1].retired);
}

TEST(Federation, ChaosRunsAreBitIdentical)
{
    ServeStats a = runFed("hydra-m", kFedPool, "ckill=1@30");
    ServeStats b = runFed("hydra-m", kFedPool, "ckill=1@30");
    EXPECT_EQ(a.hash(), b.hash());

    // ... and independent of the host thread count.
    size_t saved = ThreadPool::instance().threadCount();
    ThreadPool::instance().setThreadCount(1);
    ServeStats c = runFed("hydra-m", kFedPool, "ckill=1@30");
    ThreadPool::instance().setThreadCount(4);
    ServeStats d = runFed("hydra-m", kFedPool, "ckill=1@30");
    ThreadPool::instance().setThreadCount(saved);
    EXPECT_EQ(a.hash(), c.hash());
    EXPECT_EQ(a.hash(), d.hash());
}

TEST(Federation, CheckpointResumeIsExact)
{
    // The serving layer's recovery contract, at the runner level: a
    // job split at any step boundary replays to exactly the same
    // clock as the uninterrupted run.
    InferenceRunner runner(machineByName("hydra-m"));
    WorkloadModel m = workloadByName("resnet18");
    CardGroup g = CardGroup::contiguous(0, 8);
    InferenceResult full = runner.runJob(m, g, 0);
    ASSERT_TRUE(full.ok());
    ASSERT_EQ(full.stepEnds.size(), m.steps.size());

    size_t k = m.steps.size() / 2;
    ASSERT_GT(k, 0u);
    InferenceResult head =
        runner.runJob(m, g, 0, FaultPlan{}, RetryPolicy{}, 0, k);
    ASSERT_TRUE(head.ok());
    ASSERT_EQ(head.stepEnds.size(), k);
    EXPECT_EQ(head.stepEnds.back(), full.stepEnds[k - 1]);
    // Resume from the checkpoint boundary, on the shared clock.
    InferenceResult tail = runner.runJob(m, g, head.total.makespan,
                                         FaultPlan{}, RetryPolicy{}, k);
    ASSERT_TRUE(tail.ok());
    EXPECT_EQ(head.total.makespan + tail.total.makespan,
              full.total.makespan);
    EXPECT_EQ(head.stepEnds.size() + tail.stepEnds.size(),
              full.stepEnds.size());
}

TEST(Federation, CheckpointResumeIsExactOnAggressivePlans)
{
    // The same recovery contract over an Aggressive ExecPlan: windows
    // index multi-layer units, and a job split at any *unit* boundary
    // replays to exactly the clock of the uninterrupted run.
    PrototypeSpec spec = machineByName("hydra-m");
    InferenceRunner runner(spec);
    WorkloadModel m = workloadByName("bert");
    CardGroup g = CardGroup::contiguous(0, 8);
    std::shared_ptr<const ExecPlan> plan =
        runner.planForJob(m, g, OptLevel::Aggressive);
    ASSERT_LT(plan->size(), m.steps.size()); // passes really fused
    size_t multi = 0;
    for (const ExecUnit& u : plan->units)
        multi += u.steps.size() > 1;
    ASSERT_GT(multi, 0u);

    InferenceResult full = runner.runJob(*plan, g, 0);
    ASSERT_TRUE(full.ok());
    ASSERT_EQ(full.stepEnds.size(), plan->size());

    size_t k = plan->size() / 2;
    ASSERT_GT(k, 0u);
    InferenceResult head =
        runner.runJob(*plan, g, 0, FaultPlan{}, RetryPolicy{}, 0, k);
    ASSERT_TRUE(head.ok());
    ASSERT_EQ(head.stepEnds.size(), k);
    EXPECT_EQ(head.stepEnds.back(), full.stepEnds[k - 1]);
    InferenceResult tail = runner.runJob(*plan, g, head.total.makespan,
                                         FaultPlan{}, RetryPolicy{}, k);
    ASSERT_TRUE(tail.ok());
    EXPECT_EQ(head.total.makespan + tail.total.makespan,
              full.total.makespan);
    EXPECT_EQ(head.stepEnds.size() + tail.stepEnds.size(),
              full.stepEnds.size());
}

TEST(Federation, AggressiveClusterKillFailsOverAtUnitBoundaries)
{
    // A mid-run cluster kill against opt=aggressive tenants: in-flight
    // jobs fail over with their completed *unit* boundaries conserved,
    // at most the one partially-executed unit replays, and the chaos
    // runs stay bit-identical.
    std::string spec = std::string(kFedPool) + ",opt=aggressive";
    ServeStats st = runFed("hydra-m", spec, "ckill=1@30");
    EXPECT_EQ(st.clusterKills, 1u);
    EXPECT_GE(st.failovers, 1u);
    EXPECT_GE(st.recoveredSteps, 1u);
    EXPECT_LE(st.replayedSteps, st.failovers);
    EXPECT_GE(st.spilled, 1u);
    EXPECT_EQ(st.shedAfterAdmit, 0u);
    EXPECT_GT(st.completed, 0u);
    EXPECT_FALSE(st.stalled);
    expectAccounted(st);

    EXPECT_EQ(st.hash(), runFed("hydra-m", spec, "ckill=1@30").hash());
    // Different plans, different fingerprint than the Safe chaos run.
    EXPECT_NE(st.hash(), runFed("hydra-m", kFedPool, "ckill=1@30").hash());
}

TEST(Federation, PartitionHealsViaCanaryProbe)
{
    ServeStats st = runFed(
        "hydra-m",
        "seed=3,duration=60,clusters=2,group=resnet18:8,"
        "tenant=pool:closed:resnet18:4:0",
        "cpart=1@10:15");

    EXPECT_EQ(st.clusterPartitions, 1u);
    EXPECT_EQ(st.clusterKills, 0u);
    // The healing window ended, a canary probed the cluster, and the
    // breaker closed again.
    EXPECT_GE(st.canaryProbes, 1u);
    EXPECT_GE(st.healthTransitions, 2u); // quarantined + healthy again
    ASSERT_EQ(st.clusters.size(), 2u);
    EXPECT_EQ(st.clusters[0].health, "healthy");
    EXPECT_EQ(st.clusters[1].health, "healthy");
    EXPECT_EQ(st.clusters[1].canaryProbes, st.canaryProbes);
    // Back in rotation after the heal: the cluster kept completing.
    EXPECT_GT(st.clusters[1].completed, 0u);
    EXPECT_EQ(st.shed, 0u);
    EXPECT_FALSE(st.stalled);
    expectAccounted(st);

    ServeStats again = runFed(
        "hydra-m",
        "seed=3,duration=60,clusters=2,group=resnet18:8,"
        "tenant=pool:closed:resnet18:4:0",
        "cpart=1@10:15");
    EXPECT_EQ(st.hash(), again.hash());
}

TEST(Federation, ErrorStormQuarantinesThenWritesOffCluster)
{
    // Every transfer drops: every job fails terminally, the breaker
    // opens on the error-rate window, every canary probe fails, and
    // the probe budget writes the cluster off as dead — after which
    // arrivals shed with a structured no-capacity reason instead of
    // queueing forever.
    ServeStats st = runFed(
        "hydra-m",
        "seed=4,duration=30,clusters=1,group=resnet18:8,"
        "tenant=vision:open:resnet18:1",
        "drop=1");

    EXPECT_EQ(st.completed, 0u);
    EXPECT_GT(st.shed, 0u);
    EXPECT_GE(st.canaryProbes, 1u);
    ASSERT_EQ(st.clusters.size(), 1u);
    EXPECT_EQ(st.clusters[0].health, "dead");
    EXPECT_FALSE(st.clusters[0].killed); // died of errors, not a fault
    EXPECT_FALSE(st.stalled); // the dead cluster flushed its queue
    expectAccounted(st);
}

TEST(Federation, StallWatchdogReportsInsteadOfWedging)
{
    // Probing disabled (maxProbes = 0): quarantine is sticky, so once
    // the error storm opens the breaker nothing can ever dispatch
    // again — the watchdog must report the wedge and shed the stuck
    // queue instead of losing it.
    HealthPolicy hp;
    hp.maxProbes = 0;
    ServeStats st = runFed(
        "hydra-m",
        "seed=4,duration=30,clusters=1,group=resnet18:8,"
        "tenant=vision:open:resnet18:1",
        "drop=1", hp);

    EXPECT_TRUE(st.stalled);
    EXPECT_NE(st.stallReport.find("stall at"), std::string::npos)
        << st.stallReport;
    EXPECT_NE(st.stallReport.find("quarantined"), std::string::npos)
        << st.stallReport;
    EXPECT_NE(st.stallReport.find("oldest pending"), std::string::npos)
        << st.stallReport;
    EXPECT_EQ(st.completed, 0u);
    EXPECT_EQ(st.canaryProbes, 0u);
    expectAccounted(st); // the identities survive the stall flush
}

TEST(Federation, DegradedRedispatchUnderServingLoad)
{
    // Card-granularity kill mid-run under sustained federated load
    // (satellite of PR 2's degraded re-dispatch): the in-flight job
    // consumes the kill, re-dispatches onto the group's survivors,
    // and the fleet repairs in place — no request is lost.
    const char* spec =
        "seed=11,duration=40,clusters=2,group=resnet18:8,"
        "tenant=pool:closed:resnet18:4:0,at=5:replay:resnet18";
    // Global card 11 = cluster 1, local card 3.
    ServeStats st = runFed("hydra-m", spec, "kill=11@10");

    ASSERT_EQ(st.failedCards.size(), 1u);
    EXPECT_EQ(st.failedCards[0], 11u);
    EXPECT_GE(st.redispatches, 1u);
    EXPECT_GT(st.recoveryPenalty, 0u);
    EXPECT_EQ(st.shedAfterAdmit, 0u); // degraded completion, not loss
    expectAccounted(st);
    ASSERT_EQ(st.groups.size(), 2u);
    EXPECT_EQ(st.groups[1].cluster, 1u);
    EXPECT_EQ(st.groups[1].cards, 7u); // shrank in place
    EXPECT_FALSE(st.groups[1].retired);

    ServeStats again = runFed("hydra-m", spec, "kill=11@10");
    EXPECT_EQ(st.hash(), again.hash());
}

TEST(Federation, SpilloverChargesAFairnessDeficit)
{
    // Two tenants share one surviving cluster after the other dies.
    // The spilled tenant's failover traffic counts double in the
    // least-served ledger, so the native tenant is not starved: both
    // keep completing on the survivor.
    ServeStats st = runFed(
        "hydra-m",
        "seed=13,duration=60,clusters=2,group=resnet18:8,"
        "tenant=alpha:closed:resnet18:2:0,"
        "tenant=beta:closed:resnet18:2:0",
        "ckill=0@20");
    EXPECT_EQ(st.clusterKills, 1u);
    expectAccounted(st);
    for (const auto& t : st.tenants)
        EXPECT_GT(t.completed, 4u) << t.name;
}

} // namespace
} // namespace hydra
