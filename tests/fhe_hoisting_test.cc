/**
 * @file
 * Hoisted-rotation tests: NTT-domain automorphisms and shared-digit
 * keyswitching must agree with the naive per-rotation path.
 */

#include <gtest/gtest.h>

#include "fhe_test_util.hh"
#include "math/poly.hh"

namespace hydra {
namespace {

using test::FheHarness;
using test::maxError;
using test::randomComplexVec;

TEST(NttAutomorphism, MatchesCoefficientDomain)
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8;
    CkksContext ctx(p);
    Rng rng(81);
    std::vector<i64> c(ctx.n());
    for (auto& x : c)
        x = static_cast<i64>(rng.uniformU64(4000)) - 2000;
    RnsPoly a = RnsPoly::fromSigned(ctx.basis(), 3, true, c);

    for (u64 g : {u64{5}, u64{25}, u64{125}, u64{2 * ctx.n() - 1}}) {
        RnsPoly ref = a.automorphism(g);
        ref.toNtt();
        RnsPoly b = a;
        b.toNtt();
        RnsPoly got = b.automorphismNtt(g);
        for (size_t k = 0; k < ref.limbCount(); ++k)
            EXPECT_EQ(ref.limb(k), got.limb(k)) << "g=" << g;
    }
}

TEST(NttAutomorphism, MapIsAPermutation)
{
    for (size_t n : {16, 64, 1024}) {
        for (u64 g : {u64{5}, u64{2 * n - 1}}) {
            auto map = RnsPoly::nttAutomorphismMap(n, g);
            std::vector<bool> seen(n, false);
            for (size_t j : map) {
                ASSERT_LT(j, n);
                EXPECT_FALSE(seen[j]);
                seen[j] = true;
            }
        }
    }
}

class HoistingTest : public ::testing::Test
{
  protected:
    HoistingTest()
        : h_(params(), {1, 2, 3, 5, 7})
    {
    }

    static CkksParams
    params()
    {
        CkksParams p = CkksParams::unitTest();
        p.n = 1 << 8;
        return p;
    }

    FheHarness h_;
};

TEST_F(HoistingTest, MatchesNaiveRotations)
{
    auto v = randomComplexVec(h_.ctx.slots(), 82);
    auto ct = h_.encryptVec(v);
    std::vector<int> steps = {1, 3, 5, 7};
    auto hoisted = h_.eval.rotateHoisted(ct, steps);
    ASSERT_EQ(hoisted.size(), steps.size());
    for (size_t i = 0; i < steps.size(); ++i) {
        auto naive = h_.decryptVec(h_.eval.rotate(ct, steps[i]));
        auto fast = h_.decryptVec(hoisted[i]);
        EXPECT_LT(maxError(naive, fast), 1e-4) << "step " << steps[i];
    }
}

TEST_F(HoistingTest, ZeroStepReturnsInput)
{
    auto v = randomComplexVec(h_.ctx.slots(), 83);
    auto ct = h_.encryptVec(v);
    auto out = h_.eval.rotateHoisted(ct, {0, 1});
    EXPECT_LT(maxError(v, h_.decryptVec(out[0])), 1e-4);
}

TEST_F(HoistingTest, WorksAtLowerLevels)
{
    auto v = randomComplexVec(h_.ctx.slots(), 84);
    auto ct = h_.eval.dropToLevel(h_.encryptVec(v), 2);
    auto out = h_.eval.rotateHoisted(ct, {2, 3});
    size_t s = h_.ctx.slots();
    auto g2 = h_.decryptVec(out[0]);
    for (size_t j = 0; j < s; ++j)
        EXPECT_NEAR(std::abs(g2[j] - v[(j + 2) % s]), 0.0, 1e-3);
}

TEST_F(HoistingTest, SemanticallyCorrectRotation)
{
    size_t s = h_.ctx.slots();
    auto v = randomComplexVec(s, 85);
    auto ct = h_.encryptVec(v);
    auto out = h_.eval.rotateHoisted(ct, {5});
    auto got = h_.decryptVec(out[0]);
    for (size_t j = 0; j < s; ++j)
        EXPECT_NEAR(std::abs(got[j] - v[(j + 5) % s]), 0.0, 1e-3);
}

TEST_F(HoistingTest, HoistedResultSupportsFurtherOps)
{
    auto v = randomComplexVec(h_.ctx.slots(), 86, 0.9);
    auto ct = h_.encryptVec(v);
    auto rot = h_.eval.rotateHoisted(ct, {1})[0];
    auto sq = h_.decryptVec(h_.eval.rescale(h_.eval.mulRelin(rot, rot)));
    size_t s = h_.ctx.slots();
    for (size_t j = 0; j < s; ++j) {
        cplx e = v[(j + 1) % s] * v[(j + 1) % s];
        EXPECT_NEAR(std::abs(sq[j] - e), 0.0, 1e-3);
    }
}

} // namespace
} // namespace hydra
