/**
 * @file
 * BSGS homomorphic linear-transform tests against plaintext
 * matrix-vector products.
 */

#include <gtest/gtest.h>

#include "fhe/lintrans.hh"
#include "fhe_test_util.hh"

namespace hydra {
namespace {

using test::FheHarness;
using test::maxError;
using test::randomComplexVec;

CkksParams
smallParams()
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 7; // 64 slots: dense-matrix reference stays fast
    p.levels = 4;
    return p;
}

CMatrix
randomMatrix(size_t s, uint64_t seed)
{
    Rng rng(seed);
    CMatrix m(s, std::vector<cplx>(s));
    for (auto& row : m)
        for (auto& x : row)
            x = cplx(rng.uniformReal(-1, 1), rng.uniformReal(-1, 1));
    return m;
}

class LinearTransformTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(LinearTransformTest, MatchesPlainMatVec)
{
    size_t bs = GetParam();
    CkksParams p = smallParams();
    CkksContext probe_ctx(p);
    CkksEncoder probe_enc(probe_ctx);
    CMatrix m = randomMatrix(probe_enc.slots(), 31);
    LinearTransform lt(probe_enc, m, p.scale(), bs);

    FheHarness h(p, lt.requiredRotations());
    // Rebuild against the harness encoder (identical params -> same
    // basis structure is not guaranteed; use the harness one).
    LinearTransform lt2(h.encoder, m, p.scale(), bs);

    auto v = randomComplexVec(h.ctx.slots(), 32);
    auto ct = h.encryptVec(v);
    auto got = h.decryptVec(lt2.apply(h.eval, ct));
    auto expect = matVec(m, v);
    EXPECT_LT(maxError(expect, got), 1e-2);
}

INSTANTIATE_TEST_SUITE_P(BabySteps, LinearTransformTest,
                         ::testing::Values(0, 4, 8, 16, 64));

TEST(LinearTransformSpecial, IdentityMatrix)
{
    CkksParams p = smallParams();
    FheHarness h(p, {}); // identity has only diagonal 0: no rotations
    size_t s = h.ctx.slots();
    CMatrix id(s, std::vector<cplx>(s, cplx(0, 0)));
    for (size_t i = 0; i < s; ++i)
        id[i][i] = cplx(1, 0);
    LinearTransform lt(h.encoder, id, p.scale());
    EXPECT_EQ(lt.diagonalCount(), 1u);

    auto v = randomComplexVec(s, 33);
    auto got = h.decryptVec(lt.apply(h.eval, h.encryptVec(v)));
    EXPECT_LT(maxError(v, got), 1e-3);
}

TEST(LinearTransformSpecial, CyclicShiftMatrix)
{
    // Permutation matrix P with P v = v shifted left by 1: exactly one
    // nonzero generalized diagonal (d = 1).
    CkksParams p = smallParams();
    CkksContext probe(p);
    size_t s = probe.slots();
    CMatrix m(s, std::vector<cplx>(s, cplx(0, 0)));
    for (size_t j = 0; j < s; ++j)
        m[j][(j + 1) % s] = cplx(1, 0);

    CkksEncoder probe_enc(probe);
    LinearTransform probe_lt(probe_enc, m, p.scale());
    EXPECT_EQ(probe_lt.diagonalCount(), 1u);

    FheHarness h(p, probe_lt.requiredRotations());
    LinearTransform lt(h.encoder, m, p.scale());
    auto v = randomComplexVec(s, 34);
    auto got = h.decryptVec(lt.apply(h.eval, h.encryptVec(v)));
    for (size_t j = 0; j < s; ++j)
        EXPECT_NEAR(std::abs(got[j] - v[(j + 1) % s]), 0.0, 1e-3);
}

TEST(LinearTransformSpecial, CompositionOfTwoTransforms)
{
    CkksParams p = smallParams();
    CkksContext probe(p);
    CkksEncoder probe_enc(probe);
    size_t s = probe.slots();
    CMatrix m1 = randomMatrix(s, 35);
    CMatrix m2 = randomMatrix(s, 36);
    // Scale down to keep products O(1).
    for (auto* m : {&m1, &m2})
        for (auto& row : *m)
            for (auto& x : row)
                x *= 0.1;

    LinearTransform probe_lt(probe_enc, m1, p.scale());
    FheHarness h(p, probe_lt.requiredRotations());
    LinearTransform lt1(h.encoder, m1, p.scale());
    LinearTransform lt2(h.encoder, m2, p.scale());

    auto v = randomComplexVec(s, 37);
    auto ct = h.encryptVec(v);
    auto got = h.decryptVec(lt2.apply(h.eval, lt1.apply(h.eval, ct)));
    auto expect = matVec(m2, matVec(m1, v));
    EXPECT_LT(maxError(expect, got), 1e-2);
}

} // namespace
} // namespace hydra
