/**
 * @file
 * Procedure-1 synchronization tests: SAC/CAR orderings, handshakes,
 * broadcast, compute/communication overlap, FAB-style blocking, and a
 * tick-level reproduction of the paper's Fig. 5(b) two-node example.
 */

#include <gtest/gtest.h>

#include "sync/executor.hh"

namespace hydra {
namespace {

/** Zero-latency, bandwidth-only test network. */
class TestNetwork : public NetworkModel
{
  public:
    explicit TestNetwork(Tick per_msg, bool overlaps = true)
        : perMsg_(per_msg), overlaps_(overlaps)
    {
    }

    std::unique_ptr<NetworkModel>
    clone() const override
    {
        return std::make_unique<TestNetwork>(*this);
    }

    Tick
    transferTime(uint64_t, size_t, size_t) const override
    {
        return perMsg_;
    }

    Tick
    broadcastTime(uint64_t, size_t, size_t) const override
    {
        return perMsg_;
    }

    Tick setupLatency() const override { return 0; }
    bool overlapsCompute() const override { return overlaps_; }
    Tick stepSyncLatency() const override { return 0; }

  private:
    Tick perMsg_;
    bool overlaps_;
};

OpCost
noCost()
{
    return OpCost{};
}

TEST(Executor, SingleCardRunsSequentially)
{
    ClusterConfig cfg{1, 1};
    TestNetwork net(0);
    ProgramBuilder pb(1);
    uint32_t l = pb.label("test");
    pb.addCompute(0, 100, noCost(), l);
    pb.addCompute(0, 50, noCost(), l);
    ClusterExecutor ex(cfg, net);
    RunStats st = ex.run(pb.take());
    EXPECT_EQ(st.makespan, 150u);
    EXPECT_EQ(st.computeBusy[0], 150u);
    EXPECT_EQ(st.commOverhead(), 0u);
}

TEST(Executor, SendAfterCompute)
{
    // Card 0 computes (100) then sends (20); card 1's compute waits for
    // the data (CAR), then computes (30).  Makespan = 150.
    ClusterConfig cfg{1, 2};
    TestNetwork net(20);
    ProgramBuilder pb(2);
    uint32_t l = pb.label("t");
    uint64_t c0 = pb.addCompute(0, 100, noCost(), l);
    uint64_t msg = pb.sendTo(0, 1, 1000, c0);
    pb.addCompute(1, 30, noCost(), l, {msg});
    ClusterExecutor ex(cfg, net);
    RunStats st = ex.run(pb.take());
    EXPECT_EQ(st.makespan, 150u);
}

TEST(Executor, TransferOverlapsIndependentCompute)
{
    // While the transfer flies, card 1 executes an independent CT_i.
    ClusterConfig cfg{1, 2};
    TestNetwork net(50);
    ProgramBuilder pb(2);
    uint32_t l = pb.label("t");
    uint64_t c0 = pb.addCompute(0, 10, noCost(), l);
    uint64_t msg = pb.sendTo(0, 1, 1, c0);
    pb.addCompute(1, 60, noCost(), l);        // CT_i: overlaps transfer
    pb.addCompute(1, 5, noCost(), l, {msg});  // CT_d
    ClusterExecutor ex(cfg, net);
    RunStats st = ex.run(pb.take());
    // Card1: CT_i [0,60); transfer lands at 60 at the earliest
    // (starts at 10 after c0) -> actually 10+50 = 60; CT_d [60,65).
    EXPECT_EQ(st.makespan, 65u);
}

TEST(Executor, NonOverlappingNetworkBlocksCompute)
{
    // Same program, FAB semantics: the transfer cannot start while
    // either endpoint computes, and compute cannot start during it.
    ClusterConfig cfg{1, 2};
    TestNetwork net(50, /*overlaps=*/false);
    ProgramBuilder pb(2);
    uint32_t l = pb.label("t");
    uint64_t c0 = pb.addCompute(0, 10, noCost(), l);
    uint64_t msg = pb.sendTo(0, 1, 1, c0);
    pb.addCompute(1, 60, noCost(), l);
    pb.addCompute(1, 5, noCost(), l, {msg});
    ClusterExecutor ex(cfg, net);
    RunStats st = ex.run(pb.take());
    // Card1 computes [0,60); only then can the transfer run [60,110);
    // CT_d runs [110,115).
    EXPECT_EQ(st.makespan, 115u);
}

TEST(Executor, HandshakeDelaysSendUntilReceiverReady)
{
    // The receiver posts ready only when its recv reaches the head of
    // its comm queue: its first comm task is a send to card 2.
    ClusterConfig cfg{1, 3};
    TestNetwork net(10);
    ProgramBuilder pb(3);
    uint32_t l = pb.label("t");
    // Card 1 first sends its own result (takes until 40+10), then
    // receives from card 0.
    uint64_t c1 = pb.addCompute(1, 40, noCost(), l);
    uint64_t m12 = pb.sendTo(1, 2, 1, c1);
    (void)m12;
    uint64_t c0 = pb.addCompute(0, 5, noCost(), l);
    uint64_t m01 = pb.sendTo(0, 1, 1, c0);
    pb.addCompute(1, 5, noCost(), l, {m01});
    ClusterExecutor ex(cfg, net);
    RunStats st = ex.run(pb.take());
    // Card1: compute [0,40), send [40,50), then ready; 0->1 transfer
    // [50,60); final compute [60,65).
    EXPECT_EQ(st.makespan, 65u);
}

TEST(Executor, BroadcastReachesAllCards)
{
    size_t n = 4;
    ClusterConfig cfg{1, n};
    TestNetwork net(25);
    ProgramBuilder pb(n);
    uint32_t l = pb.label("t");
    uint64_t c0 = pb.addCompute(0, 10, noCost(), l);
    uint64_t msg = pb.broadcastFrom(0, 1, c0);
    for (size_t c = 1; c < n; ++c)
        pb.addCompute(c, 5, noCost(), l, {msg});
    ClusterExecutor ex(cfg, net);
    RunStats st = ex.run(pb.take());
    EXPECT_EQ(st.makespan, 40u); // 10 + 25 + 5
    EXPECT_EQ(st.netMessages, 1u);
    EXPECT_EQ(st.netBytes, n - 1); // replicated to 3 receivers
}

TEST(Executor, Fig5TwoNodeExample)
{
    // Paper Fig. 5(b): node1 runs c1 c2 [c3:CAR] c4 [c5:CAR]; node2
    // runs [r1-dependent] c3' c6'... simplified faithful layout:
    // node2's first task depends on node1's c1; node1's third and fifth
    // tasks depend on node2's c3 and c6 results.  All unit durations.
    ClusterConfig cfg{1, 2};
    TestNetwork net(1);
    ProgramBuilder pb(2);
    uint32_t l = pb.label("fig5");

    uint64_t c1 = pb.addCompute(0, 10, noCost(), l); // c1
    uint64_t s1 = pb.sendTo(0, 1, 1, c1);
    pb.addCompute(0, 10, noCost(), l); // c2
    uint64_t n2_c3 = pb.addCompute(1, 10, noCost(), l, {s1});
    uint64_t s2 = pb.sendTo(1, 0, 1, n2_c3);
    pb.addCompute(0, 10, noCost(), l, {s2}); // node1 3rd task (CT_d)
    pb.addCompute(0, 10, noCost(), l);
    uint64_t n2_c6 = pb.addCompute(1, 10, noCost(), l);
    uint64_t s3 = pb.sendTo(1, 0, 1, n2_c6);
    pb.addCompute(0, 10, noCost(), l, {s3}); // node1 5th task (CT_d)

    ClusterExecutor ex(cfg, net);
    RunStats st = ex.run(pb.take());
    // node1: c1 [0,10); node2 c3 [11,21); node1 c2 [10,20);
    // node1 CT_d waits for s2 (lands 22): [22,32); c4 [32,42);
    // node2 c6 [21,31), s3 lands 42 (send waits: ready at... recv
    // posted at 22 after r2 done) -> node1 final [42,52)... makespan
    // is implementation-exact; assert key properties instead of a
    // single magic number:
    EXPECT_GE(st.makespan, 52u);
    EXPECT_LE(st.makespan, 60u);
    EXPECT_EQ(st.computeBusy[0], 50u);
    EXPECT_EQ(st.computeBusy[1], 20u);
    // Some stall exists on node 1 (it waited for node 2's results).
    EXPECT_GT(st.commOverhead(), 0u);
}

TEST(Executor, DeterministicAcrossRuns)
{
    ClusterConfig cfg{1, 4};
    TestNetwork net(7);
    auto build = [&] {
        ProgramBuilder pb(4);
        uint32_t l = pb.label("t");
        std::vector<uint64_t> ids;
        for (size_t c = 0; c < 4; ++c)
            ids.push_back(pb.addCompute(c, 10 + c, noCost(), l));
        for (size_t c = 0; c < 4; ++c) {
            uint64_t msg = pb.broadcastFrom(c, 100, ids[c]);
            for (size_t r = 0; r < 4; ++r)
                if (r != c)
                    pb.addCompute(r, 3, noCost(), l, {msg});
        }
        return pb.take();
    };
    ClusterExecutor ex(cfg, net);
    RunStats a = ex.run(build());
    RunStats b = ex.run(build());
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.netBytes, b.netBytes);
}

TEST(Executor, LabelsAggregateComputeTime)
{
    ClusterConfig cfg{1, 2};
    TestNetwork net(0);
    ProgramBuilder pb(2);
    uint32_t conv = pb.label("conv");
    uint32_t relu = pb.label("relu");
    pb.addCompute(0, 100, noCost(), conv);
    pb.addCompute(1, 150, noCost(), conv);
    pb.addCompute(0, 30, noCost(), relu);
    ClusterExecutor ex(cfg, net);
    Program prog = pb.take();
    RunStats st = ex.run(prog);
    EXPECT_EQ(st.labelComputeTicks[conv], 250u);
    EXPECT_EQ(st.labelComputeTicks[relu], 30u);
}

TEST(Executor, StatsAppendAccumulates)
{
    RunStats a;
    a.makespan = 100;
    a.computeBusy = {60, 70};
    a.commBusy = {5, 10};
    a.netBytes = 1000;
    RunStats b = a;
    a.append(b, 10);
    EXPECT_EQ(a.makespan, 210u);
    EXPECT_EQ(a.computeBusy[1], 140u);
    EXPECT_EQ(a.netBytes, 2000u);
}

TEST(Executor, SendWithMissingProducerIsRejected)
{
    // A send anchored on a compute id that never exists must be
    // reported as a structured error, not silently dropped (and the
    // process must survive).
    ClusterConfig cfg{1, 2};
    TestNetwork net(1);
    ProgramBuilder pb(2);
    uint64_t msg = pb.newMsg();
    pb.addSend(0, msg, 1, 10, /*after_compute=*/424242);
    pb.addRecv(1, msg, 0, 10);
    ClusterExecutor ex(cfg, net);
    RunResult res = ex.tryRun(pb.take());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::InvalidProgram);
    ASSERT_FALSE(res.error.issues.empty());
    EXPECT_EQ(res.error.issues[0].kind,
              ProgramIssue::Kind::DanglingAfterCompute);
}

TEST(Executor, CtdWaitingOnUnsentMessageIsRejected)
{
    ClusterConfig cfg{1, 2};
    TestNetwork net(1);
    ProgramBuilder pb(2);
    pb.addCompute(0, 5, OpCost{}, pb.label("x"), {999999});
    ClusterExecutor ex(cfg, net);
    RunResult res = ex.tryRun(pb.take());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::InvalidProgram);
    ASSERT_FALSE(res.error.issues.empty());
    EXPECT_EQ(res.error.issues[0].kind,
              ProgramIssue::Kind::WaitOnUnknownMsg);
}

TEST(Executor, UnmatchedRecvIsRejected)
{
    // A recv with no matching send is caught by prevalidation.
    ClusterConfig cfg{1, 2};
    TestNetwork net(1);
    ProgramBuilder pb(2);
    pb.addRecv(1, 4242, 0, 10);
    ClusterExecutor ex(cfg, net);
    RunResult res = ex.tryRun(pb.take());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::InvalidProgram);
    ASSERT_FALSE(res.error.issues.empty());
    EXPECT_EQ(res.error.issues[0].kind,
              ProgramIssue::Kind::UnmatchedRecv);
}

TEST(Executor, UnmatchedRecvWithoutPrevalidationQuiescesAsDeadlock)
{
    // Even with static validation off, a recv that no card ever
    // serves must quiesce into deadlock diagnostics — never abort.
    ClusterConfig cfg{1, 2};
    TestNetwork net(1);
    ProgramBuilder pb(2);
    pb.addRecv(1, 4242, 0, 10);
    ClusterExecutor ex(cfg, net);
    ex.setPrevalidate(false);
    RunResult res = ex.tryRun(pb.take());
    ASSERT_FALSE(res.ok());
    EXPECT_EQ(res.error.kind, RunError::Kind::Deadlock);
    ASSERT_EQ(res.error.deadlock.stuck.size(), 1u);
    EXPECT_EQ(res.error.deadlock.stuck[0].card, 1u);
    ASSERT_EQ(res.error.deadlock.unmatchedMsgs.size(), 1u);
    EXPECT_EQ(res.error.deadlock.unmatchedMsgs[0], 4242u);
}

} // namespace
} // namespace hydra
