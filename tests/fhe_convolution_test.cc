/**
 * @file
 * Homomorphic convolution / pooling / Chebyshev activation tests
 * against plaintext references (the functional side of the paper's
 * ConvBN, Pooling and Non-linear procedures).
 */

#include <gtest/gtest.h>

#include "fhe/chebyshev.hh"
#include "fhe/convolution.hh"
#include "fhe_test_util.hh"

namespace hydra {
namespace {

using test::FheHarness;

CkksParams
convParams()
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8; // 128 slots = 16 x 8 image
    p.levels = 8;
    return p;
}

std::vector<double>
testImage(size_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> img(n);
    for (auto& x : img)
        x = rng.uniformReal(-0.5, 0.5);
    return img;
}

class ConvTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(ConvTest, MatchesPlainConvolution)
{
    size_t k = GetParam();
    size_t h = 16, w = 8;
    ConvKernel kernel;
    kernel.k = k;
    Rng rng(60 + k);
    kernel.weights.resize(k * k);
    for (auto& x : kernel.weights)
        x = rng.uniformReal(-0.3, 0.3);
    kernel.bias = 0.125;

    CkksParams p = convParams();
    FheHarness harness(p, convRotations(w, k));
    auto img = testImage(h * w, 61);
    auto expect = conv2dRef(img, kernel, h, w);

    Ciphertext ct = harness.encryptor.encrypt(harness.encoder.encode(
        img, p.scale(), harness.ctx.levels()));
    Ciphertext out = conv2d(harness.eval, ct, kernel, h, w);
    auto got = harness.decryptVec(out);
    for (size_t j = 0; j < expect.size(); ++j)
        EXPECT_NEAR(got[j].real(), expect[j], 1e-3) << "slot " << j;
}

INSTANTIATE_TEST_SUITE_P(Kernels, ConvTest, ::testing::Values(1, 3, 5));

TEST(Convolution, SparseKernelSkipsZeroTaps)
{
    // Identity kernel: output == input, zero rotations needed.
    size_t h = 16, w = 8;
    ConvKernel id;
    id.k = 3;
    id.weights.assign(9, 0.0);
    id.weights[4] = 1.0;
    CkksParams p = convParams();
    FheHarness harness(p, {});
    auto img = testImage(h * w, 62);
    Ciphertext ct = harness.encryptor.encrypt(harness.encoder.encode(
        img, p.scale(), harness.ctx.levels()));

    OpCounter counter;
    harness.eval.setCounter(&counter);
    Ciphertext out = conv2d(harness.eval, ct, id, h, w);
    harness.eval.setCounter(nullptr);
    EXPECT_EQ(counter.count(HeOpType::Rotate), 0u);
    auto got = harness.decryptVec(out);
    for (size_t j = 0; j < img.size(); ++j)
        EXPECT_NEAR(got[j].real(), img[j], 1e-4);
}

TEST(Convolution, AvgPoolMatchesReference)
{
    size_t h = 16, w = 8, k = 2;
    CkksParams p = convParams();
    FheHarness harness(p, convRotations(w, k));
    auto img = testImage(h * w, 63);
    auto expect = avgPoolRef(img, k, h, w);
    Ciphertext ct = harness.encryptor.encrypt(harness.encoder.encode(
        img, p.scale(), harness.ctx.levels()));
    auto got = harness.decryptVec(avgPool(harness.eval, ct, k, h, w));
    for (size_t j = 0; j < expect.size(); ++j)
        EXPECT_NEAR(got[j].real(), expect[j], 1e-3);
}

TEST(Convolution, RotationSetIsMinimal)
{
    auto steps = convRotations(8, 3);
    EXPECT_EQ(steps.size(), 8u); // 3x3 minus the zero shift
    for (int s : steps)
        EXPECT_NE(s, 0);
}

TEST(Chebyshev, FitReproducesSmoothFunction)
{
    auto f = [](double x) { return std::exp(0.8 * x) - 0.3 * x; };
    ChebyshevPoly poly = chebyshevFit(f, 12, -1.0, 1.0);
    for (double x = -1.0; x <= 1.0; x += 0.05)
        EXPECT_NEAR(poly(x), f(x), 1e-8);
}

TEST(Chebyshev, PowerBasisConversionIsExact)
{
    auto f = [](double x) { return 0.2 + x - 0.7 * x * x * x; };
    ChebyshevPoly poly = chebyshevFit(f, 7, -2.0, 1.5);
    auto monos = poly.toPowerBasis();
    for (double x = -2.0; x <= 1.5; x += 0.1) {
        cplx acc(0, 0);
        cplx xp(1, 0);
        for (const auto& c : monos) {
            acc += c * xp;
            xp *= x;
        }
        EXPECT_NEAR(acc.real(), poly(x), 1e-7);
    }
}

TEST(Chebyshev, HomomorphicSoftReluActivation)
{
    CkksParams p = convParams();
    p.levels = 9;
    FheHarness harness(p, {});
    auto f = [](double x) { return softRelu(x); };
    ChebyshevPoly poly = chebyshevFit(f, 15, -1.0, 1.0);

    auto v = test::randomRealVec(harness.ctx.slots(), 64, 0.95);
    Ciphertext ct = harness.encryptVec(v);
    auto got = harness.decryptVec(evalChebyshev(harness.eval, ct, poly));
    for (size_t j = 0; j < v.size(); ++j)
        EXPECT_NEAR(got[j].real(), poly(v[j].real()), 5e-2)
            << "slot " << j;
}

TEST(Chebyshev, ApproximatesReluShape)
{
    ChebyshevPoly poly = chebyshevFit([](double x) { return softRelu(x); },
                                      15, -1.0, 1.0);
    // Negative side flat-ish, positive side ~identity.
    EXPECT_NEAR(poly(-0.9), 0.0, 0.02);
    EXPECT_NEAR(poly(0.9), 0.9, 0.02);
    EXPECT_NEAR(poly(0.0), 0.0, 0.02);
}

} // namespace
} // namespace hydra
