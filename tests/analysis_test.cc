/**
 * @file
 * Energy/EDAP/resource-model tests.
 */

#include <gtest/gtest.h>

#include "analysis/energy.hh"
#include "analysis/resources.hh"
#include "baselines/prototypes.hh"

namespace hydra {
namespace {

RunStats
sampleStats()
{
    RunStats st;
    st.makespan = secondsToTicks(2.0);
    st.computeBusy = {secondsToTicks(1.5)};
    st.commBusy = {secondsToTicks(0.1)};
    st.netBytes = 1ull << 30;
    st.totalCost.cuOps = {1000000, 500000, 200000, 50000};
    st.totalCost.hbmBytes = 10ull << 30;
    return st;
}

TEST(Energy, BreakdownSumsToTotal)
{
    EnergyParams ep;
    FpgaParams fpga;
    EnergyBreakdown e = computeEnergy(sampleStats(), ep, fpga, 1);
    double sum = e.hbmJ + e.nicJ + e.staticJ;
    for (double j : e.cuJ)
        sum += j;
    EXPECT_NEAR(e.total(), sum, 1e-12);
}

TEST(Energy, ComponentsMatchCoefficients)
{
    EnergyParams ep;
    FpgaParams fpga;
    RunStats st = sampleStats();
    EnergyBreakdown e = computeEnergy(st, ep, fpga, 4);
    EXPECT_NEAR(e.nicJ, static_cast<double>(st.netBytes) * ep.nicJPerByte,
                1e-15);
    EXPECT_NEAR(e.staticJ, ep.staticWatts * 2.0 * 4.0, 1e-9);
    EXPECT_NEAR(e.cuJ[0], 1e6 * ep.cuOpJ[0], 1e-12);
}

TEST(Energy, TrafficFactorScalesHbm)
{
    EnergyParams ep;
    FpgaParams hydra;
    FpgaParams poseidon;
    poseidon.hbmTrafficFactor = 3.0;
    RunStats st = sampleStats();
    EnergyBreakdown eh = computeEnergy(st, ep, hydra, 1);
    EnergyBreakdown ep2 = computeEnergy(st, ep, poseidon, 1);
    EXPECT_NEAR(ep2.hbmJ / eh.hbmJ, 3.0, 1e-9);
}

TEST(Energy, DynamicShareSumsToOne)
{
    EnergyBreakdown e =
        computeEnergy(sampleStats(), EnergyParams{}, FpgaParams{}, 1);
    double sum = e.dynamicShare(e.hbmJ) + e.dynamicShare(e.nicJ);
    for (double j : e.cuJ)
        sum += e.dynamicShare(j);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(Energy, AsicParamsCheaperThanFpga)
{
    EnergyParams fpga;
    EnergyParams asic = asicEnergyParams();
    for (size_t i = 0; i < kNumCuTypes; ++i)
        EXPECT_LT(asic.cuOpJ[i], fpga.cuOpJ[i]);
}

TEST(Edap, MultiplicativeInAllFactors)
{
    double base = edap(10.0, 2.0, 100.0);
    EXPECT_NEAR(edap(20.0, 2.0, 100.0), 2 * base, 1e-12);
    EXPECT_NEAR(edap(10.0, 4.0, 100.0), 2 * base, 1e-12);
    EXPECT_NEAR(edap(10.0, 2.0, 200.0), 2 * base, 1e-12);
}

TEST(Resources, WithinU280Budget)
{
    ResourceUsage used = estimateResources(FpgaParams{});
    ResourceUsage avail = u280Available();
    EXPECT_LE(used.lutsK, avail.lutsK);
    EXPECT_LE(used.ffsK, avail.ffsK);
    EXPECT_LE(used.dsp, avail.dsp);
    EXPECT_LE(used.bram, avail.bram);
    EXPECT_LE(used.uram, avail.uram);
}

TEST(Resources, MatchesPaperTableFour)
{
    ResourceUsage used = estimateResources(FpgaParams{});
    ResourceUsage avail = u280Available();
    EXPECT_NEAR(used.lutsK / avail.lutsK, 0.765, 0.02);
    EXPECT_NEAR(static_cast<double>(used.dsp) / avail.dsp, 0.965, 0.02);
    EXPECT_NEAR(static_cast<double>(used.bram) / avail.bram, 0.762,
                0.02);
    EXPECT_NEAR(static_cast<double>(used.uram) / avail.uram, 0.798,
                0.02);
}

TEST(Resources, DspTracksLaneCount)
{
    FpgaParams half;
    half.lanes = 256;
    EXPECT_LT(estimateResources(half).dsp,
              estimateResources(FpgaParams{}).dsp);
}

TEST(PublishedTables, RowsAreComplete)
{
    EXPECT_EQ(asicPerformanceTable().size(), 4u);
    EXPECT_EQ(paperFpgaTable().size(), 3u);
    EXPECT_EQ(paperHydraTable().size(), 3u);
    EXPECT_EQ(asicEdapTable().size(), 4u);
    for (const auto& r : asicPerformanceTable()) {
        EXPECT_GT(r.resnet18, 0.0);
        EXPECT_GT(r.opt, r.bert); // OPT is always the heaviest
    }
    // SHARP is the fastest ASIC on every benchmark.
    const auto& rows = asicPerformanceTable();
    for (const auto& r : rows) {
        EXPECT_LE(rows[3].resnet18, r.resnet18);
        EXPECT_LE(rows[3].opt, r.opt);
    }
}

} // namespace
} // namespace hydra
