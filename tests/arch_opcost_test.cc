/**
 * @file
 * Operation cost model tests: scaling behaviour, roofline, sizes, and
 * network transfer-time models.
 */

#include <gtest/gtest.h>

#include "arch/network.hh"
#include "arch/opcost.hh"

namespace hydra {
namespace {

FpgaParams
u280()
{
    return FpgaParams{};
}

TEST(OpCost, CiphertextAndKeySizes)
{
    OpCostModel m(u280(), 1 << 16, 4);
    // Paper Section II-B2: ciphertexts over 20 MB at full parameters.
    EXPECT_GT(m.ciphertextBytes(24), 20ull << 20);
    EXPECT_EQ(m.ciphertextBytes(1), 2ull * (1 << 16) * 8);
    EXPECT_GT(m.keyBytes(24), m.ciphertextBytes(24));
}

TEST(OpCost, CostsGrowWithLimbs)
{
    OpCostModel m(u280(), 1 << 16, 4);
    for (HeOpType op : {HeOpType::HAdd, HeOpType::PMult, HeOpType::CMult,
                        HeOpType::Rotate, HeOpType::Rescale}) {
        uint64_t prev = 0;
        for (size_t l = 2; l <= 24; l += 2) {
            uint64_t c = m.cost(op, l).cycles;
            EXPECT_GT(c, prev) << heOpName(op) << " limbs " << l;
            prev = c;
        }
    }
}

TEST(OpCost, RelativeOpWeights)
{
    // CMult and Rotate are keyswitch-dominated and must dwarf HAdd and
    // PMult; HAdd is the cheapest (paper Table I computation mixes).
    OpCostModel m(u280(), 1 << 16, 4);
    size_t l = 12;
    uint64_t hadd = m.cost(HeOpType::HAdd, l).cycles;
    uint64_t pmult = m.cost(HeOpType::PMult, l).cycles;
    uint64_t cmult = m.cost(HeOpType::CMult, l).cycles;
    uint64_t rot = m.cost(HeOpType::Rotate, l).cycles;
    EXPECT_LT(hadd, pmult * 2);
    EXPECT_GT(cmult, 10 * pmult);
    EXPECT_GT(rot, 10 * pmult);
    EXPECT_GT(cmult, rot / 3); // same order of magnitude
}

TEST(OpCost, RadixFourHalvesNttPasses)
{
    FpgaParams r4 = u280();
    r4.nttRadix = 4;
    FpgaParams r2 = u280();
    r2.nttRadix = 2;
    OpCostModel m4(r4, 1 << 16, 4);
    OpCostModel m2(r2, 1 << 16, 4);
    // Keyswitch-heavy ops are NTT-dominated: radix 4 saves ~2x NTT ops.
    auto c4 = m4.cost(HeOpType::Rotate, 12);
    auto c2 = m2.cost(HeOpType::Rotate, 12);
    size_t ntt = static_cast<size_t>(CuType::Ntt);
    EXPECT_NEAR(static_cast<double>(c2.cuOps[ntt]) /
                    static_cast<double>(c4.cuOps[ntt]),
                2.0, 0.01);
}

TEST(OpCost, RooflineSwitchesWithBandwidth)
{
    FpgaParams fast_mem = u280();
    fast_mem.hbmBytesPerSec = 1e15; // compute-bound
    FpgaParams slow_mem = u280();
    slow_mem.hbmBytesPerSec = 1e9; // memory-bound
    OpCostModel mf(fast_mem, 1 << 16, 4);
    OpCostModel ms(slow_mem, 1 << 16, 4);
    auto cost = mf.cost(HeOpType::CMult, 12);
    EXPECT_LT(mf.latency(cost), ms.latency(cost));
    // Memory-bound latency equals bytes / bandwidth.
    double expect_s = static_cast<double>(cost.hbmBytes) / 1e9;
    EXPECT_NEAR(ticksToSeconds(ms.latency(cost)), expect_s, 1e-6);
}

TEST(OpCost, PoseidonTrafficFactorSlowsMemoryBoundOps)
{
    FpgaParams hydra = u280();
    FpgaParams poseidon = u280();
    poseidon.hbmTrafficFactor = 3.0;
    OpCostModel mh(hydra, 1 << 16, 4);
    OpCostModel mp(poseidon, 1 << 16, 4);
    auto c = mh.cost(HeOpType::CMult, 20);
    EXPECT_GE(mp.latency(c), mh.latency(c));
}

TEST(OpCost, MixCostMatchesManualSum)
{
    OpCostModel m(u280(), 1 << 16, 4);
    OpMix conv{8, 0, 2, 7}; // ConvBN unit from Table I
    OpCost mix = m.mixCost(conv, 12);
    OpCost manual;
    for (int i = 0; i < 8; ++i)
        manual += m.cost(HeOpType::Rotate, 12);
    for (int i = 0; i < 2; ++i)
        manual += m.cost(HeOpType::PMult, 12);
    for (int i = 0; i < 7; ++i)
        manual += m.cost(HeOpType::HAdd, 12);
    EXPECT_EQ(mix.cycles, manual.cycles);
    EXPECT_EQ(mix.hbmBytes, manual.hbmBytes);
}

TEST(Network, SwitchedTransferScalesWithBytes)
{
    NetParams np;
    SwitchedNetwork net(np, hydraM());
    Tick t1 = net.transferTime(1 << 20, 0, 1);
    Tick t2 = net.transferTime(2 << 20, 0, 1);
    EXPECT_GT(t2, t1);
    // ~12.5 GB/s: 1 MiB ~ 84 us plus switch hop.
    EXPECT_NEAR(ticksToSeconds(t1), (1 << 20) / (100e9 / 8) + 1e-6, 1e-6);
}

TEST(Network, CrossServerCostsMoreHops)
{
    NetParams np;
    SwitchedNetwork net(np, hydraL());
    Tick same = net.transferTime(1 << 20, 0, 1);   // server 0
    Tick cross = net.transferTime(1 << 20, 0, 63); // server 0 -> 7
    EXPECT_GT(cross, same);
    EXPECT_EQ(cross - same, 2 * np.switchLatency);
}

TEST(Network, HostMediatedIsSlowerThanSwitched)
{
    uint64_t ct_bytes = 20ull << 20; // one full ciphertext
    SwitchedNetwork hydra(NetParams{}, hydraM());
    HostMediatedNetwork fab(HostNetParams{}, hydraM());
    // Same-host unpaired cards pay two PCIe hops plus host latency.
    EXPECT_GT(fab.transferTime(ct_bytes, 0, 2),
              hydra.transferTime(ct_bytes, 0, 2));
    // Paired cards use FAB's 10 Gb/s link vs Hydra's 100 Gb/s QSFP.
    EXPECT_GT(fab.transferTime(ct_bytes, 0, 1),
              5 * hydra.transferTime(ct_bytes, 0, 1));
    // Crossing hosts adds the LAN hop: far slower than within a host.
    HostMediatedNetwork fab_l(HostNetParams{}, hydraL());
    EXPECT_GT(fab_l.transferTime(ct_bytes, 0, 63),
              3 * fab_l.transferTime(ct_bytes, 0, 2));
}

TEST(Network, BroadcastVsSequentialUnicast)
{
    uint64_t bytes = 8 << 20;
    SwitchedNetwork hydra(NetParams{}, hydraM());
    HostMediatedNetwork fab(HostNetParams{}, hydraM());
    // Hydra broadcast ~ one serialization; FAB pays per receiver.
    EXPECT_LT(hydra.broadcastTime(bytes, 0, 8),
              2 * hydra.transferTime(bytes, 0, 1));
    EXPECT_GT(fab.broadcastTime(bytes, 0, 8),
              3 * fab.transferTime(bytes, 0, 2));
}

} // namespace
} // namespace hydra
