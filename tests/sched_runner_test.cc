/**
 * @file
 * Whole-inference runner tests: end-to-end execution on every machine,
 * determinism, per-procedure aggregation, and paper-shape properties
 * (scaling bands, baseline orderings).
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "baselines/prototypes.hh"

namespace hydra {
namespace {

TEST(Runner, AllMachinesCompleteResNet18)
{
    WorkloadModel wl = makeResNet18();
    for (auto spec : {hydraSSpec(), hydraMSpec(), hydraLSpec(),
                      fabSSpec(), fabMSpec(), poseidonSpec()}) {
        InferenceRunner runner(spec);
        InferenceResult res = runner.run(wl);
        EXPECT_GT(res.seconds(), 0.0) << spec.name;
        EXPECT_EQ(res.steps.size(), wl.steps.size()) << spec.name;
        EXPECT_GE(res.commFraction(), 0.0) << spec.name;
        EXPECT_LT(res.commFraction(), 1.0) << spec.name;
    }
}

TEST(Runner, DeterministicAcrossRuns)
{
    PrototypeSpec spec = hydraMSpec();
    InferenceRunner runner(spec);
    WorkloadModel wl = makeResNet18();
    InferenceResult a = runner.run(wl);
    InferenceResult b = runner.run(wl);
    EXPECT_EQ(a.total.makespan, b.total.makespan);
    EXPECT_EQ(a.total.netBytes, b.total.netBytes);
}

TEST(Runner, ProcedureTimesSumToTotal)
{
    PrototypeSpec spec = hydraMSpec();
    InferenceRunner runner(spec);
    InferenceResult res = runner.run(makeResNet18());
    Tick sum = 0;
    for (size_t k = 0; k < kNumProcKinds; ++k)
        sum += res.procTime(static_cast<ProcKind>(k));
    // Total includes per-step sync gaps, so it is >= the sum of steps.
    EXPECT_GE(res.total.makespan, sum);
    double slack = static_cast<double>(res.total.makespan - sum) /
                   static_cast<double>(res.total.makespan);
    EXPECT_LT(slack, 0.01); // sync overhead is negligible on Hydra
}

TEST(Runner, ScalingWithinPaperBands)
{
    // Hydra-M over Hydra-S: paper reports 6.3x - 7.5x; allow a
    // tolerance band of 5x - 9x for the reproduction.
    WorkloadModel wl = makeResNet18();
    InferenceRunner rs{hydraSSpec()};
    InferenceRunner rm{hydraMSpec()};
    double speedup = rs.run(wl).seconds() / rm.run(wl).seconds();
    EXPECT_GT(speedup, 5.0);
    EXPECT_LT(speedup, 9.0);
}

TEST(Runner, FabSlowerThanHydraSameCards)
{
    WorkloadModel wl = makeBertBase();
    InferenceRunner hm{hydraMSpec()};
    InferenceRunner fm{fabMSpec()};
    double ratio = fm.run(wl).seconds() / hm.run(wl).seconds();
    // Paper: 2.8x - 3.3x; allow 2.5x - 4x.
    EXPECT_GT(ratio, 2.5);
    EXPECT_LT(ratio, 4.0);
}

TEST(Runner, PoseidonBetweenFabAndHydra)
{
    WorkloadModel wl = makeResNet18();
    double h = InferenceRunner{hydraSSpec()}.run(wl).seconds();
    double p = InferenceRunner{poseidonSpec()}.run(wl).seconds();
    double f = InferenceRunner{fabSSpec()}.run(wl).seconds();
    EXPECT_LT(h, p);
    EXPECT_LT(p, f);
}

TEST(Runner, CommOverheadGrowsWithCards)
{
    WorkloadModel wl = makeResNet18();
    double m = InferenceRunner{hydraMSpec()}.run(wl).commFraction();
    double l = InferenceRunner{hydraLSpec()}.run(wl).commFraction();
    EXPECT_LT(m, l);
}

TEST(Runner, OptCommOverheadStaysTiny)
{
    // Paper headline: 0.04% (Hydra-M) and 1.4% (Hydra-L) on OPT-6.7B.
    WorkloadModel wl = makeOpt67B();
    double m = InferenceRunner{hydraMSpec()}.run(wl).commFraction();
    double l = InferenceRunner{hydraLSpec()}.run(wl).commFraction();
    EXPECT_LT(m, 0.005);
    EXPECT_LT(l, 0.05);
    EXPECT_LT(m, l);
}

TEST(Runner, LlmScalesBetterThanCnnAt64Cards)
{
    // Discussion section: transformers exploit Hydra more than the
    // ResNet family.
    InferenceRunner rs{hydraSSpec()};
    InferenceRunner rl{hydraLSpec()};
    double cnn = rs.run(makeResNet18()).seconds() /
                 rl.run(makeResNet18()).seconds();
    double llm = rs.run(makeOpt67B()).seconds() /
                 rl.run(makeOpt67B()).seconds();
    EXPECT_GT(llm, cnn);
}

TEST(Runner, StepResultsCarryLabels)
{
    InferenceRunner runner{hydraMSpec()};
    InferenceResult res = runner.run(makeBertBase());
    size_t boot_steps = 0;
    for (const auto& s : res.steps)
        if (s.kind == ProcKind::Bootstrap)
            ++boot_steps;
    EXPECT_EQ(boot_steps, makeBertBase().stepCount(ProcKind::Bootstrap));
}

TEST(RunnerFaults, RepeatedCardDeathsDedupAndTerminate)
{
    InferenceRunner runner{hydraMSpec()};
    WorkloadModel wl = makeResNet18();

    FaultPlan one;
    one.cardFailAt[2] = secondsToTicks(0.5);
    InferenceResult r1 = runner.run(wl, one);
    ASSERT_TRUE(r1.ok()) << r1.error.message;
    ASSERT_EQ(r1.failedCards.size(), 1u);
    EXPECT_EQ(r1.failedCards[0], 2u);

    // A second death later in the same inference: the survivors-only
    // re-dispatch must shrink again and still terminate.
    FaultPlan two = one;
    two.cardFailAt[5] = secondsToTicks(2.0);
    InferenceResult r2 = runner.run(wl, two);
    ASSERT_TRUE(r2.ok()) << r2.error.message;

    // Each card appears at most once even though several steps abort
    // on it before the re-dispatch takes effect.
    std::vector<size_t> cards = r2.failedCards;
    std::sort(cards.begin(), cards.end());
    EXPECT_TRUE(std::adjacent_find(cards.begin(), cards.end()) ==
                cards.end());
    EXPECT_EQ(cards.size(), 2u);

    // Losing more cards can only waste more time: the recovery
    // penalty is monotone in the set of deaths.
    EXPECT_GE(r2.recoveryPenalty, r1.recoveryPenalty);
    EXPECT_GT(r2.recoveryPenalty, 0u);
    EXPECT_GE(r2.redispatches, r1.redispatches);
}

TEST(RunnerJobs, AlignedGroupMatchesWholeMachine)
{
    // A whole-server 8-card slice of Hydra-L is exactly a Hydra-M:
    // the job-scoped path must reproduce the standalone run tick for
    // tick, including on a non-zero start tick.
    WorkloadModel wl = makeResNet18();
    InferenceResult whole = InferenceRunner{hydraMSpec()}.run(wl);

    InferenceRunner large{hydraLSpec()};
    CardGroup slice = CardGroup::contiguous(8, 8);
    ASSERT_TRUE(slice.alignedTo(hydraLSpec().cluster));
    InferenceResult job =
        large.runJob(wl, slice, secondsToTicks(3.0));
    ASSERT_TRUE(job.ok()) << job.error.message;
    EXPECT_EQ(job.total.makespan, whole.total.makespan);
}

TEST(RunnerJobs, ResumeComposesWithFullRun)
{
    InferenceRunner runner{hydraMSpec()};
    WorkloadModel wl = makeResNet18();
    CardGroup all = CardGroup::contiguous(0, 8);

    InferenceResult full = runner.runJob(wl, all, 0);
    ASSERT_TRUE(full.ok());

    const size_t cut = wl.steps.size() / 2;
    InferenceResult head = runner.runJob(wl, all, 0, {}, {}, 0, cut);
    ASSERT_TRUE(head.ok());
    InferenceResult tail = runner.runJob(wl, all, head.total.makespan,
                                         {}, {}, cut,
                                         wl.steps.size() - cut);
    ASSERT_TRUE(tail.ok());

    EXPECT_EQ(head.steps.size() + tail.steps.size(),
              full.steps.size());
    EXPECT_EQ(head.total.makespan + tail.total.makespan,
              full.total.makespan);
}

TEST(RunnerJobs, PreemptedResumeFingerprintIsExact)
{
    // The cake scheduler's step-boundary preemption re-dispatches the
    // tail of a sliced job via runJob(first_step, num_steps); for the
    // slicing to be invisible, head + tail must reproduce the whole
    // run bit for bit — not just the makespan, but every
    // execution-visible RunStats field, at every possible split point.
    InferenceRunner runner{hydraMSpec()};
    WorkloadModel wl = makeResNet18();
    CardGroup all = CardGroup::contiguous(0, 8);

    InferenceResult full = runner.runJob(wl, all, 0);
    ASSERT_TRUE(full.ok());

    for (size_t cut = 1; cut < wl.steps.size(); ++cut) {
        InferenceResult head =
            runner.runJob(wl, all, 0, {}, {}, 0, cut);
        ASSERT_TRUE(head.ok()) << "cut " << cut;
        InferenceResult tail = runner.runJob(
            wl, all, head.total.makespan, {}, {}, cut,
            wl.steps.size() - cut);
        ASSERT_TRUE(tail.ok()) << "cut " << cut;

        RunStats composed = head.total;
        composed.append(tail.total);
        EXPECT_EQ(composed.fingerprint(), full.total.fingerprint())
            << "cut " << cut;

        // Checkpoint boundaries compose too: the tail's stepEnds are
        // offsets from its own start, so shifting them by the head's
        // makespan must reproduce the whole run's boundary list.
        ASSERT_EQ(head.stepEnds.size(), cut) << "cut " << cut;
        std::vector<Tick> ends = head.stepEnds;
        for (Tick e : tail.stepEnds)
            ends.push_back(head.total.makespan + e);
        EXPECT_EQ(ends, full.stepEnds) << "cut " << cut;
    }
}

TEST(RunnerJobs, RaggedGroupDegradesAndSurvives)
{
    // Kill a card of a 3-card ragged group mid-job: the job must
    // re-dispatch onto the survivors and finish degraded, reporting
    // the dead card by its original machine index.
    InferenceRunner runner{hydraMSpec()};
    WorkloadModel wl = makeResNet18();
    CardGroup group;
    group.cards = {1, 4, 6};

    InferenceResult clean = runner.runJob(wl, group, 0);
    ASSERT_TRUE(clean.ok());

    FaultPlan plan;
    const Tick start = secondsToTicks(10.0);
    plan.cardFailAt[4] = start + clean.total.makespan / 2;
    InferenceResult hurt = runner.runJob(wl, group, start, plan);
    ASSERT_TRUE(hurt.ok()) << hurt.error.message;
    ASSERT_EQ(hurt.failedCards.size(), 1u);
    EXPECT_EQ(hurt.failedCards[0], 4u);
    EXPECT_GT(hurt.redispatches, 0u);
    EXPECT_GT(hurt.total.makespan, clean.total.makespan);
}

} // namespace
} // namespace hydra
