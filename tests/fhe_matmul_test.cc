/**
 * @file
 * PCMM / CCMM functional kernel tests against plain matrix products
 * (the transformer building blocks of paper Section III-A).
 */

#include <gtest/gtest.h>

#include "fhe/matmul.hh"
#include "fhe_test_util.hh"

namespace hydra {
namespace {

using test::FheHarness;

CkksParams
mmParams()
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8; // 128 slots
    p.levels = 6;
    return p;
}

RMatrix
randomMatrix(size_t d, uint64_t seed, double magnitude = 0.5)
{
    Rng rng(seed);
    RMatrix m(d, std::vector<double>(d));
    for (auto& row : m)
        for (auto& x : row)
            x = rng.uniformReal(-magnitude, magnitude);
    return m;
}

double
maxAbsDiff(const RMatrix& a, const RMatrix& b)
{
    double worst = 0;
    for (size_t i = 0; i < a.size(); ++i)
        for (size_t j = 0; j < a.size(); ++j)
            worst = std::max(worst, std::abs(a[i][j] - b[i][j]));
    return worst;
}

TEST(PackUnpack, RoundTrips)
{
    RMatrix m = randomMatrix(5, 90);
    auto slots = packMatrix(m, 64);
    RMatrix back = unpackMatrix(slots, 5);
    EXPECT_LT(maxAbsDiff(m, back), 1e-12);
    // Padding stays zero.
    for (size_t i = 25; i < 64; ++i)
        EXPECT_EQ(slots[i], cplx(0, 0));
}

TEST(MatMulRef, KnownProduct)
{
    RMatrix a = {{1, 2}, {3, 4}};
    RMatrix b = {{5, 6}, {7, 8}};
    RMatrix c = matMulRef(a, b);
    EXPECT_DOUBLE_EQ(c[0][0], 19);
    EXPECT_DOUBLE_EQ(c[0][1], 22);
    EXPECT_DOUBLE_EQ(c[1][0], 43);
    EXPECT_DOUBLE_EQ(c[1][1], 50);
}

class PcmmTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(PcmmTest, MatchesPlainProduct)
{
    size_t d = GetParam();
    CkksParams p = mmParams();
    RMatrix a = randomMatrix(d, 91);
    RMatrix w = randomMatrix(d, 92);

    CkksContext probe(p);
    CkksEncoder probe_enc(probe);
    PcmmPlan probe_plan(probe_enc, w, d, p.scale());

    FheHarness h(p, probe_plan.requiredRotations());
    PcmmPlan plan(h.encoder, w, d, p.scale());
    Ciphertext ct = h.encryptor.encrypt(h.encoder.encode(
        packMatrix(a, h.ctx.slots()), p.scale(), h.ctx.levels()));

    Ciphertext out = plan.apply(h.eval, ct);
    RMatrix got = unpackMatrix(h.decryptVec(out), d);
    EXPECT_LT(maxAbsDiff(got, matMulRef(a, w)), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Dims, PcmmTest, ::testing::Values(2, 4, 8));

class CcmmTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(CcmmTest, MatchesPlainProduct)
{
    size_t d = GetParam();
    CkksParams p = mmParams();
    FheHarness h(p, ccmmRotations(d));
    RMatrix a = randomMatrix(d, 93);
    RMatrix b = randomMatrix(d, 94);

    Ciphertext ca = h.encryptor.encrypt(h.encoder.encode(
        packMatrix(a, h.ctx.slots()), p.scale(), h.ctx.levels()));
    Ciphertext cb = h.encryptor.encrypt(h.encoder.encode(
        packMatrix(b, h.ctx.slots()), p.scale(), h.ctx.levels()));

    Ciphertext out = ccmm(h.eval, ca, cb, d);
    RMatrix got = unpackMatrix(h.decryptVec(out), d);
    EXPECT_LT(maxAbsDiff(got, matMulRef(a, b)), 5e-3);
}

INSTANTIATE_TEST_SUITE_P(Dims, CcmmTest, ::testing::Values(2, 4, 8));

TEST(CcmmChain, AttentionLikeComposition)
{
    // scores = Q x K, context = scores x V -- two chained CCMMs, the
    // heart of the encrypted attention layer.
    size_t d = 4;
    CkksParams p = mmParams();
    p.levels = 9;
    FheHarness h(p, ccmmRotations(d));
    RMatrix q = randomMatrix(d, 95, 0.4);
    RMatrix k = randomMatrix(d, 96, 0.4);
    RMatrix v = randomMatrix(d, 97, 0.4);

    auto enc = [&](const RMatrix& m) {
        return h.encryptor.encrypt(h.encoder.encode(
            packMatrix(m, h.ctx.slots()), p.scale(), h.ctx.levels()));
    };
    Ciphertext scores = ccmm(h.eval, enc(q), enc(k), d);
    Ciphertext cv = h.eval.dropToLevel(enc(v), scores.level());
    cv.scale = scores.scale; // fp drift across rescales
    Ciphertext context = ccmm(h.eval, scores, cv, d);

    RMatrix expect = matMulRef(matMulRef(q, k), v);
    RMatrix got = unpackMatrix(h.decryptVec(context), d);
    EXPECT_LT(maxAbsDiff(got, expect), 1e-2);
}

TEST(CcmmRotations, SetSizes)
{
    auto steps = ccmmRotations(4);
    // 2d-2 row steps + 2d-2 column steps.
    EXPECT_EQ(steps.size(), 12u);
    for (int s : steps)
        EXPECT_NE(s, 0);
}

} // namespace
} // namespace hydra
