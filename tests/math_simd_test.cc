/**
 * @file
 * Bit-exactness tests for the runtime-dispatched SIMD kernel sets.
 *
 * The scalar table is the oracle: for every dispatch level the host can
 * run, every span kernel and NTT transform must produce bit-identical
 * output on the same input -- including lazy-reduction corner cases
 * (moduli near the 2^62 ceiling), small-n fallback paths, and non-lane
 * -multiple tails.  A final battery checks full evaluator ops end to
 * end at each level against the scalar result.
 */

#include <gtest/gtest.h>

#include <cstring>
#include <limits>
#include <vector>

#include "common/rng.hh"
#include "fhe_test_util.hh"
#include "math/ntt.hh"
#include "math/primes.hh"
#include "math/simd/simd.hh"

namespace hydra {
namespace {

/** Every level this host can actually dispatch to (scalar always). */
std::vector<SimdLevel>
runnableLevels()
{
    std::vector<SimdLevel> out{SimdLevel::Scalar};
    if (simd::bestAvailableLevel() >= SimdLevel::Avx2)
        out.push_back(SimdLevel::Avx2);
    if (simd::bestAvailableLevel() >= SimdLevel::Avx512)
        out.push_back(SimdLevel::Avx512);
    return out;
}

/** Moduli spanning the supported range, including near-2^62 primes. */
std::vector<u64>
testModuli()
{
    std::vector<u64> qs;
    for (int bits : {30, 45, 50, 59, 61})
        qs.push_back(nttPrimes(4096, bits, 1)[0]);
    return qs;
}

/** Span lengths hitting full vectors, tails, and sub-vector sizes. */
const size_t kSpanSizes[] = {1, 3, 7, 8, 9, 15, 16, 64, 333, 1024};

std::vector<u64>
randomCanonical(size_t n, u64 q, u64 seed)
{
    Rng rng(seed);
    std::vector<u64> v(n);
    for (auto& x : v)
        x = rng.uniformU64(q);
    return v;
}

std::vector<i64>
randomSigned(size_t n, u64 seed)
{
    Rng rng(seed);
    std::vector<i64> v(n);
    for (auto& x : v) {
        u64 raw = rng.uniformU64(~u64{0} - 1) + 1;
        std::memcpy(&x, &raw, sizeof(x));
        // Avoid INT64_MIN: |x| overflows and reduceI64 is the oracle
        // for representable magnitudes only.
        if (x == std::numeric_limits<i64>::min())
            x += 1;
    }
    return v;
}

class SimdLevelGuard
{
  public:
    ~SimdLevelGuard() { simd::setLevel(simd::bestAvailableLevel()); }
};

TEST(SimdDispatchTest, SetLevelClampsToAvailable)
{
    SimdLevelGuard guard;
    EXPECT_EQ(simd::setLevel(SimdLevel::Scalar), SimdLevel::Scalar);
    EXPECT_EQ(simd::activeLevel(), SimdLevel::Scalar);
    SimdLevel best = simd::setLevel(SimdLevel::Avx512);
    EXPECT_EQ(best, simd::bestAvailableLevel());
    EXPECT_EQ(simd::kernels().level, best);
}

TEST(SimdSpanTest, FuzzAllKernelsMatchScalarOracle)
{
    SimdLevelGuard guard;
    u64 seed = 0x5eed;
    for (SimdLevel level : runnableLevels()) {
        ASSERT_EQ(simd::setLevel(level), level);
        const simd::Kernels& k = simd::kernels();
        const simd::Kernels& oracle = simd::scalarKernels();
        for (u64 qv : testModuli()) {
            Modulus m(qv);
            for (size_t n : kSpanSizes) {
                std::vector<u64> a = randomCanonical(n, qv, ++seed);
                std::vector<u64> b = randomCanonical(n, qv, ++seed);
                std::vector<u64> c = randomCanonical(n, qv, ++seed);
                u64 w = randomCanonical(1, qv, ++seed)[0];
                ShoupMul ws(w, m);

                auto check = [&](const char* name, auto&& run) {
                    std::vector<u64> got = a;
                    std::vector<u64> want = a;
                    run(k, got);
                    run(oracle, want);
                    ASSERT_EQ(got, want)
                        << name << " level="
                        << simdLevelName(level) << " q=" << qv
                        << " n=" << n;
                };

                check("addSpan",
                      [&](const simd::Kernels& t, std::vector<u64>& x) {
                          t.addSpan(x.data(), b.data(), n, qv);
                      });
                check("subSpan",
                      [&](const simd::Kernels& t, std::vector<u64>& x) {
                          t.subSpan(x.data(), b.data(), n, qv);
                      });
                check("negSpan",
                      [&](const simd::Kernels& t, std::vector<u64>& x) {
                          t.negSpan(x.data(), n, qv);
                      });
                check("mulSpan",
                      [&](const simd::Kernels& t, std::vector<u64>& x) {
                          t.mulSpan(x.data(), b.data(), n, m);
                      });
                check("macSpan",
                      [&](const simd::Kernels& t, std::vector<u64>& x) {
                          t.macSpan(x.data(), b.data(), c.data(), n, m);
                      });
                check("mulScalarSpan",
                      [&](const simd::Kernels& t, std::vector<u64>& x) {
                          t.mulScalarSpan(x.data(), n, ws.value(),
                                          ws.shoup(), qv);
                      });
                check("subMulScalarSpan",
                      [&](const simd::Kernels& t, std::vector<u64>& x) {
                          t.subMulScalarSpan(x.data(), b.data(), n,
                                             ws.value(), ws.shoup(),
                                             qv);
                      });

                {
                    std::vector<u64> g0 = a, w0 = a, g1 = b, w1 = b;
                    k.macPairSpan(g0.data(), g1.data(), c.data(),
                                  a.data(), b.data(), n, m);
                    oracle.macPairSpan(w0.data(), w1.data(), c.data(),
                                       a.data(), b.data(), n, m);
                    ASSERT_EQ(g0, w0) << "macPairSpan acc0 q=" << qv;
                    ASSERT_EQ(g1, w1) << "macPairSpan acc1 q=" << qv;
                }
                {
                    std::vector<i64> got(n), want(n);
                    k.toCenteredSpan(got.data(), a.data(), n, qv);
                    oracle.toCenteredSpan(want.data(), a.data(), n, qv);
                    ASSERT_EQ(got, want) << "toCenteredSpan q=" << qv;
                }
                {
                    std::vector<i64> src = randomSigned(n, ++seed);
                    std::vector<u64> got(n), want(n);
                    k.reduceCenteredSpan(got.data(), src.data(), n, m);
                    oracle.reduceCenteredSpan(want.data(), src.data(),
                                              n, m);
                    ASSERT_EQ(got, want)
                        << "reduceCenteredSpan q=" << qv;
                }
            }
        }
    }
}

TEST(SimdNttTest, TransformsMatchScalarAndRoundTrip)
{
    SimdLevelGuard guard;
    u64 seed = 0xabcd;
    for (SimdLevel level : runnableLevels()) {
        ASSERT_EQ(simd::setLevel(level), level);
        const simd::Kernels& k = simd::kernels();
        const simd::Kernels& oracle = simd::scalarKernels();
        // n = 4 and 8 exercise the small-n scalar fallbacks, 16 the
        // tile-transposed short strides alone, larger sizes both loop
        // families plus odd/even log2(n) for the radix-4 path.
        for (size_t n : {size_t{4}, size_t{8}, size_t{16}, size_t{32},
                         size_t{1024}, size_t{4096}}) {
            for (int bits : {45, 59, 61}) {
                Modulus q(nttPrimes(n, bits, 1)[0]);
                NttTable table(n, q);
                std::vector<u64> input =
                    randomCanonical(n, q.value(), ++seed);

                std::vector<u64> fwd = input;
                k.nttForward(table, fwd.data());
                std::vector<u64> want = input;
                oracle.nttForward(table, want.data());
                ASSERT_EQ(fwd, want)
                    << "forward n=" << n << " bits=" << bits
                    << " level=" << simdLevelName(level);

                std::vector<u64> r4 = input;
                k.nttForwardRadix4(table, r4.data());
                ASSERT_EQ(r4, want)
                    << "radix4 n=" << n << " bits=" << bits
                    << " level=" << simdLevelName(level);

                std::vector<u64> inv = fwd;
                k.nttInverse(table, inv.data());
                ASSERT_EQ(inv, input)
                    << "roundtrip n=" << n << " bits=" << bits
                    << " level=" << simdLevelName(level);

                std::vector<u64> inv_want = fwd;
                oracle.nttInverse(table, inv_want.data());
                ASSERT_EQ(inv, inv_want);
            }
        }
    }
}

/** All limbs of two polynomials byte-identical. */
void
expectPolyEq(const RnsPoly& a, const RnsPoly& b, const char* what)
{
    ASSERT_EQ(a.limbCount(), b.limbCount()) << what;
    for (size_t kk = 0; kk < a.limbCount(); ++kk)
        ASSERT_EQ(std::memcmp(a.limbData(kk), b.limbData(kk),
                              a.n() * sizeof(u64)),
                  0)
            << what << " limb " << kk;
}

TEST(SimdEvaluatorTest, OpsBitIdenticalAcrossLevels)
{
    SimdLevelGuard guard;
    test::FheHarness h(CkksParams::unitTest(), {1});
    std::vector<cplx> va = test::randomComplexVec(h.ctx.slots(), 7);
    std::vector<cplx> vb = test::randomComplexVec(h.ctx.slots(), 8);
    Ciphertext ca = h.encryptVec(va);
    Ciphertext cb = h.encryptVec(vb);
    Plaintext pt = h.encoder.encode(vb, h.ctx.params().scale(),
                                    h.ctx.levels());

    // One pass per level over the same inputs; every output ciphertext
    // must match the scalar pass bit for bit.
    struct Outputs
    {
        Ciphertext add, mul_plain, mac, cmult, rot;
    };
    std::vector<std::pair<SimdLevel, Outputs>> runs;
    for (SimdLevel level : runnableLevels()) {
        ASSERT_EQ(simd::setLevel(level), level);
        Outputs o;
        o.add = h.eval.add(ca, cb);
        o.mul_plain = h.eval.mulPlain(ca, pt);
        o.mac = ca;
        o.mac.scale *= pt.scale;
        h.eval.addMulPlain(o.mac, cb, pt);
        o.cmult = h.eval.rescale(h.eval.mulRelin(ca, cb));
        o.rot = h.eval.rotate(ca, 1);
        runs.emplace_back(level, std::move(o));
    }

    const Outputs& base = runs.front().second;
    for (size_t i = 1; i < runs.size(); ++i) {
        const Outputs& o = runs[i].second;
        expectPolyEq(o.add.c0, base.add.c0, "add c0");
        expectPolyEq(o.add.c1, base.add.c1, "add c1");
        expectPolyEq(o.mul_plain.c0, base.mul_plain.c0, "pmul c0");
        expectPolyEq(o.mul_plain.c1, base.mul_plain.c1, "pmul c1");
        expectPolyEq(o.mac.c0, base.mac.c0, "mac c0");
        expectPolyEq(o.mac.c1, base.mac.c1, "mac c1");
        expectPolyEq(o.cmult.c0, base.cmult.c0, "cmult c0");
        expectPolyEq(o.cmult.c1, base.cmult.c1, "cmult c1");
        expectPolyEq(o.rot.c0, base.rot.c0, "rotate c0");
        expectPolyEq(o.rot.c1, base.rot.c1, "rotate c1");
    }
}

} // namespace
} // namespace hydra
