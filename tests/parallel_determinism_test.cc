/**
 * @file
 * Bit-exactness of the parallel RNS execution layer: every operation
 * must produce byte-identical limbs whatever the thread count, because
 * parallelFor partitions index ranges statically and each index writes
 * only its own outputs.  Also covers the lazy-reduction NTT rewrite:
 * roundtrip identity and radix-4 vs radix-2 equivalence on both even
 * and odd log2(n).
 */

#include <gtest/gtest.h>

#include "common/parallel.hh"
#include "fhe_test_util.hh"
#include "math/primes.hh"

namespace hydra {
namespace {

using test::FheHarness;

bool
polysIdentical(const RnsPoly& a, const RnsPoly& b)
{
    if (a.limbCount() != b.limbCount() || a.nttForm() != b.nttForm())
        return false;
    for (size_t k = 0; k < a.limbCount(); ++k)
        if (a.limb(k) != b.limb(k))
            return false;
    return true;
}

bool
ciphertextsIdentical(const Ciphertext& a, const Ciphertext& b)
{
    return a.scale == b.scale && polysIdentical(a.c0, b.c0) &&
           polysIdentical(a.c1, b.c1);
}

/** Restore the previous pool size even if an assertion throws. */
struct ThreadCountGuard
{
    explicit ThreadCountGuard(size_t n)
        : saved(ThreadPool::instance().threadCount())
    {
        ThreadPool::instance().setThreadCount(n);
    }

    ~ThreadCountGuard() { ThreadPool::instance().setThreadCount(saved); }

    size_t saved;
};

CkksParams
smallParams()
{
    CkksParams p;
    p.n = 1 << 8;
    p.levels = 4;
    return p;
}

TEST(ParallelDeterminism, MulRelinRotateBitExactAcrossThreadCounts)
{
    FheHarness h(smallParams(), {1, 3});
    auto v = test::randomComplexVec(h.ctx.slots(), 7);
    Ciphertext ct = h.encryptVec(v);

    Ciphertext prod_serial, rot_serial, hoist_serial;
    {
        ThreadCountGuard tc(1);
        prod_serial = h.eval.mulRelin(ct, ct);
        rot_serial = h.eval.rotate(ct, 1);
        hoist_serial = h.eval.rotateHoisted(ct, {3})[0];
    }
    for (size_t threads : {4u, 8u}) {
        ThreadCountGuard tc(threads);
        EXPECT_TRUE(
            ciphertextsIdentical(prod_serial, h.eval.mulRelin(ct, ct)))
            << "mulRelin diverges at " << threads << " threads";
        EXPECT_TRUE(
            ciphertextsIdentical(rot_serial, h.eval.rotate(ct, 1)))
            << "rotate diverges at " << threads << " threads";
        EXPECT_TRUE(ciphertextsIdentical(
            hoist_serial, h.eval.rotateHoisted(ct, {3})[0]))
            << "hoisted rotate diverges at " << threads << " threads";
    }
}

TEST(ParallelDeterminism, BootstrapStepBitExactAcrossThreadCounts)
{
    CkksParams p = CkksParams::bootstrapTest();
    p.n = 1 << 8;

    // The bootstrap C2S stage (BSGS linear transform over hoisted
    // rotations) exercises decomposeDigits, accumulateKey, the
    // automorphism memo and the plaintext NTT cache all at once.
    CkksContext probe_ctx(p);
    CkksEncoder probe_enc(probe_ctx);
    Bootstrapper probe_boot(probe_ctx, probe_enc);
    FheHarness h(p, probe_boot.requiredRotations());
    Bootstrapper boot(h.ctx, h.encoder);

    auto v = test::randomRealVec(h.ctx.slots(), 11, 0.01);
    Ciphertext ct = h.encryptVec(v, 1);
    Ciphertext raised = boot.modRaise(ct);

    std::pair<Ciphertext, Ciphertext> serial;
    {
        ThreadCountGuard tc(1);
        serial = boot.coeffToSlot(h.eval, raised);
    }
    {
        ThreadCountGuard tc(8);
        auto parallel = boot.coeffToSlot(h.eval, raised);
        EXPECT_TRUE(ciphertextsIdentical(serial.first, parallel.first));
        EXPECT_TRUE(ciphertextsIdentical(serial.second, parallel.second));
    }
}

class NttEquivalenceTest : public ::testing::TestWithParam<size_t>
{
};

TEST_P(NttEquivalenceTest, RoundtripAndRadix4MatchRadix2)
{
    size_t n = GetParam();
    Modulus q(nttPrimes(n, 50, 1)[0]);
    NttTable table(n, q);

    Rng rng(0xfeedu + n);
    std::vector<u64> orig(n);
    for (auto& x : orig)
        x = rng.uniformU64(q.value());

    // Roundtrip: inverse(forward(a)) == a with canonical residues.
    std::vector<u64> a = orig;
    table.forward(a);
    for (u64 x : a)
        ASSERT_LT(x, q.value()) << "forward output not normalized";
    table.inverse(a);
    EXPECT_EQ(a, orig);

    // Radix-4 fused passes must stay bit-identical to radix-2.
    std::vector<u64> r2 = orig, r4 = orig;
    table.forward(r2.data());
    table.forwardRadix4(r4.data());
    EXPECT_EQ(r2, r4);
}

// 2^10 and 2^12 exercise even log2(n) (pure radix-4); 2^9 and 2^13 end
// with the odd-log residual radix-2 stage.
INSTANTIATE_TEST_SUITE_P(EvenAndOddLogN, NttEquivalenceTest,
                         ::testing::Values(1 << 9, 1 << 10, 1 << 12,
                                           1 << 13));

TEST(ParallelDeterminism, ParallelForCoversRangeOnce)
{
    ThreadCountGuard tc(8);
    std::vector<int> hits(1013, 0);
    parallelFor(0, hits.size(), [&](size_t i) { hits[i] += 1; });
    for (size_t i = 0; i < hits.size(); ++i)
        ASSERT_EQ(hits[i], 1) << "index " << i;

    // Nested calls degrade to serial but still cover the range.
    std::vector<int> nested(64 * 16, 0);
    parallelFor(0, 64, [&](size_t i) {
        parallelFor(0, 16, [&](size_t j) { nested[i * 16 + j] += 1; });
    });
    for (size_t i = 0; i < nested.size(); ++i)
        ASSERT_EQ(nested[i], 1) << "nested index " << i;
}

TEST(ParallelDeterminism, PlaintextNttCacheMatchesUncachedPath)
{
    FheHarness h(smallParams());
    auto v = test::randomComplexVec(h.ctx.slots(), 23);
    Plaintext pt = h.encoder.encode(v, h.ctx.params().scale(),
                                    h.ctx.levels());
    Ciphertext ct = h.encryptVec(v, 2);

    // First call builds the level-2 entry, second call must reuse it
    // and yield the identical product.
    Ciphertext first = h.eval.mulPlain(ct, pt);
    Ciphertext second = h.eval.mulPlain(ct, pt);
    EXPECT_TRUE(ciphertextsIdentical(first, second));

    // The cached polynomial equals an explicit restrict + NTT.
    RnsPoly manual(pt.poly.basis(), 2, false, false);
    for (size_t k = 0; k < 2; ++k)
        manual.copyLimbFrom(k, pt.poly, k);
    manual.toNtt();
    EXPECT_TRUE(polysIdentical(manual, pt.nttRestricted(2)));
}

} // namespace
} // namespace hydra
