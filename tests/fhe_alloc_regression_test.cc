/**
 * @file
 * Allocation-regression guard for the evaluator hot path: once a
 * CMult + Rescale + Rotate loop has run a couple of warm-up rounds,
 * every RnsPoly temporary (keyswitch digits, automorphism outputs,
 * rescale scratch, relin accumulators) must be served from the
 * BufferPool buckets — zero fresh allocations in steady state.  A miss
 * here means some path regressed to allocating per call.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "common/pool.hh"
#include "fhe_test_util.hh"

namespace hydra {
namespace {

using test::FheHarness;

CkksParams
loopParams()
{
    CkksParams p;
    p.n = 1 << 10;
    p.levels = 8;
    return p;
}

TEST(AllocRegression, SteadyStateEvaluatorLoopNeverMissesPool)
{
    FheHarness h(loopParams(), {1});
    auto v = test::randomComplexVec(h.ctx.slots(), 31);
    Ciphertext ct = h.encryptVec(v);

    auto loopBody = [&] {
        // One round of the hot ciphertext ops, all at fixed sizes so
        // the same buckets are exercised every round.
        Ciphertext t = h.eval.mulRelin(ct, ct);
        t = h.eval.rescale(t);
        t = h.eval.rotate(t, 1);
        return t;
    };

    // Warm-up: populates the buckets plus the evaluator-side caches
    // (automorphism index maps, keyswitch scratch).  `last` is held
    // across iterations exactly like the measured loop so the bucket
    // inventory matches steady state.
    Ciphertext last;
    for (int i = 0; i < 2; ++i)
        last = loopBody();

    BufferPool::global().resetStats();
    for (int i = 0; i < 8; ++i)
        last = loopBody();

    BufferPool::Stats s = BufferPool::global().stats();
    EXPECT_EQ(s.misses, 0u)
        << "steady-state evaluator loop allocated " << s.misses
        << " fresh buffers (hits: " << s.hits << ")";
    EXPECT_GT(s.hits, 0u);

    // The loop result must still decrypt correctly: pooling must never
    // hand out a buffer that is still referenced elsewhere.
    auto rotated = v;
    for (auto& x : rotated)
        x *= x; // one CMult of v with itself...
    std::rotate(rotated.begin(), rotated.begin() + 1, rotated.end());
    auto w = h.decryptVec(last);
    EXPECT_LT(test::maxError(rotated, w), 1e-3);
}

TEST(AllocRegression, HoistedRotationSteadyStateNeverMissesPool)
{
    FheHarness h(loopParams(), {1, 2, 3, 4});
    auto v = test::randomComplexVec(h.ctx.slots(), 33);
    Ciphertext ct = h.encryptVec(v);
    std::vector<int> steps = {1, 2, 3, 4};

    for (int i = 0; i < 2; ++i)
        h.eval.rotateHoisted(ct, steps);

    BufferPool::global().resetStats();
    for (int i = 0; i < 4; ++i)
        h.eval.rotateHoisted(ct, steps);

    BufferPool::Stats s = BufferPool::global().stats();
    EXPECT_EQ(s.misses, 0u)
        << "hoisted rotation allocated " << s.misses << " fresh buffers";
    EXPECT_GT(s.hits, 0u);
}

} // namespace
} // namespace hydra
