/**
 * @file
 * ServeStats tests: the fixed-bucket latency histogram against a
 * sorted-vector oracle, and the determinism hash.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hh"
#include "serve/stats.hh"

namespace hydra {
namespace {

/** Nearest-rank percentile over the exact samples. */
Tick
oracle(std::vector<Tick> samples, double p)
{
    std::sort(samples.begin(), samples.end());
    size_t rank = static_cast<size_t>(
        std::ceil(p * static_cast<double>(samples.size())));
    rank = std::max<size_t>(rank, 1);
    return samples[rank - 1];
}

TEST(LatencyHistogram, EmptyIsZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

TEST(LatencyHistogram, PercentileMatchesSortedOracle)
{
    // Latencies spread over ~4 decades (100us .. 2s), drawn from the
    // repo's deterministic hash stream.
    std::vector<Tick> samples;
    LatencyHistogram h;
    for (uint64_t i = 0; i < 5000; ++i) {
        double u = hashUnit(42, 0, i, 0x6c617431);
        double v = hashUnit(42, 1, i, 0x6c617432);
        double seconds = 100e-6 * std::pow(10.0, 4.0 * u) *
                         (0.5 + v);
        Tick t = secondsToTicks(seconds);
        samples.push_back(t);
        h.add(t);
    }
    EXPECT_EQ(h.count(), samples.size());

    for (double p : {0.50, 0.90, 0.95, 0.99}) {
        Tick exact = oracle(samples, p);
        Tick est = h.percentile(p);
        // The estimate is the containing bucket's upper edge: never
        // below the true value, and within one bucket ratio (2^(1/4))
        // above it.
        EXPECT_GE(est, exact) << "p=" << p;
        EXPECT_LE(static_cast<double>(est),
                  static_cast<double>(exact) * std::pow(2.0, 0.25) +
                      1.0)
            << "p=" << p;
    }
}

TEST(LatencyHistogram, OverflowClampsToLastBucket)
{
    LatencyHistogram h;
    h.add(secondsToTicks(1e6)); // ~11 days, way past the last edge
    EXPECT_EQ(h.count(), 1u);
    EXPECT_EQ(h.percentile(0.5),
              LatencyHistogram::bucketUpper(
                  LatencyHistogram::kBuckets - 1));
}

TEST(LatencyHistogram, BucketEdgesAreGeometric)
{
    for (size_t i = 1; i < LatencyHistogram::kBuckets; ++i)
        EXPECT_GT(LatencyHistogram::bucketUpper(i),
                  LatencyHistogram::bucketUpper(i - 1));
}

TEST(ServeStatsHash, SensitiveToContent)
{
    ServeStats a;
    a.offered = 10;
    a.completed = 9;
    a.latency.add(secondsToTicks(0.01));
    ServeStats b = a;
    EXPECT_EQ(a.hash(), b.hash());

    b.completed = 8;
    EXPECT_NE(a.hash(), b.hash());

    ServeStats c = a;
    c.latency.add(secondsToTicks(0.02));
    EXPECT_NE(a.hash(), c.hash());
}

} // namespace
} // namespace hydra
