/**
 * @file
 * Parser-hardening tests for ServeSpec and FaultPlan: every malformed
 * input must come back as a structured SpecError naming the offending
 * token — no crash, no fatal(), no silently defaulted field — and a
 * deterministic fuzz loop hammers both parsers with mutated specs.
 */

#include <gtest/gtest.h>

#include "serve/spec.hh"
#include "sync/fault.hh"

namespace hydra {
namespace {

// ---------------------------------------------------------------------
// ServeSpec::tryParse
// ---------------------------------------------------------------------

TEST(ServeSpecParse, RoundTripsAValidSpec)
{
    ServeSpec s;
    SpecError err;
    ASSERT_TRUE(ServeSpec::tryParse(
        "seed=7,clusters=4,duration=30,queue=16,requests=500,"
        "tenant=vision:open:resnet18:0.5,"
        "tenant=pool:closed:bert:3:0.25,prio=vision:0,"
        "at=2.5:replay:resnet18,group=resnet18:4:2,group=bert:4",
        s, err))
        << err.describe();
    EXPECT_EQ(s.seed, 7u);
    EXPECT_EQ(s.clusters, 4u);
    EXPECT_DOUBLE_EQ(s.durationSeconds, 30.0);
    EXPECT_EQ(s.queueCapacity, 16u);
    EXPECT_EQ(s.maxRequests, 500u);
    ASSERT_EQ(s.tenants.size(), 3u); // replay implicitly declared
    EXPECT_EQ(s.tenants[0].priority, 0);
    EXPECT_EQ(s.tenants[1].mode, ArrivalMode::Closed);
    EXPECT_EQ(s.tenants[1].clients, 3u);
    EXPECT_EQ(s.tenants[2].mode, ArrivalMode::Trace);
    ASSERT_EQ(s.groups.size(), 2u);
    EXPECT_EQ(s.groups[0].minCards, 2u);
}

struct BadCase
{
    const char* spec;
    const char* wantToken; // must appear in err.token
};

TEST(ServeSpecParse, MalformedInputNamesTheOffendingToken)
{
    const BadCase cases[] = {
        {"seed=abc", "abc"},
        {"seed=12x", "12x"},
        {"seed=", "seed="},
        {"clusters=0", "0"},
        {"clusters=-2", "-2"},
        {"clusters=1.5", "1.5"},
        {"duration=oops", "oops"},
        {"duration=-5,tenant=a:open:bert:1", "-5"},
        {"queue=many", "many"},
        {"queue=0,tenant=a:open:bert:1", "0"},
        {"requests=1e", "1e"},
        {"tenant=a:open:bert", "a:open:bert"},
        {"tenant=a:burst:bert:1", "burst"},
        {"tenant=a:open:bert:0", "0"},
        {"tenant=a:open:bert:-1", "-1"},
        {"tenant=a:open:bert:nan", "nan"},
        {"tenant=a:closed:bert:0", "0"},
        {"tenant=a:closed:bert:2:-1", "-1"},
        {"tenant=:open:bert:1", ":open:bert:1"},
        {"tenant=a:open:bert:1,tenant=a:open:bert:2", "a"},
        {"prio=a:1", "a"}, // undeclared tenant
        {"tenant=a:open:bert:1,prio=a:1.5", "1.5"},
        {"at=1:t", "1:t"},
        {"at=-1:t:bert", "-1"},
        {"group=bert", "bert"},
        {"group=bert:0", "bert:0"},
        {"group=bert:2:3", "bert:2:3"},
        {"group=bert:x", "x"},
        {"notakey=1", "notakey"},
        {"justtext", "justtext"},
        // sched= policy tokens
        {"sched=x", "x"},
        {"sched=fifo:1", "fifo:1"},
        {"sched=cake:0", "0"},
        {"sched=cake:-1", "-1"},
        {"sched=cake:nan", "nan"},
        {"sched=cake:1:0", "0"},
        // per-tier quanta (4th field on) must each be seconds > 0
        {"sched=cake:1:2:0", "0"},
        {"sched=cake:1:2:0.5:-1", "-1"},
        {"sched=cake:1:2:0.5:x", "x"},
        // kick cap below the wait budget (validated after parsing)
        {"duration=10,sched=cake:2:1", "1"},
        // bulk tenants= blocks
        {"tenants=2:a:open:bert", "2:a:open:bert"},
        {"tenants=x:a:open:bert:1", "x"},
        {"tenants=0:a:open:bert:1", "0"},
        {"tenants=2000001:a:open:bert:1", "2000001"},
        {"tenants=2:a:open:bert:0", "0"},
        {"tenants=2:a:burst:bert:1", "burst"},
        {"tenants=2:a:open:bert:1,tenants=2:a:open:bert:1", "a#0"},
        // prefix-matching prio
        {"prio=zz*:1", "zz*"},
        {"tenant=a:open:bert:1,prio=a*:1.5", "1.5"},
        {"tenants=2:a:open:bert:1,prio=b*:1", "b*"},
        // per-tenant / spec-default opt= levels
        {"opt=fast", "fast"},
        {"opt=", "opt="},
        {"tenant=a:open:bert:1,opt=a:fast", "fast"},
        {"opt=safe,opt=aggressive", "aggressive"},
        {"opt=b:safe", "b"}, // undeclared tenant
        {"tenants=2:a:open:bert:1,opt=b*:safe", "b*"},
        {"tenant=a:open:bert:1,opt=a:safe:x", "a:safe:x"},
    };
    for (const auto& c : cases) {
        ServeSpec s;
        SpecError err;
        EXPECT_FALSE(ServeSpec::tryParse(c.spec, s, err)) << c.spec;
        EXPECT_FALSE(err.message.empty()) << c.spec;
        EXPECT_NE(err.token.find(c.wantToken), std::string::npos)
            << c.spec << " -> " << err.describe();
        // describe() carries both halves of the diagnosis.
        EXPECT_NE(err.describe().find(err.token), std::string::npos);
    }
}

TEST(ServeSpecParse, RoundTripsASchedulerSpec)
{
    ServeSpec s;
    SpecError err;
    ASSERT_TRUE(ServeSpec::tryParse(
        "seed=1,duration=10,sched=cake:2:20,"
        "tenants=3:sp:closed:resnet20:1:5,prio=sp*:2,"
        "tenant=vip:open:resnet18:0.1,prio=vip:0",
        s, err))
        << err.describe();
    EXPECT_EQ(s.sched, SchedPolicy::Cake);
    EXPECT_DOUBLE_EQ(s.waitBudgetSeconds, 2.0);
    EXPECT_DOUBLE_EQ(s.kickSeconds, 20.0);
    ASSERT_EQ(s.tenants.size(), 4u);
    EXPECT_EQ(s.tenants[0].name, "sp#0");
    EXPECT_EQ(s.tenants[2].name, "sp#2");
    for (size_t i = 0; i < 3; ++i) {
        EXPECT_EQ(s.tenants[i].priority, 2);
        EXPECT_EQ(s.tenants[i].mode, ArrivalMode::Closed);
    }
    EXPECT_EQ(s.tenants[3].priority, 0);
    // Tier-scaled wait budget: base * (tier + 1).
    EXPECT_EQ(s.waitBudgetTicks(1), 2 * s.waitBudgetTicks(0));
    EXPECT_NE(s.describe().find("sched=cake"), std::string::npos);
}

TEST(ServeSpecParse, SchedDefaultsToFifo)
{
    ServeSpec s;
    SpecError err;
    ASSERT_TRUE(ServeSpec::tryParse(
        "duration=10,tenant=a:open:bert:1", s, err));
    EXPECT_EQ(s.sched, SchedPolicy::Fifo);
    ASSERT_TRUE(ServeSpec::tryParse(
        "duration=10,sched=cake,tenant=a:open:bert:1", s, err));
    EXPECT_EQ(s.sched, SchedPolicy::Cake);
    // Bare cake keeps the documented defaults (1 s budget, 10 s cap).
    EXPECT_DOUBLE_EQ(s.waitBudgetSeconds, 1.0);
    EXPECT_DOUBLE_EQ(s.kickSeconds, 10.0);
}

TEST(ServeSpecParse, CakeQuantaParseAndClamp)
{
    ServeSpec s;
    SpecError err;
    ASSERT_TRUE(ServeSpec::tryParse(
        "duration=10,sched=cake:1:10:0.25:0.5,tenant=a:open:bert:1", s,
        err))
        << err.describe();
    ASSERT_EQ(s.quantumSeconds.size(), 2u);
    EXPECT_EQ(s.quantumTicks(0), secondsToTicks(0.25));
    EXPECT_EQ(s.quantumTicks(1), secondsToTicks(0.5));
    // Tiers past the last entry clamp to it; negatives clamp to 0.
    EXPECT_EQ(s.quantumTicks(7), secondsToTicks(0.5));
    EXPECT_EQ(s.quantumTicks(-2), secondsToTicks(0.25));
    EXPECT_NE(s.describe().find("quanta"), std::string::npos);

    // No quanta spelled: every tier slices at the tier-0 wait budget
    // (the legacy one-quantum behaviour, so existing runs are
    // bit-identical).
    ServeSpec d;
    ASSERT_TRUE(ServeSpec::tryParse(
        "duration=10,sched=cake:2:20,tenant=a:open:bert:1", d, err));
    EXPECT_TRUE(d.quantumSeconds.empty());
    EXPECT_EQ(d.quantumTicks(0), d.waitBudgetTicks(0));
    EXPECT_EQ(d.quantumTicks(3), d.waitBudgetTicks(0));
}

TEST(ServeSpecParse, OptLevelsParseAndDefault)
{
    // A spec-wide default with per-tenant overrides: explicit levels
    // win, everyone else (including trace-implied tenants) gets the
    // default.
    ServeSpec s;
    SpecError err;
    ASSERT_TRUE(ServeSpec::tryParse(
        "duration=10,opt=aggressive,"
        "tenant=vision:open:resnet18:0.5,"
        "tenant=nlp:open:bert:0.1,opt=nlp:safe,"
        "tenants=3:sp:closed:resnet20:1:5,opt=sp*:aggressive,"
        "at=2:replay:resnet18",
        s, err))
        << err.describe();
    ASSERT_EQ(s.tenants.size(), 6u); // replay implicitly declared
    EXPECT_EQ(s.tenants[0].opt, OptLevel::Aggressive); // default
    EXPECT_EQ(s.tenants[1].opt, OptLevel::Safe);       // explicit wins
    for (size_t i = 2; i < 5; ++i)
        EXPECT_EQ(s.tenants[i].opt, OptLevel::Aggressive) << i;
    EXPECT_EQ(s.tenants[5].opt, OptLevel::Aggressive); // trace-implied
    EXPECT_NE(s.describe().find("opt aggressive"), std::string::npos);

    // Order independence: a per-tenant level spelled before the
    // spec-wide default still wins, and tenants declared after the
    // default still inherit it.
    ServeSpec t;
    ASSERT_TRUE(ServeSpec::tryParse(
        "duration=10,tenant=a:open:bert:1,opt=a:safe,opt=aggressive,"
        "tenant=b:open:bert:1",
        t, err))
        << err.describe();
    ASSERT_EQ(t.tenants.size(), 2u);
    EXPECT_EQ(t.tenants[0].opt, OptLevel::Safe);
    EXPECT_EQ(t.tenants[1].opt, OptLevel::Aggressive);

    // No opt= at all: everyone compiles Safe (the legacy behaviour,
    // keeping pre-existing serving hashes bit-identical).
    ServeSpec d;
    ASSERT_TRUE(ServeSpec::tryParse(
        "duration=10,tenant=a:open:bert:1", d, err));
    EXPECT_EQ(d.tenants[0].opt, OptLevel::Safe);
    EXPECT_EQ(d.describe().find("opt "), std::string::npos);
}

// ---------------------------------------------------------------------
// FaultPlan::tryParse
// ---------------------------------------------------------------------

TEST(FaultPlanParse, RoundTripsAValidSpec)
{
    FaultPlan f;
    SpecError err;
    ASSERT_TRUE(FaultPlan::tryParse(
        "seed=3,drop=0.25,corrupt=0.1,degrade=2,dropfirst=1,"
        "straggle=2:1.5,kill=5@30,ckill=1@40,cpart=2@10:5",
        f, err))
        << err.describe();
    EXPECT_EQ(f.seed, 3u);
    EXPECT_DOUBLE_EQ(f.dropRate, 0.25);
    EXPECT_EQ(f.cardFailAt.at(5), secondsToTicks(30.0));
    EXPECT_EQ(f.clusterKillAt.at(1), secondsToTicks(40.0));
    ASSERT_EQ(f.clusterPartitionAt.count(2), 1u);
    EXPECT_EQ(f.clusterPartitionAt.at(2).start, secondsToTicks(10.0));
    // heal is stored as the absolute end of the healing window.
    EXPECT_EQ(f.clusterPartitionAt.at(2).heal, secondsToTicks(15.0));
    EXPECT_FALSE(f.empty());
}

TEST(FaultPlanParse, ClusterFaultsCountTowardEmpty)
{
    FaultPlan f;
    SpecError err;
    ASSERT_TRUE(FaultPlan::tryParse("ckill=0@1", f, err));
    EXPECT_FALSE(f.empty());
    FaultPlan g;
    ASSERT_TRUE(FaultPlan::tryParse("", g, err));
    EXPECT_TRUE(g.empty());
}

TEST(FaultPlanParse, MalformedInputNamesTheOffendingToken)
{
    const BadCase cases[] = {
        {"seed=banana", "banana"},
        {"drop=high", "high"},
        {"drop=1.5", "1.5"},
        {"drop=-0.1", "-0.1"},
        {"corrupt=2", "2"},
        {"degrade=0.5", "0.5"},
        {"dropfirst=-1", "-1"},
        {"straggle=3", "3"},
        {"straggle=3:0.5", "0.5"},
        {"straggle=x:2", "x"},
        {"kill=5", "5"},
        {"kill=5@-1", "-1"},
        {"kill=x@3", "x"},
        {"ckill=1", "1"},
        {"ckill=a@3", "a"},
        {"ckill=1@never", "never"},
        {"cpart=1@5", "1@5"},
        {"cpart=1@5:0", "0"},
        {"cpart=1@5:-2", "-2"},
        {"cpart=@5:1", "@5:1"},
        {"boom=1", "boom"},
        {"kill", "kill"},
    };
    for (const auto& c : cases) {
        FaultPlan f;
        SpecError err;
        EXPECT_FALSE(FaultPlan::tryParse(c.spec, f, err)) << c.spec;
        EXPECT_FALSE(err.message.empty()) << c.spec;
        EXPECT_NE(err.token.find(c.wantToken), std::string::npos)
            << c.spec << " -> " << err.describe();
    }
}

// ---------------------------------------------------------------------
// Deterministic fuzz loop: mutate valid specs, require a structured
// verdict every time (parse or a named error — never a crash, never an
// empty diagnosis).
// ---------------------------------------------------------------------

uint64_t
nextRand(uint64_t& s)
{
    s += 0x9e3779b97f4a7c15ULL;
    uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

std::string
mutate(const std::string& base, uint64_t& rng)
{
    std::string s = base;
    const char alphabet[] = "=:,@.-xe 0157\xff\x01";
    switch (nextRand(rng) % 5) {
    case 0: // flip one character
        if (!s.empty())
            s[nextRand(rng) % s.size()] =
                alphabet[nextRand(rng) % (sizeof(alphabet) - 1)];
        break;
    case 1: // delete one character
        if (!s.empty())
            s.erase(nextRand(rng) % s.size(), 1);
        break;
    case 2: // insert one character
        s.insert(nextRand(rng) % (s.size() + 1), 1,
                 alphabet[nextRand(rng) % (sizeof(alphabet) - 1)]);
        break;
    case 3: // truncate
        s.resize(nextRand(rng) % (s.size() + 1));
        break;
    default: // duplicate a chunk (stress repeated/duplicate keys)
        if (!s.empty()) {
            size_t from = nextRand(rng) % s.size();
            size_t len = 1 + nextRand(rng) % (s.size() - from);
            s += ",";
            s += s.substr(from, len);
        }
        break;
    }
    return s;
}

TEST(ServeSpecParse, FuzzedSpecsNeverCrashAndAlwaysDiagnose)
{
    const std::string base =
        "seed=7,clusters=2,duration=30,queue=16,sched=cake:2:20,"
        "tenant=vision:open:resnet18:0.5,tenant=pool:closed:bert:3:0.25,"
        "tenants=4:sp:closed:resnet20:1:5,prio=sp*:1,"
        "prio=vision:0,opt=aggressive,opt=sp*:safe,"
        "at=2.5:replay:resnet18,group=resnet18:4:2";
    uint64_t rng = 0xfeedface;
    size_t rejected = 0;
    for (int i = 0; i < 4000; ++i) {
        std::string fuzzed = mutate(base, rng);
        // Stack a second mutation on half the inputs.
        if (nextRand(rng) & 1)
            fuzzed = mutate(fuzzed, rng);
        ServeSpec s;
        SpecError err;
        if (ServeSpec::tryParse(fuzzed, s, err)) {
            // Accepted specs must be internally coherent, not
            // silently defaulted garbage.
            EXPECT_GT(s.durationSeconds, 0.0) << fuzzed;
            EXPECT_GE(s.queueCapacity, 1u) << fuzzed;
            EXPECT_GE(s.clusters, 1u) << fuzzed;
            // The starvation cap must never undercut the wait budget.
            EXPECT_GE(s.kickSeconds, s.waitBudgetSeconds) << fuzzed;
            EXPECT_GT(s.waitBudgetSeconds, 0.0) << fuzzed;
            for (const auto& g : s.groups) {
                EXPECT_GE(g.cards, g.minCards) << fuzzed;
                EXPECT_GE(g.minCards, 1u) << fuzzed;
            }
        } else {
            ++rejected;
            EXPECT_FALSE(err.message.empty()) << fuzzed;
            EXPECT_FALSE(err.describe().empty()) << fuzzed;
        }
    }
    // The mutator must actually be exercising the failure paths.
    EXPECT_GT(rejected, 1000u);
}

TEST(FaultPlanParse, FuzzedSpecsNeverCrashAndAlwaysDiagnose)
{
    const std::string base =
        "seed=3,drop=0.25,corrupt=0.1,degrade=2,dropfirst=1,"
        "straggle=2:1.5,kill=5@30,ckill=1@40,cpart=2@10:5";
    uint64_t rng = 0xdecaf;
    size_t rejected = 0;
    for (int i = 0; i < 4000; ++i) {
        std::string fuzzed = mutate(base, rng);
        if (nextRand(rng) & 1)
            fuzzed = mutate(fuzzed, rng);
        FaultPlan f;
        SpecError err;
        if (FaultPlan::tryParse(fuzzed, f, err)) {
            EXPECT_GE(f.dropRate, 0.0) << fuzzed;
            EXPECT_LE(f.dropRate, 1.0) << fuzzed;
            EXPECT_GE(f.corruptRate, 0.0) << fuzzed;
            EXPECT_LE(f.corruptRate, 1.0) << fuzzed;
            EXPECT_GE(f.linkDegrade, 1.0) << fuzzed;
            for (const auto& [card, fac] : f.stragglers)
                EXPECT_GE(fac, 1.0) << fuzzed;
            for (const auto& [c, p] : f.clusterPartitionAt)
                EXPECT_GT(p.heal, p.start) << fuzzed;
        } else {
            ++rejected;
            EXPECT_FALSE(err.message.empty()) << fuzzed;
        }
    }
    EXPECT_GT(rejected, 1000u);
}

} // namespace
} // namespace hydra
