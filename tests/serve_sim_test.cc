/**
 * @file
 * End-to-end serving-subsystem tests: deterministic replay, overload
 * shedding, fault-triggered repartitioning, and request accounting.
 */

#include <gtest/gtest.h>

#include "baselines/prototypes.hh"
#include "sched/progcache.hh"
#include "serve/sim.hh"

namespace hydra {
namespace {

ServeStats
runServe(const std::string& machine, const std::string& spec,
         const std::string& faults = "")
{
    ServeSim sim(machineByName(machine), ServeSpec::parse(spec),
                 FaultPlan::parse(faults));
    return sim.run();
}

/** Every offered request must end up completed or shed. */
void
expectAccounted(const ServeStats& st)
{
    EXPECT_EQ(st.offered, st.completed + st.shed);
    EXPECT_EQ(st.shed, st.shedQueueFull + st.shedNoCapacity);
    uint64_t tenant_offered = 0, tenant_completed = 0, tenant_shed = 0;
    for (const auto& t : st.tenants) {
        tenant_offered += t.offered;
        tenant_completed += t.completed;
        tenant_shed += t.shed;
    }
    EXPECT_EQ(tenant_offered, st.offered);
    EXPECT_EQ(tenant_completed, st.completed);
    EXPECT_EQ(tenant_shed, st.shed);
}

const char* kMixed =
    "seed=5,duration=120,tenant=vision:open:resnet18:0.05,"
    "tenant=nlp:open:bert:0.005";

TEST(ServeSim, SameSeedIdenticalStats)
{
    ServeStats a = runServe("hydra-m", kMixed);
    ServeStats b = runServe("hydra-m", kMixed);
    ASSERT_GT(a.completed, 0u);
    EXPECT_EQ(a.hash(), b.hash());
    EXPECT_EQ(a.horizon, b.horizon);
    expectAccounted(a);

    ServeStats c = runServe(
        "hydra-m",
        "seed=6,duration=120,tenant=vision:open:resnet18:0.05,"
        "tenant=nlp:open:bert:0.005");
    EXPECT_NE(a.hash(), c.hash());
}

TEST(ServeSim, JobsReuseCompiledPrograms)
{
    ProgramCache& cache = ProgramCache::global();
    cache.clear();
    cache.resetStats();
    ServeStats st = runServe("hydra-m", kMixed);
    ASSERT_GT(st.completed, 1u);
    // Every job executes for real, but identical (workload, group)
    // jobs share compiled Programs: after the first job of each class
    // every step lookup hits.
    ProgramCache::Stats cs = cache.stats();
    EXPECT_GT(cs.hits, 0u);
    EXPECT_GT(cs.hitRate(), 0.5);
    EXPECT_LT(cs.entries, cs.hits + cs.misses);
}

TEST(ServeSim, ClosedLoopSustainsLoad)
{
    ServeStats st = runServe(
        "hydra-m",
        "seed=2,duration=100,tenant=pool:closed:resnet18:2:1");
    // Two clients on a ~13s service: each finishes several requests.
    EXPECT_GE(st.completed, 8u);
    EXPECT_EQ(st.shed, 0u);
    expectAccounted(st);
}

TEST(ServeSim, QueueOverflowSheds)
{
    // One slow 8-card BERT group (~60 s/job), queue bound 2, and an
    // aggressive open stream: most arrivals must shed on a full queue,
    // and everything admitted still drains.
    ServeStats st = runServe(
        "hydra-m",
        "seed=3,duration=120,queue=2,tenant=nlp:open:bert:0.5");
    EXPECT_GT(st.shedQueueFull, 0u);
    EXPECT_EQ(st.admitted, st.completed);
    EXPECT_LE(st.maxQueueDepth, 2u);
    expectAccounted(st);
}

TEST(ServeSim, KillBelowFloorDissolvesAndSheds)
{
    // The resnet18 group starts at its 2-card floor; the kill pushes
    // it below, there is no sibling to donate to, so the class loses
    // all capacity: queued and future vision requests shed.
    ServeStats st = runServe(
        "hydra-m",
        "seed=5,duration=120,tenant=vision:open:resnet18:0.05,"
        "tenant=nlp:open:bert:0.005,group=resnet18:2:2,group=bert:6",
        "kill=1@30");
    ASSERT_EQ(st.failedCards.size(), 1u);
    EXPECT_EQ(st.failedCards[0], 1u);
    EXPECT_EQ(st.repartitions, 1u);
    EXPECT_GT(st.shedNoCapacity, 0u);
    ASSERT_EQ(st.groups.size(), 2u);
    EXPECT_TRUE(st.groups[0].retired);
    EXPECT_FALSE(st.groups[1].retired);
    expectAccounted(st);

    // The nlp tenant's group is untouched: it sheds nothing.
    for (const auto& t : st.tenants)
        if (t.name == "nlp")
            EXPECT_EQ(t.shed, 0u);
}

TEST(ServeSim, KillWithSiblingDonatesAndCompletes)
{
    ServeStats st = runServe(
        "hydra-m",
        "seed=5,duration=120,tenant=vision:open:resnet18:0.05,"
        "group=resnet18:2:2,group=resnet18:6",
        "kill=1@30");
    EXPECT_EQ(st.repartitions, 1u);
    EXPECT_EQ(st.shed, 0u);
    EXPECT_EQ(st.offered, st.completed);
    ASSERT_EQ(st.groups.size(), 2u);
    EXPECT_TRUE(st.groups[0].retired);
    // The survivor joined the sibling group.
    EXPECT_EQ(st.groups[1].cards, 7u);
    expectAccounted(st);
}

TEST(ServeSim, FaultRunStaysDeterministic)
{
    const char* spec =
        "seed=5,duration=120,tenant=vision:open:resnet18:0.05,"
        "tenant=nlp:open:bert:0.005,group=resnet18:2:2,group=bert:6";
    ServeStats a = runServe("hydra-m", spec, "kill=1@30");
    ServeStats b = runServe("hydra-m", spec, "kill=1@30");
    EXPECT_EQ(a.hash(), b.hash());
}

TEST(ServeSim, TraceReplayArrivesOnSchedule)
{
    ServeStats st = runServe(
        "hydra-m",
        "seed=1,duration=60,at=0:r:resnet18,at=5:r:resnet18,"
        "at=10:r:resnet18,group=resnet18:8");
    EXPECT_EQ(st.offered, 3u);
    EXPECT_EQ(st.completed, 3u);
    expectAccounted(st);
}

TEST(ServeSim, JsonCarriesHeadlineFields)
{
    ServeStats st = runServe("hydra-m", kMixed);
    std::string js = st.toJson("Hydra-M", "test-spec");
    for (const char* key :
         {"\"machine\"", "\"throughput_rps\"", "\"p50\"", "\"p95\"",
          "\"p99\"", "\"shed\"", "\"tenants\"", "\"groups\"",
          "\"hash\""})
        EXPECT_NE(js.find(key), std::string::npos) << key;
}

} // namespace
} // namespace hydra
