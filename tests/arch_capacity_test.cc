/**
 * @file
 * Scratchpad capacity model and timeline-recording tests.
 */

#include <gtest/gtest.h>

#include "arch/opcost.hh"
#include "sched/mapping.hh"
#include "sync/executor.hh"

namespace hydra {
namespace {

TEST(Capacity, DisabledByDefault)
{
    OpCostModel m(FpgaParams{}, size_t{1} << 16, 4);
    for (size_t l = 1; l <= 24; ++l)
        EXPECT_DOUBLE_EQ(m.trafficFactor(l), 1.0);
}

TEST(Capacity, PenaltyKicksInAboveScratchpad)
{
    FpgaParams fpga;
    fpga.scratchpadBytes = 16ull << 20;
    fpga.scratchpadOverflowPenalty = 1.0;
    OpCostModel m(fpga, size_t{1} << 16, 4);
    // Working set at 24 limbs is ~55 MiB >> 16 MiB.
    EXPECT_GT(m.workingSetBytes(24), fpga.scratchpadBytes);
    EXPECT_GT(m.trafficFactor(24), 1.0);
    // Small working sets stay at the base factor.
    EXPECT_LT(m.workingSetBytes(2), fpga.scratchpadBytes);
    EXPECT_DOUBLE_EQ(m.trafficFactor(2), 1.0);
    // Monotone in limbs once overflowing.
    EXPECT_GT(m.trafficFactor(24), m.trafficFactor(12));
}

TEST(Capacity, PenaltySlowsMemoryBoundOps)
{
    FpgaParams tight;
    tight.scratchpadBytes = 8ull << 20;
    tight.scratchpadOverflowPenalty = 2.0;
    OpCostModel penalized(tight, size_t{1} << 16, 4);
    OpCostModel base(FpgaParams{}, size_t{1} << 16, 4);
    EXPECT_GT(penalized.opLatency(HeOpType::HAdd, 24),
              base.opLatency(HeOpType::HAdd, 24));
}

TEST(Capacity, WorkingSetGrowsWithLimbs)
{
    OpCostModel m(FpgaParams{}, size_t{1} << 16, 4);
    uint64_t prev = 0;
    for (size_t l = 1; l <= 24; ++l) {
        uint64_t ws = m.workingSetBytes(l);
        EXPECT_GT(ws, prev);
        prev = ws;
    }
}

TEST(Capacity, OpCostCarriesLimbs)
{
    OpCostModel m(FpgaParams{}, size_t{1} << 16, 4);
    EXPECT_EQ(m.cost(HeOpType::CMult, 17).limbs, 17u);
    OpCost sum = m.cost(HeOpType::CMult, 5);
    sum += m.cost(HeOpType::HAdd, 9);
    EXPECT_EQ(sum.limbs, 9u); // max rule
}

class TimelineTest : public ::testing::Test
{
  protected:
    TimelineTest()
        : cluster_{1, 4},
          cost_(FpgaParams{}, size_t{1} << 16, 4),
          net_(NetParams{}, cluster_),
          mapper_(cost_, net_, 4, 15),
          executor_(cluster_, net_)
    {
        executor_.setRecordTimeline(true);
    }

    ClusterConfig cluster_;
    OpCostModel cost_;
    SwitchedNetwork net_;
    StepMapper mapper_;
    ClusterExecutor executor_;
};

TEST_F(TimelineTest, EventsCoverComputeBusy)
{
    Step s{ProcKind::ConvBN, "conv", 64, convBnMix(), 12,
           AggKind::BroadcastEach, 0, 1.0, 8};
    RunStats st = executor_.run(mapper_.mapStep(s));
    ASSERT_FALSE(st.timeline.empty());

    // Per-card compute-event durations must sum to computeBusy.
    std::vector<Tick> per_card(4, 0);
    for (const auto& ev : st.timeline) {
        EXPECT_LE(ev.start, ev.end);
        EXPECT_LE(ev.end, st.makespan);
        EXPECT_LT(ev.card, 4u);
        if (ev.kind == TaskEvent::Kind::Compute)
            per_card[ev.card] += ev.end - ev.start;
    }
    for (size_t c = 0; c < 4; ++c)
        EXPECT_EQ(per_card[c], st.computeBusy[c]);
}

TEST_F(TimelineTest, ComputeEventsDoNotOverlapPerCard)
{
    Step s{ProcKind::Bootstrap, "boot", 1, OpMix{}, 18, AggKind::None, 0,
           1.0, 1};
    RunStats st = executor_.run(mapper_.mapStep(s));
    std::vector<std::vector<std::pair<Tick, Tick>>> per_card(4);
    for (const auto& ev : st.timeline)
        if (ev.kind == TaskEvent::Kind::Compute)
            per_card[ev.card].emplace_back(ev.start, ev.end);
    for (auto& lane : per_card) {
        std::sort(lane.begin(), lane.end());
        for (size_t i = 1; i < lane.size(); ++i)
            EXPECT_GE(lane[i].first, lane[i - 1].second);
    }
}

TEST_F(TimelineTest, RecordingOffLeavesTimelineEmpty)
{
    ClusterExecutor quiet(cluster_, net_);
    Step s{ProcKind::FC, "fc", 64, fcMix(), 12, AggKind::ReduceTree, 0,
           1.0, 1};
    RunStats st = quiet.run(mapper_.mapStep(s));
    EXPECT_TRUE(st.timeline.empty());
}

} // namespace
} // namespace hydra
