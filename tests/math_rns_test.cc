/**
 * @file
 * RNS basis, big-integer CRT composition and RnsPoly operation tests.
 */

#include <gtest/gtest.h>

#include <memory>
#include <random>

#include "math/bigint.hh"
#include "math/poly.hh"
#include "math/primes.hh"
#include "math/rns.hh"

namespace hydra {
namespace {

std::shared_ptr<RnsBasis>
makeBasis(size_t n, size_t q_count, int bits = 45, int sp_bits = 50)
{
    auto q = nttPrimes(n, bits, q_count);
    auto p = nttPrimes(n, sp_bits, 1, q);
    return std::make_shared<RnsBasis>(n, q, p[0]);
}

TEST(BigUInt, HornerAndSub)
{
    BigUInt x(7);
    x.mulAdd(10, 3); // 73
    EXPECT_EQ(x.modU64(100), 73u);
    x.mulAdd(1ULL << 40, 5);
    // x = 73 * 2^40 + 5
    EXPECT_EQ(x.modU64(1ULL << 40), 5u);
    BigUInt y(1);
    BigUInt big;
    big.addU64(0);
    EXPECT_TRUE(big.isZero());
    BigUInt a(100), b(58);
    a.sub(b);
    EXPECT_EQ(a.modU64(1000), 42u);
    EXPECT_EQ(a.compare(BigUInt(42)), 0);
    EXPECT_LT(BigUInt(41).compare(a), 0);
    EXPECT_GT(BigUInt(43).compare(a), 0);
    (void)y;
}

TEST(BigUInt, MultiLimbCarryChain)
{
    BigUInt x(~0ULL);
    x.addU64(1); // 2^64
    EXPECT_EQ(x.limbCount(), 2u);
    EXPECT_EQ(x.modU64(1000000007ULL), (1ULL << 63) % 1000000007ULL * 2 %
                                           1000000007ULL);
    long double v = x.toLongDouble();
    EXPECT_NEAR(static_cast<double>(v / 18446744073709551616.0L), 1.0, 1e-12);
}

TEST(RnsBasis, CrossInversesAndGarner)
{
    auto basis = makeBasis(64, 4);
    for (size_t l = 0; l < basis->totalCount(); ++l) {
        for (size_t j = 0; j < basis->totalCount(); ++j) {
            if (l == j)
                continue;
            const Modulus& qj = basis->mod(j);
            u64 ql = qj.reduceU64(basis->mod(l).value());
            EXPECT_EQ(qj.mulMod(ql, basis->invQlModQj(l, j)), 1u);
        }
    }
}

TEST(RnsBasis, ComposeCenteredRoundTrip)
{
    auto basis = makeBasis(64, 4);
    std::mt19937_64 rng(7);
    size_t count = 4;
    for (int iter = 0; iter < 200; ++iter) {
        // Draw a signed value well within Q and check round-trip.
        i64 v = static_cast<i64>(rng() % (1ULL << 60)) -
                static_cast<i64>(1ULL << 59);
        std::vector<u64> residues(count);
        for (size_t k = 0; k < count; ++k)
            residues[k] = basis->mod(k).reduceI64(v);
        long double got = basis->composeCentered(residues, count);
        EXPECT_EQ(static_cast<i64>(got), v);
    }
}

TEST(RnsBasis, ComposeCenteredNegativeBoundary)
{
    auto basis = makeBasis(16, 2);
    // -1 mod Q composes to -1.
    std::vector<u64> residues = {basis->mod(0).value() - 1,
                                 basis->mod(1).value() - 1};
    EXPECT_EQ(static_cast<i64>(basis->composeCentered(residues, 2)), -1);
}

class RnsPolyTest : public ::testing::TestWithParam<size_t>
{
  protected:
    void
    SetUp() override
    {
        n_ = 64;
        basis_ = makeBasis(n_, GetParam());
        rng_.seed(99);
    }

    RnsPoly
    randomPoly(size_t n_limbs, bool has_special = false)
    {
        std::vector<i64> c(n_);
        for (auto& x : c)
            x = static_cast<i64>(rng_() % 2000) - 1000;
        return RnsPoly::fromSigned(basis_, n_limbs, has_special, c);
    }

    size_t n_;
    std::shared_ptr<RnsBasis> basis_;
    std::mt19937_64 rng_;
};

TEST_P(RnsPolyTest, AddSubNegateConsistency)
{
    size_t limbs = GetParam();
    auto a = randomPoly(limbs);
    auto b = randomPoly(limbs);
    auto c = a;
    c.add(b);
    c.sub(b);
    for (size_t k = 0; k < a.limbCount(); ++k)
        EXPECT_EQ(c.limb(k), a.limb(k));
    auto d = a;
    d.negate();
    d.add(a);
    for (size_t k = 0; k < d.limbCount(); ++k)
        for (u64 x : d.limb(k))
            EXPECT_EQ(x, 0u);
}

TEST_P(RnsPolyTest, NttRoundTrip)
{
    auto a = randomPoly(GetParam(), true);
    auto saved = a;
    a.toNtt();
    EXPECT_TRUE(a.nttForm());
    a.fromNtt();
    for (size_t k = 0; k < a.limbCount(); ++k)
        EXPECT_EQ(a.limb(k), saved.limb(k));
}

TEST_P(RnsPolyTest, PointwiseMulMatchesIntegerProduct)
{
    // (small a) * (small b) has coefficients well below every prime, so
    // the RNS result must equal the integer negacyclic product in every
    // limb.
    size_t limbs = GetParam();
    std::vector<i64> ac(n_, 0), bc(n_, 0);
    ac[1] = 3;
    ac[5] = -2;
    bc[0] = 7;
    bc[n_ - 1] = 1;
    auto a = RnsPoly::fromSigned(basis_, limbs, false, ac);
    auto b = RnsPoly::fromSigned(basis_, limbs, false, bc);
    a.toNtt();
    b.toNtt();
    a.mulPointwise(b);
    a.fromNtt();

    // Expected: 21 X + (-14) X^5 + 3 X^n -> -3 wrap... compute directly.
    std::vector<i64> expect(n_, 0);
    auto acc = [&](size_t i, size_t j, i64 v) {
        size_t k = i + j;
        if (k < n_)
            expect[k] += v;
        else
            expect[k - n_] -= v;
    };
    for (size_t i = 0; i < n_; ++i)
        for (size_t j = 0; j < n_; ++j)
            if (ac[i] && bc[j])
                acc(i, j, ac[i] * bc[j]);

    for (size_t k = 0; k < a.limbCount(); ++k) {
        const Modulus& m = a.mod(k);
        for (size_t i = 0; i < n_; ++i)
            EXPECT_EQ(a.limb(k)[i], m.reduceI64(expect[i]));
    }
}

TEST_P(RnsPolyTest, AutomorphismComposesAndInverts)
{
    auto a = randomPoly(GetParam());
    u64 two_n = 2 * n_;
    u64 g = 5;
    // g * g_inv = 1 mod 2n  =>  automorphism composition is identity.
    u64 g_inv = 1;
    while ((g_inv * g) % two_n != 1)
        g_inv += 2;
    auto b = a.automorphism(g).automorphism(g_inv);
    for (size_t k = 0; k < a.limbCount(); ++k)
        EXPECT_EQ(b.limb(k), a.limb(k));
}

TEST_P(RnsPolyTest, AutomorphismPreservesRingStructure)
{
    // phi(a * b) == phi(a) * phi(b)
    auto a = randomPoly(GetParam());
    auto b = randomPoly(GetParam());
    u64 g = 2 * n_ - 1; // conjugation-like element

    auto prod = a;
    prod.toNtt();
    auto bn = b;
    bn.toNtt();
    prod.mulPointwise(bn);
    prod.fromNtt();
    auto lhs = prod.automorphism(g);

    auto pa = a.automorphism(g);
    auto pb = b.automorphism(g);
    pa.toNtt();
    pb.toNtt();
    pa.mulPointwise(pb);
    pa.fromNtt();

    for (size_t k = 0; k < lhs.limbCount(); ++k)
        EXPECT_EQ(lhs.limb(k), pa.limb(k));
}

TEST_P(RnsPolyTest, DivideRoundByLastMatchesRational)
{
    // Take value v divisible-ish by q_last: check (v - [v]_ql)/ql.
    size_t limbs = GetParam();
    if (limbs < 2)
        GTEST_SKIP();
    auto a = randomPoly(limbs);
    auto coeff_domain = a;
    auto ntt_domain = a;
    ntt_domain.toNtt();
    coeff_domain.divideRoundByLast();
    ntt_domain.divideRoundByLast();
    ntt_domain.fromNtt();
    for (size_t k = 0; k < coeff_domain.limbCount(); ++k)
        EXPECT_EQ(coeff_domain.limb(k), ntt_domain.limb(k));
    EXPECT_EQ(coeff_domain.nLimbs(), limbs - 1);
}

TEST_P(RnsPolyTest, DivideRoundByLastExactOnMultiples)
{
    size_t limbs = GetParam();
    if (limbs < 2)
        GTEST_SKIP();
    u64 ql = basis_->mod(limbs - 1).value();
    // Construct poly with every coefficient = c * q_last exactly.
    std::vector<i64> c(n_);
    for (size_t i = 0; i < n_; ++i)
        c[i] = static_cast<i64>(i % 97) - 48;
    std::vector<i64> scaled(n_);
    for (size_t i = 0; i < n_; ++i)
        scaled[i] = c[i] * static_cast<i64>(ql % (1ULL << 20));
    // Use small multiplier to stay in i64: emulate q via RNS directly.
    RnsPoly p(basis_, limbs, false, false);
    for (size_t k = 0; k < limbs; ++k) {
        const Modulus& m = basis_->mod(k);
        u64 qlk = m.reduceU64(ql);
        for (size_t i = 0; i < n_; ++i)
            p.limb(k)[i] = m.mulMod(m.reduceI64(c[i]), qlk);
    }
    p.divideRoundByLast();
    for (size_t k = 0; k < p.limbCount(); ++k) {
        const Modulus& m = basis_->mod(k);
        for (size_t i = 0; i < n_; ++i)
            EXPECT_EQ(p.limb(k)[i], m.reduceI64(c[i]));
    }
}

INSTANTIATE_TEST_SUITE_P(LimbCounts, RnsPolyTest,
                         ::testing::Values(1, 2, 3, 6));

} // namespace
} // namespace hydra
