/**
 * @file
 * Tests for the CAKE-style SLO scheduler (DESIGN.md §14): fifo
 * bit-compatibility (golden stats hashes from before the scheduler
 * landed), the deficit-ledger conservation identity, step-boundary
 * preemption, work stealing across groups and clusters, starvation
 * kicks, and determinism of cake runs.
 */

#include <gtest/gtest.h>

#include "baselines/prototypes.hh"
#include "serve/cake.hh"
#include "serve/federation.hh"
#include "serve/sim.hh"

namespace hydra {
namespace {

ServeStats
runServe(const std::string& spec, const std::string& faults = "")
{
    Federation fed(machineByName("hydra-m"), ServeSpec::parse(spec),
                   FaultPlan::parse(faults), RetryPolicy{},
                   HealthPolicy{});
    return fed.run();
}

/** The federation-wide accounting identities (same as the chaos
 *  tests): nothing offered is ever lost, under either scheduler. */
void
expectAccounted(const ServeStats& st)
{
    EXPECT_EQ(st.offered, st.completed + st.shed);
    EXPECT_EQ(st.admitted, st.completed + st.shedAfterAdmit);
    EXPECT_EQ(st.shed, st.shedQueueFull + st.shedNoCapacity);
    uint64_t t_off = 0, t_done = 0, t_shed = 0;
    for (const auto& t : st.tenants) {
        t_off += t.offered;
        t_done += t.completed;
        t_shed += t.shed;
    }
    EXPECT_EQ(t_off, st.offered);
    EXPECT_EQ(t_done, st.completed);
    EXPECT_EQ(t_shed, st.shed);
}

// A closed-loop mix that saturates hydra-m's default groups: enough
// continuous pressure that the cake path preempts, steals, and kicks.
const char* kCakePool =
    "seed=7,duration=120,tenant=vision:closed:resnet18:3:1,"
    "tenant=nlp:closed:bert:1:5";

// ---------------------------------------------------------------------
// Fifo compatibility: the legacy admission path must stay bit-for-bit
// identical to the pre-scheduler code.  These hashes were captured
// before the cake scheduler landed; a change to any of them means the
// fifo path regressed.
// ---------------------------------------------------------------------

TEST(CakeFifoCompat, GoldenFifoHashesAreBitStable)
{
    struct Golden
    {
        const char* spec;
        const char* faults;
        uint64_t hash;
    };
    const Golden cases[] = {
        {"seed=7,duration=120,tenant=vision:open:resnet18:0.05,"
         "tenant=nlp:open:bert:0.005",
         "", 0x7b35c52a6f692928ull},
        {"seed=7,duration=120,tenant=vision:closed:resnet18:3:1,"
         "tenant=nlp:closed:bert:1:5",
         "", 0xe510dd7e58dcf5c7ull},
        {"seed=9,duration=40,clusters=4,group=resnet18:8,"
         "tenant=pool:closed:resnet18:8:0",
         "", 0x1ad0755bad2e5775ull},
        {"seed=3,duration=60,queue=4,tenant=burst:open:resnet18:1,"
         "prio=burst:2,tenant=vip:open:resnet18:0.02,prio=vip:0",
         "", 0xc4aea3970e1b2fd3ull},
        {"seed=7,duration=120,tenant=vision:open:resnet18:0.05,"
         "tenant=nlp:open:bert:0.005,group=resnet18:4:2,"
         "group=bert:4:1",
         "kill=1@40", 0xfcff7877673b723full},
    };
    for (const auto& c : cases) {
        ServeStats st = runServe(c.spec, c.faults);
        EXPECT_EQ(st.hash(), c.hash) << c.spec;
        EXPECT_EQ(st.sched, "fifo") << c.spec;
        // The cake block must stay all-zero on the fifo path.
        EXPECT_EQ(st.preemptions, 0u) << c.spec;
        EXPECT_EQ(st.steals, 0u) << c.spec;
        EXPECT_EQ(st.kicks, 0u) << c.spec;
        EXPECT_EQ(st.chargedTicks, 0u) << c.spec;
    }
}

// ---------------------------------------------------------------------
// The cake scheduler end to end
// ---------------------------------------------------------------------

TEST(CakeScheduler, PreemptsAtStepBoundariesAndConservesDeficit)
{
    ServeStats st =
        runServe(std::string("sched=cake,") + kCakePool);
    expectAccounted(st);
    EXPECT_EQ(st.sched, "cake");
    ASSERT_GT(st.completed, 0u);

    // Saturating closed loops force step-boundary slicing, and every
    // preempted job is eventually resumed (nothing is lost).
    EXPECT_GT(st.preemptions, 0u);
    EXPECT_EQ(st.preemptions, st.preemptResumes);

    // The conservation identity, exact in mod-2^64 arithmetic: every
    // tick charged at dispatch is either refunded by a preemption or
    // abort, or actually executed.
    EXPECT_EQ(st.chargedTicks, st.refundedTicks + st.executedTicks);
    EXPECT_GT(st.chargedTicks, 0u);
    EXPECT_GT(st.refundedTicks, 0u); // preemptions really refunded

    // With two competing tenant classes the AQM demotes the heavier
    // one at some point (and recovers it once its deficit drains).
    EXPECT_GT(st.demotions, 0u);
}

TEST(CakeScheduler, RunsAreBitIdentical)
{
    std::string spec = std::string("sched=cake,") + kCakePool;
    ServeStats a = runServe(spec);
    ServeStats b = runServe(spec);
    EXPECT_EQ(a.hash(), b.hash());
    // And the cake hash is not the fifo hash of the same workload:
    // the policy is folded into the fingerprint.
    ServeStats fifo = runServe(kCakePool);
    EXPECT_NE(a.hash(), fifo.hash());
}

TEST(CakeScheduler, AggressiveTenantsSliceAtUnitBoundaries)
{
    // opt=aggressive tenants run multi-layer ExecPlan units (fused +
    // boot-elided), so preemption slices and the deficit ledger now
    // index *unit* boundaries — every scheduler invariant must hold
    // unchanged, and the runs must stay bit-identical.
    std::string spec =
        std::string("sched=cake,opt=aggressive,") + kCakePool;
    ServeStats st = runServe(spec);
    expectAccounted(st);
    ASSERT_GT(st.completed, 0u);

    // Saturating closed loops still force slicing mid-plan, and every
    // preempted job resumes from its unit checkpoint.
    EXPECT_GT(st.preemptions, 0u);
    EXPECT_EQ(st.preemptions, st.preemptResumes);
    EXPECT_EQ(st.chargedTicks, st.refundedTicks + st.executedTicks);
    EXPECT_GT(st.refundedTicks, 0u);

    // Bit-identical rerun; and the aggressive plans really execute —
    // the fingerprint differs from the same mix compiled Safe.
    EXPECT_EQ(st.hash(), runServe(spec).hash());
    ServeStats safe = runServe(std::string("sched=cake,") + kCakePool);
    EXPECT_NE(st.hash(), safe.hash());
}

TEST(CakeScheduler, FifoAndCakeAgreeOnOfferedTraffic)
{
    // Same seed, same arrival process: the two schedulers may admit
    // and shed differently, but both must account for every request
    // and serve the same closed-loop tenants.
    ServeStats fifo = runServe(kCakePool);
    ServeStats cake =
        runServe(std::string("sched=cake,") + kCakePool);
    expectAccounted(fifo);
    expectAccounted(cake);
    ASSERT_EQ(fifo.tenants.size(), cake.tenants.size());
    for (size_t i = 0; i < fifo.tenants.size(); ++i)
        EXPECT_EQ(fifo.tenants[i].name, cake.tenants[i].name);
    EXPECT_GT(cake.completed, 0u);
}

TEST(CakeScheduler, IdleGroupsStealAcrossClassesAndClusters)
{
    // Two clusters; the short-job class queues deep while the
    // long-job groups go idle, so the idle groups must steal -- and
    // with per-cluster shards some of those steals cross clusters.
    ServeStats st = runServe(
        "sched=cake,seed=9,duration=90,clusters=2,queue=256,"
        "group=resnet20:2,group=resnet18:4,"
        "tenant=pool:closed:resnet20:24:0.5,"
        "tenant=lp:closed:resnet18:1:20");
    expectAccounted(st);
    EXPECT_GT(st.steals, 0u);
    EXPECT_GT(st.stealsCross, 0u);
    EXPECT_GE(st.steals, st.stealsCross);
}

TEST(CakeScheduler, StarvationKickBoundsQueueWait)
{
    // Adversarial hogs swamp a small queue while a sparse vip tenant
    // trickles in.  The wait-budget AQM demotes the hogs and the
    // starvation kick force-promotes anything older than the hard
    // cap, so no completed request can have waited much longer than
    // the cap plus one queue drain.
    ServeSpec spec = ServeSpec::parse(
        "sched=cake:1:5,seed=5,duration=90,queue=16,"
        "group=resnet20:2,group=resnet20:2,"
        "tenant=hogs:closed:resnet20:12:0,prio=hogs*:1,"
        "tenant=vip:open:resnet20:0.05,prio=vip:0");
    Federation fed(machineByName("hydra-m"), spec, FaultPlan{},
                   RetryPolicy{}, HealthPolicy{});
    ServeStats st = fed.run();
    expectAccounted(st);
    ASSERT_GT(st.completed, 0u);
    EXPECT_GT(st.kicks, 0u);
    // Hard bound: the kick cap plus the time to drain one full queue
    // of already-kicked short jobs through both groups.
    Tick drain = secondsToTicks(16.0 * 1.5 / 2.0);
    EXPECT_LE(st.maxWaitTicks, spec.kickTicks() + drain);
}

TEST(CakeScheduler, DescribeReportsSchedulerCountersOnlyWhenActive)
{
    ServeStats cake =
        runServe(std::string("sched=cake,") + kCakePool);
    std::string cd = cake.describe();
    EXPECT_NE(cd.find("preemption(s)"), std::string::npos);
    EXPECT_NE(cd.find("ledger: charged"), std::string::npos);

    ServeStats fifo = runServe(kCakePool);
    std::string fd = fifo.describe();
    EXPECT_EQ(fd.find("preemption(s)"), std::string::npos);
    EXPECT_EQ(fd.find("ledger:"), std::string::npos);
    EXPECT_EQ(fd.find("deficit"), std::string::npos);
}

// ---------------------------------------------------------------------
// Ledger unit behavior
// ---------------------------------------------------------------------

TEST(DeficitLedger, ChargesAdvanceAndRefundsDrain)
{
    ServeSpec spec = ServeSpec::parse(
        "sched=cake:1:10,duration=10,"
        "tenant=a:open:resnet20:1,tenant=b:open:resnet20:1");
    DeficitLedger led(spec);
    EXPECT_EQ(led.deficit(0), 0u);

    // Tenant 0 runs twice back to back: its second charge starts at
    // its own finish tag, so it accumulates deficit; tenant 1 stays
    // at zero deficit and wins the rank comparison.
    led.charge(0, 100, 1);
    led.charge(0, 100, 1);
    EXPECT_GT(led.deficit(0), 0u);
    EXPECT_EQ(led.deficit(1), 0u);
    EXPECT_LT(led.startTag(1), led.startTag(0));

    // Refunding the unrun remainder drains the deficit again.
    Tick before = led.deficit(0);
    led.refund(0, 100, 1);
    EXPECT_LT(led.deficit(0), before);
    EXPECT_EQ(led.chargedTicks(), 200u);
    EXPECT_EQ(led.refundedTicks(), 100u);
}

TEST(DeficitLedger, DemotionHasHysteresis)
{
    ServeSpec spec = ServeSpec::parse(
        "sched=cake:1:10,duration=10,"
        "tenant=hog:open:resnet20:1,tenant=bg:open:resnet20:1");
    DeficitLedger led(spec);
    Tick budget = spec.waitBudgetTicks(0);

    // Push the hog straight past the demotion threshold (8 budgets).
    led.charge(0, budget * 10, 1);
    EXPECT_TRUE(led.demoted(0));
    EXPECT_EQ(led.effectiveTier(0), led.effectiveTier(1) + 1);

    // Draining just below the threshold is not enough to promote...
    led.refund(0, budget * 2, 1);
    EXPECT_TRUE(led.demoted(0));
    // ...it must fall below a quarter of the threshold.
    led.refund(0, budget * 7, 1);
    EXPECT_FALSE(led.demoted(0));
    EXPECT_EQ(led.demotions(), 1u);
    EXPECT_EQ(led.promotions(), 1u);
}

TEST(CakeQueueUnit, RankOrderAndStealVictims)
{
    ServeSpec spec = ServeSpec::parse(
        "sched=cake,duration=10,"
        "tenant=a:open:resnet20:1,tenant=b:open:resnet20:1");
    DeficitLedger led(spec);
    CakeQueue q(3, 16);

    Request r0;
    r0.id = 0;
    r0.tenant = 0;
    r0.arrival = 5;
    Request r1;
    r1.id = 1;
    r1.tenant = 1;
    r1.arrival = 3;
    Request r2;
    r2.id = 2;
    r2.tenant = 1;
    r2.arrival = 9;
    q.push(0, r0);
    q.push(1, r1);
    q.push(1, r2);
    EXPECT_EQ(q.depth(), 3u);
    EXPECT_EQ(q.shardDepth(1), 2u);

    // Stealing from shard 0's perspective picks the deepest other
    // shard (1) and pops its best-ranked request (earlier arrival).
    size_t victim = 99;
    auto got = q.steal(0, led, &victim);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(victim, 1u);
    EXPECT_EQ(got->id, 1u);

    // A kicked request outranks everything else in its shard.
    Request late;
    late.id = 7;
    late.tenant = 0;
    late.arrival = 100;
    late.kicked = true;
    q.push(1, late);
    auto best = q.popBest(1, led);
    ASSERT_TRUE(best.has_value());
    EXPECT_EQ(best->id, 7u);

    // kickStarved marks everything older than the cap exactly once
    // and reports the earliest arrival still queued.
    size_t kicked = 0;
    Tick earliest =
        q.kickStarved(200, 50, [&](const Request&) { ++kicked; });
    EXPECT_EQ(kicked, 2u); // r0 (shard 0) and r2 (shard 1)
    EXPECT_EQ(earliest, 5u);
    kicked = 0;
    q.kickStarved(200, 50, [&](const Request&) { ++kicked; });
    EXPECT_EQ(kicked, 0u); // idempotent: already marked
}

} // namespace
} // namespace hydra
