/**
 * @file
 * CKKS scheme tests: encryption round trips and the full ciphertext
 * operation set (HAdd, PMult, CMult, Rescale, Rotate, Conjugate),
 * verified against plaintext arithmetic.
 */

#include <gtest/gtest.h>

#include "fhe_test_util.hh"

namespace hydra {
namespace {

using test::FheHarness;
using test::maxError;
using test::randomComplexVec;
using test::randomRealVec;

class FheBasicTest : public ::testing::Test
{
  protected:
    FheBasicTest()
        : h_(CkksParams::unitTest(), {1, 2, 3, 5, -1, 100})
    {
    }

    FheHarness h_;
};

TEST_F(FheBasicTest, EncryptDecryptRoundTrip)
{
    auto v = randomComplexVec(h_.ctx.slots(), 11);
    auto w = h_.decryptVec(h_.encryptVec(v));
    EXPECT_LT(maxError(v, w), 1e-5);
}

TEST_F(FheBasicTest, EncryptAtLowerLevel)
{
    auto v = randomComplexVec(h_.ctx.slots(), 12);
    auto w = h_.decryptVec(h_.encryptVec(v, 2));
    EXPECT_LT(maxError(v, w), 1e-5);
}

TEST_F(FheBasicTest, HomomorphicAddSub)
{
    auto a = randomComplexVec(h_.ctx.slots(), 13);
    auto b = randomComplexVec(h_.ctx.slots(), 14);
    auto ca = h_.encryptVec(a);
    auto cb = h_.encryptVec(b);
    auto sum = h_.decryptVec(h_.eval.add(ca, cb));
    auto dif = h_.decryptVec(h_.eval.sub(ca, cb));
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(std::abs(sum[i] - (a[i] + b[i])), 0.0, 1e-4);
        EXPECT_NEAR(std::abs(dif[i] - (a[i] - b[i])), 0.0, 1e-4);
    }
}

TEST_F(FheBasicTest, AddPlainAndMulPlain)
{
    auto a = randomComplexVec(h_.ctx.slots(), 15);
    auto b = randomComplexVec(h_.ctx.slots(), 16);
    auto ca = h_.encryptVec(a);
    Plaintext pb = h_.encoder.encode(b, h_.ctx.params().scale(),
                                     h_.ctx.levels());

    auto sum = h_.decryptVec(h_.eval.addPlain(ca, pb));
    auto prod = h_.decryptVec(h_.eval.rescale(h_.eval.mulPlain(ca, pb)));
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(std::abs(sum[i] - (a[i] + b[i])), 0.0, 1e-4);
        EXPECT_NEAR(std::abs(prod[i] - a[i] * b[i]), 0.0, 1e-4);
    }
}

TEST_F(FheBasicTest, CiphertextMultiplyWithRelin)
{
    auto a = randomComplexVec(h_.ctx.slots(), 17);
    auto b = randomComplexVec(h_.ctx.slots(), 18);
    auto ca = h_.encryptVec(a);
    auto cb = h_.encryptVec(b);
    auto prod = h_.decryptVec(h_.eval.rescale(h_.eval.mulRelin(ca, cb)));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(std::abs(prod[i] - a[i] * b[i]), 0.0, 1e-3);
}

TEST_F(FheBasicTest, MultiplicationChainToBottomLevel)
{
    // Repeated squaring of values near 1 must stay accurate down the
    // whole modulus chain.
    auto a = randomRealVec(h_.ctx.slots(), 19, 0.9);
    auto ct = h_.encryptVec(a);
    std::vector<cplx> expect = a;
    while (ct.level() > 2) {
        ct = h_.eval.rescale(h_.eval.mulRelin(ct, ct));
        for (auto& x : expect)
            x *= x;
    }
    auto got = h_.decryptVec(ct);
    EXPECT_LT(maxError(expect, got), 1e-2);
}

TEST_F(FheBasicTest, MulConstantAndAddConstant)
{
    auto a = randomComplexVec(h_.ctx.slots(), 20);
    auto ct = h_.encryptVec(a);
    cplx k(0.5, -2.0);
    auto scaled = h_.decryptVec(
        h_.eval.mulConstantRescale(ct, k, h_.ctx.params().scale()));
    auto shifted = h_.decryptVec(h_.eval.addConstant(ct, k));
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_NEAR(std::abs(scaled[i] - a[i] * k), 0.0, 1e-4);
        EXPECT_NEAR(std::abs(shifted[i] - (a[i] + k)), 0.0, 1e-4);
    }
}

TEST_F(FheBasicTest, MultiplyByImaginaryUnit)
{
    auto a = randomComplexVec(h_.ctx.slots(), 21);
    auto ct = h_.encryptVec(a);
    auto got = h_.decryptVec(h_.eval.mulConstantRescale(
        ct, cplx(0.0, 1.0), h_.ctx.params().scale()));
    for (size_t i = 0; i < a.size(); ++i)
        EXPECT_NEAR(std::abs(got[i] - a[i] * cplx(0, 1)), 0.0, 1e-4);
}

TEST_F(FheBasicTest, RotationMovesSlotsLeft)
{
    size_t s = h_.ctx.slots();
    auto a = randomComplexVec(s, 22);
    auto ct = h_.encryptVec(a);
    for (int r : {1, 2, 3, 5, 100}) {
        auto got = h_.decryptVec(h_.eval.rotate(ct, r));
        for (size_t j = 0; j < s; ++j)
            EXPECT_NEAR(std::abs(got[j] - a[(j + r) % s]), 0.0, 1e-3)
                << "rotation " << r << " slot " << j;
    }
}

TEST_F(FheBasicTest, NegativeRotationIsRightShift)
{
    size_t s = h_.ctx.slots();
    auto a = randomComplexVec(s, 23);
    auto ct = h_.encryptVec(a);
    auto got = h_.decryptVec(h_.eval.rotate(ct, -1));
    for (size_t j = 0; j < s; ++j)
        EXPECT_NEAR(std::abs(got[j] - a[(j + s - 1) % s]), 0.0, 1e-3);
}

TEST_F(FheBasicTest, RotationComposition)
{
    size_t s = h_.ctx.slots();
    auto a = randomComplexVec(s, 24);
    auto ct = h_.encryptVec(a);
    auto r12 = h_.eval.rotate(h_.eval.rotate(ct, 1), 2);
    auto r3 = h_.eval.rotate(ct, 3);
    EXPECT_LT(maxError(h_.decryptVec(r12), h_.decryptVec(r3)), 1e-3);
}

TEST_F(FheBasicTest, ConjugationConjugatesSlots)
{
    auto a = randomComplexVec(h_.ctx.slots(), 25);
    auto ct = h_.encryptVec(a);
    auto got = h_.decryptVec(h_.eval.conjugate(ct));
    for (size_t j = 0; j < a.size(); ++j)
        EXPECT_NEAR(std::abs(got[j] - std::conj(a[j])), 0.0, 1e-3);
}

TEST_F(FheBasicTest, DropToLevelPreservesMessage)
{
    auto a = randomComplexVec(h_.ctx.slots(), 26);
    auto ct = h_.encryptVec(a);
    auto dropped = h_.eval.dropToLevel(ct, 2);
    EXPECT_EQ(dropped.level(), 2u);
    EXPECT_LT(maxError(a, h_.decryptVec(dropped)), 1e-4);
}

TEST_F(FheBasicTest, OpCounterRecordsOperations)
{
    OpCounter counter;
    h_.eval.setCounter(&counter);
    auto a = randomComplexVec(h_.ctx.slots(), 27);
    auto ct = h_.encryptVec(a);
    auto t = h_.eval.add(ct, ct);
    t = h_.eval.rescale(h_.eval.mulRelin(t, t));
    t = h_.eval.rotate(t, 1);
    h_.eval.setCounter(nullptr);

    EXPECT_EQ(counter.count(HeOpType::HAdd), 1u);
    EXPECT_EQ(counter.count(HeOpType::CMult), 1u);
    EXPECT_EQ(counter.count(HeOpType::Rescale), 1u);
    EXPECT_EQ(counter.count(HeOpType::Rotate), 1u);
    EXPECT_GE(counter.count(HeOpType::KeySwitch), 2u);
}

TEST_F(FheBasicTest, HybridOfEverything)
{
    // (rot(a,1) * b + conj(a)) * 0.5 checked against plaintext.
    size_t s = h_.ctx.slots();
    auto a = randomComplexVec(s, 28);
    auto b = randomComplexVec(s, 29);
    auto ca = h_.encryptVec(a);
    auto cb = h_.encryptVec(b);

    auto t = h_.eval.rescale(h_.eval.mulRelin(h_.eval.rotate(ca, 1), cb));
    auto cj = h_.eval.dropToLevel(h_.eval.conjugate(ca), t.level());
    cj.scale = t.scale; // same up to fp drift of one rescale
    auto out = h_.decryptVec(h_.eval.mulConstantRescale(
        h_.eval.add(t, cj), cplx(0.5, 0.0), h_.ctx.params().scale()));

    for (size_t j = 0; j < s; ++j) {
        cplx expect = (a[(j + 1) % s] * b[j] + std::conj(a[j])) * 0.5;
        EXPECT_NEAR(std::abs(out[j] - expect), 0.0, 1e-3);
    }
}

} // namespace
} // namespace hydra
