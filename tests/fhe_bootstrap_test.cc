/**
 * @file
 * Bootstrapping tests: each pipeline stage in isolation, then the full
 * refresh (paper Fig. 3(b): ModRaise -> C2S -> EvalMod -> S2C).
 */

#include <gtest/gtest.h>

#include <numbers>

#include "fhe/bootstrap.hh"
#include "fhe_test_util.hh"

namespace hydra {
namespace {

using test::FheHarness;
using test::maxError;

CkksParams
btParams(size_t n = 1 << 8)
{
    CkksParams p = CkksParams::bootstrapTest();
    p.n = n;
    return p;
}

/** Harness plus a bootstrapper wired with the right Galois keys. */
struct BootHarness
{
    explicit BootHarness(const CkksParams& p,
                         const BootstrapConfig& cfg = {})
        : probe_ctx(p),
          probe_enc(probe_ctx),
          probe_boot(probe_ctx, probe_enc, cfg),
          h(p, probe_boot.requiredRotations()),
          boot(h.ctx, h.encoder, cfg)
    {
    }

    CkksContext probe_ctx;
    CkksEncoder probe_enc;
    Bootstrapper probe_boot;
    FheHarness h;
    Bootstrapper boot;
};

TEST(Bootstrap, ModRaisePreservesMessageModQ0)
{
    CkksParams p = btParams();
    FheHarness h(p, {});
    Bootstrapper boot(h.ctx, h.encoder);

    auto v = test::randomRealVec(h.ctx.slots(), 51, 0.005);
    auto ct = h.encryptVec(v, 1);
    auto raised = boot.modRaise(ct);
    EXPECT_EQ(raised.level(), h.ctx.levels());

    // Decrypting the raised ciphertext gives m + q0 * I; reducing the
    // decrypted coefficients mod q0 must recover the message.
    Plaintext pt = h.decryptor.decrypt(raised);
    RnsPoly one_limb(h.ctx.basis(), 1, false, false);
    const Modulus& q0 = h.ctx.basis()->mod(0);
    for (size_t i = 0; i < h.ctx.n(); ++i)
        one_limb.limb(0)[i] = pt.poly.limb(0)[i] % q0.value();
    Plaintext reduced{std::move(one_limb), pt.scale};
    auto w = h.encoder.decode(reduced);
    EXPECT_LT(maxError(v, w), 1e-4);
}

TEST(Bootstrap, CoeffToSlotExtractsCoefficients)
{
    BootHarness b(btParams());
    auto& h = b.h;
    size_t s = h.ctx.slots();

    auto v = test::randomRealVec(s, 52, 0.01);
    auto ct = h.encryptVec(v); // full level
    auto [re, im] = b.boot.coeffToSlot(h.eval, ct);

    // Reference: the encoded plaintext's coefficients over the scale.
    Plaintext pt = h.encoder.encode(v, h.ctx.params().scale(), 1);
    const Modulus& q0 = h.ctx.basis()->mod(0);
    std::vector<cplx> c_lo(s), c_hi(s);
    for (size_t i = 0; i < s; ++i) {
        c_lo[i] = cplx(static_cast<double>(q0.toCentered(
                           pt.poly.limb(0)[i])) /
                           pt.scale,
                       0.0);
        c_hi[i] = cplx(static_cast<double>(q0.toCentered(
                           pt.poly.limb(0)[i + s])) /
                           pt.scale,
                       0.0);
    }
    EXPECT_LT(maxError(c_lo, h.decryptVec(re)), 1e-3);
    EXPECT_LT(maxError(c_hi, h.decryptVec(im)), 1e-3);
}

TEST(Bootstrap, SlotToCoeffInvertsCoeffToSlot)
{
    BootHarness b(btParams());
    auto& h = b.h;
    auto v = test::randomComplexVec(h.ctx.slots(), 53, 0.01);
    auto ct = h.encryptVec(v);
    auto [re, im] = b.boot.coeffToSlot(h.eval, ct);
    auto back = b.boot.slotToCoeff(h.eval, re, im);
    EXPECT_LT(maxError(v, h.decryptVec(back)), 1e-3);
}

TEST(Bootstrap, EvalModApproximatesIdentityWithoutOverflow)
{
    // With I = 0 (values well below q0), EvalMod must act as identity.
    BootHarness b(btParams());
    auto& h = b.h;
    auto v = test::randomRealVec(h.ctx.slots(), 54, 0.01);
    auto ct = h.encryptVec(v);
    auto out = b.boot.evalMod(h.eval, ct, h.ctx.params().scale());
    EXPECT_LT(maxError(v, h.decryptVec(out)), 1e-3);
}

TEST(Bootstrap, EvalModRemovesQ0Multiples)
{
    // Slot values x = m + (q0/Delta) * I for small integers I must map
    // back to m.
    BootHarness b(btParams());
    auto& h = b.h;
    double q0 = static_cast<double>(h.ctx.basis()->mod(0).value());
    double delta = h.ctx.params().scale();
    double step = q0 / delta;

    size_t s = h.ctx.slots();
    auto m = test::randomRealVec(s, 55, 0.01);
    std::vector<cplx> x(s);
    Rng rng(56);
    for (size_t j = 0; j < s; ++j) {
        int big_i = static_cast<int>(rng.uniformU64(7)) - 3; // -3..3
        x[j] = m[j] + step * static_cast<double>(big_i);
    }
    auto ct = h.encryptVec(x);
    auto out = b.boot.evalMod(h.eval, ct, delta);
    EXPECT_LT(maxError(m, h.decryptVec(out)), 1e-3);
}

TEST(Bootstrap, EndToEndRefresh)
{
    BootHarness b(btParams());
    auto& h = b.h;
    size_t s = h.ctx.slots();

    auto v = test::randomRealVec(s, 57, 0.01);
    auto ct = h.encryptVec(v, 1); // exhausted ciphertext at level 1
    ASSERT_EQ(ct.level(), 1u);

    auto fresh = b.boot.bootstrap(h.eval, ct);
    EXPECT_GE(fresh.level(), 2u);
    EXPECT_GT(fresh.level(), ct.level());
    EXPECT_LT(maxError(v, h.decryptVec(fresh)), 2e-3);
}

TEST(Bootstrap, RefreshedCiphertextSupportsFurtherComputation)
{
    BootHarness b(btParams());
    auto& h = b.h;
    auto v = test::randomRealVec(h.ctx.slots(), 58, 0.01);
    auto ct = h.encryptVec(v, 1);
    auto fresh = b.boot.bootstrap(h.eval, ct);
    ASSERT_GE(fresh.level(), 2u);

    auto sq = h.decryptVec(h.eval.rescale(h.eval.mulRelin(fresh, fresh)));
    for (size_t j = 0; j < v.size(); ++j)
        EXPECT_NEAR(std::abs(sq[j] - v[j] * v[j]), 0.0, 1e-3);
}

TEST(Bootstrap, ChebyshevEvalModSavesLevels)
{
    // Chebyshev exp on a wide range lets r drop from 9 to 5: the
    // refreshed ciphertext keeps more levels at the same accuracy.
    BootstrapConfig cheb;
    cheb.useChebyshev = true;
    cheb.chebyshevDegree = 15;
    cheb.doubleAngleIters = 5;

    BootHarness b(btParams(), cheb);
    auto& h = b.h;
    auto v = test::randomRealVec(h.ctx.slots(), 59, 0.01);
    auto ct = h.encryptVec(v, 1);
    auto fresh = b.boot.bootstrap(h.eval, ct);
    EXPECT_LT(maxError(v, h.decryptVec(fresh)), 2e-3);

    BootstrapConfig taylor; // defaults: deg 7, r = 9
    CkksParams p = btParams();
    CkksContext ctx(p);
    CkksEncoder enc(ctx);
    Bootstrapper bt(ctx, enc, taylor);
    Bootstrapper bc(ctx, enc, cheb);
    EXPECT_LT(bc.depth(), bt.depth());
    EXPECT_GT(fresh.level(), 2u);
}

TEST(Bootstrap, DepthMatchesConfiguration)
{
    BootstrapConfig cfg;
    cfg.taylorDegree = 7;
    cfg.doubleAngleIters = 9;
    CkksParams p = btParams();
    CkksContext ctx(p);
    CkksEncoder enc(ctx);
    Bootstrapper boot(ctx, enc, cfg);
    // 1 c2s + 1 kappa + (4) taylor + 9 DAF + 1 sine + 1 s2c = 17
    EXPECT_EQ(boot.depth(), 17u);
    EXPECT_LT(boot.depth(), p.levels);
}

} // namespace
} // namespace hydra
