/**
 * @file
 * Cross-layer integration tests: a REAL homomorphic computation is
 * traced by the evaluator's OpCounter and re-priced by the
 * architecture model (the two-layer design DESIGN.md §5 describes).
 * Also covers arbitrary-step rotation decomposition and cross-config
 * parameter sweeps of the functional library.
 */

#include <gtest/gtest.h>

#include "arch/opcost.hh"
#include "fhe_test_util.hh"

namespace hydra {
namespace {

using test::FheHarness;
using test::maxError;
using test::randomComplexVec;

TEST(TraceBridge, RealRunPricesOnTheCardModel)
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8;
    FheHarness h(p, {1, 2});
    OpCounter counter;
    h.eval.setCounter(&counter);

    auto v = randomComplexVec(h.ctx.slots(), 71);
    auto ct = h.encryptVec(v);
    auto t = h.eval.add(ct, h.eval.rotate(ct, 1));
    t = h.eval.rescale(h.eval.mulRelin(t, t));
    t = h.eval.rotate(t, 2);
    h.eval.setCounter(nullptr);

    OpCostModel model(FpgaParams{}, size_t{1} << 16, 4);
    OpCost priced = counterCost(model, counter);
    EXPECT_GT(priced.cycles, 0u);
    EXPECT_GT(priced.hbmBytes, 0u);

    // Manual reconstruction: ops at their recorded levels.
    OpCost manual;
    manual += model.cost(HeOpType::HAdd, 6);
    manual += model.cost(HeOpType::Rotate, 6);
    manual += model.cost(HeOpType::CMult, 6);
    manual += model.cost(HeOpType::Rescale, 6);
    manual += model.cost(HeOpType::Rotate, 5);
    // Average-limb rounding makes the totals match within ~20%.
    double ratio = static_cast<double>(priced.cycles) /
                   static_cast<double>(manual.cycles);
    EXPECT_GT(ratio, 0.8);
    EXPECT_LT(ratio, 1.25);
}

TEST(TraceBridge, LatencyScalesWithWork)
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8;
    FheHarness h(p, {1});
    OpCostModel model(FpgaParams{}, size_t{1} << 16, 4);

    OpCounter small, big;
    auto v = randomComplexVec(h.ctx.slots(), 72);
    auto ct = h.encryptVec(v);
    h.eval.setCounter(&small);
    (void)h.eval.rotate(ct, 1);
    h.eval.setCounter(&big);
    for (int i = 0; i < 5; ++i)
        (void)h.eval.rotate(ct, 1);
    h.eval.setCounter(nullptr);

    Tick t_small = model.latency(counterCost(model, small));
    Tick t_big = model.latency(counterCost(model, big));
    EXPECT_NEAR(static_cast<double>(t_big) /
                    static_cast<double>(t_small),
                5.0, 0.01);
}

TEST(RotateDecomposed, ReachesArbitrarySteps)
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8;
    CkksContext probe(p);
    (void)probe;
    // Keys: powers of two only.
    FheHarness h(p, {}, true);
    GaloisKeys pow2 = h.keygen.galoisKeys(
        h.sk, h.keygen.powerOfTwoSteps(), false);
    h.eval.setGaloisKeys(&pow2);

    size_t s = h.ctx.slots();
    auto v = randomComplexVec(s, 73);
    auto ct = h.encryptVec(v);
    for (int r : {3, 7, 21, 100, static_cast<int>(s - 1)}) {
        auto got = h.decryptVec(h.eval.rotateDecomposed(ct, r));
        for (size_t j = 0; j < s; ++j)
            EXPECT_NEAR(std::abs(got[j] - v[(j + r) % s]), 0.0, 1e-2)
                << "r=" << r << " slot " << j;
    }
}

TEST(RotateDecomposed, NegativeStepsWrap)
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8;
    FheHarness h(p, {});
    GaloisKeys pow2 = h.keygen.galoisKeys(
        h.sk, h.keygen.powerOfTwoSteps(), false);
    h.eval.setGaloisKeys(&pow2);
    size_t s = h.ctx.slots();
    auto v = randomComplexVec(s, 74);
    auto ct = h.encryptVec(v);
    auto got = h.decryptVec(h.eval.rotateDecomposed(ct, -3));
    for (size_t j = 0; j < s; ++j)
        EXPECT_NEAR(std::abs(got[j] - v[(j + s - 3) % s]), 0.0, 1e-2);
}

TEST(KeyGen, PowerOfTwoStepsCoverSlots)
{
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 10;
    CkksContext ctx(p);
    KeyGenerator kg(ctx);
    auto steps = kg.powerOfTwoSteps();
    EXPECT_EQ(steps.size(), 9u); // log2(512)
    size_t sum = 0;
    for (int s : steps)
        sum += static_cast<size_t>(s);
    EXPECT_EQ(sum, ctx.slots() - 1);
}

/** Cross-configuration sweep of the full op set. */
class ConfigSweepTest
    : public ::testing::TestWithParam<std::tuple<size_t, size_t, int>>
{
};

TEST_P(ConfigSweepTest, CoreOpsStayAccurate)
{
    auto [n, levels, scale_bits] = GetParam();
    CkksParams p;
    p.n = n;
    p.levels = levels;
    p.scaleBits = scale_bits;
    p.firstPrimeBits = std::max(50, scale_bits);
    p.specialPrimeBits = std::max(52, scale_bits + 2);
    FheHarness h(p, {1});

    auto a = randomComplexVec(h.ctx.slots(), 75, 0.9);
    auto b = randomComplexVec(h.ctx.slots(), 76, 0.9);
    auto ca = h.encryptVec(a);
    auto cb = h.encryptVec(b);

    auto sum = h.decryptVec(h.eval.add(ca, cb));
    auto prod = h.decryptVec(h.eval.rescale(h.eval.mulRelin(ca, cb)));
    auto rot = h.decryptVec(h.eval.rotate(ca, 1));
    double tol = std::ldexp(1.0, -(scale_bits - 18)); // noise-scaled
    size_t s = h.ctx.slots();
    for (size_t j = 0; j < s; ++j) {
        EXPECT_NEAR(std::abs(sum[j] - (a[j] + b[j])), 0.0, tol);
        EXPECT_NEAR(std::abs(prod[j] - a[j] * b[j]), 0.0, tol);
        EXPECT_NEAR(std::abs(rot[j] - a[(j + 1) % s]), 0.0, tol);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ConfigSweepTest,
    ::testing::Values(std::make_tuple(size_t{1} << 7, size_t{3}, 30),
                      std::make_tuple(size_t{1} << 8, size_t{4}, 35),
                      std::make_tuple(size_t{1} << 9, size_t{8}, 40),
                      std::make_tuple(size_t{1} << 11, size_t{5}, 45),
                      std::make_tuple(size_t{1} << 12, size_t{3}, 50)));

TEST(ParamsValidation, RejectsBadConfigs)
{
    auto dies = [](CkksParams p) {
        EXPECT_EXIT({ CkksContext ctx(p); }, ::testing::ExitedWithCode(1),
                    "");
    };
    CkksParams p;
    p.n = 1000; // not a power of two
    dies(p);
    p = CkksParams{};
    p.scaleBits = 10; // too small
    dies(p);
    p = CkksParams{};
    p.levels = 0;
    dies(p);
    p = CkksParams{};
    p.firstPrimeBits = p.scaleBits - 1;
    dies(p);
}

TEST(NoiseGrowth, RotationNoiseStaysBounded)
{
    // 20 chained rotations must not blow up the message: keyswitch
    // noise is additive and divided by the special prime.
    CkksParams p = CkksParams::unitTest();
    p.n = 1 << 8;
    FheHarness h(p, {1});
    auto v = randomComplexVec(h.ctx.slots(), 77);
    auto ct = h.encryptVec(v);
    for (int i = 0; i < 20; ++i)
        ct = h.eval.rotate(ct, 1);
    auto got = h.decryptVec(ct);
    size_t s = h.ctx.slots();
    for (size_t j = 0; j < s; ++j)
        EXPECT_NEAR(std::abs(got[j] - v[(j + 20) % s]), 0.0, 1e-3);
}

} // namespace
} // namespace hydra
