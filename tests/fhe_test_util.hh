/**
 * @file
 * Shared fixture utilities for CKKS functional tests.
 */

#ifndef HYDRA_TESTS_FHE_TEST_UTIL_HH
#define HYDRA_TESTS_FHE_TEST_UTIL_HH

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "fhe/bootstrap.hh"
#include "fhe/context.hh"
#include "fhe/encoder.hh"
#include "fhe/encryptor.hh"
#include "fhe/evaluator.hh"
#include "fhe/keygen.hh"

namespace hydra::test {

/** Everything needed to exercise the scheme, wired together. */
struct FheHarness
{
    explicit FheHarness(const CkksParams& params,
                        const std::vector<int>& rotations = {},
                        bool conjugation = true)
        : ctx(params),
          encoder(ctx),
          keygen(ctx),
          sk(keygen.secretKey()),
          pk(keygen.publicKey(sk)),
          relin(keygen.relinKey(sk)),
          galois(keygen.galoisKeys(sk, rotations, conjugation)),
          encryptor(ctx, pk),
          decryptor(ctx, sk),
          eval(ctx, encoder)
    {
        eval.setRelinKey(&relin);
        eval.setGaloisKeys(&galois);
    }

    Ciphertext
    encryptVec(const std::vector<cplx>& v, size_t levels = 0)
    {
        if (levels == 0)
            levels = ctx.levels();
        return encryptor.encrypt(
            encoder.encode(v, ctx.params().scale(), levels));
    }

    std::vector<cplx>
    decryptVec(const Ciphertext& ct)
    {
        return encoder.decode(decryptor.decrypt(ct));
    }

    CkksContext ctx;
    CkksEncoder encoder;
    KeyGenerator keygen;
    SecretKey sk;
    PublicKey pk;
    EvalKey relin;
    GaloisKeys galois;
    Encryptor encryptor;
    Decryptor decryptor;
    Evaluator eval;
};

/** Max |a_i - b_i| over paired entries. */
inline double
maxError(const std::vector<cplx>& a, const std::vector<cplx>& b)
{
    double m = 0.0;
    for (size_t i = 0; i < std::min(a.size(), b.size()); ++i)
        m = std::max(m, std::abs(a[i] - b[i]));
    return m;
}

/** Deterministic complex test vector with entries in the unit box. */
inline std::vector<cplx>
randomComplexVec(size_t count, uint64_t seed, double magnitude = 1.0)
{
    Rng rng(seed);
    std::vector<cplx> v(count);
    for (auto& x : v)
        x = cplx(rng.uniformReal(-magnitude, magnitude),
                 rng.uniformReal(-magnitude, magnitude));
    return v;
}

inline std::vector<cplx>
randomRealVec(size_t count, uint64_t seed, double magnitude = 1.0)
{
    Rng rng(seed);
    std::vector<cplx> v(count);
    for (auto& x : v)
        x = cplx(rng.uniformReal(-magnitude, magnitude), 0.0);
    return v;
}

} // namespace hydra::test

#endif // HYDRA_TESTS_FHE_TEST_UTIL_HH
