/**
 * @file
 * Event queue ordering and determinism tests.
 */

#include <gtest/gtest.h>

#include "sim/eventq.hh"

namespace hydra {
namespace {

TEST(EventQueue, FiresInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFiresInInsertionOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    std::vector<Tick> times;
    eq.schedule(10, [&] {
        times.push_back(eq.now());
        eq.scheduleAfter(5, [&] { times.push_back(eq.now()); });
        eq.scheduleAfter(0, [&] { times.push_back(eq.now()); });
    });
    eq.run();
    EXPECT_EQ(times, (std::vector<Tick>{10, 10, 15}));
}

TEST(EventQueue, ExecutedCountTracks)
{
    EventQueue eq;
    eq.schedule(1, [] {});
    eq.schedule(2, [] {});
    eq.run();
    EXPECT_EQ(eq.executedCount(), 2u);
}

TEST(EventQueue, TickConversionRoundTrips)
{
    EXPECT_EQ(secondsToTicks(1.0), kTicksPerSecond);
    EXPECT_DOUBLE_EQ(ticksToSeconds(kTicksPerSecond / 2), 0.5);
    EXPECT_NEAR(ticksToSeconds(secondsToTicks(3.14159)), 3.14159, 1e-9);
}

} // namespace
} // namespace hydra
